// Three-application scenario: build an N-app experiment through the
// declarative scenario layer — a bulk checkpoint writer, a strided analysis
// writer and a reader co-running on four servers — run it on HDD and SSD,
// and print the δ-graph plus the pairwise interference-factor matrix that
// the two-application paper methodology cannot express.
//
// The same spec, as JSON, could live in a file and run via:
//
//	go run ./cmd/scenarios -file scenario.json
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/scenario"
)

func main() {
	spec := scenario.Spec{
		Name:        "checkpoint-analysis-read",
		Description: "bulk checkpoint vs strided analysis output vs restart read",
		Servers:     4,
		DeltaS:      []float64{-10, 0, 10},
		Apps: []scenario.App{
			{Name: "checkpoint", Procs: 32, BlockMB: 64},
			{Name: "analysis", Procs: 16, Pattern: "strided", BlockMB: 16, TransferKB: 256},
			{Name: "restart", Procs: 16, BlockMB: 32, Read: true, StartS: 2},
		},
	}
	results, err := scenario.RunAll(spec, core.Runner{}) // hdd + ssd, GOMAXPROCS workers
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, r := range results {
		_ = scenario.RenderBaselines(r).WriteASCII(os.Stdout)
		fmt.Println()
		_ = scenario.RenderGraph(r).WriteASCII(os.Stdout)
		fmt.Println()
		_ = scenario.RenderMatrix(r).WriteASCII(os.Stdout)
		fmt.Println()
	}
	_ = scenario.RenderSummary(results).WriteASCII(os.Stdout)

	// The matrix, not the δ-graph, is what answers "who should I co-schedule
	// with whom": read off the worst victim/aggressor pair directly.
	for _, r := range results {
		v, a, f := r.Matrix.Peak()
		fmt.Printf("\n%s: worst pair is %s suffering %.2fx next to %s\n",
			r.Backend, r.Matrix.Names[v], f, r.Matrix.Names[a])
	}
}
