// Stripe tuning: the paper's Figures 8/9 as an advisor. For a strided
// workload it sweeps the file system stripe size and reports, for each
// setting, single-application performance and contended behavior — showing
// the paper's warning in action: configurations that eliminate interference
// (requests touching one server) can be far from optimal, and vice versa.
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	cfg := cluster.Default()
	cfg.ComputeNodes = 8
	cfg.Servers = 4
	cfg.Sync = pfs.SyncOff

	// 64 requests of 256 KiB per process, strided.
	wl := workload.Spec{
		Pattern:      workload.Strided,
		BlockBytes:   16 << 20,
		TransferSize: 256 << 10,
		QD:           1,
		ThinkTime:    int64(10 * sim.Millisecond),
	}

	fmt.Println("stripe     servers/req  alone     delta=0   peak IF")
	type pick struct {
		stripe  int64
		alone   float64
		peak    float64
		touched int
	}
	var best, fair *pick
	for _, stripe := range []int64{64 << 10, 128 << 10, 256 << 10} {
		c := cfg
		c.StripeSize = stripe
		apps := core.TwoAppSpecs(c, 64, c.CoresPerNode, wl)
		g := core.RunDelta(core.DeltaSpec{Cfg: c, Apps: apps, Deltas: core.Deltas()})
		touched := pfs.Layout{Width: c.Servers, Stripe: stripe}.ServersTouched(0, wl.TransferSize)
		p := &pick{
			stripe:  stripe,
			alone:   g.Alone[0].Seconds(),
			peak:    g.PeakIF(),
			touched: touched,
		}
		fmt.Printf("%-9s  %11d  %6.1fs   %6.1fs   %6.2f\n",
			sim.FormatBytes(stripe), touched, p.alone,
			g.At(0).Elapsed[0].Seconds(), p.peak)
		if best == nil || p.alone < best.alone {
			best = p
		}
		if fair == nil || p.peak < fair.peak {
			fair = p
		}
	}

	fmt.Println()
	fmt.Printf("fastest alone:       stripe %s\n", sim.FormatBytes(best.stripe))
	fmt.Printf("least interference:  stripe %s (requests touch %d server(s))\n",
		sim.FormatBytes(fair.stripe), fair.touched)
	if best.stripe != fair.stripe {
		fmt.Println("note: they differ — the paper's warning that an interference-free")
		fmt.Println("configuration is not necessarily an optimal one (§IV-A7).")
	}
}
