// Incast diagnosis: reproduce the paper's §IV-B investigation on demand.
// It runs one application alone and then two overlapping applications,
// traces the TCP window of one client connection in each case (the
// simulator's tcpdump), and reports whether the window collapse + timeout
// pattern that defines incast is present — along with where the drops
// happened.
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	cfg := cluster.Default()
	cfg.ComputeNodes = 8
	cfg.Servers = 2

	wl := workload.Spec{Pattern: workload.Contiguous, BlockBytes: 64 << 20}
	apps := core.TwoAppSpecs(cfg, 64, cfg.CoresPerNode, wl)

	fmt.Println("--- run 1: application A alone ---")
	solo := core.Prepare(cfg, []core.AppSpec{apps[0]})
	traceAlone := solo.AttachWindowTrace(0, 0, 0)
	resAlone := solo.Run()
	describe(traceAlone, resAlone)

	fmt.Println("\n--- run 2: A and B start together (delta = 0) ---")
	both := core.Prepare(cfg, []core.AppSpec{apps[0], apps[1]})
	traceB := both.AttachWindowTrace(1, 0, 0)
	resBoth := both.Run()
	describe(traceB, resBoth)

	fmt.Println("\nverdict:")
	grewUnderContention := resBoth.Diag.Timeouts > 3*resAlone.Diag.Timeouts
	switch {
	case grewUnderContention && traceB.MinWnd() < 1:
		fmt.Printf("  TCP timeouts grew %.1fx under contention and the late application's window\n",
			float64(resBoth.Diag.Timeouts)/float64(resAlone.Diag.Timeouts))
		fmt.Println("  collapsed to zero: cross-application incast, caused by a slow backend plus")
		fmt.Println("  the storage server's lack of flow control (the paper's root cause).")
	case traceAlone.MinWnd() < 1 && traceAlone.MaxWnd() > 8:
		fmt.Println("  windows already collapse alone: the backend cannot sustain one application.")
	default:
		fmt.Println("  no incast signature; interference (if any) is device- or CPU-level.")
	}
}

func describe(tr *netsim.Trace, res core.RunResult) {
	for _, a := range res.Apps {
		fmt.Printf("  app %s: %.1fs for %s\n", a.Name, a.Elapsed.Seconds(), sim.FormatBytes(a.Bytes))
	}
	fmt.Printf("  traced connection: window min=%.0f max=%.0f (x2048B) over %d samples\n",
		tr.MinWnd(), tr.MaxWnd(), tr.Len())
	fmt.Printf("  fabric: %d port drops, %d TCP timeouts, %d device seeks\n",
		res.Diag.PortDrops, res.Diag.Timeouts, res.Diag.DeviceSeeks)
}
