// Checkpoint record/replay: run the periodic-checkpoint-4 builtin (a
// 4-burst barrier-synchronized checkpointer against a steady reader),
// record every request into a trace, print the Darshan-style per-app
// summary, replay the trace on the recorded platform (bit-identical per
// the trace package's determinism contract), and replay it once more under
// the fair-share QoS scheduler — the counterfactual "what if this recorded
// workload had run mitigated" question that request-level traces make
// answerable.
//
// The same flows, file-based, from the command line:
//
//	go run ./cmd/scenarios -run periodic-checkpoint-4 -trace ckpt.trace
//	go run ./cmd/scenarios -replay ckpt.trace
//	go run ./cmd/scenarios -replay ckpt.trace -qos fairshare
package main

import (
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/qos"
	"repro/internal/scenario"
	"repro/internal/trace"
)

func main() {
	spec, err := scenario.Lookup("periodic-checkpoint-4")
	check(err)
	spec = spec.Smoke() // keep the example quick; drop for the full-size run

	// Record the δ=0 co-run on HDD at request level.
	t, _, err := scenario.Record(spec, cluster.HDD)
	check(err)
	fmt.Printf("recorded %d request-level records from %d apps\n\n",
		len(t.Records), len(t.Header.Apps))
	sums := trace.Summarize(t)
	check(trace.RenderSummary("Darshan-style per-app summary", sums).WriteASCII(os.Stdout))
	fmt.Println()
	check(trace.RenderSizeHist("request-size histogram", sums).WriteASCII(os.Stdout))
	fmt.Println()

	// Replay on the recorded platform: bit-identical completion windows.
	rep, err := trace.Replay(t)
	check(err)
	check(trace.RenderRoundTrip("replay on the recorded platform", rep).WriteASCII(os.Stdout))
	if !rep.Identical() {
		fmt.Fprintln(os.Stderr, "replay diverged from the recording")
		os.Exit(1)
	}
	fmt.Println("\nreplay reproduced every completion window bit-for-bit")

	// Counterfactual: the same recorded workload under fair-share QoS,
	// with the flow layer serialized enough (4 slots) that grant-time
	// arbitration actually binds at this scale.
	qcfg := t.Header.Cfg
	qcfg.Srv.QoS = qos.Params{Kind: qos.FairShare, FlowSlots: 4}
	qrep, err := trace.ReplayOn(t, qcfg)
	check(err)
	fmt.Println()
	check(trace.RenderRoundTrip("counterfactual replay under qos=fairshare", qrep).WriteASCII(os.Stdout))
	for i, a := range qrep.Apps {
		delta := a.Elapsed - qrep.Recorded[i].Elapsed()
		fmt.Printf("%s: fair-share shifts the phase by %v\n", a.Name, delta)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
