// Quickstart: build a small simulated HPC platform, run two applications
// writing concurrently to the shared parallel file system, and print their
// I/O phase times, interference factors and the root-cause diagnostics.
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	// A 1/8-size version of the paper's platform: HDD backends, sync ON.
	cfg := cluster.Default()
	cfg.ComputeNodes = 8
	cfg.Servers = 2

	// Two applications, 64 processes each (4 nodes x 16 cores), every
	// process writing 64 MiB contiguously into its application's file.
	wl := workload.Spec{Pattern: workload.Contiguous, BlockBytes: 64 << 20}
	apps := core.TwoAppSpecs(cfg, 64, cfg.CoresPerNode, wl)

	// δ-graph: how does completion time depend on the delay between the
	// two applications' bursts?
	graph := core.RunDelta(core.DeltaSpec{
		Cfg:    cfg,
		Apps:   apps,
		Deltas: core.Deltas(10, 20),
	})

	fmt.Printf("alone baselines: A=%.1fs B=%.1fs\n\n",
		graph.Alone[0].Seconds(), graph.Alone[1].Seconds())
	fmt.Println("delta    A_time    B_time    IF_A   IF_B   drops  timeouts")
	for _, p := range graph.Points {
		fmt.Printf("%+5.0fs  %7.1fs  %7.1fs  %5.2f  %5.2f  %6d  %8d\n",
			p.Delta.Seconds(), p.Elapsed[0].Seconds(), p.Elapsed[1].Seconds(),
			p.IF[0], p.IF[1], p.Diag.PortDrops, p.Diag.Timeouts)
	}
	fmt.Printf("\npeak interference factor: %.2f\n", graph.PeakIF())
	fmt.Printf("unfairness (T_second/T_first): %.2f — %s\n",
		graph.Unfairness(), verdict(graph.Unfairness()))
}

func verdict(u float64) string {
	switch {
	case u > 1.15:
		return "the application that starts first wins (incast signature)"
	case u < 0.85:
		return "the application that starts second wins"
	default:
		return "fair sharing"
	}
}
