// Partitioned servers: the paper's Figure 7 lesson as a what-if tool.
// Two applications can either stripe across all storage servers (fast
// alone, but they interfere and the first one to start wins) or target
// disjoint halves (slower alone, but interference-free and fair). This
// example quantifies the trade for an HDD deployment so an operator can
// decide when partitioning pays off.
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	cfg := cluster.Default()
	cfg.ComputeNodes = 8
	cfg.Servers = 4

	wl := workload.Spec{Pattern: workload.Contiguous, BlockBytes: 64 << 20}
	deltas := core.Deltas(10)

	shared := core.TwoAppSpecs(cfg, 64, cfg.CoresPerNode, wl)
	gShared := core.RunDelta(core.DeltaSpec{Cfg: cfg, Apps: shared, Deltas: deltas})

	split := core.TwoAppSpecs(cfg, 64, cfg.CoresPerNode, wl)
	split[0].TargetServers = []int{0, 1}
	split[1].TargetServers = []int{2, 3}
	gSplit := core.RunDelta(core.DeltaSpec{Cfg: cfg, Apps: split, Deltas: deltas})

	fmt.Println("configuration       alone    delta=0   peak IF  unfairness")
	row := func(name string, g *core.DeltaGraph) {
		p := g.At(0)
		fmt.Printf("%-18s %6.1fs   %6.1fs   %6.2f   %8.2f\n",
			name, g.Alone[0].Seconds(), p.Elapsed[0].Seconds(), g.PeakIF(), g.Unfairness())
	}
	row("4 shared servers", gShared)
	row("2+2 split servers", gSplit)

	sharedPeak := gShared.At(0).Elapsed[0].Seconds()
	splitPeak := gSplit.At(0).Elapsed[0].Seconds()
	fmt.Println()
	if splitPeak < sharedPeak {
		fmt.Printf("under contention, partitioning is %.0f%% faster despite using half the servers\n",
			100*(sharedPeak-splitPeak)/sharedPeak)
		fmt.Println("(the paper's Figure 7: partitioning removes both interference and unfairness)")
	} else {
		fmt.Printf("partitioning costs %.0f%% under contention on this configuration\n",
			100*(splitPeak-sharedPeak)/sharedPeak)
	}
}
