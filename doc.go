// Package repro is a simulation-based reproduction of "On the Root Causes
// of Cross-Application I/O Interference in HPC Storage Systems" (Yildiz,
// Dorier, Ibrahim, Ross, Antoniu — IPDPS 2016).
//
// The repository contains a deterministic discrete-event simulator of an
// HPC storage stack — compute nodes, a TCP-like fabric with incast
// dynamics, a PVFS/OrangeFS-like parallel file system, and storage device
// models — plus the paper's δ-graph experiment methodology and one
// regenerable experiment per table and figure. The methodology is
// generalized beyond the paper's two applications: δ-graphs carry N apps
// with per-app start offsets, pairwise interference-factor matrices
// summarize who hurts whom, and a declarative scenario layer
// (internal/scenario, cmd/scenarios) runs named N-app scenarios on HDD and
// SSD. A server-side QoS subsystem (internal/qos) turns every scenario
// into a before/after mitigation experiment: pluggable schedulers —
// deficit-round-robin fair sharing, token-bucket throttling, a feedback
// congestion controller over LASSi-style telemetry — slot between the file
// system's flow layer and the device, and core.RunMitigationSweep (with
// paperrepro -exp mitigate) reports each scheme's interference reduction
// against its aggregate-throughput cost. A trace subsystem
// (internal/trace) records every request — time, app, rank, server,
// offset, bytes, queue depth, latency — through an opt-in zero-allocation
// hook on the file-system client path, summarizes traces Darshan-style,
// and replays them bit-identically (or counterfactually under QoS) as a
// first-class workload source; workload programs (workload.Program)
// extend one-shot bursts into multi-phase temporal workloads — periodic
// barrier-synchronized checkpoints, Poisson-jittered bursty tenants —
// that make such traces worth recording. The replayer and the
// mitigation sweeps are also servable: internal/whatif and cmd/whatifd
// expose them as a long-running what-if daemon (stdlib HTTP/JSON) with
// a content-addressed baseline cache, a bounded session queue with
// explicit backpressure, and responses whose embedded tables are
// byte-identical to the equivalent cmd/scenarios runs (SCENARIOS.md,
// "The what-if HTTP API"). An observability layer (internal/obs)
// watches runs from inside simulated time — a pre-scheduled
// zero-allocation sampler snapshots per-app × per-server telemetry
// into fixed-capacity series and request spans decompose every I/O
// into network, queue-wait and service time — surfaced as
// cmd/scenarios -timeline and, for the daemon, a Prometheus-text
// GET /metrics plus an opt-in expvar/pprof debug listener; observation
// never perturbs results (observed runs are byte-identical to
// unobserved ones, at any shard count). See README.md for a tour,
// DESIGN.md for the system inventory (including the replay determinism
// contract), EXPERIMENTS.md for paper-versus-measured results and
// SCENARIOS.md for the scenario engine, the mitigation Pareto view and
// the phases/trace block reference.
//
// δ-graph campaigns are embarrassingly parallel — every alone baseline,
// δ point and figure series is an independent simulation on its own
// platform — and run on a bounded worker pool (core.Runner, paper.Pool,
// the -j flag of cmd/paperrepro and cmd/deltagraph). Each individual
// simulation is single-threaded and deterministic, so results are
// byte-identical at any parallelism level.
//
// The benchmark suite in bench_test.go regenerates scaled versions of every
// experiment; the cmd/paperrepro tool runs them at paper size.
package repro
