// Package repro is a simulation-based reproduction of "On the Root Causes
// of Cross-Application I/O Interference in HPC Storage Systems" (Yildiz,
// Dorier, Ibrahim, Ross, Antoniu — IPDPS 2016).
//
// The repository contains a deterministic discrete-event simulator of an
// HPC storage stack — compute nodes, a TCP-like fabric with incast
// dynamics, a PVFS/OrangeFS-like parallel file system, and storage device
// models — plus the paper's δ-graph experiment methodology and one
// regenerable experiment per table and figure. See README.md for a tour,
// DESIGN.md for the system inventory and EXPERIMENTS.md for paper-versus-
// measured results.
//
// The benchmark suite in bench_test.go regenerates scaled versions of every
// experiment; the cmd/paperrepro tool runs them at paper size.
package repro
