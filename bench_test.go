package repro

// One benchmark per table and figure of the paper, plus ablations. Each
// bench runs a scaled-down version of the experiment (scale divisor 8,
// coarse δ grids — see internal/paper for what scaling preserves) and
// reports the headline quantities as custom metrics:
//
//	IF        peak interference factor (paper: ~2 at δ=0, Table II)
//	unfair    T(second app)/T(first app) on overlapping δ≠0 points
//	          (>1 means the first application wins, the incast signature)
//	alone_s   single-application baseline, seconds of simulated time
//
// Absolute ns/op is simulator wall-clock, useful only to track the
// simulator's own performance. The δ-graph benches run the parallel
// experiment paths (paper.Pool and core.Runner at GOMAXPROCS workers) so
// their numbers track the speed a real campaign sees; metric values are
// identical to the serial path by the runner's determinism guarantee.
// Table1, Figure 11 and the simulator microbenches are single simulations
// and stay serial.

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/paper"
	"repro/internal/pfs"
	"repro/internal/qos"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/storage"
	iotrace "repro/internal/trace"
	"repro/internal/workload"
)

const benchScale = 8

// benchPool fans each ablation's independent simulations out over all cores,
// like paper.Pool does for the figure benches.
var benchPool core.Runner

func reportSeries(b *testing.B, series []paper.Series) {
	b.Helper()
	if len(series) == 0 {
		return
	}
	peak, unfair := 0.0, 0.0
	for _, s := range series {
		if v := s.Graph.PeakIF(); v > peak {
			peak = v
		}
		if v := s.Graph.Unfairness(); v > unfair {
			unfair = v
		}
	}
	b.ReportMetric(peak, "IF")
	b.ReportMetric(unfair, "unfair")
	b.ReportMetric(series[0].Graph.Alone[0].Seconds(), "alone_s")
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := paper.Table1()
		b.ReportMetric(rows[0].Slowdown, "hdd_x")
		b.ReportMetric(rows[1].Slowdown, "ssd_x")
		b.ReportMetric(rows[2].Slowdown, "ram_x")
	}
}

func BenchmarkFigure2SyncOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, paper.Fig2(benchScale, true, paper.GridCoarse))
	}
}

func BenchmarkFigure2SyncOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, paper.Fig2(benchScale, false, paper.GridCoarse))
	}
}

func BenchmarkFigure3SyncOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, paper.Fig3(benchScale, true, paper.GridCoarse))
	}
}

func BenchmarkFigure3SyncOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, paper.Fig3(benchScale, false, paper.GridCoarse))
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := paper.Fig4(benchScale, paper.GridCoarse)
		reportSeries(b, s)
		// The headline: 16 clients/node is unfair, 1 client/node is not.
		b.ReportMetric(s[0].Graph.Unfairness(), "unfair_16cpn")
		b.ReportMetric(s[1].Graph.Unfairness(), "unfair_1cpn")
	}
}

func BenchmarkFigure5SyncOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, paper.Fig5(benchScale, true, paper.GridCoarse))
	}
}

func BenchmarkFigure5SyncOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := paper.Fig5(benchScale, false, paper.GridCoarse)
		reportSeries(b, s)
		// The counterintuitive result: 1 G is interference-free.
		b.ReportMetric(s[0].Graph.PeakIF(), "IF_10G")
		b.ReportMetric(s[1].Graph.PeakIF(), "IF_1G")
	}
}

func BenchmarkFigure6AndTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, series := paper.Fig6(benchScale, []int{4, 8, 12, 24}, paper.GridCoarse)
		reportSeries(b, series)
		b.ReportMetric(pts[len(pts)-1].MaxBps/1e9, "maxGBps")
		b.ReportMetric(pts[len(pts)-1].PeakIF, "IF_mostServers")
		b.ReportMetric(pts[0].PeakIF, "IF_fewestServers")
	}
}

func BenchmarkFigure7HDD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := paper.Fig7(benchScale, cluster.HDD, paper.GridCoarse)
		reportSeries(b, s)
		b.ReportMetric(s[0].Graph.PeakIF(), "IF_shared")
		b.ReportMetric(s[1].Graph.PeakIF(), "IF_split")
	}
}

func BenchmarkFigure7RAM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := paper.Fig7(benchScale, cluster.RAM, paper.GridCoarse)
		reportSeries(b, s)
		b.ReportMetric(s[1].Graph.PeakIF(), "IF_split")
	}
}

func BenchmarkFigure8SyncOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, paper.Fig8(benchScale, true, []int64{64 << 10, 256 << 10}, paper.GridCoarse))
	}
}

func BenchmarkFigure8SyncOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, paper.Fig8(benchScale, false, []int64{64 << 10, 256 << 10}, paper.GridCoarse))
	}
}

func BenchmarkFigure9SyncOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, paper.Fig9(benchScale, true, []int64{64 << 10, 512 << 10}, paper.GridCoarse))
	}
}

func BenchmarkFigure9SyncOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := paper.Fig9(benchScale, false, []int64{64 << 10, 512 << 10}, paper.GridCoarse)
		reportSeries(b, s)
		b.ReportMetric(s[0].Graph.PeakIF(), "IF_64K")
		b.ReportMetric(s[1].Graph.PeakIF(), "IF_512K")
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		alone, contended := paper.Fig10(benchScale)
		b.ReportMetric(alone.MinWnd(), "minwnd_alone")
		b.ReportMetric(contended.MinWnd(), "minwnd_contended")
		b.ReportMetric(alone.MaxWnd(), "maxwnd_alone")
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := paper.Fig11(benchScale)
		b.ReportMetric(res.TraceA.MaxWnd(), "maxwnd_A")
		b.ReportMetric(res.TraceB.MaxWnd(), "maxwnd_B")
		// B's progress fraction at 2/3 of the run — low if starved.
		b.ReportMetric(100*res.TraceB.ProgressAt(res.End*2/3, res.TotalB), "B_progress_pct")
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := paper.Fig12(benchScale, []int{128, 512, 960}, paper.GridCoarse)
		reportSeries(b, s)
		b.ReportMetric(s[0].Graph.Unfairness(), "unfair_fewest")
		b.ReportMetric(s[len(s)-1].Graph.Unfairness(), "unfair_most")
	}
}

// --- Ablations: isolating one root cause at a time ------------------------

// BenchmarkAblationSeekCost isolates the disk-level root cause: the same
// contended contiguous run with the real seek penalty and with a seek-free
// disk (perfect locality). The gap is the seek amplification share of the
// interference the paper attributes to the backend (§IV-A1).
func BenchmarkAblationSeekCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(seek sim.Time) float64 {
			cfg := paper.Config(benchScale)
			cfg.HDD.Seek = seek
			apps := core.TwoAppSpecs(cfg, paper.ProcsPerApp(cfg), cfg.CoresPerNode, paper.ContigSpec())
			g := benchPool.RunDelta(core.DeltaSpec{Cfg: cfg, Apps: apps, Deltas: core.Deltas()})
			return g.At(0).Elapsed[0].Seconds()
		}
		b.ReportMetric(run(6500*sim.Microsecond), "with_seeks_s")
		b.ReportMetric(run(0), "seek_free_s")
	}
}

// BenchmarkAblationInfinitePort removes the switch port limit: no incast
// drops, so any residual unfairness comes from request queueing alone.
func BenchmarkAblationInfinitePort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(portBuf int64) (float64, int64) {
			cfg := paper.Config(benchScale)
			cfg.Net.PortBuf = portBuf
			apps := core.TwoAppSpecs(cfg, paper.ProcsPerApp(cfg), cfg.CoresPerNode, paper.ContigSpec())
			g := benchPool.RunDelta(core.DeltaSpec{Cfg: cfg, Apps: apps, Deltas: core.Deltas(10)})
			return g.Unfairness(), g.At(0).Diag.PortDrops
		}
		u1, d1 := run(1 << 20)
		u2, d2 := run(1 << 40)
		b.ReportMetric(u1, "unfair_1MBport")
		b.ReportMetric(u2, "unfair_infport")
		b.ReportMetric(float64(d1), "drops_1MBport")
		b.ReportMetric(float64(d2), "drops_infport")
	}
}

// BenchmarkAblationPolicy compares server request-scheduling policies —
// FIFO (PVFS) against the coordinated orders of the related work.
func BenchmarkAblationPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(pol pfs.ReadPolicy) float64 {
			cfg := paper.Config(benchScale)
			cfg.Srv.Policy = pol
			apps := core.TwoAppSpecs(cfg, paper.ProcsPerApp(cfg), cfg.CoresPerNode, paper.ContigSpec())
			g := benchPool.RunDelta(core.DeltaSpec{Cfg: cfg, Apps: apps, Deltas: core.Deltas(10)})
			return g.Unfairness()
		}
		b.ReportMetric(run(pfs.ReadFIFO), "unfair_fifo")
		b.ReportMetric(run(pfs.ReadRoundRobin), "unfair_rr")
	}
}

// BenchmarkReadInterference is the paper's future-work read/read variant.
func BenchmarkReadInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := paper.Config(benchScale)
		wl := workload.Spec{Pattern: workload.Contiguous, BlockBytes: paper.BlockBytes, Read: true}
		apps := core.TwoAppSpecs(cfg, paper.ProcsPerApp(cfg), cfg.CoresPerNode, wl)
		g := benchPool.RunDelta(core.DeltaSpec{Cfg: cfg, Apps: apps, Deltas: core.Deltas()})
		b.ReportMetric(g.PeakIF(), "IF")
		b.ReportMetric(g.Alone[0].Seconds(), "alone_s")
	}
}

// --- Sharded event kernel ---------------------------------------------------

// shardCounts is the shard axis of the sharded-kernel benches. shards=1 is
// the serial determinism oracle; the other counts split the servers over
// worker shards. Results are bit-identical at every count (the scenario
// conformance suite pins this), so these benches measure pure wall-clock:
// the speedup on multi-core hosts, and the window-synchronization overhead
// on single-core hosts, where ShardSet.Run degenerates to the sequential
// window loop.
var shardCounts = []int{1, 2, 4}

// BenchmarkShardedFigure2 runs the paper's Figure 2 contended co-run (two
// contiguous writers, sync on) as ONE simulation per iteration at each
// shard count — the single-big-scenario case the Shards knob exists for.
// Scale divisor 4 keeps 3 servers so shards=4 reaches the maximal
// clients+servers split.
func BenchmarkShardedFigure2(b *testing.B) {
	cfg := paper.Config(4)
	apps := core.TwoAppSpecs(cfg, paper.ProcsPerApp(cfg), cfg.CoresPerNode, paper.ContigSpec())
	for _, k := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			var events uint64
			for i := 0; i < b.N; i++ {
				res := core.PrepareSharded(cfg, apps, k).Run()
				events = res.Diag.Events
			}
			b.ReportMetric(float64(events), "events")
		})
	}
}

// BenchmarkShardedScenario runs a 12-server four-writer pile-up — enough
// server shards for the 4-shard split to matter on multi-core hosts — as
// one simulation per iteration at each shard count.
func BenchmarkShardedScenario(b *testing.B) {
	cfg := cluster.Default() // full 12-server platform
	wl := workload.Spec{BlockBytes: 16 << 20, TransferSize: 256 << 10}
	var apps []core.AppSpec
	for i := 0; i < 4; i++ {
		apps = append(apps, core.AppSpec{
			Name: core.AppName(i), Procs: 32,
			FirstNode: i * 2, ProcsPerNode: 16, Workload: wl,
		})
	}
	for _, k := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			var events uint64
			for i := 0; i < b.N; i++ {
				res := core.PrepareSharded(cfg, apps, k).Run()
				events = res.Diag.Events
			}
			b.ReportMetric(float64(events), "events")
		})
	}
}

// --- Fleet-scale population --------------------------------------------------

// BenchmarkFleetScenario runs the generated 1024-tenant population builtin
// (internal/population) at smoke scale through the fleet summarizer: one
// 1024-app co-run, one alone baseline per distinct tenant shape and the
// seeded pairwise sample. Parallelism and shards are forced to 1 so ns/op
// measures the serial simulation path independent of the runner's core
// count — this is the largest single simulation in the bench suite and the
// one whose wall-clock tracks fleet-scale usability.
func BenchmarkFleetScenario(b *testing.B) {
	s, err := scenario.Lookup("fleet")
	if err != nil {
		b.Fatal(err)
	}
	s = s.Smoke()
	backends, err := s.Backends()
	if err != nil {
		b.Fatal(err)
	}
	pool := core.Runner{Parallelism: 1, Shards: 1}
	for i := 0; i < b.N; i++ {
		f, err := scenario.RunFleet(s, backends[0], pool)
		if err != nil {
			b.Fatal(err)
		}
		v := f.IFPercentiles(50, 95)
		b.ReportMetric(float64(len(f.Tenants)), "tenants")
		b.ReportMetric(float64(f.Core.Shapes), "shapes")
		b.ReportMetric(float64(f.Core.CoRun.Diag.Events), "events")
		b.ReportMetric(v[0], "p50_IF")
		b.ReportMetric(v[1], "p95_IF")
	}
}

// --- Microbenchmarks of the simulator itself -------------------------------

func BenchmarkEngineEventThroughput(b *testing.B) {
	e := sim.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.Schedule(sim.Microsecond, tick)
		}
	}
	b.ResetTimer()
	e.Schedule(0, tick)
	e.Run()
}

func BenchmarkTransportThroughput(b *testing.B) {
	// One connection moving b.N segments of 64 KiB.
	e := sim.NewEngine()
	f := netsim.NewFabric(e, netsim.DefaultParams())
	src := f.NewHost("c", 1.25e9, 0)
	dst := f.NewHost("s", 1.25e9, 0)
	c := f.Dial(src, dst, 0)
	c.OnReadable = func(cc *netsim.Conn, m *netsim.Message) { cc.ReadHead() }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Send(&netsim.Message{Size: 64 << 10})
	}
	e.Run()
	b.SetBytes(64 << 10)
}

func BenchmarkHDDElevator(b *testing.B) {
	e := sim.NewEngine()
	d := cluster.NewDevice(e, cluster.Default())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Submit(&storage.Request{
			File:   storage.FileID(i % 4),
			Offset: int64(i) * (256 << 10),
			Size:   256 << 10,
		})
	}
	e.Run()
	b.SetBytes(256 << 10)
}

// BenchmarkTraceRecord measures the request-level trace recorder's
// steady-state record path (one BeginRequest + EndRequest pair, the hook
// the pfs client runs per request when tracing is on). With capacity
// reserved the path must not allocate — b.ReportAllocs makes a regression
// loud, and CI's bench job pins the snapshot.
func BenchmarkTraceRecord(b *testing.B) {
	e := sim.NewEngine()
	rec := iotrace.NewRecorder(e)
	rec.Reserve(b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := rec.BeginRequest(pfs.IORecord{
			Time: sim.Time(i), Off: int64(i) << 18, Bytes: 256 << 10,
			App: int32(i & 3), Rank: int32(i & 15), Server: -1, QD: 1,
			Op: pfs.OpWrite,
		})
		rec.EndRequest(idx)
	}
}

// BenchmarkFairShareScheduler measures one grant decision of the
// deficit-round-robin QoS scheduler over a 64-request queue from four
// applications — the per-grant cost a QoS-enabled server adds to its pump
// loop. Steady state must not allocate (b.ReportAllocs makes a regression
// loud).
func BenchmarkFairShareScheduler(b *testing.B) {
	tel := qos.NewTelemetry(nil)
	tel.Arrive(0, 1<<20)
	tel.Arrive(1, 1<<20)
	s := qos.New(nil, qos.Params{Kind: qos.FairShare}, tel)
	q := make([]qos.Request, 64)
	for i := range q {
		size := int64(64 << 10)
		if i%4 == 0 {
			size = 1 << 20 // one elephant stream among small requests
		}
		q[i] = qos.Request{App: i % 4, Issued: sim.Time(i), Bytes: size}
	}
	s.Pick(0, q) // warm per-application state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Pick(sim.Time(i), q)
	}
}
