package main

import (
	"regexp"
	"strings"
	"testing"
)

var any = regexp.MustCompile(".*")

func TestGuardIntersection(t *testing.T) {
	oldB := map[string][]float64{
		"BenchmarkA": {100, 110, 90},
		"BenchmarkB": {200},
		"BenchmarkR": {50}, // retired
	}
	newB := map[string][]float64{
		"BenchmarkA": {120},       // 1.2x: within tolerance
		"BenchmarkB": {400},       // 2.0x: regression
		"BenchmarkN": {10, 10, 9}, // no baseline
	}
	var b strings.Builder
	if guard(&b, oldB, newB, 1.5, any, "old.json") {
		t.Fatalf("guard passed despite a 2.0x regression:\n%s", b.String())
	}
	out := b.String()
	for _, want := range []string{
		"ok   BenchmarkA",
		"FAIL BenchmarkB",
		"SKIP BenchmarkR",
		"NEW  BenchmarkN",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Deterministic order: lines sorted by benchmark name.
	if strings.Index(out, "BenchmarkA") > strings.Index(out, "BenchmarkB") ||
		strings.Index(out, "BenchmarkN") > strings.Index(out, "BenchmarkR") {
		t.Errorf("output not sorted by name:\n%s", out)
	}
}

// TestGuardMissingBaselineWarns pins the intersection contract: a baseline
// that predates every current benchmark warns and passes instead of
// erroring — the guard has nothing to compare yet.
func TestGuardMissingBaselineWarns(t *testing.T) {
	oldB := map[string][]float64{"BenchmarkOld": {100}}
	newB := map[string][]float64{"BenchmarkNew1": {10}, "BenchmarkNew2": {20}}
	var b strings.Builder
	if !guard(&b, oldB, newB, 1.5, any, "old.json") {
		t.Fatalf("guard failed with no common benchmarks:\n%s", b.String())
	}
	out := b.String()
	if !strings.Contains(out, "warning: no common benchmarks") {
		t.Errorf("missing-intersection warning absent:\n%s", out)
	}
	if !strings.Contains(out, "2 new without a baseline") {
		t.Errorf("new-benchmark count absent:\n%s", out)
	}
}

func TestGuardMatchFilter(t *testing.T) {
	oldB := map[string][]float64{"BenchmarkKeep": {100}, "BenchmarkDrop": {100}}
	newB := map[string][]float64{"BenchmarkKeep": {100}, "BenchmarkDrop": {1000}}
	var b strings.Builder
	if !guard(&b, oldB, newB, 1.5, regexp.MustCompile("Keep"), "old.json") {
		t.Fatalf("guard failed on a filtered-out regression:\n%s", b.String())
	}
	if strings.Contains(b.String(), "BenchmarkDrop") {
		t.Errorf("filtered benchmark still reported:\n%s", b.String())
	}
}

func TestParseBenchLines(t *testing.T) {
	lines := []string{
		"BenchmarkEventKernel-8   \t 1000 \t 123.4 ns/op \t 5 B/op",
		"BenchmarkEventKernel-8   \t 1200 \t 120.0 ns/op",
		"not a benchmark line",
		"BenchmarkOther 	 10 	 9e+03 ns/op",
	}
	got := parse(lines)
	if len(got["BenchmarkEventKernel"]) != 2 {
		t.Fatalf("samples = %v, want 2 for BenchmarkEventKernel", got)
	}
	if v := got["BenchmarkOther"]; len(v) != 1 || v[0] != 9000 {
		t.Fatalf("BenchmarkOther = %v, want [9000]", v)
	}
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median = %v, want 2", m)
	}
	if m := median([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Fatalf("median = %v, want 2.5", m)
	}
}
