// benchguard compares two `go test -json` benchmark snapshots (the
// BENCH_N.json files the Makefile's bench target writes) and fails when a
// benchmark regressed beyond a tolerance factor.
//
// It guards the *serial-path* trajectory across PRs: the bench job runs it
// with the previous PR's committed snapshot as -old and the fresh one as
// -new. The tolerance is deliberately generous — snapshots come from
// different CI machines (different CPUs, frequencies, neighbors), so only
// a gross regression (default 1.5×) is a signal rather than noise.
//
// Usage:
//
//	benchguard -old BENCH_5.json -new BENCH_6.json [-tolerance 1.5] [-match regexp]
//
// Benchmarks present in only one file are reported but never fail the
// guard (new benches appear, old ones retire): the comparison always runs
// over the intersection. An empty intersection — a baseline predating
// every current benchmark — is a warning, not an error: the guard has
// nothing to check yet, and failing would block the very PR that
// introduces the benchmarks.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// testEvent is the subset of the `go test -json` event stream we read.
type testEvent struct {
	Action string
	Output string
}

// readBenchLines reassembles the textual output of a -json stream. Long
// benchmark result lines are split across multiple Output events, so the
// stream is concatenated first and split on newlines after.
func readBenchLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev testEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return strings.Split(text.String(), "\n"), nil
}

// benchLine matches one standard benchmark result line:
//
//	BenchmarkName[-procs] <tab> iters <tab> 123.4 ns/op [more metrics]
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op`)

// parse returns ns/op samples per benchmark name.
func parse(lines []string) map[string][]float64 {
	out := make(map[string][]float64)
	for _, line := range lines {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out[m[1]] = append(out[m[1]], v)
	}
	return out
}

// median of a non-empty sample set; medians resist the occasional CI
// scheduling hiccup better than means.
func median(s []float64) float64 {
	sorted := append([]float64(nil), s...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

func main() {
	oldPath := flag.String("old", "", "baseline snapshot (previous PR's BENCH_N.json)")
	newPath := flag.String("new", "", "fresh snapshot to check")
	tolerance := flag.Float64("tolerance", 1.5, "fail when new median ns/op exceeds old by this factor")
	match := flag.String("match", ".*", "only guard benchmarks whose name matches this regexp")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -old and -new are required")
		os.Exit(2)
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: bad -match: %v\n", err)
		os.Exit(2)
	}

	load := func(path string) map[string][]float64 {
		lines, err := readBenchLines(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		return parse(lines)
	}
	oldB, newB := load(*oldPath), load(*newPath)

	if !guard(os.Stdout, oldB, newB, *tolerance, re, *oldPath) {
		fmt.Fprintf(os.Stderr, "benchguard: regression beyond %.2fx tolerance\n", *tolerance)
		os.Exit(1)
	}
}

// guard compares the two snapshots over their intersection, printing one
// deterministic (sorted) line per benchmark — ok/FAIL for common names,
// SKIP for retired ones, NEW for benchmarks the baseline predates — and
// reports whether the guard passes. Missing baselines only warn: the guard
// checks trajectories, and a benchmark's first snapshot has none.
func guard(w io.Writer, oldB, newB map[string][]float64, tolerance float64, re *regexp.Regexp, oldPath string) bool {
	names := make([]string, 0, len(oldB)+len(newB))
	for name := range oldB {
		names = append(names, name)
	}
	for name := range newB {
		if _, ok := oldB[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	failed := false
	compared, missing := 0, 0
	for _, name := range names {
		if !re.MatchString(name) {
			continue
		}
		oldS, inOld := oldB[name]
		newS, inNew := newB[name]
		switch {
		case !inNew:
			fmt.Fprintf(w, "SKIP %-45s retired (only in %s)\n", name, oldPath)
		case !inOld:
			missing++
			fmt.Fprintf(w, "NEW  %-45s (no baseline; not guarded this round)\n", name)
		default:
			compared++
			o, n := median(oldS), median(newS)
			ratio := n / o
			verdict := "ok  "
			if ratio > tolerance {
				verdict = "FAIL"
				failed = true
			}
			fmt.Fprintf(w, "%s %-45s old %12.0f ns/op  new %12.0f ns/op  ratio %.2f\n", verdict, name, o, n, ratio)
		}
	}
	if compared == 0 {
		fmt.Fprintf(w, "benchguard: warning: no common benchmarks between the snapshots "+
			"(%d new without a baseline); nothing to guard yet\n", missing)
		return true
	}
	if failed {
		return false
	}
	fmt.Fprintf(w, "benchguard: %d benchmarks within %.2fx of %s (%d new unguarded)\n",
		compared, tolerance, oldPath, missing)
	return true
}
