// Command scenarios runs declarative N-application interference scenarios
// (see SCENARIOS.md and internal/scenario) and prints, per scenario and
// backend, the alone baselines, the δ-graph and the pairwise
// interference-factor matrix.
//
// Usage:
//
//	scenarios -list                          # show the built-in registry
//	scenarios                                # run every built-in on HDD and SSD
//	scenarios -run elephant-mice,mixed-transfer
//	scenarios -file my_scenario.json         # run a hand-written spec
//	scenarios -smoke -run all                # the CI smoke grid (tiny)
//	scenarios -backend ssd -tsv              # one backend, machine-readable
//	scenarios -qos fairshare -run aggressor-victim   # under a QoS scheduler
//	scenarios -run periodic-checkpoint-4 -trace ckpt.trace   # record a trace
//	scenarios -replay ckpt.trace             # summarize + replay + verify
//	scenarios -replay ckpt.trace -qos fairshare      # counterfactual replay
//	scenarios -faults -run server-crash-checkpoint   # healthy vs faulted
//	scenarios -timeline -run aggressor-victim        # sim-time series + spans
//
// -timeline runs each selected scenario's δ=0 co-run with the
// deterministic observability layer attached (internal/obs) and prints
// per-app × per-server time series (throughput, queue state, pipeline
// depth, LASSi-style risk), per-server device/NIC series, and the
// per-app "where did the time go" span breakdown (network vs queue-wait
// vs service). -timeline-interval/-timeline-samples size the series,
// -timeline-spans the span buffers. Output is byte-identical at any
// -shards value.
//
// -faults runs each selected fault scenario (one with a "faults" block —
// a deterministic timeline of server crashes, degraded devices and link
// flaps, see SCENARIOS.md) twice: once with the plan stripped and once as
// given, and prints per-app IF-under-faults plus the availability ledger
// (downtime, discarded bytes, RPC timeouts, retries, goodput vs offered).
//
// -qos runs every selected scenario with the named server-side QoS
// scheduler (off, fairshare, tokenbucket, controller) at its calibrated
// defaults, overriding any qos block in the spec; paperrepro -exp mitigate
// sweeps all schedulers side by side.
//
// -trace records one selected scenario's δ=0 co-run (on -backend, default
// hdd) to a request-level trace file and prints the Darshan-style per-app
// summary. -replay reads such a file, prints the summary, replays it on the
// recorded platform and verifies bit-identical per-app completion times
// (exit status 1 on divergence); with -qos the replay runs under that
// scheduler instead — a counterfactual, so verification is skipped. A
// scenario file with a "trace" block (see SCENARIOS.md) is the declarative
// spelling of -replay.
//
// Every alone baseline, δ point and pairwise co-run is an independent
// simulation; -j bounds how many run concurrently (default GOMAXPROCS).
// Output is identical at any -j.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/whatif"
)

func main() {
	if err := realMain(); err != nil {
		fmt.Fprintf(os.Stderr, "scenarios: %v\n", err)
		os.Exit(1)
	}
}

func realMain() error {
	var (
		list     = flag.Bool("list", false, "list built-in scenarios and exit")
		run      = flag.String("run", "all", "comma-separated built-in scenario names, or all")
		file     = flag.String("file", "", "run a scenario spec from a JSON `file` instead of the registry")
		backend  = flag.String("backend", "", "run on one backend only (hdd, ssd, ram, null); default: the scenario's axis (hdd+ssd)")
		smoke    = flag.Bool("smoke", false, "shrink every scenario to the CI smoke grid")
		qosName  = flag.String("qos", "", "run under a server-side QoS `scheduler` (off, fairshare, tokenbucket, controller), overriding the spec")
		traceOut = flag.String("trace", "", "record the selected scenario's delta=0 co-run to a trace `file` and summarize it")
		replayIn = flag.String("replay", "", "summarize and replay a recorded trace `file`, verifying bit-identical completions")
		faults   = flag.Bool("faults", false, "run each selected fault scenario's healthy-vs-faulted comparison (the scenario needs a faults block)")
		timeline = flag.Bool("timeline", false, "dump each selected scenario's delta=0 co-run as deterministic sim-time series plus span breakdown (internal/obs)")
		tlEvery  = flag.Duration("timeline-interval", 100*time.Millisecond, "sampling `period` of -timeline on the simulated clock")
		tlCount  = flag.Int("timeline-samples", 600, "max samples per -timeline series (observation horizon = interval * samples)")
		tlSpans  = flag.Int("timeline-spans", 1<<16, "per-server span buffer capacity of -timeline (0 disables spans)")
		tsv      = flag.Bool("tsv", false, "TSV output instead of aligned tables")
		jobs     = flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulations (1 = serial)")
		shards   = flag.Int("shards", 0, "event-kernel shards per simulation (0 = each spec's own knob, 1 = serial oracle); results are bit-identical at any value")
	)
	flag.Parse()

	if *qosName != "" {
		if _, err := qos.ParseKind(*qosName); err != nil {
			return err
		}
	}

	if *list {
		t := report.New("built-in scenarios", "name", "apps", "backend", "description")
		for _, s := range scenario.Builtin() {
			axis := s.Backend
			if axis == "" {
				axis = "hdd+ssd"
			}
			t.Add(s.Name, len(s.Apps), axis, s.Description)
		}
		for _, s := range scenario.FleetBuiltin() {
			axis := s.Backend
			if axis == "" {
				axis = "hdd+ssd"
			}
			t.Add(s.Name, s.Population.Count, axis, s.Description)
		}
		return emit(os.Stdout, *tsv, t)
	}

	if *replayIn != "" {
		return replayTrace(os.Stdout, *replayIn, *qosName, *tsv)
	}

	specs, err := selectSpecs(*file, *run)
	if err != nil {
		return err
	}

	if *traceOut != "" {
		if len(specs) != 1 {
			return fmt.Errorf("-trace records one scenario; select it with -run name or -file (got %d)", len(specs))
		}
		s := specs[0]
		if *smoke {
			s = s.Smoke()
		}
		if *qosName != "" {
			// Record under the scheduler too; the trace header embeds the
			// QoS-enabled platform, so replays reproduce it.
			s.QoS = &scenario.QoS{Scheduler: *qosName}
		}
		b := cluster.HDD
		if *backend != "" {
			var err error
			if b, err = cluster.ParseBackend(*backend); err != nil {
				return err
			}
		}
		return recordTrace(os.Stdout, s, b, *traceOut, *tsv)
	}

	var backends []cluster.BackendKind
	if *backend != "" {
		b, err := cluster.ParseBackend(*backend)
		if err != nil {
			return err
		}
		backends = []cluster.BackendKind{b}
	}

	if *faults {
		return runFaults(os.Stdout, specs, backends, *smoke, *shards, *tsv)
	}

	if *timeline {
		ocfg := obs.Config{
			Interval: sim.Time(tlEvery.Nanoseconds()),
			Samples:  *tlCount,
			SpanCap:  *tlSpans,
		}
		return runTimelines(os.Stdout, specs, backends, *smoke, *qosName, *shards, ocfg, *tsv)
	}

	pool := core.Runner{Parallelism: *jobs, Shards: *shards}
	var all []*scenario.Result
	var fleets []*scenario.FleetResult
	for _, s := range specs {
		if s.Trace != nil {
			// A declarative trace scenario replays its recording.
			if *qosName != "" {
				s.QoS = &scenario.QoS{Scheduler: *qosName}
			}
			if err := emitReplay(os.Stdout, s, *tsv); err != nil {
				return err
			}
			continue
		}
		if s.Population != nil {
			// A population scenario runs through the fleet summarizer — a
			// δ sweep plus full pairwise matrix is infeasible at fleet
			// tenant counts.
			if *smoke {
				s = s.Smoke()
			}
			if *qosName != "" {
				s.QoS = &scenario.QoS{Scheduler: *qosName}
			}
			axis := backends
			if axis == nil {
				if axis, err = s.Backends(); err != nil {
					return err
				}
			}
			for _, b := range axis {
				f, err := scenario.RunFleet(s, b, pool)
				if err != nil {
					return err
				}
				fleets = append(fleets, f)
				if err := emit(os.Stdout, *tsv,
					scenario.RenderFleetClasses(f),
					scenario.RenderFleetSlowdown(f),
					scenario.RenderFleetPairs(f, 10)); err != nil {
					return err
				}
			}
			continue
		}
		if *smoke {
			s = s.Smoke()
		}
		if *qosName != "" {
			s.QoS = &scenario.QoS{Scheduler: *qosName}
		}
		axis := backends
		if axis == nil {
			if axis, err = s.Backends(); err != nil {
				return err
			}
		}
		for _, b := range axis {
			res, err := scenario.Run(s, b, pool)
			if err != nil {
				return err
			}
			all = append(all, res)
			// Shared with the what-if service: the HTTP API embeds this
			// exact byte stream, so the two cannot drift apart.
			text, err := whatif.ScenarioRunText(res, *tsv)
			if err != nil {
				return err
			}
			if _, err := io.WriteString(os.Stdout, text); err != nil {
				return err
			}
		}
	}
	if len(fleets) > 0 {
		if err := emit(os.Stdout, *tsv, scenario.RenderFleetSummary(fleets)); err != nil {
			return err
		}
	}
	if len(all) == 0 { // e.g. only trace replays or fleets ran
		return nil
	}
	text, err := whatif.ScenarioSummaryText(all, *tsv)
	if err != nil {
		return err
	}
	_, err = io.WriteString(os.Stdout, text)
	return err
}

// runFaults runs every selected fault scenario's healthy-vs-faulted
// comparison and prints the per-app IF-under-faults table plus the
// availability ledger. Selected scenarios without a faults block are an
// error: asking for a fault comparison of a fault-free scenario is a typo,
// not a no-op.
func runFaults(w io.Writer, specs []scenario.Spec, backends []cluster.BackendKind,
	smoke bool, shards int, tsv bool) error {
	ran := 0
	for _, s := range specs {
		if s.Faults == nil {
			if len(specs) == 1 {
				return fmt.Errorf("scenario %q has no faults block; see SCENARIOS.md or -run %s",
					s.Name, strings.Join(scenario.FaultNames(), ","))
			}
			continue // "-run all -faults" means "every fault scenario"
		}
		if smoke {
			s = s.Smoke()
		}
		axis := backends
		if axis == nil {
			var err error
			if axis, err = s.Backends(); err != nil {
				return err
			}
		}
		for _, b := range axis {
			fc, err := scenario.CompareFaults(s, b, shards)
			if err != nil {
				return err
			}
			if err := emit(w, tsv,
				scenario.RenderFaults(s, b, fc),
				scenario.RenderAvailability(s, b, fc)); err != nil {
				return err
			}
			ran++
		}
	}
	if ran == 0 {
		return fmt.Errorf("no selected scenario has a faults block (built-ins: %s)",
			strings.Join(scenario.FaultNames(), ", "))
	}
	return nil
}

// runTimelines runs every selected scenario's δ=0 co-run with the
// observability layer attached and prints the rendered timeline. Trace
// scenarios are skipped (no co-run to observe) unless explicitly the only
// selection, which is an error rather than silence.
func runTimelines(w io.Writer, specs []scenario.Spec, backends []cluster.BackendKind,
	smoke bool, qosName string, shards int, ocfg obs.Config, tsv bool) error {
	if err := ocfg.Validate(); err != nil {
		return err
	}
	for _, s := range specs {
		if s.Trace != nil {
			if len(specs) == 1 {
				return fmt.Errorf("scenario %q replays a recording; -timeline needs a co-run", s.Name)
			}
			continue
		}
		if smoke {
			s = s.Smoke()
		}
		if qosName != "" {
			s.QoS = &scenario.QoS{Scheduler: qosName}
		}
		axis := backends
		if axis == nil {
			var err error
			if axis, err = s.Backends(); err != nil {
				return err
			}
		}
		for _, b := range axis {
			res, err := scenario.RunTimeline(s, b, shards, ocfg)
			if err != nil {
				return err
			}
			text, err := scenario.TimelineText(s.Name, b, res, tsv)
			if err != nil {
				return err
			}
			if _, err := io.WriteString(w, text); err != nil {
				return err
			}
		}
	}
	return nil
}

// selectSpecs resolves the -file / -run selection into an ordered spec list.
func selectSpecs(file, run string) ([]scenario.Spec, error) {
	if file != "" {
		s, err := scenario.Load(file)
		if err != nil {
			return nil, err
		}
		return []scenario.Spec{s}, nil
	}
	if run == "all" || run == "" {
		return scenario.Builtin(), nil
	}
	var out []scenario.Spec
	for _, name := range strings.Split(run, ",") {
		s, err := scenario.Lookup(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// recordTrace records the scenario's δ=0 co-run on one backend, writes the
// trace file and prints the Darshan-style summary.
func recordTrace(w io.Writer, s scenario.Spec, b cluster.BackendKind, path string, tsv bool) error {
	t, _, err := scenario.Record(s, b)
	if err != nil {
		return err
	}
	if err := t.WriteFile(path); err != nil {
		return err
	}
	fmt.Fprintf(w, "recorded %s on %s: %d requests from %d apps -> %s\n\n",
		s.Name, b, len(t.Records), len(t.Header.Apps), path)
	sums := trace.Summarize(t)
	return emit(w, tsv,
		trace.RenderSummary(fmt.Sprintf("%s on %s: Darshan-style per-app summary", s.Name, b), sums),
		trace.RenderSizeHist(fmt.Sprintf("%s on %s: request-size histogram", s.Name, b), sums))
}

// replayTrace summarizes and replays a trace file. On an unmodified
// platform the replay is verified bit-identical to the recording (non-nil
// error on divergence); under -qos it is a counterfactual and only
// reported.
func replayTrace(w io.Writer, path, qosName string, tsv bool) error {
	spec := scenario.Spec{Name: "replay:" + path, Trace: &scenario.TraceBlock{Path: path}}
	if qosName != "" {
		spec.QoS = &scenario.QoS{Scheduler: qosName}
	}
	return emitReplay(w, spec, tsv)
}

// emitReplay executes one trace scenario and prints summary plus round-trip
// tables, failing on divergence unless the replay is counterfactual. The
// rendering is shared with the what-if service (whatif.ReplayText), which
// embeds the same bytes in its JSON responses.
func emitReplay(w io.Writer, s scenario.Spec, tsv bool) error {
	rep, t, err := scenario.Replay(s)
	if err != nil {
		return err
	}
	title := s.Trace.Path
	var counterfactualQoS string
	if s.QoS != nil {
		counterfactualQoS = s.QoS.Scheduler
	}
	text, err := whatif.ReplayText(title, counterfactualQoS, rep, t, tsv)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(w, text); err != nil {
		return err
	}
	if counterfactualQoS == "" && !rep.Identical() {
		return fmt.Errorf("replay of %s diverged from the recording (see the round-trip table)", title)
	}
	return nil
}

func emit(w io.Writer, tsv bool, tables ...*report.Table) error {
	return whatif.EmitTables(w, tsv, tables...)
}
