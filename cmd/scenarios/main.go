// Command scenarios runs declarative N-application interference scenarios
// (see SCENARIOS.md and internal/scenario) and prints, per scenario and
// backend, the alone baselines, the δ-graph and the pairwise
// interference-factor matrix.
//
// Usage:
//
//	scenarios -list                          # show the built-in registry
//	scenarios                                # run every built-in on HDD and SSD
//	scenarios -run elephant-mice,mixed-transfer
//	scenarios -file my_scenario.json         # run a hand-written spec
//	scenarios -smoke -run all                # the CI smoke grid (tiny)
//	scenarios -backend ssd -tsv              # one backend, machine-readable
//	scenarios -qos fairshare -run aggressor-victim   # under a QoS scheduler
//
// -qos runs every selected scenario with the named server-side QoS
// scheduler (off, fairshare, tokenbucket, controller) at its calibrated
// defaults, overriding any qos block in the spec; paperrepro -exp mitigate
// sweeps all schedulers side by side.
//
// Every alone baseline, δ point and pairwise co-run is an independent
// simulation; -j bounds how many run concurrently (default GOMAXPROCS).
// Output is identical at any -j.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/qos"
	"repro/internal/report"
	"repro/internal/scenario"
)

func main() {
	if err := realMain(); err != nil {
		fmt.Fprintf(os.Stderr, "scenarios: %v\n", err)
		os.Exit(1)
	}
}

func realMain() error {
	var (
		list    = flag.Bool("list", false, "list built-in scenarios and exit")
		run     = flag.String("run", "all", "comma-separated built-in scenario names, or all")
		file    = flag.String("file", "", "run a scenario spec from a JSON `file` instead of the registry")
		backend = flag.String("backend", "", "run on one backend only (hdd, ssd, ram, null); default: the scenario's axis (hdd+ssd)")
		smoke   = flag.Bool("smoke", false, "shrink every scenario to the CI smoke grid")
		qosName = flag.String("qos", "", "run under a server-side QoS `scheduler` (off, fairshare, tokenbucket, controller), overriding the spec")
		tsv     = flag.Bool("tsv", false, "TSV output instead of aligned tables")
		jobs    = flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulations (1 = serial)")
	)
	flag.Parse()

	if *qosName != "" {
		if _, err := qos.ParseKind(*qosName); err != nil {
			return err
		}
	}

	if *list {
		t := report.New("built-in scenarios", "name", "apps", "backend", "description")
		for _, s := range scenario.Builtin() {
			axis := s.Backend
			if axis == "" {
				axis = "hdd+ssd"
			}
			t.Add(s.Name, len(s.Apps), axis, s.Description)
		}
		return emit(os.Stdout, *tsv, t)
	}

	specs, err := selectSpecs(*file, *run)
	if err != nil {
		return err
	}

	var backends []cluster.BackendKind
	if *backend != "" {
		b, err := cluster.ParseBackend(*backend)
		if err != nil {
			return err
		}
		backends = []cluster.BackendKind{b}
	}

	pool := core.Runner{Parallelism: *jobs}
	var all []*scenario.Result
	for _, s := range specs {
		if *smoke {
			s = s.Smoke()
		}
		if *qosName != "" {
			s.QoS = &scenario.QoS{Scheduler: *qosName}
		}
		axis := backends
		if axis == nil {
			if axis, err = s.Backends(); err != nil {
				return err
			}
		}
		for _, b := range axis {
			res, err := scenario.Run(s, b, pool)
			if err != nil {
				return err
			}
			all = append(all, res)
			if err := emit(os.Stdout, *tsv,
				scenario.RenderBaselines(res),
				scenario.RenderGraph(res),
				scenario.RenderMatrix(res)); err != nil {
				return err
			}
		}
	}
	return emit(os.Stdout, *tsv, scenario.RenderSummary(all))
}

// selectSpecs resolves the -file / -run selection into an ordered spec list.
func selectSpecs(file, run string) ([]scenario.Spec, error) {
	if file != "" {
		s, err := scenario.Load(file)
		if err != nil {
			return nil, err
		}
		return []scenario.Spec{s}, nil
	}
	if run == "all" || run == "" {
		return scenario.Builtin(), nil
	}
	var out []scenario.Spec
	for _, name := range strings.Split(run, ",") {
		s, err := scenario.Lookup(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func emit(w io.Writer, tsv bool, tables ...*report.Table) error {
	for _, t := range tables {
		var err error
		if tsv {
			err = t.WriteTSV(w)
		} else {
			err = t.WriteASCII(w)
		}
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
