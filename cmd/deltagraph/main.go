// Command deltagraph produces a δ-graph (the paper's reporting device) for
// a configurable two-application experiment and prints it as a table plus a
// crude terminal plot.
//
// Example:
//
//	deltagraph -span 40 -points 9 -backend hdd -sync on -nodes 8 -servers 2
//
// Every point of the graph is an independent simulation; -j bounds how many
// run concurrently (default GOMAXPROCS). Output is identical at any -j.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/pfs"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 8, "compute nodes")
		ppn     = flag.Int("ppn", 16, "processes per node")
		servers = flag.Int("servers", 2, "storage servers")
		backend = flag.String("backend", "hdd", "hdd, ssd, ram, null")
		syncOn  = flag.String("sync", "on", "on, off, null-aio")
		block   = flag.Int64("blockMB", 64, "MiB per process")
		span    = flag.Float64("span", 40, "delta range: graph covers ±span seconds")
		points  = flag.Int("points", 9, "number of delta points (odd, includes 0)")
		tsv     = flag.Bool("tsv", false, "TSV output instead of table+plot")
		jobs    = flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulations (1 = serial)")
	)
	flag.Parse()

	cfg := cluster.Default()
	cfg.ComputeNodes = *nodes
	cfg.CoresPerNode = *ppn
	cfg.Servers = *servers
	var err error
	if cfg.Backend, err = cluster.ParseBackend(*backend); err != nil {
		fmt.Fprintln(os.Stderr, "deltagraph:", err)
		os.Exit(1)
	}
	switch strings.ToLower(*syncOn) {
	case "on":
		cfg.Sync = pfs.SyncOn
	case "off":
		cfg.Sync = pfs.SyncOff
	default:
		cfg.Sync = pfs.NullAIO
	}

	wl := workload.Spec{Pattern: workload.Contiguous, BlockBytes: *block << 20}
	procs := *nodes / 2 * *ppn
	apps := core.TwoAppSpecs(cfg, procs, *ppn, wl)

	n := *points
	if n < 3 {
		n = 3
	}
	if n%2 == 0 {
		n++
	}
	var deltas []sim.Time
	for i := 0; i < n; i++ {
		frac := float64(i)/float64(n-1)*2 - 1 // -1..1
		deltas = append(deltas, sim.Seconds(frac**span))
	}

	pool := core.Runner{Parallelism: *jobs}
	g := pool.RunDelta(core.DeltaSpec{Cfg: cfg, Apps: apps, Deltas: deltas})

	t := report.New(
		fmt.Sprintf("delta-graph: %d procs/app, %s, %s (alone A=%.1fs B=%.1fs)",
			procs, cfg.Backend, cfg.Sync, g.Alone[0].Seconds(), g.Alone[1].Seconds()),
		"delta_s", "A_s", "B_s", "IF_A", "IF_B", "drops", "timeouts")
	for _, p := range g.Points {
		t.Add(p.Delta.Seconds(), p.Elapsed[0].Seconds(), p.Elapsed[1].Seconds(),
			p.IF[0], p.IF[1], p.Diag.PortDrops, p.Diag.Timeouts)
	}
	if *tsv {
		_ = t.WriteTSV(os.Stdout)
		return
	}
	_ = t.WriteASCII(os.Stdout)

	// Terminal plot of application A's write time vs delta.
	fmt.Println("\napplication A write time vs delta:")
	maxT := g.Alone[0]
	for _, p := range g.Points {
		if p.Elapsed[0] > maxT {
			maxT = p.Elapsed[0]
		}
	}
	for _, p := range g.Points {
		bar := int(60 * float64(p.Elapsed[0]) / float64(maxT))
		fmt.Printf("%+6.0fs |%s %.1fs\n", p.Delta.Seconds(), strings.Repeat("#", bar), p.Elapsed[0].Seconds())
	}
	fmt.Printf("\npeak IF %.2f, unfairness %.2f\n", g.PeakIF(), g.Unfairness())
}
