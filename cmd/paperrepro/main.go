// Command paperrepro regenerates every table and figure of Yildiz et al.,
// "On the Root Causes of Cross-Application I/O Interference in HPC Storage
// Systems" (IPDPS 2016) on the simulated platform.
//
// Usage:
//
//	paperrepro -exp all                 # everything, paper-size grids
//	paperrepro -exp fig2 -scale 8       # one figure on a 1/8-size platform
//	paperrepro -exp table1 -format tsv  # machine-readable output
//
// Experiments: table1, fig2, fig3, fig4, fig5, fig6 (includes table2),
// fig7, fig8, fig9, fig10, fig11, fig12, ablation-policy, ablation-read.
// Beyond the paper, "scenarios" runs every built-in N-application scenario
// (see SCENARIOS.md) on HDD and SSD; "mitigate" sweeps every built-in
// scenario on HDD under each server-side QoS scheduler — off, fairshare,
// tokenbucket, controller (internal/qos) — and prints the per-scenario
// Pareto view: interference removed versus aggregate throughput paid;
// "trace" records the periodic-checkpoint builtin at request level
// (internal/trace), prints its Darshan-style summary, replays it
// bit-identically and replays it again under fair-share QoS; and "faults"
// runs every built-in fault scenario (internal/fault: deterministic server
// crashes, degraded devices, link flaps) against its healthy twin and
// reports IF-under-faults plus the availability ledger; and "fleet" runs
// every generated-population builtin (internal/population: ≥1000 tenants,
// Zipf volumes, Poisson arrivals) through the fleet summarizer — per-class
// IF distributions, slowdown-vs-alone percentiles and sampled
// aggressor/victim pairs instead of the infeasible N×N matrix.
// Note: for these extension experiments any -scale > 1 selects the fixed smoke
// grid (procs/8, volume/16, ≤3 δ points) rather than acting as a divisor;
// cmd/scenarios is the richer single-scheduler driver (-run, -file,
// -backend, -smoke, -qos, -trace, -replay).
//
// -scale divides node/server counts (processes per server stay constant);
// -coarse uses 5-point δ grids instead of the paper's 9-point grids;
// -j bounds the number of concurrent simulations (default GOMAXPROCS,
// -j 1 forces the serial reference path; results are identical either way).
//
// Profiling: -cpuprofile and -memprofile write pprof profiles covering the
// selected experiments, so simulator performance work can profile a real
// campaign (where δ-point simulations dominate) instead of microbenchmarks:
//
//	paperrepro -exp fig2 -scale 4 -coarse -j 1 -cpuprofile cpu.out
//	go tool pprof cpu.out
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/paper"
	"repro/internal/pfs"
	"repro/internal/qos"
	qosreport "repro/internal/qos/report"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := realMain(); err != nil {
		fmt.Fprintf(os.Stderr, "paperrepro: %v\n", err)
		os.Exit(1)
	}
}

func realMain() error {
	exp := flag.String("exp", "all", "experiment id (table1, fig2..fig12, table2, ablation-policy, ablation-read, scenarios, mitigate, trace, faults, fleet, all)")
	scale := flag.Int("scale", 1, "platform scale divisor (1 = paper size)")
	coarse := flag.Bool("coarse", false, "use coarse 5-point delta grids")
	format := flag.String("format", "ascii", "output format: ascii or tsv")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulations (1 = serial)")
	shards := flag.Int("shards", 0, "event-kernel shards per simulation (0/1 = serial oracle); results are bit-identical at any value")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the campaign to `file`")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the campaign) to `file`")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	kind := paper.GridFull
	if *coarse {
		kind = paper.GridCoarse
	}
	paper.Pool = core.Runner{Parallelism: *jobs, Shards: *shards}
	w := os.Stdout
	run := newRunner(w, *format, *scale, kind)

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
			"fig8", "fig9", "fig10", "fig11", "fig12", "ablation-policy", "ablation-read"}
	}
	for _, id := range ids {
		if err := run.one(strings.TrimSpace(id)); err != nil {
			return err
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC() // materialize the live heap before snapshotting
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
	}
	return nil
}

type runner struct {
	w      io.Writer
	format string
	scale  int
	kind   paper.GridKind
}

func newRunner(w io.Writer, format string, scale int, kind paper.GridKind) *runner {
	return &runner{w: w, format: format, scale: scale, kind: kind}
}

func (r *runner) emit(tables ...*report.Table) {
	for _, t := range tables {
		if r.format == "tsv" {
			_ = t.WriteTSV(r.w)
		} else {
			_ = t.WriteASCII(r.w)
		}
		fmt.Fprintln(r.w)
	}
}

func (r *runner) one(id string) error {
	start := time.Now()
	defer func() {
		fmt.Fprintf(r.w, "# %s done in %v\n\n", id, time.Since(start).Round(time.Millisecond))
	}()
	switch id {
	case "table1":
		r.emit(paper.RenderTable1(paper.Table1()))
	case "fig2":
		on := paper.Fig2(r.scale, true, r.kind)
		off := paper.Fig2(r.scale, false, r.kind)
		r.emit(
			paper.RenderAlone("Figure 2 baselines (sync ON)", on),
			paper.RenderSeries("Figure 2(a,b): contiguous, sync ON", on),
			paper.RenderAlone("Figure 2 baselines (sync OFF)", off),
			paper.RenderSeries("Figure 2(c,d): contiguous, sync OFF", off),
		)
	case "fig3":
		on := paper.Fig3(r.scale, true, r.kind)
		off := paper.Fig3(r.scale, false, r.kind)
		r.emit(
			paper.RenderAlone("Figure 3 baselines (sync ON)", on),
			paper.RenderSeries("Figure 3(a-d): strided, sync ON", on),
			paper.RenderAlone("Figure 3 baselines (sync OFF)", off),
			paper.RenderSeries("Figure 3(e,f): strided, sync OFF", off),
		)
	case "fig4":
		s := paper.Fig4(r.scale, r.kind)
		r.emit(
			paper.RenderAlone("Figure 4 baselines", s),
			paper.RenderSeries("Figure 4: writers per node", s),
		)
	case "fig5":
		on := paper.Fig5(r.scale, true, r.kind)
		off := paper.Fig5(r.scale, false, r.kind)
		r.emit(
			paper.RenderAlone("Figure 5 baselines (sync ON)", on),
			paper.RenderSeries("Figure 5(a): bandwidth, sync ON", on),
			paper.RenderAlone("Figure 5 baselines (sync OFF)", off),
			paper.RenderSeries("Figure 5(b): bandwidth, sync OFF", off),
		)
	case "fig6", "table2":
		pts, series := paper.Fig6(r.scale, []int{4, 8, 12, 24}, r.kind)
		r.emit(
			paper.RenderScaling(pts),
			paper.RenderTable2(pts),
			paper.RenderSeries("Figure 6(b): throughput delta-graph", series),
		)
	case "fig7":
		hdd := paper.Fig7(r.scale, cluster.HDD, r.kind)
		ram := paper.Fig7(r.scale, cluster.RAM, r.kind)
		r.emit(
			paper.RenderAlone("Figure 7 baselines (HDD)", hdd),
			paper.RenderSeries("Figure 7(a): targeted servers, HDD sync ON", hdd),
			paper.RenderAlone("Figure 7 baselines (RAM)", ram),
			paper.RenderSeries("Figure 7(b): targeted servers, RAM", ram),
		)
	case "fig8":
		stripes := []int64{64 << 10, 128 << 10, 256 << 10}
		on := paper.Fig8(r.scale, true, stripes, r.kind)
		off := paper.Fig8(r.scale, false, stripes, r.kind)
		r.emit(
			paper.RenderAlone("Figure 8 baselines (sync ON)", on),
			paper.RenderSeries("Figure 8(a): stripe size, sync ON", on),
			paper.RenderAlone("Figure 8 baselines (sync OFF)", off),
			paper.RenderSeries("Figure 8(b): stripe size, sync OFF", off),
		)
	case "fig9":
		blocks := []int64{64 << 10, 128 << 10, 256 << 10, 512 << 10}
		on := paper.Fig9(r.scale, true, blocks, r.kind)
		off := paper.Fig9(r.scale, false, blocks, r.kind)
		r.emit(
			paper.RenderAlone("Figure 9 baselines (sync ON)", on),
			paper.RenderSeries("Figure 9(a): request size, sync ON", on),
			paper.RenderAlone("Figure 9 baselines (sync OFF)", off),
			paper.RenderSeries("Figure 9(b): request size, sync OFF", off),
		)
	case "fig10":
		alone, contended := paper.Fig10(r.scale)
		r.emit(
			paper.RenderTrace("Figure 10(a): TCP window, independent run", alone, 800),
			paper.RenderTrace("Figure 10(b): TCP window, interfering", contended, 800),
		)
	case "fig11":
		res := paper.Fig11(r.scale)
		until := res.End.Seconds()
		r.emit(
			paper.RenderProgress("Figure 11(a): application A (first)", res.TraceA, res.TotalA, 1, until),
			paper.RenderProgress("Figure 11(b): application B (second, +10s)", res.TraceB, res.TotalB, 1, until),
		)
	case "fig12":
		s := paper.Fig12(r.scale, []int{128, 256, 352, 512, 704, 960}, r.kind)
		r.emit(
			paper.RenderAlone("Figure 12 baselines", s),
			paper.RenderSeries("Figure 12: client count sweep, HDD sync ON", s),
		)
	case "ablation-policy":
		r.emit(r.ablationPolicy())
	case "ablation-read":
		r.emit(r.ablationRead())
	case "scenarios":
		if err := r.scenarios(); err != nil {
			return err
		}
	case "mitigate":
		if err := r.mitigate(); err != nil {
			return err
		}
	case "trace":
		if err := r.trace(); err != nil {
			return err
		}
	case "faults":
		if err := r.faults(); err != nil {
			return err
		}
	case "fleet":
		if err := r.fleet(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}

// scenarios runs every built-in N-application scenario on its backend axis
// (HDD and SSD) and emits the summary plus the per-result pairwise IF
// matrices. -scale > 1 selects the smoke grid. cmd/scenarios offers finer
// selection (-run, -file, -backend).
func (r *runner) scenarios() error {
	var all []*scenario.Result
	for _, s := range scenario.Builtin() {
		if r.scale > 1 {
			s = s.Smoke()
		}
		results, err := scenario.RunAll(s, paper.Pool)
		if err != nil {
			return err
		}
		for _, res := range results {
			all = append(all, res)
			r.emit(scenario.RenderGraph(res), scenario.RenderMatrix(res))
		}
	}
	r.emit(scenario.RenderSummary(all))
	return nil
}

// mitigate sweeps every built-in scenario on HDD under the standard QoS
// scheme set and emits, per scenario, the Pareto table (plus the raw
// per-scheme δ-graphs) and a campaign summary. -scale > 1 selects the
// smoke grid, like the scenarios experiment.
func (r *runner) mitigate() error {
	schemes := core.StandardSchemes()
	var titles []string
	var sweeps []*core.Sweep
	for _, s := range scenario.Builtin() {
		if r.scale > 1 {
			s = s.Smoke()
		}
		sw, err := scenario.Sweep(s, cluster.HDD, schemes, paper.Pool)
		if err != nil {
			return err
		}
		names := scenario.AppNames(s)
		titles = append(titles, s.Name)
		sweeps = append(sweeps, sw)
		r.emit(
			qosreport.RenderPareto(fmt.Sprintf("%s on hdd: mitigation Pareto view", s.Name), sw),
			qosreport.RenderSweepGraphs(fmt.Sprintf("%s on hdd: per-scheme delta-graphs", s.Name), sw, names),
		)
	}
	r.emit(qosreport.RenderSummary(titles, sweeps))
	return nil
}

// trace demonstrates the trace subsystem in memory: record the periodic
// checkpoint builtin's δ=0 co-run on HDD, print the Darshan-style summary,
// replay it on the recorded platform (verified bit-identical) and once more
// under the fair-share QoS scheduler (the counterfactual arm). -scale > 1
// selects the smoke grid, like the scenarios and mitigate experiments;
// cmd/scenarios -trace/-replay is the file-based driver.
func (r *runner) trace() error {
	s, err := scenario.Lookup("periodic-checkpoint-4")
	if err != nil {
		return err
	}
	if r.scale > 1 {
		s = s.Smoke()
	}
	t, _, err := scenario.Record(s, cluster.HDD)
	if err != nil {
		return err
	}
	rep, err := trace.Replay(t)
	if err != nil {
		return err
	}
	sums := trace.Summarize(t)
	r.emit(
		trace.RenderSummary(fmt.Sprintf("%s on hdd: Darshan-style per-app summary", s.Name), sums),
		trace.RenderSizeHist(fmt.Sprintf("%s on hdd: request-size histogram", s.Name), sums),
		trace.RenderRoundTrip(fmt.Sprintf("%s on hdd: recorded vs replayed completions", s.Name), rep),
	)
	if !rep.Identical() {
		return fmt.Errorf("trace: replay diverged from the recording")
	}
	// FlowSlots 4 serializes the flow layer enough that grant-time
	// arbitration binds even at smoke scale.
	qcfg := t.Header.Cfg
	qcfg.Srv.QoS = qos.Params{Kind: qos.FairShare, FlowSlots: 4}
	qrep, err := trace.ReplayOn(t, qcfg)
	if err != nil {
		return err
	}
	r.emit(trace.RenderRoundTrip(
		fmt.Sprintf("%s on hdd: counterfactual replay under qos=fairshare", s.Name), qrep))
	return nil
}

// faults runs every built-in fault scenario's healthy-vs-faulted
// comparison on HDD and SSD: the same apps twice, with and without the
// injected crash/degrade timeline, reported as IF-under-faults plus the
// availability ledger. -scale > 1 selects the smoke grid, like the
// scenarios experiment; cmd/scenarios -faults is the finer driver.
func (r *runner) faults() error {
	ran := false
	for _, s := range scenario.Builtin() {
		if s.Faults == nil {
			continue
		}
		if r.scale > 1 {
			s = s.Smoke()
		}
		axis, err := s.Backends()
		if err != nil {
			return err
		}
		for _, b := range axis {
			fc, err := scenario.CompareFaults(s, b, paper.Pool.Shards)
			if err != nil {
				return err
			}
			r.emit(scenario.RenderFaults(s, b, fc), scenario.RenderAvailability(s, b, fc))
			ran = true
		}
	}
	if !ran {
		return fmt.Errorf("no built-in fault scenarios in the registry")
	}
	return nil
}

// fleet runs every generated-population builtin on its pinned backend axis
// through the fleet summarizer and emits the per-class, percentile and
// top-pair views plus the campaign summary. -scale > 1 selects the smoke
// grid (volume/16, procs/8, time knobs/128), like the other extension
// experiments; the tenant count and class mix are preserved, so the smoke
// fleet is the full fleet at reduced per-tenant weight.
func (r *runner) fleet() error {
	var all []*scenario.FleetResult
	for _, s := range scenario.FleetBuiltin() {
		if r.scale > 1 {
			s = s.Smoke()
		}
		results, err := scenario.RunFleetAll(s, paper.Pool)
		if err != nil {
			return err
		}
		for _, f := range results {
			all = append(all, f)
			r.emit(
				scenario.RenderFleetClasses(f),
				scenario.RenderFleetSlowdown(f),
				scenario.RenderFleetPairs(f, 10),
			)
		}
	}
	r.emit(scenario.RenderFleetSummary(all))
	return nil
}

// ablationPolicy compares server request-scheduling policies at δ=+10s —
// the server-side coordination the related work proposes (Song et al.).
func (r *runner) ablationPolicy() *report.Table {
	t := report.New("Ablation: server scheduling policy (contig, HDD sync ON, delta=+10s)",
		"policy", "A_s", "B_s", "unfairness")
	policies := []struct {
		name string
		p    pfs.ReadPolicy
	}{{"fifo (PVFS)", pfs.ReadFIFO}, {"app-ordered", pfs.ReadAppOrdered}, {"round-robin", pfs.ReadRoundRobin}}
	var specs []core.DeltaSpec
	for _, pol := range policies {
		cfg := paper.Config(r.scale)
		cfg.Srv.Policy = pol.p
		apps := core.TwoAppSpecs(cfg, paper.ProcsPerApp(cfg), cfg.CoresPerNode, paper.ContigSpec())
		specs = append(specs, core.DeltaSpec{Cfg: cfg, Apps: apps, Deltas: core.Deltas(10)})
	}
	for i, g := range paper.Pool.RunDeltas(specs) {
		p := g.At(core.Deltas(10)[2])
		t.Add(policies[i].name, p.Elapsed[0].Seconds(), p.Elapsed[1].Seconds(), g.Unfairness())
	}
	return t
}

// ablationRead runs the read/read interference variant (the paper's future
// work) on RAM and HDD backends.
func (r *runner) ablationRead() *report.Table {
	t := report.New("Extension: read/read interference (contiguous reads, delta=0)",
		"backend", "alone_s", "contended_s", "IF")
	backends := []cluster.BackendKind{cluster.HDD, cluster.RAM}
	var specs []core.DeltaSpec
	for _, b := range backends {
		cfg := paper.Config(r.scale)
		cfg.Backend = b
		wl := workload.Spec{Pattern: workload.Contiguous, BlockBytes: paper.BlockBytes, Read: true}
		apps := core.TwoAppSpecs(cfg, paper.ProcsPerApp(cfg), cfg.CoresPerNode, wl)
		specs = append(specs, core.DeltaSpec{Cfg: cfg, Apps: apps, Deltas: core.Deltas()})
	}
	for i, g := range paper.Pool.RunDeltas(specs) {
		p := g.At(0)
		t.Add(backends[i].String(), g.Alone[0].Seconds(), p.Elapsed[0].Seconds(), p.IF[0])
	}
	return t
}
