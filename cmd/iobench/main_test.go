package main

import "testing"

func TestParseSizeErr(t *testing.T) {
	good := map[string]int64{
		"64":   64,
		"64K":  64 << 10,
		" 4m ": 4 << 20,
		"2G":   2 << 30,
	}
	for in, want := range good {
		got, err := parseSizeErr(in)
		if err != nil || got != want {
			t.Errorf("parseSizeErr(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	bad := []string{"", "x", "4X", "-1", "0", "-4K", "9999999999G", "1.5M"}
	for _, in := range bad {
		if got, err := parseSizeErr(in); err == nil {
			t.Errorf("parseSizeErr(%q) = %d, want error", in, got)
		}
	}
}
