// Command iobench runs a single IOR-like benchmark configuration against a
// simulated platform and prints per-application results — the simulator's
// equivalent of one microbenchmark execution from the paper.
//
// Example:
//
//	iobench -apps 2 -procs 64 -pattern strided -block 64M -xfer 256K \
//	        -backend hdd -sync on -servers 4 -nodes 8 -delta 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		nApps    = flag.Int("apps", 2, "number of applications (1 or 2)")
		procs    = flag.Int("procs", 64, "processes per application")
		ppn      = flag.Int("ppn", 16, "processes per compute node")
		nodes    = flag.Int("nodes", 8, "compute nodes")
		servers  = flag.Int("servers", 4, "storage servers")
		backend  = flag.String("backend", "hdd", "hdd, ssd, ram or null")
		syncMode = flag.String("sync", "on", "on, off or null-aio")
		pattern  = flag.String("pattern", "contiguous", "contiguous or strided")
		block    = flag.String("block", "64M", "bytes per process")
		xfer     = flag.String("xfer", "256K", "request size (strided)")
		stripe   = flag.String("stripe", "64K", "file system stripe size")
		qd       = flag.Int("qd", 1, "outstanding requests per process")
		delta    = flag.Float64("delta", 0, "delay of the second application, seconds")
		clientGb = flag.Float64("clientgbps", 10, "client NIC, Gbit/s")
		read     = flag.Bool("read", false, "read instead of write")
	)
	flag.Parse()

	// Range-check every numeric flag before constructing the platform: a
	// zero divisor (servers, ppn) or a negative count would otherwise
	// panic deep in cluster/workload setup instead of printing usage.
	switch {
	case *nApps < 1 || *nApps > 2:
		usageErr("-apps must be 1 or 2")
	case *procs < 1:
		usageErr("-procs must be >= 1")
	case *ppn < 1:
		usageErr("-ppn must be >= 1")
	case *nodes < 1:
		usageErr("-nodes must be >= 1")
	case *servers < 1:
		usageErr("-servers must be >= 1")
	case *qd < 1:
		usageErr("-qd must be >= 1")
	case *delta < 0:
		usageErr("-delta must be >= 0 seconds")
	case *clientGb <= 0:
		usageErr("-clientgbps must be > 0")
	}

	cfg := cluster.Default()
	cfg.ComputeNodes = *nodes
	cfg.Servers = *servers
	cfg.CoresPerNode = *ppn
	cfg.ClientNIC = *clientGb * 1e9 / 8
	cfg.StripeSize = parseSize(*stripe)
	var err error
	if cfg.Backend, err = cluster.ParseBackend(*backend); err != nil {
		fatal(err)
	}
	switch strings.ToLower(*syncMode) {
	case "on":
		cfg.Sync = pfs.SyncOn
	case "off":
		cfg.Sync = pfs.SyncOff
	case "null-aio", "null":
		cfg.Sync = pfs.NullAIO
	default:
		fatal(fmt.Errorf("unknown sync mode %q", *syncMode))
	}

	wl := workload.Spec{
		Pattern:      workload.Contiguous,
		BlockBytes:   parseSize(*block),
		TransferSize: parseSize(*xfer),
		QD:           *qd,
		Read:         *read,
	}
	if strings.HasPrefix(strings.ToLower(*pattern), "strid") {
		wl.Pattern = workload.Strided
	}
	if err := wl.Validate(); err != nil {
		fatal(err)
	}

	specs := core.TwoAppSpecs(cfg, *procs, *ppn, wl)
	specs[1].Start = sim.Seconds(*delta)
	use := []core.AppSpec{specs[0]}
	if *nApps > 1 {
		use = append(use, specs[1])
	}

	res := core.Prepare(cfg, use).Run()
	fmt.Printf("platform: %d nodes x %d cores, %d servers, %s backend, %s, stripe %s\n",
		cfg.ComputeNodes, cfg.CoresPerNode, cfg.Servers, cfg.Backend, cfg.Sync,
		sim.FormatBytes(cfg.StripeSize))
	fmt.Printf("workload: %s, %s/process, %d procs/app\n\n",
		wl.Pattern, sim.FormatBytes(wl.BlockBytes), *procs)
	for _, a := range res.Apps {
		fmt.Printf("app %s: start %7.1fs  phase %7.2fs  %7.2f MB/s aggregate\n",
			a.Name, a.Start.Seconds(), a.Elapsed.Seconds(), a.Throughput/1e6)
	}
	d := res.Diag
	fmt.Printf("\ndiagnostics: %d port drops, %d TCP timeouts, %d retransmitted segments\n",
		d.PortDrops, d.Timeouts, d.RetransSegs)
	fmt.Printf("             %d device seeks, %s stored, %d cache-blocked writes\n",
		d.DeviceSeeks, sim.FormatBytes(d.DeviceBytes), d.CacheBlocks)
	fmt.Printf("             %d simulation events\n", d.Events)
}

// parseSize parses "64K", "4M", "2G" or plain bytes; sizes must be
// positive. Exits with usage on a malformed value.
func parseSize(s string) int64 {
	v, err := parseSizeErr(s)
	if err != nil {
		usageErr(err.Error())
	}
	return v
}

func parseSizeErr(s string) (int64, error) {
	orig := s
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, s[:len(s)-1]
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", orig)
	}
	if v <= 0 || v > (1<<62)/mult {
		return 0, fmt.Errorf("size %q out of range (must be positive)", orig)
	}
	return v * mult, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iobench:", err)
	os.Exit(1)
}

// usageErr reports a bad flag value the way the flag package itself does:
// the complaint, then the defaults, then exit status 2.
func usageErr(msg string) {
	fmt.Fprintln(os.Stderr, "iobench:", msg)
	flag.Usage()
	os.Exit(2)
}
