package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/whatif"
)

// TestServeSmoke is the end-to-end serving contract, run by `make serve`:
// build the daemon and the CLI, record a trace, then prove every arm text
// the HTTP API returns is byte-identical to the equivalent `cmd/scenarios`
// stdout — cold and cache-hit alike — and that SIGTERM drains to exit 0.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e serve smoke: skipped with -short")
	}
	dir := t.TempDir()
	whatifd := filepath.Join(dir, "whatifd")
	scenariosBin := filepath.Join(dir, "scenarios")
	build(t, whatifd, "./cmd/whatifd", "-race")
	build(t, scenariosBin, "./cmd/scenarios")

	// Record the smoke checkpoint trace the replay comparisons use.
	tracePath := filepath.Join(dir, "rec.trace")
	run(t, scenariosBin, "-smoke", "-backend", "hdd", "-run", "periodic-checkpoint-4", "-trace", tracePath)

	// CLI ground truth, one invocation per arm.
	arms := []string{"off", "fairshare", "tokenbucket", "controller"}
	wantScenario := make(map[string]string, len(arms))
	for _, a := range arms {
		wantScenario[a] = run(t, scenariosBin, "-tsv", "-smoke", "-backend", "hdd", "-run", "aggressor-victim", "-qos", a)
	}
	wantReplayBase := run(t, scenariosBin, "-tsv", "-replay", tracePath)
	wantReplayFS := run(t, scenariosBin, "-tsv", "-replay", tracePath, "-qos", "fairshare")

	baseURL := startDaemon(t, whatifd)

	// Scenario session: the builtin spec inline, smoke-shrunk server-side.
	spec, err := scenario.Lookup("aggressor-victim")
	if err != nil {
		t.Fatal(err)
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	env, err := json.Marshal(map[string]any{
		"scenario": json.RawMessage(specJSON),
		"backend":  "hdd",
		"smoke":    true,
		"arms":     []string{"fairshare", "tokenbucket", "controller"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := post(t, baseURL+"/v1/whatif", "application/json", env)
	if len(rep.Arms) != len(arms) {
		t.Fatalf("scenario session returned %d arms, want %d", len(rep.Arms), len(arms))
	}
	for i, a := range arms {
		if rep.Arms[i].Scheme != a {
			t.Fatalf("arm %d is %q, want %q", i, rep.Arms[i].Scheme, a)
		}
		if rep.Arms[i].Text != wantScenario[a] {
			t.Fatalf("arm %q text diverges from `scenarios -tsv -smoke -backend hdd -run aggressor-victim -qos %s`:\n--- service ---\n%s\n--- CLI ---\n%s",
				a, a, rep.Arms[i].Text, wantScenario[a])
		}
	}

	// Trace session: the recorded bytes under the CLI's own path label.
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	traceURL := baseURL + "/v1/whatif/trace?arms=fairshare&name=" + tracePath
	trep, cold := post(t, traceURL, "application/octet-stream", raw)
	if cold != "miss" {
		t.Fatalf("first trace upload: X-Whatif-Cache = %q, want miss", cold)
	}
	if len(trep.Arms) != 2 {
		t.Fatalf("trace session returned %d arms, want 2", len(trep.Arms))
	}
	if trep.Arms[0].Text != wantReplayBase {
		t.Fatalf("baseline replay text diverges from `scenarios -tsv -replay`:\n--- service ---\n%s\n--- CLI ---\n%s",
			trep.Arms[0].Text, wantReplayBase)
	}
	if trep.Arms[1].Text != wantReplayFS {
		t.Fatalf("fairshare replay text diverges from `scenarios -tsv -replay -qos fairshare`:\n--- service ---\n%s\n--- CLI ---\n%s",
			trep.Arms[1].Text, wantReplayFS)
	}

	// Same upload again: served from the cache, byte-identical document.
	first := rawPost(t, traceURL, "application/octet-stream", raw)
	second := rawPost(t, traceURL, "application/octet-stream", raw)
	if second.cache != "hit" {
		t.Fatalf("repeat upload: X-Whatif-Cache = %q, want hit", second.cache)
	}
	if !bytes.Equal(first.body, second.body) {
		t.Fatal("cache-hit response differs from the cold one")
	}
}

// build compiles one command into out.
func build(t *testing.T, out, pkg string, extra ...string) {
	t.Helper()
	args := append([]string{"build"}, extra...)
	args = append(args, "-o", out, pkg)
	cmd := exec.Command("go", args...)
	cmd.Dir = repoRoot(t)
	if b, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go %s: %v\n%s", strings.Join(args, " "), err, b)
	}
}

// run executes a CLI invocation and returns its stdout.
func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, errb.String())
	}
	return out.String()
}

// startDaemon launches whatifd on an ephemeral port, waits for its
// listening line, and registers a SIGTERM-drains-to-exit-0 check.
func startDaemon(t *testing.T, bin string) string {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addr := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if _, a, ok := strings.Cut(line, "listening on "); ok {
				addr <- a
			}
		}
	}()
	var base string
	select {
	case a := <-addr:
		base = "http://" + a
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("whatifd never reported its listening address")
	}
	t.Cleanup(func() {
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			cmd.Process.Kill()
			t.Fatalf("signaling whatifd: %v", err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("whatifd did not exit 0 after SIGTERM: %v", err)
			}
		case <-time.After(30 * time.Second):
			cmd.Process.Kill()
			t.Error("whatifd did not drain within 30s of SIGTERM")
		}
	})
	return base
}

type postResult struct {
	body  []byte
	cache string
}

// rawPost posts a body and returns the raw response, failing on non-200.
func rawPost(t *testing.T, url, ctype string, body []byte) postResult {
	t.Helper()
	resp, err := http.Post(url, ctype, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, b)
	}
	return postResult{body: b, cache: resp.Header.Get("X-Whatif-Cache")}
}

// post posts a body and decodes the report.
func post(t *testing.T, url, ctype string, body []byte) (*whatif.Report, string) {
	t.Helper()
	res := rawPost(t, url, ctype, body)
	var rep whatif.Report
	if err := json.Unmarshal(res.body, &rep); err != nil {
		t.Fatalf("POST %s: response is not a report: %v", url, err)
	}
	return &rep, res.cache
}

// repoRoot resolves the module root from the package directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", root, err)
	}
	return root
}
