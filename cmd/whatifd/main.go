// Command whatifd serves counterfactual what-if analysis over HTTP: POST
// an IOTRACE1 recording or an inline scenario spec and get back the
// un-mitigated baseline plus a sweep of QoS mitigation arms — per-app
// summaries, IF vectors and a Pareto report, byte-identical to the
// equivalent cmd/scenarios CLI runs.
//
// Endpoints (see SCENARIOS.md for a curl walkthrough):
//
//	POST /v1/whatif        inline scenario spec + sweep options (JSON)
//	POST /v1/whatif/trace  raw IOTRACE1 body; options in the query string
//	GET  /v1/jobs/{id}     poll an asynchronous session
//	GET  /healthz          liveness + serving counters + uptime
//	GET  /metrics          Prometheus text exposition (serving counters
//	                       and the last session's simulation results)
//
// With -debug-addr a second listener serves the Go runtime surface —
// /debug/vars (expvar, including the whatifd.health document) and
// /debug/pprof/ — kept off the service address so profiling endpoints are
// never reachable through the API port.
//
// Example:
//
//	whatifd -addr 127.0.0.1:8080 -cache-mb 256 &
//	curl -s -X POST --data-binary @run.trace \
//	    'http://127.0.0.1:8080/v1/whatif/trace?name=run.trace&arms=fairshare'
//	curl -s http://127.0.0.1:8080/metrics
//
// SIGINT/SIGTERM drain in-flight sessions before exiting 0.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/whatif"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:port)")
		cacheMB      = flag.Int("cache-mb", 256, "baseline cache budget, MiB (0 disables caching)")
		queueLen     = flag.Int("queue", 64, "session queue bound (full queue answers 429)")
		workers      = flag.Int("workers", 2, "sessions executing concurrently")
		jobs         = flag.Int("j", 0, "simulation parallelism inside one session (0 = all cores)")
		shards       = flag.Int("shards", 0, "default event-kernel shard override (0 = per-spec)")
		maxBodyMB    = flag.Int("max-body-mb", 64, "request body cap, MiB")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "in-flight session drain budget on shutdown")
		headerTO     = flag.Duration("read-header-timeout", 5*time.Second, "request-header read deadline (slowloris hardening)")
		debugAddr    = flag.String("debug-addr", "", "serve expvar and pprof on this host:port (empty disables)")
	)
	flag.Parse()

	if flag.NArg() > 0 {
		usageErr(fmt.Sprintf("unexpected argument %q", flag.Arg(0)))
	}
	if err := validateFlags(*addr, *cacheMB, *queueLen, *workers, *jobs, *shards, *maxBodyMB, *drainTimeout, *headerTO, *debugAddr); err != nil {
		usageErr(err.Error())
	}

	cacheBytes := int64(*cacheMB) << 20
	if *cacheMB == 0 {
		cacheBytes = -1
	}
	svc := whatif.New(whatif.Config{
		CacheBytes: cacheBytes,
		QueueLen:   *queueLen,
		Workers:    *workers,
		Jobs:       *jobs,
		Shards:     *shards,
		MaxBody:    int64(*maxBodyMB) << 20,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whatifd:", err)
		os.Exit(1)
	}
	httpSrv := newHTTPServer(svc.Handler(), *headerTO)
	log.Printf("whatifd: listening on %s", ln.Addr())

	var dbgSrv *http.Server
	if *debugAddr != "" {
		// Published here, not in newDebugMux, so tests can build debug
		// muxes freely (expvar.Publish panics on duplicate names).
		expvar.Publish("whatifd.health", expvar.Func(func() any { return svc.Health() }))
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "whatifd:", err)
			os.Exit(1)
		}
		dbgSrv = newHTTPServer(newDebugMux(), *headerTO)
		log.Printf("whatifd: debug surface on http://%s/debug/", dln.Addr())
		go func() {
			if err := dbgSrv.Serve(dln); err != nil && err != http.ErrServerClosed {
				log.Printf("whatifd: debug server: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case <-ctx.Done():
		// Drain: stop accepting, let in-flight handlers finish, then run
		// every already-queued session to completion before exiting 0.
		stop()
		log.Printf("whatifd: signal received, draining")
		sdCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(sdCtx); err != nil {
			log.Printf("whatifd: shutdown: %v", err)
		}
		if dbgSrv != nil {
			dbgSrv.Close()
		}
		svc.Close()
		log.Printf("whatifd: drained, exiting")
	case err := <-serveErr:
		svc.Close()
		fmt.Fprintln(os.Stderr, "whatifd:", err)
		os.Exit(1)
	}
}

// newHTTPServer fronts a handler with the serving deadlines every listener
// gets: ReadHeaderTimeout bounds how long a connection may dribble its
// request headers, so idle half-open connections (slowloris) cannot pin
// handler goroutines forever. Bodies stay unbounded in time — trace
// uploads are large and MaxBody already caps them by size.
func newHTTPServer(h http.Handler, headerTO time.Duration) *http.Server {
	return &http.Server{Handler: h, ReadHeaderTimeout: headerTO}
}

// newDebugMux builds the -debug-addr surface: expvar under /debug/vars and
// the pprof index plus its fixed-path profiles under /debug/pprof/. A
// dedicated mux (not http.DefaultServeMux) keeps the surface explicit and
// the service port clean.
func newDebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// validateFlags range-checks every knob before anything is built, so a bad
// value surfaces as a usage error rather than a panic or a silent
// misconfiguration.
func validateFlags(addr string, cacheMB, queueLen, workers, jobs, shards, maxBodyMB int, drain, headerTO time.Duration, debugAddr string) error {
	host, port, err := net.SplitHostPort(addr)
	switch {
	case err != nil:
		return fmt.Errorf("-addr %q must be host:port: %v", addr, err)
	case port == "":
		return fmt.Errorf("-addr %q is missing a port", addr)
	case cacheMB < 0:
		return fmt.Errorf("-cache-mb must be >= 0 (0 disables caching)")
	case queueLen < 1:
		return fmt.Errorf("-queue must be >= 1")
	case workers < 1:
		return fmt.Errorf("-workers must be >= 1")
	case jobs < 0:
		return fmt.Errorf("-j must be >= 0 (0 = all cores)")
	case shards < 0:
		return fmt.Errorf("-shards must be >= 0 (0 = per-spec)")
	case maxBodyMB < 1:
		return fmt.Errorf("-max-body-mb must be >= 1")
	case drain <= 0:
		return fmt.Errorf("-drain-timeout must be positive")
	case headerTO <= 0:
		return fmt.Errorf("-read-header-timeout must be positive")
	}
	_ = host // empty host means all interfaces, which is fine
	if debugAddr != "" {
		dport := ""
		if _, dport, err = net.SplitHostPort(debugAddr); err != nil {
			return fmt.Errorf("-debug-addr %q must be host:port: %v", debugAddr, err)
		}
		if dport == "" {
			return fmt.Errorf("-debug-addr %q is missing a port", debugAddr)
		}
		// Port 0 is OS-assigned: two :0 listens land on different ports.
		if debugAddr == addr && dport != "0" {
			return fmt.Errorf("-debug-addr must differ from -addr (the debug surface stays off the API port)")
		}
	}
	return nil
}

// usageErr reports a bad invocation and exits 2, matching the
// incastprobe/iobench convention.
func usageErr(msg string) {
	fmt.Fprintln(os.Stderr, "whatifd:", msg)
	flag.Usage()
	os.Exit(2)
}
