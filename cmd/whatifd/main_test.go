package main

import (
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	type in struct {
		addr                                             string
		cacheMB, queueLen, workers, jobs, shards, bodyMB int
		drain                                            time.Duration
	}
	good := in{"127.0.0.1:8080", 256, 64, 2, 0, 0, 64, 30 * time.Second}
	cases := []struct {
		name   string
		mut    func(*in)
		wantOK bool
	}{
		{"defaults", func(*in) {}, true},
		{"all-interfaces addr", func(i *in) { i.addr = ":0" }, true},
		{"cache disabled", func(i *in) { i.cacheMB = 0 }, true},
		{"addr without port", func(i *in) { i.addr = "127.0.0.1" }, false},
		{"addr empty port", func(i *in) { i.addr = "127.0.0.1:" }, false},
		{"addr garbage", func(i *in) { i.addr = "not an address" }, false},
		{"negative cache", func(i *in) { i.cacheMB = -1 }, false},
		{"zero queue", func(i *in) { i.queueLen = 0 }, false},
		{"zero workers", func(i *in) { i.workers = 0 }, false},
		{"negative jobs", func(i *in) { i.jobs = -1 }, false},
		{"negative shards", func(i *in) { i.shards = -2 }, false},
		{"zero body cap", func(i *in) { i.bodyMB = 0 }, false},
		{"zero drain", func(i *in) { i.drain = 0 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			i := good
			tc.mut(&i)
			err := validateFlags(i.addr, i.cacheMB, i.queueLen, i.workers, i.jobs, i.shards, i.bodyMB, i.drain)
			if (err == nil) != tc.wantOK {
				t.Fatalf("validateFlags(%+v) = %v, want ok=%v", i, err, tc.wantOK)
			}
		})
	}
}
