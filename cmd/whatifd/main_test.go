package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/whatif"
)

func TestValidateFlags(t *testing.T) {
	type in struct {
		addr                                             string
		cacheMB, queueLen, workers, jobs, shards, bodyMB int
		drain, headerTO                                  time.Duration
		debugAddr                                        string
	}
	good := in{"127.0.0.1:8080", 256, 64, 2, 0, 0, 64, 30 * time.Second, 5 * time.Second, ""}
	cases := []struct {
		name   string
		mut    func(*in)
		wantOK bool
	}{
		{"defaults", func(*in) {}, true},
		{"all-interfaces addr", func(i *in) { i.addr = ":0" }, true},
		{"cache disabled", func(i *in) { i.cacheMB = 0 }, true},
		{"debug addr set", func(i *in) { i.debugAddr = "127.0.0.1:6060" }, true},
		{"both ephemeral ports", func(i *in) { i.addr = "127.0.0.1:0"; i.debugAddr = "127.0.0.1:0" }, true},
		{"addr without port", func(i *in) { i.addr = "127.0.0.1" }, false},
		{"addr empty port", func(i *in) { i.addr = "127.0.0.1:" }, false},
		{"addr garbage", func(i *in) { i.addr = "not an address" }, false},
		{"negative cache", func(i *in) { i.cacheMB = -1 }, false},
		{"zero queue", func(i *in) { i.queueLen = 0 }, false},
		{"zero workers", func(i *in) { i.workers = 0 }, false},
		{"negative jobs", func(i *in) { i.jobs = -1 }, false},
		{"negative shards", func(i *in) { i.shards = -2 }, false},
		{"zero body cap", func(i *in) { i.bodyMB = 0 }, false},
		{"zero drain", func(i *in) { i.drain = 0 }, false},
		{"zero header timeout", func(i *in) { i.headerTO = 0 }, false},
		{"negative header timeout", func(i *in) { i.headerTO = -time.Second }, false},
		{"debug addr without port", func(i *in) { i.debugAddr = "127.0.0.1" }, false},
		{"debug addr empty port", func(i *in) { i.debugAddr = "127.0.0.1:" }, false},
		{"debug addr equals addr", func(i *in) { i.debugAddr = i.addr }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			i := good
			tc.mut(&i)
			err := validateFlags(i.addr, i.cacheMB, i.queueLen, i.workers, i.jobs, i.shards, i.bodyMB, i.drain, i.headerTO, i.debugAddr)
			if (err == nil) != tc.wantOK {
				t.Fatalf("validateFlags(%+v) = %v, want ok=%v", i, err, tc.wantOK)
			}
		})
	}
}

// TestNewHTTPServer pins the slowloris guard: every listener the daemon
// fronts gets the configured header-read deadline.
func TestNewHTTPServer(t *testing.T) {
	srv := newHTTPServer(http.NotFoundHandler(), 7*time.Second)
	if srv.ReadHeaderTimeout != 7*time.Second {
		t.Fatalf("ReadHeaderTimeout = %v, want 7s", srv.ReadHeaderTimeout)
	}
	if srv.Handler == nil {
		t.Fatal("handler not installed")
	}
}

// TestDebugMux pins the -debug-addr surface: expvar JSON under /debug/vars
// and the pprof index under /debug/pprof/.
func TestDebugMux(t *testing.T) {
	ts := httptest.NewServer(newDebugMux())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/vars: status %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not a JSON object: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Fatal("/debug/vars is missing the standard memstats var")
	}

	resp, err = http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/: status %d", resp.StatusCode)
	}
}

// TestServiceMuxHasNoDebugSurface pins the separation: the API handler
// never serves pprof or expvar, whatever mux pprof's import side effects
// touched.
func TestServiceMuxHasNoDebugSurface(t *testing.T) {
	svc := whatif.New(whatif.Config{})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s on the service mux: status %d, want 404", path, resp.StatusCode)
		}
	}
}
