// Command incastprobe traces the TCP window of one client-to-server
// connection during a contended run — the simulator's tcpdump, producing
// the raw series behind the paper's Figures 10 and 11.
//
// Example:
//
//	incastprobe -delta 10 -nodes 8 -servers 2 | head -50
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 8, "compute nodes")
		servers = flag.Int("servers", 2, "storage servers")
		delta   = flag.Float64("delta", 0, "second application delay, seconds")
		app     = flag.Int("app", 1, "application to trace (0 = first, 1 = second)")
	)
	flag.Parse()

	// Range-check before building anything: a zero server count or an
	// empty half-cluster would otherwise surface as a panic deep in the
	// platform constructor instead of a usage error.
	switch {
	case *nodes < 2:
		usageErr("-nodes must be >= 2 (the two applications split the nodes)")
	case *servers < 1:
		usageErr("-servers must be >= 1")
	case *delta < 0:
		usageErr("-delta must be >= 0 seconds")
	case *app < 0 || *app > 1:
		usageErr("-app must be 0 or 1")
	}

	cfg := cluster.Default()
	cfg.ComputeNodes = *nodes
	cfg.Servers = *servers

	wl := workload.Spec{Pattern: workload.Contiguous, BlockBytes: 64 << 20}
	procs := *nodes / 2 * cfg.CoresPerNode
	apps := core.TwoAppSpecs(cfg, procs, cfg.CoresPerNode, wl)
	apps[1].Start = sim.Seconds(*delta)

	x := core.Prepare(cfg, []core.AppSpec{apps[0], apps[1]})
	tr := x.AttachWindowTrace(*app, 0, 0)
	res := x.Run()

	fmt.Printf("# app %s traced: conn client0 -> server0; run A=%.1fs B=%.1fs; drops=%d timeouts=%d\n",
		res.Apps[*app].Name, res.Apps[0].Elapsed.Seconds(), res.Apps[1].Elapsed.Seconds(),
		res.Diag.PortDrops, res.Diag.Timeouts)
	fmt.Println("time_s\tkind\twindow_x2048B\tacked_bytes")
	for i := range tr.Times {
		fmt.Printf("%.6f\t%c\t%.1f\t%d\n", tr.Times[i].Seconds(), tr.Kind[i], tr.Wnd[i], tr.Acked[i])
	}
}

// usageErr reports a bad flag value the way the flag package itself does:
// the complaint, then the defaults, then exit status 2.
func usageErr(msg string) {
	fmt.Fprintln(os.Stderr, "incastprobe:", msg)
	flag.Usage()
	os.Exit(2)
}
