// Command incastprobe traces the TCP window of one client-to-server
// connection during a contended run — the simulator's tcpdump, producing
// the raw series behind the paper's Figures 10 and 11.
//
// Example:
//
//	incastprobe -delta 10 -nodes 8 -servers 2 | head -50
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 8, "compute nodes")
		servers = flag.Int("servers", 2, "storage servers")
		delta   = flag.Float64("delta", 0, "second application delay, seconds")
		app     = flag.Int("app", 1, "application to trace (0 = first, 1 = second)")
	)
	flag.Parse()

	cfg := cluster.Default()
	cfg.ComputeNodes = *nodes
	cfg.Servers = *servers

	wl := workload.Spec{Pattern: workload.Contiguous, BlockBytes: 64 << 20}
	procs := *nodes / 2 * cfg.CoresPerNode
	apps := core.TwoAppSpecs(cfg, procs, cfg.CoresPerNode, wl)
	apps[1].Start = sim.Seconds(*delta)

	x := core.Prepare(cfg, []core.AppSpec{apps[0], apps[1]})
	if *app < 0 || *app > 1 {
		fmt.Fprintln(os.Stderr, "incastprobe: -app must be 0 or 1")
		os.Exit(1)
	}
	tr := x.AttachWindowTrace(*app, 0, 0)
	res := x.Run()

	fmt.Printf("# app %s traced: conn client0 -> server0; run A=%.1fs B=%.1fs; drops=%d timeouts=%d\n",
		res.Apps[*app].Name, res.Apps[0].Elapsed.Seconds(), res.Apps[1].Elapsed.Seconds(),
		res.Diag.PortDrops, res.Diag.Timeouts)
	fmt.Println("time_s\tkind\twindow_x2048B\tacked_bytes")
	for i := range tr.Times {
		fmt.Printf("%.6f\t%c\t%.1f\t%d\n", tr.Times[i].Seconds(), tr.Kind[i], tr.Wnd[i], tr.Acked[i])
	}
}
