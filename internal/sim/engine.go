package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback. Events with equal times execute in the order
// they were scheduled (seq is a monotonically increasing tiebreaker), which
// keeps simulations deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation executor. The zero value is not
// usable; create engines with NewEngine.
//
// All simulation code — event callbacks and Proc bodies — runs under the
// engine's handoff discipline, one piece at a time, so it may freely mutate
// shared simulation state without locks.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	yield   chan struct{} // procs hand control back to the loop on this
	current *Proc         // proc currently holding control, if any

	executed uint64 // events executed so far
	spawned  int    // procs ever spawned
	finished int    // procs that ran to completion
	parked   int    // procs currently blocked awaiting a wake-up
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events executed so far (a cheap measure of
// simulation work, used by benchmarks).
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// Parked returns the number of processes currently blocked. A simulation
// that drains its event queue while processes remain parked has deadlocked;
// tests assert this is zero after Run.
func (e *Engine) Parked() int { return e.parked }

// ProcsFinished returns how many spawned processes ran to completion.
func (e *Engine) ProcsFinished() int { return e.finished }

// ProcsSpawned returns how many processes were ever spawned.
func (e *Engine) ProcsSpawned() int { return e.spawned }

// Schedule runs fn after delay d (d may be zero; negative panics).
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// At runs fn at absolute time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: at %v, now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// Run executes events until the queue is empty and returns the final time.
func (e *Engine) Run() Time { return e.RunUntil(MaxTime) }

// RunUntil executes events with at <= deadline and returns the current time
// afterwards; later events remain queued. The clock never advances past the
// time of the last executed event.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.events) > 0 {
		if e.events[0].at > deadline {
			break
		}
		ev := heap.Pop(&e.events).(event)
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		e.executed++
		ev.fn()
	}
	return e.now
}

// Step executes exactly one event if available and reports whether it did.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.executed++
	ev.fn()
	return true
}
