package sim

import "fmt"

// Target receives scheduled callbacks without a closure allocation. Layers
// whose per-event callback is a fixed method on a long-lived object (a
// connection handling its ACKs, a device completing its current request)
// implement Target once and pass op/a/b through the event instead of
// capturing them: scheduling then costs zero heap allocations. op
// discriminates between the object's event kinds; a and b are opaque
// payload words whose meaning is private to the implementation.
type Target interface {
	OnEvent(op uint32, a, b int64)
}

// event is one scheduled entry: a callback due at a simulated time. Events
// with equal times execute in (sched, psched, gsched, src, seq) order — the
// simulated time they were scheduled at, the same stamp one and two levels
// up the scheduling ancestry (the event executing when they were pushed,
// and its own pusher), the shard that scheduled them, then a monotonically
// increasing per-engine tiebreaker — which keeps simulations deterministic.
//
// On a single engine the whole prefix is non-decreasing in seq: the clock
// never runs backwards (sched); events sharing (at, sched) were pushed by
// parents that themselves executed in psched order at the instant sched;
// and the same argument applies once more for gsched. So the order reduces
// to the classic (at, seq) and the serial engine behaves exactly as it
// always has; the extra keys only discriminate when a ShardSet merges
// events produced by independently-clocked shards, where they reproduce the
// serial engine's scheduling order without a global counter: same due time
// → earlier-sent first (sched); same send time → sender whose own trigger
// was scheduled earlier first (psched, then gsched); then shard
// construction order. Three ancestry levels resolve every tie the
// transport's lockstep paths produce (an ACK's ancestry reaches the
// sender-shard event that transmitted the segment in three hops); the
// serial-oracle conformance suite in internal/scenario is the empirical
// arbiter that no deeper tie occurs.
//
// The payload is a tagged union, discriminated by which pointer is set:
//
//	p   != nil — resume the parked process p (the Sleep/wake path)
//	tgt != nil — call tgt.OnEvent(op, a, b) (the closure-free callback path)
//	otherwise  — call fn
//
// Every variant is inline — no interface boxing, no allocation on push or
// pop. Procs and Targets are pointers to objects that already exist; only
// the fn variant may carry a freshly allocated closure, and the hot paths
// (proc wake-ups, transport segments, device completions) avoid it.
type event struct {
	at     Time
	sched  Time // simulated time the event was pushed (send time for cross-shard events)
	psched Time // sched of the event that was executing at push time
	gsched Time // psched of the event that was executing at push time (grandparent sched)
	seq    uint64
	a, b   int64
	fn     func()
	p      *Proc
	tgt    Target
	op     uint32
	src    uint32 // shard that scheduled the event (0 on a serial engine)
}

// Engine is a discrete-event simulation executor. The zero value is not
// usable; create engines with NewEngine.
//
// All simulation code — event callbacks and Proc bodies — runs under the
// engine's handoff discipline, one piece at a time, so it may freely mutate
// shared simulation state without locks.
type Engine struct {
	now     Time
	events  []event // min-heap ordered by (at, sched, psched, gsched, src, seq)
	seq     uint64
	yield   chan struct{} // procs hand control back to the loop on this
	current *Proc         // proc currently holding control, if any

	// shard and set place the engine inside a sharded kernel (ShardSet).
	// A serial engine has shard 0 and a nil set. curSched/curPsched are the
	// sched and psched stamps of the event currently dispatching (0 during
	// setup) — the psched/gsched stamps for any events it pushes.
	shard     uint32
	set       *ShardSet
	curSched  Time
	curPsched Time

	executed uint64 // events executed so far
	spawned  int    // procs ever spawned
	finished int    // procs that ran to completion
	parked   int    // procs currently blocked awaiting a wake-up
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events executed so far (a cheap measure of
// simulation work, used by benchmarks).
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// Parked returns the number of processes currently blocked. A simulation
// that drains its event queue while processes remain parked has deadlocked;
// tests assert this is zero after Run.
func (e *Engine) Parked() int { return e.parked }

// ProcsFinished returns how many spawned processes ran to completion.
func (e *Engine) ProcsFinished() int { return e.finished }

// ProcsSpawned returns how many processes were ever spawned.
func (e *Engine) ProcsSpawned() int { return e.spawned }

// ---- heap ----------------------------------------------------------------
//
// A hand-specialized binary min-heap over the []event slice, keyed on
// (at, sched, psched, gsched, src, seq). Compared with container/heap this removes the
// interface boxing on every Push/Pop (two heap allocations per event), the
// indirect Len/Less/Swap calls, and the zero-write of the vacated tail slot.
// The trade-off of skipping that zero-write: pointers in the slice's unused
// tail stay reachable until overwritten by a later push — harmless here
// because engines live for one simulation and are then dropped wholesale.

// less orders events by time, then by scheduling time, then by the
// parent's scheduling time, then by scheduling shard, then by per-engine
// scheduling order. See the event type comment for why this reduces to
// (at, seq) on a serial engine.
func (e *Engine) less(i, j int) bool {
	a, b := &e.events[i], &e.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.sched != b.sched {
		return a.sched < b.sched
	}
	if a.psched != b.psched {
		return a.psched < b.psched
	}
	if a.gsched != b.gsched {
		return a.gsched < b.gsched
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// push inserts a locally scheduled event, stamping it with the engine's
// clock, the dispatching event's sched, and the shard.
func (e *Engine) push(ev event) {
	ev.sched = e.now
	ev.psched = e.curSched
	ev.gsched = e.curPsched
	ev.src = e.shard
	e.pushRaw(ev)
}

// pushRaw inserts ev with its sched/src stamps already set (the ShardSet
// drain path injects cross-shard events with the sender's stamps), assigning
// the tiebreaker sequence number.
func (e *Engine) pushRaw(ev event) {
	e.seq++
	ev.seq = e.seq
	e.events = append(e.events, ev)
	// Sift up.
	h := e.events
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// popMin removes and returns the earliest event. The queue must not be
// empty.
func (e *Engine) popMin() event {
	h := e.events
	min := h[0]
	n := len(h) - 1
	h[0] = h[n]
	e.events = h[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && e.less(l, smallest) {
			smallest = l
		}
		if r < n && e.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return min
}

// ---- scheduling ----------------------------------------------------------

// Schedule runs fn after delay d (d may be zero; negative panics).
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// At runs fn at absolute time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: at %v, now %v", t, e.now))
	}
	e.push(event{at: t, fn: fn})
}

// ScheduleCall runs tgt.OnEvent(op, a, b) after delay d. It is the
// closure-free counterpart of Schedule: no allocation happens on this path.
func (e *Engine) ScheduleCall(d Time, tgt Target, op uint32, a, b int64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.AtCall(e.now+d, tgt, op, a, b)
}

// AtCall runs tgt.OnEvent(op, a, b) at absolute time t, which must not be
// in the past. It is the closure-free counterpart of At.
func (e *Engine) AtCall(t Time, tgt Target, op uint32, a, b int64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: at %v, now %v", t, e.now))
	}
	e.push(event{at: t, tgt: tgt, op: op, a: a, b: b})
}

// scheduleProc schedules a handoff to p after delay d (the Sleep/wake
// path). Like ScheduleCall it allocates nothing.
func (e *Engine) scheduleProc(d Time, p *Proc) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.push(event{at: e.now + d, p: p})
}

// dispatch executes one popped event according to its union tag.
func (e *Engine) dispatch(ev event) {
	switch {
	case ev.p != nil:
		e.handoff(ev.p)
	case ev.tgt != nil:
		ev.tgt.OnEvent(ev.op, ev.a, ev.b)
	default:
		ev.fn()
	}
}

// ---- execution -----------------------------------------------------------

// Run executes events until the queue is empty and returns the final time.
func (e *Engine) Run() Time { return e.RunUntil(MaxTime) }

// RunUntil executes events with at <= deadline and returns the current time
// afterwards; later events remain queued. The clock never advances past the
// time of the last executed event.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.events) > 0 {
		if e.events[0].at > deadline {
			break
		}
		ev := e.popMin()
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		e.curSched = ev.sched
		e.curPsched = ev.psched
		e.executed++
		e.dispatch(ev)
	}
	return e.now
}

// Step executes exactly one event if available and reports whether it did.
// It applies the same time-monotonicity check as RunUntil.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.popMin()
	if ev.at < e.now {
		panic("sim: time went backwards")
	}
	e.now = ev.at
	e.curSched = ev.sched
	e.curPsched = ev.psched
	e.executed++
	e.dispatch(ev)
	return true
}

// ---- shard boundary ------------------------------------------------------

// Shard returns the engine's shard index within its ShardSet (0 for a
// serial engine).
func (e *Engine) Shard() int { return int(e.shard) }

// NextEventTime reports the due time of the earliest pending event; ok is
// false when the queue is empty. It is the engine's safe-time report to the
// ShardSet synchronizer.
func (e *Engine) NextEventTime() (t Time, ok bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// sameSet reports whether dst shares a shard set with e (or is e itself),
// panicking on a cross-engine post with no common synchronizer — that would
// mutate a foreign heap with no ordering guarantee.
func (e *Engine) sameSet(dst *Engine) {
	if e.set == nil || e.set != dst.set {
		panic("sim: cross-engine post between engines that do not share a ShardSet")
	}
}

// PostCall schedules tgt.OnEvent(op, a, b) at absolute time t on engine
// dst, which may belong to a different shard of the same ShardSet. On the
// local engine it is exactly AtCall; cross-shard it enqueues a timestamped
// message in the per-pair mailbox, to be merged into dst's queue at the
// next synchronization window. Cross-shard t must respect the set's
// lookahead: t >= e.Now() + lookahead (the shard boundary contract).
func (e *Engine) PostCall(dst *Engine, t Time, tgt Target, op uint32, a, b int64) {
	if dst == e {
		e.AtCall(t, tgt, op, a, b)
		return
	}
	e.sameSet(dst)
	e.set.post(e, dst, xmsg{at: t, sched: e.now, psched: e.curSched, gsched: e.curPsched, tgt: tgt, op: op, a: a, b: b})
}

// PostFunc is PostCall for a closure: fn runs at absolute time t on dst.
func (e *Engine) PostFunc(dst *Engine, t Time, fn func()) {
	if dst == e {
		e.At(t, fn)
		return
	}
	e.sameSet(dst)
	e.set.post(e, dst, xmsg{at: t, sched: e.now, psched: e.curSched, gsched: e.curPsched, fn: fn})
}

// Applier receives cross-shard state deliveries that are not simulation
// events: OnApply runs on the destination shard's timeline at the next
// synchronization window, before any event of that window. It models
// zero-cost bookkeeping a sender performs on receiver-owned state (e.g. the
// transport's receiver-side framing mirror) without counting as an executed
// event — keeping sharded event counts identical to the serial engine's.
type Applier interface {
	OnApply(a, b int64, data any)
}

// PostApply delivers ap.OnApply(a, b, data) to dst's shard. On the local
// engine it applies synchronously (exactly the serial behavior); cross-shard
// it is applied when dst's shard next synchronizes. The deferral is safe for
// state that the destination provably cannot observe before one lookahead
// has passed — which is the same contract cross-shard events live under.
func (e *Engine) PostApply(dst *Engine, ap Applier, a, b int64, data any) {
	if dst == e {
		ap.OnApply(a, b, data)
		return
	}
	e.sameSet(dst)
	e.set.post(e, dst, xmsg{sched: e.now, ap: ap, a: a, b: b, data: data})
}
