// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is single-threaded from the simulation's point of view: events
// execute one at a time in (time, insertion) order, and coroutine-style
// processes (Proc) hand control back and forth with the event loop through a
// strict handoff protocol, so simulations are fully deterministic for a given
// seed and input, regardless of GOMAXPROCS.
//
// The package also provides the small set of synchronization and resource
// primitives the rest of the simulator is built from: Signal (one-shot
// broadcast), Gate (countdown latch), Semaphore (counted tokens with FIFO
// waiters), Line (a serialized transmission resource such as a NIC or bus),
// and a deterministic splitmix64 random number generator.
//
// The kernel is engineered for a zero-allocation steady state. Events are
// stored inline in a hand-specialized min-heap, and the hot scheduling
// paths avoid per-event closures: parked processes resume through the
// event's *Proc arm, and layers whose callback is a fixed method on a
// long-lived object implement Target and use ScheduleCall/AtCall (or
// Line.SendCall), which carry the callback's arguments in the event
// itself.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation. It doubles as a duration; the arithmetic is the same.
type Time int64

// Common durations, mirroring package time but in simulated Time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// MaxTime is the largest representable simulated time.
const MaxTime Time = 1<<63 - 1

// Seconds converts a floating-point number of seconds to a Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// Millis converts a floating-point number of milliseconds to a Time.
func Millis(ms float64) Time { return Time(ms * float64(Millisecond)) }

// Micros converts a floating-point number of microseconds to a Time.
func Micros(us float64) Time { return Time(us * float64(Microsecond)) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Duration converts t to a time.Duration (both are nanoseconds).
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats t using time.Duration notation ("1.5s", "250ms", ...).
func (t Time) String() string { return time.Duration(t).String() }

// TransferTime returns the time needed to move n bytes at rate bytesPerSec.
// A rate of zero or less means "infinitely fast" and returns 0.
func TransferTime(n int64, bytesPerSec float64) Time {
	if bytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return Time(float64(n) / bytesPerSec * float64(Second))
}

// Rate returns the throughput, in bytes per second, of moving n bytes in d.
// It returns 0 if d is not positive.
func Rate(n int64, d Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// FormatBytes renders a byte count with binary units (KiB, MiB, GiB).
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/float64(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
