package sim

import (
	"testing"
	"testing/quick"
)

func TestLineSerializes(t *testing.T) {
	e := NewEngine()
	l := NewLine(e, 100) // 100 B/s: 1 byte = 10ms
	var deliveries []Time
	// Two 50-byte transfers submitted at t=0 must finish at 0.5s and 1.0s.
	l.Send(50, func() { deliveries = append(deliveries, e.Now()) })
	l.Send(50, func() { deliveries = append(deliveries, e.Now()) })
	e.Run()
	if len(deliveries) != 2 {
		t.Fatalf("deliveries = %v", deliveries)
	}
	if deliveries[0] != 500*Millisecond || deliveries[1] != Second {
		t.Fatalf("deliveries = %v, want [500ms 1s]", deliveries)
	}
}

func TestLineLatencyDoesNotOccupy(t *testing.T) {
	e := NewEngine()
	l := NewLine(e, 100)
	l.Latency = Second
	var first, second Time
	l.Send(50, func() { first = e.Now() })
	l.Send(50, func() { second = e.Now() })
	e.Run()
	// Serialization: 0.5s and 1.0s; latency shifts both by 1s but they can
	// overlap in flight.
	if first != 1500*Millisecond || second != 2*Second {
		t.Fatalf("first=%v second=%v", first, second)
	}
}

func TestLinePerOpOverhead(t *testing.T) {
	e := NewEngine()
	l := NewLine(e, 0) // infinite rate
	l.PerOp = 10 * Millisecond
	var last Time
	for i := 0; i < 5; i++ {
		l.Send(1<<20, func() { last = e.Now() })
	}
	e.Run()
	if last != 50*Millisecond {
		t.Fatalf("last = %v, want 50ms", last)
	}
}

func TestLineIdleGap(t *testing.T) {
	e := NewEngine()
	l := NewLine(e, 1000)
	var times []Time
	e.Schedule(0, func() { l.Send(500, func() { times = append(times, e.Now()) }) })
	// Second transfer submitted long after the first completed: no queueing.
	e.Schedule(10*Second, func() { l.Send(500, func() { times = append(times, e.Now()) }) })
	e.Run()
	if times[0] != 500*Millisecond || times[1] != 10*Second+500*Millisecond {
		t.Fatalf("times = %v", times)
	}
	if l.Busy() != Second {
		t.Fatalf("busy = %v, want 1s", l.Busy())
	}
}

func TestLineStats(t *testing.T) {
	e := NewEngine()
	l := NewLine(e, 100)
	l.Send(25, nil) // nil callback: occupies the line, schedules nothing
	l.Send(75, func() {})
	e.Run()
	if l.Bytes() != 100 || l.Ops() != 2 {
		t.Fatalf("bytes=%d ops=%d", l.Bytes(), l.Ops())
	}
	if l.Utilization() != 1.0 {
		t.Fatalf("utilization = %v, want 1.0", l.Utilization())
	}
	if l.QueueDelay() != 0 {
		t.Fatalf("queue delay = %v, want 0 at idle", l.QueueDelay())
	}
}

// Property: the line conserves work — total delivery time of the last of n
// back-to-back transfers equals sum of service times (+ latency).
func TestPropertyLineWorkConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		e := NewEngine()
		l := NewLine(e, 1000)
		l.PerOp = Millisecond
		var want Time
		var last Time
		for _, s := range sizes {
			n := int64(s)
			want += Millisecond + TransferTime(n, 1000)
			l.Send(n, func() { last = e.Now() })
		}
		e.Run()
		if len(sizes) == 0 {
			return last == 0
		}
		return last == want && l.Busy() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTransferTime(t *testing.T) {
	if got := TransferTime(1000, 1000); got != Second {
		t.Fatalf("1000B at 1000B/s = %v, want 1s", got)
	}
	if got := TransferTime(0, 1000); got != 0 {
		t.Fatalf("0 bytes = %v, want 0", got)
	}
	if got := TransferTime(1000, 0); got != 0 {
		t.Fatalf("infinite rate = %v, want 0", got)
	}
}

func TestRateHelper(t *testing.T) {
	if got := Rate(1000, Second); got != 1000 {
		t.Fatalf("Rate = %v, want 1000", got)
	}
	if got := Rate(1000, 0); got != 0 {
		t.Fatalf("Rate with zero time = %v, want 0", got)
	}
}
