package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random generator (splitmix64).
// It is not cryptographically secure; it exists so simulations produce
// identical results on every platform for a given seed.
type Rand struct{ state uint64 }

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// ExpFloat64 returns an exponentially distributed value with mean 1.
func (r *Rand) ExpFloat64() float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1 - u)
}

// Jitter returns d scaled by a uniform factor in [1-frac, 1+frac].
// Used to break pathological synchronization without losing determinism.
func (r *Rand) Jitter(d Time, frac float64) Time {
	if frac <= 0 {
		return d
	}
	f := 1 + frac*(2*r.Float64()-1)
	return Time(float64(d) * f)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes s in place (Fisher-Yates).
func (r *Rand) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Fork derives an independent generator; streams from parent and child do
// not overlap in practice. Useful for giving each simulated entity its own
// stream while keeping global determinism.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Uint64() ^ 0xD1B54A32D192ED03)
}
