package sim

// A Line models a serialized transmission resource: a NIC direction, a bus,
// a disk channel. Transfers are served strictly in submission order; each
// occupies the line for PerOp + size/Rate and is delivered Latency after it
// leaves the line. The line keeps cumulative busy time so callers can report
// utilization.
//
// Line is the building block for network hops in internal/netsim and is also
// used for memory-copy paths.
type Line struct {
	E *Engine

	// Rate is the service rate in bytes per second. Zero or negative means
	// infinitely fast (only PerOp and Latency apply).
	Rate float64

	// PerOp is a fixed serialization overhead charged per transfer
	// (protocol/CPU cost). It occupies the line.
	PerOp Time

	// Latency is propagation delay added after the transfer leaves the
	// line. It does not occupy the line.
	Latency Time

	busyUntil Time
	busy      Time  // cumulative occupied time
	bytes     int64 // cumulative bytes accepted
	ops       int64 // cumulative transfers
}

// NewLine returns a line on engine e with the given rate in bytes/second.
func NewLine(e *Engine, bytesPerSec float64) *Line {
	return &Line{E: e, Rate: bytesPerSec}
}

// reserve books n bytes of service on the line and returns their delivery
// time (serialization + latency).
func (l *Line) reserve(n int64) Time {
	start := l.E.now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	dur := l.PerOp + TransferTime(n, l.Rate)
	l.busyUntil = start + dur
	l.busy += dur
	l.bytes += n
	l.ops++
	return l.busyUntil + l.Latency
}

// Reserve books n bytes of service on the line and returns their delivery
// time without scheduling anything. Callers that deliver to a different
// shard pair it with Engine.PostCall/PostFunc: Reserve runs on the line's
// own engine (the sender side), and the returned time — at least the line's
// Latency in the future — is the cross-shard event's timestamp.
func (l *Line) Reserve(n int64) Time { return l.reserve(n) }

// Send schedules the transfer of n bytes; fn runs when the last byte has
// been delivered (serialization + latency). It returns the delivery time.
func (l *Line) Send(n int64, fn func()) Time {
	at := l.reserve(n)
	if fn != nil {
		l.E.At(at, fn)
	}
	return at
}

// SendCall is the closure-free Send: tgt.OnEvent(op, a, b) runs at delivery.
// Per-segment senders whose completion handler is a fixed method (netsim's
// transport) use this to avoid allocating a closure per transfer.
func (l *Line) SendCall(n int64, tgt Target, op uint32, a, b int64) Time {
	at := l.reserve(n)
	l.E.AtCall(at, tgt, op, a, b)
	return at
}

// Busy returns cumulative time the line has been occupied.
func (l *Line) Busy() Time { return l.busy }

// BusyUntil returns the time at which the line next becomes idle.
func (l *Line) BusyUntil() Time { return l.busyUntil }

// Bytes returns cumulative bytes accepted by the line.
func (l *Line) Bytes() int64 { return l.bytes }

// Ops returns the cumulative number of transfers.
func (l *Line) Ops() int64 { return l.ops }

// Utilization returns busy time divided by elapsed simulation time (0 if no
// time has passed).
func (l *Line) Utilization() float64 {
	if l.E.now == 0 {
		return 0
	}
	return float64(l.busy) / float64(l.E.now)
}

// QueueDelay returns how long a transfer submitted now would wait before
// starting service.
func (l *Line) QueueDelay() Time {
	if l.busyUntil <= l.E.now {
		return 0
	}
	return l.busyUntil - l.E.now
}
