package sim

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// ShardSet is a conservative parallel discrete-event kernel (classic
// CMB/YAWNS windowed synchronization): K independently-clocked Engines,
// one per shard, advancing in lock-step windows derived from a global
// lookahead L — the minimum simulated latency of any cross-shard
// interaction.
//
// Each window the coordinator drains the per-pair mailboxes into the
// destination heaps, computes M = min over shards of the next pending event
// time, and lets every shard execute all events with at < M+L. Any message
// generated inside the window is sent at a time >= M and therefore due at
// >= M+L, strictly after the window — so no shard can receive an event in
// its past, and the barrier between windows is the only synchronization the
// shards need.
//
// # Shard boundary contract
//
// Cross-shard interactions go exclusively through Engine.PostCall /
// PostFunc (timestamped events, due at >= sender now + L; violating the
// bound panics) and Engine.PostApply (event-free state deliveries applied
// at the next drain). During a window a shard may touch only state owned by
// its own shard plus its outgoing mailboxes; everything else it reaches via
// posts. Within one (src, dst) pair messages are delivered FIFO.
//
// # Determinism
//
// The engines order events by (at, sched, psched, gsched, src, seq);
// injected events carry the sender's send time and two levels of its
// scheduling ancestry as their (sched, psched, gsched) stamps plus the
// sender's shard, and the drain processes mailboxes in (dst, src, FIFO)
// order, so the merged execution order on every shard reproduces the
// serial engine's (at, global seq) order: on one engine the global seq
// order of two events with equal due times is their push-time order
// (sched); pushes at the same instant happen in the order the pushing
// events executed — which is *their* push-time order (psched), recursively
// once more (gsched) — and the src key breaks exact three-level ties in
// shard construction order. The serial-oracle conformance suite
// (internal/scenario) asserts the resulting bit-identity end to end.
type ShardSet struct {
	lookahead Time
	engines   []*Engine
	outbox    [][]xmsg   // mailbox per (src, dst) pair, indexed src*K+dst
	ctl       []shardCtl // per-shard worker doorbell, index 0 unused
	started   bool
}

// xmsg is one cross-shard mailbox entry: either a timestamped event
// (tgt/fn, due at `at`, carrying the sender's sched stamp) or an Applier
// delivery (ap != nil, applied at drain time).
type xmsg struct {
	at     Time
	sched  Time
	psched Time
	gsched Time
	a, b   int64
	fn     func()
	tgt    Target
	ap     Applier
	data   any
	op     uint32
}

// shardCtl is the spin-synchronized doorbell of one worker shard. The
// coordinator publishes a window bound and bumps goGen; the worker runs its
// engine to the bound and echoes the generation into doneGen. Atomic
// generations give the barrier its happens-before edges (mailbox writes of
// a window are visible to the coordinator's drain, drain pushes are visible
// to the next window's worker). The padding keeps neighboring shards'
// doorbells off one cache line.
type shardCtl struct {
	bound   atomic.Int64  // window deadline (inclusive); < 0 orders shutdown
	goGen   atomic.Uint64 // bumped by the coordinator to start a window
	doneGen atomic.Uint64 // set by the worker when the window is done
	_       [64 - 3*8]byte
}

// NewShardSet builds K engines sharing one conservative synchronizer.
// lookahead must be positive — a zero-lookahead model has no safe window
// and cannot be sharded conservatively.
func NewShardSet(k int, lookahead Time) *ShardSet {
	if k < 1 {
		panic("sim: ShardSet needs at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: ShardSet needs a positive lookahead")
	}
	s := &ShardSet{
		lookahead: lookahead,
		engines:   make([]*Engine, k),
		outbox:    make([][]xmsg, k*k),
		ctl:       make([]shardCtl, k),
	}
	for i := range s.engines {
		e := NewEngine()
		e.shard = uint32(i)
		e.set = s
		s.engines[i] = e
	}
	return s
}

// Shards returns the number of shards.
func (s *ShardSet) Shards() int { return len(s.engines) }

// Lookahead returns the conservative synchronization bound.
func (s *ShardSet) Lookahead() Time { return s.lookahead }

// Engine returns shard i's engine.
func (s *ShardSet) Engine(i int) *Engine { return s.engines[i] }

// Executed sums executed events over all shards. Cross-shard events count
// once, on the shard that executes them, so the sum equals the serial
// engine's count for the same simulation.
func (s *ShardSet) Executed() uint64 {
	var n uint64
	for _, e := range s.engines {
		n += e.executed
	}
	return n
}

// Parked sums currently parked procs over all shards.
func (s *ShardSet) Parked() int {
	n := 0
	for _, e := range s.engines {
		n += e.parked
	}
	return n
}

// Now returns the latest shard clock — after Run, the simulation end time.
func (s *ShardSet) Now() Time {
	var t Time
	for _, e := range s.engines {
		if e.now > t {
			t = e.now
		}
	}
	return t
}

// post enqueues one cross-shard message, enforcing the lookahead contract
// for timestamped events. It runs inside src's window, so it may touch only
// src's outgoing mailboxes.
func (s *ShardSet) post(src, dst *Engine, m xmsg) {
	if m.ap == nil && m.at < src.now+s.lookahead {
		panic(fmt.Sprintf("sim: cross-shard event at %v violates lookahead %v (shard %d now %v)",
			m.at, s.lookahead, src.shard, src.now))
	}
	i := int(src.shard)*len(s.engines) + int(dst.shard)
	s.outbox[i] = append(s.outbox[i], m)
}

// drain merges every mailbox into its destination: Applier deliveries apply
// immediately, timestamped events are injected with the sender's
// (sched, src) stamps. Deterministic order — destinations ascending, then
// sources ascending, then FIFO — fixes the seq assignment of same-stamp
// injections. Mailbox slices are reused; the steady-state drain allocates
// nothing.
func (s *ShardSet) drain() {
	k := len(s.engines)
	for d := 0; d < k; d++ {
		dst := s.engines[d]
		for src := 0; src < k; src++ {
			box := s.outbox[src*k+d]
			if len(box) == 0 {
				continue
			}
			for i := range box {
				m := &box[i]
				if m.ap != nil {
					m.ap.OnApply(m.a, m.b, m.data)
				} else {
					dst.pushRaw(event{
						at: m.at, sched: m.sched, psched: m.psched, gsched: m.gsched,
						src: uint32(src),
						a:   m.a, b: m.b, fn: m.fn, tgt: m.tgt, op: m.op,
					})
				}
				box[i] = xmsg{} // release payload references
			}
			s.outbox[src*k+d] = box[:0]
		}
	}
}

// windowDeadline returns the inclusive execution deadline of the window
// opening at M: events with at <= M+L-1 (i.e. at < M+L) are safe.
func (s *ShardSet) windowDeadline(m Time) Time {
	w := m + s.lookahead
	if w <= m { // overflow near MaxTime
		return MaxTime
	}
	return w - 1
}

// minNext returns the earliest pending event time across all shards.
func (s *ShardSet) minNext() (Time, bool) {
	var min Time
	found := false
	for _, e := range s.engines {
		if t, ok := e.NextEventTime(); ok && (!found || t < min) {
			min, found = t, true
		}
	}
	return min, found
}

// stepWindow drains the mailboxes and executes one synchronization window
// on the calling goroutine, shard by shard. It reports false once no events
// remain anywhere. This is the single-threaded reference for the
// worker-parallel Run loop — and the path the zero-allocation test pins.
func (s *ShardSet) stepWindow() bool {
	s.drain()
	m, ok := s.minNext()
	if !ok {
		return false
	}
	deadline := s.windowDeadline(m)
	for _, e := range s.engines {
		if t, ok := e.NextEventTime(); ok && t <= deadline {
			e.RunUntil(deadline)
		}
	}
	return true
}

// spin waits for cond, staying on-CPU for a short burst (windows are
// microseconds of work; parking would dominate them) before yielding the
// processor so undersubscribed schedulers still make progress.
func spin(cond func() bool) {
	for i := 0; ; i++ {
		if cond() {
			return
		}
		if i > 256 {
			runtime.Gosched()
		}
	}
}

// worker drives one shard: it waits for the coordinator's doorbell, runs
// its engine to the published deadline, and echoes the generation. A
// negative bound shuts it down.
func (s *ShardSet) worker(i int) {
	e := s.engines[i]
	c := &s.ctl[i]
	var seen uint64
	for {
		c2 := c
		spin(func() bool { return c2.goGen.Load() != seen })
		seen = c.goGen.Load()
		b := c.bound.Load()
		if b < 0 {
			c.doneGen.Store(seen)
			return
		}
		e.RunUntil(Time(b))
		c.doneGen.Store(seen)
	}
}

// Run executes the whole simulation and returns the final time. Shard 0
// runs on the calling goroutine (it is the client/coordinator shard in the
// cluster layout, usually the busiest); shards 1..K-1 run on worker
// goroutines that live for the duration of the call.
//
// On a single-processor runtime (GOMAXPROCS=1) worker goroutines cannot
// overlap shard execution — busy-wait synchronization would only fight the
// lone processor for cycles — so Run degenerates to the sequential window
// loop instead. Results are identical on both paths (stepWindow is the
// reference the parallel loop reproduces); only wall-clock time differs.
func (s *ShardSet) Run() Time {
	if len(s.engines) == 1 {
		return s.engines[0].Run()
	}
	if s.started {
		panic("sim: ShardSet.Run called twice")
	}
	s.started = true
	if runtime.GOMAXPROCS(0) < 2 {
		for s.stepWindow() {
		}
		return s.Now()
	}
	return s.runParallel()
}

// runParallel is Run's worker-pool body: one goroutine per shard 1..K-1,
// spin-synchronized windows, shard 0 inline on the caller.
func (s *ShardSet) runParallel() Time {
	k := len(s.engines)
	for i := 1; i < k; i++ {
		go s.worker(i)
	}
	for {
		s.drain()
		m, ok := s.minNext()
		if !ok {
			break
		}
		deadline := s.windowDeadline(m)
		dispatched := 0
		for i := 1; i < k; i++ {
			if t, ok := s.engines[i].NextEventTime(); ok && t <= deadline {
				c := &s.ctl[i]
				c.bound.Store(int64(deadline))
				c.goGen.Add(1)
				dispatched++
			}
		}
		if t, ok := s.engines[0].NextEventTime(); ok && t <= deadline {
			s.engines[0].RunUntil(deadline)
		}
		if dispatched > 0 {
			for i := 1; i < k; i++ {
				c := &s.ctl[i]
				g := c.goGen.Load()
				spin(func() bool { return c.doneGen.Load() == g })
			}
		}
	}
	// Shut the workers down and wait for the echo so no goroutine outlives
	// the simulation.
	for i := 1; i < k; i++ {
		c := &s.ctl[i]
		c.bound.Store(-1)
		c.goGen.Add(1)
	}
	for i := 1; i < k; i++ {
		c := &s.ctl[i]
		g := c.goGen.Load()
		spin(func() bool { return c.doneGen.Load() == g })
	}
	return s.Now()
}
