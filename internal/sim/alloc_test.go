package sim

import "testing"

// These tests pin the kernel's zero-allocation invariants: once the event
// heap and waiter rings have reached steady-state capacity, executing
// events — closures, Target calls, and the whole Sleep/wake proc path —
// allocates nothing. The figure campaigns replay millions of these events,
// so a regression here is a performance bug even though nothing breaks
// functionally; testing.AllocsPerRun catches it deterministically where a
// benchmark's B/op would only drift.

func TestEventLoopZeroAlloc(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Prime the heap slice so steady state starts with capacity.
	e.Schedule(0, fn)
	e.Run()
	if avg := testing.AllocsPerRun(1000, func() {
		e.Schedule(Microsecond, fn)
		e.Run()
	}); avg != 0 {
		t.Errorf("event loop allocates %.1f objects per schedule+run, want 0", avg)
	}
}

type countTarget struct{ n int64 }

func (c *countTarget) OnEvent(op uint32, a, b int64) { c.n += a }

func TestScheduleCallZeroAlloc(t *testing.T) {
	e := NewEngine()
	tgt := &countTarget{}
	e.ScheduleCall(0, tgt, 0, 1, 0)
	e.Run()
	if avg := testing.AllocsPerRun(1000, func() {
		e.ScheduleCall(Microsecond, tgt, 0, 1, 0)
		e.Run()
	}); avg != 0 {
		t.Errorf("ScheduleCall path allocates %.1f objects per event, want 0", avg)
	}
	if tgt.n != 1001+1 { // warmup run + 1000 measured + priming call
		t.Fatalf("target ran %d times", tgt.n)
	}
}

func TestLineSendCallZeroAlloc(t *testing.T) {
	e := NewEngine()
	l := NewLine(e, 1e9)
	tgt := &countTarget{}
	l.SendCall(1<<10, tgt, 0, 1, 0)
	e.Run()
	if avg := testing.AllocsPerRun(1000, func() {
		l.SendCall(1<<10, tgt, 0, 1, 0)
		e.Run()
	}); avg != 0 {
		t.Errorf("Line.SendCall path allocates %.1f objects per transfer, want 0", avg)
	}
}

// TestSleepWakeZeroAlloc drives one proc through a full park/wake/sleep
// cycle per iteration: Semaphore.Release dequeues it from the waiter ring,
// the resume event rides the heap's *Proc arm, the proc sleeps once and
// parks again on Acquire. None of it may allocate.
func TestSleepWakeZeroAlloc(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(0)
	stop := false
	e.Spawn("sleeper", func(p *Proc) {
		for !stop {
			s.Acquire(p)
			p.Sleep(Microsecond)
		}
	})
	e.Run() // proc is now parked on Acquire; ring and heap are primed

	if avg := testing.AllocsPerRun(1000, func() {
		s.Release()
		e.Run()
	}); avg != 0 {
		t.Errorf("Sleep/wake cycle allocates %.1f objects, want 0", avg)
	}

	stop = true
	s.Release()
	e.Run()
	if e.Parked() != 0 || e.ProcsFinished() != 1 {
		t.Fatalf("proc did not finish cleanly: parked=%d finished=%d", e.Parked(), e.ProcsFinished())
	}
}

// TestWaitqFIFO exercises the ring buffer across wraparound and growth.
func TestWaitqFIFO(t *testing.T) {
	var q waitq
	mk := func(i int) *Proc { return &Proc{name: string(rune('a' + i))} }
	procs := make([]*Proc, 40)
	for i := range procs {
		procs[i] = mk(i)
	}
	// Interleave pushes and pops so head wraps several times while the
	// ring grows from 8 to 32.
	next := 0
	for i := 0; i < len(procs); i++ {
		q.push(procs[i])
		if i%3 == 2 {
			if got := q.pop(); got != procs[next] {
				t.Fatalf("pop %d: got %q want %q", next, got.name, procs[next].name)
			}
			next++
		}
	}
	for q.len() > 0 {
		if got := q.pop(); got != procs[next] {
			t.Fatalf("drain pop %d: got %q want %q", next, got.name, procs[next].name)
		}
		next++
	}
	if next != len(procs) {
		t.Fatalf("popped %d procs, want %d", next, len(procs))
	}
}
