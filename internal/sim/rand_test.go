package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRand(8)
	same := true
	a2 := NewRand(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(1)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(2)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("bucket %d grossly unbalanced: %d", i, c)
		}
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(3)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exp mean = %v, want ~1", mean)
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(4)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandJitter(t *testing.T) {
	r := NewRand(5)
	base := Second
	for i := 0; i < 1000; i++ {
		j := r.Jitter(base, 0.1)
		if j < 900*Millisecond || j > 1100*Millisecond {
			t.Fatalf("jitter out of band: %v", j)
		}
	}
	if r.Jitter(base, 0) != base {
		t.Fatal("zero-frac jitter should be identity")
	}
}

func TestRandFork(t *testing.T) {
	r := NewRand(6)
	f := r.Fork()
	// Parent and fork must diverge.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == f.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("fork correlates with parent: %d/100 equal", same)
	}
}

// Property: Int63n stays in range for arbitrary positive bounds.
func TestPropertyInt63nInRange(t *testing.T) {
	r := NewRand(9)
	f := func(bound uint32) bool {
		n := int64(bound%1000000) + 1
		v := r.Int63n(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512B"},
		{2048, "2.00KiB"},
		{64 << 20, "64.00MiB"},
		{3 << 30, "3.00GiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Fatal("Seconds")
	}
	if Millis(2) != 2*Millisecond {
		t.Fatal("Millis")
	}
	if Micros(3) != 3*Microsecond {
		t.Fatal("Micros")
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Fatal("Time.Seconds")
	}
	if (1500 * Microsecond).Millis() != 1.5 {
		t.Fatal("Time.Millis")
	}
	if (Second).String() != "1s" {
		t.Fatalf("String = %q", Second.String())
	}
}
