package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %v, want 30", e.Now())
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO at %d: %v", i, got[:i+1])
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []Time
	e.Schedule(10, func() {
		trace = append(trace, e.Now())
		e.Schedule(5, func() { trace = append(trace, e.Now()) })
		e.Schedule(0, func() { trace = append(trace, e.Now()) })
	})
	e.Run()
	want := []Time{10, 10, 15}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace[%d] = %v, want %v", i, trace[i], want[i])
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{10, 20, 30, 40} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want 2 events", fired)
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	if e.Now() != 20 {
		t.Fatalf("now = %v, want 20 (time of last executed event)", e.Now())
	}
	e.Run()
	if len(fired) != 4 || e.Now() != 40 {
		t.Fatalf("after Run: fired=%v now=%v", fired, e.Now())
	}
}

func TestStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(1, func() { n++ })
	e.Schedule(2, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("first step: n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("second step: n=%d", n)
	}
	if e.Step() {
		t.Fatal("step on empty queue returned true")
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling into the past")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestExecutedCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 17; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.Executed() != 17 {
		t.Fatalf("executed = %d, want 17", e.Executed())
	}
}

// Property: for any set of delays, events run in nondecreasing time order
// and the engine clock matches each event's scheduled time.
func TestPropertyTimeMonotonic(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var seen []Time
		for _, d := range delays {
			d := Time(d)
			e.Schedule(d, func() {
				if e.Now() != d {
					t.Errorf("clock %v != scheduled %v", e.Now(), d)
				}
				seen = append(seen, e.Now())
			})
		}
		e.Run()
		if len(seen) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(seen, func(i, j int) bool { return seen[i] < seen[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RunUntil never executes events past the deadline and leaves the
// remainder intact.
func TestPropertyRunUntilBoundary(t *testing.T) {
	f := func(delays []uint16, deadline uint16) bool {
		e := NewEngine()
		ran := 0
		expect := 0
		for _, d := range delays {
			if Time(d) <= Time(deadline) {
				expect++
			}
			e.Schedule(Time(d), func() { ran++ })
		}
		e.RunUntil(Time(deadline))
		return ran == expect && e.Pending() == len(delays)-expect
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
