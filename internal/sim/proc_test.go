package sim

import "testing"

func TestProcSleepSequence(t *testing.T) {
	e := NewEngine()
	var marks []Time
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * Millisecond)
			marks = append(marks, p.Now())
		}
	})
	e.Run()
	want := []Time{10 * Millisecond, 20 * Millisecond, 30 * Millisecond}
	if len(marks) != 3 {
		t.Fatalf("marks = %v", marks)
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks[%d] = %v, want %v", i, marks[i], want[i])
		}
	}
	if e.Parked() != 0 {
		t.Fatalf("parked procs remain: %d", e.Parked())
	}
	if e.ProcsFinished() != 1 {
		t.Fatalf("finished = %d", e.ProcsFinished())
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(5)
					log = append(log, name)
				}
			})
		}
		e.Run()
		return log
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		again := run()
		if len(again) != len(first) {
			t.Fatal("nondeterministic length")
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic interleaving at %d: %v vs %v", i, first, again)
			}
		}
	}
	// Same-time wakes should be FIFO by spawn order: a b c a b c a b c.
	want := []string{"a", "b", "c", "a", "b", "c", "a", "b", "c"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("order = %v, want %v", first, want)
		}
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := NewEngine()
	var s Signal
	woke := 0
	for i := 0; i < 4; i++ {
		e.Spawn("w", func(p *Proc) {
			p.Await(&s)
			woke++
			if p.Now() != 42 {
				t.Errorf("woke at %v, want 42", p.Now())
			}
		})
	}
	e.Schedule(42, func() { s.Fire(e) })
	e.Run()
	if woke != 4 {
		t.Fatalf("woke = %d, want 4", woke)
	}
	// Await after fire returns immediately.
	done := false
	e.Spawn("late", func(p *Proc) {
		p.Await(&s)
		done = true
	})
	e.Run()
	if !done {
		t.Fatal("late waiter did not pass fired signal")
	}
}

func TestSignalOnFire(t *testing.T) {
	e := NewEngine()
	var s Signal
	calls := 0
	s.OnFire(e, func() { calls++ })
	e.Schedule(5, func() { s.Fire(e) })
	e.Run()
	s.OnFire(e, func() { calls++ }) // after fire: scheduled immediately
	e.Run()
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
	s.Fire(e) // double fire is a no-op
	e.Run()
	if calls != 2 {
		t.Fatalf("double-fire changed calls: %d", calls)
	}
}

func TestGate(t *testing.T) {
	e := NewEngine()
	g := NewGate(3)
	opened := Time(-1)
	e.Spawn("waiter", func(p *Proc) {
		g.Wait(p)
		opened = p.Now()
	})
	for i := 1; i <= 3; i++ {
		d := Time(i) * 10
		e.Schedule(d, func() { g.Done(e) })
	}
	e.Run()
	if opened != 30 {
		t.Fatalf("gate opened at %v, want 30", opened)
	}
	if !g.Opened() {
		t.Fatal("gate should report opened")
	}
}

func TestGateAddAfterOpenPanics(t *testing.T) {
	e := NewEngine()
	g := NewGate(1)
	g.Done(e)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic adding to opened gate")
		}
	}()
	g.Add(1)
}

func TestSemaphoreFIFOAndBounds(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(2)
	inFlight, maxInFlight := 0, 0
	var order []int
	for i := 0; i < 6; i++ {
		i := i
		e.Spawn("u", func(p *Proc) {
			s.Acquire(p)
			order = append(order, i)
			inFlight++
			if inFlight > maxInFlight {
				maxInFlight = inFlight
			}
			p.Sleep(10)
			inFlight--
			s.Release()
		})
	}
	e.Run()
	if maxInFlight != 2 {
		t.Fatalf("max in flight = %d, want 2", maxInFlight)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("non-FIFO acquisition order: %v", order)
		}
	}
	if s.Available() != 2 || s.Waiting() != 0 {
		t.Fatalf("final state avail=%d waiting=%d", s.Available(), s.Waiting())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(1)
	if !s.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if s.TryAcquire() {
		t.Fatal("second TryAcquire should fail")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
	_ = e
}

func TestSpawnAt(t *testing.T) {
	e := NewEngine()
	var started Time
	e.SpawnAt(25, "late", func(p *Proc) { started = p.Now() })
	e.Run()
	if started != 25 {
		t.Fatalf("started = %v, want 25", started)
	}
}

func TestProcYield(t *testing.T) {
	e := NewEngine()
	var log []string
	e.Spawn("a", func(p *Proc) {
		log = append(log, "a1")
		p.Yield()
		log = append(log, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		log = append(log, "b1")
	})
	e.Run()
	// a starts first, yields; b runs; a resumes.
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestManyProcsNoLeak(t *testing.T) {
	e := NewEngine()
	const n = 1000
	g := NewGate(n)
	for i := 0; i < n; i++ {
		e.Spawn("p", func(p *Proc) {
			p.Sleep(Time(1))
			g.Done(e)
		})
	}
	e.Run()
	if !g.Opened() {
		t.Fatal("not all procs finished")
	}
	if e.ProcsFinished() != n {
		t.Fatalf("finished = %d, want %d", e.ProcsFinished(), n)
	}
	if e.Parked() != 0 {
		t.Fatalf("parked = %d, want 0", e.Parked())
	}
}
