package sim

import (
	"testing"
)

// pingPong is a Target bouncing a counter between two engines of a set:
// every delivery re-posts to the peer one lookahead later, recording the
// times it observes. The hop index rides in the event payload, so the total
// hop budget needs no state shared across shards.
type pingPong struct {
	set   *ShardSet
	self  *Engine
	peer  *pingPong
	limit int64
	log   []Time
}

func (p *pingPong) OnEvent(op uint32, a, b int64) {
	p.log = append(p.log, p.self.now)
	if a+1 >= p.limit {
		return
	}
	p.self.PostCall(p.peer.self, p.self.now+p.set.Lookahead(), p.peer, op, a+1, b)
}

// buildPingPong wires a two-shard ping-pong with the given lookahead and
// returns both endpoints.
func buildPingPong(k int, la Time, limit int64) (*ShardSet, *pingPong, *pingPong) {
	s := NewShardSet(k, la)
	a := &pingPong{set: s, self: s.Engine(0), limit: limit}
	b := &pingPong{set: s, self: s.Engine(k - 1), limit: limit}
	a.peer, b.peer = b, a
	a.self.AtCall(0, a, 0, 0, 0)
	return s, a, b
}

func TestShardSetPingPong(t *testing.T) {
	const la = Time(40_000)
	const hops = 50
	s, a, b := buildPingPong(2, la, hops)
	end := s.Run()
	if got := len(a.log) + len(b.log); got != hops {
		t.Fatalf("hops = %d, want %d", got, hops)
	}
	if want := Time(hops-1) * la; end != want {
		t.Fatalf("end = %d, want %d", end, want)
	}
	// Each endpoint sees strictly increasing times spaced 2 lookaheads apart.
	for _, pp := range []*pingPong{a, b} {
		for i := 1; i < len(pp.log); i++ {
			if pp.log[i]-pp.log[i-1] != 2*la {
				t.Fatalf("hop spacing %d, want %d", pp.log[i]-pp.log[i-1], 2*la)
			}
		}
	}
	if s.Executed() != hops {
		t.Fatalf("Executed = %d, want %d", s.Executed(), hops)
	}
}

// TestShardSetMatchesSerial runs the same fan-out/fan-in workload on a
// serial engine and on shard sets of several sizes, asserting the executed
// event counts and end times agree — the kernel-level slice of the
// determinism oracle (the end-to-end slice lives in internal/scenario).
func TestShardSetMatchesSerial(t *testing.T) {
	const la = Time(1000)
	const chains = 8
	// run maps a fixed workload — `chains` relay chains of depth 16, chain c
	// homed on engine c%k, every hop moving one engine to the right — onto k
	// shards. The event structure is identical for every k; only the
	// engine placement changes.
	run := func(k int) (Time, uint64) {
		s := NewShardSet(k, la)
		var relay func(i int, depth int) func()
		relay = func(i int, depth int) func() {
			return func() {
				if depth == 0 {
					return
				}
				src := s.Engine(i)
				dst := s.Engine((i + 1) % k)
				src.PostFunc(dst, src.Now()+la, relay((i+1)%k, depth-1))
			}
		}
		for c := 0; c < chains; c++ {
			s.Engine(c%k).At(Time(c)*10, relay(c%k, 16))
		}
		end := s.Run()
		return end, s.Executed()
	}
	wantEnd, wantN := run(1)
	for _, k := range []int{2, 3, 4} {
		end, n := run(k)
		if end != wantEnd || n != wantN {
			t.Fatalf("k=%d: (end, executed) = (%d, %d), want (%d, %d)", k, end, n, wantEnd, wantN)
		}
	}
}

// TestShardSetParallelPath drives the worker-pool loop directly. Run falls
// back to the sequential window loop on single-processor runtimes, so this
// test pins the spin-synchronized path — and gives the race detector its
// shot at the doorbell atomics — regardless of GOMAXPROCS.
func TestShardSetParallelPath(t *testing.T) {
	const la = Time(40_000)
	const hops = 50
	s, a, b := buildPingPong(3, la, hops)
	s.started = true
	end := s.runParallel()
	if got := len(a.log) + len(b.log); got != hops {
		t.Fatalf("hops = %d, want %d", got, hops)
	}
	if want := Time(hops-1) * la; end != want {
		t.Fatalf("end = %d, want %d", end, want)
	}
	if s.Executed() != hops {
		t.Fatalf("Executed = %d, want %d", s.Executed(), hops)
	}
}

func TestShardSetLookaheadContract(t *testing.T) {
	s := NewShardSet(2, 1000)
	a, b := s.Engine(0), s.Engine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("posting inside the lookahead window must panic")
		}
	}()
	a.PostFunc(b, a.Now()+999, func() {})
}

func TestShardSetRejectsForeignEngines(t *testing.T) {
	s1 := NewShardSet(2, 1000)
	s2 := NewShardSet(2, 1000)
	defer func() {
		if recover() == nil {
			t.Fatal("posting across unrelated shard sets must panic")
		}
	}()
	s1.Engine(0).PostFunc(s2.Engine(1), 5000, func() {})
}

func TestNewShardSetValidation(t *testing.T) {
	for _, tc := range []struct{ k, la int }{{0, 1}, {1, 0}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewShardSet(%d, %d) must panic", tc.k, tc.la)
				}
			}()
			NewShardSet(tc.k, Time(tc.la))
		}()
	}
}

// applyProbe records Applier deliveries.
type applyProbe struct{ got []int64 }

func (p *applyProbe) OnApply(a, b int64, data any) { p.got = append(p.got, a) }

func TestShardSetPostApply(t *testing.T) {
	s := NewShardSet(2, 1000)
	a, b := s.Engine(0), s.Engine(1)
	probe := &applyProbe{}
	// Local apply runs synchronously.
	a.PostApply(a, probe, 1, 0, nil)
	if len(probe.got) != 1 {
		t.Fatalf("local PostApply must apply synchronously, got %v", probe.got)
	}
	// Cross-shard applies land at the next drain, before that window's
	// events, in FIFO order.
	a.At(0, func() {
		a.PostApply(b, probe, 2, 0, nil)
		a.PostApply(b, probe, 3, 0, nil)
	})
	done := false
	b.At(2000, func() {
		if len(probe.got) != 3 {
			t.Errorf("applies not delivered before the window's events: %v", probe.got)
		}
		done = true
	})
	s.Run()
	if !done {
		t.Fatal("receiver event never ran")
	}
	if probe.got[1] != 2 || probe.got[2] != 3 {
		t.Fatalf("applies out of FIFO order: %v", probe.got)
	}
}

// TestShardWindowAllocs pins the steady-state drain + window path at zero
// allocations per window once the mailboxes have warmed up.
func TestShardWindowAllocs(t *testing.T) {
	const la = Time(1000)
	s := NewShardSet(4, la)
	// Self-sustaining cross-shard traffic: each engine's Target re-posts to
	// the next engine forever (bounded by the measured window count).
	type relay struct {
		s    *ShardSet
		i    int
		stop bool
	}
	relays := make([]*relay, 4)
	targets := make([]Target, 4)
	for i := range relays {
		relays[i] = &relay{s: s, i: i}
	}
	for i, r := range relays {
		r := r
		targets[i] = targetFunc(func(op uint32, a, b int64) {
			if r.stop {
				return
			}
			src := r.s.Engine(r.i)
			dst := r.s.Engine((r.i + 1) % 4)
			src.PostCall(dst, src.Now()+la, targets[(r.i+1)%4], op, a, b)
		})
	}
	for i := 0; i < 4; i++ {
		s.Engine(i).AtCall(0, targets[i], 0, 0, 0)
	}
	// Warm up heap slices and mailboxes.
	for i := 0; i < 16; i++ {
		if !s.stepWindow() {
			t.Fatal("traffic died during warm-up")
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if !s.stepWindow() {
			t.Fatal("traffic died during measurement")
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state window allocates %v allocs/op, want 0", avg)
	}
	for _, r := range relays {
		r.stop = true
	}
	s.Run()
}

// targetFunc adapts a func to Target for tests.
type targetFunc func(op uint32, a, b int64)

func (f targetFunc) OnEvent(op uint32, a, b int64) { f(op, a, b) }

func TestLineReserveMatchesSend(t *testing.T) {
	e := NewEngine()
	l := NewLine(e, 1e9)
	l.PerOp = 10
	l.Latency = 500
	for _, n := range []int64{0, 1, 1000, 1 << 20} {
		want := l.reserve(n)
		_ = want
		// Reserve and Send must book identical delivery times for equal
		// queues: compare two fresh lines.
	}
	l1 := NewLine(e, 1e9)
	l1.PerOp, l1.Latency = 10, 500
	l2 := NewLine(e, 1e9)
	l2.PerOp, l2.Latency = 10, 500
	for _, n := range []int64{0, 1, 1000, 1 << 20} {
		if got, want := l1.Reserve(n), l2.Send(n, nil); got != want {
			t.Fatalf("Reserve(%d) = %d, Send = %d", n, got, want)
		}
	}
}
