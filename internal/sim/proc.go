package sim

// Proc is a coroutine-style simulated process. A Proc's body is an ordinary
// Go function running on its own goroutine, but control is handed between
// the engine's event loop and at most one Proc at a time, so Proc bodies may
// read and write shared simulation state without synchronization and the
// simulation stays deterministic.
//
// Procs block with Sleep, Await (Signal), Gate.Wait and Semaphore.Acquire.
// All blocking operations must be called from the Proc's own body.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	dead   bool
}

// Spawn creates a process and schedules it to start at the current time.
// The body runs with coroutine semantics: it executes exclusively until it
// blocks or returns. The goroutine is created lazily inside the start
// event, so an engine that is dropped without running leaks nothing; the
// one closure this costs is per-spawn, not per-event, and spawns are cold
// next to the Sleep/wake path.
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.spawned++
	e.Schedule(0, func() {
		go func() {
			<-p.resume // wait for first handoff
			body(p)
			p.dead = true
			e.finished++
			e.yield <- struct{}{} // final handoff back to the loop
		}()
		e.handoff(p)
	})
	return p
}

// SpawnAt is Spawn with a start delay.
func (e *Engine) SpawnAt(d Time, name string, body func(*Proc)) {
	e.Schedule(d, func() { e.Spawn(name, body) })
}

// handoff gives control to p and waits until p parks or exits.
// It must only be called from the engine's execution context (inside an
// event callback); that invariant is what serializes the simulation.
func (e *Engine) handoff(p *Proc) {
	prev := e.current
	e.current = p
	p.resume <- struct{}{}
	<-e.yield
	e.current = prev
}

// park suspends the calling proc until the next handoff to it.
func (p *Proc) park() {
	p.eng.parked++
	p.eng.yield <- struct{}{}
	<-p.resume
	p.eng.parked--
}

// wake schedules a handoff to p at the current time (FIFO among equal-time
// events). It is the only way parked procs resume. The handoff rides the
// event's *Proc union arm, so waking allocates nothing.
func (p *Proc) wake() {
	p.eng.scheduleProc(0, p)
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Sleep suspends the process for d simulated time. Even a zero-length sleep
// yields, preserving FIFO fairness among same-time events. Like wake, the
// resume event is closure-free.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.eng.scheduleProc(d, p)
	p.park()
}

// Yield gives other same-time events a chance to run before continuing.
func (p *Proc) Yield() { p.Sleep(0) }

// waitq is a FIFO of parked procs backed by a power-of-two ring buffer:
// push and pop are O(1) with no copying, unlike the copy-shift dequeues a
// plain slice needs. The buffer grows geometrically and is retained across
// fill/drain cycles, so a waiter queue in steady state allocates nothing.
type waitq struct {
	buf  []*Proc // len is 0 or a power of two
	head int
	n    int
}

// push appends p to the tail.
func (q *waitq) push(p *Proc) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = p
	q.n++
}

// pop removes and returns the head. The queue must not be empty.
func (q *waitq) pop() *Proc {
	p := q.buf[q.head]
	q.buf[q.head] = nil // release the reference; the proc may be long-lived
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return p
}

// len returns the number of queued procs.
func (q *waitq) len() int { return q.n }

// grow doubles the ring, unwrapping it to the front of the new buffer.
func (q *waitq) grow() {
	size := 2 * len(q.buf)
	if size == 0 {
		size = 8
	}
	nb := make([]*Proc, size)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf, q.head = nb, 0
}

// A Signal is a one-shot broadcast: procs Await it, and once Fired all
// current and future waiters proceed immediately. The zero value is usable.
type Signal struct {
	fired   bool
	waiters waitq
	fns     []func()
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire releases all waiters. Waiters resume as separate events at the
// current time, in Await order. Firing twice is a no-op.
func (s *Signal) Fire(e *Engine) {
	if s.fired {
		return
	}
	s.fired = true
	for s.waiters.len() > 0 {
		s.waiters.pop().wake()
	}
	for _, fn := range s.fns {
		e.Schedule(0, fn)
	}
	s.fns = nil
}

// Await blocks the proc until the signal fires (returns immediately if it
// already has).
func (p *Proc) Await(s *Signal) {
	if s.fired {
		return
	}
	s.waiters.push(p)
	p.park()
}

// OnFire registers a callback to run (as an event) when the signal fires.
// If the signal already fired, fn is scheduled immediately.
func (s *Signal) OnFire(e *Engine, fn func()) {
	if s.fired {
		e.Schedule(0, fn)
		return
	}
	s.fns = append(s.fns, fn)
}

// A Gate is a countdown latch: it opens when its count reaches zero.
// Use Add to raise the count and Done to lower it.
type Gate struct {
	n      int
	opened Signal
}

// NewGate returns a gate that opens after n calls to Done.
func NewGate(n int) *Gate {
	g := &Gate{n: n}
	return g
}

// Add raises the count by delta. Adding to an already-open gate panics.
func (g *Gate) Add(delta int) {
	if g.opened.fired {
		panic("sim: Add on opened Gate")
	}
	g.n += delta
}

// Done lowers the count; when it reaches zero the gate opens.
func (g *Gate) Done(e *Engine) {
	g.n--
	if g.n < 0 {
		panic("sim: Gate count below zero")
	}
	if g.n == 0 {
		g.opened.Fire(e)
	}
}

// Wait blocks until the gate opens.
func (g *Gate) Wait(p *Proc) { p.Await(&g.opened) }

// Opened reports whether the gate has opened.
func (g *Gate) Opened() bool { return g.opened.fired }

// A Semaphore holds counted tokens with FIFO waiters. It is the standard
// bound on in-flight operations (e.g. per-process outstanding I/O requests).
type Semaphore struct {
	avail   int
	waiters waitq
}

// NewSemaphore returns a semaphore with n available tokens.
func NewSemaphore(n int) *Semaphore { return &Semaphore{avail: n} }

// Acquire takes a token, blocking FIFO if none is available.
func (s *Semaphore) Acquire(p *Proc) {
	if s.avail > 0 && s.waiters.len() == 0 {
		s.avail--
		return
	}
	s.waiters.push(p)
	p.park()
	// The token was passed to us directly by Release; nothing to decrement.
}

// TryAcquire takes a token without blocking and reports success.
func (s *Semaphore) TryAcquire() bool {
	if s.avail > 0 && s.waiters.len() == 0 {
		s.avail--
		return true
	}
	return false
}

// Release returns a token, waking the oldest waiter if any. The token passes
// directly to the waiter (no barging). Dequeueing the waiter and scheduling
// its resume are both allocation-free O(1) operations.
func (s *Semaphore) Release() {
	if s.waiters.len() > 0 {
		s.waiters.pop().wake()
		return
	}
	s.avail++
}

// Available returns the number of free tokens.
func (s *Semaphore) Available() int { return s.avail }

// Waiting returns the number of blocked acquirers.
func (s *Semaphore) Waiting() int { return s.waiters.len() }
