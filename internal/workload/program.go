package workload

import "fmt"

// PhaseKind is the kind of one program phase.
type PhaseKind int

// Phase kinds.
const (
	// PhaseIO performs one I/O burst described by a Spec.
	PhaseIO PhaseKind = iota
	// PhaseCompute pauses the rank for Compute plus an (optional)
	// exponentially distributed jitter — think time between bursts.
	PhaseCompute
	// PhaseBarrier synchronizes all ranks of the application, like the
	// collective entry into a checkpoint.
	PhaseBarrier
)

func (k PhaseKind) String() string {
	switch k {
	case PhaseIO:
		return "io"
	case PhaseCompute:
		return "compute"
	case PhaseBarrier:
		return "barrier"
	}
	return "unknown"
}

// Phase is one step of a Program. Exactly the fields of its Kind apply.
type Phase struct {
	Kind PhaseKind

	// IO is the burst of a PhaseIO step. Each iteration re-writes (or
	// re-reads) the same extents — checkpoint semantics: the file region an
	// application owns is overwritten burst after burst, so the file's
	// footprint does not grow with Iterations.
	IO Spec

	// Compute is the fixed think time of a PhaseCompute step, in
	// nanoseconds of simulated time.
	Compute int64
	// JitterMean, when positive, adds an exponentially distributed extra
	// pause with this mean (nanoseconds) — a Poisson burst-arrival process.
	// Draws come from a deterministic per-application stream seeded by
	// Program.Seed: every rank of the application draws the identical
	// value (the pause is collective, keeping the burst coherent), distinct
	// applications with distinct seeds decorrelate, and reruns reproduce
	// the exact same schedule.
	JitterMean int64
}

// Program is a multi-phase workload: the phase list, executed in order,
// Iterations times — the temporal structure (periodic checkpoints, bursty
// think/write loops) that a single one-shot Spec cannot express. The zero
// Iterations value means 1.
type Program struct {
	// Phases run in list order within each iteration.
	Phases []Phase
	// Iterations repeats the whole phase list (0 means 1).
	Iterations int
	// Seed seeds the program's deterministic jitter stream. Programs with
	// equal seeds draw identical jitter; give co-running applications
	// distinct seeds to decorrelate their burst arrivals.
	Seed uint64
}

// Iters returns the effective iteration count (at least 1).
func (pr *Program) Iters() int {
	if pr.Iterations < 1 {
		return 1
	}
	return pr.Iterations
}

// Validate checks the program for consistency.
func (pr *Program) Validate() error {
	if len(pr.Phases) == 0 {
		return fmt.Errorf("workload: program needs at least one phase")
	}
	if pr.Iterations < 0 {
		return fmt.Errorf("workload: program iterations must be >= 0, got %d", pr.Iterations)
	}
	for i, ph := range pr.Phases {
		switch ph.Kind {
		case PhaseIO:
			if err := ph.IO.Validate(); err != nil {
				return fmt.Errorf("workload: program phase %d: %w", i, err)
			}
			if ph.Compute != 0 || ph.JitterMean != 0 {
				return fmt.Errorf("workload: program phase %d: io phase with compute/jitter fields", i)
			}
		case PhaseCompute:
			if ph.Compute < 0 || ph.JitterMean < 0 {
				return fmt.Errorf("workload: program phase %d: negative compute/jitter", i)
			}
			if ph.IO != (Spec{}) {
				return fmt.Errorf("workload: program phase %d: compute phase with io fields", i)
			}
		case PhaseBarrier:
			if ph.IO != (Spec{}) || ph.Compute != 0 || ph.JitterMean != 0 {
				return fmt.Errorf("workload: program phase %d: barrier phase carries no fields", i)
			}
		default:
			return fmt.Errorf("workload: program phase %d: unknown kind %d", i, ph.Kind)
		}
	}
	return nil
}

// BytesPerProc returns the bytes one process moves over the whole program.
func (pr *Program) BytesPerProc() int64 {
	var n int64
	for _, ph := range pr.Phases {
		if ph.Kind == PhaseIO {
			n += ph.IO.BlockBytes
		}
	}
	return n * int64(pr.Iters())
}

// TotalBytes returns the bytes the whole application moves (all processes,
// all iterations).
func (pr *Program) TotalBytes(nprocs int) int64 {
	return pr.BytesPerProc() * int64(nprocs)
}

// MaxQD returns the largest queue depth any I/O phase uses — the pipelining
// bound a trace replayer must honor.
func (pr *Program) MaxQD() int {
	qd := 0
	for _, ph := range pr.Phases {
		if ph.Kind == PhaseIO && ph.IO.QD > qd {
			qd = ph.IO.QD
		}
	}
	return qd
}

// Requests returns the number of I/O requests each process issues over the
// whole program.
func (pr *Program) Requests() int {
	n := 0
	for _, ph := range pr.Phases {
		if ph.Kind == PhaseIO {
			n += ph.IO.Requests()
		}
	}
	return n * pr.Iters()
}

// Barriers returns the number of barrier entries each process performs.
func (pr *Program) Barriers() int {
	n := 0
	for _, ph := range pr.Phases {
		if ph.Kind == PhaseBarrier {
			n++
		}
	}
	return n * pr.Iters()
}

// Single wraps a one-shot Spec into the equivalent one-phase program.
func Single(s Spec) *Program {
	return &Program{Phases: []Phase{{Kind: PhaseIO, IO: s}}}
}
