package workload

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestContiguousPlan(t *testing.T) {
	s := Spec{Pattern: Contiguous, BlockBytes: 64 << 20}
	p := s.Plan(3, 8)
	if len(p) != 1 {
		t.Fatalf("plan = %v", p)
	}
	if p[0].Off != 3*(64<<20) || p[0].Size != 64<<20 {
		t.Fatalf("extent = %+v", p[0])
	}
	if s.Requests() != 1 {
		t.Fatalf("requests = %d", s.Requests())
	}
}

func TestStridedPlanMatchesPaper(t *testing.T) {
	// Paper: 256 requests of 256 KB each per process.
	s := Spec{Pattern: Strided, BlockBytes: 64 << 20, TransferSize: 256 << 10}
	p := s.Plan(0, 480)
	if len(p) != 256 {
		t.Fatalf("requests = %d, want 256", len(p))
	}
	if s.Requests() != 256 {
		t.Fatalf("Requests() = %d", s.Requests())
	}
	// Consecutive requests of one rank are nprocs*xfer apart.
	stride := int64(480) * (256 << 10)
	for i := 1; i < len(p); i++ {
		if p[i].Off-p[i-1].Off != stride {
			t.Fatalf("stride = %d, want %d", p[i].Off-p[i-1].Off, stride)
		}
	}
}

func TestStridedTilesFileExactly(t *testing.T) {
	// All ranks together must tile [0, FileBytes) with no gaps or overlaps.
	s := Spec{Pattern: Strided, BlockBytes: 1 << 20, TransferSize: 64 << 10}
	const nprocs = 16
	var all []Extent
	for r := 0; r < nprocs; r++ {
		all = append(all, s.Plan(r, nprocs)...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Off < all[j].Off })
	var cur int64
	for _, e := range all {
		if e.Off != cur {
			t.Fatalf("gap or overlap at %d (next extent at %d)", cur, e.Off)
		}
		cur += e.Size
	}
	if cur != s.FileBytes(nprocs) {
		t.Fatalf("file covered to %d, want %d", cur, s.FileBytes(nprocs))
	}
}

func TestContiguousTilesFileExactly(t *testing.T) {
	s := Spec{Pattern: Contiguous, BlockBytes: 4 << 20}
	const nprocs = 8
	var all []Extent
	for r := 0; r < nprocs; r++ {
		all = append(all, s.Plan(r, nprocs)...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Off < all[j].Off })
	var cur int64
	for _, e := range all {
		if e.Off != cur {
			t.Fatalf("gap at %d", cur)
		}
		cur += e.Size
	}
	if cur != s.TotalBytes(nprocs) {
		t.Fatalf("covered %d, want %d", cur, s.TotalBytes(nprocs))
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		s  Spec
		ok bool
	}{
		{Spec{Pattern: Contiguous, BlockBytes: 1 << 20}, true},
		{Spec{Pattern: Contiguous, BlockBytes: 0}, false},
		{Spec{Pattern: Strided, BlockBytes: 1 << 20, TransferSize: 64 << 10}, true},
		{Spec{Pattern: Strided, BlockBytes: 1 << 20, TransferSize: 0}, false},
		{Spec{Pattern: Strided, BlockBytes: 1<<20 + 1, TransferSize: 64 << 10}, false},
	}
	for i, c := range cases {
		if got := c.s.Validate() == nil; got != c.ok {
			t.Errorf("case %d: Validate ok=%v, want %v", i, got, c.ok)
		}
	}
}

func TestPatternString(t *testing.T) {
	if Contiguous.String() != "contiguous" || Strided.String() != "strided" {
		t.Fatal("pattern names")
	}
	if Pattern(9).String() != "unknown" {
		t.Fatal("unknown pattern")
	}
}

// Property: per-rank plans never overlap across ranks and always cover
// exactly BlockBytes per rank.
func TestPropertyPlansDisjoint(t *testing.T) {
	f := func(np uint8, blocks uint8, xferExp uint8) bool {
		nprocs := int(np%16) + 1
		xfer := int64(1) << (10 + xferExp%6) // 1 KiB .. 32 KiB
		block := xfer * (int64(blocks%8) + 1)
		s := Spec{Pattern: Strided, BlockBytes: block, TransferSize: xfer}
		seen := map[int64]bool{}
		for r := 0; r < nprocs; r++ {
			var sum int64
			for _, e := range s.Plan(r, nprocs) {
				if seen[e.Off] {
					return false
				}
				seen[e.Off] = true
				sum += e.Size
			}
			if sum != block {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: for both patterns and varied nprocs, the per-rank extents are
// pairwise disjoint and together tile [0, FileBytes) exactly — no gap, no
// overlap, no spill past the end of the shared file.
func TestPropertyPlanTilesFile(t *testing.T) {
	f := func(contig bool, np uint8, blocks uint8, xferExp uint8) bool {
		nprocs := int(np%16) + 1
		xfer := int64(1) << (10 + xferExp%6) // 1 KiB .. 32 KiB
		block := xfer * (int64(blocks%8) + 1)
		s := Spec{Pattern: Strided, BlockBytes: block, TransferSize: xfer}
		if contig {
			s = Spec{Pattern: Contiguous, BlockBytes: block}
		}
		var all []Extent
		for r := 0; r < nprocs; r++ {
			all = append(all, s.Plan(r, nprocs)...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Off < all[j].Off })
		var cur int64
		for _, e := range all {
			if e.Off != cur || e.Size <= 0 {
				return false // gap (or overlap: a duplicate offset sorts before cur)
			}
			cur += e.Size
		}
		return cur == s.FileBytes(nprocs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Spec{Pattern: Contiguous, BlockBytes: 0}.Plan(0, 1) },
		func() { Spec{Pattern: Contiguous, BlockBytes: 1}.Plan(1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
