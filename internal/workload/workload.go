// Package workload generates the paper's IOR-like microbenchmark access
// patterns. Each process of an application writes BlockBytes in total,
// either as one contiguous request at rank*BlockBytes (the "Contiguous"
// pattern) or as BlockBytes/TransferSize strided requests interleaved
// across ranks (the "Strided" pattern, IOR's segmented layout).
package workload

import "fmt"

// Pattern is an access pattern kind.
type Pattern int

// Patterns from the paper (§III-B).
const (
	// Contiguous: one request of BlockBytes at offset rank*BlockBytes.
	Contiguous Pattern = iota
	// Strided: BlockBytes/TransferSize requests; request i of rank r is at
	// offset (i*nprocs + r) * TransferSize — a one-dimensional strided
	// pattern in the shared file.
	Strided
)

func (p Pattern) String() string {
	switch p {
	case Contiguous:
		return "contiguous"
	case Strided:
		return "strided"
	}
	return "unknown"
}

// Spec describes one application's I/O phase.
type Spec struct {
	Pattern Pattern
	// BlockBytes is the total bytes written per process (64 MB in most of
	// the paper's experiments).
	BlockBytes int64
	// TransferSize is the request size for the strided pattern (256 KB in
	// the paper's base strided workload). Ignored for Contiguous.
	TransferSize int64
	// QD is the number of outstanding requests per process (1 = strictly
	// sequential requests, matching blocking MPI-IO calls).
	QD int
	// ThinkTime is a fixed client-side cost per request (MPI-IO collective
	// coordination, request setup). With small transfer sizes it dominates
	// and the system becomes latency-bound — the paper's "interference-free
	// but far from optimal" regime (§IV-A7).
	ThinkTime int64 // nanoseconds
	// Read makes the phase read instead of write (paper future work).
	Read bool
}

// Validate checks the spec for consistency.
func (s Spec) Validate() error {
	if s.BlockBytes <= 0 {
		return fmt.Errorf("workload: BlockBytes must be positive, got %d", s.BlockBytes)
	}
	if s.Pattern == Strided {
		if s.TransferSize <= 0 {
			return fmt.Errorf("workload: strided pattern needs TransferSize > 0")
		}
		if s.BlockBytes%s.TransferSize != 0 {
			return fmt.Errorf("workload: BlockBytes %d not divisible by TransferSize %d",
				s.BlockBytes, s.TransferSize)
		}
	}
	return nil
}

// Extent is one I/O request in the shared file.
type Extent struct {
	Off  int64
	Size int64
}

// Plan returns the ordered request list for the given rank out of nprocs.
func (s Spec) Plan(rank, nprocs int) []Extent {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if rank < 0 || rank >= nprocs {
		panic(fmt.Sprintf("workload: rank %d out of %d", rank, nprocs))
	}
	switch s.Pattern {
	case Contiguous:
		return []Extent{{Off: int64(rank) * s.BlockBytes, Size: s.BlockBytes}}
	case Strided:
		n := int(s.BlockBytes / s.TransferSize)
		out := make([]Extent, n)
		for i := 0; i < n; i++ {
			out[i] = Extent{
				Off:  (int64(i)*int64(nprocs) + int64(rank)) * s.TransferSize,
				Size: s.TransferSize,
			}
		}
		return out
	}
	panic("workload: unknown pattern")
}

// TotalBytes returns the bytes one application writes (all processes).
func (s Spec) TotalBytes(nprocs int) int64 { return s.BlockBytes * int64(nprocs) }

// FileBytes returns the size of the shared file the pattern covers.
func (s Spec) FileBytes(nprocs int) int64 { return s.BlockBytes * int64(nprocs) }

// Requests returns the number of requests each process issues.
func (s Spec) Requests() int {
	if s.Pattern == Contiguous {
		return 1
	}
	return int(s.BlockBytes / s.TransferSize)
}
