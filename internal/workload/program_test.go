package workload

import "testing"

func validProgram() *Program {
	return &Program{
		Iterations: 3,
		Phases: []Phase{
			{Kind: PhaseBarrier},
			{Kind: PhaseIO, IO: Spec{Pattern: Contiguous, BlockBytes: 4 << 20}},
			{Kind: PhaseCompute, Compute: 1e9, JitterMean: 5e8},
			{Kind: PhaseIO, IO: Spec{Pattern: Strided, BlockBytes: 2 << 20, TransferSize: 256 << 10, QD: 4}},
		},
	}
}

func TestProgramValidate(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Program{
		{},
		{Iterations: -1, Phases: []Phase{{Kind: PhaseIO, IO: Spec{BlockBytes: 1}}}},
		{Phases: []Phase{{Kind: PhaseIO}}},                                      // invalid io spec
		{Phases: []Phase{{Kind: PhaseIO, IO: Spec{BlockBytes: 1}, Compute: 1}}}, // io with compute
		{Phases: []Phase{{Kind: PhaseCompute, Compute: -1}}},
		{Phases: []Phase{{Kind: PhaseCompute, IO: Spec{BlockBytes: 1}}}},
		{Phases: []Phase{{Kind: PhaseBarrier, Compute: 1}}},
		{Phases: []Phase{{Kind: PhaseKind(9)}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestProgramTotals(t *testing.T) {
	p := validProgram()
	if got, want := p.BytesPerProc(), int64(3*(4<<20+2<<20)); got != want {
		t.Fatalf("BytesPerProc = %d, want %d", got, want)
	}
	if got, want := p.TotalBytes(8), int64(8*3*(6<<20)); got != want {
		t.Fatalf("TotalBytes = %d, want %d", got, want)
	}
	if got := p.MaxQD(); got != 4 {
		t.Fatalf("MaxQD = %d, want 4", got)
	}
	// 1 contiguous request + 8 strided requests per iteration.
	if got, want := p.Requests(), 3*(1+8); got != want {
		t.Fatalf("Requests = %d, want %d", got, want)
	}
	if got := p.Barriers(); got != 3 {
		t.Fatalf("Barriers = %d, want 3", got)
	}
	if got := (&Program{Phases: []Phase{{Kind: PhaseBarrier}}}).Iters(); got != 1 {
		t.Fatalf("zero Iterations should mean 1, got %d", got)
	}
}

func TestSingle(t *testing.T) {
	s := Spec{Pattern: Contiguous, BlockBytes: 1 << 20, QD: 2}
	p := Single(s)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.TotalBytes(4) != s.TotalBytes(4) || p.MaxQD() != 2 {
		t.Fatal("Single does not preserve the spec")
	}
}

func TestPhaseKindString(t *testing.T) {
	if PhaseIO.String() != "io" || PhaseCompute.String() != "compute" ||
		PhaseBarrier.String() != "barrier" || PhaseKind(9).String() != "unknown" {
		t.Fatal("phase kind names")
	}
}
