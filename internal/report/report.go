// Package report renders experiment results as TSV or aligned ASCII tables
// for the command-line tools and EXPERIMENTS.md.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title string
	Cols  []string
	Rows  [][]string
}

// New creates a table with the given title and column headers.
func New(title string, cols ...string) *Table {
	return &Table{Title: title, Cols: cols}
}

// Add appends a row; cells are formatted with %v, floats with %.3g trimmed.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// WriteTSV emits the table as tab-separated values with a # title line.
func (t *Table) WriteTSV(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(t.Cols, "\t")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(r, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// WriteASCII emits the table with aligned columns.
func (t *Table) WriteASCII(w io.Writer) error {
	width := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		width[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", width[i]-len(c)))
			}
		}
		_, err := fmt.Fprintln(w, b.String())
		return err
	}
	if err := line(t.Cols); err != nil {
		return err
	}
	rule := make([]string, len(t.Cols))
	for i := range rule {
		rule[i] = strings.Repeat("-", width[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}

// Seconds formats a float seconds value compactly.
func Seconds(s float64) string { return trimFloat(s) }
