package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := New("demo", "name", "value", "ratio")
	t.Add("alpha", 42, 2.5)
	t.Add("beta", int64(7), 0.125)
	t.Add("gamma", "text", 3.0)
	return t
}

func TestWriteTSV(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteTSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if lines[0] != "# demo" {
		t.Fatalf("title line = %q", lines[0])
	}
	if lines[1] != "name\tvalue\tratio" {
		t.Fatalf("header = %q", lines[1])
	}
	if lines[2] != "alpha\t42\t2.5" {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestWriteASCIIAligned(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteASCII(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	// Title, header, rule, 3 rows.
	if len(lines) != 6 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "== demo") {
		t.Fatalf("title = %q", lines[0])
	}
	// The rule row must be dashes and spaces only.
	for _, r := range lines[2] {
		if r != '-' && r != ' ' {
			t.Fatalf("rule line contains %q", r)
		}
	}
	// All rows begin at column 0 with their first cell.
	if !strings.HasPrefix(lines[3], "alpha") || !strings.HasPrefix(lines[5], "gamma") {
		t.Fatalf("rows misordered: %v", lines[3:])
	}
}

func TestFloatTrimming(t *testing.T) {
	cases := map[float64]string{
		2.5:    "2.5",
		3.0:    "3",
		0.125:  "0.125",
		0.1259: "0.126",
		0:      "0",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestEmptyTable(t *testing.T) {
	tab := New("", "a", "b")
	var b strings.Builder
	if err := tab.WriteTSV(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "#") {
		t.Fatal("untitled table printed a title line")
	}
	var b2 strings.Builder
	if err := tab.WriteASCII(&b2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b2.String(), "a") {
		t.Fatal("header missing")
	}
}

func TestSecondsHelper(t *testing.T) {
	if Seconds(1.50) != "1.5" {
		t.Fatalf("Seconds = %q", Seconds(1.50))
	}
}
