// Package obs is the deterministic sim-time observability layer: a
// periodic sampler that snapshots the always-on probe counters
// (qos.Telemetry, qos.Availability, storage.Stats, netsim host stats)
// into fixed-capacity per-application × per-server time series, plus a
// span collector that decomposes each request's latency into its network /
// queue-wait / service stages (pfs.Span).
//
// Determinism contract: every sample is an ordinary engine event
// pre-scheduled at attach time on the engine that owns the sampled state —
// server probes on the owning server's shard, client probes on shard 0 —
// so a sharded run samples bit-for-bit what the serial oracle samples (the
// same argument as fault.Schedule). Sampling is read-only: a probe event
// schedules nothing and mutates no simulation state, so a run with
// sampling attached produces byte-identical results to one without.
//
// Allocation contract: all series storage and span buffers are sized at
// attach time; the per-tick probe and the per-span record path are zero
// allocations in steady state (pinned by AllocsPerRun tests and by
// BenchmarkSamplerTick / BenchmarkSpanRecord).
package obs

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// Config sizes an observability attachment. The zero value is invalid;
// use DefaultConfig for sensible full-run settings.
type Config struct {
	// Interval is the sampling period on the simulated clock.
	Interval sim.Time
	// Samples is the number of probe ticks scheduled per engine — the
	// fixed capacity of every time series. The observation horizon is
	// Samples × Interval; activity beyond it is simply not sampled (the
	// simulation itself is unaffected). Export trims trailing idle ticks.
	Samples int
	// SpanCap is the per-server span buffer capacity; once full, further
	// spans are counted as dropped, never reallocated. 0 disables span
	// collection entirely.
	SpanCap int
}

// DefaultConfig samples every 100 ms for up to a minute of simulated time
// with room for 64 Ki spans per server.
func DefaultConfig() Config {
	return Config{Interval: 100 * sim.Millisecond, Samples: 600, SpanCap: 1 << 16}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Interval <= 0:
		return fmt.Errorf("obs: Interval must be positive")
	case c.Samples <= 0:
		return fmt.Errorf("obs: Samples must be positive")
	case c.SpanCap < 0:
		return fmt.Errorf("obs: SpanCap must be >= 0")
	}
	return nil
}

// AppPoint is one tick's snapshot of one application's counters at one
// server (cumulative where qos.AppStats is cumulative, gauges otherwise).
type AppPoint struct {
	Requests    int64
	Granted     int64
	Queued      int64
	QueuedBytes int64
	Active      int64
	InFlight    int64
	BytesIn     int64
	BytesDone   int64
}

// ServerPoint is one tick's snapshot of one server's device, NIC and
// availability counters.
type ServerPoint struct {
	DevQueuedBytes int64
	DevOps         int64
	DevBytes       int64
	DevSeeks       int64
	DevBusy        sim.Time
	PortDrops      int64
	DiscardedBytes int64
}

// ClientPoint is one tick's snapshot of one application's client-side
// availability counters (all zero without a fault plan).
type ClientPoint struct {
	Retries  int64
	Timeouts int64
	Failures int64
}

// serverSampler owns one server's series storage and implements
// sim.Target: its probe events are pre-scheduled on the server's own
// engine at attach time (op 0, a = tick index).
type serverSampler struct {
	srv   *pfs.Server
	nApps int
	app   []AppPoint    // tick-major: [tick][app]
	pts   []ServerPoint // [tick]
}

// OnEvent implements sim.Target: record tick a. Read-only and
// allocation-free — every snapshot source returns by value.
func (sm *serverSampler) OnEvent(op uint32, a, b int64) {
	k := int(a) % len(sm.pts) // fixed capacity; attach schedules exactly len(pts) ticks
	tel := sm.srv.Tel
	base := k * sm.nApps
	for i := 0; i < sm.nApps; i++ {
		st := tel.App(i)
		sm.app[base+i] = AppPoint{
			Requests: st.Requests, Granted: st.Granted,
			Queued: st.Queued, QueuedBytes: st.QueuedBytes,
			Active: st.Active, InFlight: st.InFlight,
			BytesIn: st.BytesIn, BytesDone: st.BytesDone,
		}
	}
	ds := sm.srv.Dev.Stats()
	av := tel.Avail(sm.srv.E.Now())
	sm.pts[k] = ServerPoint{
		DevQueuedBytes: sm.srv.Dev.QueuedBytes(),
		DevOps:         ds.Ops,
		DevBytes:       ds.Bytes,
		DevSeeks:       ds.Seeks,
		DevBusy:        ds.Busy,
		PortDrops:      sm.srv.Host.Stats().PortDrops,
		DiscardedBytes: av.DiscardedBytes,
	}
}

// clientSampler owns the client-side series (shard 0).
type clientSampler struct {
	fs    *pfs.FileSystem
	nApps int
	pts   []ClientPoint // tick-major: [tick][app]
}

func (cm *clientSampler) OnEvent(op uint32, a, b int64) {
	k := int(a) % (len(cm.pts) / cm.nApps)
	base := k * cm.nApps
	for i := 0; i < cm.nApps; i++ {
		ca := cm.fs.ClientAvailFor(i)
		cm.pts[base+i] = ClientPoint{
			Retries: ca.Retries, Timeouts: ca.Timeouts, Failures: ca.Failures,
		}
	}
}

// spanBuf is a fixed-capacity per-server span sink: appends reuse the
// backing array sized at attach time; overflow increments dropped.
type spanBuf struct {
	spans   []pfs.Span
	dropped int64
}

// RecordSpan implements pfs.SpanSink.
func (b *spanBuf) RecordSpan(sp pfs.Span) {
	if len(b.spans) < cap(b.spans) {
		b.spans = append(b.spans, sp)
		return
	}
	b.dropped++
}

// Collector is one attached observability layer: per-server samplers and
// span buffers plus the client-side sampler. Read its Timeline after the
// run completes.
type Collector struct {
	cfg    Config
	nApps  int
	capBps float64

	samplers []*serverSampler
	client   *clientSampler
	spans    []*spanBuf // indexed like samplers; nil slice when SpanCap == 0
}

// Attach wires an observability layer into a freshly prepared platform:
// it allocates all series storage, installs span sinks on every server,
// and pre-schedules Samples probe ticks per engine — tick k fires at
// (k+1)×Interval on the engine owning the probed state, which is what
// makes sharded runs sample bit-for-bit what the serial oracle samples.
// Call between Prepare and Run; panics on an invalid config.
func Attach(pl *cluster.Platform, nApps int, cfg Config) *Collector {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	if nApps < 1 {
		nApps = 1
	}
	c := &Collector{cfg: cfg, nApps: nApps, capBps: cluster.NominalBW(pl.Cfg)}
	for _, srv := range pl.Servers {
		sm := &serverSampler{
			srv:   srv,
			nApps: nApps,
			app:   make([]AppPoint, cfg.Samples*nApps),
			pts:   make([]ServerPoint, cfg.Samples),
		}
		c.samplers = append(c.samplers, sm)
		for k := 0; k < cfg.Samples; k++ {
			srv.E.AtCall(sim.Time(k+1)*cfg.Interval, sm, 0, int64(k), 0)
		}
		if cfg.SpanCap > 0 {
			b := &spanBuf{spans: make([]pfs.Span, 0, cfg.SpanCap)}
			srv.Spans = b
			c.spans = append(c.spans, b)
		}
	}
	c.client = &clientSampler{
		fs:    pl.FS,
		nApps: nApps,
		pts:   make([]ClientPoint, cfg.Samples*nApps),
	}
	for k := 0; k < cfg.Samples; k++ {
		pl.E.AtCall(sim.Time(k+1)*cfg.Interval, c.client, 0, int64(k), 0)
	}
	return c
}

// ServerTick records one probe sample for server i at tick k — the exact
// code path the scheduled probe events run (exposed for benchmarks and
// allocation tests).
func (c *Collector) ServerTick(i, k int) { c.samplers[i].OnEvent(0, int64(k), 0) }

// Sink returns server i's span sink (nil when spans are disabled) — the
// exact sink the server's completion path feeds.
func (c *Collector) Sink(i int) pfs.SpanSink {
	if len(c.spans) == 0 {
		return nil
	}
	return c.spans[i]
}
