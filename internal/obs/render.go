package obs

import (
	"fmt"

	"repro/internal/report"
)

// RenderAppSeries renders the per-application × per-server time series:
// per-tick throughput, request rate, queue state, pipeline depth, and the
// LASSi-style risk ratio (bytes demanded of the device in the tick over
// what the backend could nominally move in one interval — > 1 means the
// application alone oversubscribes the backend).
func RenderAppSeries(title string, tl *Timeline) *report.Table {
	t := report.New(title+" — per-app series",
		"t_s", "server", "app", "thr_MBps", "ops", "qdepth", "qbytes_MB", "inflight", "risk")
	dt := tl.Interval.Seconds()
	for k := 0; k < tl.Ticks; k++ {
		ts := float64(k+1) * dt
		for s := 0; s < tl.Servers; s++ {
			for a := range tl.Apps {
				cur := tl.AppAt(k, s, a)
				var prev AppPoint
				if k > 0 {
					prev = tl.AppAt(k-1, s, a)
				}
				risk := 0.0
				if tl.CapacityBps > 0 {
					risk = (float64(cur.QueuedBytes) + float64(cur.BytesIn-prev.BytesIn)) /
						(tl.CapacityBps * dt)
				}
				t.Add(ts, s, tl.Apps[a],
					float64(cur.BytesDone-prev.BytesDone)/1e6/dt,
					cur.Requests-prev.Requests,
					cur.Queued,
					float64(cur.QueuedBytes)/1e6,
					cur.InFlight,
					risk)
			}
		}
	}
	return t
}

// RenderServerSeries renders the per-server device/NIC series: device
// throughput, utilization over the tick, device backlog, seeks, port
// drops and discarded (outage) bytes.
func RenderServerSeries(title string, tl *Timeline) *report.Table {
	t := report.New(title+" — per-server series",
		"t_s", "server", "dev_MBps", "util", "dev_q_MB", "seeks", "drops", "disc_MB")
	dt := tl.Interval.Seconds()
	for k := 0; k < tl.Ticks; k++ {
		ts := float64(k+1) * dt
		for s := 0; s < tl.Servers; s++ {
			cur := tl.ServerAt(k, s)
			var prev ServerPoint
			if k > 0 {
				prev = tl.ServerAt(k-1, s)
			}
			t.Add(ts, s,
				float64(cur.DevBytes-prev.DevBytes)/1e6/dt,
				(cur.DevBusy - prev.DevBusy).Seconds()/dt,
				float64(cur.DevQueuedBytes)/1e6,
				cur.DevSeeks-prev.DevSeeks,
				cur.PortDrops-prev.PortDrops,
				float64(cur.DiscardedBytes-prev.DiscardedBytes)/1e6)
		}
	}
	return t
}

// RenderClientSeries renders the client-side availability series (retries,
// timeouts, failures per tick). Returns nil when the whole series is zero
// — the fault-free common case — so fault-free timelines stay compact.
func RenderClientSeries(title string, tl *Timeline) *report.Table {
	any := false
	for _, p := range tl.Client {
		if p != (ClientPoint{}) {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	t := report.New(title+" — client series",
		"t_s", "app", "retries", "timeouts", "failures")
	dt := tl.Interval.Seconds()
	for k := 0; k < tl.Ticks; k++ {
		ts := float64(k+1) * dt
		for a := range tl.Apps {
			cur := tl.ClientAt(k, a)
			var prev ClientPoint
			if k > 0 {
				prev = tl.ClientAt(k-1, a)
			}
			t.Add(ts, tl.Apps[a],
				cur.Retries-prev.Retries,
				cur.Timeouts-prev.Timeouts,
				cur.Failures-prev.Failures)
		}
	}
	return t
}

// RenderSpanBreakdown renders the per-application "where did the time go"
// table: every completed request share's latency split into network,
// flow-slot queue-wait and service time. Returns nil when span collection
// was disabled.
func RenderSpanBreakdown(title string, tl *Timeline) *report.Table {
	if tl.Spans == nil {
		return nil
	}
	head := title + " — where did the time go"
	if tl.SpansDropped > 0 {
		head += fmt.Sprintf(" (%d spans dropped)", tl.SpansDropped)
	}
	t := report.New(head,
		"app", "spans", "reads", "MB", "net_s", "queue_s", "service_s", "total_s",
		"net_pct", "queue_pct", "service_pct", "avg_ms", "max_ms")
	for a, st := range tl.Spans {
		pct := func(x float64) float64 {
			if st.SumTotal <= 0 {
				return 0
			}
			return 100 * x / st.SumTotal.Seconds()
		}
		avg := 0.0
		if st.Count > 0 {
			avg = st.SumTotal.Millis() / float64(st.Count)
		}
		t.Add(tl.Apps[a], st.Count, st.Reads,
			float64(st.Bytes)/1e6,
			st.SumNet.Seconds(), st.SumQueue.Seconds(), st.SumService.Seconds(),
			st.SumTotal.Seconds(),
			pct(st.SumNet.Seconds()), pct(st.SumQueue.Seconds()), pct(st.SumService.Seconds()),
			avg, st.MaxTotal.Millis())
	}
	return t
}

// RenderTimeline composes every non-empty timeline table, in series →
// spans order — the single entry point the CLI and golden tests share.
func RenderTimeline(title string, tl *Timeline) []*report.Table {
	var out []*report.Table
	for _, t := range []*report.Table{
		RenderAppSeries(title, tl),
		RenderServerSeries(title, tl),
		RenderClientSeries(title, tl),
		RenderSpanBreakdown(title, tl),
	} {
		if t != nil {
			out = append(out, t)
		}
	}
	return out
}
