package obs

import (
	"strconv"

	"repro/internal/sim"
)

// SpanStats aggregates one application's request spans over a whole run —
// the "where did the time go" decomposition. Sums are over every
// completed request share on every server; order-independent, so the
// aggregate is shard-invariant by construction.
type SpanStats struct {
	Count      int64    `json:"count"`
	Reads      int64    `json:"reads"`
	Bytes      int64    `json:"bytes"`
	SumNet     sim.Time `json:"sum_net"`
	SumQueue   sim.Time `json:"sum_queue"`
	SumService sim.Time `json:"sum_service"`
	SumTotal   sim.Time `json:"sum_total"`
	MaxTotal   sim.Time `json:"max_total"`
}

// Timeline is the exported result of one observed run: plain data, safe to
// marshal, carried on core.RunResult. Ticks counts the retained samples
// after trailing idle ticks (no counter movement anywhere on the platform)
// are trimmed; tick k covers simulated time ((k)·Interval, (k+1)·Interval].
type Timeline struct {
	Interval sim.Time `json:"interval"`
	Ticks    int      `json:"ticks"`
	Apps     []string `json:"apps"`
	Servers  int      `json:"servers"`
	// CapacityBps is the backend's nominal sequential bandwidth (0 for the
	// null backend) — the denominator of the LASSi-style risk series.
	CapacityBps float64 `json:"capacity_bps"`

	// PerApp is tick-major [tick][server][app]; PerServer [tick][server];
	// Client [tick][app].
	PerApp    []AppPoint    `json:"per_app"`
	PerServer []ServerPoint `json:"per_server"`
	Client    []ClientPoint `json:"client"`

	// Spans is indexed by application (empty when span collection was
	// disabled); SpansDropped counts spans lost to full buffers.
	Spans        []SpanStats `json:"spans,omitempty"`
	SpansDropped int64       `json:"spans_dropped,omitempty"`
}

// AppAt returns the snapshot of app at server srv at tick k.
func (t *Timeline) AppAt(k, srv, app int) AppPoint {
	return t.PerApp[(k*t.Servers+srv)*len(t.Apps)+app]
}

// ServerAt returns the snapshot of server srv at tick k.
func (t *Timeline) ServerAt(k, srv int) ServerPoint {
	return t.PerServer[k*t.Servers+srv]
}

// ClientAt returns app's client-side snapshot at tick k.
func (t *Timeline) ClientAt(k, app int) ClientPoint {
	return t.Client[k*len(t.Apps)+app]
}

// Timeline freezes the collector into an exportable result. apps names the
// applications (len must be >= the attach-time app count is not required;
// missing names render as their index). Trailing ticks during which no
// sampled counter moved anywhere on the platform are trimmed, keeping one
// flat tick so series visibly settle; a run that outlives the observation
// horizon simply ends mid-series.
func (c *Collector) Timeline(apps []string) *Timeline {
	n := c.cfg.Samples
	last := 0 // index of the last tick with movement
	for _, sm := range c.samplers {
		for k := n - 1; k > last; k-- {
			if sm.changed(k) {
				last = k
				break
			}
		}
	}
	for k := n - 1; k > last; k-- {
		if c.client.changed(k) {
			last = k
			break
		}
	}
	ticks := last + 1
	if ticks < n {
		ticks++ // one flat tick after the action
	}

	names := make([]string, c.nApps)
	for i := range names {
		if i < len(apps) {
			names[i] = apps[i]
		} else {
			names[i] = strconv.Itoa(i)
		}
	}
	tl := &Timeline{
		Interval:    c.cfg.Interval,
		Ticks:       ticks,
		Apps:        names,
		Servers:     len(c.samplers),
		CapacityBps: c.capBps,
		PerApp:      make([]AppPoint, ticks*len(c.samplers)*c.nApps),
		PerServer:   make([]ServerPoint, ticks*len(c.samplers)),
		Client:      make([]ClientPoint, ticks*c.nApps),
	}
	for si, sm := range c.samplers {
		for k := 0; k < ticks; k++ {
			tl.PerServer[k*tl.Servers+si] = sm.pts[k]
			copy(tl.PerApp[(k*tl.Servers+si)*c.nApps:], sm.app[k*c.nApps:(k+1)*c.nApps])
		}
	}
	copy(tl.Client, c.client.pts[:ticks*c.nApps])

	if len(c.spans) > 0 {
		tl.Spans = make([]SpanStats, c.nApps)
		for _, b := range c.spans {
			tl.SpansDropped += b.dropped
			for _, sp := range b.spans {
				if int(sp.App) >= c.nApps {
					continue
				}
				st := &tl.Spans[sp.App]
				st.Count++
				if sp.Read {
					st.Reads++
				}
				st.Bytes += sp.Bytes
				st.SumNet += sp.Net()
				st.SumQueue += sp.Queue()
				st.SumService += sp.Service()
				st.SumTotal += sp.Total()
				if sp.Total() > st.MaxTotal {
					st.MaxTotal = sp.Total()
				}
			}
		}
	}
	return tl
}

// changed reports whether tick k differs from tick k-1 (k 0: from zero).
func (sm *serverSampler) changed(k int) bool {
	if sm.pts[k] != prevServer(sm.pts, k) {
		return true
	}
	base := k * sm.nApps
	for i := 0; i < sm.nApps; i++ {
		var prev AppPoint
		if k > 0 {
			prev = sm.app[base-sm.nApps+i]
		}
		if sm.app[base+i] != prev {
			return true
		}
	}
	return false
}

func prevServer(pts []ServerPoint, k int) ServerPoint {
	if k == 0 {
		return ServerPoint{}
	}
	return pts[k-1]
}

func (cm *clientSampler) changed(k int) bool {
	base := k * cm.nApps
	for i := 0; i < cm.nApps; i++ {
		var prev ClientPoint
		if k > 0 {
			prev = cm.pts[base-cm.nApps+i]
		}
		if cm.pts[base+i] != prev {
			return true
		}
	}
	return false
}
