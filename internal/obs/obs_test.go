package obs_test

// Unit tests for the observability layer. The allocation pins are the
// load-bearing ones: the per-tick probe and the per-span record path must
// stay at zero allocations, or sampling would perturb the very hot paths
// it is meant to watch. End-to-end sampling correctness (series content,
// shard conformance) is pinned by the scenario-level timeline golden.

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// tinyPlatform builds a 2-server, 2-node platform (nothing is run; the
// samplers are driven directly).
func tinyPlatform() *cluster.Platform {
	cfg := cluster.Default()
	cfg.ComputeNodes = 2
	cfg.CoresPerNode = 2
	cfg.Servers = 2
	return cluster.Build(cfg)
}

func testConfig() obs.Config {
	return obs.Config{Interval: 10 * sim.Millisecond, Samples: 16, SpanCap: 8}
}

func TestConfigValidate(t *testing.T) {
	cases := []obs.Config{
		{Interval: 0, Samples: 1},
		{Interval: sim.Second, Samples: 0},
		{Interval: sim.Second, Samples: 1, SpanCap: -1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: config %+v validated", i, c)
		}
	}
	if err := obs.DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

// TestSamplerTickZeroAlloc pins the probe path at 0 allocs/op.
func TestSamplerTickZeroAlloc(t *testing.T) {
	col := obs.Attach(tinyPlatform(), 2, testConfig())
	if n := testing.AllocsPerRun(200, func() { col.ServerTick(0, 5) }); n != 0 {
		t.Fatalf("sampler tick allocates %v per run, want 0", n)
	}
}

// TestSpanRecordZeroAlloc pins the span record path at 0 allocs/op (both
// the append-within-capacity and the overflow/drop regime).
func TestSpanRecordZeroAlloc(t *testing.T) {
	col := obs.Attach(tinyPlatform(), 2, testConfig())
	sink := col.Sink(0)
	sp := pfs.Span{Issue: 1, Arrive: 2, Grant: 3, Reply: 4, Bytes: 64, App: 1}
	if n := testing.AllocsPerRun(200, func() { sink.RecordSpan(sp) }); n != 0 {
		t.Fatalf("span record allocates %v per run, want 0", n)
	}
}

// TestSpanAggregation drives known spans through a sink and checks the
// exported per-app stats, including drop accounting at the fixed capacity.
func TestSpanAggregation(t *testing.T) {
	pl := tinyPlatform()
	cfg := testConfig()
	col := obs.Attach(pl, 2, cfg)
	sink := col.Sink(1)
	ms := sim.Millisecond
	sink.RecordSpan(pfs.Span{Issue: 0, Arrive: 2 * ms, Grant: 5 * ms, Reply: 11 * ms, Bytes: 100, App: 0})
	sink.RecordSpan(pfs.Span{Issue: 10 * ms, Arrive: 11 * ms, Grant: 11 * ms, Reply: 14 * ms, Bytes: 50, App: 0, Read: true})
	sink.RecordSpan(pfs.Span{Issue: 0, Arrive: ms, Grant: ms, Reply: 2 * ms, Bytes: 7, App: 1})
	tl := col.Timeline([]string{"A", "B"})
	a := tl.Spans[0]
	if a.Count != 2 || a.Reads != 1 || a.Bytes != 150 {
		t.Fatalf("app A span counts: %+v", a)
	}
	if a.SumNet != 3*ms || a.SumQueue != 3*ms || a.SumService != 9*ms || a.SumTotal != 15*ms {
		t.Fatalf("app A span sums: %+v", a)
	}
	if a.SumNet+a.SumQueue+a.SumService != a.SumTotal {
		t.Fatalf("span stages do not sum to total: %+v", a)
	}
	if a.MaxTotal != 11*ms {
		t.Fatalf("app A MaxTotal = %v", a.MaxTotal)
	}
	if b := tl.Spans[1]; b.Count != 1 || b.Bytes != 7 {
		t.Fatalf("app B span counts: %+v", b)
	}

	// Overflow past the fixed capacity is counted, never grown.
	for i := 0; i < cfg.SpanCap+3; i++ {
		sink.RecordSpan(pfs.Span{Reply: ms, App: 0})
	}
	if got := col.Timeline([]string{"A", "B"}).SpansDropped; got != int64(3+3) {
		t.Fatalf("SpansDropped = %d, want 6", got)
	}
}

// TestTimelineTrim pins idle-tick trimming: with no counter movement the
// export keeps a minimal prefix, not the whole horizon.
func TestTimelineTrim(t *testing.T) {
	col := obs.Attach(tinyPlatform(), 1, testConfig())
	tl := col.Timeline([]string{"A"})
	if tl.Ticks != 2 {
		t.Fatalf("idle timeline kept %d ticks, want 2", tl.Ticks)
	}
	if tl.Servers != 2 || len(tl.Apps) != 1 || tl.Apps[0] != "A" {
		t.Fatalf("timeline shape: %+v", tl)
	}
	if len(tl.PerApp) != tl.Ticks*tl.Servers*len(tl.Apps) ||
		len(tl.PerServer) != tl.Ticks*tl.Servers ||
		len(tl.Client) != tl.Ticks*len(tl.Apps) {
		t.Fatalf("series lengths inconsistent: %+v", tl)
	}
	if tl.CapacityBps <= 0 {
		t.Fatalf("CapacityBps = %v on an HDD platform", tl.CapacityBps)
	}
}

// TestSpansDisabled pins the off switch: SpanCap 0 installs no sinks and
// exports no span stats.
func TestSpansDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.SpanCap = 0
	pl := tinyPlatform()
	col := obs.Attach(pl, 1, cfg)
	if col.Sink(0) != nil {
		t.Fatal("SpanCap=0 still installed a sink")
	}
	for _, srv := range pl.Servers {
		if srv.Spans != nil {
			t.Fatal("SpanCap=0 still set Server.Spans")
		}
	}
	if tl := col.Timeline([]string{"A"}); tl.Spans != nil {
		t.Fatal("SpanCap=0 still exported span stats")
	}
}
