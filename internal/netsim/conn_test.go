package netsim

import (
	"testing"

	"repro/internal/sim"
)

// testFabric builds a fabric with nClients client hosts and one server host,
// all at bw bytes/sec.
func testFabric(e *sim.Engine, p Params, nClients int, bw float64) (*Fabric, []*Host, *Host) {
	f := NewFabric(e, p)
	clients := make([]*Host, nClients)
	for i := range clients {
		clients[i] = f.NewHost("client", bw, 0)
	}
	srv := f.NewHost("server", bw, 0)
	return f, clients, srv
}

// autoReader consumes every readable message immediately and tallies bytes.
func autoReader(c *Conn, got *int64, order *[]interface{}) {
	c.OnReadable = func(cc *Conn, m *Message) {
		mm := cc.ReadHead()
		*got += mm.Size
		if order != nil {
			*order = append(*order, mm.Meta)
		}
	}
}

func TestSingleFlowDelivery(t *testing.T) {
	e := sim.NewEngine()
	_, cl, srv := testFabric(e, DefaultParams(), 1, 1e9)
	f := cl[0].fabric
	c := f.Dial(cl[0], srv, 0)
	var got int64
	var order []interface{}
	autoReader(c, &got, &order)
	const chunk = 256 << 10
	for i := 0; i < 16; i++ {
		c.Send(&Message{Size: chunk, Meta: i})
	}
	e.Run()
	if got != 16*chunk {
		t.Fatalf("delivered %d bytes, want %d", got, 16*chunk)
	}
	for i, m := range order {
		if m.(int) != i {
			t.Fatalf("out-of-order delivery: %v", order)
		}
	}
	if c.Stats().Timeouts != 0 {
		t.Fatalf("unexpected timeouts: %+v", c.Stats())
	}
}

func TestSingleFlowNearLineRate(t *testing.T) {
	e := sim.NewEngine()
	_, cl, srv := testFabric(e, DefaultParams(), 1, 1e9)
	f := cl[0].fabric
	c := f.Dial(cl[0], srv, 0)
	var got int64
	var doneAt sim.Time
	total := int64(64 << 20)
	c.OnReadable = func(cc *Conn, m *Message) {
		mm := cc.ReadHead()
		got += mm.Size
		if got == total {
			doneAt = e.Now()
		}
	}
	for off := int64(0); off < total; off += 256 << 10 {
		c.Send(&Message{Size: 256 << 10})
	}
	e.Run()
	if got != total {
		t.Fatalf("delivered %d, want %d", got, total)
	}
	ideal := sim.TransferTime(total, 1e9)
	if doneAt > 2*ideal {
		t.Fatalf("took %v, ideal %v — transport too slow", doneAt, ideal)
	}
	if doneAt < ideal {
		t.Fatalf("took %v < ideal %v — conservation violated", doneAt, ideal)
	}
}

func TestSlowReaderStallsAtZeroWindow(t *testing.T) {
	e := sim.NewEngine()
	p := DefaultParams()
	_, cl, srv := testFabric(e, p, 1, 1e9)
	f := cl[0].fabric
	c := f.Dial(cl[0], srv, 0)
	// Server never reads.
	c.OnReadable = func(*Conn, *Message) {}
	for i := 0; i < 64; i++ {
		c.Send(&Message{Size: 256 << 10}) // 16 MiB total >> 1 MiB rmem
	}
	e.RunUntil(5 * sim.Second)
	if c.Unread() != p.Rmem {
		t.Fatalf("unread = %d, want full rmem %d", c.Unread(), p.Rmem)
	}
	if c.EffectiveWindow() > 0 {
		t.Fatalf("effective window = %d, want 0 when stalled", c.EffectiveWindow())
	}
	if c.Stats().Timeouts != 0 {
		t.Fatalf("window stall must not be treated as loss: %+v", c.Stats())
	}
	if e.Pending() != 0 {
		t.Fatalf("events still pending while fully stalled: %d", e.Pending())
	}
}

func TestReadReopensWindow(t *testing.T) {
	e := sim.NewEngine()
	p := DefaultParams()
	_, cl, srv := testFabric(e, p, 1, 1e9)
	f := cl[0].fabric
	c := f.Dial(cl[0], srv, 0)
	var readable []*Message
	c.OnReadable = func(cc *Conn, m *Message) { readable = append(readable, m) }
	total := int64(8 << 20)
	for off := int64(0); off < total; off += 256 << 10 {
		c.Send(&Message{Size: 256 << 10})
	}
	// Drain one message every 10ms, like a slow Trove.
	var drained int64
	var drainNext func()
	drainNext = func() {
		if len(readable) > 0 {
			readable = readable[1:]
			m := c.ReadHead()
			drained += m.Size
		}
		if drained < total {
			e.Schedule(10*sim.Millisecond, drainNext)
		}
	}
	e.Schedule(10*sim.Millisecond, drainNext)
	e.Run()
	if drained != total {
		t.Fatalf("drained %d, want %d", drained, total)
	}
	if c.AckedBytes() != total {
		t.Fatalf("acked %d, want %d", c.AckedBytes(), total)
	}
}

func TestIncastDropsAndRecovers(t *testing.T) {
	e := sim.NewEngine()
	p := DefaultParams()
	p.PortBuf = 256 << 10 // tiny port buffer to force drops
	const n = 32
	f, cl, srv := testFabric(e, p, n, 1.25e9)
	per := int64(4 << 20)
	var got [n]int64
	for i := 0; i < n; i++ {
		c := f.Dial(cl[i], srv, i)
		i := i
		c.OnReadable = func(cc *Conn, m *Message) {
			mm := cc.ReadHead()
			got[i] += mm.Size
		}
		for off := int64(0); off < per; off += 256 << 10 {
			c.Send(&Message{Size: 256 << 10})
		}
	}
	e.Run()
	for i := 0; i < n; i++ {
		if got[i] != per {
			t.Fatalf("conn %d delivered %d, want %d", i, got[i], per)
		}
	}
	if srv.Stats().PortDrops == 0 {
		t.Fatal("expected port drops under 32-to-1 incast")
	}
	var timeouts int64
	for _, c := range f.Conns() {
		timeouts += c.Stats().Timeouts
	}
	if timeouts == 0 {
		t.Fatal("expected RTO timeouts under incast")
	}
}

func TestExactlyOnceUnderLoss(t *testing.T) {
	// Under heavy loss, bytes must be delivered to the application exactly
	// once and in order (go-back-N receiver discards duplicates).
	e := sim.NewEngine()
	p := DefaultParams()
	p.PortBuf = 128 << 10
	p.RTOBase = 10 * sim.Millisecond // fast recovery to keep the test short
	const n = 16
	f, cl, srv := testFabric(e, p, n, 1.25e9)
	var total int64
	var seq [n]int
	bad := false
	for i := 0; i < n; i++ {
		c := f.Dial(cl[i], srv, i)
		i := i
		c.OnReadable = func(cc *Conn, m *Message) {
			mm := cc.ReadHead()
			if mm.Meta.(int) != seq[i] {
				bad = true
			}
			seq[i]++
			total += mm.Size
		}
		for k := 0; k < 8; k++ {
			c.Send(&Message{Size: 128 << 10, Meta: k})
		}
	}
	e.Run()
	if bad {
		t.Fatal("messages delivered out of order")
	}
	if want := int64(n * 8 * (128 << 10)); total != want {
		t.Fatalf("total delivered %d, want %d (exactly once)", total, want)
	}
	var retrans int64
	for _, c := range f.Conns() {
		retrans += c.Stats().RetransSegs
	}
	if retrans == 0 {
		t.Fatal("test should have induced retransmissions")
	}
}

func TestReplyPath(t *testing.T) {
	e := sim.NewEngine()
	f, cl, srv := testFabric(e, DefaultParams(), 1, 1e9)
	c := f.Dial(cl[0], srv, 0)
	var reply interface{}
	c.OnReply = func(meta interface{}) { reply = meta }
	c.OnReadable = func(cc *Conn, m *Message) {
		mm := cc.ReadHead()
		cc.Reply(100, mm.Meta)
	}
	c.Send(&Message{Size: 64 << 10, Meta: "req-1"})
	e.Run()
	if reply != "req-1" {
		t.Fatalf("reply = %v", reply)
	}
}

func TestTraceSamplesWindow(t *testing.T) {
	e := sim.NewEngine()
	f, cl, srv := testFabric(e, DefaultParams(), 1, 1e9)
	c := f.Dial(cl[0], srv, 0)
	c.Trace = NewTrace()
	var got int64
	autoReader(c, &got, nil)
	for i := 0; i < 8; i++ {
		c.Send(&Message{Size: 256 << 10})
	}
	e.Run()
	if c.Trace.Len() == 0 {
		t.Fatal("no trace samples")
	}
	if len(c.Trace.Sends()) == 0 {
		t.Fatal("no send samples")
	}
	if c.Trace.MaxWnd() <= 0 {
		t.Fatal("max window should be positive")
	}
	if c.Trace.ProgressAt(e.Now(), got) != 1.0 {
		t.Fatalf("final progress = %v, want 1.0", c.Trace.ProgressAt(e.Now(), got))
	}
}

func TestLowBandwidthSourceAvoidsDrops(t *testing.T) {
	// The Figure 5 mechanism: with client NICs at 1/10th the server NIC
	// rate, the fan-in stays below the port drain rate and nothing drops.
	e := sim.NewEngine()
	p := DefaultParams()
	f := NewFabric(e, p)
	const n = 8
	clients := make([]*Host, n)
	for i := range clients {
		clients[i] = f.NewHost("client", 125e6/8, 0) // slow sources
	}
	srv := f.NewHost("server", 1.25e9, 0)
	for i := 0; i < n; i++ {
		c := f.Dial(clients[i], srv, i)
		c.OnReadable = func(cc *Conn, m *Message) { cc.ReadHead() }
		for k := 0; k < 8; k++ {
			c.Send(&Message{Size: 256 << 10})
		}
	}
	e.Run()
	if d := srv.Stats().PortDrops; d != 0 {
		t.Fatalf("port drops = %d, want 0 with rate-limited sources", d)
	}
}

func TestConnAccessors(t *testing.T) {
	e := sim.NewEngine()
	f, cl, srv := testFabric(e, DefaultParams(), 1, 1e9)
	c := f.Dial(cl[0], srv, 7)
	if c.App != 7 {
		t.Fatalf("app = %d", c.App)
	}
	if c.Cwnd() != DefaultParams().InitCwnd {
		t.Fatalf("cwnd = %v", c.Cwnd())
	}
	c.OnReadable = func(cc *Conn, m *Message) { cc.ReadHead() }
	c.Send(&Message{Size: 1000})
	if c.QueuedBytes() != 1000 {
		t.Fatalf("queued = %d", c.QueuedBytes())
	}
	e.Run()
	if c.QueuedBytes() != 0 || c.AckedBytes() != 1000 {
		t.Fatalf("queued=%d acked=%d", c.QueuedBytes(), c.AckedBytes())
	}
	if len(f.Conns()) != 1 || f.TotalPortDrops() != 0 {
		t.Fatal("fabric accessors")
	}
	if f.String() == "" {
		t.Fatal("String empty")
	}
}
