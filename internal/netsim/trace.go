package netsim

import "repro/internal/sim"

// SampleKind tags what produced a trace sample.
type SampleKind byte

// Trace sample kinds.
const (
	SampleSend    SampleKind = 's' // a segment transmission
	SampleAck     SampleKind = 'a' // an ACK/window update arrival
	SampleTimeout SampleKind = 't' // a retransmission timeout
)

// Trace records the transport state of one connection over time — the
// simulator's replacement for the paper's tcpdump probes (Figures 10 and
// 11). Attach one to Conn.Trace before the run.
type Trace struct {
	// WndUnit scales window samples; the paper plots windows in units of
	// 2048 bytes. Zero means raw bytes.
	WndUnit int64

	Times []sim.Time
	Wnd   []float64 // effective window at sample time, in WndUnit units
	Cwnd  []float64 // congestion window, segments
	Acked []int64   // cumulative acked bytes (transfer progress)
	Kind  []SampleKind
}

// NewTrace returns a trace using the paper's 2048-byte window unit.
func NewTrace() *Trace { return &Trace{WndUnit: 2048} }

func (t *Trace) record(c *Conn, k SampleKind) {
	unit := t.WndUnit
	if unit <= 0 {
		unit = 1
	}
	// All sample sites (transmit, handleAck, checkRTO) run sender-side.
	t.Times = append(t.Times, c.srcE().Now())
	t.Wnd = append(t.Wnd, float64(c.EffectiveWindow())/float64(unit))
	t.Cwnd = append(t.Cwnd, c.cwnd)
	t.Acked = append(t.Acked, c.ackedSeq)
	t.Kind = append(t.Kind, k)
}

func (t *Trace) sampleSend(c *Conn)    { t.record(c, SampleSend) }
func (t *Trace) sampleAck(c *Conn)     { t.record(c, SampleAck) }
func (t *Trace) sampleTimeout(c *Conn) { t.record(c, SampleTimeout) }

// Len returns the number of samples.
func (t *Trace) Len() int { return len(t.Times) }

// Sends returns the window samples taken at segment transmissions — the
// "per request" series of the paper's Figure 10.
func (t *Trace) Sends() []float64 {
	var out []float64
	for i, k := range t.Kind {
		if k == SampleSend {
			out = append(out, t.Wnd[i])
		}
	}
	return out
}

// MinWnd returns the smallest window observed (0 if no samples).
func (t *Trace) MinWnd() float64 {
	if len(t.Wnd) == 0 {
		return 0
	}
	m := t.Wnd[0]
	for _, w := range t.Wnd[1:] {
		if w < m {
			m = w
		}
	}
	return m
}

// MaxWnd returns the largest window observed (0 if no samples).
func (t *Trace) MaxWnd() float64 {
	m := 0.0
	for _, w := range t.Wnd {
		if w > m {
			m = w
		}
	}
	return m
}

// ProgressAt returns the fraction of total acked at time x, given the final
// acked byte count (1.0 if total is zero).
func (t *Trace) ProgressAt(x sim.Time, total int64) float64 {
	if total <= 0 {
		return 1
	}
	var acked int64
	for i, tm := range t.Times {
		if tm > x {
			break
		}
		acked = t.Acked[i]
	}
	return float64(acked) / float64(total)
}
