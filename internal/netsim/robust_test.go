package netsim

import (
	"testing"

	"repro/internal/sim"
)

// TestStaleWindowDropsRecover drives the transport into the stale-window
// path: ACKs and window updates are slow, so the sender transmits into a
// buffer that has since filled. Those segments are discarded at the
// receiver and must be recovered by RTO with no duplication or reordering.
func TestStaleWindowDropsRecover(t *testing.T) {
	e := sim.NewEngine()
	p := DefaultParams()
	p.Rmem = 128 << 10 // two segments
	p.AckLatency = 20 * sim.Millisecond
	p.RTOBase = 50 * sim.Millisecond
	f := NewFabric(e, p)
	src := f.NewHost("c", 1.25e9, 0)
	dst := f.NewHost("s", 1.25e9, 0)
	c := f.Dial(src, dst, 0)

	var readable []*Message
	c.OnReadable = func(cc *Conn, m *Message) { readable = append(readable, m) }
	// Slow reader: one message per 40ms.
	var got []interface{}
	var drain func()
	total := 24
	drain = func() {
		if len(readable) > 0 {
			readable = readable[1:]
			m := c.ReadHead()
			got = append(got, m.Meta)
		}
		if len(got) < total {
			e.Schedule(40*sim.Millisecond, drain)
		}
	}
	e.Schedule(40*sim.Millisecond, drain)
	for i := 0; i < total; i++ {
		c.Send(&Message{Size: 64 << 10, Meta: i})
	}
	e.Run()
	if len(got) != total {
		t.Fatalf("delivered %d of %d messages", len(got), total)
	}
	for i, m := range got {
		if m.(int) != i {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
	st := c.Stats()
	if st.WndDropped == 0 {
		t.Skip("no stale-window drops induced on this parameterization")
	}
	if st.RetransSegs == 0 {
		t.Fatal("stale-window drops must force retransmissions")
	}
}

// TestRTOBackoffAndReset checks exponential backoff under persistent loss
// and its reset once progress resumes.
func TestRTOBackoffAndReset(t *testing.T) {
	e := sim.NewEngine()
	p := DefaultParams()
	p.PortBuf = 1 // every data segment is dropped at the port
	p.RTOBase = 10 * sim.Millisecond
	p.RTOMax = 80 * sim.Millisecond
	f := NewFabric(e, p)
	src := f.NewHost("c", 1.25e9, 0)
	dst := f.NewHost("s", 1.25e9, 0)
	c := f.Dial(src, dst, 0)
	c.OnReadable = func(cc *Conn, m *Message) { cc.ReadHead() }
	c.Send(&Message{Size: 64 << 10})

	// Let several RTOs fire while the port drops everything.
	e.RunUntil(300 * sim.Millisecond)
	lossTimeouts := c.Stats().Timeouts
	if lossTimeouts < 3 {
		t.Fatalf("timeouts = %d, expected repeated RTOs under total loss", lossTimeouts)
	}
	// With exponential backoff the attempts must thin out: under plain
	// 10ms periodic retries we would see ~30 timeouts by now.
	if lossTimeouts > 10 {
		t.Fatalf("timeouts = %d — backoff is not slowing retries", lossTimeouts)
	}

	// Heal the network; the transfer must complete.
	f.P.PortBuf = 10 << 20
	e.Run()
	if c.AckedBytes() != 64<<10 {
		t.Fatalf("acked %d after healing, want full message", c.AckedBytes())
	}
}

// TestRTOBackoffDoublingCapAndReset pins the exact RTO schedule the
// transport promises: each timeout doubles the timer, the doubling clamps
// at RTOMax, and the first ack progress after the network heals snaps it
// back to RTOBase. An admin-down server link (the fault layer's knob)
// silently eats the acks, which is precisely the blackout that must not
// turn into a tight retransmit loop.
func TestRTOBackoffDoublingCapAndReset(t *testing.T) {
	e := sim.NewEngine()
	p := DefaultParams()
	p.RTOBase = 10 * sim.Millisecond
	p.RTOMax = 80 * sim.Millisecond
	f := NewFabric(e, p)
	src := f.NewHost("c", 1.25e9, 0)
	dst := f.NewHost("s", 1.25e9, 0)
	c := f.Dial(src, dst, 0)
	c.OnReadable = func(cc *Conn, m *Message) { cc.ReadHead() }

	dst.SetLinkDown(true) // data arrives; every ack dies at the server NIC
	c.Send(&Message{Size: 64 << 10})
	if c.rto != p.RTOBase {
		t.Fatalf("initial rto = %v, want RTOBase %v", c.rto, p.RTOBase)
	}

	// Timeouts fire at ~10, 30, 70, 150ms (each arming the doubled timer);
	// the checkpoints sit safely between them. The run is deterministic,
	// so the backed-off timer value at each point is exact.
	steps := []struct {
		until    sim.Time
		timeouts int64
		rto      sim.Time
	}{
		{20 * sim.Millisecond, 1, 20 * sim.Millisecond},
		{45 * sim.Millisecond, 2, 40 * sim.Millisecond},
		{100 * sim.Millisecond, 3, 80 * sim.Millisecond},
		{200 * sim.Millisecond, 4, 80 * sim.Millisecond}, // capped, not 160ms
	}
	for _, s := range steps {
		e.RunUntil(s.until)
		if got := c.Stats().Timeouts; got != s.timeouts {
			t.Fatalf("at %v: timeouts = %d, want %d", s.until, got, s.timeouts)
		}
		if c.rto != s.rto {
			t.Fatalf("at %v: rto = %v, want %v", s.until, c.rto, s.rto)
		}
	}
	if dst.Stats().LinkDrops == 0 {
		t.Fatal("admin-down link recorded no drops")
	}

	dst.SetLinkDown(false)
	e.Run()
	if c.AckedBytes() != 64<<10 {
		t.Fatalf("acked %d after the link came back, want the full message", c.AckedBytes())
	}
	if c.rto != p.RTOBase {
		t.Fatalf("rto = %v after progress, want reset to RTOBase %v", c.rto, p.RTOBase)
	}
}

// TestManyFlowsConservation is a randomized soak: many flows with mixed
// sizes against one server port; every byte delivered exactly once.
func TestManyFlowsConservation(t *testing.T) {
	e := sim.NewEngine()
	p := DefaultParams()
	p.PortBuf = 512 << 10
	f := NewFabric(e, p)
	dst := f.NewHost("s", 1.25e9, 0)
	rng := sim.NewRand(99)
	var want, got int64
	const flows = 24
	for i := 0; i < flows; i++ {
		src := f.NewHost("c", 1.25e9, 0)
		c := f.Dial(src, dst, i%2)
		c.OnReadable = func(cc *Conn, m *Message) { got += cc.ReadHead().Size }
		msgs := 1 + rng.Intn(6)
		for k := 0; k < msgs; k++ {
			size := int64(1+rng.Intn(8)) * 32 << 10
			want += size
			c.Send(&Message{Size: size})
		}
	}
	e.Run()
	if got != want {
		t.Fatalf("delivered %d, want %d", got, want)
	}
	if e.Parked() != 0 {
		t.Fatalf("parked procs remain")
	}
}
