// Package netsim models the storage network of an HPC cluster: host NICs, a
// single switch, and a TCP-like transport with congestion control, receiver
// flow control and timeout-based loss recovery.
//
// The model is segment-level. Each connection carries an ordered stream of
// application messages; the sender transmits MSS-sized segments limited by
// min(cwnd, advertised receive window); segments serialize through the
// sender's NIC egress line, cross the switch, and may be tail-dropped at the
// receiver's port queue when the many-to-one fan-in overflows it — the TCP
// "incast" point (Phanishayee et al., FAST'08). Loss recovery is go-back-N
// on retransmission timeout with exponential backoff, which is how incast
// manifests in practice (whole windows are lost and the connection idles).
//
// Receiver-side flow control is what couples storage to the network: each
// connection has a finite receive buffer (rmem); bytes stay in it until the
// server application reads them, so a slow storage backend stalls senders
// at zero window, and window-reopen bursts after each read are what collide
// at the port queue.
package netsim

import (
	"fmt"

	"repro/internal/sim"
)

// Params configures the transport and fabric.
type Params struct {
	// MSS is the segment payload size in bytes.
	MSS int64
	// SwitchLatency is the one-way propagation delay between any two hosts
	// (through the single switch).
	SwitchLatency sim.Time
	// AckLatency is the reverse-path delay for ACKs and window updates
	// (they are small and modeled without NIC occupancy).
	AckLatency sim.Time
	// PortBuf is the per-host ingress port queue capacity in bytes; the
	// switch tail-drops segments beyond it.
	PortBuf int64
	// Rmem is the per-connection receive buffer in bytes; the receiver
	// advertises rmem minus unread bytes.
	Rmem int64
	// InitCwnd is the initial congestion window in segments.
	InitCwnd float64
	// InitSSThresh is the initial slow-start threshold in segments.
	InitSSThresh float64
	// RTOBase is the base retransmission timeout; RTOMax caps backoff.
	RTOBase sim.Time
	RTOMax  sim.Time
	// MaxCwnd caps the congestion window in segments (socket buffer bound).
	MaxCwnd float64
}

// Lookahead returns the conservative synchronization bound the transport
// guarantees between hosts on different shards: every cross-host
// interaction is delayed by at least the switch's propagation latency
// (data segments, replies) or the reverse-path ACK latency (ACKs, window
// updates), so the smaller of the two is a safe sim.ShardSet lookahead.
func (p Params) Lookahead() sim.Time {
	la := p.SwitchLatency
	if p.AckLatency < la {
		la = p.AckLatency
	}
	return la
}

// DefaultParams models the paper's 10 GbE fabric with Linux-like TCP
// constants scaled to simulation granularity.
func DefaultParams() Params {
	return Params{
		MSS:           64 << 10,
		SwitchLatency: 40 * sim.Microsecond,
		AckLatency:    60 * sim.Microsecond,
		PortBuf:       1 << 20,
		Rmem:          2 << 20,
		InitCwnd:      2,
		InitSSThresh:  8,
		RTOBase:       200 * sim.Millisecond,
		RTOMax:        3 * sim.Second,
		MaxCwnd:       1024,
	}
}

// HostStats are cumulative per-host network counters.
type HostStats struct {
	PortDrops   int64 // segments tail-dropped at the ingress port queue
	PortDropped int64 // bytes dropped
	SegsIn      int64 // segments accepted into the port queue
	BytesIn     int64
	LinkDrops   int64 // segments dropped by an admin-down link or loss burst
}

// Host is a machine on the fabric with a full-duplex NIC.
type Host struct {
	ID   int
	Name string

	// Egress serializes outgoing segments (NIC TX).
	Egress *sim.Line
	// Ingress serializes incoming segments (NIC RX); its queue is bounded
	// by the fabric's PortBuf (drops happen before enqueue).
	Ingress *sim.Line

	fabric *Fabric
	portQ  int64 // bytes queued at/in the ingress line
	stats  HostStats

	// down marks the link administratively down (fault injection): data
	// segments to and from the host, its ACKs and its replies are dropped
	// until it is cleared. lossUntil is the end of a loss-burst window
	// during which only arriving data segments are dropped. Both are owned
	// by the host's shard, like every other field.
	down      bool
	lossUntil sim.Time
}

// Stats returns the host's cumulative counters.
func (h *Host) Stats() HostStats { return h.stats }

// PortQueued returns the bytes currently in the ingress port queue.
func (h *Host) PortQueued() int64 { return h.portQ }

// SetLinkDown administratively downs (true) or restores (false) the host's
// link. While down, every data segment crossing the link is dropped in
// either direction, as are the host's ACKs and replies; senders recover
// through RTO backoff once the link is restored. Must be called from the
// host's own shard.
func (h *Host) SetLinkDown(down bool) { h.down = down }

// LinkDown reports whether the link is administratively down.
func (h *Host) LinkDown() bool { return h.down }

// StartLossBurst opens (or extends) a deterministic loss window: for d from
// now, every data segment arriving at the host's port is dropped. ACKs and
// replies still flow. Must be called from the host's own shard.
func (h *Host) StartLossBurst(d sim.Time) {
	until := h.Egress.E.Now() + d
	if until > h.lossUntil {
		h.lossUntil = until
	}
}

// lossyAt reports whether a data segment arriving at time now is dropped.
func (h *Host) lossyAt(now sim.Time) bool { return h.down || now < h.lossUntil }

// Fabric is the cluster network: hosts joined by one switch.
type Fabric struct {
	E *sim.Engine
	P Params

	hosts []*Host
	conns []*Conn
}

// NewFabric creates a fabric on engine e.
func NewFabric(e *sim.Engine, p Params) *Fabric {
	if p.MSS <= 0 {
		panic("netsim: MSS must be positive")
	}
	return &Fabric{E: e, P: p}
}

// NewHost adds a host whose NIC runs at bytesPerSec in each direction, with
// perSeg fixed per-segment processing overhead (protocol/CPU cost).
func (f *Fabric) NewHost(name string, bytesPerSec float64, perSeg sim.Time) *Host {
	return f.NewHostOn(f.E, name, bytesPerSec, perSeg)
}

// NewHostOn adds a host whose NIC lines live on engine e — the shard that
// owns the host in a sharded simulation. e must be the fabric's engine or
// another shard of the same sim.ShardSet; all of a host's state (NIC lines,
// port queue, stats, receiver-side connection state) is then owned by that
// shard, and the transport routes cross-host events through the set.
func (f *Fabric) NewHostOn(e *sim.Engine, name string, bytesPerSec float64, perSeg sim.Time) *Host {
	h := &Host{
		ID:      len(f.hosts),
		Name:    name,
		Egress:  &sim.Line{E: e, Rate: bytesPerSec, PerOp: perSeg, Latency: f.P.SwitchLatency},
		Ingress: &sim.Line{E: e, Rate: bytesPerSec, PerOp: perSeg},
		fabric:  f,
	}
	f.hosts = append(f.hosts, h)
	return h
}

// Hosts returns all hosts in creation order.
func (f *Fabric) Hosts() []*Host { return f.hosts }

// Conns returns all connections in dial order.
func (f *Fabric) Conns() []*Conn { return f.conns }

// TotalPortDrops sums tail-drops across all hosts.
func (f *Fabric) TotalPortDrops() int64 {
	var n int64
	for _, h := range f.hosts {
		n += h.stats.PortDrops
	}
	return n
}

// TotalLinkDrops sums admin-down and loss-burst drops across all hosts.
func (f *Fabric) TotalLinkDrops() int64 {
	var n int64
	for _, h := range f.hosts {
		n += h.stats.LinkDrops
	}
	return n
}

func (f *Fabric) String() string {
	return fmt.Sprintf("fabric(%d hosts, %d conns, mss=%d)", len(f.hosts), len(f.conns), f.P.MSS)
}
