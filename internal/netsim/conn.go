package netsim

import "repro/internal/sim"

// Message is an application-level message carried on a connection. Messages
// are delivered in order; a message becomes *readable* at the receiver once
// all of its bytes have been accepted, and occupies receive-buffer space
// until the application consumes it with ReadHead.
type Message struct {
	Size int64
	Meta interface{}

	endSeq   int64 // stream position of the last byte + 1
	notified bool
}

// ConnStats are cumulative per-connection counters.
type ConnStats struct {
	SentSegs    int64 // segments transmitted (including retransmissions)
	AckedBytes  int64
	RetransSegs int64
	Timeouts    int64
	RcvdSegs    int64 // segments accepted in order
	OOODropped  int64 // out-of-order segments discarded (go-back-N)
	WndDropped  int64 // segments beyond the advertised window, discarded
}

// Conn is a unidirectional data connection (client pushes to server) with a
// lightweight reverse path for replies. It implements the transport
// described in the package comment.
type Conn struct {
	ID  int
	F   *Fabric
	Src *Host // client side
	Dst *Host // server side

	// App is an opaque tag for the owner (e.g. which application/process).
	App int

	// OnReadable, set by the server side, fires when the head message has
	// fully arrived. The server consumes it later with ReadHead.
	OnReadable func(c *Conn, m *Message)
	// OnReply, set by the client side, fires when a reverse-path message
	// arrives.
	OnReply func(meta interface{})

	// ---- sender state ----
	sendQ       []*Message
	appendedSeq int64 // bytes ever queued
	nextSeq     int64 // next byte to transmit
	ackedSeq    int64 // cumulative ack
	cwnd        float64
	ssthresh    float64
	rwndEst     int64 // receiver window last advertised
	rto         sim.Time
	rtoArmed    bool
	lastProg    sim.Time // time of last ack progress (for the RTO check)
	highSent    int64    // highest byte ever transmitted

	// ---- receiver state ----
	rcvNext  int64 // next in-order byte expected
	readSeq  int64 // bytes consumed by the server application
	rcvQ     []*Message
	deliverQ int64 // bytes of fully-arrived (readable) head messages

	// notifyQ holds messages announced to OnReadable but not yet
	// dispatched, consumed head-first by the opReadable event. notifyHead
	// indexes the head so dequeueing never copy-shifts.
	notifyQ    []*Message
	notifyHead int

	stats ConnStats
	Trace *Trace // optional; set by probes
}

// srcE and dstE are the engines owning each side of the connection. With a
// serial fabric both are the fabric's engine; under a sim.ShardSet the
// client side (sender state) lives on the client host's shard and the
// server side (receiver state) on the server host's shard, and every event
// crossing sides goes through Post* with the side-to-side latency as its
// lookahead.
func (c *Conn) srcE() *sim.Engine { return c.Src.Egress.E }
func (c *Conn) dstE() *sim.Engine { return c.Dst.Egress.E }

// Event ops for the sim.Target dispatch. Per-segment and per-ACK callbacks
// were previously closures capturing (seq, size) or (ack, rwnd) — one heap
// allocation each, millions per figure run. The connection now implements
// sim.Target once and carries those words in the event itself.
const (
	opArrive   uint32 = iota // segment delivered to dst's switch port; a=seq, b=size
	opIngress                // segment through dst's NIC; a=seq, b=size
	opAck                    // cumulative ACK at the sender; a=ack, b=rwnd
	opReadable               // head message fully arrived; pops notifyQ
	opRTO                    // retransmission timer; a=deadline
)

// OnEvent implements sim.Target: the closure-free landing point for every
// per-segment event of the connection.
func (c *Conn) OnEvent(op uint32, a, b int64) {
	switch op {
	case opArrive:
		c.arriveAtPort(a, b)
	case opIngress:
		c.Dst.portQ -= b
		c.receive(a, b)
	case opAck:
		c.handleAck(a, b)
	case opReadable:
		m := c.notifyQ[c.notifyHead]
		c.notifyQ[c.notifyHead] = nil
		c.notifyHead++
		if c.notifyHead == len(c.notifyQ) {
			c.notifyQ = c.notifyQ[:0]
			c.notifyHead = 0
		}
		c.OnReadable(c, m)
	case opRTO:
		c.checkRTO(sim.Time(a))
	}
}

// Dial creates a connection from src to dst.
func (f *Fabric) Dial(src, dst *Host, app int) *Conn {
	c := &Conn{
		ID:       len(f.conns),
		F:        f,
		Src:      src,
		Dst:      dst,
		App:      app,
		cwnd:     f.P.InitCwnd,
		ssthresh: f.P.InitSSThresh,
		rwndEst:  f.P.Rmem,
		rto:      f.P.RTOBase,
	}
	f.conns = append(f.conns, c)
	return c
}

// Stats returns the connection's counters.
func (c *Conn) Stats() ConnStats { return c.stats }

// Cwnd returns the congestion window in segments.
func (c *Conn) Cwnd() float64 { return c.cwnd }

// EffectiveWindow returns the sender's current usable window in bytes:
// min(cwnd·MSS, advertised receive window).
func (c *Conn) EffectiveWindow() int64 {
	w := int64(c.cwnd * float64(c.F.P.MSS))
	if c.rwndEst < w {
		w = c.rwndEst
	}
	return w
}

// AckedBytes returns the bytes cumulatively acknowledged.
func (c *Conn) AckedBytes() int64 { return c.ackedSeq }

// QueuedBytes returns bytes accepted by Send but not yet acknowledged.
func (c *Conn) QueuedBytes() int64 { return c.appendedSeq - c.ackedSeq }

// Unread returns bytes held in the receive buffer (accepted, unconsumed).
func (c *Conn) Unread() int64 { return c.rcvNext - c.readSeq }

// Send queues m for transmission. Delivery order is Send order.
func (c *Conn) Send(m *Message) {
	if m.Size <= 0 {
		panic("netsim: message size must be positive")
	}
	c.appendedSeq += m.Size
	m.endSeq = c.appendedSeq
	c.sendQ = append(c.sendQ, m)
	mm := *m
	mm.notified = false
	// The receiver-side framing mirror is receiver-owned state: append it on
	// the receiver's shard. The deferred cross-shard apply is invisible to
	// the receiver — no byte of the message can arrive before one lookahead
	// has passed, so notifyReadable and ReadHead cannot reach the mirrored
	// entry until long after the next drain has delivered it.
	if se, de := c.srcE(), c.dstE(); se == de {
		c.rcvQ = append(c.rcvQ, &mm)
	} else {
		se.PostApply(de, c, 0, 0, &mm)
	}
	c.pump()
}

// OnApply implements sim.Applier: the receiver-shard landing point for the
// framing mirror of Send.
func (c *Conn) OnApply(a, b int64, data any) {
	c.rcvQ = append(c.rcvQ, data.(*Message))
}

// pump transmits as many segments as the windows allow.
func (c *Conn) pump() {
	mss := c.F.P.MSS
	for {
		if c.nextSeq >= c.appendedSeq {
			return // nothing to send
		}
		win := c.EffectiveWindow()
		inFlight := c.nextSeq - c.ackedSeq
		if inFlight >= win {
			return
		}
		seg := mss
		if rem := c.appendedSeq - c.nextSeq; rem < seg {
			seg = rem
		}
		if avail := win - inFlight; avail < seg {
			// Send a short segment only if it closes the remaining window;
			// otherwise wait (avoid silly-window syndrome).
			if avail < seg && inFlight > 0 {
				return
			}
			seg = avail
		}
		if seg <= 0 {
			return
		}
		c.transmit(c.nextSeq, seg)
		c.nextSeq += seg
	}
}

// transmit sends one segment [seq, seq+size) through the network.
func (c *Conn) transmit(seq, size int64) {
	c.stats.SentSegs++
	if seq < c.highSent {
		c.stats.RetransSegs++
	}
	if end := seq + size; end > c.highSent {
		c.highSent = end
	}
	if c.Trace != nil {
		c.Trace.sampleSend(c)
	}
	c.armRTO()
	if c.Src.down {
		// Administratively-down sender link: the segment dies at the NIC.
		// The RTO just armed recovers it after the link comes back.
		c.Src.stats.LinkDrops++
		return
	}
	// Reserve NIC service sender-side; the arrival at the receiver's switch
	// port is a receiver-shard event (delivery time >= now + SwitchLatency,
	// within the lookahead contract).
	at := c.Src.Egress.Reserve(size)
	c.srcE().PostCall(c.dstE(), at, c, opArrive, seq, size)
}

// arriveAtPort is the segment reaching the receiver's switch port.
func (c *Conn) arriveAtPort(seq, size int64) {
	h := c.Dst
	if h.lossyAt(c.dstE().Now()) {
		// Admin-down receiver link or loss-burst window: the segment is
		// dropped before the port queue; the sender recovers via RTO.
		h.stats.LinkDrops++
		return
	}
	if h.portQ+size > c.F.P.PortBuf {
		h.stats.PortDrops++
		h.stats.PortDropped += size
		return // tail drop; sender recovers via RTO
	}
	h.portQ += size
	h.stats.SegsIn++
	h.stats.BytesIn += size
	h.Ingress.SendCall(size, c, opIngress, seq, size) // opIngress undoes portQ
}

// receive handles an in-order segment at the server NIC.
func (c *Conn) receive(seq, size int64) {
	if seq != c.rcvNext {
		// Go-back-N receiver: discard out-of-order segments. (Bytes below
		// rcvNext are stale retransmissions; above are gaps after a loss.)
		c.stats.OOODropped++
		c.sendAck() // dupack refreshes the sender's window estimate
		return
	}
	if c.rcvNext+size-c.readSeq > c.F.P.Rmem {
		// Beyond the advertised window (stale window estimate at sender).
		c.stats.WndDropped++
		c.sendAck()
		return
	}
	c.rcvNext += size
	c.stats.RcvdSegs++
	c.notifyReadable()
	c.sendAck()
}

// notifyReadable fires OnReadable for every fully-arrived head message that
// has not been announced yet.
func (c *Conn) notifyReadable() {
	for _, m := range c.rcvQ {
		if m.endSeq > c.rcvNext {
			break
		}
		if m.notified {
			continue
		}
		m.notified = true
		if c.OnReadable != nil {
			c.notifyQ = append(c.notifyQ, m)
			c.dstE().ScheduleCall(0, c, opReadable, 0, 0)
		}
	}
}

// ReadHead consumes the head message from the receive buffer, freeing its
// bytes and advertising the wider window to the sender.
func (c *Conn) ReadHead() *Message {
	if len(c.rcvQ) == 0 {
		panic("netsim: ReadHead on empty receive queue")
	}
	m := c.rcvQ[0]
	if m.endSeq > c.rcvNext {
		panic("netsim: ReadHead before message fully arrived")
	}
	copy(c.rcvQ, c.rcvQ[1:])
	c.rcvQ = c.rcvQ[:len(c.rcvQ)-1]
	c.readSeq = m.endSeq
	// Window update travels on the reverse path.
	c.sendAck()
	return m
}

// sendAck sends a cumulative ACK carrying the current advertised window. It
// runs receiver-side; the ACK lands at the sender AckLatency later.
func (c *Conn) sendAck() {
	if c.Dst.down {
		return // admin-down link: no reverse path either
	}
	de := c.dstE()
	de.PostCall(c.srcE(), de.Now()+c.F.P.AckLatency, c, opAck, c.rcvNext, c.F.P.Rmem-c.Unread())
}

// handleAck runs at the sender when an ACK/window update arrives.
func (c *Conn) handleAck(ack, rwnd int64) {
	if c.Src.down {
		// The ACK was in flight when the sender's link went down; drop it.
		c.Src.stats.LinkDrops++
		return
	}
	c.rwndEst = rwnd
	if ack > c.ackedSeq {
		advanced := ack - c.ackedSeq
		c.ackedSeq = ack
		c.stats.AckedBytes = c.ackedSeq
		c.lastProg = c.srcE().Now()
		c.rto = c.F.P.RTOBase // progress resets backoff
		// Window growth per ACKed segment-equivalent.
		segs := float64(advanced) / float64(c.F.P.MSS)
		if c.cwnd < c.ssthresh {
			c.cwnd += segs // slow start
		} else {
			c.cwnd += segs / c.cwnd // congestion avoidance
		}
		if c.cwnd > c.F.P.MaxCwnd {
			c.cwnd = c.F.P.MaxCwnd
		}
		c.dropHeadMessages()
	}
	if c.Trace != nil {
		c.Trace.sampleAck(c)
	}
	c.pump()
}

// dropHeadMessages releases fully-acknowledged messages from the send queue.
func (c *Conn) dropHeadMessages() {
	i := 0
	for ; i < len(c.sendQ); i++ {
		if c.sendQ[i].endSeq > c.ackedSeq {
			break
		}
	}
	if i > 0 {
		c.sendQ = append(c.sendQ[:0], c.sendQ[i:]...)
	}
}

// armRTO starts the retransmission timer if it is not running.
func (c *Conn) armRTO() {
	if c.rtoArmed {
		return
	}
	c.rtoArmed = true
	c.lastProg = c.srcE().Now()
	deadline := c.srcE().Now() + c.rto
	c.srcE().AtCall(deadline, c, opRTO, int64(deadline), 0)
}

// checkRTO fires when the timer expires; if progress happened meanwhile the
// timer is re-armed from the time of that progress.
func (c *Conn) checkRTO(deadline sim.Time) {
	c.rtoArmed = false
	if c.ackedSeq >= c.appendedSeq {
		return // everything delivered; leave the timer off
	}
	if c.nextSeq <= c.ackedSeq {
		// Nothing in flight: the sender is window-stalled, not suffering
		// loss. A window update will restart transmission; do not back off.
		return
	}
	if c.lastProg+c.rto > deadline {
		// Progress since arming: re-arm relative to it.
		c.rtoArmed = true
		nd := c.lastProg + c.rto
		c.srcE().AtCall(nd, c, opRTO, int64(nd), 0)
		return
	}
	// Timeout: go-back-N from the cumulative ACK with multiplicative
	// backoff.
	c.stats.Timeouts++
	c.ssthresh = c.cwnd / 2
	if c.ssthresh < 2 {
		c.ssthresh = 2
	}
	c.cwnd = 1
	c.rto *= 2
	if c.rto > c.F.P.RTOMax {
		c.rto = c.F.P.RTOMax
	}
	c.nextSeq = c.ackedSeq
	if c.Trace != nil {
		c.Trace.sampleTimeout(c)
	}
	c.pump()
}

// Reply sends a small server-to-client message on the reverse path. It uses
// the server's egress NIC and the switch, but no congestion control — the
// forward data path dwarfs replies.
func (c *Conn) Reply(size int64, meta interface{}) {
	if c.Dst.down {
		// Admin-down server link: the reply is lost. The client-side retry
		// layer (when active) recovers via its per-request deadline.
		c.Dst.stats.LinkDrops++
		return
	}
	// Reserve the server's NIC, deliver on the client's shard (delivery is
	// at least SwitchLatency away — the Egress line's propagation delay).
	at := c.Dst.Egress.Reserve(size)
	c.dstE().PostFunc(c.srcE(), at, func() {
		if c.OnReply != nil {
			c.OnReply(meta)
		}
	})
}
