// Package mpisim provides the minimal MPI-like runtime the paper's
// microbenchmark needs: a world of ranks split into groups (communicators),
// barriers, and collectively timed I/O phases. Ranks are simulated
// processes; no message passing beyond barriers is modeled because the
// benchmark performs none.
package mpisim

import (
	"fmt"

	"repro/internal/sim"
)

// World is the set of all ranks (MPI_COMM_WORLD).
type World struct {
	E    *sim.Engine
	Size int
}

// NewWorld creates a world of size ranks on engine e.
func NewWorld(e *sim.Engine, size int) *World {
	if size <= 0 {
		panic("mpisim: world size must be positive")
	}
	return &World{E: e, Size: size}
}

// Split partitions the world into n equal contiguous groups, like
// MPI_Comm_split with color = rank*n/size. It panics if size is not
// divisible by n.
func (w *World) Split(n int) []*Comm {
	if w.Size%n != 0 {
		panic(fmt.Sprintf("mpisim: cannot split %d ranks into %d equal groups", w.Size, n))
	}
	per := w.Size / n
	comms := make([]*Comm, n)
	for i := range comms {
		ranks := make([]int, per)
		for j := range ranks {
			ranks[j] = i*per + j
		}
		comms[i] = w.Comm(ranks)
	}
	return comms
}

// Comm creates a communicator over the given global ranks.
func (w *World) Comm(ranks []int) *Comm {
	return &Comm{w: w, ranks: append([]int(nil), ranks...), barrier: &Barrier{n: len(ranks)}}
}

// Comm is a communicator: a group of ranks with a reusable barrier.
type Comm struct {
	w       *World
	ranks   []int
	barrier *Barrier
}

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.ranks) }

// Ranks returns the global ranks (callers must not modify).
func (c *Comm) Ranks() []int { return c.ranks }

// Barrier blocks until every rank of the communicator has entered.
func (c *Comm) Barrier(p *sim.Proc) { c.barrier.Wait(p, c.w.E) }

// NewBarrier returns a reusable rendezvous for n participants — a
// communicator-free Barrier for callers (the workload-program layer, the
// trace replayer) that track membership themselves.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("mpisim: barrier size must be positive")
	}
	return &Barrier{n: n}
}

// Barrier is a reusable rendezvous for n participants.
type Barrier struct {
	n       int
	arrived int
	sig     *sim.Signal
}

// Wait blocks until n participants have called Wait; the barrier then
// resets for reuse.
func (b *Barrier) Wait(p *sim.Proc, e *sim.Engine) {
	if b.sig == nil {
		b.sig = &sim.Signal{}
	}
	b.arrived++
	if b.arrived == b.n {
		s := b.sig
		b.arrived = 0
		b.sig = nil
		s.Fire(e)
		return
	}
	p.Await(b.sig)
}

// PhaseTimer measures a collectively executed phase: the phase starts when
// every rank has entered (first barrier) and ends when every rank has
// finished (last Done). This is exactly how the paper times an I/O burst.
type PhaseTimer struct {
	e       *sim.Engine
	n       int
	entered int
	done    int
	start   sim.Time
	end     sim.Time
	begin   sim.Signal
	finish  sim.Signal
}

// NewPhaseTimer creates a timer for n ranks.
func NewPhaseTimer(e *sim.Engine, n int) *PhaseTimer {
	return &PhaseTimer{e: e, n: n}
}

// Enter marks the rank ready and blocks until all ranks have entered.
func (t *PhaseTimer) Enter(p *sim.Proc) {
	t.entered++
	if t.entered == t.n {
		t.start = t.e.Now()
		t.begin.Fire(t.e)
		return
	}
	p.Await(&t.begin)
}

// Done marks the rank's work complete.
func (t *PhaseTimer) Done() {
	t.done++
	if t.done == t.n {
		t.end = t.e.Now()
		t.finish.Fire(t.e)
	}
}

// AwaitEnd blocks until every rank is done.
func (t *PhaseTimer) AwaitEnd(p *sim.Proc) { p.Await(&t.finish) }

// OnEnd schedules fn once every rank is done.
func (t *PhaseTimer) OnEnd(fn func()) { t.finish.OnFire(t.e, fn) }

// Elapsed returns the phase duration (valid once all ranks are done).
func (t *PhaseTimer) Elapsed() sim.Time { return t.end - t.start }

// Start returns the phase start time.
func (t *PhaseTimer) Start() sim.Time { return t.start }

// End returns the phase end time.
func (t *PhaseTimer) End() sim.Time { return t.end }

// Finished reports whether the phase has completed.
func (t *PhaseTimer) Finished() bool { return t.done == t.n }
