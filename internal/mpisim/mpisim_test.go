package mpisim

import (
	"testing"

	"repro/internal/sim"
)

func TestSplitEqualGroups(t *testing.T) {
	e := sim.NewEngine()
	w := NewWorld(e, 960)
	groups := w.Split(2)
	if len(groups) != 2 || groups[0].Size() != 480 || groups[1].Size() != 480 {
		t.Fatalf("split: %d groups", len(groups))
	}
	if groups[0].Ranks()[0] != 0 || groups[1].Ranks()[0] != 480 {
		t.Fatalf("group rank bases wrong: %d %d", groups[0].Ranks()[0], groups[1].Ranks()[0])
	}
}

func TestSplitIndivisiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWorld(sim.NewEngine(), 10).Split(3)
}

func TestBarrierReleasesTogether(t *testing.T) {
	e := sim.NewEngine()
	w := NewWorld(e, 4)
	c := w.Comm([]int{0, 1, 2, 3})
	var releases []sim.Time
	for i := 0; i < 4; i++ {
		d := sim.Time(i) * 10 * sim.Millisecond
		e.Spawn("r", func(p *sim.Proc) {
			p.Sleep(d)
			c.Barrier(p)
			releases = append(releases, p.Now())
		})
	}
	e.Run()
	if len(releases) != 4 {
		t.Fatalf("releases = %v", releases)
	}
	for _, r := range releases {
		if r != 30*sim.Millisecond {
			t.Fatalf("release at %v, want 30ms (last arrival)", r)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	e := sim.NewEngine()
	w := NewWorld(e, 2)
	c := w.Comm([]int{0, 1})
	counts := [2]int{}
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("r", func(p *sim.Proc) {
			for round := 0; round < 5; round++ {
				p.Sleep(sim.Time(i+1) * sim.Millisecond)
				c.Barrier(p)
				counts[i]++
			}
		})
	}
	e.Run()
	if counts[0] != 5 || counts[1] != 5 {
		t.Fatalf("rounds = %v", counts)
	}
}

func TestPhaseTimerMeasuresCollectivePhase(t *testing.T) {
	e := sim.NewEngine()
	pt := NewPhaseTimer(e, 3)
	// Ranks arrive staggered, work for different durations.
	work := []sim.Time{50, 20, 80} // ms
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("r", func(p *sim.Proc) {
			p.Sleep(sim.Time(i) * 5 * sim.Millisecond) // staggered arrival
			pt.Enter(p)
			p.Sleep(work[i] * sim.Millisecond)
			pt.Done()
		})
	}
	e.Run()
	if !pt.Finished() {
		t.Fatal("phase not finished")
	}
	// Start at last arrival (10ms), end at start+80ms.
	if pt.Start() != 10*sim.Millisecond {
		t.Fatalf("start = %v", pt.Start())
	}
	if pt.Elapsed() != 80*sim.Millisecond {
		t.Fatalf("elapsed = %v, want 80ms", pt.Elapsed())
	}
}

func TestPhaseTimerOnEndAndAwait(t *testing.T) {
	e := sim.NewEngine()
	pt := NewPhaseTimer(e, 2)
	fired := false
	pt.OnEnd(func() { fired = true })
	var awaited sim.Time
	e.Spawn("watcher", func(p *sim.Proc) {
		pt.AwaitEnd(p)
		awaited = p.Now()
	})
	for i := 0; i < 2; i++ {
		e.Spawn("r", func(p *sim.Proc) {
			pt.Enter(p)
			p.Sleep(25 * sim.Millisecond)
			pt.Done()
		})
	}
	e.Run()
	if !fired {
		t.Fatal("OnEnd not fired")
	}
	if awaited != 25*sim.Millisecond {
		t.Fatalf("awaited = %v", awaited)
	}
}

func TestNewWorldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWorld(sim.NewEngine(), 0)
}
