package paper

// Golden-determinism guard for the simulation kernel.
//
// Every figure driver is run on a tiny platform (testDiv nodes/servers,
// coarse δ grids) and the complete numeric result — alone baselines, per-δ
// elapsed times, interference factors, throughputs, diagnostic counters
// (including the engine's executed-event count) and every raw trace sample —
// is serialized to a canonical text form and hashed. The hashes live in
// testdata/golden_checksums.txt.
//
// The point: performance rewrites of internal/sim (and the layers above)
// must reproduce these checksums bit-for-bit. A kernel change that reorders
// events, drops an event, or perturbs a single float will flip a hash here
// long before a qualitative shape test notices. Regenerate (after an
// *intentional* model change only) with:
//
//	go test ./internal/paper -run TestGoldenDeterminism -update
//
// (-update-golden is the long spelling of the same flag.)

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/netsim"
)

var (
	updateGoldenLong  = flag.Bool("update-golden", false, "rewrite testdata/golden_checksums.txt from the current kernel")
	updateGoldenShort = flag.Bool("update", false, "alias for -update-golden")
)

// updateGolden reports whether this run should rewrite the golden file
// instead of checking it (either spelling of the flag).
func updateGolden() bool { return *updateGoldenLong || *updateGoldenShort }

const goldenFile = "testdata/golden_checksums.txt"

// goldenSeries serializes labeled δ-graphs exactly. Times are integer
// nanoseconds; floats use %.17g, which round-trips float64 bit-for-bit.
func goldenSeries(b *strings.Builder, ss []Series) {
	for i, s := range ss {
		g := s.Graph
		fmt.Fprintf(b, "series %d label=%q alone0=%d alone1=%d\n", i, s.Label, g.Alone[0], g.Alone[1])
		for j, p := range g.Points {
			fmt.Fprintf(b, "point %d.%d delta=%d e0=%d e1=%d if0=%.17g if1=%.17g tp0=%.17g tp1=%.17g",
				i, j, p.Delta, p.Elapsed[0], p.Elapsed[1], p.IF[0], p.IF[1], p.Throughput[0], p.Throughput[1])
			d := p.Diag
			fmt.Fprintf(b, " drops=%d timeouts=%d retrans=%d seeks=%d devbytes=%d cacheblk=%d events=%d\n",
				d.PortDrops, d.Timeouts, d.RetransSegs, d.DeviceSeeks, d.DeviceBytes, d.CacheBlocks, d.Events)
		}
	}
}

// goldenTrace serializes every raw sample of a window trace.
func goldenTrace(b *strings.Builder, name string, t *netsim.Trace) {
	fmt.Fprintf(b, "trace %s len=%d\n", name, t.Len())
	for i := range t.Times {
		fmt.Fprintf(b, "%s %d t=%d wnd=%.17g cwnd=%.17g acked=%d kind=%c\n",
			name, i, t.Times[i], t.Wnd[i], t.Cwnd[i], t.Acked[i], t.Kind[i])
	}
}

// goldenCases maps a stable key to a function producing the canonical text
// of one figure's full result at the golden scale.
func goldenCases() map[string]func() string {
	div := testDiv
	series := func(f func() []Series) func() string {
		return func() string {
			var b strings.Builder
			goldenSeries(&b, f())
			return b.String()
		}
	}
	return map[string]func() string{
		"table1": func() string {
			var b strings.Builder
			for _, r := range Table1() {
				fmt.Fprintf(&b, "row %s alone=%d together=%d slowdown=%.17g\n",
					r.Backend, r.Alone, r.Together, r.Slowdown)
			}
			return b.String()
		},
		"fig2-syncon":  series(func() []Series { return Fig2(div, true, GridCoarse) }),
		"fig2-syncoff": series(func() []Series { return Fig2(div, false, GridCoarse) }),
		"fig3-syncon":  series(func() []Series { return Fig3(div, true, GridCoarse) }),
		"fig3-syncoff": series(func() []Series { return Fig3(div, false, GridCoarse) }),
		"fig4":         series(func() []Series { return Fig4(div, GridCoarse) }),
		"fig5-syncon":  series(func() []Series { return Fig5(div, true, GridCoarse) }),
		"fig5-syncoff": series(func() []Series { return Fig5(div, false, GridCoarse) }),
		"fig6": func() string {
			pts, ss := Fig6(div, []int{16, 48}, GridCoarse)
			var b strings.Builder
			for _, p := range pts {
				fmt.Fprintf(&b, "scale servers=%d max=%.17g min=%.17g peak=%.17g\n",
					p.Servers, p.MaxBps, p.MinBps, p.PeakIF)
			}
			goldenSeries(&b, ss)
			return b.String()
		},
		"fig7-hdd": series(func() []Series { return Fig7(div, cluster.HDD, GridCoarse) }),
		"fig7-ram": series(func() []Series { return Fig7(div, cluster.RAM, GridCoarse) }),
		"fig8-syncon": series(func() []Series {
			return Fig8(div, true, []int64{64 << 10, 256 << 10}, GridCoarse)
		}),
		"fig8-syncoff": series(func() []Series {
			return Fig8(div, false, []int64{64 << 10, 256 << 10}, GridCoarse)
		}),
		"fig9-syncon": series(func() []Series {
			return Fig9(div, true, []int64{64 << 10, 512 << 10}, GridCoarse)
		}),
		"fig9-syncoff": series(func() []Series {
			return Fig9(div, false, []int64{64 << 10, 512 << 10}, GridCoarse)
		}),
		"fig10": func() string {
			alone, contended := Fig10(div)
			var b strings.Builder
			goldenTrace(&b, "alone", alone)
			goldenTrace(&b, "contended", contended)
			return b.String()
		},
		"fig11": func() string {
			res := Fig11(div)
			var b strings.Builder
			fmt.Fprintf(&b, "end=%d totalA=%d totalB=%d\n", res.End, res.TotalA, res.TotalB)
			goldenTrace(&b, "A", res.TraceA)
			goldenTrace(&b, "B", res.TraceB)
			return b.String()
		},
		"fig12": series(func() []Series { return Fig12(div, []int{128, 512}, GridCoarse) }),
	}
}

func readGolden(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("reading %s (regenerate with -update-golden): %v", goldenFile, err)
	}
	want := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed golden line %q", line)
		}
		want[fields[0]] = fields[1]
	}
	return want
}

func TestGoldenDeterminism(t *testing.T) {
	cases := goldenCases()

	if updateGolden() {
		keys := make([]string, 0, len(cases))
		for k := range cases {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		b.WriteString("# sha256 of each figure's canonical result at testDiv scale, coarse grids.\n")
		b.WriteString("# Regenerate: go test ./internal/paper -run TestGoldenDeterminism -update-golden\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "%s %x\n", k, sha256.Sum256([]byte(cases[k]())))
		}
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d figures)", goldenFile, len(keys))
		return
	}

	want := readGolden(t)
	for key, gen := range cases {
		key, gen := key, gen
		t.Run(key, func(t *testing.T) {
			t.Parallel() // figures are independent; the Pool bounds real work
			wantSum, ok := want[key]
			if !ok {
				t.Fatalf("no golden checksum for %q (regenerate with -update-golden)", key)
			}
			text := gen()
			got := fmt.Sprintf("%x", sha256.Sum256([]byte(text)))
			if got != wantSum {
				t.Errorf("checksum drift: got %s want %s\ncanonical result was:\n%s", got, wantSum, text)
			}
		})
	}
}
