package paper

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/report"
	"repro/internal/sim"
)

// RenderSeries turns labeled δ-graphs into one table: a row per δ with one
// column pair (write time, IF) per series, using application A (the paper
// plots one application when both are symmetric, and we add B for the
// asymmetric cases).
func RenderSeries(title string, series []Series) *report.Table {
	cols := []string{"delta_s"}
	for _, s := range series {
		cols = append(cols, s.Label+"_A_s", s.Label+"_B_s", s.Label+"_IF_A", s.Label+"_IF_B")
	}
	t := report.New(title, cols...)
	if len(series) == 0 {
		return t
	}
	for i := range series[0].Graph.Points {
		row := []interface{}{series[0].Graph.Points[i].Delta.Seconds()}
		for _, s := range series {
			p := s.Graph.Points[i]
			row = append(row, p.Elapsed[0].Seconds(), p.Elapsed[1].Seconds(), p.IF[0], p.IF[1])
		}
		t.Add(row...)
	}
	return t
}

// RenderAlone emits the alone baselines and summary metrics per series.
func RenderAlone(title string, series []Series) *report.Table {
	t := report.New(title, "series", "alone_A_s", "alone_B_s", "peak_IF", "unfairness")
	for _, s := range series {
		t.Add(s.Label, s.Graph.Alone[0].Seconds(), s.Graph.Alone[1].Seconds(),
			s.Graph.PeakIF(), s.Graph.Unfairness())
	}
	return t
}

// RenderTable1 formats the Table I reproduction next to the paper's values.
func RenderTable1(rows []core.LocalResult) *report.Table {
	t := report.New("Table I: local write, alone vs interfering",
		"device", "alone_s", "interfering_s", "slowdown", "paper_alone_s", "paper_slowdown")
	paperVals := map[string][2]float64{
		"hdd": {13.4, 2.49},
		"ssd": {2.27, 1.96},
		"ram": {1.32, 1.58},
	}
	for _, r := range rows {
		pv := paperVals[r.Backend.String()]
		t.Add(r.Backend.String(), r.Alone.Seconds(), r.Together.Seconds(), r.Slowdown, pv[0], pv[1])
	}
	return t
}

// RenderScaling formats Figure 6(a): throughput vs number of servers.
func RenderScaling(points []ScalePoint) *report.Table {
	t := report.New("Figure 6(a): throughput scaling with servers",
		"servers", "max_GBps", "min_GBps")
	for _, p := range points {
		t.Add(p.Servers, p.MaxBps/1e9, p.MinBps/1e9)
	}
	return t
}

// RenderTable2 formats Table II: peak interference factor per server count.
func RenderTable2(points []ScalePoint) *report.Table {
	t := report.New("Table II: peak interference factor vs servers",
		"servers", "interference_factor", "paper")
	paperVals := map[int]float64{24: 2.00, 12: 2.07, 8: 2.28, 4: 2.22}
	for _, p := range points {
		pv := ""
		if v, ok := paperVals[p.Servers]; ok {
			pv = fmt.Sprintf("%.2f", v)
		}
		t.Add(p.Servers, p.PeakIF, pv)
	}
	return t
}

// RenderTrace formats a window trace as (sample, window) rows — Figure 10's
// "TCP window size per request".
func RenderTrace(title string, tr *netsim.Trace, maxRows int) *report.Table {
	t := report.New(title, "request_no", "window_x2048B", "time_s")
	sends := 0
	for i, k := range tr.Kind {
		if k != netsim.SampleSend {
			continue
		}
		sends++
		if maxRows > 0 && sends > maxRows {
			break
		}
		t.Add(sends, tr.Wnd[i], tr.Times[i].Seconds())
	}
	return t
}

// RenderProgress formats Figure 11: window and transfer progress over time
// for one connection.
func RenderProgress(title string, tr *netsim.Trace, total int64, step float64, until float64) *report.Table {
	t := report.New(title, "time_s", "window_x2048B", "progress_pct")
	var wnd float64
	j := 0
	for x := 0.0; x <= until; x += step {
		for j < len(tr.Times) && tr.Times[j].Seconds() <= x {
			wnd = tr.Wnd[j]
			j++
		}
		t.Add(x, wnd, 100*tr.ProgressAt(sim.Seconds(x), total))
	}
	return t
}
