package paper

// Integration tests asserting the qualitative shapes of the paper's
// findings on heavily scaled-down platforms. These are the repository's
// acceptance tests: if one fails, a model change broke a reproduced result.

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
)

const testDiv = 16 // 3 nodes, 2 servers, 16 procs/app — fast

func TestTable1Shape(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// HDD > SSD > RAM in both absolute time and slowdown (the paper's
	// ordering), with slowdowns in the measured bands.
	if !(rows[0].Slowdown > rows[1].Slowdown && rows[1].Slowdown > rows[2].Slowdown) {
		t.Fatalf("slowdown ordering violated: %+v", rows)
	}
	if rows[0].Slowdown < 2.2 || rows[0].Slowdown > 2.8 {
		t.Fatalf("HDD slowdown %.2f outside [2.2, 2.8] (paper: 2.49)", rows[0].Slowdown)
	}
	if rows[2].Slowdown < 1.35 || rows[2].Slowdown > 1.8 {
		t.Fatalf("RAM slowdown %.2f outside [1.35, 1.8] (paper: 1.58)", rows[2].Slowdown)
	}
}

func TestFig5SyncOffCounterintuitive(t *testing.T) {
	// The paper's headline: with sync off, 10G interferes (~2x) while 1G
	// eliminates interference entirely.
	s := Fig5(testDiv, false, GridCoarse)
	if len(s) != 2 {
		t.Fatalf("series = %d", len(s))
	}
	if got := s[0].Graph.PeakIF(); got < 1.5 {
		t.Errorf("10G sync-off peak IF = %.2f, want clear interference (>1.5)", got)
	}
	if got := s[1].Graph.PeakIF(); got > 1.2 {
		t.Errorf("1G sync-off peak IF = %.2f, want ~1 (interference eliminated)", got)
	}
}

func TestFig4WritersPerNode(t *testing.T) {
	// δ=±10s guarantees overlap at this scale; the Fig4 driver's grid spans
	// the paper's ±60s, which exceeds the scaled alone time.
	cfg := Config(8)
	allCores := twoApps(cfg, ContigSpec())
	gAll := core.RunDelta(core.DeltaSpec{Cfg: cfg, Apps: allCores, Deltas: core.Deltas(10)})

	wl := ContigSpec()
	wl.BlockBytes = BlockBytes * int64(cfg.CoresPerNode)
	one := core.TwoAppSpecs(cfg, cfg.ComputeNodes/2, 1, wl)
	gOne := core.RunDelta(core.DeltaSpec{Cfg: cfg, Apps: one, Deltas: core.Deltas(10)})

	// All cores writing: asymmetric (first app wins). One writer per node:
	// fair. The paper's §IV-A2 lesson.
	if gAll.Unfairness() < gOne.Unfairness()+0.1 {
		t.Errorf("unfairness 16cpn=%.2f vs 1cpn=%.2f: expected clear contrast",
			gAll.Unfairness(), gOne.Unfairness())
	}
	// And fewer writers per node is faster for a single application.
	if gOne.Alone[0] >= gAll.Alone[0] {
		t.Errorf("1cpn alone (%v) should beat 16cpn alone (%v)", gOne.Alone[0], gAll.Alone[0])
	}
}

func TestFig7SplitServersRAM(t *testing.T) {
	s := Fig7(testDiv, cluster.RAM, GridCoarse)
	if got := s[0].Graph.PeakIF(); got < 1.4 {
		t.Errorf("shared-server IF = %.2f, want interference", got)
	}
	if got := s[1].Graph.PeakIF(); got > 1.2 {
		t.Errorf("split-server IF = %.2f, want ~1 (interference removed)", got)
	}
	if u := s[1].Graph.Unfairness(); u > 1.15 || u < 0.85 {
		t.Errorf("split-server unfairness = %.2f, want fair", u)
	}
}

func TestFig9RequestSizeTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute strided runs")
	}
	// Sync off: small requests are interference-free but far from optimal.
	// Scale 4 keeps the paper's load-per-server ratio (the effect needs a
	// loaded system: at tiny scales even big requests do not contend).
	s := Fig9(4, false, []int64{64 << 10, 512 << 10}, GridCoarse)
	small, big := s[0].Graph, s[1].Graph
	if got := small.PeakIF(); got > 1.35 {
		t.Errorf("64K request IF = %.2f, want ~1 (no interference)", got)
	}
	if got := big.PeakIF(); got < 1.6 {
		t.Errorf("512K request IF = %.2f, want clear interference", got)
	}
	if small.Alone[0] <= big.Alone[0] {
		t.Errorf("64K alone (%v) should be much slower than 512K alone (%v) — 'far from optimal'",
			small.Alone[0], big.Alone[0])
	}
}

func TestFig10WindowCollapse(t *testing.T) {
	alone, contended := Fig10(testDiv)
	if alone.Len() == 0 || contended.Len() == 0 {
		t.Fatal("traces empty")
	}
	if alone.MaxWnd() < 8 {
		t.Errorf("alone max window = %.1f, expected a healthy window", alone.MaxWnd())
	}
	if contended.MinWnd() >= 1 {
		t.Errorf("contended min window = %.1f, expected collapse toward 0", contended.MinWnd())
	}
}

func TestFig11SecondAppStarves(t *testing.T) {
	res := Fig11(testDiv)
	// Mid-run, the first application's connection must be far ahead of the
	// second's in relative progress (Figure 11's 90% vs 40% contrast).
	mid := res.End / 2
	pa := res.TraceA.ProgressAt(mid, res.TotalA)
	pb := res.TraceB.ProgressAt(mid, res.TotalB)
	if pa < pb+0.2 {
		t.Errorf("mid-run progress A=%.2f B=%.2f: first app should be far ahead", pa, pb)
	}
}

func TestFig12IncastGrowsWithClients(t *testing.T) {
	cfg := Config(8)
	run := func(procs int) *core.DeltaGraph {
		apps := core.TwoAppSpecs(cfg, procs, cfg.CoresPerNode, ContigSpec())
		return core.RunDelta(core.DeltaSpec{Cfg: cfg, Apps: apps, Deltas: core.Deltas(10)})
	}
	few := run(8).Unfairness()
	many := run(ProcsPerApp(cfg)).Unfairness()
	if many < few+0.1 {
		t.Errorf("unfairness few=%.2f many=%.2f: incast signature should grow with clients", few, many)
	}
}

func TestFig6ThroughputScales(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid multi-series sweep, ~10s serial")
	}
	pts, series := Fig6(4, []int{8, 24}, GridCoarse)
	if len(pts) != 2 || len(series) != 2 {
		t.Fatalf("pts=%d series=%d", len(pts), len(series))
	}
	if pts[1].MaxBps <= pts[0].MaxBps {
		t.Errorf("throughput did not scale with servers: %v vs %v", pts[0].MaxBps, pts[1].MaxBps)
	}
	// Table II: the interference factor does not shrink as servers grow.
	// (Our δ=0 values run 2.0-3.4 vs the paper's 2.0-2.3: simultaneous
	// slow-start collisions inflate the peak; see EXPERIMENTS.md.)
	for _, p := range pts {
		if p.PeakIF < 1.4 || p.PeakIF > 3.6 {
			t.Errorf("peak IF %.2f at %d servers outside [1.4, 3.6]", p.PeakIF, p.Servers)
		}
	}
}

// TestPoolSerialParallelIdentical covers the series-level fan-out: a whole
// figure (two series, each with baselines and δ points) must render the
// same result through a serial pool and a heavily parallel one.
func TestPoolSerialParallelIdentical(t *testing.T) {
	defer func(p core.Runner) { Pool = p }(Pool)
	Pool = core.Runner{Parallelism: 1}
	serial := Fig7(testDiv, cluster.RAM, GridCoarse)
	Pool = core.Runner{Parallelism: 8}
	parallel := Fig7(testDiv, cluster.RAM, GridCoarse)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("figure diverged between pools:\nserial   %+v\nparallel %+v", serial, parallel)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []sim.Time {
		cfg := Config(testDiv)
		apps := twoApps(cfg, ContigSpec())
		g := core.RunDelta(core.DeltaSpec{Cfg: cfg, Apps: apps, Deltas: []sim.Time{10 * sim.Second}})
		return g.Points[0].Elapsed
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("simulation not deterministic: %v vs %v", a, b)
	}
}

func TestScaledConfigInvariants(t *testing.T) {
	for _, div := range []int{1, 2, 4, 8, 16, 100} {
		cfg := Config(div)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("div %d: %v", div, err)
		}
		if ProcsPerApp(cfg) < 1 {
			t.Fatalf("div %d: no procs", div)
		}
		// Two apps must always fit on the platform.
		apps := twoApps(cfg, ContigSpec())
		for _, a := range apps {
			if err := a.Validate(cfg); err != nil {
				t.Fatalf("div %d: %v", div, err)
			}
		}
	}
}

func TestStridedSpecMatchesPaper(t *testing.T) {
	wl := StridedSpec(256 << 10)
	if wl.Requests() != 256 {
		t.Fatalf("strided spec has %d requests, paper issues 256", wl.Requests())
	}
	if err := wl.Validate(); err != nil {
		t.Fatal(err)
	}
}
