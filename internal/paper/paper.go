// Package paper defines one experiment per table and figure of the paper,
// parameterized by a scale divisor so that tests and benchmarks can run
// shrunken versions while `paperrepro` regenerates the full-size campaign.
//
// Scaling divides node, process and server counts together, preserving the
// processes-per-server ratio; per-process bytes stay at the paper's 64 MB,
// so per-server load, completion times and δ grids remain comparable to the
// paper at any scale. What shrinks is the fan-in (connections per server),
// so incast effects soften as the scale divisor grows — shape, not absolute
// onset, is preserved.
//
// Concurrency: every figure driver fans its work out on Pool, a
// core.Runner shared by the whole package. A figure's series, their alone
// baselines and their δ points are all independent simulations (each on a
// fresh platform with its own engine), so they execute as one flattened
// task set on the pool's workers. Results are deterministic and identical
// to the serial path at any Pool.Parallelism — see core.Runner for the
// guarantee.
package paper

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// BlockBytes is the paper's per-process write volume.
const BlockBytes = 64 << 20

// Config returns the paper platform scaled down by div (>= 1).
func Config(div int) cluster.Config {
	cfg := cluster.Default()
	if div > 1 {
		cfg.ComputeNodes = maxInt(2, cfg.ComputeNodes/div)
		cfg.Servers = maxInt(2, cfg.Servers/div)
	}
	return cfg
}

// ProcsPerApp returns the per-application process count for a config: half
// the nodes, all cores (the paper's 480 = 30 nodes x 16 cores).
func ProcsPerApp(cfg cluster.Config) int {
	return cfg.ComputeNodes / 2 * cfg.CoresPerNode
}

// ContigSpec is the paper's contiguous workload (one 64 MB request per
// process at offset rank*64MB).
func ContigSpec() workload.Spec {
	return workload.Spec{Pattern: workload.Contiguous, BlockBytes: BlockBytes}
}

// StridedSpec is the paper's strided workload: 256 requests of 256 KB.
func StridedSpec(transfer int64) workload.Spec {
	return workload.Spec{
		Pattern:      workload.Strided,
		BlockBytes:   BlockBytes,
		TransferSize: transfer,
		QD:           1,
		ThinkTime:    int64(25 * sim.Millisecond),
	}
}

// Series is a labeled δ-graph, one curve of a figure.
type Series struct {
	Label string
	Graph *core.DeltaGraph
}

// Pool is the worker pool every figure driver shares. Each figure builds
// all of its series' δ-graph specs up front and hands them to the pool as
// one flattened task set (every alone baseline and every δ point of every
// series is an independent simulation), so a figure with only two series
// still keeps all workers busy. The zero value uses GOMAXPROCS workers;
// set Parallelism to 1 to force the serial reference path. Results are
// identical at any setting — see core.Runner.
var Pool core.Runner

// seriesSpec pairs a curve label with a fully-built δ-graph spec.
type seriesSpec struct {
	Label string
	Spec  core.DeltaSpec
}

// twoApps builds the canonical A/B pair for cfg.
func twoApps(cfg cluster.Config, wl workload.Spec) []core.AppSpec {
	return core.TwoAppSpecs(cfg, ProcsPerApp(cfg), cfg.CoresPerNode, wl)
}

// series builds one labeled spec for a figure's task set.
func series(label string, cfg cluster.Config, apps []core.AppSpec, deltas []sim.Time) seriesSpec {
	return seriesSpec{Label: label, Spec: core.DeltaSpec{Cfg: cfg, Apps: apps, Deltas: deltas}}
}

// runAll executes every series on Pool, preserving series order.
func runAll(specs []seriesSpec) []Series {
	ds := make([]core.DeltaSpec, len(specs))
	for i := range specs {
		ds[i] = specs[i].Spec
	}
	graphs := Pool.RunDeltas(ds)
	out := make([]Series, len(specs))
	for i := range specs {
		out[i] = Series{Label: specs[i].Label, Graph: graphs[i]}
	}
	return out
}

// GridKind selects δ-grid density.
type GridKind int

// Grid densities.
const (
	GridFull   GridKind = iota // the paper's grids
	GridCoarse                 // 5 points, for benches and tests
)

// grid returns a δ grid spanning ±span seconds.
func grid(kind GridKind, span float64) []sim.Time {
	if kind == GridCoarse {
		return core.Deltas(span/2, span)
	}
	return core.Deltas(span/4, span/2, 3*span/4, span)
}

// --- Table I ------------------------------------------------------------

// Table1 reruns the local, network-free interference experiment: one client
// writing 2 GB contiguously, alone and against a second identical client.
func Table1() []core.LocalResult {
	return core.RunLocal(cluster.Default(), core.DefaultLocalParams(),
		[]cluster.BackendKind{cluster.HDD, cluster.SSD, cluster.RAM}, 2<<30)
}

// --- Figure 2: backend device, contiguous pattern ------------------------

// Fig2 runs the contiguous two-application experiment for each backend.
// With sync on the paper's devices are disk, SSD and RAM (a,b); with sync
// off null-aio joins (c,d).
func Fig2(div int, syncOn bool, kind GridKind) []Series {
	backends := []cluster.BackendKind{cluster.HDD, cluster.SSD, cluster.RAM}
	span := 40.0
	if !syncOn {
		backends = append(backends, cluster.Null)
		span = 10.0
	}
	var specs []seriesSpec
	for _, b := range backends {
		cfg := Config(div)
		cfg.Backend = b
		cfg.Sync = pfs.SyncOn
		if !syncOn {
			cfg.Sync = pfs.SyncOff
			if b == cluster.Null {
				cfg.Sync = pfs.NullAIO
			}
		}
		specs = append(specs, series(b.String(), cfg, twoApps(cfg, ContigSpec()), grid(kind, span)))
	}
	return runAll(specs)
}

// --- Figure 3: backend device, strided pattern ---------------------------

// Fig3 runs the strided experiment per backend. HDD with sync on lives on a
// much longer δ span (the paper plots it separately for that reason).
func Fig3(div int, syncOn bool, kind GridKind) []Series {
	var specs []seriesSpec
	for _, b := range []cluster.BackendKind{cluster.HDD, cluster.SSD, cluster.RAM} {
		cfg := Config(div)
		cfg.Backend = b
		cfg.Sync = pfs.SyncOn
		span := 40.0
		if b == cluster.HDD {
			span = 600.0
		}
		if !syncOn {
			cfg.Sync = pfs.SyncOff
			span = 60.0
		}
		specs = append(specs, series(b.String(), cfg, twoApps(cfg, StridedSpec(256<<10)), grid(kind, span)))
	}
	return runAll(specs)
}

// --- Figure 4: network interface (writers per node) ----------------------

// Fig4 compares all cores writing (16 clients/node, 64 MB each) against one
// core per node writing the same node-total (16 x 64 MB).
func Fig4(div int, kind GridKind) []Series {
	var specs []seriesSpec
	// 16 clients per node.
	cfg := Config(div)
	specs = append(specs, series("16 clients per node", cfg,
		twoApps(cfg, ContigSpec()), grid(kind, 60)))
	// 1 client per node writing CoresPerNode*64MB.
	cfg1 := Config(div)
	wl := ContigSpec()
	wl.BlockBytes = BlockBytes * int64(cfg1.CoresPerNode)
	apps := core.TwoAppSpecs(cfg1, cfg1.ComputeNodes/2, 1, wl)
	specs = append(specs, series("1 client per node", cfg1, apps, grid(kind, 60)))
	return runAll(specs)
}

// --- Figure 5: network bandwidth ------------------------------------------

// Fig5 compares 10 G and 1 G client NICs, contiguous pattern.
func Fig5(div int, syncOn bool, kind GridKind) []Series {
	span := 60.0
	if !syncOn {
		span = 15.0
	}
	var specs []seriesSpec
	for _, bw := range []struct {
		label string
		rate  float64
	}{{"10G Ethernet", cluster.GbE10}, {"1G Ethernet", cluster.GbE1}} {
		cfg := Config(div)
		cfg.ClientNIC = bw.rate
		if !syncOn {
			cfg.Sync = pfs.SyncOff
		}
		specs = append(specs, series(bw.label, cfg, twoApps(cfg, ContigSpec()), grid(kind, span)))
	}
	return runAll(specs)
}

// --- Figure 6 + Table II: number of storage servers ----------------------

// ScalePoint is one x of Figure 6(a): max (alone) and min (contended)
// throughput for a server count.
type ScalePoint struct {
	Servers int
	MaxBps  float64
	MinBps  float64
	PeakIF  float64 // Table II
}

// Fig6 sweeps the number of servers with sync off. It returns the scaling
// curve (a, plus Table II) and the δ-graph per server count (b).
func Fig6(div int, serverCounts []int, kind GridKind) ([]ScalePoint, []Series) {
	var specs []seriesSpec
	for _, s := range serverCounts {
		cfg := Config(div)
		cfg.Servers = maxInt(2, s/maxInt(1, div))
		cfg.Sync = pfs.SyncOff
		wl := ContigSpec()
		if s <= 4 {
			wl.BlockBytes = BlockBytes / 2 // the paper writes 32 MB at 4 servers
		}
		specs = append(specs, series(labelServers(cfg.Servers), cfg, twoApps(cfg, wl), grid(kind, 10)))
	}
	out := runAll(specs)
	var points []ScalePoint
	for i, sr := range out {
		cfg, wl := specs[i].Spec.Cfg, specs[i].Spec.Apps[0].Workload
		bytes := wl.TotalBytes(ProcsPerApp(cfg))
		pt := ScalePoint{
			Servers: cfg.Servers,
			MaxBps:  sim.Rate(bytes, minTime(sr.Graph.Alone[0], sr.Graph.Alone[1])),
			PeakIF:  sr.Graph.PeakIF(),
		}
		if p := sr.Graph.At(0); p != nil {
			pt.MinBps = minFloat(p.Throughput[0], p.Throughput[1])
		}
		points = append(points, pt)
	}
	return points, out
}

// --- Figure 7: targeted servers -------------------------------------------

// Fig7 compares both applications striping over all 12 servers against each
// application targeting a disjoint half ("6+6").
func Fig7(div int, backend cluster.BackendKind, kind GridKind) []Series {
	span := 60.0
	if backend == cluster.RAM {
		span = 15.0
	}
	cfg := Config(div)
	cfg.Backend = backend
	if cfg.Servers%2 != 0 {
		cfg.Servers++ // the 6+6 split needs an even server count
	}
	shared := twoApps(cfg, ContigSpec())
	specs := []seriesSpec{series(labelServers(cfg.Servers)+" shared", cfg, shared, grid(kind, span))}

	split := twoApps(cfg, ContigSpec())
	half := cfg.Servers / 2
	split[0].TargetServers = rangeInts(0, half)
	split[1].TargetServers = rangeInts(half, cfg.Servers)
	specs = append(specs, series(labelSplit(half, cfg.Servers-half), cfg, split, grid(kind, span)))
	return runAll(specs)
}

// --- Figure 8: stripe size -------------------------------------------------

// Fig8 sweeps the file-system stripe size under the strided workload.
func Fig8(div int, syncOn bool, stripes []int64, kind GridKind) []Series {
	span := 600.0
	if !syncOn {
		span = 40.0
	}
	var specs []seriesSpec
	for _, st := range stripes {
		cfg := Config(div)
		if !syncOn {
			cfg.Sync = pfs.SyncOff
		}
		cfg.StripeSize = st
		specs = append(specs, series(sim.FormatBytes(st), cfg,
			twoApps(cfg, StridedSpec(256<<10)), grid(kind, span)))
	}
	return runAll(specs)
}

// --- Figure 9: request (block) size ----------------------------------------

// Fig9 sweeps the application request size under the strided workload with
// the default 64 KiB stripe.
func Fig9(div int, syncOn bool, blocks []int64, kind GridKind) []Series {
	span := 600.0
	if !syncOn {
		span = 60.0
	}
	var specs []seriesSpec
	for _, b := range blocks {
		cfg := Config(div)
		if !syncOn {
			cfg.Sync = pfs.SyncOff
		}
		specs = append(specs, series(sim.FormatBytes(b), cfg,
			twoApps(cfg, StridedSpec(b)), grid(kind, span)))
	}
	return runAll(specs)
}

// --- Figures 10 & 11: TCP window probes -------------------------------------

// Fig10 traces the TCP window of one client->server connection during the
// contiguous HDD sync-on experiment, alone and under δ=0 contention.
func Fig10(div int) (alone, contended *netsim.Trace) {
	cfg := Config(div)
	apps := twoApps(cfg, ContigSpec())

	// The independent and the interfering run are themselves independent
	// simulations, so they too go through the pool.
	var traces [2]*netsim.Trace
	Pool.ForEach(2, func(i int) {
		specs := []core.AppSpec{apps[0], apps[1]}[:i+1]
		x := core.Prepare(cfg, specs)
		traces[i] = x.AttachWindowTrace(0, 0, 0)
		x.Run()
	})
	return traces[0], traces[1]
}

// Fig11Result carries window+progress traces for both applications with
// the second delayed by 10 s.
type Fig11Result struct {
	TraceA, TraceB *netsim.Trace
	TotalA, TotalB int64 // per-connection bytes, for progress normalization
	End            sim.Time
}

// Fig11 reruns Figure 2(a)'s δ=+10s point with window probes on one client
// of each application.
func Fig11(div int) Fig11Result {
	cfg := Config(div)
	apps := twoApps(cfg, ContigSpec())
	apps[0].Start = 0
	apps[1].Start = 10 * sim.Second
	x := core.Prepare(cfg, []core.AppSpec{apps[0], apps[1]})
	ta := x.AttachWindowTrace(0, 0, 0)
	tb := x.AttachWindowTrace(1, 0, 0)
	x.Run()
	perConn := BlockBytes / int64(cfg.Servers) // bytes one client sends one server
	return Fig11Result{
		TraceA: ta, TraceB: tb,
		TotalA: perConn, TotalB: perConn,
		End: x.Platform.E.Now(),
	}
}

// --- Figure 12: client count sweep ------------------------------------------

// Fig12 sweeps the total number of clients (both applications combined),
// contiguous pattern on HDDs with sync on — the incast onset experiment.
func Fig12(div int, totals []int, kind GridKind) []Series {
	var specs []seriesSpec
	for _, total := range totals {
		cfg := Config(div)
		per := total / maxInt(1, div) / 2
		if per < 1 {
			per = 1
		}
		if cap := ProcsPerApp(cfg); per > cap {
			per = cap // platform capacity after scaling
		}
		ppn := cfg.CoresPerNode
		// Fewer clients occupy fewer nodes at full density, like the paper.
		apps := core.TwoAppSpecs(cfg, per, ppn, ContigSpec())
		specs = append(specs, series(labelClients(2*per), cfg, apps, grid(kind, 60)))
	}
	return runAll(specs)
}

// --- helpers -----------------------------------------------------------------

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minTime(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func rangeInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func labelServers(n int) string { return itoa(n) + " PVFS servers" }
func labelSplit(a, b int) string {
	return itoa(a) + "+" + itoa(b) + " PVFS servers"
}
func labelClients(n int) string { return itoa(n) + " clients" }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
