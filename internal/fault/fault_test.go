package fault

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestParseKindRoundTrip(t *testing.T) {
	for _, name := range KindNames() {
		k, err := ParseKind(name)
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", name, err)
		}
		if k.String() != name {
			t.Fatalf("Kind round trip: %q -> %v -> %q", name, k, k.String())
		}
	}
	if _, err := ParseKind("meteor-strike"); err == nil {
		t.Fatal("ParseKind accepted an unknown kind")
	}
}

func TestPlanValidate(t *testing.T) {
	ok := func(events ...Event) *Plan { return &Plan{Events: events} }
	cases := []struct {
		name string
		plan *Plan
		want string // substring of the error; "" = valid
	}{
		{"empty", ok(), ""},
		{"crash-restart", ok(
			Event{Kind: ServerCrash, Server: 1, At: sim.Second},
			Event{Kind: ServerRestart, Server: 1, At: 2 * sim.Second}), ""},
		{"crash-unpaired", ok(
			Event{Kind: ServerCrash, Server: 1, At: sim.Second}),
			"never restarts"},
		{"link-unpaired", ok(
			Event{Kind: LinkDown, Server: 0, At: sim.Second}),
			"never comes back up"},
		{"server-out-of-range", ok(
			Event{Kind: DeviceDegrade, Server: 9, At: sim.Second, Factor: 2}),
			"server"},
		{"degrade-factor-below-one", ok(
			Event{Kind: DeviceDegrade, Server: 0, At: sim.Second, Factor: 0.5}),
			"factor"},
		{"loss-burst-no-duration", ok(
			Event{Kind: LossBurst, Server: 0, At: sim.Second}),
			"duration"},
		{"negative-time", ok(
			Event{Kind: LossBurst, Server: 0, At: -sim.Second, Duration: sim.Second}),
			"time"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate(4)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestScheduleFiresOnOwningEngine: each event lands on its server's engine
// at the event's absolute time, and nil hooks are a no-op rather than a
// panic.
func TestScheduleFiresOnOwningEngine(t *testing.T) {
	e0, e1 := sim.NewEngine(), sim.NewEngine()
	var got []string
	p := &Plan{Events: []Event{
		{Kind: ServerCrash, Server: 1, At: sim.Second},
		{Kind: ServerRestart, Server: 1, At: 2 * sim.Second},
		{Kind: DeviceDegrade, Server: 0, At: sim.Second, Factor: 3, Latency: sim.Millisecond},
		{Kind: LossBurst, Server: 0, At: 3 * sim.Second, Duration: sim.Second},
	}}
	if err := p.Validate(2); err != nil {
		t.Fatal(err)
	}
	Schedule(p, []Hooks{
		{E: e0, Degrade: func(f float64, l sim.Time) {
			if f != 3 || l != sim.Millisecond {
				t.Errorf("degrade knobs = %v, %v", f, l)
			}
			got = append(got, "degrade@0")
		}}, // LossBurst hook nil: must be a no-op
		{E: e1, Crash: func() { got = append(got, "crash@1") },
			Restart: func() { got = append(got, "restart@1") }},
	})
	e0.Run()
	e1.Run()
	want := "degrade@0,crash@1,restart@1"
	if s := strings.Join(got, ","); s != want {
		t.Fatalf("fired %q, want %q", s, want)
	}
	if e0.Now() != sim.Second || e1.Now() != 2*sim.Second {
		t.Fatalf("engines stopped at %v / %v", e0.Now(), e1.Now())
	}
}
