// Package fault is the deterministic fault-injection subsystem: a
// schedulable timeline of typed partial-failure events (server crash and
// restart, device degrade and restore, administrative link down/up and
// loss-burst windows) driven off the simulation clock, plus the client-side
// retry policy that makes a platform under faults degrade gracefully
// instead of wedging.
//
// A Plan is pure data — absolute event times and typed parameters — so the
// same plan injected into a serial platform and into any sharded build
// produces bit-identical simulations: every event is scheduled at setup
// time on the engine that owns the target server's state (its shard), and
// all cross-shard consequences travel on the simulation's existing post
// mechanism under the lookahead contract. The package deliberately knows
// nothing about pfs, netsim or storage; the platform assembly layer
// (internal/cluster) binds each event to its target through Hooks.
package fault

import (
	"fmt"

	"repro/internal/sim"
)

// Kind is the type of one fault event.
type Kind int

// Fault event kinds.
const (
	// ServerCrash fail-stops a storage server: in-flight requests die,
	// queued work is dropped, arriving chunks are discarded until restart.
	ServerCrash Kind = iota
	// ServerRestart brings a crashed server back: it re-registers with the
	// flow layer (all slots free) and serves new arrivals.
	ServerRestart
	// DeviceDegrade multiplies the backend device's per-byte service time
	// by Factor and adds Latency per operation (a dying OST).
	DeviceDegrade
	// DeviceRestore returns the device to nominal service.
	DeviceRestore
	// LinkDown administratively downs the server's NIC: data segments,
	// ACKs and replies crossing it are dropped until LinkUp. Senders
	// recover through RTO backoff; requests recover through client retry.
	LinkDown
	// LinkUp restores the link.
	LinkUp
	// LossBurst opens a window of Duration during which every data segment
	// arriving at the server's port is dropped (a deterministic loss
	// burst). ACKs and replies still flow — the partial-loss regime.
	LossBurst
)

var kindNames = [...]string{
	ServerCrash:   "server-crash",
	ServerRestart: "server-restart",
	DeviceDegrade: "device-degrade",
	DeviceRestore: "device-restore",
	LinkDown:      "link-down",
	LinkUp:        "link-up",
	LossBurst:     "loss-burst",
}

func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// KindNames lists the canonical event kind names ParseKind accepts, in
// declaration order.
func KindNames() []string {
	out := make([]string, len(kindNames))
	copy(out, kindNames[:])
	return out
}

// ParseKind converts a kind name to a Kind.
func ParseKind(s string) (Kind, error) {
	for k, n := range kindNames {
		if s == n {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown event kind %q", s)
}

// Event is one scheduled fault: a typed state change of one server's
// stack at an absolute simulated time.
type Event struct {
	// At is the absolute simulation time the event fires.
	At sim.Time
	// Kind selects the state change.
	Kind Kind
	// Server indexes the target server.
	Server int
	// Factor is the DeviceDegrade per-byte service-time multiplier
	// (>= 1; 4 means a byte takes 4x its nominal time).
	Factor float64
	// Latency is the DeviceDegrade extra per-operation latency.
	Latency sim.Time
	// Duration is the LossBurst window length.
	Duration sim.Time
}

// validate checks one event.
func (ev Event) validate(servers int) error {
	if ev.At < 0 {
		return fmt.Errorf("fault: %s at negative time %v", ev.Kind, ev.At)
	}
	if ev.Server < 0 || ev.Server >= servers {
		return fmt.Errorf("fault: %s targets server %d outside [0, %d)", ev.Kind, ev.Server, servers)
	}
	switch ev.Kind {
	case DeviceDegrade:
		if ev.Factor < 1 {
			return fmt.Errorf("fault: device-degrade needs throughput factor >= 1, got %g", ev.Factor)
		}
		if ev.Latency < 0 {
			return fmt.Errorf("fault: device-degrade latency must be >= 0, got %v", ev.Latency)
		}
	case LossBurst:
		if ev.Duration <= 0 {
			return fmt.Errorf("fault: loss-burst needs a positive duration, got %v", ev.Duration)
		}
	case ServerCrash, ServerRestart, DeviceRestore, LinkDown, LinkUp:
		// No parameters.
	default:
		return fmt.Errorf("fault: unknown event kind %d", int(ev.Kind))
	}
	return nil
}

// RetryPolicy is the client-side graceful-degradation contract active
// whenever a fault plan is injected: every sub-request (one server's share
// of a striped request) gets a deadline; expiry triggers capped
// exponential-backoff retry, bounded per request by MaxRetries and per
// application by Budget; exhaustion surfaces ErrUnavailable to the
// application, which stalls Resume and re-issues.
type RetryPolicy struct {
	// Deadline is the per-sub-request reply deadline.
	Deadline sim.Time
	// Backoff is the first retry delay; it doubles per retry up to
	// BackoffMax.
	Backoff    sim.Time
	BackoffMax sim.Time
	// MaxRetries caps retries of one sub-request (0 means no retries: the
	// first deadline expiry already fails the request).
	MaxRetries int
	// Budget is the per-application retry budget across the whole run;
	// <= 0 means unlimited.
	Budget int64
	// Resume is how long an application stalls after ErrUnavailable before
	// re-issuing the failed request.
	Resume sim.Time
}

// DefaultRetryPolicy returns the paper-scale policy: a generous 2 s
// deadline (well above healthy request latencies), 100 ms initial backoff
// capped at 1.6 s, 6 retries per request, 256 retries per application, and
// a 500 ms stall-and-resume pause.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Deadline:   2 * sim.Second,
		Backoff:    100 * sim.Millisecond,
		BackoffMax: 1600 * sim.Millisecond,
		MaxRetries: 6,
		Budget:     256,
		Resume:     500 * sim.Millisecond,
	}
}

// WithDefaults fills zero fields from DefaultRetryPolicy.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.Deadline <= 0 {
		p.Deadline = d.Deadline
	}
	if p.Backoff <= 0 {
		p.Backoff = d.Backoff
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = d.BackoffMax
	}
	if p.BackoffMax < p.Backoff {
		p.BackoffMax = p.Backoff
	}
	if p.MaxRetries <= 0 {
		p.MaxRetries = d.MaxRetries
	}
	if p.Budget == 0 {
		p.Budget = d.Budget
	}
	if p.Resume <= 0 {
		p.Resume = d.Resume
	}
	return p
}

// Validate checks the policy.
func (p RetryPolicy) Validate() error {
	switch {
	case p.Deadline < 0 || p.Backoff < 0 || p.BackoffMax < 0 || p.Resume < 0:
		return fmt.Errorf("fault: retry times must be >= 0")
	case p.MaxRetries < 0:
		return fmt.Errorf("fault: MaxRetries must be >= 0")
	case p.MaxRetries > 1000:
		return fmt.Errorf("fault: MaxRetries %d is unreasonable (max 1000)", p.MaxRetries)
	}
	return nil
}

// Plan is a deterministic fault timeline plus the client retry policy that
// accompanies it. The zero-value plan (no events) still activates the retry
// layer — deadlines are armed but never fire on a healthy platform.
type Plan struct {
	Events []Event
	Retry  RetryPolicy
}

// Validate checks every event against the platform's server count and the
// retry policy, and that crash/link faults eventually clear (a server that
// crashes must restart, a downed link must come back up — otherwise
// applications retrying against it can never complete and the simulation
// would wedge by construction, not by bug).
func (p *Plan) Validate(servers int) error {
	if err := p.Retry.Validate(); err != nil {
		return err
	}
	down := make(map[int]sim.Time)
	linkDown := make(map[int]sim.Time)
	for i, ev := range p.Events {
		if err := ev.validate(servers); err != nil {
			return fmt.Errorf("%v (event %d)", err, i)
		}
		switch ev.Kind {
		case ServerCrash:
			down[ev.Server] = ev.At
		case ServerRestart:
			delete(down, ev.Server)
		case LinkDown:
			linkDown[ev.Server] = ev.At
		case LinkUp:
			delete(linkDown, ev.Server)
		}
	}
	for srv := range down {
		return fmt.Errorf("fault: server %d crashes but never restarts", srv)
	}
	for srv := range linkDown {
		return fmt.Errorf("fault: server %d link goes down but never comes back up", srv)
	}
	return nil
}

// Hooks binds one server's fault surface: the engine owning the server's
// state (its shard) and the callbacks the injector fires there. Any nil
// callback makes the corresponding event kinds a no-op for that server.
type Hooks struct {
	E         *sim.Engine
	Crash     func()
	Restart   func()
	Degrade   func(factor float64, latency sim.Time)
	Restore   func()
	SetLink   func(down bool)
	LossBurst func(d sim.Time)
}

// Schedule installs every event of the plan on its target server's engine.
// It must be called at setup time (before the simulation runs): each event
// is then a plain local event of the owning shard, stamped exactly like any
// other setup-scheduled event, which is what makes fault timelines
// reproduce bit-for-bit between the serial oracle and every shard count —
// the injection itself never crosses a shard boundary; only its
// consequences do, on the transport's existing post paths.
func Schedule(p *Plan, servers []Hooks) {
	for _, ev := range p.Events {
		h := servers[ev.Server]
		ev := ev
		switch ev.Kind {
		case ServerCrash:
			if h.Crash != nil {
				h.E.At(ev.At, h.Crash)
			}
		case ServerRestart:
			if h.Restart != nil {
				h.E.At(ev.At, h.Restart)
			}
		case DeviceDegrade:
			if h.Degrade != nil {
				h.E.At(ev.At, func() { h.Degrade(ev.Factor, ev.Latency) })
			}
		case DeviceRestore:
			if h.Restore != nil {
				h.E.At(ev.At, h.Restore)
			}
		case LinkDown:
			if h.SetLink != nil {
				h.E.At(ev.At, func() { h.SetLink(true) })
			}
		case LinkUp:
			if h.SetLink != nil {
				h.E.At(ev.At, func() { h.SetLink(false) })
			}
		case LossBurst:
			if h.LossBurst != nil {
				h.E.At(ev.At, func() { h.LossBurst(ev.Duration) })
			}
		}
	}
}
