package population

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// params returns a small valid baseline the tests perturb.
func params() Params {
	return Params{
		Count:   100,
		Seed:    7,
		BaseMB:  512,
		ZipfExp: 1.1,
		Arrival: "poisson",
		WindowS: 30,
		Bursts:  2,
		ThinkS:  2,
		JitterS: 1,
	}
}

// render serializes a tenant list canonically so determinism checks compare
// bytes, not struct equality.
func render(ts []Tenant) string {
	var b strings.Builder
	for _, t := range ts {
		fmt.Fprintf(&b, "%s %s rank=%d procs=%d vol=%d start=%.17g seed=%d iter=%d",
			t.Name, t.Class, t.Rank, t.Procs, t.VolumeMB, t.StartS, t.Seed, t.Iterations)
		for _, ph := range t.Phases {
			fmt.Fprintf(&b, " [%s %s blk=%d xfer=%d read=%v c=%.17g j=%.17g]",
				ph.Kind, ph.Pattern, ph.BlockMB, ph.TransferKB, ph.Read, ph.ComputeS, ph.JitterS)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Property: the same Params produce the byte-identical population every
// time, and any seed change produces a different one.
func TestGenerateDeterministic(t *testing.T) {
	for _, arrival := range []string{"staggered", "poisson"} {
		p := params()
		p.Arrival = arrival
		a, err := Generate(p)
		if err != nil {
			t.Fatalf("%s: %v", arrival, err)
		}
		b, err := Generate(p)
		if err != nil {
			t.Fatalf("%s: %v", arrival, err)
		}
		if render(a) != render(b) {
			t.Fatalf("%s: same seed produced different populations", arrival)
		}
		p.Seed++
		c, err := Generate(p)
		if err != nil {
			t.Fatalf("%s: %v", arrival, err)
		}
		if render(a) == render(c) {
			t.Fatalf("%s: different seeds produced identical populations", arrival)
		}
	}
}

// Property: per-class counts follow the mix exactly (largest remainder) and
// always sum to Count, across many counts and seeds.
func TestClassMixSumsToCount(t *testing.T) {
	mix := []Share{
		{Class: "checkpointer", Weight: 3},
		{Class: "analyzer", Weight: 2},
		{Class: "elephant", Weight: 1},
		{Class: "mouse", Weight: 7},
	}
	for _, n := range []int{1, 2, 3, 13, 64, 100, 1024} {
		for seed := uint64(0); seed < 4; seed++ {
			p := params()
			p.Count, p.Seed, p.Mix = n, seed, mix
			ts, err := Generate(p)
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			if len(ts) != n {
				t.Fatalf("n=%d: got %d tenants", n, len(ts))
			}
			got := map[string]int{}
			for _, tn := range ts {
				got[tn.Class]++
			}
			want := classCounts(n, mix)
			total := 0
			for i, sh := range mix {
				total += want[i]
				if got[sh.Class] != want[i] {
					t.Fatalf("n=%d seed=%d class %s: got %d want %d", n, seed, sh.Class, got[sh.Class], want[i])
				}
			}
			if total != n {
				t.Fatalf("n=%d: apportioned counts sum to %d", n, total)
			}
		}
	}
}

// Property: ZipfMB is monotone non-increasing in rank and floored at 1 MiB,
// and generated per-class volumes inherit the monotonicity.
func TestZipfMonotoneInRank(t *testing.T) {
	for _, exp := range []float64{0.2, 0.7, 1.0, 1.1, 2.5, 8} {
		prev := int64(math.MaxInt64)
		for r := 1; r <= 2000; r++ {
			v := ZipfMB(1<<20, exp, r)
			if v < 1 {
				t.Fatalf("exp=%v rank=%d: volume %d below 1 MiB floor", exp, r, v)
			}
			if v > prev {
				t.Fatalf("exp=%v rank=%d: volume %d exceeds rank %d's %d", exp, r, v, r-1, prev)
			}
			prev = v
		}
	}

	p := params()
	p.Count = 500
	ts, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	last := map[string]int64{}
	for _, tn := range ts {
		if prev, ok := last[tn.Class]; ok && tn.VolumeMB > prev {
			t.Fatalf("class %s rank %d: volume %d exceeds an earlier rank's %d", tn.Class, tn.Rank, tn.VolumeMB, prev)
		}
		last[tn.Class] = tn.VolumeMB
	}
}

// Structural properties of every generated tenant: unique names, positive
// procs and volumes, non-decreasing arrivals in rank order, nonzero seeds,
// phases restricted to known kinds with exactly one io phase.
func TestGeneratedTenantsWellFormed(t *testing.T) {
	for _, arrival := range []string{"staggered", "poisson"} {
		p := params()
		p.Count, p.Arrival = 257, arrival
		ts, err := Generate(p)
		if err != nil {
			t.Fatalf("%s: %v", arrival, err)
		}
		names := map[string]bool{}
		prevStart := -1.0
		for _, tn := range ts {
			if names[tn.Name] {
				t.Fatalf("duplicate tenant name %q", tn.Name)
			}
			names[tn.Name] = true
			if tn.Procs < 1 || tn.VolumeMB < 1 {
				t.Fatalf("%s: procs=%d vol=%d", tn.Name, tn.Procs, tn.VolumeMB)
			}
			if tn.Seed == 0 {
				t.Fatalf("%s: zero seed", tn.Name)
			}
			if tn.StartS < prevStart {
				t.Fatalf("%s: start %v precedes rank predecessor's %v", tn.Name, tn.StartS, prevStart)
			}
			prevStart = tn.StartS
			if tn.StartS > p.WindowS*4 {
				t.Fatalf("%s: start %v far outside window %v", tn.Name, tn.StartS, p.WindowS)
			}
			io := 0
			for _, ph := range tn.Phases {
				switch ph.Kind {
				case "io":
					io++
					if ph.BlockMB < 1 {
						t.Fatalf("%s: io block %d", tn.Name, ph.BlockMB)
					}
				case "compute", "barrier":
				default:
					t.Fatalf("%s: unknown phase kind %q", tn.Name, ph.Kind)
				}
			}
			if io != 1 {
				t.Fatalf("%s: %d io phases", tn.Name, io)
			}
		}
	}
}

// Validation must reject NaN/zero/negative/Inf Zipf exponents, bad mixes,
// bad arrivals, and volume × count products that trip the overflow guard —
// each with a stable error.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Params)
		want string
	}{
		{"zero count", func(p *Params) { p.Count = 0 }, "count"},
		{"huge count", func(p *Params) { p.Count = MaxCount + 1 }, "count"},
		{"zero base", func(p *Params) { p.BaseMB = 0 }, "base_mb"},
		{"huge base", func(p *Params) { p.BaseMB = MaxBaseMB + 1 }, "base_mb"},
		{"nan zipf", func(p *Params) { p.ZipfExp = math.NaN() }, "zipf_exp"},
		{"zero zipf", func(p *Params) { p.ZipfExp = 0 }, "zipf_exp"},
		{"neg zipf", func(p *Params) { p.ZipfExp = -1 }, "zipf_exp"},
		{"inf zipf", func(p *Params) { p.ZipfExp = math.Inf(1) }, "zipf_exp"},
		{"unknown class", func(p *Params) { p.Mix = []Share{{Class: "rhino", Weight: 1}} }, "unknown class"},
		{"dup class", func(p *Params) {
			p.Mix = []Share{{Class: "mouse", Weight: 1}, {Class: "mouse", Weight: 1}}
		}, "repeats"},
		{"nan weight", func(p *Params) { p.Mix = []Share{{Class: "mouse", Weight: math.NaN()}} }, "weight"},
		{"neg weight", func(p *Params) { p.Mix = []Share{{Class: "mouse", Weight: -1}} }, "weight"},
		{"zero weights", func(p *Params) { p.Mix = []Share{{Class: "mouse", Weight: 0}} }, "sum"},
		{"bad arrival", func(p *Params) { p.Arrival = "lunar" }, "arrival"},
		{"nan window", func(p *Params) { p.WindowS = math.NaN() }, "window_s"},
		{"neg think", func(p *Params) { p.ThinkS = -1 }, "think_s"},
		{"neg bursts", func(p *Params) { p.Bursts = -1 }, "bursts"},
		{"huge bursts", func(p *Params) { p.Bursts = MaxBursts + 1 }, "bursts"},
		{"neg pairs", func(p *Params) { p.SamplePairs = -1 }, "sample_pairs"},
		{"overflow", func(p *Params) { p.Count = MaxCount; p.BaseMB = MaxBaseMB; p.ZipfExp = 0.01 }, "volume cap"},
	}
	for _, tc := range cases {
		p := params()
		tc.mut(&p)
		err := p.Validate()
		if err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		// Stability: the same invalid input fails identically twice.
		if err2 := p.Validate(); err2 == nil || err2.Error() != err.Error() {
			t.Fatalf("%s: unstable error: %v vs %v", tc.name, err, err2)
		}
	}
}

// Shrink preserves the tenant count and class proportions exactly while
// scaling volumes, procs, and time-axis knobs.
func TestShrinkPreservesMix(t *testing.T) {
	p := params()
	p.Count = 300
	full, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	small, err := Generate(p.Shrink(16, 8, 128))
	if err != nil {
		t.Fatal(err)
	}
	if len(small) != len(full) {
		t.Fatalf("shrink changed count: %d vs %d", len(small), len(full))
	}
	fullMix, smallMix := map[string]int{}, map[string]int{}
	for i := range full {
		fullMix[full[i].Class]++
		smallMix[small[i].Class]++
		if small[i].Class != full[i].Class {
			t.Fatalf("rank %d changed class: %s vs %s", i+1, small[i].Class, full[i].Class)
		}
		if small[i].VolumeMB > full[i].VolumeMB {
			t.Fatalf("rank %d grew under shrink: %d vs %d", i+1, small[i].VolumeMB, full[i].VolumeMB)
		}
		if small[i].Procs > full[i].Procs {
			t.Fatalf("rank %d procs grew under shrink: %d vs %d", i+1, small[i].Procs, full[i].Procs)
		}
	}
	for c, n := range fullMix {
		if smallMix[c] != n {
			t.Fatalf("class %s count changed: %d vs %d", c, smallMix[c], n)
		}
	}
	if TotalMB(small) >= TotalMB(full) {
		t.Fatalf("shrink did not reduce volume: %d vs %d", TotalMB(small), TotalMB(full))
	}
}

// classCounts apportions exactly over many awkward (count, weights) pairs.
func TestClassCountsLargestRemainder(t *testing.T) {
	mixes := [][]Share{
		{{Class: "mouse", Weight: 1}},
		{{Class: "mouse", Weight: 1}, {Class: "elephant", Weight: 1}},
		{{Class: "checkpointer", Weight: 0.3}, {Class: "analyzer", Weight: 0.3}, {Class: "mouse", Weight: 0.4}},
		DefaultMix(),
	}
	for _, mix := range mixes {
		for n := 1; n <= 200; n++ {
			counts := classCounts(n, mix)
			sum := 0
			for _, c := range counts {
				sum += c
			}
			if sum != n {
				t.Fatalf("mix %v n=%d: counts sum to %d", mix, n, sum)
			}
		}
	}
}
