// Package population generates fleet-scale tenant populations: instead of
// naming a handful of applications by hand, a seeded Params block stamps out
// N tenants from templated application classes (checkpointer, analyzer,
// elephant, mouse) with Zipf-distributed per-process volumes, staggered or
// Poisson arrival offsets, and burstiness knobs that map onto
// workload.Program phases at the scenario layer.
//
// Generation is strictly deterministic: the same Params produce the same
// tenant list, byte for byte, on every platform — all randomized choices
// (class placement over the volume ranks, Poisson inter-arrivals, per-tenant
// jitter seeds) come from one splitmix64 stream seeded by Params.Seed, drawn
// in a fixed order. That makes generated populations as reproducible as a
// hand-written application list, so fleet goldens and the serial-oracle
// conformance suite extend to thousand-tenant scenarios unchanged.
package population

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Size and sanity caps. Validation rejects anything beyond them with a
// stable error so a corrupt or adversarial spec can neither overflow the
// MiB→byte arithmetic nor stamp out an absurd simulation.
const (
	// MaxCount bounds the tenant count of one population.
	MaxCount = 16384
	// MaxBaseMB bounds the rank-1 per-process volume (matches the scenario
	// layer's block_mb cap: 1 TiB per process).
	MaxBaseMB = 1 << 20
	// MaxZipfExp bounds the Zipf exponent (also rejects +Inf).
	MaxZipfExp = 8
	// MaxBursts bounds the per-tenant burst count.
	MaxBursts = 64
	// MaxSamplePairs bounds the sampled-pairwise budget of the fleet path.
	MaxSamplePairs = 4096
	// maxSeconds bounds every seconds-valued knob.
	maxSeconds = 1e6
	// maxTotalMB bounds the worst-case population volume (64 TiB): the
	// explicit volume × count overflow guard.
	maxTotalMB = 1 << 26
)

// Share is one class's weight in the population mix. Weights are relative;
// the generator converts them to exact per-class counts that sum to Count
// via largest-remainder apportionment.
type Share struct {
	Class  string  `json:"class"`
	Weight float64 `json:"weight"`
}

// Params describes a generated tenant population — the scenario layer
// embeds it verbatim as the "population" block. Zero optional fields pick
// calibrated defaults (DefaultMix, staggered arrivals, one burst).
type Params struct {
	// Count is the number of tenants to stamp out (required).
	Count int `json:"count"`
	// Seed drives every randomized generation choice; the same seed always
	// produces the identical population. Zero is a valid seed.
	Seed uint64 `json:"seed,omitempty"`
	// BaseMB is the per-process volume of the rank-1 (largest) tenant, in
	// MiB (required). Rank r receives BaseMB / r^ZipfExp, floored at 1 MiB,
	// scaled by its class's volume factor.
	BaseMB int64 `json:"base_mb"`
	// ZipfExp is the Zipf skew exponent (required, > 0): higher values
	// concentrate volume in the head of the population.
	ZipfExp float64 `json:"zipf_exp"`
	// Mix is the class mix (empty = DefaultMix). Classes must be template
	// names (Classes()) and may not repeat.
	Mix []Share `json:"mix,omitempty"`
	// Arrival is "staggered" (default: tenants enter evenly over WindowS)
	// or "poisson" (seeded exponential inter-arrivals with mean
	// WindowS/(Count-1) — bursty, overlapping entries).
	Arrival string `json:"arrival,omitempty"`
	// WindowS is the arrival window in seconds (0 = everyone at once).
	WindowS float64 `json:"window_s,omitempty"`
	// Bursts repeats each bursty class's io+compute cycle (0 or 1 = one
	// burst). Single-burst classes (elephant) ignore it.
	Bursts int `json:"bursts,omitempty"`
	// ThinkS is the fixed compute pause between bursts, in seconds.
	ThinkS float64 `json:"think_s,omitempty"`
	// JitterS adds an exponentially distributed extra pause with this mean
	// to every compute phase — the burstiness knob; draws come from each
	// tenant's own seeded stream.
	JitterS float64 `json:"jitter_s,omitempty"`
	// ProcsDiv divides every class's process count (minimum 1 per tenant);
	// 0 or 1 leaves the template counts. Smoke scaling multiplies it.
	ProcsDiv int `json:"procs_div,omitempty"`
	// SamplePairs is the sampled-pairwise budget of the fleet runner
	// (0 = default 64): how many tenant pairs are co-run in isolation to
	// estimate the top aggressor/victim pairs a full N×N matrix would rank.
	SamplePairs int `json:"sample_pairs,omitempty"`
}

// Phase is the declarative form of one generated program step, mirroring
// the scenario layer's phase knobs (MiB/KiB/seconds units). Kind is "io",
// "compute" or "barrier"; exactly the knobs of that kind are set.
type Phase struct {
	Kind       string
	Pattern    string
	BlockMB    int64
	TransferKB int64
	Read       bool
	ComputeS   float64
	JitterS    float64
}

// Tenant is one generated application, ready for the scenario layer to
// compile into a workload program.
type Tenant struct {
	// Name is unique within the population ("chk-0007"); Class names the
	// template that stamped it.
	Name  string
	Class string
	// Rank is the tenant's 1-based Zipf volume rank: rank 1 is the largest.
	Rank int
	// Procs is the process count; VolumeMB the per-process volume over the
	// whole program (all bursts), in MiB.
	Procs    int
	VolumeMB int64
	// StartS is the arrival offset in seconds; Seed the tenant's private
	// jitter stream.
	StartS float64
	Seed   uint64
	// Iterations and Phases are the tenant's program (scenario units).
	Iterations int
	Phases     []Phase
}

// template is one application-class archetype. Volume scaling is a rational
// volNum/volDen so generated volumes stay exact integers.
type template struct {
	short      string
	procs      int
	volNum     int64
	volDen     int64
	pattern    string
	transferKB int64
	read       bool
	barrier    bool
	bursty     bool
}

// templates are the built-in application classes:
//
//   - checkpointer: barrier-synchronized contiguous write bursts with
//     compute between — the HPC checkpoint archetype.
//   - analyzer: strided read bursts (post-processing / restart readers).
//   - elephant: one big contiguous write, 4× the rank volume — the bulk
//     aggressor.
//   - mouse: a single-process small strided writer — the latency-bound
//     victim class.
var templates = map[string]template{
	"checkpointer": {short: "chk", procs: 8, volNum: 1, volDen: 1, pattern: "contiguous", barrier: true, bursty: true},
	"analyzer":     {short: "ana", procs: 4, volNum: 1, volDen: 2, pattern: "strided", transferKB: 256, read: true, bursty: true},
	"elephant":     {short: "ele", procs: 8, volNum: 4, volDen: 1, pattern: "contiguous"},
	"mouse":        {short: "mse", procs: 1, volNum: 1, volDen: 4, pattern: "strided", transferKB: 64, bursty: true},
}

// Classes returns the template names, sorted.
func Classes() []string {
	out := make([]string, 0, len(templates))
	for name := range templates {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DefaultMix is the standard fleet mix: mostly mice, a solid block of
// checkpointers and analyzers, a thin head of elephants.
func DefaultMix() []Share {
	return []Share{
		{Class: "checkpointer", Weight: 3},
		{Class: "analyzer", Weight: 3},
		{Class: "elephant", Weight: 1},
		{Class: "mouse", Weight: 9},
	}
}

// arrivalNames are the valid Arrival values.
var arrivalNames = []string{"staggered", "poisson"}

// Validate checks the parameters. Every error is stable (the same input
// fails the same way every time) and names the offending knob.
func (p Params) Validate() error {
	if p.Count <= 0 {
		return fmt.Errorf("population: count must be > 0, got %d", p.Count)
	}
	if p.Count > MaxCount {
		return fmt.Errorf("population: count %d exceeds the %d cap", p.Count, MaxCount)
	}
	if p.BaseMB <= 0 {
		return fmt.Errorf("population: base_mb must be > 0, got %d", p.BaseMB)
	}
	if p.BaseMB > MaxBaseMB {
		return fmt.Errorf("population: base_mb %d exceeds the %d MiB cap", p.BaseMB, MaxBaseMB)
	}
	// s > 0 rejects NaN, zero and negatives in one comparison; the cap
	// rejects +Inf.
	if !(p.ZipfExp > 0) {
		return fmt.Errorf("population: zipf_exp must be > 0 (got %v)", p.ZipfExp)
	}
	if p.ZipfExp > MaxZipfExp {
		return fmt.Errorf("population: zipf_exp %v exceeds the %v cap", p.ZipfExp, float64(MaxZipfExp))
	}
	mix := p.Mix
	if len(mix) == 0 {
		mix = DefaultMix()
	}
	if len(mix) > len(templates) {
		return fmt.Errorf("population: mix lists %d classes, only %d exist", len(mix), len(templates))
	}
	seen := make(map[string]bool)
	var wsum float64
	maxNum, maxDen := int64(1), int64(1)
	for i, sh := range mix {
		tpl, ok := templates[sh.Class]
		if !ok {
			return fmt.Errorf("population: mix[%d]: unknown class %q (valid: %s)",
				i, sh.Class, strings.Join(Classes(), ", "))
		}
		if seen[sh.Class] {
			return fmt.Errorf("population: mix[%d]: class %q repeats", i, sh.Class)
		}
		seen[sh.Class] = true
		if math.IsNaN(sh.Weight) || math.IsInf(sh.Weight, 0) || sh.Weight < 0 {
			return fmt.Errorf("population: mix[%d] (%s): weight must be finite and >= 0, got %v",
				i, sh.Class, sh.Weight)
		}
		wsum += sh.Weight
		if sh.Weight > 0 && tpl.volNum*maxDen > maxNum*tpl.volDen {
			maxNum, maxDen = tpl.volNum, tpl.volDen
		}
	}
	if !(wsum > 0) {
		return fmt.Errorf("population: mix weights sum to %v, need > 0", wsum)
	}
	if p.Arrival != "" {
		ok := false
		for _, a := range arrivalNames {
			if p.Arrival == a {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("population: unknown arrival %q (valid: %s)",
				p.Arrival, strings.Join(arrivalNames, ", "))
		}
	}
	for _, k := range []struct {
		name string
		v    float64
	}{{"window_s", p.WindowS}, {"think_s", p.ThinkS}, {"jitter_s", p.JitterS}} {
		if math.IsNaN(k.v) || k.v < 0 || k.v > maxSeconds {
			return fmt.Errorf("population: %s must be in [0, %g], got %v", k.name, maxSeconds, k.v)
		}
	}
	if p.Bursts < 0 || p.Bursts > MaxBursts {
		return fmt.Errorf("population: bursts must be in [0, %d], got %d", MaxBursts, p.Bursts)
	}
	if p.ProcsDiv < 0 || p.ProcsDiv > 1024 {
		return fmt.Errorf("population: procs_div must be in [0, 1024], got %d", p.ProcsDiv)
	}
	if p.SamplePairs < 0 || p.SamplePairs > MaxSamplePairs {
		return fmt.Errorf("population: sample_pairs must be in [0, %d], got %d", MaxSamplePairs, p.SamplePairs)
	}
	// Explicit volume × count overflow guard: bound the whole population's
	// volume by the worst class scale at every rank. The caps above keep
	// each term far inside int64, so the accumulation itself cannot
	// overflow before tripping the bound.
	bursts := int64(p.Bursts)
	if bursts < 1 {
		bursts = 1
	}
	var total int64
	for r := 1; r <= p.Count; r++ {
		v := scaleVol(ZipfMB(p.BaseMB, p.ZipfExp, r), maxNum, maxDen)
		per := v / bursts
		if per < 1 {
			per = 1
		}
		total += per * bursts * int64(maxProcs())
		if total > maxTotalMB {
			return fmt.Errorf("population: count %d x base_mb %d exceeds the %d MiB population volume cap",
				p.Count, p.BaseMB, int64(maxTotalMB))
		}
	}
	return nil
}

// maxProcs returns the largest template process count — the worst case for
// the volume guard.
func maxProcs() int {
	m := 1
	for _, t := range templates {
		if t.procs > m {
			m = t.procs
		}
	}
	return m
}

// ZipfMB returns the Zipf-distributed per-process volume of rank r (1-based)
// before class scaling: baseMB / r^exp, floored at 1 MiB. It is
// non-increasing in r for any exp > 0.
func ZipfMB(baseMB int64, exp float64, r int) int64 {
	v := int64(float64(baseMB) * math.Pow(float64(r), -exp))
	if v < 1 {
		return 1
	}
	return v
}

// scaleVol applies a class's rational volume factor, flooring at 1 MiB.
func scaleVol(v, num, den int64) int64 {
	v = v * num / den
	if v < 1 {
		return 1
	}
	return v
}

// classCounts apportions Count over the mix by largest remainder: floors
// first, then one extra tenant per class in order of descending fractional
// remainder (ties broken by mix position). Counts always sum to Count.
func classCounts(count int, mix []Share) []int {
	var wsum float64
	for _, sh := range mix {
		wsum += sh.Weight
	}
	counts := make([]int, len(mix))
	rem := make([]float64, len(mix))
	assigned := 0
	for i, sh := range mix {
		ideal := float64(count) * sh.Weight / wsum
		counts[i] = int(ideal)
		rem[i] = ideal - float64(counts[i])
		assigned += counts[i]
	}
	order := make([]int, len(mix))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return rem[order[a]] > rem[order[b]] })
	for k := 0; assigned < count; k++ {
		counts[order[k%len(order)]]++
		assigned++
	}
	return counts
}

// Generate stamps out the population. Tenants are returned in rank order
// (largest volume first); the class occupying each rank, the arrival
// offsets and the per-tenant jitter seeds all come from one deterministic
// stream seeded by p.Seed.
func Generate(p Params) ([]Tenant, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	mix := p.Mix
	if len(mix) == 0 {
		mix = DefaultMix()
	}
	bursts := p.Bursts
	if bursts < 1 {
		bursts = 1
	}
	procsDiv := p.ProcsDiv
	if procsDiv < 1 {
		procsDiv = 1
	}

	// One stream, fixed draw order: (1) class placement shuffle,
	// (2) arrival offsets, (3) per-tenant seeds. Changing this order is a
	// breaking change to the determinism contract (see DESIGN.md).
	r := sim.NewRand(p.Seed ^ 0xF1EE7C0DE5EED5)

	// (1) Which class sits at which volume rank: the exact per-class counts
	// spread over the ranks by a seeded shuffle, so every class sees the
	// whole volume spectrum instead of a contiguous block.
	classAt := make([]int, 0, p.Count)
	counts := classCounts(p.Count, mix)
	for ci, n := range counts {
		for k := 0; k < n; k++ {
			classAt = append(classAt, ci)
		}
	}
	r.ShuffleInts(classAt)

	// (2) Arrival offsets in rank order.
	starts := make([]float64, p.Count)
	if p.WindowS > 0 && p.Count > 1 {
		switch p.Arrival {
		case "poisson":
			mean := p.WindowS / float64(p.Count-1)
			t := 0.0
			for i := 1; i < p.Count; i++ {
				t += mean * r.ExpFloat64()
				starts[i] = t
			}
		default: // staggered
			step := p.WindowS / float64(p.Count-1)
			for i := range starts {
				starts[i] = float64(i) * step
			}
		}
	}

	// (3) Per-tenant jitter seeds (nonzero, so the scenario layer never
	// substitutes its positional default).
	seeds := make([]uint64, p.Count)
	for i := range seeds {
		seeds[i] = r.Uint64() | 1
	}

	tenants := make([]Tenant, p.Count)
	serial := make([]int, len(mix)) // per-class name counters
	for i := range tenants {
		rank := i + 1
		ci := classAt[i]
		name := mix[ci].Class
		tpl := templates[name]
		serial[ci]++
		procs := tpl.procs / procsDiv
		if procs < 1 {
			procs = 1
		}
		vol := scaleVol(ZipfMB(p.BaseMB, p.ZipfExp, rank), tpl.volNum, tpl.volDen)
		nb := bursts
		if !tpl.bursty {
			nb = 1
		}
		perBurst := vol / int64(nb)
		if perBurst < 1 {
			perBurst = 1
		}
		t := Tenant{
			Name:     fmt.Sprintf("%s-%04d", tpl.short, rank),
			Class:    name,
			Rank:     rank,
			Procs:    procs,
			VolumeMB: perBurst * int64(nb),
			StartS:   starts[i],
			Seed:     seeds[i],
		}
		io := Phase{
			Kind:       "io",
			Pattern:    tpl.pattern,
			BlockMB:    perBurst,
			TransferKB: tpl.transferKB,
			Read:       tpl.read,
		}
		if tpl.barrier {
			t.Phases = append(t.Phases, Phase{Kind: "barrier"})
		}
		t.Phases = append(t.Phases, io)
		if tpl.bursty && (p.ThinkS > 0 || p.JitterS > 0) {
			t.Phases = append(t.Phases, Phase{Kind: "compute", ComputeS: p.ThinkS, JitterS: p.JitterS})
		}
		if nb > 1 {
			t.Iterations = nb
		}
		tenants[i] = t
	}
	return tenants, nil
}

// Shrink scales the population for smoke runs: volumes divided by volDiv,
// process counts by procsDiv (on top of any existing divisor), and the
// time-axis knobs (arrival window, think, jitter) by timeDiv — the same
// shape-preserving shrink the scenario layer applies to hand-written
// applications. Count and Mix are untouched: a smoke fleet has the same
// tenants with the same class proportions, only smaller.
func (p Params) Shrink(volDiv, procsDiv, timeDiv int) Params {
	out := p
	out.BaseMB = p.BaseMB / int64(volDiv)
	if out.BaseMB < 1 {
		out.BaseMB = 1
	}
	if p.ProcsDiv < 1 {
		out.ProcsDiv = procsDiv
	} else {
		out.ProcsDiv = p.ProcsDiv * procsDiv
	}
	if out.ProcsDiv > 1024 {
		out.ProcsDiv = 1024
	}
	out.WindowS = p.WindowS / float64(timeDiv)
	out.ThinkS = p.ThinkS / float64(timeDiv)
	out.JitterS = p.JitterS / float64(timeDiv)
	return out
}

// TotalMB sums procs × per-process volume over a tenant list — the
// population's aggregate footprint in MiB.
func TotalMB(ts []Tenant) int64 {
	var n int64
	for _, t := range ts {
		n += int64(t.Procs) * t.VolumeMB
	}
	return n
}

// TotalProcs sums the process counts of a tenant list.
func TotalProcs(ts []Tenant) int {
	n := 0
	for _, t := range ts {
		n += t.Procs
	}
	return n
}
