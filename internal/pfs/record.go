package pfs

import "repro/internal/sim"

// Op discriminates the kinds of per-request trace records the client path
// emits (see IORecord).
type Op uint8

// Record operation kinds.
const (
	// OpWrite and OpRead are client file requests.
	OpWrite Op = iota
	OpRead
	// OpBarrier marks one rank entering a collective barrier between
	// workload phases (emitted by the workload-program layer, not by pfs
	// itself). Off and Bytes are zero; Latency is the wait time.
	OpBarrier
)

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpBarrier:
		return "barrier"
	}
	return "unknown"
}

// IORecord is one request-level trace record: the telemetry Darshan keeps
// per file region, at per-request granularity. The client path fills every
// field except Latency at issue time; Latency is filled at completion
// through the sink's EndRequest (so an in-memory recorder stores exactly
// one record per request, appended once and patched once — no allocation
// beyond the backing slice).
type IORecord struct {
	// Time is the issue time (barrier records: the entry time).
	Time sim.Time
	// Latency is completion minus issue (barrier records: the wait time).
	Latency sim.Time
	// Off and Bytes are the request's file extent. Zero for barriers.
	Off   int64
	Bytes int64
	// App and Rank identify the issuing process.
	App  int32
	Rank int32
	// Server is the global ID of the single storage server the request
	// lands on, or -1 when the extent stripes over several (or for
	// barriers, which involve no server).
	Server int32
	// QD is the client's outstanding request count at issue, including
	// this request — the observed (not configured) queue depth.
	QD int32
	// Op is the record kind.
	Op Op
}

// IOSink receives request-level records from the client path. BeginRequest
// is called at issue with every field but Latency set and returns a handle;
// EndRequest is called at completion with that handle so the sink can fill
// the latency in place. Implementations must not retain pointers into the
// record (it is passed by value) and must be cheap: the hook sits on the
// per-request hot path and internal/trace's Recorder implements it with a
// zero-allocation slice append.
//
// A nil FileSystem.Sink (the default) keeps the client path record-free;
// recording is opt-in per run.
type IOSink interface {
	BeginRequest(r IORecord) int
	EndRequest(idx int)
}
