package pfs

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

// TestRetryMachineryZeroAlloc pins the steady-state allocation contract of
// the retry layer: arming a deadline, delivering a stale timer, and taking
// the timeout -> backoff -> arm-resend transition allocate nothing. Timers
// are plain engine events carrying the attempt number (no closures, no
// cancellation bookkeeping), so a long run under a flaky server cannot
// accrete garbage proportional to its retry count. Attempt transmission
// (subOp.send) does allocate — a fresh wire request per attempt — which is
// per-resend, not per-timer-fire, and bounded by MaxRetries.
func TestRetryMachineryZeroAlloc(t *testing.T) {
	e := sim.NewEngine()
	fs := &FileSystem{E: e}
	fs.EnableRetry(fault.RetryPolicy{
		Deadline: sim.Millisecond, Backoff: sim.Millisecond,
		BackoffMax: 8 * sim.Millisecond, MaxRetries: 1 << 30, Budget: -1,
	})
	cl := &Client{fs: fs, App: 0}
	fs.growApp(0) // the per-app counters exist before steady state begins
	so := &subOp{cl: cl, backoff: fs.Retry.Backoff}

	// Warm the engine's event storage so heap growth settles.
	for i := 0; i < 64; i++ {
		e.AtCall(e.Now()+sim.Time(i+1), so, opResend, -1, 0) // stale: a != attempt
	}
	e.Run()

	allocs := testing.AllocsPerRun(200, func() {
		// One deadline expiry on the live attempt: counts the timeout,
		// takes a retry, arms the resend timer, doubles the backoff.
		e.AtCall(e.Now()+1, so, opDeadline, so.attempt, 0)
		// A stale timer from a superseded attempt fires alongside it.
		e.AtCall(e.Now()+2, so, opDeadline, so.attempt-1, 0)
		// Fire both deadlines; the armed resend (>= 1ms out) stays pending.
		e.RunUntil(e.Now() + 10)
		// Supersede the armed resend so it drains stale (a live resend
		// would transmit a fresh attempt, which allocates by design).
		so.attempt++
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("retry timer machinery allocates %.1f times per deadline cycle, want 0", allocs)
	}
	av := fs.ClientAvailFor(0)
	if av.Timeouts == 0 || av.Retries == 0 {
		t.Fatalf("steady-state loop never exercised the timeout path: %+v", av)
	}
}

// TestRetryPolicyDefaults pins WithDefaults: zero knobs pick the calibrated
// policy, explicit knobs survive, and Budget 0 means "default budget" (use
// a negative budget for unlimited).
func TestRetryPolicyDefaults(t *testing.T) {
	def := fault.DefaultRetryPolicy()
	got := (fault.RetryPolicy{}).WithDefaults()
	if got != def {
		t.Fatalf("zero policy = %+v, want the default %+v", got, def)
	}
	p := fault.RetryPolicy{Deadline: sim.Second, Budget: -1}.WithDefaults()
	if p.Deadline != sim.Second {
		t.Fatalf("explicit deadline overridden: %+v", p)
	}
	if p.Budget != -1 {
		t.Fatalf("unlimited budget overridden: %+v", p)
	}
	if p.Backoff != def.Backoff || p.MaxRetries != def.MaxRetries {
		t.Fatalf("unset knobs not defaulted: %+v", p)
	}
}

// TestRetryBudgetExhaustion: with a positive budget, retries stop when the
// application's budget runs dry and the sub-request fails over to
// ErrUnavailable accounting.
func TestRetryBudgetExhaustion(t *testing.T) {
	e := sim.NewEngine()
	fs := &FileSystem{E: e}
	fs.EnableRetry(fault.RetryPolicy{
		Deadline: sim.Millisecond, Backoff: sim.Millisecond,
		BackoffMax: sim.Millisecond, MaxRetries: 100, Budget: 3,
	})
	cl := &Client{fs: fs, App: 0}
	for i := 0; i < 5; i++ {
		if got, want := fs.takeRetry(0), i < 3; got != want {
			t.Fatalf("takeRetry #%d = %v, want %v", i, got, want)
		}
	}
	_ = cl
	av := fs.ClientAvailFor(0)
	if av.Retries != 3 {
		t.Fatalf("retries counted = %d, want 3 (the budget)", av.Retries)
	}
}
