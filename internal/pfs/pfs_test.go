package pfs

import (
	"testing"
	"testing/quick"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/storage"
)

// rig is a miniature deployment for package tests.
type rig struct {
	e       *sim.Engine
	fabric  *netsim.Fabric
	fs      *FileSystem
	devs    []storage.Device
	caches  []*storage.WriteCache
	cliHost []*netsim.Host
}

// buildRig assembles nServers servers ("ram" or "hdd" backends) and
// nClientHosts client hosts on a 1.25 GB/s fabric with default server
// parameters.
func buildRig(nServers, nClientHosts int, devKind string, mode SyncMode) *rig {
	sp := DefaultServerParams()
	sp.Sync = mode
	return buildRigParams(nServers, nClientHosts, devKind, sp)
}

// buildRigParams is buildRig with explicit server parameters — the way a
// test serializes the flow layer (FlowBufs) or selects a scheduling
// discipline (Policy, QoS). Parameters must be chosen here, at
// construction: NewServer derives the scheduler and the flow-slot count
// from them, so mutating srv.P afterwards has no effect.
func buildRigParams(nServers, nClientHosts int, devKind string, sp ServerParams) *rig {
	e := sim.NewEngine()
	fab := netsim.NewFabric(e, netsim.DefaultParams())
	var servers []*Server
	r := &rig{e: e, fabric: fab}
	for i := 0; i < nServers; i++ {
		h := fab.NewHost("server", 1.25e9, 0)
		var dev storage.Device
		switch devKind {
		case "hdd":
			dev = storage.NewHDD(e, storage.DefaultHDD())
		default:
			dev = storage.NewRAM(e, storage.DefaultRAM())
		}
		var cache *storage.WriteCache
		if sp.Sync == SyncOff {
			cache = storage.NewWriteCache(e, storage.DefaultCache(), dev)
		}
		servers = append(servers, NewServer(e, i, h, dev, cache, sp))
		r.devs = append(r.devs, dev)
		r.caches = append(r.caches, cache)
	}
	r.fs = NewFileSystem(e, fab, servers)
	for i := 0; i < nClientHosts; i++ {
		r.cliHost = append(r.cliHost, fab.NewHost("client", 1.25e9, 0))
	}
	return r
}

func TestWriteCompletesAndStores(t *testing.T) {
	r := buildRig(2, 1, "ram", SyncOn)
	f := r.fs.CreateFile("shared", nil, 64<<10)
	cl := r.fs.NewClient(r.cliHost[0], 0)
	var took sim.Time
	r.e.Spawn("writer", func(p *sim.Proc) {
		start := p.Now()
		cl.Write(p, f, 0, 1<<20)
		took = p.Now() - start
	})
	r.e.Run()
	if took <= 0 {
		t.Fatal("write did not complete")
	}
	var stored int64
	for _, d := range r.devs {
		stored += d.Stats().Bytes
	}
	if stored != 1<<20 {
		t.Fatalf("stored %d bytes, want %d", stored, 1<<20)
	}
	// Even split across 2 servers for an aligned extent.
	if a, b := r.devs[0].Stats().Bytes, r.devs[1].Stats().Bytes; a != b {
		t.Fatalf("uneven distribution: %d vs %d", a, b)
	}
}

func TestSyncModesRelativeCompletion(t *testing.T) {
	run := func(mode SyncMode) sim.Time {
		r := buildRig(1, 1, "hdd", mode)
		f := r.fs.CreateFile("f", nil, 64<<10)
		cl := r.fs.NewClient(r.cliHost[0], 0)
		var took sim.Time
		r.e.Spawn("w", func(p *sim.Proc) {
			start := p.Now()
			cl.Write(p, f, 0, 32<<20)
			took = p.Now() - start
		})
		r.e.Run()
		return took
	}
	on := run(SyncOn)
	off := run(SyncOff)
	null := run(NullAIO)
	if !(null < off && off < on) {
		t.Fatalf("completion order wrong: null=%v off=%v on=%v", null, off, on)
	}
}

func TestSyncOffStillFlushesInBackground(t *testing.T) {
	r := buildRig(1, 1, "hdd", SyncOff)
	f := r.fs.CreateFile("f", nil, 64<<10)
	cl := r.fs.NewClient(r.cliHost[0], 0)
	r.e.Spawn("w", func(p *sim.Proc) { cl.Write(p, f, 0, 8<<20) })
	r.e.Run()
	if got := r.devs[0].Stats().Bytes; got != 8<<20 {
		t.Fatalf("device received %d bytes, want all %d", got, 8<<20)
	}
	if r.caches[0].Dirty() != 0 {
		t.Fatalf("dirty bytes remain: %d", r.caches[0].Dirty())
	}
}

func TestStridedPaysMoreSeeksThanContiguous(t *testing.T) {
	run := func(strided bool) int64 {
		r := buildRig(4, 1, "hdd", SyncOn)
		f := r.fs.CreateFile("f", nil, 64<<10)
		cl := r.fs.NewClient(r.cliHost[0], 0)
		r.e.Spawn("w", func(p *sim.Proc) {
			if strided {
				// 32 blocks of 256 KB with gaps.
				for i := int64(0); i < 32; i++ {
					cl.Write(p, f, i*512<<10, 256<<10)
				}
			} else {
				cl.Write(p, f, 0, 8<<20)
			}
		})
		r.e.Run()
		var seeks int64
		for _, d := range r.devs {
			seeks += d.Stats().Seeks
		}
		return seeks
	}
	cont := run(false)
	strided := run(true)
	if strided < 4*cont {
		t.Fatalf("strided seeks (%d) not >> contiguous (%d)", strided, cont)
	}
}

func TestTargetedServerSubset(t *testing.T) {
	r := buildRig(4, 1, "ram", SyncOn)
	f := r.fs.CreateFile("f", []int{1, 3}, 64<<10)
	cl := r.fs.NewClient(r.cliHost[0], 0)
	r.e.Spawn("w", func(p *sim.Proc) { cl.Write(p, f, 0, 1<<20) })
	r.e.Run()
	if r.devs[0].Stats().Bytes != 0 || r.devs[2].Stats().Bytes != 0 {
		t.Fatal("untargeted servers received data")
	}
	if r.devs[1].Stats().Bytes+r.devs[3].Stats().Bytes != 1<<20 {
		t.Fatal("targeted servers did not receive all data")
	}
}

func TestReadPathReturnsData(t *testing.T) {
	r := buildRig(2, 1, "ram", SyncOn)
	f := r.fs.CreateFile("f", nil, 64<<10)
	cl := r.fs.NewClient(r.cliHost[0], 0)
	var wrote, read sim.Time
	r.e.Spawn("rw", func(p *sim.Proc) {
		start := p.Now()
		cl.Write(p, f, 0, 2<<20)
		wrote = p.Now() - start
		start = p.Now()
		cl.Read(p, f, 0, 2<<20)
		read = p.Now() - start
	})
	r.e.Run()
	if wrote <= 0 || read <= 0 {
		t.Fatalf("wrote=%v read=%v", wrote, read)
	}
	// The read must have hit the devices.
	var readOps int64
	for _, d := range r.devs {
		readOps += d.Stats().Ops
	}
	if readOps == 0 {
		t.Fatal("no device ops for read")
	}
}

func TestFlowSlotBackpressure(t *testing.T) {
	// More concurrent requests than flow slots: a request backlog must form
	// (the Trove bottleneck) and fully drain by the end.
	r := buildRig(1, 4, "hdd", SyncOn)
	f := r.fs.CreateFile("f", nil, 64<<10)
	for i := 0; i < 4; i++ {
		cl := r.fs.NewClient(r.cliHost[i], 0)
		base := int64(i) * (64 << 20)
		r.e.Spawn("w", func(p *sim.Proc) {
			// Each client issues 16 sequential 1 MiB writes: 64 requests
			// against 16 flow slots over the run.
			for k := int64(0); k < 16; k++ {
				cl.Write(p, f, base+k<<20, 1<<20)
			}
		})
	}
	r.e.Run()
	srv := r.fs.Servers[0]
	if srv.Stats().MaxQueued == 0 {
		t.Fatal("no request backlog ever formed")
	}
	if srv.FreeFlows() != srv.P.FlowBufs {
		t.Fatalf("flow slots leaked: %d free of %d", srv.FreeFlows(), srv.P.FlowBufs)
	}
	if srv.QueuedRequests() != 0 {
		t.Fatalf("request backlog not drained: %d", srv.QueuedRequests())
	}
}

func TestRepliesCounted(t *testing.T) {
	r := buildRig(3, 1, "ram", SyncOn)
	f := r.fs.CreateFile("f", nil, 64<<10)
	cl := r.fs.NewClient(r.cliHost[0], 0)
	r.e.Spawn("w", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			cl.Write(p, f, int64(i)<<20, 1<<20)
		}
	})
	r.e.Run()
	var replies int64
	for _, s := range r.fs.Servers {
		replies += s.Stats().Replies
	}
	// Each 1 MiB write at 64 KiB stripe on 3 servers touches all 3.
	if replies != 15 {
		t.Fatalf("replies = %d, want 15", replies)
	}
}

// Property: arbitrary batches of writes complete and conserve bytes on the
// devices (sync on, RAM backend).
func TestPropertyWritesConserveBytes(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) > 12 {
			sizes = sizes[:12]
		}
		r := buildRig(3, 1, "ram", SyncOn)
		file := r.fs.CreateFile("f", nil, 16<<10)
		cl := r.fs.NewClient(r.cliHost[0], 0)
		var want int64
		done := 0
		r.e.Spawn("w", func(p *sim.Proc) {
			off := int64(0)
			for _, s := range sizes {
				size := int64(s) + 1
				want += size
				cl.Write(p, file, off, size)
				off += size + 512 // leave gaps
				done++
			}
		})
		r.e.Run()
		var stored int64
		for _, d := range r.devs {
			stored += d.Stats().Bytes
		}
		return done == len(sizes) && stored == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSyncModeString(t *testing.T) {
	if SyncOn.String() != "sync-on" || SyncOff.String() != "sync-off" || NullAIO.String() != "null-aio" {
		t.Fatal("SyncMode.String")
	}
	if SyncMode(99).String() != "unknown" {
		t.Fatal("unknown mode")
	}
}
