package pfs

import (
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Client is one application process using the file system. Clients on the
// same node share that node's Host (and therefore its NIC) — the paper's
// network-interface contention point.
type Client struct {
	ID   int
	App  int // application tag (0 or 1 in two-application experiments)
	Rank int // rank within the application (set by the experiment layer)
	Host *netsim.Host

	fs       *FileSystem
	conns    map[int]*netsim.Conn // server ID -> connection
	inflight int32                // outstanding requests (observed queue depth)
}

// NewClient registers a client process running on host for application app.
func (fs *FileSystem) NewClient(host *netsim.Host, app int) *Client {
	fs.nextClient++
	return &Client{
		ID:    fs.nextClient,
		App:   app,
		Host:  host,
		fs:    fs,
		conns: make(map[int]*netsim.Conn),
	}
}

// ConnTo returns (dialing lazily) the connection to srv. PVFS keeps one
// BMI/TCP connection per client-server pair; so do we — the connection
// count is the incast fan-in. Probes use it to attach window traces before
// a run.
func (cl *Client) ConnTo(srv *Server) *netsim.Conn {
	if c, ok := cl.conns[srv.ID]; ok {
		return c
	}
	c := cl.fs.Fabric.Dial(cl.Host, srv.Host, cl.App)
	c.OnReadable = srv.onReadable
	c.OnReply = func(meta interface{}) {
		r := meta.(*replyMsg)
		if r.st != nil && r.st.sub != nil {
			r.st.sub.reply(r.st)
			return
		}
		r.req.replied()
	}
	cl.conns[srv.ID] = c
	return c
}

// Conns returns the client's dialed connections (for probes).
func (cl *Client) Conns() map[int]*netsim.Conn { return cl.conns }

// WriteAsync issues a write of [off, off+size) on f and calls onDone when
// every involved server has acknowledged. It is the building block for
// pipelined request streams.
func (cl *Client) WriteAsync(f *File, off, size int64, onDone func()) {
	cl.ioAsync(f, off, size, false, onDone)
}

// ReadAsync issues a read of [off, off+size) on f; onDone fires when all
// data chunks have been returned. (Read workloads are the paper's stated
// future work; the path mirrors writes with data on the reply direction.)
func (cl *Client) ReadAsync(f *File, off, size int64, onDone func()) {
	cl.ioAsync(f, off, size, true, onDone)
}

// Outstanding returns the client's in-flight request count (observed queue
// depth, the QD field of its trace records).
func (cl *Client) Outstanding() int { return int(cl.inflight) }

func (cl *Client) ioAsync(f *File, off, size int64, read bool, onDone func()) {
	perSrv := f.layout.PerServer(off, size)
	req := &clientReq{onDone: onDone, recIdx: -1}

	type srvPlan struct {
		pos    int
		chunks []Run
	}
	var plans []srvPlan
	for pos, runs := range perSrv {
		if len(runs) == 0 {
			continue
		}
		flow := f.servers[pos].P.FlowBufSize
		var chunks []Run
		for _, r := range runs {
			for o := int64(0); o < r.Size; o += flow {
				n := flow
				if rem := r.Size - o; rem < n {
					n = rem
				}
				chunks = append(chunks, Run{Local: r.Local + o, Size: n})
			}
		}
		plans = append(plans, srvPlan{pos: pos, chunks: chunks})
	}
	if len(plans) == 0 {
		cl.fs.E.Schedule(0, onDone)
		return
	}
	req.cl = cl
	cl.inflight++
	if s := cl.fs.Sink; s != nil {
		srv := int32(-1)
		if len(plans) == 1 {
			srv = int32(f.servers[plans[0].pos].ID)
		}
		op := OpWrite
		if read {
			op = OpRead
		}
		req.recIdx = s.BeginRequest(IORecord{
			Time: cl.fs.E.Now(), Off: off, Bytes: size,
			App: int32(cl.App), Rank: int32(cl.Rank), Server: srv,
			QD: cl.inflight, Op: op,
		})
	}
	// Writes: one reply per server. Reads: one reply per chunk (each reply
	// carries a chunk of data).
	if read {
		for _, p := range plans {
			req.remaining += len(p.chunks)
		}
	} else {
		req.remaining = len(plans)
	}
	for _, p := range plans {
		srv := f.servers[p.pos]
		conn := cl.ConnTo(srv)
		var bytes int64
		for _, ck := range p.chunks {
			bytes += ck.Size
		}
		st := &srvReqState{
			remaining: len(p.chunks), bytes: bytes,
			issued: cl.fs.jitteredIssue(),
			issueAt: cl.fs.E.Now(), read: read,
		}
		for _, ck := range p.chunks {
			meta := &chunkMsg{
				req: req, srvState: st, fileID: f.locals[p.pos],
				local: ck.Local, size: ck.Size, read: read,
			}
			wire := ck.Size
			if read {
				wire = reqDescriptorBytes // only the descriptor goes out
			}
			conn.Send(&netsim.Message{Size: wire, Meta: meta})
		}
	}
}

// reqDescriptorBytes is the wire size of a read request descriptor.
const reqDescriptorBytes = 128

// Write performs a blocking write from within a simulated process.
func (cl *Client) Write(p *sim.Proc, f *File, off, size int64) {
	var done sim.Signal
	cl.WriteAsync(f, off, size, func() { done.Fire(cl.fs.E) })
	p.Await(&done)
}

// Read performs a blocking read from within a simulated process.
func (cl *Client) Read(p *sim.Proc, f *File, off, size int64) {
	var done sim.Signal
	cl.ReadAsync(f, off, size, func() { done.Fire(cl.fs.E) })
	p.Await(&done)
}
