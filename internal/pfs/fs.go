package pfs

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/storage"
)

// FileSystem ties a set of storage servers into one deployment and hands
// out files and clients. It corresponds to one mounted PVFS volume.
type FileSystem struct {
	E       *sim.Engine
	Fabric  *netsim.Fabric
	Servers []*Server

	// Rand and IssueJitter model network/scheduling noise: each request's
	// per-server queue position is perturbed by up to IssueJitter. This
	// decorrelates the service order across servers — the reason a request
	// striped over many servers completes at the pace of its slowest
	// server (the paper's stripe-size and request-size effects, §IV-A6/7).
	Rand        *sim.Rand
	IssueJitter sim.Time

	// Sink, when non-nil, receives one request-level trace record per
	// client request (see IORecord). nil — the default — keeps the request
	// path record-free; internal/trace attaches its Recorder here.
	Sink IOSink

	// Retry, when non-nil, is the deployment's client RPC retry policy
	// (installed by EnableRetry). nil keeps the legacy no-deadline request
	// path bit-identical to a pre-fault deployment.
	Retry *fault.RetryPolicy

	nextClient int
	avail      []ClientAvail // per-application client-side availability
	budget     []int64       // per-application remaining retry budget
}

// EnableRetry installs the client RPC retry policy (defaults applied).
func (fs *FileSystem) EnableRetry(rp fault.RetryPolicy) {
	p := rp.WithDefaults()
	fs.Retry = &p
}

// growApp ensures the per-application availability state covers app.
func (fs *FileSystem) growApp(app int) {
	for len(fs.avail) <= app {
		fs.avail = append(fs.avail, ClientAvail{})
		b := int64(0)
		if fs.Retry != nil {
			b = fs.Retry.Budget
		}
		fs.budget = append(fs.budget, b)
	}
}

// noteTimeout counts one sub-request deadline expiry for app.
func (fs *FileSystem) noteTimeout(app int) {
	fs.growApp(app)
	fs.avail[app].Timeouts++
}

// noteFailure counts one sub-request giving up with ErrUnavailable.
func (fs *FileSystem) noteFailure(app int) {
	fs.growApp(app)
	fs.avail[app].Failures++
}

// takeRetry consumes one unit of app's retry budget, counting the resend.
// A non-positive configured budget is unlimited.
func (fs *FileSystem) takeRetry(app int) bool {
	fs.growApp(app)
	if fs.Retry != nil && fs.Retry.Budget > 0 {
		if fs.budget[app] <= 0 {
			return false
		}
		fs.budget[app]--
	}
	fs.avail[app].Retries++
	return true
}

// AvailApps returns how many application IDs have client-side availability
// state.
func (fs *FileSystem) AvailApps() int { return len(fs.avail) }

// ClientAvailFor returns app's client-side availability counters (zero
// value if unobserved).
func (fs *FileSystem) ClientAvailFor(app int) ClientAvail {
	if app < 0 || app >= len(fs.avail) {
		return ClientAvail{}
	}
	return fs.avail[app]
}

// TotalClientAvail sums the client-side availability counters over all
// applications.
func (fs *FileSystem) TotalClientAvail() ClientAvail {
	var t ClientAvail
	for _, a := range fs.avail {
		t.Timeouts += a.Timeouts
		t.Retries += a.Retries
		t.Failures += a.Failures
	}
	return t
}

// jitteredIssue returns the request's queue-ordering timestamp for one
// server.
func (fs *FileSystem) jitteredIssue() sim.Time {
	t := fs.E.Now()
	if fs.Rand != nil && fs.IssueJitter > 0 {
		t += sim.Time(fs.Rand.Int63n(int64(fs.IssueJitter)))
	}
	return t
}

// NewFileSystem assembles a deployment from already-built servers.
func NewFileSystem(e *sim.Engine, fabric *netsim.Fabric, servers []*Server) *FileSystem {
	return &FileSystem{E: e, Fabric: fabric, Servers: servers}
}

// File is a striped file. Its data is distributed round-robin over a fixed
// list of servers (possibly a subset of the deployment — the paper's
// "targeted servers" experiment partitions servers between applications).
type File struct {
	Name    string
	fs      *FileSystem
	servers []*Server
	layout  Layout
	locals  []storage.FileID // per server position
}

// CreateFile creates a file striped over the servers at the given indexes
// with the given stripe size. A nil or empty index list means all servers.
func (fs *FileSystem) CreateFile(name string, serverIdx []int, stripe int64) *File {
	if stripe <= 0 {
		panic("pfs: stripe must be positive")
	}
	if len(serverIdx) == 0 {
		serverIdx = make([]int, len(fs.Servers))
		for i := range serverIdx {
			serverIdx[i] = i
		}
	}
	f := &File{
		Name:    name,
		fs:      fs,
		servers: make([]*Server, len(serverIdx)),
		layout:  Layout{Width: len(serverIdx), Stripe: stripe},
		locals:  make([]storage.FileID, len(serverIdx)),
	}
	for pos, idx := range serverIdx {
		if idx < 0 || idx >= len(fs.Servers) {
			panic(fmt.Sprintf("pfs: server index %d out of range", idx))
		}
		f.servers[pos] = fs.Servers[idx]
		f.locals[pos] = fs.Servers[idx].newFileID()
	}
	return f
}

// Layout returns the file's striping parameters.
func (f *File) Layout() Layout { return f.layout }

// Servers returns the servers the file is striped over.
func (f *File) Servers() []*Server { return f.servers }
