package pfs

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/storage"
)

// FileSystem ties a set of storage servers into one deployment and hands
// out files and clients. It corresponds to one mounted PVFS volume.
type FileSystem struct {
	E       *sim.Engine
	Fabric  *netsim.Fabric
	Servers []*Server

	// Rand and IssueJitter model network/scheduling noise: each request's
	// per-server queue position is perturbed by up to IssueJitter. This
	// decorrelates the service order across servers — the reason a request
	// striped over many servers completes at the pace of its slowest
	// server (the paper's stripe-size and request-size effects, §IV-A6/7).
	Rand        *sim.Rand
	IssueJitter sim.Time

	// Sink, when non-nil, receives one request-level trace record per
	// client request (see IORecord). nil — the default — keeps the request
	// path record-free; internal/trace attaches its Recorder here.
	Sink IOSink

	nextClient int
}

// jitteredIssue returns the request's queue-ordering timestamp for one
// server.
func (fs *FileSystem) jitteredIssue() sim.Time {
	t := fs.E.Now()
	if fs.Rand != nil && fs.IssueJitter > 0 {
		t += sim.Time(fs.Rand.Int63n(int64(fs.IssueJitter)))
	}
	return t
}

// NewFileSystem assembles a deployment from already-built servers.
func NewFileSystem(e *sim.Engine, fabric *netsim.Fabric, servers []*Server) *FileSystem {
	return &FileSystem{E: e, Fabric: fabric, Servers: servers}
}

// File is a striped file. Its data is distributed round-robin over a fixed
// list of servers (possibly a subset of the deployment — the paper's
// "targeted servers" experiment partitions servers between applications).
type File struct {
	Name    string
	fs      *FileSystem
	servers []*Server
	layout  Layout
	locals  []storage.FileID // per server position
}

// CreateFile creates a file striped over the servers at the given indexes
// with the given stripe size. A nil or empty index list means all servers.
func (fs *FileSystem) CreateFile(name string, serverIdx []int, stripe int64) *File {
	if stripe <= 0 {
		panic("pfs: stripe must be positive")
	}
	if len(serverIdx) == 0 {
		serverIdx = make([]int, len(fs.Servers))
		for i := range serverIdx {
			serverIdx[i] = i
		}
	}
	f := &File{
		Name:    name,
		fs:      fs,
		servers: make([]*Server, len(serverIdx)),
		layout:  Layout{Width: len(serverIdx), Stripe: stripe},
		locals:  make([]storage.FileID, len(serverIdx)),
	}
	for pos, idx := range serverIdx {
		if idx < 0 || idx >= len(fs.Servers) {
			panic(fmt.Sprintf("pfs: server index %d out of range", idx))
		}
		f.servers[pos] = fs.Servers[idx]
		f.locals[pos] = fs.Servers[idx].newFileID()
	}
	return f
}

// Layout returns the file's striping parameters.
func (f *File) Layout() Layout { return f.layout }

// Servers returns the servers the file is striped over.
func (f *File) Servers() []*Server { return f.servers }
