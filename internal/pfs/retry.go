package pfs

import (
	"errors"

	"repro/internal/fault"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/storage"
)

// ErrUnavailable is returned by the retrying RPC path when a request's
// retries against some server are exhausted (deadline expirations beyond
// MaxRetries, or the application's retry budget ran dry). The caller is
// expected to stall and re-issue — see fault.RetryPolicy.Resume.
var ErrUnavailable = errors.New("pfs: service unavailable")

// ClientAvail are one application's client-side availability counters:
// request deadline expirations, the resends they triggered, and the
// sub-requests that gave up with ErrUnavailable.
type ClientAvail struct {
	Timeouts int64
	Retries  int64
	Failures int64
}

// subOp event ops (subOp implements sim.Target: op selects deadline fire
// vs. scheduled resend; `a` carries the attempt number so stale events —
// from attempts already answered or superseded — are recognized and
// dropped. Timers are never cancelled, only outlived, which keeps the
// retry machinery allocation-free: arming is a plain engine event with no
// closure).
const (
	opDeadline = iota
	opResend
)

// subOp is one retrying request's share on one server: the unit of
// deadline/retry. The client sends the sub-request's chunks, arms a
// deadline, and on expiry resends everything under a fresh srvReqState with
// capped exponential backoff. Replies are accepted from ANY attempt — a
// slow-but-alive server's late replies still complete the sub-request, so
// an overloaded (not crashed) server cannot livelock the client into
// retrying forever.
type subOp struct {
	req    *clientReq
	cl     *Client
	conn   *netsim.Conn
	fileID storage.FileID
	chunks []Run
	bytes  int64
	read   bool
	expect int // replies that complete one attempt

	st      *srvReqState // current (latest) attempt
	attempt int64
	backoff sim.Time
	done    bool
}

// rp returns the deployment's retry policy (EnableRetry installed it).
func (so *subOp) rp() *fault.RetryPolicy { return so.cl.fs.Retry }

// send transmits one attempt: a fresh wire-visible request state (the
// previous attempt's may be dead at the server) and all chunks, then arms
// the attempt's deadline.
func (so *subOp) send() {
	fs := so.cl.fs
	st := &srvReqState{
		remaining: len(so.chunks), bytes: so.bytes,
		issued: fs.jitteredIssue(), sub: so,
		issueAt: fs.E.Now(), read: so.read,
	}
	so.st = st
	for i := range so.chunks {
		ck := so.chunks[i]
		meta := &chunkMsg{
			req: so.req, srvState: st, fileID: so.fileID,
			local: ck.Local, size: ck.Size, read: so.read,
		}
		wire := ck.Size
		if so.read {
			wire = reqDescriptorBytes
		}
		so.conn.Send(&netsim.Message{Size: wire, Meta: meta})
	}
	fs.E.AtCall(fs.E.Now()+so.rp().Deadline, so, opDeadline, so.attempt, 0)
}

// reply accounts one reply answering attempt st. Completion is per
// attempt: whichever attempt first accumulates the expected replies wins.
func (so *subOp) reply(st *srvReqState) {
	st.cgot++
	if so.done || st.cgot < so.expect {
		return
	}
	so.done = true
	so.req.subDone()
}

// OnEvent implements sim.Target: deadline expiry and scheduled resends.
func (so *subOp) OnEvent(op uint32, a, b int64) {
	if so.done || a != so.attempt {
		return // stale: answered, or superseded by a newer attempt
	}
	fs := so.cl.fs
	rp := so.rp()
	switch op {
	case opDeadline:
		fs.noteTimeout(so.cl.App)
		if so.attempt >= int64(rp.MaxRetries) || !fs.takeRetry(so.cl.App) {
			so.done = true
			fs.noteFailure(so.cl.App)
			so.req.err = ErrUnavailable
			so.req.subDone()
			return
		}
		so.attempt++
		fs.E.AtCall(fs.E.Now()+so.backoff, so, opResend, so.attempt, 0)
		so.backoff *= 2
		if so.backoff > rp.BackoffMax {
			so.backoff = rp.BackoffMax
		}
	case opResend:
		so.send()
	}
}

// ioRetry is the retrying twin of ioAsync: same striping and chunking, but
// each server's share becomes a subOp with deadline/backoff/retry, and the
// completion callback carries an error (nil, or ErrUnavailable when some
// share exhausted its retries).
func (cl *Client) ioRetry(f *File, off, size int64, read bool, onErr func(error)) {
	perSrv := f.layout.PerServer(off, size)
	req := &clientReq{onErr: onErr, recIdx: -1}

	type srvPlan struct {
		pos    int
		chunks []Run
	}
	var plans []srvPlan
	for pos, runs := range perSrv {
		if len(runs) == 0 {
			continue
		}
		flow := f.servers[pos].P.FlowBufSize
		var chunks []Run
		for _, r := range runs {
			for o := int64(0); o < r.Size; o += flow {
				n := flow
				if rem := r.Size - o; rem < n {
					n = rem
				}
				chunks = append(chunks, Run{Local: r.Local + o, Size: n})
			}
		}
		plans = append(plans, srvPlan{pos: pos, chunks: chunks})
	}
	if len(plans) == 0 {
		cl.fs.E.Schedule(0, func() { onErr(nil) })
		return
	}
	req.cl = cl
	cl.inflight++
	if s := cl.fs.Sink; s != nil {
		srv := int32(-1)
		if len(plans) == 1 {
			srv = int32(f.servers[plans[0].pos].ID)
		}
		op := OpWrite
		if read {
			op = OpRead
		}
		req.recIdx = s.BeginRequest(IORecord{
			Time: cl.fs.E.Now(), Off: off, Bytes: size,
			App: int32(cl.App), Rank: int32(cl.Rank), Server: srv,
			QD: cl.inflight, Op: op,
		})
	}
	req.remaining = len(plans) // one subDone per server share
	req.subs = make([]subOp, len(plans))
	rp := cl.fs.Retry
	for i, p := range plans {
		srv := f.servers[p.pos]
		var bytes int64
		for _, ck := range p.chunks {
			bytes += ck.Size
		}
		expect := 1 // writes: one reply per server share
		if read {
			expect = len(p.chunks) // reads: one data reply per chunk
		}
		so := &req.subs[i]
		*so = subOp{
			req: req, cl: cl, conn: cl.ConnTo(srv),
			fileID: f.locals[p.pos], chunks: p.chunks, bytes: bytes,
			read: read, expect: expect, backoff: rp.Backoff,
		}
		so.send()
	}
}

// WriteAsyncRetry issues a write on the retrying RPC path; onErr fires once
// with nil on success or ErrUnavailable when retries were exhausted.
// Requires FileSystem.EnableRetry.
func (cl *Client) WriteAsyncRetry(f *File, off, size int64, onErr func(error)) {
	cl.ioRetry(f, off, size, false, onErr)
}

// ReadAsyncRetry is the read twin of WriteAsyncRetry.
func (cl *Client) ReadAsyncRetry(f *File, off, size int64, onErr func(error)) {
	cl.ioRetry(f, off, size, true, onErr)
}

// WriteRetry performs a blocking write on the retrying RPC path.
func (cl *Client) WriteRetry(p *sim.Proc, f *File, off, size int64) error {
	var done sim.Signal
	var err error
	cl.WriteAsyncRetry(f, off, size, func(e error) { err = e; done.Fire(cl.fs.E) })
	p.Await(&done)
	return err
}

// ReadRetry performs a blocking read on the retrying RPC path.
func (cl *Client) ReadRetry(p *sim.Proc, f *File, off, size int64) error {
	var done sim.Signal
	var err error
	cl.ReadAsyncRetry(f, off, size, func(e error) { err = e; done.Fire(cl.fs.E) })
	p.Await(&done)
	return err
}

// Retrying reports whether the deployment has a retry policy installed
// (workload drivers switch to the retrying path when it does).
func (cl *Client) Retrying() bool { return cl.fs.Retry != nil }

// RetryPolicy returns the deployment's retry policy (nil when retry is
// off).
func (cl *Client) RetryPolicy() *fault.RetryPolicy { return cl.fs.Retry }
