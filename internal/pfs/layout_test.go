package pfs

import (
	"testing"
	"testing/quick"
)

func TestLayoutMapSingleStripe(t *testing.T) {
	l := Layout{Width: 4, Stripe: 64 << 10}
	p := l.Map(0, 64<<10)
	if len(p) != 1 || p[0].SrvPos != 0 || p[0].Local != 0 || p[0].Size != 64<<10 {
		t.Fatalf("pieces = %+v", p)
	}
}

func TestLayoutMapRoundRobin(t *testing.T) {
	l := Layout{Width: 3, Stripe: 100}
	p := l.Map(0, 350)
	want := []Piece{
		{SrvPos: 0, Local: 0, Size: 100},
		{SrvPos: 1, Local: 0, Size: 100},
		{SrvPos: 2, Local: 0, Size: 100},
		{SrvPos: 0, Local: 100, Size: 50},
	}
	if len(p) != len(want) {
		t.Fatalf("pieces = %+v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("piece %d = %+v, want %+v", i, p[i], want[i])
		}
	}
}

func TestLayoutMapUnalignedStart(t *testing.T) {
	l := Layout{Width: 2, Stripe: 100}
	p := l.Map(150, 100)
	want := []Piece{
		{SrvPos: 1, Local: 50, Size: 50},  // stripe 1 -> server 1, local stripe 0
		{SrvPos: 0, Local: 100, Size: 50}, // stripe 2 -> server 0, local stripe 1
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("piece %d = %+v, want %+v", i, p[i], want[i])
		}
	}
}

func TestLayoutPerServerMergesContiguous(t *testing.T) {
	// A full-width-aligned extent is contiguous on every server.
	l := Layout{Width: 4, Stripe: 64 << 10}
	size := int64(8 << 20) // 128 stripes, 32 per server
	runs := l.PerServer(0, size)
	for pos, rs := range runs {
		if len(rs) != 1 {
			t.Fatalf("server %d has %d runs, want 1: %+v", pos, len(rs), rs)
		}
		if rs[0].Size != size/4 {
			t.Fatalf("server %d run size = %d, want %d", pos, rs[0].Size, size/4)
		}
		if rs[0].Local != 0 {
			t.Fatalf("server %d local = %d", pos, rs[0].Local)
		}
	}
}

func TestLayoutStridedLeavesHoles(t *testing.T) {
	// 256 KB blocks with 256 KB gaps, 64 KB stripes, 4 servers: each block
	// touches each server once; consecutive blocks of the same writer are
	// NOT contiguous locally (the gap maps to the same servers).
	l := Layout{Width: 4, Stripe: 64 << 10}
	a := l.PerServer(0, 256<<10)
	b := l.PerServer(512<<10, 256<<10)
	for pos := 0; pos < 4; pos++ {
		if len(a[pos]) != 1 || len(b[pos]) != 1 {
			t.Fatalf("runs per block: %v %v", a[pos], b[pos])
		}
		if a[pos][0].Local+a[pos][0].Size == b[pos][0].Local {
			t.Fatalf("server %d: blocks unexpectedly contiguous", pos)
		}
	}
}

func TestServersTouched(t *testing.T) {
	l := Layout{Width: 12, Stripe: 64 << 10}
	// The paper's request-size observation: a 256 KB request touches 4
	// servers at 64 KB stripes; a 64 KB request touches 1.
	if got := l.ServersTouched(0, 256<<10); got != 4 {
		t.Fatalf("256KB request touches %d servers, want 4", got)
	}
	if got := l.ServersTouched(0, 64<<10); got != 1 {
		t.Fatalf("64KB request touches %d servers, want 1", got)
	}
	// And with a 256 KB stripe, a 256 KB aligned request touches 1.
	l2 := Layout{Width: 12, Stripe: 256 << 10}
	if got := l2.ServersTouched(0, 256<<10); got != 1 {
		t.Fatalf("256KB request at 256KB stripe touches %d, want 1", got)
	}
}

// Property: pieces tile the extent exactly — sizes sum to the extent, each
// piece's global position round-trips through the (server, local) mapping,
// and pieces are in file order.
func TestPropertyLayoutRoundTrip(t *testing.T) {
	f := func(width8 uint8, stripe16 uint16, off32, size32 uint32) bool {
		width := int(width8%16) + 1
		stripe := int64(stripe16%4096) + 1
		off := int64(off32 % (1 << 22))
		size := int64(size32 % (1 << 20))
		l := Layout{Width: width, Stripe: stripe}
		pieces := l.Map(off, size)
		var sum int64
		cur := off
		for _, p := range pieces {
			sum += p.Size
			// Invert the mapping: global = (local/stripe*width + srvPos)*stripe + local%stripe.
			g := (p.Local/stripe)*int64(width) + int64(p.SrvPos)
			global := g*stripe + p.Local%stripe
			if global != cur {
				return false
			}
			cur += p.Size
		}
		return sum == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: PerServer conserves bytes and runs never overlap on a server.
func TestPropertyPerServerConserves(t *testing.T) {
	f := func(width8 uint8, stripe16 uint16, off32, size32 uint32) bool {
		width := int(width8%12) + 1
		stripe := int64(stripe16%2048) + 1
		off := int64(off32 % (1 << 20))
		size := int64(size32 % (1 << 18))
		l := Layout{Width: width, Stripe: stripe}
		var sum int64
		for _, rs := range l.PerServer(off, size) {
			var prevEnd int64 = -1
			for _, r := range rs {
				if r.Size <= 0 || r.Local < 0 {
					return false
				}
				if prevEnd >= 0 && r.Local < prevEnd {
					return false // overlap or disorder
				}
				prevEnd = r.Local + r.Size
				sum += r.Size
			}
		}
		return sum == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Layout{Width: 0, Stripe: 1}.Map(0, 1) },
		func() { Layout{Width: 1, Stripe: 0}.Map(0, 1) },
		func() { Layout{Width: 1, Stripe: 1}.Map(-1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
