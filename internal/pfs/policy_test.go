package pfs

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/storage"
)

// policyRig builds one slow-disk server with the given scheduling policy
// and two single-client applications, B delayed by delta. It returns each
// application's completion time. The single flow slot (FlowBufs=1,
// a construction-time ServerParams knob) serializes requests so the
// scheduling order is visible in the completion times.
func policyRig(t *testing.T, pol ReadPolicy, delta sim.Time) (aDone, bDone sim.Time) {
	t.Helper()
	sp := DefaultServerParams()
	sp.Policy = pol
	sp.FlowBufs = 1
	r := buildRigParams(1, 2, "hdd", sp)

	fA := r.fs.CreateFile("a", nil, 64<<10)
	fB := r.fs.CreateFile("b", nil, 64<<10)
	clA := r.fs.NewClient(r.cliHost[0], 0)
	clB := r.fs.NewClient(r.cliHost[1], 1)

	r.e.Spawn("A", func(p *sim.Proc) {
		for i := int64(0); i < 8; i++ {
			clA.Write(p, fA, i<<20, 1<<20)
		}
		aDone = p.Now()
	})
	r.e.SpawnAt(delta, "B", func(p *sim.Proc) {
		for i := int64(0); i < 8; i++ {
			clB.Write(p, fB, i<<20, 1<<20)
		}
		bDone = p.Now()
	})
	r.e.Run()
	return aDone, bDone
}

func TestPolicyFIFOFavorsFirst(t *testing.T) {
	aDone, bDone := policyRig(t, ReadFIFO, 10*sim.Millisecond)
	if aDone >= bDone {
		t.Fatalf("FIFO: first application should finish first (A=%v B=%v)", aDone, bDone)
	}
}

func TestPolicyAppOrderedPrefersLowApp(t *testing.T) {
	// Even when B starts first, app-ordered servers prefer app 0.
	// (B issues its first request before A exists, so B's initial request
	// may slip in, but A must still finish well before B.)
	sp := DefaultServerParams()
	sp.Policy = ReadAppOrdered
	sp.FlowBufs = 1
	r := buildRigParams(1, 2, "hdd", sp)
	fA := r.fs.CreateFile("a", nil, 64<<10)
	fB := r.fs.CreateFile("b", nil, 64<<10)
	clA := r.fs.NewClient(r.cliHost[0], 0)
	clB := r.fs.NewClient(r.cliHost[1], 1)
	var aDone, bDone sim.Time
	r.e.SpawnAt(5*sim.Millisecond, "A", func(p *sim.Proc) {
		for i := int64(0); i < 6; i++ {
			clA.Write(p, fA, i<<20, 1<<20)
		}
		aDone = p.Now()
	})
	r.e.Spawn("B", func(p *sim.Proc) {
		for i := int64(0); i < 6; i++ {
			clB.Write(p, fB, i<<20, 1<<20)
		}
		bDone = p.Now()
	})
	r.e.Run()
	// With QD=1 clients the slot idles between an application's requests
	// and the other fills the gap, so strict priority shows up as parity:
	// A must not trail despite entering second (FIFO would make it trail
	// by the full head start).
	if aDone > bDone+30*sim.Millisecond {
		t.Fatalf("app-ordered: app 0 should not trail (A=%v B=%v)", aDone, bDone)
	}
}

func TestPolicyRoundRobinInterleaves(t *testing.T) {
	// Round-robin should give near-equal completion under equal load.
	aDone, bDone := policyRig(t, ReadRoundRobin, 10*sim.Millisecond)
	ratio := float64(bDone) / float64(aDone)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("round-robin should co-schedule apps: A=%v B=%v (ratio %.2f)", aDone, bDone, ratio)
	}
}

func TestJitterIsDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) sim.Time {
		r := buildRig(2, 1, "ram", SyncOn)
		r.fs.Rand = sim.NewRand(seed)
		r.fs.IssueJitter = 4 * sim.Millisecond
		f := r.fs.CreateFile("f", nil, 64<<10)
		cl := r.fs.NewClient(r.cliHost[0], 0)
		var done sim.Time
		r.e.Spawn("w", func(p *sim.Proc) {
			for i := int64(0); i < 4; i++ {
				cl.Write(p, f, i<<20, 1<<20)
			}
			done = p.Now()
		})
		r.e.Run()
		return done
	}
	if run(7) != run(7) {
		t.Fatal("same seed produced different results")
	}
}

// TestServerStallInjection freezes the device mid-run (a hung disk): the
// system must not lose requests — they complete once the device resumes.
func TestServerStallInjection(t *testing.T) {
	e := sim.NewEngine()
	// A device wrapper that holds requests during the stall window.
	dev := storage.NewRAM(e, storage.DefaultRAM())
	stall := &stallDevice{Device: dev, e: e, from: 5 * sim.Millisecond, until: 200 * sim.Millisecond}
	fab := netsim.NewFabric(e, netsim.DefaultParams())
	srvHost := fab.NewHost("srv", 1.25e9, 0)
	cliHost := fab.NewHost("cli", 1.25e9, 0)
	sp := DefaultServerParams()
	srv := NewServer(e, 0, srvHost, stall, nil, sp)
	fs := NewFileSystem(e, fab, []*Server{srv})
	f := fs.CreateFile("f", nil, 64<<10)
	cl := fs.NewClient(cliHost, 0)
	var done sim.Time
	e.Spawn("w", func(p *sim.Proc) {
		for i := int64(0); i < 4; i++ {
			cl.Write(p, f, i<<20, 1<<20)
		}
		done = p.Now()
	})
	e.Run()
	if done < 200*sim.Millisecond {
		t.Fatalf("writes finished at %v, before the stall ended", done)
	}
	if stall.held != 0 {
		t.Fatalf("%d requests never released", stall.held)
	}
}

// stallDevice delays submissions that arrive during [from, until).
type stallDevice struct {
	storage.Device
	e     *sim.Engine
	from  sim.Time
	until sim.Time
	held  int
}

func (s *stallDevice) Submit(r *storage.Request) {
	now := s.e.Now()
	if now >= s.from && now < s.until {
		s.held++
		s.e.At(s.until, func() {
			s.held--
			s.Device.Submit(r)
		})
		return
	}
	s.Device.Submit(r)
}
