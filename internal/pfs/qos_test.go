package pfs

// Integration tests of the QoS subsystem at the server level: schedulers
// are configured through ServerParams.QoS at construction (the proper
// Params knob, like FlowBufs serialization in policy_test.go) and observed
// through completion times, telemetry and flow-slot accounting.

import (
	"testing"

	"repro/internal/qos"
	"repro/internal/sim"
)

// qosRig builds one slow-disk server under the given QoS configuration
// with one bulk application (app 0: two clients streaming eight 1 MiB
// blocking writes each) and one latency-bound application (app 1: one
// client, sixteen sequential 64 KiB writes into its own file), everything
// starting at t=0. A 1 ms sampler records the bulk application's largest
// observed in-flight chunk count while both applications have demand —
// the pipeline depth a DepthAdvisor clamps — and the smallest positive
// budget AppDepth reported for it (1<<30 when no advisor ever engaged).
// Returns that high-water mark, the budget low-water mark, and the rig.
func qosRig(t *testing.T, qp qos.Params) (int64, int, *rig) {
	t.Helper()
	sp := DefaultServerParams()
	sp.QoS = qp
	r := buildRigParams(1, 3, "hdd", sp)
	fA := r.fs.CreateFile("bulk", nil, 64<<10)
	fB := r.fs.CreateFile("small", nil, 64<<10)
	for i := 0; i < 2; i++ {
		cl := r.fs.NewClient(r.cliHost[i], 0)
		base := int64(i) << 23
		r.e.Spawn("bulk", func(p *sim.Proc) {
			for k := int64(0); k < 8; k++ {
				cl.Write(p, fA, base+k<<20, 1<<20)
			}
		})
	}
	clB := r.fs.NewClient(r.cliHost[2], 1)
	r.e.Spawn("small", func(p *sim.Proc) {
		for i := int64(0); i < 16; i++ {
			clB.Write(p, fB, i<<16, 64<<10)
		}
	})
	srv := r.fs.Servers[0]
	var peak int64
	minBudget := 1 << 30
	var sample func()
	sample = func() {
		if srv.Tel.DemandApps() >= 2 {
			if fl := srv.Tel.App(0).InFlight; fl > peak {
				peak = fl
			}
			if d := srv.AppDepth(0); d > 0 && d < minBudget {
				minBudget = d
			}
		}
		if srv.Tel.Queued()+srv.Tel.Active() > 0 {
			r.e.Schedule(sim.Millisecond, sample)
		}
	}
	r.e.Schedule(sim.Millisecond, sample)
	r.e.Run()
	if srv.FreeFlows() != srv.P.FlowBufs {
		t.Fatalf("flow slots leaked: %d free of %d", srv.FreeFlows(), srv.P.FlowBufs)
	}
	if srv.QueuedRequests() != 0 {
		t.Fatalf("request backlog not drained: %d", srv.QueuedRequests())
	}
	return peak, minBudget, r
}

// TestQoSFairShareClampsAggressorPipeline: under contention the fairshare
// budget must hold the bulk application to InflightChunks chunks in
// flight, where the FIFO baseline lets it pipeline far deeper — the
// device-backlog mechanism behind the aggressor-victim scenario's
// mitigation numbers.
func TestQoSFairShareClampsAggressorPipeline(t *testing.T) {
	off, _, _ := qosRig(t, qos.Params{})
	if off <= 4 {
		t.Fatalf("baseline rig never pipelines deeply (peak %d); the clamp test is vacuous", off)
	}
	fair, _, _ := qosRig(t, qos.Params{Kind: qos.FairShare})
	if fair > 4 {
		t.Fatalf("fairshare budget violated: bulk reached %d in-flight chunks, budget 4", fair)
	}
}

// soloWriter runs the shared single-application workload — one client
// streaming eight blocking 1 MiB writes — on a one-server rig with the
// given backend and QoS configuration, and returns its completion time.
func soloWriter(devKind string, qp qos.Params) sim.Time {
	sp := DefaultServerParams()
	sp.QoS = qp
	r := buildRigParams(1, 1, devKind, sp)
	f := r.fs.CreateFile("f", nil, 64<<10)
	cl := r.fs.NewClient(r.cliHost[0], 0)
	var done sim.Time
	r.e.Spawn("w", func(p *sim.Proc) {
		for i := int64(0); i < 8; i++ {
			cl.Write(p, f, i<<20, 1<<20)
		}
		done = p.Now()
	})
	r.e.Run()
	return done
}

// TestQoSFairShareAloneUnclamped: with a single application the budget
// clamp must not engage — the alone baseline is bit-identical to FIFO.
func TestQoSFairShareAloneUnclamped(t *testing.T) {
	off := soloWriter("hdd", qos.Params{})
	if fair := soloWriter("hdd", qos.Params{Kind: qos.FairShare}); fair != off {
		t.Fatalf("solo run differs under fairshare: %v vs %v", fair, off)
	}
}

// TestQoSTokenBucketCapsRate: a single writer is held to the configured
// per-application rate (modulo one burst), even though the backend (RAM)
// could absorb it instantly.
func TestQoSTokenBucketCapsRate(t *testing.T) {
	const rate, burst = 16e6, 1 << 20
	done := soloWriter("ram", qos.Params{Kind: qos.TokenBucket, RateBytesPerSec: rate, BurstBytes: burst})
	// 8 MiB at 16 MB/s with a 1 MiB head start: at least ~0.45 s.
	min := sim.Seconds((8<<20 - burst) / rate)
	if done < min {
		t.Fatalf("rate cap not enforced: finished at %v, floor %v", done, min)
	}
	// And the throttle must actually have idled the slot at least once: the
	// un-throttled run is far faster.
	if doneOff := soloWriter("ram", qos.Params{}); doneOff*4 > done {
		t.Fatalf("throttled run (%v) not clearly slower than open run (%v)", done, doneOff)
	}
}

// TestQoSControllerCompletesAndThrottles: the feedback controller must cut
// the aggressor's chunk budget below its ceiling at some point of the
// contended run, the run must still finish, and the controller's tick must
// disarm at idle so the event queue drains (a perpetual tick would keep
// Engine.Run from ever returning).
func TestQoSControllerCompletesAndThrottles(t *testing.T) {
	_, offBudget, _ := qosRig(t, qos.Params{})
	if offBudget != 1<<30 {
		t.Fatalf("FIFO baseline reports a budget (%d)", offBudget)
	}
	ceiling := qos.Defaults(qos.Controller).InflightChunks
	_, minBudget, r := qosRig(t, qos.Params{Kind: qos.Controller, Tick: sim.Millisecond})
	if minBudget >= ceiling {
		t.Fatalf("controller never cut the aggressor's budget below the %d ceiling (min %d)",
			ceiling, minBudget)
	}
	if r.e.Pending() != 0 {
		t.Fatalf("%d events still pending after Run (tick never disarmed?)", r.e.Pending())
	}
}

// TestQoSTelemetryCounters: the probe layer's per-application byte
// accounting must balance the workload exactly and drain to idle.
func TestQoSTelemetryCounters(t *testing.T) {
	_, _, r := qosRig(t, qos.Params{Kind: qos.FairShare})
	tel := r.fs.Servers[0].Tel
	if tel.Queued() != 0 || tel.Active() != 0 || tel.DemandApps() != 0 {
		t.Fatalf("telemetry not drained: queued %d active %d", tel.Queued(), tel.Active())
	}
	bulk, small := tel.App(0), tel.App(1)
	if bulk.BytesDone != 16<<20 || small.BytesDone != 16*(64<<10) {
		t.Fatalf("BytesDone wrong: bulk %d small %d", bulk.BytesDone, small.BytesDone)
	}
	if bulk.BytesIn != bulk.BytesDone || small.InFlight != 0 || bulk.InFlight != 0 {
		t.Fatalf("pipeline accounting wrong: %+v %+v", bulk, small)
	}
	if bulk.Requests != 16 || small.Requests != 16 {
		t.Fatalf("request counts wrong: bulk %d small %d", bulk.Requests, small.Requests)
	}
	if bulk.Granted != bulk.Requests || small.Granted != small.Requests {
		t.Fatalf("grants do not match requests: %+v %+v", bulk, small)
	}
}

// TestQoSFlowSlotsOverride: a QoS FlowSlots knob overrides the server's
// FlowBufs at construction — for active schedulers and for the Off
// baseline alike, so both arms of a comparison can be serialized the same
// way.
func TestQoSFlowSlotsOverride(t *testing.T) {
	for _, kind := range []qos.Kind{qos.FairShare, qos.Off} {
		sp := DefaultServerParams()
		sp.QoS = qos.Params{Kind: kind, FlowSlots: 3}
		r := buildRigParams(1, 1, "ram", sp)
		if got := r.fs.Servers[0].P.FlowBufs; got != 3 {
			t.Fatalf("%v: FlowBufs = %d, want 3", kind, got)
		}
		if got := r.fs.Servers[0].FreeFlows(); got != 3 {
			t.Fatalf("%v: FreeFlows = %d, want 3", kind, got)
		}
	}
}

// TestQoSInvalidParamsPanic: structurally broken QoS params fail loudly at
// server construction.
func TestQoSInvalidParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid QoS params")
		}
	}()
	sp := DefaultServerParams()
	sp.QoS = qos.Params{Kind: qos.FairShare, QuantumBytes: -1}
	buildRigParams(1, 1, "ram", sp)
}
