package pfs

import "repro/internal/sim"

// Span is the life of one request's share on one server, decomposed into
// the stages where interference can hide: the client issues at Issue, the
// first chunk is fully buffered at the server at Arrive (everything in
// between is network — transmission, NIC sharing, incast backoff), the
// request wins a flow slot at Grant (Arrive..Grant is server queue-wait,
// the flow-slot arbitration a QoS scheduler shapes), and the reply leaves
// at Reply (Grant..Reply is service: CPU, device, and the self-clocked
// remainder of the transfer). Requests killed by a server crash never
// reach Reply and emit no span; the client retry layer's fresh attempt
// does.
//
// Issue is stamped on the client's clock (shard 0), the other three on the
// owning server's clock. The sharded kernel's determinism contract makes
// all four bit-identical to the serial oracle at any shard count.
type Span struct {
	Issue  sim.Time
	Arrive sim.Time
	Grant  sim.Time
	Reply  sim.Time
	// Bytes is the request's data share on this server.
	Bytes int64
	// App and Server identify the flow.
	App    int32
	Server int32
	// Read marks a read request (data flows on the reply direction).
	Read bool
}

// Net is the issue-to-arrival stage: wire transmission plus everything the
// network layer did to the first chunk (NIC sharing, port drops, RTOs).
func (s Span) Net() sim.Time { return s.Arrive - s.Issue }

// Queue is the arrival-to-grant stage: time spent waiting for a flow slot.
func (s Span) Queue() sim.Time { return s.Grant - s.Arrive }

// Service is the grant-to-reply stage: CPU, device and the remaining
// (self-clocked) chunks of the transfer.
func (s Span) Service() sim.Time { return s.Reply - s.Grant }

// Total is the whole issue-to-reply latency of this server's share.
func (s Span) Total() sim.Time { return s.Reply - s.Issue }

// SpanSink receives one Span per completed request share, emitted on the
// owning server's shard at reply time. Implementations must be cheap and
// allocation-free: the hook sits on the per-request completion path (see
// internal/obs for the fixed-capacity collector). A nil Server.Spans (the
// default) keeps the path span-free.
type SpanSink interface {
	RecordSpan(sp Span)
}
