package pfs

import (
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/storage"
)

// chunkMsg is the wire metadata of one flow-protocol chunk of a write
// request. The chunk's payload size is the Message size; the metadata rides
// along for free (headers are negligible next to 64 KiB+ payloads).
type chunkMsg struct {
	req      *clientReq
	srvState *srvReqState
	fileID   storage.FileID
	local    int64
	size     int64
	read     bool // read request descriptor instead of write payload
}

// srvReqState tracks one client request's share on one server. The client
// creates it with the chunk count; the server fills in its scheduling state
// (the simulation is single-address-space, so the struct plays both the
// wire-visible request descriptor and the server's flow bookkeeping).
type srvReqState struct {
	remaining int      // chunks not yet stored (write) or returned (read)
	bytes     int64    // total data bytes of this request's share here
	issued    sim.Time // when the client issued the request

	// Server-side flow scheduling state.
	conn     *netsim.Conn
	arrived  bool
	active   bool
	inflight int               // chunks being processed/stored right now
	pending  []*netsim.Message // readable chunks not yet pulled from the socket
}

// replyMsg is the server's completion notification for one request (write)
// or one chunk of data (read).
type replyMsg struct {
	req *clientReq
}

// clientReq is the client-side handle of an in-flight request. cl and
// recIdx tie the completion back to the issuing client's outstanding count
// and, when a trace sink is attached, to the request's trace record (recIdx
// is -1 when recording is off; cl is nil only for degenerate zero-extent
// requests that never reach a server).
type clientReq struct {
	remaining int // replies still expected
	onDone    func()
	cl        *Client
	recIdx    int
}

func (r *clientReq) replied() {
	r.remaining--
	if r.remaining != 0 {
		return
	}
	if r.cl != nil {
		r.cl.inflight--
		if s := r.cl.fs.Sink; s != nil && r.recIdx >= 0 {
			s.EndRequest(r.recIdx)
		}
	}
	if r.onDone != nil {
		r.onDone()
	}
}
