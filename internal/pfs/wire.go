package pfs

import (
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/storage"
)

// chunkMsg is the wire metadata of one flow-protocol chunk of a write
// request. The chunk's payload size is the Message size; the metadata rides
// along for free (headers are negligible next to 64 KiB+ payloads).
type chunkMsg struct {
	req      *clientReq
	srvState *srvReqState
	fileID   storage.FileID
	local    int64
	size     int64
	read     bool // read request descriptor instead of write payload
}

// srvReqState tracks one client request's share on one server. The client
// creates it with the chunk count; the server fills in its scheduling state
// (the simulation is single-address-space, so the struct plays both the
// wire-visible request descriptor and the server's flow bookkeeping).
type srvReqState struct {
	remaining int      // chunks not yet stored (write) or returned (read)
	bytes     int64    // total data bytes of this request's share here
	issued    sim.Time // when the client issued the request
	issueAt   sim.Time // client clock at issue (unjittered; Span.Issue)
	read      bool     // read request (client-written; Span.Read)

	// Server-side flow scheduling state.
	conn     *netsim.Conn
	arrived  bool
	active   bool
	dead     bool              // killed by a server crash; chunks are discarded
	inflight int               // chunks being processed/stored right now
	arriveAt sim.Time          // server clock at arrival (Span.Arrive)
	grantAt  sim.Time          // server clock at flow-slot grant (Span.Grant)
	pending  []*netsim.Message // readable chunks not yet pulled from the socket

	// Client-side retry state (only set on the retrying RPC path). sub is
	// the sub-request this attempt belongs to; cgot counts replies received
	// for this attempt. These fields are written exclusively by client-shard
	// events, the fields above exclusively by server-shard events — the
	// struct is the wire-visible descriptor both sides annotate, and the
	// field-level split is what keeps it race-free under sharding.
	sub  *subOp
	cgot int
}

// replyMsg is the server's completion notification for one request (write)
// or one chunk of data (read). st identifies which attempt the reply
// answers — the retry layer uses it to route and to ignore replies to
// requests it already gave up on.
type replyMsg struct {
	req *clientReq
	st  *srvReqState
}

// clientReq is the client-side handle of an in-flight request. cl and
// recIdx tie the completion back to the issuing client's outstanding count
// and, when a trace sink is attached, to the request's trace record (recIdx
// is -1 when recording is off; cl is nil only for degenerate zero-extent
// requests that never reach a server).
//
// Exactly one of onDone/onErr is set: onDone on the legacy path (remaining
// counts replies), onErr on the retrying RPC path (remaining counts
// sub-requests; err carries ErrUnavailable if any of them failed).
type clientReq struct {
	remaining int // replies (legacy) or sub-requests (retry) still expected
	onDone    func()
	onErr     func(error)
	cl        *Client
	recIdx    int
	err       error
	subs      []subOp
}

func (r *clientReq) replied() {
	r.remaining--
	if r.remaining != 0 {
		return
	}
	r.finish()
	if r.onDone != nil {
		r.onDone()
	}
}

// subDone accounts one finished (completed or failed) sub-request of a
// retrying request.
func (r *clientReq) subDone() {
	r.remaining--
	if r.remaining != 0 {
		return
	}
	r.finish()
	if r.onErr != nil {
		r.onErr(r.err)
	}
}

func (r *clientReq) finish() {
	if r.cl == nil {
		return
	}
	r.cl.inflight--
	if s := r.cl.fs.Sink; s != nil && r.recIdx >= 0 {
		s.EndRequest(r.recIdx)
	}
}
