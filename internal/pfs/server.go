package pfs

import (
	"repro/internal/netsim"
	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/storage"
)

// SyncMode selects how a server persists incoming writes, mirroring the
// OrangeFS TroveSyncData setting plus the null-aio method.
type SyncMode int

// Sync modes.
const (
	// SyncOn flushes each operation to the device before replying.
	SyncOn SyncMode = iota
	// SyncOff acknowledges once data reaches the kernel write-back cache.
	SyncOff
	// NullAIO discards data immediately (PVFS's null-aio).
	NullAIO
)

func (m SyncMode) String() string {
	switch m {
	case SyncOn:
		return "sync-on"
	case SyncOff:
		return "sync-off"
	case NullAIO:
		return "null-aio"
	}
	return "unknown"
}

// ReadPolicy selects which queued request a server grants the next free
// flow slot. FIFO models PVFS (no coordination, "no particular scheduling
// mechanism at the server side" — §IV-B1); the alternatives are the
// server-side coordination ablations discussed in the paper's related work.
type ReadPolicy int

// Read policies.
const (
	// ReadFIFO admits requests in arrival order (PVFS behavior).
	ReadFIFO ReadPolicy = iota
	// ReadAppOrdered always prefers the lowest application ID first, making
	// every server process applications in the same global order (the
	// server-side coordination of Song et al., SC'11).
	ReadAppOrdered
	// ReadRoundRobin alternates flow grants between applications.
	ReadRoundRobin
)

// ServerParams configures a storage server's software stack.
type ServerParams struct {
	Sync SyncMode
	// FlowBufSize is the chunk size of the flow protocol; client requests
	// are carved into chunks of at most this many bytes, and a flow pulls
	// one chunk at a time from its socket.
	FlowBufSize int64
	// FlowBufs is the number of concurrent flows (requests being actively
	// served). Requests beyond it queue *unread in their sockets* — this
	// bound, not any explicit flow control in Trove, is what back-pressures
	// the network and collapses TCP windows when the backend is slow.
	FlowBufs int
	// FlowDepth caps how many chunks one flow keeps in flight toward the
	// device (PVFS flow buffers per flow).
	FlowDepth int
	// FlowPool is a shared pool of flow-buffer credits: each active flow
	// may keep up to max(1, min(FlowDepth, FlowPool/activeFlows)) chunks in
	// flight. Few concurrent streams therefore pipeline deeply (long
	// sequential runs at the disk); many streams fragment into short runs —
	// the single-application cost of many writers per node (Figure 4).
	FlowPool int
	// CPUPerChunk is the fixed request-processing cost per chunk.
	CPUPerChunk sim.Time
	// CPUBytesPerSec is the server's memory/protocol processing rate.
	CPUBytesPerSec float64
	// RespBytes is the size of the reply message.
	RespBytes int64
	// Policy selects the legacy request scheduling policy (default FIFO).
	// It only applies while QoS is off.
	Policy ReadPolicy
	// QoS selects and tunes a server-side QoS scheduler (see internal/qos).
	// The zero value (qos.Off) keeps the legacy Policy path, which is
	// bit-identical to the pre-QoS server. An active scheduler may
	// override FlowBufs via its FlowSlots knob; its pipeline lever
	// (qos.Params.InflightChunks) acts per application through the
	// DepthAdvisor, on top of the unchanged per-flow FlowDepth.
	QoS qos.Params
}

// DefaultServerParams models OrangeFS 2.8.3 on the paper's hardware.
func DefaultServerParams() ServerParams {
	return ServerParams{
		Sync:           SyncOn,
		FlowBufSize:    256 << 10,
		FlowBufs:       16,
		FlowDepth:      16,
		FlowPool:       64,
		CPUPerChunk:    120 * sim.Microsecond,
		CPUBytesPerSec: 1600e6,
		RespBytes:      160,
	}
}

// ServerStats counts server-side work.
type ServerStats struct {
	Chunks    int64
	Bytes     int64
	Replies   int64
	Requests  int64
	MaxQueued int   // high-water mark of the request backlog
	Crashes   int64 // fail-stop events injected into this server
}

// Server is one PVFS storage daemon: a host on the fabric, a CPU, a flow
// layer serving at most FlowBufs requests concurrently, and a backend
// (device, cache or null). Which queued request gets a free flow slot is
// decided by a qos.Scheduler: the legacy ReadPolicy disciplines when QoS is
// off, or one of the mitigation schedulers (fair-share, token-bucket,
// feedback controller) when ServerParams.QoS selects it.
type Server struct {
	E    *sim.Engine
	ID   int
	Host *netsim.Host
	P    ServerParams

	// Dev is the backend device (used directly with SyncOn).
	Dev storage.Device
	// Cache is the write-back cache (used with SyncOff; nil otherwise).
	Cache *storage.WriteCache
	// Tel is the server's telemetry probe layer: per-application request,
	// queue and byte counters plus the device view. Always on (the
	// counters are cheap); QoS schedulers and tests read it.
	Tel *qos.Telemetry
	// Spans, when non-nil, receives one Span per completed request share,
	// emitted at reply time on this server's shard (see SpanSink). nil —
	// the default — keeps the completion path span-free.
	Spans SpanSink

	cpu        *sim.Line
	freeFlows  int
	reqQueue   []*srvReqState
	nextFileID storage.FileID
	sched      qos.Scheduler
	adv        qos.DepthAdvisor // s.sched's depth lever, nil if not offered
	qview      []qos.Request    // reusable scheduler view of reqQueue
	// activeReqs lists the requests currently holding flow slots, in grant
	// order. A depth advisor uses it to resume an application's
	// budget-blocked requests when any of its chunks completes; a crash uses
	// it to kill every request holding a slot. Slice appends reuse capacity
	// and schedule nothing, so maintaining it unconditionally is free.
	activeReqs []*srvReqState

	// down marks the server crashed (fail-stop): every queued and in-flight
	// request was killed, and chunks arriving while down are read off the
	// wire and discarded.
	down bool

	// wakeArmed/wakeAt bound the retry events a throttling scheduler asks
	// for: at most one useful wake-up is in flight at a time.
	wakeArmed bool
	wakeAt    sim.Time

	stats ServerStats
}

// NewServer builds a server bound to host with the given backend. cache may
// be nil unless p.Sync is SyncOff.
func NewServer(e *sim.Engine, id int, host *netsim.Host, dev storage.Device, cache *storage.WriteCache, p ServerParams) *Server {
	if p.FlowBufs <= 0 {
		p.FlowBufs = 1
	}
	if err := p.QoS.Validate(); err != nil {
		panic("pfs: " + err.Error())
	}
	// A QoS block may serialize the flow layer — admission control only
	// shapes traffic when the flow slots actually arbitrate — and the knob
	// is honored for Off too, so a baseline arm can be serialized the same
	// way as the scheduler it is compared against.
	if eff := p.QoS.WithDefaults(); eff.FlowSlots > 0 {
		p.FlowBufs = eff.FlowSlots
	}
	if p.Sync == SyncOff && cache == nil {
		panic("pfs: SyncOff requires a write cache")
	}
	s := &Server{
		E: e, ID: id, Host: host, P: p, Dev: dev, Cache: cache,
		cpu:       &sim.Line{E: e, Rate: p.CPUBytesPerSec, PerOp: p.CPUPerChunk},
		freeFlows: p.FlowBufs,
	}
	s.Tel = qos.NewTelemetry(dev)
	if p.QoS.Kind != qos.Off {
		s.sched = qos.New(e, p.QoS, s.Tel)
		s.adv, _ = s.sched.(qos.DepthAdvisor)
	} else {
		switch p.Policy {
		case ReadAppOrdered:
			s.sched = qos.NewAppOrdered()
		case ReadRoundRobin:
			s.sched = qos.NewRoundRobin()
		default:
			s.sched = qos.NewFIFO()
		}
	}
	return s
}

// Stats returns cumulative counters.
func (s *Server) Stats() ServerStats { return s.stats }

// AppDepth reports the active scheduler's current in-flight chunk budget
// for app — 0 when unbounded or when the scheduler has no depth lever. A
// diagnostic for tests and probes.
func (s *Server) AppDepth(app int) int {
	if s.adv == nil {
		return 0
	}
	return s.adv.AppDepth(app)
}

// FreeFlows returns the number of idle flow slots.
func (s *Server) FreeFlows() int { return s.freeFlows }

// Down reports whether the server is currently crashed.
func (s *Server) Down() bool { return s.down }

// Crash fail-stops the server: every queued and active request dies (its
// buffered chunks are read off the wire and discarded, so receive-buffer
// space is freed and the one-read-per-announced-message invariant holds),
// all flow slots are reclaimed, and until Restart every arriving chunk is
// discarded the same way. Chunks already handed to the CPU or device keep
// flowing through the pipeline but complete into dead requests, which
// no-op. Clients see the crash as silence — no replies — and recover
// through their own deadline/retry machinery.
func (s *Server) Crash() {
	if s.down {
		return
	}
	s.down = true
	s.stats.Crashes++
	s.Tel.MarkDown(s.E.Now())
	for _, st := range s.reqQueue {
		s.abortReq(st)
	}
	s.reqQueue = s.reqQueue[:0]
	for _, st := range s.activeReqs {
		s.abortReq(st)
	}
	s.activeReqs = s.activeReqs[:0]
	s.freeFlows = s.P.FlowBufs
}

// Restart brings a crashed server back. State that died with the crash
// stays dead; new requests are served normally from here on.
func (s *Server) Restart() {
	if !s.down {
		return
	}
	s.down = false
	s.Tel.MarkUp(s.E.Now())
	s.pump()
}

// abortReq kills one request's share on this server: marks it dead (late
// completions and late chunks no-op / discard) and drains its buffered
// chunks off the socket.
func (s *Server) abortReq(st *srvReqState) {
	st.dead = true
	st.active = false
	for _, m := range st.pending {
		st.conn.ReadHead()
		s.Tel.Discard(m.Size)
	}
	st.pending = st.pending[:0]
}

// QueuedRequests returns how many requests await a flow slot.
func (s *Server) QueuedRequests() int { return len(s.reqQueue) }

// newFileID allocates a server-local byte stream identifier.
func (s *Server) newFileID() storage.FileID {
	s.nextFileID++
	return s.nextFileID
}

// onReadable is installed as the OnReadable callback of every connection
// that dials this server. A request "arrives" when its first chunk is fully
// buffered; until the request is granted a flow slot its chunks stay unread
// in the socket, keeping the sender's window shut.
func (s *Server) onReadable(c *netsim.Conn, m *netsim.Message) {
	ck := m.Meta.(*chunkMsg)
	st := ck.srvState
	if s.down || st.dead {
		// Crashed server (or a request the crash killed): read the chunk
		// off the wire and throw it away. Marking the request dead makes
		// its later chunks — possibly arriving after a restart — die too;
		// the client's retry layer sends a fresh request state per attempt.
		st.dead = true
		c.ReadHead()
		s.Tel.Discard(m.Size)
		return
	}
	st.pending = append(st.pending, m)
	if !st.arrived {
		st.arrived = true
		st.conn = c
		st.arriveAt = s.E.Now()
		s.stats.Requests++
		s.Tel.Arrive(c.App, st.bytes)
		s.reqQueue = append(s.reqQueue, st)
		if len(s.reqQueue) > s.stats.MaxQueued {
			s.stats.MaxQueued = len(s.reqQueue)
		}
	}
	if st.active {
		s.consume(st)
		return
	}
	s.pump()
}

// pick asks the scheduler which queued request gets the next flow slot.
// The scheduler sees a value view of the queue (rebuilt into a reusable
// slice — no allocation in steady state); all disciplines preserve
// per-connection message order within an application. A negative return
// with a wake time arms a retry event: a throttling scheduler (token
// bucket, controller) deliberately idles the slot until tokens refill.
func (s *Server) pick() int {
	s.qview = s.qview[:0]
	for _, st := range s.reqQueue {
		s.qview = append(s.qview, qos.Request{
			App: st.conn.App, Issued: st.issued, Bytes: st.bytes,
		})
	}
	idx, wake := s.sched.Pick(s.E.Now(), s.qview)
	if idx < 0 && wake > s.E.Now() && wake < sim.MaxTime {
		s.armWake(wake)
	}
	return idx
}

// armWake schedules a pump retry at the scheduler-requested time, keeping
// at most one useful wake-up in flight (an earlier request supersedes a
// later one; the superseded event fires as a harmless no-op pump).
func (s *Server) armWake(at sim.Time) {
	if s.wakeArmed && s.wakeAt <= at {
		return
	}
	s.wakeArmed = true
	s.wakeAt = at
	s.E.AtCall(at, s, 0, 0, 0)
}

// OnEvent implements sim.Target: a scheduler-requested pump retry. Only
// the currently armed wake releases the flag — a superseded event firing
// earlier must not fake-release it, or its pump would re-arm a duplicate
// of the still-pending wake.
func (s *Server) OnEvent(op uint32, a, b int64) {
	if s.E.Now() >= s.wakeAt {
		s.wakeArmed = false
	}
	s.pump()
}

// allowance returns the per-flow in-flight chunk budget under the shared
// flow-buffer pool.
func (s *Server) allowance() int {
	depth := s.P.FlowDepth
	if depth <= 0 {
		depth = 1
	}
	active := s.P.FlowBufs - s.freeFlows
	if active < 1 {
		active = 1
	}
	if s.P.FlowPool > 0 {
		if share := s.P.FlowPool / active; share < depth {
			depth = share
		}
	}
	if depth < 1 {
		depth = 1
	}
	return depth
}

// pump grants free flow slots to queued requests until the slots run out,
// the queue drains, or the scheduler withholds the grant (throttled).
func (s *Server) pump() {
	if s.down {
		return
	}
	for s.freeFlows > 0 && len(s.reqQueue) > 0 {
		i := s.pick()
		if i < 0 {
			return
		}
		st := s.reqQueue[i]
		copy(s.reqQueue[i:], s.reqQueue[i+1:])
		s.reqQueue = s.reqQueue[:len(s.reqQueue)-1]
		s.freeFlows--
		st.active = true
		st.grantAt = s.E.Now()
		s.Tel.Grant(st.conn.App, st.bytes)
		s.activeReqs = append(s.activeReqs, st)
		s.consume(st)
	}
}

// consume pulls buffered chunks of an active request out of its socket and
// into the processing pipeline, keeping at most FlowDepth chunks in flight
// — and, when a QoS depth advisor is active, at most the application's
// in-flight chunk budget across all of its flows on this server. Reading
// reopens the TCP window, so the flow self-clocks: the socket refills
// while earlier chunks are stored.
func (s *Server) consume(st *srvReqState) {
	if st.dead {
		return
	}
	depth := s.allowance()
	if depth <= 0 {
		depth = 1
	}
	appBudget := 0
	if s.adv != nil {
		appBudget = s.adv.AppDepth(st.conn.App)
	}
	for len(st.pending) > 0 && st.inflight < depth {
		if appBudget > 0 && s.Tel.App(st.conn.App).InFlight >= int64(appBudget) {
			return
		}
		m := st.pending[0]
		copy(st.pending, st.pending[1:])
		st.pending = st.pending[:len(st.pending)-1]
		ck := m.Meta.(*chunkMsg)
		st.conn.ReadHead()
		st.inflight++
		s.stats.Chunks++
		s.stats.Bytes += ck.size
		s.Tel.Consume(st.conn.App, ck.size)
		chunk := ck
		s.cpu.Send(chunk.size, func() { s.store(st.conn, chunk) })
	}
}

// store hands the chunk to the backend according to the sync mode.
func (s *Server) store(c *netsim.Conn, ck *chunkMsg) {
	if ck.read {
		// Read chunk: fetch from the device and ship the data back on the
		// reply path; each chunk replies individually with its data.
		done := func() {
			if ck.srvState.dead {
				return
			}
			s.stats.Replies++
			s.Tel.Done(c.App, ck.size)
			c.Reply(ck.size, &replyMsg{req: ck.req, st: ck.srvState})
			s.readChunkDone(ck.srvState)
		}
		if s.P.Sync == NullAIO {
			s.E.Schedule(0, done)
			return
		}
		s.Dev.Submit(&storage.Request{
			File: ck.fileID, Offset: ck.local, Size: ck.size,
			Stream: storage.StreamID(c.App), Read: true, Done: done,
		})
		return
	}
	done := func() { s.chunkDone(c, ck) }
	req := &storage.Request{
		File:   ck.fileID,
		Offset: ck.local,
		Size:   ck.size,
		Stream: storage.StreamID(c.App),
		Done:   done,
	}
	switch s.P.Sync {
	case SyncOn:
		s.Dev.Submit(req)
	case SyncOff:
		s.Cache.Write(req)
	case NullAIO:
		s.E.Schedule(0, done)
	}
}

// chunkDone accounts a stored write chunk; when the whole request's share
// on this server is stored, it replies and frees the flow slot.
func (s *Server) chunkDone(c *netsim.Conn, ck *chunkMsg) {
	st := ck.srvState
	if st.dead {
		return
	}
	st.remaining--
	st.inflight--
	s.Tel.Done(c.App, ck.size)
	if st.remaining == 0 {
		s.stats.Replies++
		c.Reply(s.P.RespBytes, &replyMsg{req: ck.req, st: st})
		s.finishFlow(st)
		return
	}
	s.refill(st)
}

// readChunkDone accounts a served read chunk and frees the flow at the end.
func (s *Server) readChunkDone(st *srvReqState) {
	if st.dead {
		return
	}
	st.remaining--
	st.inflight--
	if st.remaining == 0 {
		s.finishFlow(st)
		return
	}
	s.refill(st)
}

// refill resumes chunk consumption after a completion. Without a depth
// advisor only st itself can have head-room (per-flow depth); with one,
// the completed chunk may also have freed the application's shared budget
// for a sibling request, so every active flow of the application is
// re-polled, in grant order.
func (s *Server) refill(st *srvReqState) {
	if s.adv == nil {
		s.consume(st)
		return
	}
	s.refillApp(st.conn.App)
}

// refillApp re-polls every active flow of one application, in grant order.
func (s *Server) refillApp(app int) {
	for _, a := range s.activeReqs {
		if a.conn.App == app {
			s.consume(a)
		}
	}
}

func (s *Server) finishFlow(st *srvReqState) {
	st.active = false
	s.freeFlows++
	s.Tel.Finish(st.conn.App)
	if s.Spans != nil {
		s.Spans.RecordSpan(Span{
			Issue: st.issueAt, Arrive: st.arriveAt, Grant: st.grantAt,
			Reply: s.E.Now(), Bytes: st.bytes,
			App: int32(st.conn.App), Server: int32(s.ID), Read: st.read,
		})
	}
	for i, a := range s.activeReqs {
		if a == st {
			copy(s.activeReqs[i:], s.activeReqs[i+1:])
			s.activeReqs = s.activeReqs[:len(s.activeReqs)-1]
			break
		}
	}
	if s.adv != nil {
		// The finished flow's last chunk freed budget head-room its
		// sibling flows may be blocked on.
		s.refillApp(st.conn.App)
	}
	s.pump()
}
