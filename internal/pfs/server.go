package pfs

import (
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/storage"
)

// SyncMode selects how a server persists incoming writes, mirroring the
// OrangeFS TroveSyncData setting plus the null-aio method.
type SyncMode int

// Sync modes.
const (
	// SyncOn flushes each operation to the device before replying.
	SyncOn SyncMode = iota
	// SyncOff acknowledges once data reaches the kernel write-back cache.
	SyncOff
	// NullAIO discards data immediately (PVFS's null-aio).
	NullAIO
)

func (m SyncMode) String() string {
	switch m {
	case SyncOn:
		return "sync-on"
	case SyncOff:
		return "sync-off"
	case NullAIO:
		return "null-aio"
	}
	return "unknown"
}

// ReadPolicy selects which queued request a server grants the next free
// flow slot. FIFO models PVFS (no coordination, "no particular scheduling
// mechanism at the server side" — §IV-B1); the alternatives are the
// server-side coordination ablations discussed in the paper's related work.
type ReadPolicy int

// Read policies.
const (
	// ReadFIFO admits requests in arrival order (PVFS behavior).
	ReadFIFO ReadPolicy = iota
	// ReadAppOrdered always prefers the lowest application ID first, making
	// every server process applications in the same global order (the
	// server-side coordination of Song et al., SC'11).
	ReadAppOrdered
	// ReadRoundRobin alternates flow grants between applications.
	ReadRoundRobin
)

// ServerParams configures a storage server's software stack.
type ServerParams struct {
	Sync SyncMode
	// FlowBufSize is the chunk size of the flow protocol; client requests
	// are carved into chunks of at most this many bytes, and a flow pulls
	// one chunk at a time from its socket.
	FlowBufSize int64
	// FlowBufs is the number of concurrent flows (requests being actively
	// served). Requests beyond it queue *unread in their sockets* — this
	// bound, not any explicit flow control in Trove, is what back-pressures
	// the network and collapses TCP windows when the backend is slow.
	FlowBufs int
	// FlowDepth caps how many chunks one flow keeps in flight toward the
	// device (PVFS flow buffers per flow).
	FlowDepth int
	// FlowPool is a shared pool of flow-buffer credits: each active flow
	// may keep up to max(1, min(FlowDepth, FlowPool/activeFlows)) chunks in
	// flight. Few concurrent streams therefore pipeline deeply (long
	// sequential runs at the disk); many streams fragment into short runs —
	// the single-application cost of many writers per node (Figure 4).
	FlowPool int
	// CPUPerChunk is the fixed request-processing cost per chunk.
	CPUPerChunk sim.Time
	// CPUBytesPerSec is the server's memory/protocol processing rate.
	CPUBytesPerSec float64
	// RespBytes is the size of the reply message.
	RespBytes int64
	// Policy selects the request scheduling policy (default FIFO).
	Policy ReadPolicy
}

// DefaultServerParams models OrangeFS 2.8.3 on the paper's hardware.
func DefaultServerParams() ServerParams {
	return ServerParams{
		Sync:           SyncOn,
		FlowBufSize:    256 << 10,
		FlowBufs:       16,
		FlowDepth:      16,
		FlowPool:       64,
		CPUPerChunk:    120 * sim.Microsecond,
		CPUBytesPerSec: 1600e6,
		RespBytes:      160,
	}
}

// ServerStats counts server-side work.
type ServerStats struct {
	Chunks    int64
	Bytes     int64
	Replies   int64
	Requests  int64
	MaxQueued int // high-water mark of the request backlog
}

// Server is one PVFS storage daemon: a host on the fabric, a CPU, a flow
// layer serving at most FlowBufs requests concurrently, and a backend
// (device, cache or null).
type Server struct {
	E    *sim.Engine
	ID   int
	Host *netsim.Host
	P    ServerParams

	// Dev is the backend device (used directly with SyncOn).
	Dev storage.Device
	// Cache is the write-back cache (used with SyncOff; nil otherwise).
	Cache *storage.WriteCache

	cpu        *sim.Line
	freeFlows  int
	reqQueue   []*srvReqState
	nextFileID storage.FileID
	lastApp    int // last application granted a flow (round-robin policy)

	stats ServerStats
}

// NewServer builds a server bound to host with the given backend. cache may
// be nil unless p.Sync is SyncOff.
func NewServer(e *sim.Engine, id int, host *netsim.Host, dev storage.Device, cache *storage.WriteCache, p ServerParams) *Server {
	if p.FlowBufs <= 0 {
		p.FlowBufs = 1
	}
	if p.Sync == SyncOff && cache == nil {
		panic("pfs: SyncOff requires a write cache")
	}
	return &Server{
		E: e, ID: id, Host: host, P: p, Dev: dev, Cache: cache,
		cpu:       &sim.Line{E: e, Rate: p.CPUBytesPerSec, PerOp: p.CPUPerChunk},
		freeFlows: p.FlowBufs,
	}
}

// Stats returns cumulative counters.
func (s *Server) Stats() ServerStats { return s.stats }

// FreeFlows returns the number of idle flow slots.
func (s *Server) FreeFlows() int { return s.freeFlows }

// QueuedRequests returns how many requests await a flow slot.
func (s *Server) QueuedRequests() int { return len(s.reqQueue) }

// newFileID allocates a server-local byte stream identifier.
func (s *Server) newFileID() storage.FileID {
	s.nextFileID++
	return s.nextFileID
}

// onReadable is installed as the OnReadable callback of every connection
// that dials this server. A request "arrives" when its first chunk is fully
// buffered; until the request is granted a flow slot its chunks stay unread
// in the socket, keeping the sender's window shut.
func (s *Server) onReadable(c *netsim.Conn, m *netsim.Message) {
	ck := m.Meta.(*chunkMsg)
	st := ck.srvState
	st.pending = append(st.pending, m)
	if !st.arrived {
		st.arrived = true
		st.conn = c
		s.stats.Requests++
		s.reqQueue = append(s.reqQueue, st)
		if len(s.reqQueue) > s.stats.MaxQueued {
			s.stats.MaxQueued = len(s.reqQueue)
		}
	}
	if st.active {
		s.consume(st)
		return
	}
	s.pump()
}

// pickRequest returns the index of the next request under the policy.
//
// FIFO orders by request *issue* time, not data arrival: PVFS learns about
// a request from its small descriptor message, which reaches the server
// long before the bulk data fights its way through a congested fabric.
// All policies preserve per-connection message order within an application.
func (s *Server) pickRequest() int {
	switch s.P.Policy {
	case ReadAppOrdered:
		best := 0
		for i := 1; i < len(s.reqQueue); i++ {
			q, b := s.reqQueue[i], s.reqQueue[best]
			if q.conn.App < b.conn.App || (q.conn.App == b.conn.App && q.issued < b.issued) {
				best = i
			}
		}
		return best
	case ReadRoundRobin:
		best := -1
		for i := range s.reqQueue {
			if s.reqQueue[i].conn.App == s.lastApp {
				continue
			}
			if best < 0 || s.reqQueue[i].issued < s.reqQueue[best].issued {
				best = i
			}
		}
		if best >= 0 {
			return best
		}
		return s.oldest()
	default:
		return s.oldest() // FIFO by issue time
	}
}

// oldest returns the index of the earliest-issued queued request.
func (s *Server) oldest() int {
	best := 0
	for i := 1; i < len(s.reqQueue); i++ {
		if s.reqQueue[i].issued < s.reqQueue[best].issued {
			best = i
		}
	}
	return best
}

// allowance returns the per-flow in-flight chunk budget under the shared
// flow-buffer pool.
func (s *Server) allowance() int {
	depth := s.P.FlowDepth
	if depth <= 0 {
		depth = 1
	}
	active := s.P.FlowBufs - s.freeFlows
	if active < 1 {
		active = 1
	}
	if s.P.FlowPool > 0 {
		if share := s.P.FlowPool / active; share < depth {
			depth = share
		}
	}
	if depth < 1 {
		depth = 1
	}
	return depth
}

// pump grants free flow slots to queued requests.
func (s *Server) pump() {
	for s.freeFlows > 0 && len(s.reqQueue) > 0 {
		i := s.pickRequest()
		st := s.reqQueue[i]
		copy(s.reqQueue[i:], s.reqQueue[i+1:])
		s.reqQueue = s.reqQueue[:len(s.reqQueue)-1]
		s.freeFlows--
		st.active = true
		s.lastApp = st.conn.App
		s.consume(st)
	}
}

// consume pulls buffered chunks of an active request out of its socket and
// into the processing pipeline, keeping at most FlowDepth chunks in flight.
// Reading reopens the TCP window, so the flow self-clocks: the socket
// refills while earlier chunks are stored.
func (s *Server) consume(st *srvReqState) {
	depth := s.allowance()
	if depth <= 0 {
		depth = 1
	}
	for len(st.pending) > 0 && st.inflight < depth {
		m := st.pending[0]
		copy(st.pending, st.pending[1:])
		st.pending = st.pending[:len(st.pending)-1]
		ck := m.Meta.(*chunkMsg)
		st.conn.ReadHead()
		st.inflight++
		s.stats.Chunks++
		s.stats.Bytes += ck.size
		chunk := ck
		s.cpu.Send(chunk.size, func() { s.store(st.conn, chunk) })
	}
}

// store hands the chunk to the backend according to the sync mode.
func (s *Server) store(c *netsim.Conn, ck *chunkMsg) {
	if ck.read {
		// Read chunk: fetch from the device and ship the data back on the
		// reply path; each chunk replies individually with its data.
		done := func() {
			s.stats.Replies++
			c.Reply(ck.size, &replyMsg{req: ck.req})
			s.readChunkDone(ck.srvState)
		}
		if s.P.Sync == NullAIO {
			s.E.Schedule(0, done)
			return
		}
		s.Dev.Submit(&storage.Request{
			File: ck.fileID, Offset: ck.local, Size: ck.size,
			Stream: storage.StreamID(c.App), Read: true, Done: done,
		})
		return
	}
	done := func() { s.chunkDone(c, ck) }
	req := &storage.Request{
		File:   ck.fileID,
		Offset: ck.local,
		Size:   ck.size,
		Stream: storage.StreamID(c.App),
		Done:   done,
	}
	switch s.P.Sync {
	case SyncOn:
		s.Dev.Submit(req)
	case SyncOff:
		s.Cache.Write(req)
	case NullAIO:
		s.E.Schedule(0, done)
	}
}

// chunkDone accounts a stored write chunk; when the whole request's share
// on this server is stored, it replies and frees the flow slot.
func (s *Server) chunkDone(c *netsim.Conn, ck *chunkMsg) {
	st := ck.srvState
	st.remaining--
	st.inflight--
	if st.remaining == 0 {
		s.stats.Replies++
		c.Reply(s.P.RespBytes, &replyMsg{req: ck.req})
		s.finishFlow(st)
		return
	}
	s.consume(st)
}

// readChunkDone accounts a served read chunk and frees the flow at the end.
func (s *Server) readChunkDone(st *srvReqState) {
	st.remaining--
	st.inflight--
	if st.remaining == 0 {
		s.finishFlow(st)
		return
	}
	s.consume(st)
}

func (s *Server) finishFlow(st *srvReqState) {
	st.active = false
	s.freeFlows++
	s.pump()
}
