// Package pfs models a PVFS/OrangeFS-like parallel file system: files are
// striped round-robin across a set of storage servers; clients split logical
// requests into per-server pieces, ship them over per-(client,server) TCP
// connections in flow-buffer-sized chunks (the PVFS flow protocol), and
// servers push the chunks through a Trove-like layer to the backend device,
// either synchronously ("Sync ON": the reply waits for the device),
// write-back through the kernel cache ("Sync OFF"), or discarding data
// ("null-aio").
//
// The deliberate mirror of PVFS's structure matters because the paper's
// central finding — incast-driven unfairness — emerges from Trove having no
// flow control of its own: a slow device stalls the flow buffers, which
// stalls socket reads, which closes TCP windows.
package pfs

// Layout describes round-robin striping over Width servers with a fixed
// stripe size (PVFS "simple_stripe").
type Layout struct {
	Width  int   // number of servers the file is striped over
	Stripe int64 // stripe size in bytes
}

// Piece is one stripe fragment of a logical extent, in file order.
type Piece struct {
	SrvPos int   // position in the file's server list
	Local  int64 // offset within the server-local byte stream
	Size   int64
}

// Run is a contiguous extent in a server-local byte stream.
type Run struct {
	Local int64
	Size  int64
}

// Map splits the logical extent [off, off+size) into stripe pieces in file
// order. The server-local offset of global stripe g (= off/Stripe) is
// (g/Width)*Stripe plus the offset within the stripe: consecutive stripes
// assigned to a server are adjacent in its local stream, so contiguous
// logical extents are contiguous locally — and strided ones leave holes.
func (l Layout) Map(off, size int64) []Piece {
	if l.Width <= 0 || l.Stripe <= 0 {
		panic("pfs: invalid layout")
	}
	if off < 0 || size < 0 {
		panic("pfs: negative extent")
	}
	var out []Piece
	for size > 0 {
		g := off / l.Stripe
		in := off % l.Stripe
		n := l.Stripe - in
		if n > size {
			n = size
		}
		out = append(out, Piece{
			SrvPos: int(g % int64(l.Width)),
			Local:  (g/int64(l.Width))*l.Stripe + in,
			Size:   n,
		})
		off += n
		size -= n
	}
	return out
}

// PerServer maps the extent and merges contiguous pieces per server,
// returning one slice of local runs for each server position (empty slices
// for untouched servers).
func (l Layout) PerServer(off, size int64) [][]Run {
	runs := make([][]Run, l.Width)
	for _, p := range l.Map(off, size) {
		rs := runs[p.SrvPos]
		if n := len(rs); n > 0 && rs[n-1].Local+rs[n-1].Size == p.Local {
			rs[n-1].Size += p.Size
		} else {
			rs = append(rs, Run{Local: p.Local, Size: p.Size})
		}
		runs[p.SrvPos] = rs
	}
	return runs
}

// ServersTouched returns how many distinct servers the extent involves —
// the quantity the paper manipulates in the stripe-size and request-size
// experiments (fewer servers per request ⇒ less global synchronization).
func (l Layout) ServersTouched(off, size int64) int {
	touched := 0
	for _, rs := range l.PerServer(off, size) {
		if len(rs) > 0 {
			touched++
		}
	}
	return touched
}
