package trace

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mpisim"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// ReplayResult is the outcome of replaying a trace: per-application results
// in the shape core produces, the trace the replay itself recorded (replays
// always re-record, so round-trip verification can compare record streams,
// not just endpoints), and the recorded baseline for comparison.
type ReplayResult struct {
	Apps []core.AppResult
	// Recorded are the original per-app phase windows from the input
	// trace's header, aligned with Apps.
	Recorded []AppInfo
	// Trace is the replay's own recording — on an unmodified platform it
	// must equal the input trace record for record.
	Trace *Trace
	// Events is the replay simulation's executed event count.
	Events uint64
}

// Identical reports whether every application's replayed phase window
// matches the recorded one exactly — the round-trip bit-identity check.
func (r *ReplayResult) Identical() bool {
	for i, a := range r.Apps {
		if a.Start != r.Recorded[i].PhaseStart || a.End != r.Recorded[i].PhaseEnd {
			return false
		}
	}
	return true
}

// Replay re-executes the trace on the platform recorded in its header. Per
// the package's determinism contract the result is bit-identical to the
// recorded run for blocking and single-burst-pipelined applications.
func Replay(t *Trace) (*ReplayResult, error) {
	return ReplayOn(t, t.Header.Cfg)
}

// replayApp is one application being replayed.
type replayApp struct {
	info  AppInfo
	file  *pfs.File
	cls   []*pfs.Client
	timer *mpisim.PhaseTimer
	bar   *mpisim.Barrier
	// perRank[r] are the indices into the trace's record stream belonging
	// to rank r, in issue order.
	perRank [][]int32
}

// ReplayOn re-executes the trace on cfg — the header's platform by default
// (Replay), or a deliberately modified one (a different backend, a QoS
// scheduler enabled) for counterfactual what-if replays, where timings may
// of course diverge from the recording.
//
// The preparation mirrors core.Prepare operation for operation (file,
// timer and client construction order fix server-local file IDs, client IDs
// and the jitter stream), and the per-rank drivers mirror core's launch
// bodies, so an unmodified-platform replay reproduces the recorded event
// structure exactly.
func ReplayOn(t *Trace, cfg cluster.Config) (*ReplayResult, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	pl := cluster.Build(cfg)
	rec := NewRecorder(pl.E)
	rec.Reserve(len(t.Records))
	pl.FS.Sink = rec

	apps := make([]*replayApp, len(t.Header.Apps))
	for ai, info := range t.Header.Apps {
		stripe := info.Stripe
		if stripe <= 0 {
			stripe = cfg.StripeSize
		}
		lastNode := info.FirstNode + (info.Procs-1)/info.PPN
		if info.FirstNode < 0 || lastNode >= cfg.ComputeNodes {
			return nil, fmt.Errorf("trace: app %q spans nodes %d..%d beyond the %d-node platform",
				info.Name, info.FirstNode, lastNode, cfg.ComputeNodes)
		}
		a := &replayApp{
			info:    info,
			file:    pl.FS.CreateFile(info.Name, info.TargetServers, stripe),
			timer:   mpisim.NewPhaseTimer(pl.E, info.Procs),
			bar:     mpisim.NewBarrier(info.Procs),
			perRank: make([][]int32, info.Procs),
		}
		for i := 0; i < info.Procs; i++ {
			node := info.FirstNode + i/info.PPN
			cl := pl.FS.NewClient(pl.Nodes[node], ai)
			cl.Rank = i
			a.cls = append(a.cls, cl)
		}
		apps[ai] = a
	}
	for i := range t.Records {
		r := &t.Records[i]
		a := apps[r.App]
		a.perRank[r.Rank] = append(a.perRank[r.Rank], int32(i))
	}

	for _, a := range apps {
		a := a
		for rank := 0; rank < a.info.Procs; rank++ {
			rank := rank
			cl := a.cls[rank]
			pl.E.Spawn(fmt.Sprintf("%s/%d", a.info.Name, rank), func(p *sim.Proc) {
				if a.info.Start > 0 {
					p.Sleep(a.info.Start)
				}
				a.timer.Enter(p)
				if a.info.QD <= 1 {
					replayBlocking(p, t, pl.FS, a, cl, a.perRank[rank])
				} else {
					replayPipelined(p, t, pl.FS, a, cl, a.perRank[rank])
				}
				// A program may end in a compute phase, which leaves no
				// record to pace to; sleeping out the recorded phase end
				// reproduces the trailing pause. Purely local (no shared
				// resource is touched after a rank's last record), and a
				// no-op when the last completion is the phase end.
				pace(p, a.info.PhaseEnd)
				a.timer.Done()
			})
		}
	}
	pl.E.Run()

	res := &ReplayResult{
		Recorded: t.Header.Apps,
		Trace:    &Trace{Header: Header{Cfg: cfg}, Records: rec.Records()},
		Events:   pl.E.Executed(),
	}
	for _, a := range apps {
		if !a.timer.Finished() {
			return nil, fmt.Errorf("trace: replayed app %q did not finish (deadlock?)", a.info.Name)
		}
		elapsed := a.timer.Elapsed()
		res.Apps = append(res.Apps, core.AppResult{
			Name:       a.info.Name,
			Start:      a.timer.Start(),
			End:        a.timer.End(),
			Elapsed:    elapsed,
			Bytes:      a.info.Bytes,
			Throughput: sim.Rate(a.info.Bytes, elapsed),
		})
		// The replay's own trace must describe the replay: same app table,
		// but with the phase windows this run actually produced — on a
		// counterfactual platform they differ from the input's, and a saved
		// replay trace must verify against its own outcome, not the
		// original's.
		info := a.info
		info.PhaseStart = a.timer.Start()
		info.PhaseEnd = a.timer.End()
		res.Trace.Header.Apps = append(res.Trace.Header.Apps, info)
	}
	return res, nil
}

// pace sleeps from the current time to the record's absolute issue time —
// the single pause that stands in for whatever think time, compute phase or
// jitter preceded the operation in the recorded run. A recorded time in the
// past (possible only on a modified platform, where earlier operations may
// run slower than recorded) replays immediately, preserving order.
func pace(p *sim.Proc, at sim.Time) {
	if d := at - p.Now(); d > 0 {
		p.Sleep(d)
	}
}

// barrier re-enters the application barrier, re-emitting the barrier record
// exactly like core.runProgram does (the pfs client hook only covers I/O),
// so the replay's own recording matches the input stream record for record.
func barrier(p *sim.Proc, fs *pfs.FileSystem, a *replayApp, cl *pfs.Client) {
	idx := -1
	sink := fs.Sink
	if sink != nil {
		idx = sink.BeginRequest(Record{
			Time: p.Now(), App: int32(cl.App), Rank: int32(cl.Rank),
			Server: -1, Op: pfs.OpBarrier,
		})
	}
	a.bar.Wait(p, cl.Host.Egress.E)
	if sink != nil {
		sink.EndRequest(idx)
	}
}

// replayBlocking drives one rank of a queue-depth<=1 application: each
// record is paced to its issue time and executed blocking, exactly the
// event structure of core.runBurst's blocking path.
func replayBlocking(p *sim.Proc, t *Trace, fs *pfs.FileSystem, a *replayApp, cl *pfs.Client, idxs []int32) {
	for _, ri := range idxs {
		r := &t.Records[ri]
		pace(p, r.Time)
		switch r.Op {
		case pfs.OpBarrier:
			barrier(p, fs, a, cl)
		case pfs.OpRead:
			cl.Read(p, a.file, r.Off, r.Bytes)
		default:
			cl.Write(p, a.file, r.Off, r.Bytes)
		}
	}
}

// replayPipelined drives one rank of a queue-depth>1 application. Barrier
// records delimit the bursts: within each segment the rank re-runs
// core.runBurst's pipelined structure (semaphore of QD tokens, completion
// gate, pace-then-issue), draining fully before the barrier — which is
// exactly the recorded structure when each pipelined I/O phase ends at a
// barrier (or is the program's only one).
func replayPipelined(p *sim.Proc, t *Trace, fs *pfs.FileSystem, a *replayApp, cl *pfs.Client, idxs []int32) {
	i := 0
	for i < len(idxs) {
		j := i
		for j < len(idxs) && t.Records[idxs[j]].Op != pfs.OpBarrier {
			j++
		}
		if seg := idxs[i:j]; len(seg) > 0 {
			replayBurst(p, t, a, cl, seg)
		}
		if j < len(idxs) {
			pace(p, t.Records[idxs[j]].Time)
			barrier(p, fs, a, cl)
			j++
		}
		i = j
	}
}

// replayBurst mirrors core.runBurst's pipelined path over one segment.
func replayBurst(p *sim.Proc, t *Trace, a *replayApp, cl *pfs.Client, seg []int32) {
	e := cl.Host.Egress.E
	sem := sim.NewSemaphore(a.info.QD)
	gate := sim.NewGate(len(seg))
	for _, ri := range seg {
		r := &t.Records[ri]
		sem.Acquire(p)
		pace(p, r.Time)
		done := func() {
			sem.Release()
			gate.Done(e)
		}
		if r.Op == pfs.OpRead {
			cl.ReadAsync(a.file, r.Off, r.Bytes, done)
		} else {
			cl.WriteAsync(a.file, r.Off, r.Bytes, done)
		}
	}
	gate.Wait(p)
}
