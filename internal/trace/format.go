package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/pfs"
	"repro/internal/sim"
)

// On-disk layout: an 8-byte magic, a length-prefixed JSON header (platform
// configuration plus application table), the record count, then fixed-width
// little-endian records in issue-time order. 49 bytes per record — compact
// next to a textual log, trivially seekable, and byte-identical across
// platforms (no floats in the record; the header's floats round-trip
// through JSON exactly).

// magic identifies trace files; the trailing digit is the format version.
const magic = "IOTRACE1"

// recordSize is the packed wire size of one Record.
const recordSize = 8 + 8 + 8 + 8 + 4 + 4 + 4 + 4 + 1

// putRecord packs r into buf (which must hold recordSize bytes).
func putRecord(buf []byte, r *Record) {
	binary.LittleEndian.PutUint64(buf[0:], uint64(r.Time))
	binary.LittleEndian.PutUint64(buf[8:], uint64(r.Latency))
	binary.LittleEndian.PutUint64(buf[16:], uint64(r.Off))
	binary.LittleEndian.PutUint64(buf[24:], uint64(r.Bytes))
	binary.LittleEndian.PutUint32(buf[32:], uint32(r.App))
	binary.LittleEndian.PutUint32(buf[36:], uint32(r.Rank))
	binary.LittleEndian.PutUint32(buf[40:], uint32(r.Server))
	binary.LittleEndian.PutUint32(buf[44:], uint32(r.QD))
	buf[48] = byte(r.Op)
}

// getRecord unpacks r from buf.
func getRecord(buf []byte, r *Record) {
	r.Time = sim.Time(binary.LittleEndian.Uint64(buf[0:]))
	r.Latency = sim.Time(binary.LittleEndian.Uint64(buf[8:]))
	r.Off = int64(binary.LittleEndian.Uint64(buf[16:]))
	r.Bytes = int64(binary.LittleEndian.Uint64(buf[24:]))
	r.App = int32(binary.LittleEndian.Uint32(buf[32:]))
	r.Rank = int32(binary.LittleEndian.Uint32(buf[36:]))
	r.Server = int32(binary.LittleEndian.Uint32(buf[40:]))
	r.QD = int32(binary.LittleEndian.Uint32(buf[44:]))
	r.Op = pfs.Op(buf[48])
}

// Write streams the trace to w.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	hdr, err := json.Marshal(t.Header)
	if err != nil {
		return fmt.Errorf("trace: encoding header: %w", err)
	}
	var n [8]byte
	binary.LittleEndian.PutUint32(n[:4], uint32(len(hdr)))
	if _, err := bw.Write(n[:4]); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if _, err := bw.Write(hdr); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	binary.LittleEndian.PutUint64(n[:], uint64(len(t.Records)))
	if _, err := bw.Write(n[:]); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	var buf [recordSize]byte
	for i := range t.Records {
		putRecord(buf[:], &t.Records[i])
		if _, err := bw.Write(buf[:]); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	return bw.Flush()
}

// Read parses a trace from r and validates it.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [len(magic)]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(m[:]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q (not a %s file)", m, magic)
	}
	var n [8]byte
	if _, err := io.ReadFull(br, n[:4]); err != nil {
		return nil, fmt.Errorf("trace: reading header length: %w", err)
	}
	hlen := binary.LittleEndian.Uint32(n[:4])
	if hlen > 1<<24 {
		return nil, fmt.Errorf("trace: implausible header length %d", hlen)
	}
	hdr := make([]byte, hlen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	t := &Trace{}
	if err := json.Unmarshal(hdr, &t.Header); err != nil {
		return nil, fmt.Errorf("trace: decoding header: %w", err)
	}
	if _, err := io.ReadFull(br, n[:]); err != nil {
		return nil, fmt.Errorf("trace: reading record count: %w", err)
	}
	count := binary.LittleEndian.Uint64(n[:])
	// The cap keeps indices safely inside the replayer's int32 per-rank
	// buckets (2^31 records is already a >100 GB file).
	if count > 1<<31-1 {
		return nil, fmt.Errorf("trace: implausible record count %d", count)
	}
	// Allocate incrementally rather than trusting count up front: a corrupt
	// or adversarial count field could otherwise demand a ~100 GB slice
	// before the first record byte is read. Capping the initial capacity
	// keeps memory proportional to the bytes actually present — a short
	// stream fails with a read error after a small allocation.
	const initialCap = 1 << 16
	t.Records = make([]Record, 0, min(count, initialCap))
	var buf [recordSize]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("trace: reading record %d of %d: %w", i, count, err)
		}
		var rec Record
		getRecord(buf[:], &rec)
		t.Records = append(t.Records, rec)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteFile writes the trace to path.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads and validates the trace at path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	t, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
