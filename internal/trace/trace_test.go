package trace_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/pfs"
	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// testCfg is a small platform that keeps trace tests fast.
func testCfg() cluster.Config {
	cfg := cluster.Default()
	cfg.ComputeNodes = 4
	cfg.CoresPerNode = 4
	cfg.Servers = 2
	return cfg
}

// checkpointProgram is a 3-iteration periodic checkpoint: collective entry
// barrier, contiguous burst, fixed compute pause.
func checkpointProgram(block int64) *workload.Program {
	return &workload.Program{
		Iterations: 3,
		Phases: []workload.Phase{
			{Kind: workload.PhaseBarrier},
			{Kind: workload.PhaseIO, IO: workload.Spec{Pattern: workload.Contiguous, BlockBytes: block}},
			{Kind: workload.PhaseCompute, Compute: int64(20 * sim.Millisecond)},
		},
		Seed: 7,
	}
}

// roundTrip records the given apps, replays the trace on the same platform,
// and requires bit-identical per-app completion windows AND a bit-identical
// re-recorded stream.
func roundTrip(t *testing.T, cfg cluster.Config, apps []core.AppSpec) (*trace.Trace, *trace.ReplayResult) {
	t.Helper()
	tr, res := trace.RecordRun(cfg, apps)
	if len(tr.Records) == 0 {
		t.Fatal("recorded no records")
	}
	rep, err := trace.Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical() {
		for i, a := range rep.Apps {
			t.Errorf("app %s: recorded [%d..%d], replayed [%d..%d]",
				a.Name, rep.Recorded[i].PhaseStart, rep.Recorded[i].PhaseEnd, a.Start, a.End)
		}
		t.Fatal("replay diverged from recording")
	}
	for i, a := range rep.Apps {
		if a.Elapsed != res.Apps[i].Elapsed {
			t.Fatalf("app %s: replayed elapsed %v, recorded %v", a.Name, a.Elapsed, res.Apps[i].Elapsed)
		}
	}
	if len(rep.Trace.Records) != len(tr.Records) {
		t.Fatalf("replay recorded %d records, original %d", len(rep.Trace.Records), len(tr.Records))
	}
	for i := range tr.Records {
		if tr.Records[i] != rep.Trace.Records[i] {
			t.Fatalf("record %d diverged:\n recorded %+v\n replayed %+v", i, tr.Records[i], rep.Trace.Records[i])
		}
	}
	return tr, rep
}

// TestRoundTripBlocking pins the determinism contract on the main case: a
// barrier-synchronized periodic checkpoint program co-running with a plain
// contiguous writer, both blocking (QD <= 1).
func TestRoundTripBlocking(t *testing.T) {
	cfg := testCfg()
	apps := []core.AppSpec{
		{Name: "ckpt", Procs: 8, FirstNode: 0, ProcsPerNode: 4,
			Program: checkpointProgram(1 << 20)},
		{Name: "bulk", Procs: 4, FirstNode: 2, ProcsPerNode: 4,
			Workload: workload.Spec{Pattern: workload.Contiguous, BlockBytes: 2 << 20}},
	}
	tr, _ := roundTrip(t, cfg, apps)
	// The checkpoint app must have emitted its barrier records.
	sums := trace.Summarize(tr)
	if want := int64(3 * 8); sums[0].Barriers != want {
		t.Fatalf("ckpt barriers = %d, want %d", sums[0].Barriers, want)
	}
	if want := int64(3 * 8); sums[0].Writes != want {
		t.Fatalf("ckpt writes = %d, want %d", sums[0].Writes, want)
	}
}

// TestRoundTripPipelined pins the contract for a queue-depth>1 single-burst
// application (one semaphore window, like core.runBurst's pipelined path).
func TestRoundTripPipelined(t *testing.T) {
	cfg := testCfg()
	apps := []core.AppSpec{
		{Name: "pipe", Procs: 4, FirstNode: 0, ProcsPerNode: 4,
			Workload: workload.Spec{Pattern: workload.Strided, BlockBytes: 2 << 20,
				TransferSize: 256 << 10, QD: 4}},
		{Name: "other", Procs: 4, FirstNode: 1, ProcsPerNode: 4,
			Workload: workload.Spec{Pattern: workload.Contiguous, BlockBytes: 1 << 20}},
	}
	roundTrip(t, cfg, apps)
}

// TestRoundTripJitter pins the contract for a Poisson-jittered bursty
// program: the seeded jitter stream reproduces, so the replay does too.
func TestRoundTripJitter(t *testing.T) {
	cfg := testCfg()
	bursty := func(seed uint64) *workload.Program {
		return &workload.Program{
			Iterations: 3,
			Phases: []workload.Phase{
				{Kind: workload.PhaseCompute, Compute: int64(5 * sim.Millisecond),
					JitterMean: int64(15 * sim.Millisecond)},
				{Kind: workload.PhaseIO, IO: workload.Spec{Pattern: workload.Contiguous, BlockBytes: 1 << 20}},
			},
			Seed: seed,
		}
	}
	apps := []core.AppSpec{
		{Name: "t1", Procs: 4, FirstNode: 0, ProcsPerNode: 4, Program: bursty(11)},
		{Name: "t2", Procs: 4, FirstNode: 1, ProcsPerNode: 4, Program: bursty(23)},
	}
	tr, _ := roundTrip(t, cfg, apps)
	// Distinct seeds must decorrelate the two tenants' burst times.
	var first [2]sim.Time
	seen := [2]bool{}
	for _, r := range tr.Records {
		if !seen[r.App] {
			first[r.App] = r.Time
			seen[r.App] = true
		}
	}
	if first[0] == first[1] {
		t.Fatalf("tenants with distinct seeds issued first bursts at the same time %v", first[0])
	}
}

// TestProgramDeterminism: two fresh runs of a jittered program produce
// byte-identical traces.
func TestProgramDeterminism(t *testing.T) {
	cfg := testCfg()
	apps := []core.AppSpec{
		{Name: "t1", Procs: 4, FirstNode: 0, ProcsPerNode: 4,
			Program: &workload.Program{
				Iterations: 2,
				Phases: []workload.Phase{
					{Kind: workload.PhaseCompute, Compute: int64(sim.Millisecond), JitterMean: int64(10 * sim.Millisecond)},
					{Kind: workload.PhaseIO, IO: workload.Spec{Pattern: workload.Contiguous, BlockBytes: 1 << 20}},
				},
				Seed: 42,
			}},
	}
	a, resA := trace.RecordRun(cfg, apps)
	b, resB := trace.RecordRun(cfg, apps)
	if !reflect.DeepEqual(a.Records, b.Records) {
		t.Fatal("two identical runs recorded different traces")
	}
	if resA.Apps[0].Elapsed != resB.Apps[0].Elapsed {
		t.Fatal("two identical runs finished at different times")
	}
}

// TestReplayCounterfactual replays a recorded trace on a modified platform
// (fair-share QoS enabled): the replay must complete sanely, and the
// bit-identity guarantee explicitly does not apply.
func TestReplayCounterfactual(t *testing.T) {
	cfg := testCfg()
	apps := []core.AppSpec{
		{Name: "ckpt", Procs: 8, FirstNode: 0, ProcsPerNode: 4,
			Program: checkpointProgram(1 << 20)},
		{Name: "bulk", Procs: 4, FirstNode: 2, ProcsPerNode: 4,
			Workload: workload.Spec{Pattern: workload.Contiguous, BlockBytes: 2 << 20}},
	}
	tr, _ := trace.RecordRun(cfg, apps)
	qcfg := cfg
	qcfg.Srv.QoS = qos.Params{Kind: qos.FairShare, FlowSlots: 2}
	rep, err := trace.ReplayOn(tr, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range rep.Apps {
		if a.Elapsed <= 0 {
			t.Fatalf("app %s: non-positive replayed elapsed %v", a.Name, a.Elapsed)
		}
		// The replay's own trace must describe the replay's outcome, not
		// the original's — a saved counterfactual trace verifies against
		// itself.
		if h := rep.Trace.Header.Apps[i]; h.PhaseStart != a.Start || h.PhaseEnd != a.End {
			t.Fatalf("app %s: replay trace header window [%v..%v] != replayed [%v..%v]",
				a.Name, h.PhaseStart, h.PhaseEnd, a.Start, a.End)
		}
	}
}

// TestFormatRoundTrip: Write then Read reproduces header and records.
func TestFormatRoundTrip(t *testing.T) {
	cfg := testCfg()
	apps := []core.AppSpec{
		{Name: "ckpt", Procs: 4, FirstNode: 0, ProcsPerNode: 4,
			Program: checkpointProgram(1 << 20)},
	}
	tr, _ := trace.RecordRun(cfg, apps)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Header, tr.Header) {
		t.Fatalf("header drift:\n got %+v\nwant %+v", got.Header, tr.Header)
	}
	if !reflect.DeepEqual(got.Records, tr.Records) {
		t.Fatal("records drift through the format")
	}
	// And the decoded trace must replay bit-identically too — the on-disk
	// format preserves everything replay needs.
	rep, err := trace.Replay(got)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical() {
		t.Fatal("replay of a decoded trace diverged")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := trace.Read(bytes.NewReader([]byte("not a trace at all"))); err == nil {
		t.Fatal("expected an error for a bad magic")
	}
}

// TestSummarize checks the Darshan-style counters on a hand-built trace.
func TestSummarize(t *testing.T) {
	ms := sim.Millisecond
	tr := &trace.Trace{
		Header: trace.Header{
			Apps: []trace.AppInfo{{Name: "A", Procs: 2, PPN: 2, PhaseStart: 0, PhaseEnd: 10 * ms}},
		},
		Records: []trace.Record{
			{Time: 0, Latency: 2 * ms, Off: 0, Bytes: 128 << 10, App: 0, Rank: 0, QD: 1, Op: pfs.OpWrite},
			{Time: 2 * ms, Latency: 2 * ms, Off: 128 << 10, Bytes: 128 << 10, App: 0, Rank: 0, QD: 1, Op: pfs.OpWrite},
			{Time: 0, Latency: 3 * ms, Off: 1 << 30, Bytes: 8 << 20, App: 0, Rank: 1, QD: 2, Op: pfs.OpRead},
			{Time: 5 * ms, Latency: 1 * ms, App: 0, Rank: 0, Op: pfs.OpBarrier},
		},
	}
	s := trace.Summarize(tr)[0]
	if s.Writes != 2 || s.Reads != 1 || s.Barriers != 1 {
		t.Fatalf("counts: %+v", s)
	}
	if s.BytesWritten != 256<<10 || s.BytesRead != 8<<20 {
		t.Fatalf("bytes: %+v", s)
	}
	if s.IOTime != 7*ms || s.BarrierTime != 1*ms {
		t.Fatalf("times: io %v barrier %v", s.IOTime, s.BarrierTime)
	}
	if s.MinLat != 2*ms || s.MaxLat != 3*ms || s.MaxQD != 2 {
		t.Fatalf("lat: %+v", s)
	}
	// Rank 0's second write continues at the first's end offset.
	if s.Sequential != 1 {
		t.Fatalf("sequential = %d, want 1", s.Sequential)
	}
	// 128 KiB requests land in the 64-256K bucket; the 8 MiB read in >=4M.
	if s.SizeHist[1] != 2 || s.SizeHist[4] != 1 {
		t.Fatalf("hist: %v", s.SizeHist)
	}
}

// TestRecorderZeroAlloc pins the recorder's steady-state record path at
// zero allocations once capacity is reserved.
func TestRecorderZeroAlloc(t *testing.T) {
	e := sim.NewEngine()
	rec := trace.NewRecorder(e)
	const n = 1000
	rec.Reserve(n + 10)
	i := 0
	allocs := testing.AllocsPerRun(n, func() {
		idx := rec.BeginRequest(trace.Record{Time: sim.Time(i), Bytes: 1 << 20, Op: pfs.OpWrite})
		rec.EndRequest(idx)
		i++
	})
	if allocs != 0 {
		t.Fatalf("record path allocates %.1f/op, want 0", allocs)
	}
}

func TestValidateErrors(t *testing.T) {
	good := trace.Trace{Header: trace.Header{Apps: []trace.AppInfo{{Name: "A", Procs: 2, PPN: 2}}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []trace.Trace{
		{},
		{Header: trace.Header{Apps: []trace.AppInfo{{Name: "A", Procs: 0, PPN: 2}}}},
		{Header: good.Header, Records: []trace.Record{{App: 1}}},
		{Header: good.Header, Records: []trace.Record{{App: 0, Rank: 5}}},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}
