// Package trace is the request-level trace subsystem: a zero-allocation
// recorder that hooks the pfs client path (one record per request — issue
// time, app, rank, server, offset, bytes, observed queue depth, latency,
// plus barrier entries from the workload-program layer), a compact sorted
// on-disk format, a Darshan-style per-application summarizer, and a
// replayer that drives a freshly built cluster from a recorded trace as a
// first-class workload source.
//
// # Replay determinism contract
//
// The simulator is deterministic, so a replay that reproduces the recorded
// run's event structure reproduces its timing bit for bit. The replayer
// achieves that by mirroring the experiment layer exactly — same platform
// construction order, same spawn order, same phase-timer barriers — and
// then, per rank, sleeping from each wake-up point to the next record's
// absolute timestamp before reissuing it. Because the recorded run only
// ever schedules one pause between consecutive operations of a rank (the
// discipline core.runProgram and core.runBurst keep), the replayed sleep is
// scheduled at the same instant, with the same delay, from the same event
// as the original pause, and every downstream decision — issue-jitter
// draws, server queue order, TCP dynamics — replays identically.
//
// The contract's fine print: blocking applications (queue depth <= 1, all
// the built-in scenarios) replay exactly, as do pipelined (QD > 1)
// single-burst applications and pipelined programs whose I/O phases are
// separated by barrier phases (the barrier records delimit each burst's
// semaphore window). A pipelined program with back-to-back unbarriered I/O
// phases replays with one merged semaphore window per barrier-delimited
// segment, which preserves per-rank request order but may shift timings.
// Replaying on a modified platform (ReplayOn — a different backend, a QoS
// scheduler enabled) is deliberately counterfactual: timings then answer
// "what would this recorded workload have seen", and the bit-identity
// guarantee does not apply.
package trace

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// Record is one request-level trace record (see pfs.IORecord for the field
// contract). Records in a Trace are sorted by issue time — the recorder
// appends them in simulation order, which is already chronological.
type Record = pfs.IORecord

// AppInfo describes one application of a recorded run: everything the
// replayer needs to rebuild the application (placement, file layout, queue
// depth, start offset) plus the recorded outcome (the collective phase
// window) that round-trip verification compares against.
type AppInfo struct {
	Name          string   `json:"name"`
	Procs         int      `json:"procs"`
	FirstNode     int      `json:"first_node"`
	PPN           int      `json:"ppn"`
	TargetServers []int    `json:"target_servers,omitempty"`
	Stripe        int64    `json:"stripe,omitempty"`
	QD            int      `json:"qd,omitempty"`
	Start         sim.Time `json:"start,omitempty"`
	// PhaseStart/PhaseEnd are the recorded collective I/O phase window —
	// the per-application completion times a replay must reproduce.
	PhaseStart sim.Time `json:"phase_start"`
	PhaseEnd   sim.Time `json:"phase_end"`
	// Bytes is the application's total traffic (all processes).
	Bytes int64 `json:"bytes"`
}

// Elapsed returns the recorded collective phase duration.
func (a AppInfo) Elapsed() sim.Time { return a.PhaseEnd - a.PhaseStart }

// Header is the trace preamble: the full platform configuration (which
// round-trips through JSON exactly — every parameter struct is plain
// exported data) and the application table.
type Header struct {
	Cfg  cluster.Config `json:"cfg"`
	Apps []AppInfo      `json:"apps"`
}

// Trace is one recorded run: header plus the time-sorted record stream.
type Trace struct {
	Header  Header
	Records []Record
}

// AppNames returns the application names in app-ID order.
func (t *Trace) AppNames() []string {
	names := make([]string, len(t.Header.Apps))
	for i, a := range t.Header.Apps {
		names[i] = a.Name
	}
	return names
}

// Recorder is the in-memory pfs.IOSink: it appends one record per request
// at issue and patches the latency in place at completion. The steady-state
// record path performs no allocation once the backing slice has grown (or
// been Reserved) to the run's request count.
type Recorder struct {
	e    *sim.Engine
	recs []Record
}

// NewRecorder returns a recorder reading timestamps from e.
func NewRecorder(e *sim.Engine) *Recorder { return &Recorder{e: e} }

// Reserve grows the backing slice to hold at least n records, so a run with
// a known request count records without any allocation at all.
func (r *Recorder) Reserve(n int) {
	if cap(r.recs)-len(r.recs) < n {
		grown := make([]Record, len(r.recs), len(r.recs)+n)
		copy(grown, r.recs)
		r.recs = grown
	}
}

// BeginRequest implements pfs.IOSink: append the issue-time record.
func (r *Recorder) BeginRequest(rec Record) int {
	r.recs = append(r.recs, rec)
	return len(r.recs) - 1
}

// EndRequest implements pfs.IOSink: patch the record's latency in place.
func (r *Recorder) EndRequest(idx int) {
	r.recs[idx].Latency = r.e.Now() - r.recs[idx].Time
}

// Len returns the number of records captured so far.
func (r *Recorder) Len() int { return len(r.recs) }

// Records returns the captured records (the recorder's backing slice).
func (r *Recorder) Records() []Record { return r.recs }

// RecordRun executes one simulation of the given applications with a
// recorder attached and returns the trace alongside the run's results. It
// is core.Prepare + Run with the pfs sink installed; to record the δ=0
// co-run of a δ-graph spec, pass spec.Cfg and spec.AppsAt(0).
func RecordRun(cfg cluster.Config, apps []core.AppSpec) (*Trace, core.RunResult) {
	x := core.Prepare(cfg, apps) // validates the specs (panics like Prepare)
	rec := NewRecorder(x.Platform.E)
	// The request count is known up front, so the whole run records without
	// a single allocation on the record path.
	n := 0
	for _, a := range apps {
		if a.Program != nil {
			n += a.Procs * (a.Program.Requests() + a.Program.Barriers())
		} else {
			n += a.Procs * a.Workload.Requests()
		}
	}
	rec.Reserve(n)
	x.Platform.FS.Sink = rec
	res := x.Run()
	t := &Trace{Header: Header{Cfg: cfg}, Records: rec.Records()}
	for i, a := range apps {
		t.Header.Apps = append(t.Header.Apps, AppInfo{
			Name:          a.Name,
			Procs:         a.Procs,
			FirstNode:     a.FirstNode,
			PPN:           a.ProcsPerNode,
			TargetServers: a.TargetServers,
			Stripe:        a.Stripe,
			QD:            appQD(a),
			Start:         a.Start,
			PhaseStart:    res.Apps[i].Start,
			PhaseEnd:      res.Apps[i].End,
			Bytes:         res.Apps[i].Bytes,
		})
	}
	return t, res
}

// appQD returns the queue depth the replayer must honor for one app.
func appQD(a core.AppSpec) int {
	if a.Program != nil {
		return a.Program.MaxQD()
	}
	return a.Workload.QD
}

// Validate checks the trace for structural consistency: a present header,
// and every record's app/rank within the header's application table.
func (t *Trace) Validate() error {
	if len(t.Header.Apps) == 0 {
		return fmt.Errorf("trace: header has no applications")
	}
	for i, a := range t.Header.Apps {
		if a.Procs <= 0 || a.PPN <= 0 {
			return fmt.Errorf("trace: app %d (%q): procs/ppn must be positive", i, a.Name)
		}
	}
	for i, r := range t.Records {
		if int(r.App) < 0 || int(r.App) >= len(t.Header.Apps) {
			return fmt.Errorf("trace: record %d: app %d outside the %d-app table", i, r.App, len(t.Header.Apps))
		}
		if int(r.Rank) < 0 || int(r.Rank) >= t.Header.Apps[r.App].Procs {
			return fmt.Errorf("trace: record %d: rank %d outside app %d's %d procs",
				i, r.Rank, r.App, t.Header.Apps[r.App].Procs)
		}
	}
	return nil
}
