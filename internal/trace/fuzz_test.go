package trace

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// fuzzSeedTrace builds a small valid trace whose encoding seeds the fuzzer
// with a structurally complete input (magic, JSON header, count, records).
func fuzzSeedTrace() *Trace {
	t := &Trace{Header: Header{Cfg: cluster.Default()}}
	t.Header.Apps = []AppInfo{
		{Name: "A", Procs: 2, PPN: 1, QD: 1, PhaseEnd: sim.Second, Bytes: 96},
	}
	t.Records = []Record{
		{Time: 10, Latency: 5, Off: 0, Bytes: 64, App: 0, Rank: 0, Server: 1, QD: 1, Op: pfs.OpWrite},
		{Time: 12, Latency: 7, Off: 64, Bytes: 32, App: 0, Rank: 1, Server: 0, QD: 1, Op: pfs.OpRead},
		{Time: 20, App: 0, Rank: 0, Server: -1, Op: pfs.OpBarrier},
	}
	return t
}

// FuzzTraceFormat feeds arbitrary bytes to the IOTRACE1 decoder. The
// invariants: Read never panics and never allocates unboundedly (a corrupt
// record count must fail after a bounded allocation, not demand 100 GB up
// front), and any stream that decodes successfully round-trips — encoding
// the decoded trace and decoding it again reproduces it exactly.
func FuzzTraceFormat(f *testing.F) {
	var valid bytes.Buffer
	if err := fuzzSeedTrace().Write(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())-20]) // truncated mid-record
	f.Add([]byte("IOTRACE1"))                    // magic only
	f.Add([]byte("IOTRACE2\x00\x00\x00\x00"))    // wrong version
	// Tiny header, then a count of 2^40 with no records behind it.
	f.Add([]byte("IOTRACE1\x02\x00\x00\x00{}\x00\x00\x00\x00\x00\x01\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs just need to fail cleanly
		}
		var enc bytes.Buffer
		if err := tr.Write(&enc); err != nil {
			t.Fatalf("encoding a decoded trace failed: %v", err)
		}
		tr2, err := Read(bytes.NewReader(enc.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding an encoded trace failed: %v", err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatalf("encode/decode round-trip drift:\n got %+v\nwant %+v", tr2, tr)
		}
	})
}

// TestReadBoundedAllocation pins the decoder's defense against corrupt
// record counts: a header claiming 2^30 records backed by zero bytes must
// fail with a read error — quickly and without the ~60 GB allocation a
// trusting decoder would attempt.
func TestReadBoundedAllocation(t *testing.T) {
	var b bytes.Buffer
	tr := fuzzSeedTrace()
	tr.Records = nil
	if err := tr.Write(&b); err != nil {
		t.Fatal(err)
	}
	data := b.Bytes()
	// Patch the trailing 8-byte count to 2^30.
	copy(data[len(data)-8:], []byte{0, 0, 0, 0x40, 0, 0, 0, 0})
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupt count decoded successfully")
	}
}
