package trace

import (
	"fmt"

	"repro/internal/pfs"
	"repro/internal/report"
	"repro/internal/sim"
)

// sizeBuckets are the request-size histogram edges, in the spirit of
// Darshan's POSIX access-size counters.
var sizeBuckets = [...]int64{64 << 10, 256 << 10, 1 << 20, 4 << 20}

// SizeBucketLabels names the histogram buckets of AppSummary.SizeHist.
func SizeBucketLabels() []string {
	return []string{"<64K", "64-256K", "256K-1M", "1-4M", ">=4M"}
}

// AppSummary is the Darshan-style per-application digest of a trace: the
// counters a darshan-parser job summary reports, computed from the
// request-level records.
type AppSummary struct {
	Name  string
	Procs int

	// Request and byte counters, split by direction.
	Writes, Reads, Barriers int64
	BytesWritten, BytesRead int64

	// PhaseStart/PhaseEnd are the recorded collective phase window.
	PhaseStart, PhaseEnd sim.Time

	// IOTime is the summed request latency over all ranks (Darshan's
	// F_WRITE/READ_TIME); BarrierTime the summed barrier wait (F_META-ish
	// synchronization cost).
	IOTime, BarrierTime sim.Time

	// Request latency extremes and mean.
	MinLat, MaxLat, MeanLat sim.Time

	// MaxQD is the largest observed per-process queue depth.
	MaxQD int32

	// SizeHist counts requests per size bucket (see SizeBucketLabels).
	SizeHist [len(sizeBuckets) + 1]int64

	// Sequential counts requests contiguous with the same rank's previous
	// request (Darshan's SEQ counter); SeqFraction is its share.
	Sequential int64
}

// IORequests returns the total I/O request count.
func (s *AppSummary) IORequests() int64 { return s.Writes + s.Reads }

// SeqFraction returns the share of I/O requests issued sequentially.
func (s *AppSummary) SeqFraction() float64 {
	if n := s.IORequests(); n > 0 {
		return float64(s.Sequential) / float64(n)
	}
	return 0
}

// bucket returns the histogram bucket index of a request size.
func bucket(n int64) int {
	for i, edge := range sizeBuckets {
		if n < edge {
			return i
		}
	}
	return len(sizeBuckets)
}

// Summarize computes the per-application digests of a trace, in app order.
func Summarize(t *Trace) []AppSummary {
	out := make([]AppSummary, len(t.Header.Apps))
	// lastEnd[app][rank] tracks each rank's previous request end offset for
	// the sequential-access counter.
	lastEnd := make([][]int64, len(t.Header.Apps))
	for i, a := range t.Header.Apps {
		out[i] = AppSummary{
			Name: a.Name, Procs: a.Procs,
			PhaseStart: a.PhaseStart, PhaseEnd: a.PhaseEnd,
			MinLat: sim.MaxTime,
		}
		lastEnd[i] = make([]int64, a.Procs)
		for r := range lastEnd[i] {
			lastEnd[i][r] = -1
		}
	}
	for i := range t.Records {
		r := &t.Records[i]
		s := &out[r.App]
		if r.Op == pfs.OpBarrier {
			s.Barriers++
			s.BarrierTime += r.Latency
			continue
		}
		if r.Op == pfs.OpRead {
			s.Reads++
			s.BytesRead += r.Bytes
		} else {
			s.Writes++
			s.BytesWritten += r.Bytes
		}
		s.IOTime += r.Latency
		if r.Latency < s.MinLat {
			s.MinLat = r.Latency
		}
		if r.Latency > s.MaxLat {
			s.MaxLat = r.Latency
		}
		if r.QD > s.MaxQD {
			s.MaxQD = r.QD
		}
		s.SizeHist[bucket(r.Bytes)]++
		if lastEnd[r.App][r.Rank] == r.Off {
			s.Sequential++
		}
		lastEnd[r.App][r.Rank] = r.Off + r.Bytes
	}
	for i := range out {
		s := &out[i]
		if n := s.IORequests(); n > 0 {
			s.MeanLat = s.IOTime / sim.Time(n)
		} else {
			s.MinLat = 0
		}
	}
	return out
}

// RenderSummary tabulates the Darshan-style per-application digest.
// Callers rendering several views compute Summarize(t) once and pass it to
// each renderer.
func RenderSummary(title string, sums []AppSummary) *report.Table {
	tb := report.New(title,
		"app", "procs", "writes", "reads", "barriers", "MiB_w", "MiB_r",
		"phase_s", "io_s", "barrier_s", "mean_lat_ms", "max_lat_ms", "max_qd", "seq_pct")
	for _, s := range sums {
		tb.Add(s.Name, s.Procs, s.Writes, s.Reads, s.Barriers,
			float64(s.BytesWritten)/(1<<20), float64(s.BytesRead)/(1<<20),
			(s.PhaseEnd - s.PhaseStart).Seconds(),
			s.IOTime.Seconds(), s.BarrierTime.Seconds(),
			s.MeanLat.Millis(), s.MaxLat.Millis(), s.MaxQD, 100*s.SeqFraction())
	}
	return tb
}

// RenderSizeHist tabulates the per-application request-size histograms.
func RenderSizeHist(title string, sums []AppSummary) *report.Table {
	cols := append([]string{"app"}, SizeBucketLabels()...)
	tb := report.New(title, cols...)
	for _, s := range sums {
		row := make([]interface{}, 0, len(cols))
		row = append(row, s.Name)
		for _, n := range s.SizeHist {
			row = append(row, n)
		}
		tb.Add(row...)
	}
	return tb
}

// RenderRoundTrip tabulates recorded versus replayed per-application phase
// windows — the bit-identity verification view.
func RenderRoundTrip(title string, r *ReplayResult) *report.Table {
	tb := report.New(title, "app", "recorded_s", "replayed_s", "delta_ns", "identical")
	for i, a := range r.Apps {
		rec := r.Recorded[i]
		tb.Add(a.Name, rec.Elapsed().Seconds(), a.Elapsed.Seconds(),
			int64(a.Elapsed-rec.Elapsed()),
			fmt.Sprintf("%v", a.Start == rec.PhaseStart && a.End == rec.PhaseEnd))
	}
	return tb
}
