package report

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// sweep builds a tiny hand-made two-arm sweep: the baseline and a scheme
// that halves the victim's interference at a small throughput cost.
func sweep() *core.Sweep {
	point := func(ifB float64, tp float64) core.DeltaPoint {
		return core.DeltaPoint{
			Start:      []sim.Time{0, sim.Second},
			Elapsed:    []sim.Time{sim.Second, 2 * sim.Second},
			IF:         []float64{1.1, ifB},
			Throughput: []float64{tp, tp / 2},
		}
	}
	return &core.Sweep{
		Schemes: []core.Scheme{{Name: "off"}, {Name: "fairshare"}},
		Graphs: []*core.DeltaGraph{
			{Alone: []sim.Time{sim.Second, sim.Second}, Points: []core.DeltaPoint{point(3, 300e6)}},
			{Alone: []sim.Time{sim.Second, sim.Second}, Points: []core.DeltaPoint{point(1.5, 270e6)}},
		},
	}
}

func TestRenderPareto(t *testing.T) {
	tab := RenderPareto("pareto", sweep())
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var b strings.Builder
	if err := tab.WriteTSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// The fairshare arm halves the peak (3 -> 1.5): a 50% reduction at a
	// 10% aggregate cost.
	if !strings.Contains(out, "fairshare\t1.5\t50\t") {
		t.Fatalf("fairshare row wrong:\n%s", out)
	}
	if !strings.Contains(out, "off\t3\t0\t") {
		t.Fatalf("baseline row wrong:\n%s", out)
	}
}

func TestRenderSweepGraphs(t *testing.T) {
	tab := RenderSweepGraphs("graphs", sweep(), []string{"A", "B"})
	if len(tab.Rows) != 2 { // one δ point per arm
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if got := len(tab.Cols); got != 2+2*2 {
		t.Fatalf("cols = %d", got)
	}
}

func TestRenderSummary(t *testing.T) {
	s := sweep()
	tab := RenderSummary([]string{"scenario-x"}, []*core.Sweep{s})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched titles must panic")
		}
	}()
	RenderSummary([]string{"a", "b"}, []*core.Sweep{s})
}
