// Package report renders mitigation-sweep results (core.Sweep) as tables:
// the per-scheme Pareto view — interference removed versus aggregate
// throughput paid — that cmd/scenarios -qos and paperrepro -exp mitigate
// print. It builds on the repository-wide table writer (internal/report).
package report

import (
	"fmt"

	"repro/internal/core"
	basereport "repro/internal/report"
)

// RenderPareto tabulates one sweep's Pareto rows: per scheme, the peak
// interference factor, its reduction against the baseline arm, the
// unfairness, the aggregate throughput and its cost. A scheme strictly
// better than another on both the dIF and tp_cost columns dominates it;
// the interesting schedulers are the non-dominated (Pareto) set.
func RenderPareto(title string, sweep *core.Sweep) *basereport.Table {
	t := basereport.New(title,
		"scheduler", "peak_IF", "dIF_pct", "unfairness", "agg_MBps", "tp_cost_pct")
	for _, r := range sweep.Pareto() {
		t.Add(r.Name, r.PeakIF, r.IFReductionPct, r.Unfairness, r.AggBps/1e6, r.TPCostPct)
	}
	return t
}

// RenderSweepGraphs tabulates every arm's δ-graph side by side: one row
// per (scheme, δ) with per-application elapsed and IF columns — the raw
// data behind a Pareto row, for when a summary needs explaining.
func RenderSweepGraphs(title string, sweep *core.Sweep, names []string) *basereport.Table {
	cols := []string{"scheduler", "delta_s"}
	for _, n := range names {
		cols = append(cols, n+"_s", "IF_"+n)
	}
	t := basereport.New(title, cols...)
	for i, g := range sweep.Graphs {
		for _, p := range g.Points {
			row := []interface{}{sweep.Schemes[i].Name, p.Delta.Seconds()}
			for a := range p.Elapsed {
				row = append(row, p.Elapsed[a].Seconds(), p.IF[a])
			}
			t.Add(row...)
		}
	}
	return t
}

// RenderSummary tabulates one line per (scenario, scheme) over many sweeps
// — the campaign-level view paperrepro -exp mitigate ends with.
func RenderSummary(titles []string, sweeps []*core.Sweep) *basereport.Table {
	if len(titles) != len(sweeps) {
		panic(fmt.Sprintf("qos/report: %d titles for %d sweeps", len(titles), len(sweeps)))
	}
	t := basereport.New("mitigation summary",
		"scenario", "scheduler", "peak_IF", "dIF_pct", "tp_cost_pct")
	for i, s := range sweeps {
		for _, r := range s.Pareto() {
			t.Add(titles[i], r.Name, r.PeakIF, r.IFReductionPct, r.TPCostPct)
		}
	}
	return t
}
