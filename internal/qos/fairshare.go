package qos

import "repro/internal/sim"

// fairShare is deficit round-robin (Shreedhar & Varghese) across
// application IDs at flow-slot granularity: applications take service
// turns in cyclic order; entering a turn adds a byte quantum to the
// application's deficit, and its oldest queued requests are admitted while
// the deficit covers them. Large requests therefore cannot monopolize the
// flow slots — an elephant's multi-megabyte requests and a mouse's small
// ones are interleaved in proportion to bytes, not request count, which is
// exactly the asymmetry the elephant-and-mice scenarios measure.
//
// Standard DRR details kept: an application's deficit is forfeited while
// it has nothing queued (credit does not accrue during idleness), and a
// turn stays open across consecutive Pick calls until the deficit no
// longer covers the head request — one Pick performs one grant, so the
// classic "serve while deficit lasts" inner loop unrolls across calls.
//
// fairShare also implements DepthAdvisor: while two or more applications
// have demand at the server, every application is clamped to the
// InflightChunks pipeline budget. Grant-time DRR alone cannot preempt a
// multi-megabyte request already holding a flow slot, and it is that
// request's deep device backlog a small victim request queues behind; the
// clamp keeps each contender's backlog to budget × chunk-size bytes. Solo
// applications stay unclamped, so alone baselines are unaffected.
type fairShare struct {
	quantum int64
	budget  int // in-flight chunk budget per contending application
	tel     *Telemetry
	cur     int // application whose service turn is open (-1 = none yet)

	deficit []int64
	head    []int32 // scratch: queue index of each app's oldest request, -1 = none
}

// AppDepth implements DepthAdvisor: the shared budget under contention,
// unbounded otherwise.
func (f *fairShare) AppDepth(app int) int {
	if f.budget > 0 && f.tel.DemandApps() >= 2 {
		return f.budget
	}
	return 0
}

// grow sizes the per-application state for ids 0..n-1.
func (f *fairShare) grow(n int) {
	for len(f.deficit) < n {
		f.deficit = append(f.deficit, 0)
		f.head = append(f.head, -1)
	}
}

func (f *fairShare) Pick(now sim.Time, q []Request) (int, sim.Time) {
	n := 1 + maxQueuedApp(q)
	f.grow(n)
	heads := appHeads(q, f.head[:n])
	// Idle applications forfeit their credit — including IDs above every
	// currently queued application's (their deficit slots outlive n).
	for a := range f.deficit {
		if a >= n || heads[a] < 0 {
			f.deficit[a] = 0
		}
	}
	// Continue the open service turn while its deficit covers the head.
	if c := f.cur; c >= 0 && c < n && heads[c] >= 0 && f.deficit[c] >= q[heads[c]].Bytes {
		f.deficit[c] -= q[heads[c]].Bytes
		return int(heads[c]), 0
	}
	// Otherwise cycle to the next application with queued work, adding one
	// quantum per visit, until some deficit covers its head. Conceptually:
	//
	//	for k := 1; ; k++ {
	//		a := (start + k) % n; deficit[a] += quantum
	//		if deficit[a] >= head(a) { grant a }
	//	}
	//
	// Evaluated in closed form — O(n) per grant instead of
	// O(n·maxHead/quantum), which matters under small configured quanta:
	// application a (cyclic distance p ∈ [1, n] from the last grantee,
	// needing t = max(1, ⌈(head−deficit)/quantum⌉) visits) would win at
	// loop step T(a) = (t−1)·n + p; the true winner is the smallest T, and
	// every queued application visited before then accrues one quantum per
	// visit, exactly as the loop would have left it.
	start := f.cur
	if start < 0 {
		start = n - 1 // so the first visit is application 0
	}
	winner, bestT := -1, int64(0)
	for a := 0; a < n; a++ {
		if heads[a] < 0 {
			continue
		}
		p := int64(((a-start-1)%n+n)%n) + 1
		t := int64(1)
		if need := q[heads[a]].Bytes - f.deficit[a]; need > 0 {
			t = (need + f.quantum - 1) / f.quantum
		}
		if T := (t-1)*int64(n) + p; winner < 0 || T < bestT {
			winner, bestT = a, T
		}
	}
	for a := 0; a < n; a++ {
		if heads[a] < 0 {
			continue
		}
		if p := int64(((a-start-1)%n+n)%n) + 1; p <= bestT {
			f.deficit[a] += ((bestT-p)/int64(n) + 1) * f.quantum
		}
	}
	f.deficit[winner] -= q[heads[winner]].Bytes
	f.cur = winner
	return int(heads[winner]), 0
}
