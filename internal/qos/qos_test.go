package qos

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/storage"
)

func req(app int, issued sim.Time, bytes int64) Request {
	return Request{App: app, Issued: issued, Bytes: bytes}
}

func TestParseKind(t *testing.T) {
	cases := map[string]Kind{
		"off": Off, "": Off, "fifo": Off,
		"fairshare": FairShare, "drr": FairShare,
		"tokenbucket": TokenBucket, "token-bucket": TokenBucket,
		"controller": Controller, "pid": Controller,
	}
	for s, want := range cases {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseKind("bogus"); err == nil || !strings.Contains(err.Error(), "fairshare") {
		t.Fatalf("unknown kind error should list the valid set, got %v", err)
	}
	for _, k := range []Kind{Off, FairShare, TokenBucket, Controller} {
		back, err := ParseKind(k.String())
		if err != nil || back != k {
			t.Fatalf("round-trip of %v failed", k)
		}
	}
}

func TestParamsValidateAndDefaults(t *testing.T) {
	for _, k := range []Kind{Off, FairShare, TokenBucket, Controller} {
		p := Defaults(k)
		if err := p.Validate(); err != nil {
			t.Fatalf("Defaults(%v) invalid: %v", k, err)
		}
		if p != p.WithDefaults() {
			t.Fatalf("Defaults(%v) not a fixed point of WithDefaults", k)
		}
	}
	bad := []Params{
		{Kind: Kind(99)},
		{FlowSlots: -1},
		{InflightChunks: -1},
		{QuantumBytes: -1},
		{RateBytesPerSec: -1},
		{BurstBytes: -1},
		{Tick: -1},
		{TargetUtil: 1.5},
		{ShareCap: -0.1},
		{FloorBytesPerSec: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad params %d passed validation", i)
		}
	}
	// A partial override keeps the other defaults.
	p := Params{Kind: FairShare, InflightChunks: 2}.WithDefaults()
	if p.InflightChunks != 2 || p.QuantumBytes != Defaults(FairShare).QuantumBytes {
		t.Fatalf("WithDefaults merged wrong: %+v", p)
	}
}

// TestLegacyFIFO: oldest issued wins; queue order breaks ties.
func TestLegacyFIFO(t *testing.T) {
	s := NewFIFO()
	q := []Request{req(1, 30, 1), req(0, 10, 1), req(2, 10, 1)}
	if idx, wake := s.Pick(100, q); idx != 1 || wake != 0 {
		t.Fatalf("Pick = %d, %v; want 1, 0", idx, wake)
	}
}

// TestLegacyAppOrdered: lowest application first, issue order within it.
func TestLegacyAppOrdered(t *testing.T) {
	s := NewAppOrdered()
	q := []Request{req(2, 1, 1), req(0, 50, 1), req(0, 40, 1), req(1, 2, 1)}
	if idx, _ := s.Pick(100, q); idx != 2 {
		t.Fatalf("Pick = %d, want 2 (app 0, earliest issue)", idx)
	}
}

// TestLegacyRoundRobin: avoids the application granted last; falls back to
// FIFO when only that application has queued work.
func TestLegacyRoundRobin(t *testing.T) {
	s := NewRoundRobin()
	// Fresh scheduler: last = 0, so app 1 is preferred over app 0.
	q := []Request{req(0, 1, 1), req(1, 5, 1)}
	if idx, _ := s.Pick(10, q); idx != 1 {
		t.Fatalf("first Pick = %d, want 1 (alternate away from app 0)", idx)
	}
	// Now last = 1: app 0 preferred.
	if idx, _ := s.Pick(10, q); idx != 0 {
		t.Fatalf("second Pick = %d, want 0", idx)
	}
	// Only the last-granted application queued: FIFO fallback.
	q = []Request{req(0, 7, 1), req(0, 3, 1)}
	if idx, _ := s.Pick(10, q); idx != 1 {
		t.Fatalf("fallback Pick = %d, want 1 (oldest)", idx)
	}
}

// TestFairShareByteFairness: with a large-request and a small-request
// application queued, consecutive grants alternate so that granted bytes
// stay roughly proportional — the small application is not starved behind
// the big one's request count, and the big one is not starved behind the
// small one's.
func TestFairShareByteFairness(t *testing.T) {
	tel := NewTelemetry(nil)
	s := New(nil, Params{Kind: FairShare, QuantumBytes: 256 << 10}, tel).(*fairShare)
	grantedBytes := [2]int64{}
	// Application 0 queues 1 MiB requests, application 1 queues 64 KiB
	// requests; both queues stay topped up.
	for i := 0; i < 64; i++ {
		q := []Request{
			req(0, sim.Time(i), 1<<20), req(0, sim.Time(i)+1, 1<<20),
			req(1, sim.Time(i), 64<<10), req(1, sim.Time(i)+1, 64<<10),
		}
		idx, wake := s.Pick(sim.Time(i), q)
		if wake != 0 {
			t.Fatalf("FairShare must never idle the slot (wake %v)", wake)
		}
		grantedBytes[q[idx].App] += q[idx].Bytes
	}
	ratio := float64(grantedBytes[0]) / float64(grantedBytes[1])
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("byte split %v not byte-fair (ratio %.2f)", grantedBytes, ratio)
	}
}

// TestFairShareIdleForfeitsDeficit: an application that drains its queue
// loses its accumulated credit — rejoining does not grant it a burst.
func TestFairShareIdleForfeitsDeficit(t *testing.T) {
	tel := NewTelemetry(nil)
	s := New(nil, Params{Kind: FairShare}, tel).(*fairShare)
	// App 1 queued alone for a while: its deficit would grow unboundedly if
	// idle app 0 accrued credit too.
	for i := 0; i < 16; i++ {
		q := []Request{req(1, sim.Time(i), 64<<10)}
		if idx, _ := s.Pick(sim.Time(i), q); idx != 0 {
			t.Fatalf("sole queued request not granted")
		}
	}
	if s.deficit[0] != 0 {
		t.Fatalf("idle application kept deficit %d", s.deficit[0])
	}
}

func TestFairShareAppDepth(t *testing.T) {
	tel := NewTelemetry(nil)
	s := New(nil, Params{Kind: FairShare, InflightChunks: 4}, tel).(*fairShare)
	// One application with demand: unclamped.
	tel.Arrive(0, 1<<20)
	if d := s.AppDepth(0); d != 0 {
		t.Fatalf("solo application clamped to %d", d)
	}
	// Two applications with demand: both clamped to the budget.
	tel.Arrive(1, 64<<10)
	if d := s.AppDepth(0); d != 4 {
		t.Fatalf("contended budget = %d, want 4", d)
	}
	tel.Grant(1, 64<<10)
	tel.Finish(1)
	if d := s.AppDepth(0); d != 0 {
		t.Fatalf("clamp kept after contention ended: %d", d)
	}
}

// TestTokenBucketThrottles: admission stops once the bucket is spent and
// resumes at the returned wake time.
func TestTokenBucketThrottles(t *testing.T) {
	p := Params{Kind: TokenBucket, RateBytesPerSec: 1e6, BurstBytes: 1 << 20}
	s := New(nil, p, nil)
	q := []Request{req(0, 0, 1<<20), req(0, 1, 1<<20)}
	idx, wake := s.Pick(0, q)
	if idx != 0 || wake != 0 {
		t.Fatalf("full bucket must admit: %d, %v", idx, wake)
	}
	// Bucket now empty: the second request must wait ~1 s (1 MiB at 1 MB/s).
	idx, wake = s.Pick(0, q[1:])
	if idx >= 0 {
		t.Fatalf("empty bucket admitted a request")
	}
	if wake < sim.Seconds(1.0) || wake > sim.Seconds(1.2) {
		t.Fatalf("wake = %v, want ~1.05s", wake)
	}
	// At the wake time the bucket covers the request again.
	if idx, _ = s.Pick(wake, q[1:]); idx != 0 {
		t.Fatalf("request not admitted at its own wake time")
	}
}

// TestTokenBucketPerAppIsolation: one application's debt does not block
// another's admission.
func TestTokenBucketPerAppIsolation(t *testing.T) {
	p := Params{Kind: TokenBucket, RateBytesPerSec: 1e6, BurstBytes: 1 << 20}
	s := New(nil, p, nil)
	// App 0 spends its bucket.
	if idx, _ := s.Pick(0, []Request{req(0, 0, 1<<20)}); idx != 0 {
		t.Fatal("seed grant failed")
	}
	// App 1 is fresh and must be admitted even while app 0 waits.
	q := []Request{req(0, 0, 1<<20), req(1, 5, 64<<10)}
	if idx, _ := s.Pick(0, q); idx != 1 {
		t.Fatalf("fresh application not admitted, idx %d", idx)
	}
}

// TestTokenBucketOversizedRequest: a request larger than the burst is
// still admitted from a full bucket (cost capped at the burst, full size
// charged as debt).
func TestTokenBucketOversizedRequest(t *testing.T) {
	p := Params{Kind: TokenBucket, RateBytesPerSec: 1e6, BurstBytes: 64 << 10}
	s := New(nil, p, nil).(*tokenBucket)
	if idx, _ := s.Pick(0, []Request{req(0, 0, 1<<20)}); idx != 0 {
		t.Fatal("oversized request never admissible")
	}
	if s.b.tokens[0] >= 0 {
		t.Fatalf("full size not charged: tokens %v", s.b.tokens[0])
	}
}

// telemetryRoundTrip drives one request's lifecycle through the probe.
func TestTelemetryAccounting(t *testing.T) {
	tel := NewTelemetry(nil)
	tel.Arrive(2, 1<<20)
	if tel.Queued() != 1 || tel.App(2).QueuedBytes != 1<<20 || tel.Apps() != 3 {
		t.Fatalf("arrive accounting wrong: %+v", tel.App(2))
	}
	tel.Grant(2, 1<<20)
	if tel.Queued() != 0 || tel.Active() != 1 || tel.App(2).QueuedBytes != 0 || tel.App(2).Active != 1 {
		t.Fatalf("grant accounting wrong: %+v", tel.App(2))
	}
	tel.Consume(2, 256<<10)
	tel.Consume(2, 256<<10)
	if st := tel.App(2); st.InFlight != 2 || st.BytesIn != 512<<10 {
		t.Fatalf("consume accounting wrong: %+v", st)
	}
	tel.Done(2, 256<<10)
	if st := tel.App(2); st.InFlight != 1 || st.BytesDone != 256<<10 {
		t.Fatalf("done accounting wrong: %+v", st)
	}
	tel.Done(2, 256<<10)
	tel.Finish(2)
	if tel.Active() != 0 || tel.App(2).Demand() {
		t.Fatalf("finish accounting wrong: %+v", tel.App(2))
	}
	if tel.DemandApps() != 0 {
		t.Fatalf("DemandApps = %d after drain", tel.DemandApps())
	}
	// Out-of-range reads are zero-valued, not panics.
	if tel.App(99) != (AppStats{}) || tel.App(-1) != (AppStats{}) {
		t.Fatal("out-of-range App not zero")
	}
	// Nil device probe reports zero.
	if tel.DeviceBusy() != 0 || tel.DeviceQueuedBytes() != 0 {
		t.Fatal("nil device probe not zero")
	}
}

// fakeDev is a scriptable DeviceProbe for controller tests.
type fakeDev struct {
	busy   sim.Time
	queued int64
}

func (f *fakeDev) QueuedBytes() int64   { return f.queued }
func (f *fakeDev) Stats() storage.Stats { return storage.Stats{Busy: f.busy} }

// TestControllerThrottlesAggressor: under sustained congestion with a
// dominant application, the controller halves that application's rate and
// budget each tick and recovers them once the congestion clears.
func TestControllerThrottlesAggressor(t *testing.T) {
	e := sim.NewEngine()
	dev := &fakeDev{}
	tel := NewTelemetry(dev)
	p := Params{Kind: Controller}.WithDefaults()
	c := New(e, p, tel).(*controller)

	// Two applications with demand; app 0 completes 10x the bytes.
	tel.Arrive(0, 8<<20)
	tel.Arrive(1, 64<<10)
	tick := p.Tick
	for i := 0; i < 4; i++ {
		tel.Done(0, 4<<20)
		tel.Done(1, 64<<10)
		dev.busy += tick // fully utilized interval
		c.OnEvent(0, 0, 0)
	}
	if c.b.rate[0] >= p.RateBytesPerSec {
		t.Fatalf("aggressor rate not cut: %v", c.b.rate[0])
	}
	if c.budget[0] >= p.InflightChunks {
		t.Fatalf("aggressor budget not cut: %v", c.budget[0])
	}
	if c.b.rate[1] != p.RateBytesPerSec || c.budget[1] != p.InflightChunks {
		t.Fatalf("victim throttled: rate %v budget %d", c.b.rate[1], c.budget[1])
	}
	if c.AppDepth(0) != c.budget[0] || c.AppDepth(99) != 0 {
		t.Fatal("AppDepth does not expose the feedback budgets")
	}

	// Congestion clears (device idle): everything recovers toward the caps.
	cutRate, cutBudget := c.b.rate[0], c.budget[0]
	for i := 0; i < 64; i++ {
		c.OnEvent(0, 0, 0)
	}
	if c.b.rate[0] <= cutRate || c.budget[0] <= cutBudget {
		t.Fatalf("no recovery: rate %v budget %d", c.b.rate[0], c.budget[0])
	}
	if c.b.rate[0] != p.RateBytesPerSec || c.budget[0] != p.InflightChunks {
		t.Fatalf("recovery did not reach the caps: rate %v budget %d", c.b.rate[0], c.budget[0])
	}
}

// TestControllerTickDisarmsWhenIdle: the feedback tick stops rescheduling
// itself once the server has no queued or active requests, so simulations
// terminate.
func TestControllerTickDisarmsWhenIdle(t *testing.T) {
	e := sim.NewEngine()
	tel := NewTelemetry(&fakeDev{})
	c := New(e, Params{Kind: Controller}, tel).(*controller)
	tel.Arrive(0, 1<<20)
	if idx, _ := c.Pick(0, []Request{req(0, 0, 1<<20)}); idx != 0 {
		t.Fatal("grant failed")
	}
	if !c.ticking || e.Pending() == 0 {
		t.Fatal("tick not armed by Pick")
	}
	// Drain the request; the pending tick must fire once and disarm.
	tel.Grant(0, 1<<20)
	tel.Finish(0)
	e.Run()
	if c.ticking || e.Pending() != 0 {
		t.Fatalf("tick still armed after idle: ticking=%v pending=%d", c.ticking, e.Pending())
	}
}

// TestSchedulersSteadyStateZeroAlloc: Pick allocates nothing once per-app
// state exists — the event-kernel discipline (PR 2) extended to the QoS
// layer.
func TestSchedulersSteadyStateZeroAlloc(t *testing.T) {
	tel := NewTelemetry(nil)
	tel.Arrive(0, 1<<20)
	tel.Arrive(1, 1<<20)
	schedulers := map[string]Scheduler{
		"fifo":        NewFIFO(),
		"apporder":    NewAppOrdered(),
		"roundrobin":  NewRoundRobin(),
		"fairshare":   New(nil, Params{Kind: FairShare}, tel),
		"tokenbucket": New(nil, Params{Kind: TokenBucket}, nil),
	}
	q := []Request{req(0, 0, 256<<10), req(1, 1, 256<<10), req(0, 2, 256<<10)}
	for name, s := range schedulers {
		s.Pick(0, q) // warm up per-application state
		now := sim.Time(1)
		if n := testing.AllocsPerRun(100, func() {
			s.Pick(now, q)
			now++
		}); n > 0 {
			t.Errorf("%s: Pick allocates %.1f per call", name, n)
		}
	}
}
