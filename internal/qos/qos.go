// Package qos is the server-side quality-of-service subsystem: pluggable
// request schedulers that sit between the parallel file system's flow layer
// (pfs.Server) and the storage device, plus the LASSi-style telemetry probe
// layer they read. It is the repository's mitigation axis — the paper
// (§IV-B1) blames the *absence* of any server-side scheduling for much of
// the cross-application interference it measures, and the related work
// (Song et al.'s server-side coordination, Collignon et al.'s
// control-theoretic congestion mitigation, LASSi's risk/load metrics)
// sketches the remedies this package implements:
//
//   - FairShare: deficit round-robin over application IDs, byte-fair
//     admission to the flow slots regardless of request size.
//   - TokenBucket: a per-application rate cap with configurable refill,
//     the static throttle an administrator would set.
//   - Controller: a feedback loop that samples per-application telemetry
//     (queued bytes, device utilization, throughput EWMA) on a simulated
//     tick and throttles the current aggressor's token rate while victims
//     have backlog — congestion control in the spirit of Collignon et al.
//
// The legacy pfs.ReadPolicy values (FIFO, app-ordered, round-robin) are
// implemented as Schedulers too, so the server has exactly one scheduling
// path; with QoS off the FIFO scheduler reproduces PVFS behavior
// bit-for-bit (the paper/scenario golden checksums pin this).
//
// Determinism: schedulers are purely event-driven state machines on the
// simulation clock — no wall clock, no randomness — and their steady state
// allocates nothing (per-application slices grow once and are reused).
package qos

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Request is the scheduler-visible view of one queued server request: the
// application that issued it, its queue-ordering timestamp, and the bytes
// of its share on this server. The pfs server rebuilds this view (in queue
// order, into a reusable slice) before every grant decision.
type Request struct {
	App    int
	Issued sim.Time
	Bytes  int64
}

// Scheduler decides which queued request receives the next free flow slot.
//
// Contract: q is non-empty and in server queue order. A returned idx >= 0
// is a commitment — the caller must grant q[idx] now (the scheduler has
// already updated its internal accounting). idx < 0 leaves the slot idle:
// if wake > now the caller must call Pick again at wake (throttled — a
// token bucket refilling), and in any case a new arrival or a completed
// request re-invokes Pick. Pick runs under the simulation's single-threaded
// event discipline and must not allocate in steady state.
type Scheduler interface {
	Pick(now sim.Time, q []Request) (idx int, wake sim.Time)
}

// DepthAdvisor is the second, finer lever a scheduler may implement: a
// per-application bound on in-flight chunks. Grant-time arbitration (Pick)
// cannot preempt a multi-megabyte request already holding a flow slot, and
// on a disk it is the aggressor's deep chunk pipeline — megabytes queued at
// the device — that delays every victim chunk behind it. A scheduler that
// also implements DepthAdvisor caps how many chunks one application keeps
// in flight toward the backend; the server consults it on every chunk pull.
//
// AppDepth returns the application's current in-flight chunk budget; 0
// means unbounded. Budgets must be >= 1 when bounded and may change over
// time (an application with a chunk in flight is always re-polled when
// that chunk completes, so tightening and loosening both take effect).
type DepthAdvisor interface {
	AppDepth(app int) int
}

// Kind selects a scheduler implementation.
type Kind int

// Scheduler kinds. Off is the zero value: the server keeps its legacy
// ReadPolicy path (FIFO unless pfs.ServerParams.Policy overrides), which is
// the un-mitigated baseline of every sweep.
const (
	Off Kind = iota
	FairShare
	TokenBucket
	Controller
)

func (k Kind) String() string {
	switch k {
	case Off:
		return "off"
	case FairShare:
		return "fairshare"
	case TokenBucket:
		return "tokenbucket"
	case Controller:
		return "controller"
	}
	return "unknown"
}

// KindNames lists the canonical scheduler names ParseKind accepts, in
// declaration order — the valid set shown by CLI and spec error messages.
func KindNames() []string {
	return []string{Off.String(), FairShare.String(), TokenBucket.String(), Controller.String()}
}

// ParseKind converts a name ("off", "fairshare", "tokenbucket",
// "controller"; a few aliases like "drr" and "pid" are accepted) to a Kind.
// Unknown names yield an error listing the valid set.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "off", "", "none", "fifo":
		return Off, nil
	case "fairshare", "fair-share", "drr":
		return FairShare, nil
	case "tokenbucket", "token-bucket", "tb":
		return TokenBucket, nil
	case "controller", "feedback", "pid":
		return Controller, nil
	}
	return 0, fmt.Errorf("qos: unknown scheduler %q (valid: %s)",
		s, strings.Join(KindNames(), ", "))
}

// Params configures a scheduler. The zero value means Off. Zero-valued
// knobs select the calibrated defaults of Defaults(kind); New applies them.
type Params struct {
	Kind Kind

	// FlowSlots, when positive, overrides the server's FlowBufs while this
	// scheduler is active — the knob that makes grant-time arbitration
	// binding (with the default 16 slots, small request sets all fit and
	// Pick never gets a choice).
	FlowSlots int
	// InflightChunks is the per-application in-flight chunk budget of the
	// DepthAdvisor levers: FairShare clamps every application to it while
	// two or more applications have demand; Controller uses it as the
	// budget ceiling its feedback loop recovers toward.
	InflightChunks int

	// QuantumBytes is the deficit-round-robin quantum added per visit
	// (FairShare).
	QuantumBytes int64

	// RateBytesPerSec is the per-application token refill rate: the hard
	// cap for TokenBucket, the initial/maximum rate for Controller.
	RateBytesPerSec float64
	// BurstBytes is the token bucket capacity (both rate-based kinds).
	BurstBytes int64

	// Controller loop tuning.
	//
	// Tick is the sampling interval. TargetUtil is the device utilization
	// at or above which the loop treats the server as congested; ShareCap
	// is the throughput share beyond which the top application counts as
	// the aggressor. Each congested tick halves the aggressor's rate and
	// chunk budget (multiplicative decrease, floored at FloorBytesPerSec
	// and one chunk); each calm tick recovers every application additively
	// (RecoverBytesPerSec, one chunk) toward the caps.
	Tick               sim.Time
	TargetUtil         float64
	ShareCap           float64
	RecoverBytesPerSec float64
	FloorBytesPerSec   float64
}

// Defaults returns the calibrated parameter set of one scheduler kind.
// FairShare arbitrates grants byte-fairly and clamps every contending
// application to a 4-chunk pipeline (1 MiB of device backlog at the
// default 256 KiB flow buffer); TokenBucket statically caps every
// application at 48 MB/s per server; Controller starts effectively
// uncapped (1.6 GB/s, above the server's CPU ceiling; 16-chunk budget) and
// only throttles the aggressor on feedback.
func Defaults(kind Kind) Params {
	p := Params{Kind: kind}
	switch kind {
	case FairShare:
		p.QuantumBytes = 256 << 10
		p.InflightChunks = 4
	case TokenBucket:
		p.RateBytesPerSec = 48e6
		p.BurstBytes = 4 << 20
	case Controller:
		p.RateBytesPerSec = 1.6e9
		p.BurstBytes = 8 << 20
		p.InflightChunks = 16
		p.Tick = 5 * sim.Millisecond
		p.TargetUtil = 0.9
		p.ShareCap = 0.65
		p.RecoverBytesPerSec = 64e6
		p.FloorBytesPerSec = 16e6
	}
	return p
}

// WithDefaults fills zero-valued knobs from Defaults(p.Kind) — the
// effective parameter set a scheduler built from p runs with.
func (p Params) WithDefaults() Params {
	d := Defaults(p.Kind)
	if p.FlowSlots == 0 {
		p.FlowSlots = d.FlowSlots
	}
	if p.InflightChunks == 0 {
		p.InflightChunks = d.InflightChunks
	}
	if p.QuantumBytes == 0 {
		p.QuantumBytes = d.QuantumBytes
	}
	if p.RateBytesPerSec == 0 {
		p.RateBytesPerSec = d.RateBytesPerSec
	}
	if p.BurstBytes == 0 {
		p.BurstBytes = d.BurstBytes
	}
	if p.Tick == 0 {
		p.Tick = d.Tick
	}
	if p.TargetUtil == 0 {
		p.TargetUtil = d.TargetUtil
	}
	if p.ShareCap == 0 {
		p.ShareCap = d.ShareCap
	}
	if p.RecoverBytesPerSec == 0 {
		p.RecoverBytesPerSec = d.RecoverBytesPerSec
	}
	if p.FloorBytesPerSec == 0 {
		p.FloorBytesPerSec = d.FloorBytesPerSec
	}
	return p
}

// Validate checks the parameter set for structural errors (negative knobs).
// Zero values are legal everywhere — they select defaults.
func (p Params) Validate() error {
	if p.Kind < Off || p.Kind > Controller {
		return fmt.Errorf("qos: unknown scheduler kind %d", int(p.Kind))
	}
	switch {
	case p.FlowSlots < 0:
		return fmt.Errorf("qos: FlowSlots must be >= 0")
	case p.InflightChunks < 0:
		return fmt.Errorf("qos: InflightChunks must be >= 0")
	case p.QuantumBytes < 0:
		return fmt.Errorf("qos: QuantumBytes must be >= 0")
	case p.RateBytesPerSec < 0:
		return fmt.Errorf("qos: RateBytesPerSec must be >= 0")
	case p.BurstBytes < 0:
		return fmt.Errorf("qos: BurstBytes must be >= 0")
	case p.Tick < 0:
		return fmt.Errorf("qos: Tick must be >= 0")
	case p.TargetUtil < 0 || p.TargetUtil > 1:
		return fmt.Errorf("qos: TargetUtil must be in [0, 1]")
	case p.ShareCap < 0 || p.ShareCap > 1:
		return fmt.Errorf("qos: ShareCap must be in [0, 1]")
	case p.RecoverBytesPerSec < 0 || p.FloorBytesPerSec < 0:
		return fmt.Errorf("qos: recovery rates must be >= 0")
	}
	return nil
}

// New builds a scheduler. Off yields the FIFO scheduler (PVFS behavior).
// The engine is only required by Controller (its feedback tick); telemetry
// is required by the kinds that read the probe layer (FairShare's demand
// test, Controller's sampling). TokenBucket accepts nil for both.
func New(e *sim.Engine, p Params, tel *Telemetry) Scheduler {
	p = p.WithDefaults()
	switch p.Kind {
	case FairShare:
		if tel == nil {
			panic("qos: FairShare needs a telemetry probe")
		}
		return &fairShare{quantum: p.QuantumBytes, budget: p.InflightChunks, tel: tel, cur: -1}
	case TokenBucket:
		return &tokenBucket{rate: p.RateBytesPerSec, b: buckets{burst: float64(p.BurstBytes)}}
	case Controller:
		if e == nil || tel == nil {
			panic("qos: Controller needs an engine and a telemetry probe")
		}
		return &controller{e: e, p: p, tel: tel, b: buckets{burst: float64(p.BurstBytes)}}
	default:
		return NewFIFO()
	}
}
