package qos

import (
	"repro/internal/sim"
	"repro/internal/storage"
)

// DeviceProbe is the slice of storage.Device the telemetry layer reads:
// the backlog waiting at the device and its cumulative counters (busy time
// gives utilization). Every storage.Device implements it.
type DeviceProbe interface {
	QueuedBytes() int64
	Stats() storage.Stats
}

// AppStats are the cumulative per-application counters one server's probe
// layer maintains — the LASSi-style load/risk inputs a feedback scheduler
// consumes. All counters are monotone except Queued/QueuedBytes, which
// track the requests currently waiting for a flow slot.
type AppStats struct {
	// Requests counts requests that arrived (first chunk buffered).
	Requests int64
	// Granted counts requests admitted to a flow slot.
	Granted int64
	// Queued / QueuedBytes are the requests (and their bytes) currently
	// waiting for a flow slot.
	Queued      int64
	QueuedBytes int64
	// Active counts the requests currently holding a flow slot.
	Active int64
	// InFlight counts the chunks currently between socket and backend
	// completion — the application's live pipeline depth, the quantity a
	// DepthAdvisor budgets.
	InFlight int64
	// BytesIn counts chunk bytes pulled from sockets into processing.
	BytesIn int64
	// BytesDone counts chunk bytes stored (writes) or returned (reads) —
	// the per-application throughput source.
	BytesDone int64
}

// Demand reports whether the application currently has work at the server
// (a queued request or a held flow slot).
func (a AppStats) Demand() bool { return a.Queued > 0 || a.Active > 0 }

// Availability are one server's fault/availability counters — the
// partial-failure view of the probe layer. Downtime accumulates closed
// down intervals; Avail() folds a still-open interval in.
type Availability struct {
	// Crashes counts fail-stop events.
	Crashes int64
	// Downtime is the accumulated time the server spent down.
	Downtime sim.Time
	// DiscardedMsgs / DiscardedBytes count wire messages (and their bytes)
	// the server read and threw away — chunks arriving while down and
	// chunks of requests the crash killed. Together with BytesDone they
	// give goodput-vs-offered: offered = BytesIn + DiscardedBytes, goodput
	// = BytesDone.
	DiscardedMsgs  int64
	DiscardedBytes int64
}

// Telemetry is one server's probe layer: per-application counters plus a
// view of the backend device. The pfs server updates it on every request
// arrival, grant, chunk consumption and completion; schedulers and tests
// read it. All methods are O(1); the per-application slice grows once per
// application and is then reused (zero allocations in steady state).
type Telemetry struct {
	dev    DeviceProbe
	queued int
	active int
	apps   []AppStats

	avail     Availability
	down      bool
	downSince sim.Time
}

// NewTelemetry builds a probe layer over one backend device (nil is legal:
// device-level methods then report zero).
func NewTelemetry(dev DeviceProbe) *Telemetry {
	return &Telemetry{dev: dev}
}

// grow ensures the per-application slice covers app.
func (t *Telemetry) grow(app int) {
	for len(t.apps) <= app {
		t.apps = append(t.apps, AppStats{})
	}
}

// Arrive records a request of bytes arriving from app.
func (t *Telemetry) Arrive(app int, bytes int64) {
	t.grow(app)
	a := &t.apps[app]
	a.Requests++
	a.Queued++
	a.QueuedBytes += bytes
	t.queued++
}

// Grant records app's request of bytes being admitted to a flow slot.
func (t *Telemetry) Grant(app int, bytes int64) {
	t.grow(app)
	a := &t.apps[app]
	a.Granted++
	a.Queued--
	a.QueuedBytes -= bytes
	a.Active++
	t.queued--
	t.active++
}

// Consume records one chunk of n bytes of app pulled from a socket.
func (t *Telemetry) Consume(app int, n int64) {
	t.grow(app)
	a := &t.apps[app]
	a.BytesIn += n
	a.InFlight++
}

// Done records one chunk of n bytes of app stored or returned.
func (t *Telemetry) Done(app int, n int64) {
	t.grow(app)
	a := &t.apps[app]
	a.BytesDone += n
	a.InFlight--
}

// Finish records app releasing its flow slot.
func (t *Telemetry) Finish(app int) {
	t.grow(app)
	t.apps[app].Active--
	t.active--
}

// DemandApps counts the applications that currently have work at the
// server — the contention test a DepthAdvisor uses to leave solo
// applications unclamped.
func (t *Telemetry) DemandApps() int {
	n := 0
	for i := range t.apps {
		if t.apps[i].Demand() {
			n++
		}
	}
	return n
}

// Apps returns how many application IDs have been observed.
func (t *Telemetry) Apps() int { return len(t.apps) }

// App returns the counters of application i (zero value if unobserved).
func (t *Telemetry) App(i int) AppStats {
	if i < 0 || i >= len(t.apps) {
		return AppStats{}
	}
	return t.apps[i]
}

// Queued returns the requests currently waiting for a flow slot.
func (t *Telemetry) Queued() int { return t.queued }

// Active returns the requests currently holding a flow slot.
func (t *Telemetry) Active() int { return t.active }

// MarkDown records the server failing at time now. The per-application
// live gauges (Queued, Active, InFlight and their byte counters) are reset
// to zero — the crash killed every queued and in-flight request — while
// the monotone counters keep accumulating across the outage.
func (t *Telemetry) MarkDown(now sim.Time) {
	if t.down {
		return
	}
	t.down = true
	t.downSince = now
	t.avail.Crashes++
	for i := range t.apps {
		a := &t.apps[i]
		a.Queued, a.QueuedBytes, a.Active, a.InFlight = 0, 0, 0, 0
	}
	t.queued, t.active = 0, 0
}

// MarkUp records the server restarting at time now, closing the open
// downtime interval.
func (t *Telemetry) MarkUp(now sim.Time) {
	if !t.down {
		return
	}
	t.down = false
	t.avail.Downtime += now - t.downSince
}

// Down reports whether the server is currently marked down.
func (t *Telemetry) Down() bool { return t.down }

// Discard records n wire bytes the server read and threw away.
func (t *Telemetry) Discard(n int64) {
	t.avail.DiscardedMsgs++
	t.avail.DiscardedBytes += n
}

// Avail returns the availability counters as of time now (folding a
// still-open down interval into Downtime).
func (t *Telemetry) Avail(now sim.Time) Availability {
	a := t.avail
	if t.down && now > t.downSince {
		a.Downtime += now - t.downSince
	}
	return a
}

// GoodputBytes sums the chunk bytes actually stored or returned.
func (t *Telemetry) GoodputBytes() int64 {
	var n int64
	for i := range t.apps {
		n += t.apps[i].BytesDone
	}
	return n
}

// OfferedBytes sums every wire byte clients pushed at the server — the
// consumed pipeline bytes plus everything discarded during outages.
func (t *Telemetry) OfferedBytes() int64 {
	n := t.avail.DiscardedBytes
	for i := range t.apps {
		n += t.apps[i].BytesIn
	}
	return n
}

// DeviceBusy returns the device's cumulative busy time.
func (t *Telemetry) DeviceBusy() sim.Time {
	if t.dev == nil {
		return 0
	}
	return t.dev.Stats().Busy
}

// DeviceQueuedBytes returns the bytes waiting at the device.
func (t *Telemetry) DeviceQueuedBytes() int64 {
	if t.dev == nil {
		return 0
	}
	return t.dev.QueuedBytes()
}
