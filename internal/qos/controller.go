package qos

import "repro/internal/sim"

// ewmaAlpha smooths the per-application throughput estimate: high enough
// to track a burst within a few ticks, low enough not to flap on one.
const ewmaAlpha = 0.3

// controller is the feedback congestion scheduler, in the spirit of
// Collignon et al.'s control-theoretic mitigation of shared-storage
// congestion: admission whose per-application rates and pipeline budgets
// are set by a feedback loop over LASSi-style telemetry instead of by an
// administrator.
//
// Every Tick the loop samples the probe layer — per-application bytes
// completed (throughput EWMA), per-application demand, and device busy
// time (utilization) — and classifies the interval:
//
//   - Congested: device utilization >= TargetUtil, at least two
//     applications have demand, and the top application's share of the
//     smoothed throughput exceeds ShareCap. The aggressor's token rate and
//     in-flight chunk budget are halved (multiplicative decrease, floored
//     at FloorBytesPerSec and one chunk).
//   - Otherwise: every application recovers additively — one chunk of
//     budget and RecoverBytesPerSec of rate per tick — toward the
//     InflightChunks and RateBytesPerSec caps, so a throttle outlives its
//     cause by at most a few ticks.
//
// Because the decrease repeats every tick while the aggressor keeps
// hogging and relaxes as soon as it stops, the loop integrates toward the
// strongest throttle that still leaves the device saturated — holding the
// victims' queueing (the operational proxy for their interference factor)
// down at a bounded throughput cost, which is exactly the trade-off the
// mitigation sweep's Pareto view renders. Two levers because the two
// contention points differ: the token rate gates *grants* (flow slots, the
// request backlog of the paper's Trove bottleneck), the chunk budget gates
// the *pipeline* (device backlog, the seek-amplification term).
//
// The tick is armed lazily on the first grant decision and disarms itself
// when the server goes idle (no queued or active requests), so a finished
// simulation drains its event queue and terminates.
type controller struct {
	e   *sim.Engine
	p   Params
	tel *Telemetry
	b   buckets

	budget   []int // per-application in-flight chunk budgets
	ticking  bool
	lastBusy sim.Time
	lastDone []int64
	ewma     []float64
}

func (c *controller) Pick(now sim.Time, q []Request) (int, sim.Time) {
	if !c.ticking {
		c.ticking = true
		// Resync the busy-time baseline: the device may have kept flushing
		// (write-back cache) through a disarmed gap, and counting that
		// backlog against the first tick would fake a congested interval.
		c.lastBusy = c.tel.DeviceBusy()
		c.e.ScheduleCall(c.p.Tick, c, 0, 0, 0)
	}
	return c.b.pick(now, q, c.p.RateBytesPerSec)
}

// AppDepth implements DepthAdvisor: the feedback-set budget (0 until the
// application is first observed: unclamped).
func (c *controller) AppDepth(app int) int {
	if app < len(c.budget) {
		return c.budget[app]
	}
	return 0
}

// growStats sizes the sampling state for n applications. New applications
// start at the full budget.
func (c *controller) growStats(n int) {
	for len(c.lastDone) < n {
		c.lastDone = append(c.lastDone, 0)
		c.ewma = append(c.ewma, 0)
		c.budget = append(c.budget, c.p.InflightChunks)
	}
}

// OnEvent implements sim.Target: one feedback tick.
func (c *controller) OnEvent(op uint32, a, b int64) {
	tickSec := c.p.Tick.Seconds()
	n := c.tel.Apps()
	c.growStats(n)
	c.b.grow(n, c.p.RateBytesPerSec)
	// Settle token accrual at the old rates before changing them: refill
	// credits elapsed time at the rate current at refill time, so without
	// this a rate cut would retroactively confiscate tokens already earned
	// since the last Pick (and a recovery would retroactively inflate them).
	c.b.refill(c.e.Now())

	// Sample: per-application smoothed throughput and the demand set. Only
	// applications that still have work at the server can be the aggressor
	// (or dilute its share): a finished application's decaying EWMA must
	// not draw the throttle away from the live contenders — or pre-throttle
	// its own next burst.
	demand, aggr := 0, -1
	var total float64
	for i := 0; i < n; i++ {
		st := c.tel.App(i)
		tp := float64(st.BytesDone-c.lastDone[i]) / tickSec
		c.lastDone[i] = st.BytesDone
		c.ewma[i] = ewmaAlpha*tp + (1-ewmaAlpha)*c.ewma[i]
		if !st.Demand() {
			continue
		}
		demand++
		total += c.ewma[i]
		if c.ewma[i] > 0 && (aggr < 0 || c.ewma[i] > c.ewma[aggr]) {
			aggr = i
		}
	}
	busy := c.tel.DeviceBusy()
	util := (busy - c.lastBusy).Seconds() / tickSec
	c.lastBusy = busy

	congested := util >= c.p.TargetUtil && demand >= 2 &&
		aggr >= 0 && total > 0 && c.ewma[aggr]/total > c.p.ShareCap
	if congested {
		// Multiplicative decrease on the aggressor only.
		if r := c.b.rate[aggr] / 2; r >= c.p.FloorBytesPerSec {
			c.b.rate[aggr] = r
		} else {
			c.b.rate[aggr] = c.p.FloorBytesPerSec
		}
		if d := c.budget[aggr] / 2; d >= 1 {
			c.budget[aggr] = d
		} else {
			c.budget[aggr] = 1
		}
	} else {
		// Additive recovery for everyone.
		for i := 0; i < n; i++ {
			if r := c.b.rate[i] + c.p.RecoverBytesPerSec; r < c.p.RateBytesPerSec {
				c.b.rate[i] = r
			} else {
				c.b.rate[i] = c.p.RateBytesPerSec
			}
			if c.budget[i] < c.p.InflightChunks {
				c.budget[i]++
			}
		}
	}

	if c.tel.Queued()+c.tel.Active() > 0 {
		c.e.ScheduleCall(c.p.Tick, c, 0, 0, 0)
	} else {
		c.ticking = false
	}
}
