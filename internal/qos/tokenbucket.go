package qos

import "repro/internal/sim"

// buckets is the shared admission engine of the rate-based schedulers: one
// lazily-refilled token bucket per application ID. TokenBucket uses it with
// a single fixed rate; Controller adjusts the per-application rates from
// its feedback tick. Refill is computed on demand from elapsed simulated
// time — no periodic events — so an idle bucket costs nothing.
type buckets struct {
	burst  float64
	last   sim.Time  // time of the last refill
	tokens []float64 // indexed by application ID
	rate   []float64 // refill rate per application, bytes/second
	head   []int32   // scratch: queue index of each app's oldest request
}

// grow sizes per-application state for ids 0..n-1; new applications start
// with a full bucket at initRate.
func (b *buckets) grow(n int, initRate float64) {
	for len(b.tokens) < n {
		b.tokens = append(b.tokens, b.burst)
		b.rate = append(b.rate, initRate)
		b.head = append(b.head, -1)
	}
}

// refill tops up every bucket for the time elapsed since the last refill.
func (b *buckets) refill(now sim.Time) {
	dt := (now - b.last).Seconds()
	b.last = now
	if dt <= 0 {
		return
	}
	for a := range b.tokens {
		t := b.tokens[a] + b.rate[a]*dt
		if t > b.burst {
			t = b.burst
		}
		b.tokens[a] = t
	}
}

// cost is the admission price of a request: its bytes, capped at the burst
// so a request larger than the bucket can still be admitted from a full
// bucket (the full size is charged, driving the bucket into debt — which
// is how the average rate stays enforced).
func (b *buckets) cost(bytes int64) float64 {
	c := float64(bytes)
	if c > b.burst {
		c = b.burst
	}
	return c
}

// pick runs the admission scan: refill, find each application's oldest
// request, admit the globally oldest affordable one (ties: lowest
// application ID), or report the earliest time any application can afford
// its head. initRate seeds buckets of newly observed applications.
func (b *buckets) pick(now sim.Time, q []Request, initRate float64) (int, sim.Time) {
	n := 1 + maxQueuedApp(q)
	b.grow(n, initRate)
	b.refill(now)
	heads := appHeads(q, b.head[:n])
	best := -1
	for a := 0; a < n; a++ {
		h := heads[a]
		if h < 0 || b.tokens[a] < b.cost(q[h].Bytes) {
			continue
		}
		if best < 0 || q[h].Issued < q[best].Issued {
			best = int(h)
		}
	}
	if best >= 0 {
		b.tokens[q[best].App] -= float64(q[best].Bytes)
		return best, 0
	}
	// Throttled: wake when the first bucket covers its head request. The
	// microsecond margin absorbs float rounding so the retry is affordable.
	wake := sim.MaxTime
	for a := 0; a < n; a++ {
		h := heads[a]
		if h < 0 || b.rate[a] <= 0 {
			continue
		}
		need := b.cost(q[h].Bytes) - b.tokens[a]
		at := now + sim.Seconds(need/b.rate[a]) + sim.Microsecond
		if at < wake {
			wake = at
		}
	}
	return -1, wake
}

// tokenBucket caps every application at one fixed refill rate per server —
// the static throttle an administrator sets. Interference drops because no
// application can saturate the backend; the cost is aggregate throughput
// left on the table when the device is idle (the Pareto trade-off the
// mitigation sweep renders).
type tokenBucket struct {
	rate float64
	b    buckets // burst set at construction in New
}

func (t *tokenBucket) Pick(now sim.Time, q []Request) (int, sim.Time) {
	return t.b.pick(now, q, t.rate)
}
