package qos

import "repro/internal/sim"

// The legacy pfs.ReadPolicy scheduling disciplines, re-expressed as
// Schedulers so the server has exactly one grant path. Their selection
// logic is a line-for-line port of the original pfs.Server.pickRequest —
// the paper and scenario golden checksums pin that the FIFO scheduler (the
// QoS-off default) reproduces the old behavior bit-for-bit.

// fifo admits requests in issue order (PVFS: "no particular scheduling
// mechanism at the server side", §IV-B1). FIFO orders by request *issue*
// time, not data arrival: PVFS learns about a request from its small
// descriptor message, which reaches the server long before the bulk data
// fights its way through a congested fabric. Ties keep queue order.
type fifo struct{}

// NewFIFO returns the PVFS baseline scheduler.
func NewFIFO() Scheduler { return fifo{} }

func (fifo) Pick(now sim.Time, q []Request) (int, sim.Time) {
	return oldest(q), 0
}

// oldest returns the index of the earliest-issued request (first in queue
// order on ties).
func oldest(q []Request) int {
	best := 0
	for i := 1; i < len(q); i++ {
		if q[i].Issued < q[best].Issued {
			best = i
		}
	}
	return best
}

// maxQueuedApp returns the largest application ID present in the queue.
func maxQueuedApp(q []Request) int {
	m := 0
	for i := range q {
		if q[i].App > m {
			m = q[i].App
		}
	}
	return m
}

// appHeads fills scratch (one slot per application ID) with the queue
// index of each application's oldest request, -1 where an application has
// nothing queued, and returns it. Both the per-application schedulers
// (fairshare's DRR and the token buckets) arbitrate over this view, and
// their determinism depends on the same tie rule: equal issue times keep
// queue order.
func appHeads(q []Request, scratch []int32) []int32 {
	for i := range scratch {
		scratch[i] = -1
	}
	for i := range q {
		a := q[i].App
		if scratch[a] < 0 || q[i].Issued < q[scratch[a]].Issued {
			scratch[a] = int32(i)
		}
	}
	return scratch
}

// appOrdered always prefers the lowest application ID first, making every
// server process applications in the same global order (the server-side
// coordination of Song et al., SC'11).
type appOrdered struct{}

// NewAppOrdered returns the global-application-order scheduler.
func NewAppOrdered() Scheduler { return appOrdered{} }

func (appOrdered) Pick(now sim.Time, q []Request) (int, sim.Time) {
	best := 0
	for i := 1; i < len(q); i++ {
		if q[i].App < q[best].App || (q[i].App == q[best].App && q[i].Issued < q[best].Issued) {
			best = i
		}
	}
	return best, 0
}

// roundRobin alternates flow grants between applications: the next grant
// avoids the application granted last, falling back to plain FIFO when no
// other application has queued work.
type roundRobin struct {
	last int // application granted most recently
}

// NewRoundRobin returns the per-grant application-alternation scheduler.
func NewRoundRobin() Scheduler { return &roundRobin{} }

func (r *roundRobin) Pick(now sim.Time, q []Request) (int, sim.Time) {
	best := -1
	for i := range q {
		if q[i].App == r.last {
			continue
		}
		if best < 0 || q[i].Issued < q[best].Issued {
			best = i
		}
	}
	if best < 0 {
		best = oldest(q)
	}
	r.last = q[best].App
	return best, 0
}
