package storage

import "repro/internal/sim"

// HDDParams configures the rotational disk model.
type HDDParams struct {
	// SeqBW is the streaming (sequential) bandwidth in bytes/second.
	SeqBW float64
	// Seek is the cost of repositioning the head (seek + rotational delay).
	Seek sim.Time
	// OpOverhead is a fixed per-request controller/dispatch cost.
	OpOverhead sim.Time
	// MaxRun bounds how many contiguous bytes are served from one file
	// while other files have queued work (elevator fairness). Zero means
	// unlimited (a stream with queued contiguous work is never preempted).
	MaxRun int64
}

// DefaultHDD approximates the parasilo cluster disks from the paper:
// 2 GB written alone in 13.4 s = ~150 MB/s streaming.
func DefaultHDD() HDDParams {
	return HDDParams{
		SeqBW:      155e6,
		Seek:       6500 * sim.Microsecond,
		OpOverhead: 150 * sim.Microsecond,
		MaxRun:     4 << 20,
	}
}

// HDD models a rotational disk: requests contiguous with the current head
// position stream at SeqBW; any other request first pays Seek. The queue is
// served with elevator-style batching: the disk keeps serving contiguous
// runs from the current file up to MaxRun bytes while other files wait,
// which is how OS schedulers amortize seeks between interleaved streams.
type HDD struct {
	E *sim.Engine
	P HDDParams

	// perFile holds FIFO queues of pending requests, keyed by file.
	perFile map[FileID][]*Request
	// files lists FileIDs with queued work, in first-seen order
	// (deterministic iteration).
	files []FileID

	busy     bool
	cur      *Request // request in service; completes at the next OnEvent
	headFile FileID
	headOff  int64
	headSet  bool
	runBytes int64

	queued      int
	queuedBytes int64
	seq         int64 // submission counter for aging
	stats       Stats
}

// NewHDD returns an idle disk.
func NewHDD(e *sim.Engine, p HDDParams) *HDD {
	return &HDD{E: e, P: p, perFile: make(map[FileID][]*Request)}
}

// Name implements Device.
func (d *HDD) Name() string { return "hdd" }

// Queued implements Device.
func (d *HDD) Queued() int { return d.queued }

// QueuedBytes implements Device.
func (d *HDD) QueuedBytes() int64 { return d.queuedBytes }

// Stats implements Device.
func (d *HDD) Stats() Stats { return d.stats }

// Submit implements Device.
func (d *HDD) Submit(r *Request) {
	d.seq++
	r.seq = d.seq
	q, ok := d.perFile[r.File]
	if !ok {
		d.files = append(d.files, r.File)
	}
	d.perFile[r.File] = append(q, r)
	d.queued++
	d.queuedBytes += r.Size
	if !d.busy {
		d.busy = true
		d.serveNext()
	}
}

// pick chooses the next request under the elevator policy and reports
// whether serving it requires a seek.
func (d *HDD) pick() (*Request, bool) {
	if d.queued == 0 {
		return nil, false
	}
	// Continuation of the current run?
	if d.headSet {
		if q := d.perFile[d.headFile]; len(q) > 0 && q[0].Offset == d.headOff {
			exhausted := d.P.MaxRun > 0 && d.runBytes >= d.P.MaxRun
			if !exhausted || !d.otherFileQueued(d.headFile) {
				return q[0], false
			}
		}
	}
	// Switch: serve the file whose head request has waited longest
	// (deadline-style aging, like the kernel's deadline/CFQ schedulers).
	// Choosing by queue size instead would starve a draining stream's tail
	// behind a newly arrived bulk stream.
	var best FileID
	bestSeq := int64(-1)
	for _, f := range d.files {
		q := d.perFile[f]
		if len(q) == 0 {
			continue
		}
		if bestSeq < 0 || q[0].seq < bestSeq {
			best, bestSeq = f, q[0].seq
		}
	}
	r := d.perFile[best][0]
	// A "seek" is any discontinuity, including holes within the same file.
	seek := !d.headSet || r.File != d.headFile || r.Offset != d.headOff
	return r, seek
}

func (d *HDD) otherFileQueued(f FileID) bool {
	for _, g := range d.files {
		if g != f && len(d.perFile[g]) > 0 {
			return true
		}
	}
	return false
}

func (d *HDD) serveNext() {
	r, seek := d.pick()
	if r == nil {
		d.busy = false
		return
	}
	// Dequeue r.
	q := d.perFile[r.File]
	copy(q, q[1:])
	d.perFile[r.File] = q[:len(q)-1]
	d.queued--
	d.queuedBytes -= r.Size

	dur := d.P.OpOverhead + sim.TransferTime(r.Size, d.P.SeqBW)
	if seek {
		dur += d.P.Seek
		d.stats.Seeks++
		d.runBytes = 0
	}
	d.stats.Ops++
	d.stats.Bytes += r.Size
	d.stats.Busy += dur
	d.headFile = r.File
	d.headOff = r.End()
	d.headSet = true
	d.runBytes += r.Size

	d.cur = r
	d.E.ScheduleCall(dur, d, 0, 0, 0)
}

// OnEvent implements sim.Target: completion of the request in service. The
// disk serves one request at a time, so the event needs no payload and
// scheduling it allocates nothing.
func (d *HDD) OnEvent(op uint32, a, b int64) {
	r := d.cur
	d.cur = nil
	complete(r)
	d.serveNext()
}
