package storage

import "repro/internal/sim"

// Degraded composes over any Device and, while degraded, stretches every
// completion by a first-order penalty: Factor multiplies the per-byte
// service time (relative to the nominal bandwidth given at construction)
// and Latency adds a fixed per-operation cost. Healthy (the initial state,
// and after Restore) it is a transparent pass-through — no extra events, no
// extra allocations, bit-identical to the unwrapped device — so wrapping
// every server's backend when a fault plan is present cannot move goldens
// unless a degrade event actually fires.
//
// The penalty is applied at completion rather than by remodeling the inner
// device's queue: the inner device still orders and batches requests
// exactly as when healthy (seek amplification and elevator behavior are
// properties of the request stream, not of the medium's speed). The
// penalties serialize through a virtual busy-until clock — a pipelined
// request stream cannot hide them the way it hides pure latency — so a
// device whose inner rate is R degraded by factor F sustains
// 1/(1/R + (F-1)/baseBW) bytes/second, which is baseBW/F when R equals the
// nominal rate: the factor really is a throughput divisor. The stretched
// completions then delay the upstream flow-control loop, which is what
// throttles the pipeline — the same first-order philosophy as the rest of
// the package.
type Degraded struct {
	E *sim.Engine

	inner  Device
	baseBW float64 // nominal bytes/second the Factor is relative to

	factor  float64  // 1 = healthy
	latency sim.Time // extra per-op latency while degraded

	busyUntil   sim.Time // virtual slow medium's serialization clock
	slowed      int64    // completions that paid a penalty
	slowedBytes int64
}

// NewDegraded wraps inner; baseBW is the device's nominal sequential
// bandwidth, used to convert a throughput factor into extra service time.
func NewDegraded(e *sim.Engine, inner Device, baseBW float64) *Degraded {
	if baseBW <= 0 {
		baseBW = 1e9
	}
	return &Degraded{E: e, inner: inner, baseBW: baseBW, factor: 1}
}

// Degrade enters (or re-parameterizes) the degraded state.
func (d *Degraded) Degrade(factor float64, latency sim.Time) {
	if factor < 1 {
		factor = 1
	}
	if latency < 0 {
		latency = 0
	}
	d.factor = factor
	d.latency = latency
}

// Restore returns the device to nominal service. Requests already submitted
// while degraded keep their penalty (their media time was already spent).
func (d *Degraded) Restore() {
	d.factor = 1
	d.latency = 0
}

// DegradedNow reports whether a penalty is currently applied.
func (d *Degraded) DegradedNow() bool { return d.factor > 1 || d.latency > 0 }

// Slowed returns how many completions paid a degrade penalty, and their
// bytes.
func (d *Degraded) Slowed() (ops int64, bytes int64) { return d.slowed, d.slowedBytes }

// Inner returns the wrapped device.
func (d *Degraded) Inner() Device { return d.inner }

// Name returns the inner device's name — the wrapper is an operational
// state, not a different medium.
func (d *Degraded) Name() string { return d.inner.Name() }

// Submit enqueues the request, stretching its completion while degraded.
func (d *Degraded) Submit(r *Request) {
	if d.factor <= 1 && d.latency == 0 {
		d.inner.Submit(r)
		return
	}
	extra := d.latency + sim.Time(float64(sim.TransferTime(r.Size, d.baseBW))*(d.factor-1))
	d.slowed++
	d.slowedBytes += r.Size
	orig := r.Done
	r.Done = func() {
		if orig == nil {
			return
		}
		at := d.E.Now() + extra
		if d.busyUntil > d.E.Now() {
			at = d.busyUntil + extra
		}
		d.busyUntil = at
		d.E.At(at, orig)
	}
	d.inner.Submit(r)
}

// Queued returns the inner device's waiting-request count.
func (d *Degraded) Queued() int { return d.inner.Queued() }

// QueuedBytes returns the inner device's waiting bytes.
func (d *Degraded) QueuedBytes() int64 { return d.inner.QueuedBytes() }

// Stats returns the inner device's counters.
func (d *Degraded) Stats() Stats { return d.inner.Stats() }
