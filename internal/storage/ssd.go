package storage

import "repro/internal/sim"

// SSDParams configures the flash device model.
//
// A flash device is a set of independent channels: each request is serviced
// entirely by one channel at a fixed per-request latency plus size/BW, with
// no positional (seek) cost. BW is the bandwidth of ONE channel, so the
// device peaks at BW × max(Channels, 1) bytes/second under enough queued
// parallelism but a strictly serial client sees only BW.
//
// Channels <= 1 selects the calibrated single-queue model used by the
// paper's Table I and Figures 2–3 (where RandPenalty models the mild FTL
// cost of non-contiguous requests); Channels > 1 selects the
// channel-parallel model, which ignores RandPenalty entirely.
type SSDParams struct {
	BW          float64  // bytes/second of one channel
	OpLat       sim.Time // per-request latency
	RandPenalty sim.Time // extra cost for non-contiguous requests (serial model only)
	Channels    int      // independent channels; <= 1 means the serial model
}

// DefaultSSD approximates the paper's SSDs (2 GB alone in 2.27 s ≈ 880 MB/s):
// one channel, i.e. the serial calibrated model.
func DefaultSSD() SSDParams {
	return SSDParams{BW: 900e6, OpLat: 90 * sim.Microsecond, RandPenalty: 25 * sim.Microsecond}
}

// NewSSD returns an SSD device: the serial calibrated model for
// Channels <= 1, the channel-parallel flash model otherwise.
func NewSSD(e *sim.Engine, p SSDParams) Device {
	if p.Channels <= 1 {
		return &serial{e: e, name: "ssd", bw: p.BW, opLat: p.OpLat, randPenalty: p.RandPenalty}
	}
	return &flash{
		e:     e,
		name:  "ssd",
		bw:    p.BW,
		opLat: p.OpLat,
		cur:   make([]*Request, p.Channels),
		idle:  p.Channels,
	}
}

// flash is the channel-parallel SSD: up to len(cur) requests in service at
// once, each on its own channel, FIFO dispatch from a single queue to the
// lowest-numbered idle channel. Service time is position-independent
// (opLat + size/bw) — flash has no head to move, so interleaved request
// streams cost nothing extra; what interference remains on this backend
// comes from the layers above (network incast, server request processing),
// which is exactly the decomposition the paper's backend axis probes.
type flash struct {
	e     *sim.Engine
	name  string
	bw    float64  // per-channel bytes/second; zero means infinitely fast
	opLat sim.Time // fixed per-request latency

	// queue[head:] are the waiting requests; popping advances head instead
	// of copy-shifting, so a contended drain is O(1) per dispatch (the
	// multi-channel device pops C times faster than a serial one, which
	// would make the serial model's shift quadratic here).
	queue       []*Request
	head        int
	cur         []*Request // per-channel request in service (nil = idle)
	idle        int        // number of nil entries in cur
	queuedBytes int64
	stats       Stats
}

// OnEvent implements sim.Target: completion of the request in service on
// channel a. Scheduling it allocates nothing.
func (d *flash) OnEvent(op uint32, a, b int64) {
	ch := int(a)
	r := d.cur[ch]
	d.cur[ch] = nil
	d.idle++
	complete(r)
	d.serve()
}

func (d *flash) Name() string { return d.name }

// Queued counts requests waiting for a channel, like every other device
// (in-service requests are excluded).
func (d *flash) Queued() int { return len(d.queue) - d.head }

func (d *flash) QueuedBytes() int64 { return d.queuedBytes }
func (d *flash) Stats() Stats       { return d.stats }

func (d *flash) Submit(r *Request) {
	d.queue = append(d.queue, r)
	d.queuedBytes += r.Size
	d.serve()
}

// serve dispatches queued requests to idle channels, lowest index first.
func (d *flash) serve() {
	for d.idle > 0 && d.head < len(d.queue) {
		r := d.queue[d.head]
		d.queue[d.head] = nil // release for GC
		d.head++
		if d.head == len(d.queue) {
			d.queue, d.head = d.queue[:0], 0
		} else if d.head >= 1024 && d.head*2 >= len(d.queue) {
			// A queue that never fully drains would otherwise grow without
			// bound; compact once the dead prefix dominates.
			n := copy(d.queue, d.queue[d.head:])
			d.queue, d.head = d.queue[:n], 0
		}

		ch := 0
		for d.cur[ch] != nil {
			ch++
		}
		d.cur[ch] = r
		d.idle--
		d.queuedBytes -= r.Size

		dur := d.opLat + sim.TransferTime(r.Size, d.bw)
		d.stats.Ops++
		d.stats.Bytes += r.Size
		// Busy sums per-channel service time, so it can exceed wall-clock
		// on a parallel device — it is utilization×channels, not makespan.
		d.stats.Busy += dur
		d.e.ScheduleCall(dur, d, 0, int64(ch), 0)
	}
}
