package storage

import "repro/internal/sim"

// CacheParams configures the kernel write-back cache model used when file
// synchronization is disabled ("Sync OFF"): writes complete once copied to
// memory, and a background flusher pushes dirty data to the device.
type CacheParams struct {
	// CopyBW is the rate at which writes are absorbed into memory.
	CopyBW float64
	// DirtyLimit is the maximum dirty bytes; writers exceeding it block
	// until flushing makes room (the kernel's dirty throttling).
	DirtyLimit int64
	// FlushDepth is the number of concurrent flush requests submitted to
	// the backing device.
	FlushDepth int
}

// DefaultCache sizes the cache like the paper's servers (128 GB nodes;
// the usual dirty_ratio keeps ~10-20% of RAM dirty).
func DefaultCache() CacheParams {
	return CacheParams{CopyBW: 2200e6, DirtyLimit: 16 << 30, FlushDepth: 4}
}

// WriteCache absorbs writes at memory speed, acknowledges them, and flushes
// to the backing device in the background. When the dirty limit is reached,
// incoming writes block — this back-pressure is what couples a slow disk to
// the network even with synchronization off.
type WriteCache struct {
	E   *sim.Engine
	P   CacheParams
	Dev Device

	copyLine *sim.Line
	dirty    int64
	flushQ   []*Request
	inFlight int
	blocked  []*Request

	absorbed     int64
	flushed      int64
	blockedCount int64
	drainFns     []func()
}

// NewWriteCache returns a cache flushing to dev.
func NewWriteCache(e *sim.Engine, p CacheParams, dev Device) *WriteCache {
	if p.FlushDepth <= 0 {
		p.FlushDepth = 1
	}
	return &WriteCache{E: e, P: p, Dev: dev, copyLine: sim.NewLine(e, p.CopyBW)}
}

// Dirty returns the current dirty byte count (absorbed but not flushed).
func (c *WriteCache) Dirty() int64 { return c.dirty }

// Absorbed returns cumulative bytes accepted into the cache.
func (c *WriteCache) Absorbed() int64 { return c.absorbed }

// Flushed returns cumulative bytes written back to the device.
func (c *WriteCache) Flushed() int64 { return c.flushed }

// BlockedWrites returns how many writes had to wait for dirty-limit room.
func (c *WriteCache) BlockedWrites() int64 { return c.blockedCount }

// Write absorbs r; r.Done fires when the copy into memory completes. If the
// dirty limit is exceeded the write waits (FIFO) for flushing to make room.
func (c *WriteCache) Write(r *Request) {
	if c.hasRoom(r) && len(c.blocked) == 0 {
		c.admit(r)
		return
	}
	c.blockedCount++
	c.blocked = append(c.blocked, r)
}

// hasRoom reports whether r fits under the dirty limit. A request larger
// than the whole limit is admitted only when the cache is empty, so it can
// never deadlock.
func (c *WriteCache) hasRoom(r *Request) bool {
	if c.P.DirtyLimit <= 0 {
		return true
	}
	if r.Size >= c.P.DirtyLimit {
		return c.dirty == 0
	}
	return c.dirty+r.Size <= c.P.DirtyLimit
}

func (c *WriteCache) admit(r *Request) {
	c.dirty += r.Size
	c.absorbed += r.Size
	done := r.Done
	c.copyLine.Send(r.Size, func() {
		if done != nil {
			done()
		}
	})
	// Queue the extent for background flushing (its completion is internal).
	fr := &Request{File: r.File, Offset: r.Offset, Size: r.Size, Stream: r.Stream}
	c.flushQ = append(c.flushQ, fr)
	c.kickFlusher()
}

func (c *WriteCache) kickFlusher() {
	for c.inFlight < c.P.FlushDepth && len(c.flushQ) > 0 {
		fr := c.flushQ[0]
		copy(c.flushQ, c.flushQ[1:])
		c.flushQ = c.flushQ[:len(c.flushQ)-1]
		c.inFlight++
		size := fr.Size
		fr.Done = func() {
			c.inFlight--
			c.dirty -= size
			c.flushed += size
			c.admitBlocked()
			c.kickFlusher()
			c.checkDrained()
		}
		c.Dev.Submit(fr)
	}
}

func (c *WriteCache) admitBlocked() {
	for len(c.blocked) > 0 && c.hasRoom(c.blocked[0]) {
		r := c.blocked[0]
		copy(c.blocked, c.blocked[1:])
		c.blocked = c.blocked[:len(c.blocked)-1]
		c.admit(r)
	}
}

// OnDrained registers fn to run once everything absorbed so far has been
// flushed to the device (used by tests and fsync-like semantics).
func (c *WriteCache) OnDrained(fn func()) {
	if c.dirty == 0 && len(c.flushQ) == 0 && c.inFlight == 0 && len(c.blocked) == 0 {
		c.E.Schedule(0, fn)
		return
	}
	c.drainFns = append(c.drainFns, fn)
}

func (c *WriteCache) checkDrained() {
	if c.dirty != 0 || len(c.flushQ) != 0 || c.inFlight != 0 || len(c.blocked) != 0 {
		return
	}
	fns := c.drainFns
	c.drainFns = nil
	for _, fn := range fns {
		c.E.Schedule(0, fn)
	}
}
