package storage

import (
	"testing"

	"repro/internal/sim"
)

func TestSSDServiceTime(t *testing.T) {
	e := sim.NewEngine()
	d := NewSSD(e, SSDParams{BW: 100e6, OpLat: sim.Millisecond})
	d.Submit(&Request{File: 1, Offset: 0, Size: 100 << 20})
	e.Run()
	want := sim.Millisecond + sim.TransferTime(100<<20, 100e6)
	if e.Now() != want {
		t.Fatalf("elapsed = %v, want %v", e.Now(), want)
	}
}

func TestSSDRandPenaltyOnlyOnDiscontinuity(t *testing.T) {
	e := sim.NewEngine()
	d := NewSSD(e, SSDParams{BW: 100e6, OpLat: 0, RandPenalty: sim.Millisecond})
	// Contiguous pair then a jump.
	d.Submit(&Request{File: 1, Offset: 0, Size: 1000})
	d.Submit(&Request{File: 1, Offset: 1000, Size: 1000})
	d.Submit(&Request{File: 1, Offset: 1 << 20, Size: 1000})
	e.Run()
	if s := d.Stats(); s.Seeks != 2 {
		// First request (cold) and the jump.
		t.Fatalf("discontinuities = %d, want 2", s.Seeks)
	}
}

func TestRAMIsFastAndOrderInsensitive(t *testing.T) {
	e := sim.NewEngine()
	d := NewRAM(e, RAMParams{BW: 1000e6, OpLat: 0})
	for i := 0; i < 10; i++ {
		// Scattered offsets: no penalty for RAM.
		d.Submit(&Request{File: 1, Offset: int64((i * 7919) % 100 << 20), Size: 10 << 20})
	}
	e.Run()
	want := sim.TransferTime(100<<20, 1000e6)
	if e.Now() != want {
		t.Fatalf("elapsed = %v, want %v", e.Now(), want)
	}
	if d.Stats().Seeks != 0 {
		t.Fatalf("RAM counted seeks: %d", d.Stats().Seeks)
	}
}

func TestNullCompletesAlmostInstantly(t *testing.T) {
	e := sim.NewEngine()
	d := NewNull(e)
	n := 0
	for i := 0; i < 100; i++ {
		d.Submit(&Request{File: 1, Offset: int64(i), Size: 1 << 30, Done: func() { n++ }})
	}
	e.Run()
	if n != 100 {
		t.Fatalf("completions = %d", n)
	}
	if e.Now() > sim.Millisecond {
		t.Fatalf("null backend took %v for 100 ops", e.Now())
	}
}

func TestSerialFIFOOrder(t *testing.T) {
	e := sim.NewEngine()
	d := NewSSD(e, DefaultSSD())
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		d.Submit(&Request{File: 1, Offset: int64(i * 100), Size: 100, Done: func() { order = append(order, i) }})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("out of order completions: %v", order)
		}
	}
}

func TestDefaultSSDRAMTableOneAlone(t *testing.T) {
	// Table I: SSD 2 GB alone = 2.27 s, RAM = 1.32 s. Raw devices should be
	// close (the remaining gap is PVFS/client overhead added upstream).
	run := func(mk func(*sim.Engine) Device) float64 {
		e := sim.NewEngine()
		d := mk(e)
		const total = 2 << 30
		const req = 4 << 20
		for off := int64(0); off < total; off += req {
			d.Submit(&Request{File: 1, Offset: off, Size: req})
		}
		e.Run()
		return e.Now().Seconds()
	}
	ssdSec := run(func(e *sim.Engine) Device { return NewSSD(e, DefaultSSD()) })
	if ssdSec < 1.8 || ssdSec > 2.8 {
		t.Fatalf("SSD 2GB = %.2fs, want ~2.27s", ssdSec)
	}
	ramSec := run(func(e *sim.Engine) Device { return NewRAM(e, DefaultRAM()) })
	if ramSec < 1.0 || ramSec > 1.7 {
		t.Fatalf("RAM 2GB = %.2fs, want ~1.32s", ramSec)
	}
}
