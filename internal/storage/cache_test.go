package storage

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testCache(e *sim.Engine, limit int64) (*WriteCache, Device) {
	dev := NewHDD(e, HDDParams{SeqBW: 100e6, Seek: 10 * sim.Millisecond, MaxRun: 4 << 20})
	c := NewWriteCache(e, CacheParams{CopyBW: 1000e6, DirtyLimit: limit, FlushDepth: 2}, dev)
	return c, dev
}

func TestCacheAbsorbsAtMemorySpeed(t *testing.T) {
	e := sim.NewEngine()
	c, _ := testCache(e, 1<<30)
	var ackAt sim.Time
	c.Write(&Request{File: 1, Offset: 0, Size: 100 << 20, Done: func() { ackAt = e.Now() }})
	e.Run()
	// Ack at memcpy speed (100 MB at 1 GB/s = 100 ms), much sooner than the
	// ~1 s the disk needs.
	if ackAt != sim.TransferTime(100<<20, 1000e6) {
		t.Fatalf("ack at %v, want 100ms", ackAt)
	}
	if c.Flushed() != 100<<20 {
		t.Fatalf("flushed = %d", c.Flushed())
	}
	if c.Dirty() != 0 {
		t.Fatalf("dirty = %d after run", c.Dirty())
	}
}

func TestCacheDirtyLimitBlocksWriters(t *testing.T) {
	e := sim.NewEngine()
	c, _ := testCache(e, 10<<20) // 10 MiB limit
	var acks []sim.Time
	for i := 0; i < 8; i++ {
		off := int64(i) * (5 << 20)
		c.Write(&Request{File: 1, Offset: off, Size: 5 << 20, Done: func() { acks = append(acks, e.Now()) }})
	}
	e.Run()
	if len(acks) != 8 {
		t.Fatalf("acks = %d", len(acks))
	}
	if c.BlockedWrites() == 0 {
		t.Fatal("expected some writes to hit the dirty limit")
	}
	// Total time is disk-bound, not memcpy-bound: 40 MB at ~100 MB/s >= 400ms.
	if e.Now() < 300*sim.Millisecond {
		t.Fatalf("run finished too fast (%v) for a throttled cache", e.Now())
	}
}

func TestCacheUnlimitedNeverBlocks(t *testing.T) {
	e := sim.NewEngine()
	c, _ := testCache(e, 0) // no limit
	for i := 0; i < 100; i++ {
		c.Write(&Request{File: 1, Offset: int64(i) << 20, Size: 1 << 20})
	}
	e.Run()
	if c.BlockedWrites() != 0 {
		t.Fatalf("blocked = %d, want 0", c.BlockedWrites())
	}
}

func TestCacheOversizedRequestAdmittedWhenEmpty(t *testing.T) {
	e := sim.NewEngine()
	c, _ := testCache(e, 1<<20)
	done := false
	c.Write(&Request{File: 1, Offset: 0, Size: 8 << 20, Done: func() { done = true }})
	e.Run()
	if !done {
		t.Fatal("oversized request deadlocked")
	}
}

func TestCacheOnDrained(t *testing.T) {
	e := sim.NewEngine()
	c, dev := testCache(e, 1<<30)
	drained := sim.Time(-1)
	c.Write(&Request{File: 1, Offset: 0, Size: 50 << 20})
	c.OnDrained(func() { drained = e.Now() })
	e.Run()
	if drained < 0 {
		t.Fatal("OnDrained never fired")
	}
	if dev.Stats().Bytes != 50<<20 {
		t.Fatalf("device flushed %d bytes", dev.Stats().Bytes)
	}
	// Registering after drain fires immediately.
	again := false
	c.OnDrained(func() { again = true })
	e.Run()
	if !again {
		t.Fatal("OnDrained after drain did not fire")
	}
}

func TestCacheAccountingConservation(t *testing.T) {
	e := sim.NewEngine()
	c, _ := testCache(e, 4<<20)
	var total int64
	r := sim.NewRand(11)
	for i := 0; i < 50; i++ {
		size := r.Int63n(2<<20) + 1
		total += size
		c.Write(&Request{File: FileID(i % 3), Offset: int64(i) << 21, Size: size})
	}
	e.Run()
	if c.Absorbed() != total || c.Flushed() != total {
		t.Fatalf("absorbed=%d flushed=%d want %d", c.Absorbed(), c.Flushed(), total)
	}
	if c.Dirty() != 0 {
		t.Fatalf("dirty = %d", c.Dirty())
	}
}

// Property: for any write plan, every write is acknowledged, dirty returns
// to zero, and flushed equals absorbed equals the sum of sizes.
func TestPropertyCacheConserves(t *testing.T) {
	f := func(sizes []uint16, limitKB uint8) bool {
		e := sim.NewEngine()
		limit := int64(limitKB)*1024 + 4096
		c, _ := testCache(e, limit)
		var want int64
		acked := 0
		for i, s := range sizes {
			size := int64(s) + 1
			want += size
			c.Write(&Request{File: FileID(i % 2), Offset: int64(i) << 20, Size: size,
				Done: func() { acked++ }})
		}
		e.Run()
		return acked == len(sizes) && c.Dirty() == 0 && c.Absorbed() == want && c.Flushed() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
