package storage

import (
	"testing"

	"repro/internal/sim"
)

// submitAt schedules a request submission at time t.
func submitAt(e *sim.Engine, d Device, t sim.Time, r *Request) {
	e.Schedule(t, func() { d.Submit(r) })
}

func TestFlashChannelsOverlap(t *testing.T) {
	// 4 requests of 1 ms each on 4 channels, submitted together: the device
	// finishes all of them after ~1 ms, not 4 ms.
	e := sim.NewEngine()
	d := NewSSD(e, SSDParams{BW: 0, OpLat: sim.Millisecond, Channels: 4})
	var done int
	for i := 0; i < 4; i++ {
		d.Submit(&Request{File: 1, Offset: int64(i) << 20, Size: 1 << 20,
			Done: func() { done++ }})
	}
	e.Run()
	if done != 4 {
		t.Fatalf("completed %d of 4", done)
	}
	if e.Now() != sim.Millisecond {
		t.Fatalf("4 parallel ops took %v, want exactly 1ms", e.Now())
	}
}

func TestFlashSerializesBeyondChannels(t *testing.T) {
	// 4 ops of 1 ms on 2 channels: two waves, 2 ms total.
	e := sim.NewEngine()
	d := NewSSD(e, SSDParams{BW: 0, OpLat: sim.Millisecond, Channels: 2})
	for i := 0; i < 4; i++ {
		d.Submit(&Request{File: 1, Offset: int64(i) << 20, Size: 1 << 20})
	}
	e.Run()
	if e.Now() != 2*sim.Millisecond {
		t.Fatalf("4 ops on 2 channels took %v, want 2ms", e.Now())
	}
}

func TestFlashNoSeekPenalty(t *testing.T) {
	// Scattered, interleaved offsets from two files: a flash device counts
	// no seeks and charges no positional penalty.
	e := sim.NewEngine()
	d := NewSSD(e, SSDParams{BW: 100e6, OpLat: 0, RandPenalty: sim.Second, Channels: 2})
	offs := []int64{900 << 20, 0, 500 << 20, 100 << 20}
	for i, off := range offs {
		d.Submit(&Request{File: FileID(i % 2), Offset: off, Size: 1 << 20})
	}
	e.Run()
	if d.Stats().Seeks != 0 {
		t.Fatalf("flash counted %d seeks", d.Stats().Seeks)
	}
	// 4 MiB at 100 MB/s per channel over 2 channels: ~2 x 1 MiB serial time.
	want := 2 * sim.TransferTime(1<<20, 100e6)
	if e.Now() != want {
		t.Fatalf("elapsed %v, want %v (no positional penalty)", e.Now(), want)
	}
}

func TestFlashStatsAndQueueAccounting(t *testing.T) {
	e := sim.NewEngine()
	d := NewSSD(e, SSDParams{BW: 0, OpLat: sim.Millisecond, Channels: 2})
	for i := 0; i < 3; i++ {
		d.Submit(&Request{File: 1, Offset: int64(i) << 20, Size: 2 << 20})
	}
	// Two in service, one waiting; Queued counts waiting only, like every
	// other device.
	if got := d.Queued(); got != 1 {
		t.Fatalf("Queued = %d, want 1 (the waiting request)", got)
	}
	if got := d.QueuedBytes(); got != 2<<20 {
		t.Fatalf("QueuedBytes = %d, want the one waiting request", got)
	}
	e.Run()
	st := d.Stats()
	if st.Ops != 3 || st.Bytes != 3*(2<<20) {
		t.Fatalf("stats = %+v", st)
	}
	// Busy is per-channel service time summed: 3 x 1 ms even though
	// wall-clock was 2 ms.
	if st.Busy != 3*sim.Millisecond {
		t.Fatalf("Busy = %v, want 3ms summed across channels", st.Busy)
	}
	if d.Queued() != 0 || d.QueuedBytes() != 0 {
		t.Fatalf("device not drained: %d reqs, %d bytes", d.Queued(), d.QueuedBytes())
	}
}

func TestFlashFIFODispatchDeterministic(t *testing.T) {
	// Completion order on equal-duration ops follows submission order
	// (lowest idle channel first), twice in a row.
	run := func() []int {
		e := sim.NewEngine()
		d := NewSSD(e, SSDParams{BW: 200e6, OpLat: 100 * sim.Microsecond, Channels: 3})
		var order []int
		for i := 0; i < 9; i++ {
			i := i
			submitAt(e, d, sim.Time(i)*sim.Microsecond,
				&Request{File: 1, Offset: int64(i) << 20, Size: 1 << 20,
					Done: func() { order = append(order, i) }})
		}
		e.Run()
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic completion order: %v vs %v", a, b)
		}
		if a[i] != i {
			t.Fatalf("completion order %v, want FIFO", a)
		}
	}
}

func TestSerialSSDUnchangedByChannelsField(t *testing.T) {
	// Channels 0 and 1 must select the calibrated serial model (RandPenalty
	// honored), keeping the paper's SSD figures bit-identical.
	for _, ch := range []int{0, 1} {
		e := sim.NewEngine()
		p := SSDParams{BW: 100e6, OpLat: 0, RandPenalty: sim.Millisecond, Channels: ch}
		d := NewSSD(e, p)
		d.Submit(&Request{File: 1, Offset: 0, Size: 1 << 20})
		d.Submit(&Request{File: 1, Offset: 500 << 20, Size: 1 << 20}) // discontiguous
		e.Run()
		if d.Stats().Seeks != 2 {
			t.Fatalf("Channels=%d: serial model should count 2 penalties, got %d",
				ch, d.Stats().Seeks)
		}
	}
}
