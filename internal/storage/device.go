// Package storage models backend storage devices of an HPC storage server:
// rotational disks (with head position, seek costs and elevator-style
// batching), SSDs, RAM-backed storage, and the "null-aio" mode of PVFS that
// discards data. It also models the kernel write-back cache used when file
// synchronization is disabled ("Sync OFF" in the paper).
//
// The device models are deliberately first-order: the paper's disk-level
// interference is seek amplification caused by interleaved request streams,
// which these models reproduce without simulating real geometry.
package storage

import "repro/internal/sim"

// FileID identifies a local byte stream (a "bstream" in PVFS terms) stored
// on a device. Different applications write different files; a shared MPI
// file still maps to one bstream per server.
type FileID int32

// StreamID tags the logical origin of a request (application/flow); devices
// use it only for statistics.
type StreamID int32

// Request is a single device I/O operation. Done runs (as a simulation
// event) when the operation completes.
type Request struct {
	File   FileID
	Offset int64
	Size   int64
	Stream StreamID
	Read   bool
	Done   func()

	seq int64 // submission order, set by the device (elevator aging)
}

// End returns the first byte offset after the request.
func (r *Request) End() int64 { return r.Offset + r.Size }

// Stats are cumulative per-device counters.
type Stats struct {
	Ops   int64
	Bytes int64
	Seeks int64    // head repositionings (HDD only)
	Busy  sim.Time // total time the device was servicing requests
}

// Device is a storage backend accepting asynchronous write/read requests.
type Device interface {
	// Name identifies the device kind ("hdd", "ssd", "ram", "null").
	Name() string
	// Submit enqueues a request; r.Done fires at completion.
	Submit(r *Request)
	// Queued returns the number of requests waiting to enter service
	// (requests currently in service are excluded).
	Queued() int
	// QueuedBytes returns the bytes of the waiting requests.
	QueuedBytes() int64
	// Stats returns cumulative counters.
	Stats() Stats
}

// completion invokes r.Done if set.
func complete(r *Request) {
	if r.Done != nil {
		r.Done()
	}
}
