package storage

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testHDD(e *sim.Engine) *HDD {
	return NewHDD(e, HDDParams{
		SeqBW:      100e6, // 100 MB/s
		Seek:       10 * sim.Millisecond,
		OpOverhead: 0,
		MaxRun:     4 << 20,
	})
}

func TestHDDSequentialNoExtraSeeks(t *testing.T) {
	e := sim.NewEngine()
	d := testHDD(e)
	const n = 64
	const size = 1 << 20
	done := 0
	for i := 0; i < n; i++ {
		d.Submit(&Request{File: 1, Offset: int64(i) * size, Size: size, Done: func() { done++ }})
	}
	e.Run()
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
	if s := d.Stats(); s.Seeks != 1 {
		t.Fatalf("seeks = %d, want 1 (initial positioning only)", s.Seeks)
	}
	// 64 MB at 100 MB/s + one seek.
	want := sim.TransferTime(n*size, 100e6) + 10*sim.Millisecond
	if e.Now() != want {
		t.Fatalf("elapsed = %v, want %v", e.Now(), want)
	}
}

func TestHDDInterleavedStreamsBatch(t *testing.T) {
	// Two files, requests interleaved in submission order. The elevator must
	// serve runs up to MaxRun before switching, so seek count is about
	// totalBytes/MaxRun per stream, not one per request.
	e := sim.NewEngine()
	d := testHDD(e)
	const n = 32
	const size = 1 << 20 // 1 MiB requests, MaxRun = 4 MiB
	for i := 0; i < n; i++ {
		for f := FileID(1); f <= 2; f++ {
			d.Submit(&Request{File: f, Offset: int64(i) * size, Size: size})
		}
	}
	e.Run()
	s := d.Stats()
	// 64 MiB total, 4 MiB runs -> ~16 switches; allow slack but far fewer
	// than the 64 seeks a naive FIFO would pay.
	if s.Seeks < 8 || s.Seeks > 24 {
		t.Fatalf("seeks = %d, want ~16 (batched)", s.Seeks)
	}
}

func TestHDDStridedPaysSeekPerHole(t *testing.T) {
	e := sim.NewEngine()
	d := testHDD(e)
	const n = 16
	const size = 64 << 10
	// Holes between consecutive requests on the same file: every request
	// must pay a seek.
	for i := 0; i < n; i++ {
		d.Submit(&Request{File: 1, Offset: int64(i) * size * 2, Size: size})
	}
	e.Run()
	if s := d.Stats(); s.Seeks != n {
		t.Fatalf("seeks = %d, want %d", s.Seeks, n)
	}
}

func TestHDDContiguousVsInterleavedSlowdown(t *testing.T) {
	// The Table I mechanism: two interleaved contiguous streams should take
	// a bit more than 2x the time of one stream (seek amplification), but
	// far less than the unbatched worst case.
	run := func(two bool) sim.Time {
		e := sim.NewEngine()
		d := testHDD(e)
		const total = 256 << 20
		const req = 4 << 20
		for off := int64(0); off < total; off += req {
			d.Submit(&Request{File: 1, Offset: off, Size: req})
			if two {
				d.Submit(&Request{File: 2, Offset: off, Size: req})
			}
		}
		return e.Run()
	}
	alone := run(false)
	both := run(true)
	slow := float64(both) / float64(alone)
	if slow < 2.0 || slow > 3.2 {
		t.Fatalf("interleaved slowdown = %.2f, want in [2.0, 3.2]", slow)
	}
}

func TestHDDQueueAccounting(t *testing.T) {
	e := sim.NewEngine()
	d := testHDD(e)
	d.Submit(&Request{File: 1, Offset: 0, Size: 100})
	d.Submit(&Request{File: 1, Offset: 100, Size: 200})
	if d.Queued() != 1 || d.QueuedBytes() != 200 {
		// The first request went into service immediately.
		t.Fatalf("queued=%d bytes=%d, want 1/200", d.Queued(), d.QueuedBytes())
	}
	e.Run()
	if d.Queued() != 0 || d.QueuedBytes() != 0 {
		t.Fatalf("queue not drained: %d/%d", d.Queued(), d.QueuedBytes())
	}
	if s := d.Stats(); s.Ops != 2 || s.Bytes != 300 {
		t.Fatalf("stats = %+v", s)
	}
}

// Property: every submitted request completes exactly once, regardless of
// the interleaving pattern, and busy time is positive when work was done.
func TestPropertyHDDCompletesAll(t *testing.T) {
	f := func(plan []struct {
		File uint8
		Off  uint16
		Size uint16
	}) bool {
		e := sim.NewEngine()
		d := testHDD(e)
		want := 0
		got := 0
		for _, p := range plan {
			size := int64(p.Size%1024) + 1
			d.Submit(&Request{
				File:   FileID(p.File % 4),
				Offset: int64(p.Off),
				Size:   size,
				Done:   func() { got++ },
			})
			want++
		}
		e.Run()
		return got == want && d.Queued() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultHDDMatchesTableOneAlone(t *testing.T) {
	// One client writing 2 GB contiguously: the paper measured 13.4 s.
	// The raw device (without PVFS overheads) must be in that ballpark.
	e := sim.NewEngine()
	d := NewHDD(e, DefaultHDD())
	const total = 2 << 30
	const req = 4 << 20
	for off := int64(0); off < total; off += req {
		d.Submit(&Request{File: 1, Offset: off, Size: req})
	}
	e.Run()
	sec := e.Now().Seconds()
	if sec < 12 || sec > 16 {
		t.Fatalf("2 GB streaming took %.2fs, want ~13.4s", sec)
	}
}
