package storage

import "repro/internal/sim"

// serial is a position-independent FIFO device: service time is a fixed
// per-op latency plus size/bandwidth, with no locality effects. SSD, RAM and
// the null backend share this mechanism with different parameters.
type serial struct {
	e    *sim.Engine
	name string

	// bw is bytes/second; zero means infinitely fast.
	bw float64
	// opLat is the fixed per-request latency.
	opLat sim.Time
	// randPenalty is added when the request is not contiguous with the
	// previous one on the same file (mild on SSDs, zero elsewhere).
	randPenalty sim.Time

	queue       []*Request
	busy        bool
	cur         *Request // request in service; completes at the next OnEvent
	lastFile    FileID
	lastEnd     int64
	haveLast    bool
	queuedBytes int64
	stats       Stats
}

// OnEvent implements sim.Target: completion of the request in service. The
// device serves one request at a time, so the event needs no payload and
// scheduling it allocates nothing.
func (d *serial) OnEvent(op uint32, a, b int64) {
	r := d.cur
	d.cur = nil
	complete(r)
	d.serveNext()
}

func (d *serial) Name() string       { return d.name }
func (d *serial) Queued() int        { return len(d.queue) }
func (d *serial) QueuedBytes() int64 { return d.queuedBytes }
func (d *serial) Stats() Stats       { return d.stats }

func (d *serial) Submit(r *Request) {
	d.queue = append(d.queue, r)
	d.queuedBytes += r.Size
	if !d.busy {
		d.busy = true
		d.serveNext()
	}
}

func (d *serial) serveNext() {
	if len(d.queue) == 0 {
		d.busy = false
		return
	}
	r := d.queue[0]
	copy(d.queue, d.queue[1:])
	d.queue = d.queue[:len(d.queue)-1]
	d.queuedBytes -= r.Size

	dur := d.opLat + sim.TransferTime(r.Size, d.bw)
	if d.randPenalty > 0 && (!d.haveLast || r.File != d.lastFile || r.Offset != d.lastEnd) {
		dur += d.randPenalty
		d.stats.Seeks++
	}
	d.lastFile, d.lastEnd, d.haveLast = r.File, r.End(), true
	d.stats.Ops++
	d.stats.Bytes += r.Size
	d.stats.Busy += dur

	d.cur = r
	d.e.ScheduleCall(dur, d, 0, 0, 0)
}

// RAMParams configures the memory-backed device model (tmpfs).
type RAMParams struct {
	BW    float64
	OpLat sim.Time
}

// DefaultRAM approximates the paper's RAM (tmpfs) backend. The raw device
// is a bit faster than Table I's 1.32 s for 2 GB: the remaining time is
// client-side request processing, modeled upstream, which is also what
// keeps the contended slowdown at ~1.6x instead of 2x.
func DefaultRAM() RAMParams {
	return RAMParams{BW: 1920e6, OpLat: 15 * sim.Microsecond}
}

// NewRAM returns a memory-backed device.
func NewRAM(e *sim.Engine, p RAMParams) Device {
	return &serial{e: e, name: "ram", bw: p.BW, opLat: p.OpLat}
}

// NewNull returns the PVFS "null-aio" backend: requests complete after a
// negligible fixed latency and data is discarded.
func NewNull(e *sim.Engine) Device {
	return &serial{e: e, name: "null", bw: 0, opLat: sim.Microsecond}
}
