package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// IFMatrix is the pairwise interference-factor matrix of an application
// set, the summary Alves & Drummond's quantitative cross-application model
// consumes: Cell[i][j] is the interference factor of application i
// (elapsed time divided by its alone baseline) when co-running with
// application j only, both bursts starting at δ=0. The diagonal is exactly
// 1 (an application does not interfere with itself — it IS the alone run).
// The matrix is generally asymmetric: a heavy sequential writer barely
// notices a small random one while slowing it down severely.
type IFMatrix struct {
	// Names labels the rows and columns, in application order.
	Names []string
	// Alone is the per-app completion vector of the solo baselines.
	Alone []sim.Time
	// Cell[i][j] is the IF of app i against app j; Cell[i][i] == 1.
	Cell [][]float64
}

// Dim returns the number of applications.
func (m *IFMatrix) Dim() int { return len(m.Names) }

// Peak returns the largest off-diagonal interference factor and the
// (victim, aggressor) pair that produced it.
func (m *IFMatrix) Peak() (victim, aggressor int, factor float64) {
	for i := range m.Cell {
		for j, f := range m.Cell[i] {
			if i != j && f > factor {
				victim, aggressor, factor = i, j, f
			}
		}
	}
	return
}

// Asymmetry returns the largest |Cell[i][j] - Cell[j][i]| over all pairs —
// 0 for perfectly symmetric interference, large when one application
// bullies another (the paper's first-mover/incast signature shows up here
// when workloads differ).
func (m *IFMatrix) Asymmetry() float64 {
	var peak float64
	for i := range m.Cell {
		for j := i + 1; j < len(m.Cell[i]); j++ {
			d := m.Cell[i][j] - m.Cell[j][i]
			if d < 0 {
				d = -d
			}
			if d > peak {
				peak = d
			}
		}
	}
	return peak
}

// RunPairwise measures the pairwise interference-factor matrix of apps on
// cfg: one alone run per application plus one co-run per unordered pair,
// every simulation independent and executed on the pool. One pair run fills
// both Cell[i][j] and Cell[j][i], so an n-app matrix costs
// n + n*(n-1)/2 simulations.
func (r Runner) RunPairwise(cfg cluster.Config, apps []AppSpec) *IFMatrix {
	return r.RunPairwiseFrom(cfg, apps, nil)
}

// RunPairwiseFrom is RunPairwise with precomputed alone baselines. The
// baselines must come from the same cfg and apps with Start=0 — which is
// exactly what DeltaGraph.Alone holds — so a caller that already ran a
// δ-graph skips the n redundant alone simulations. nil computes them here.
func (r Runner) RunPairwiseFrom(cfg cluster.Config, apps []AppSpec, alone []sim.Time) *IFMatrix {
	n := len(apps)
	if n == 0 {
		panic("core: RunPairwise needs at least one application")
	}
	if alone != nil && len(alone) != n {
		panic(fmt.Sprintf("core: RunPairwiseFrom got %d apps but %d baselines", n, len(alone)))
	}
	m := newIFMatrix(apps)
	pairs := appPairs(n)
	// Baseline tasks only when not precomputed: task t < base is the alone
	// run of app t, task base+k the co-run of pair k.
	base := n
	if alone != nil {
		copy(m.Alone, alone)
		base = 0
	}
	elapsed := make([][2]sim.Time, len(pairs))
	r.ForEach(base+len(pairs), func(t int) {
		if t < base {
			app := apps[t]
			app.Start = 0
			x := PrepareSharded(cfg, []AppSpec{app}, r.Shards)
			m.Alone[t] = x.Run().Apps[0].Elapsed
			return
		}
		elapsed[t-base] = runPair(cfg, apps, pairs[t-base], r.Shards)
	})
	m.fill(pairs, elapsed)
	return m
}

// RunDeltaPairwise executes a δ-graph and the pairwise matrix of the same
// application set as ONE flattened task set — every alone baseline, δ point
// and pair co-run claims a pool slot concurrently, with the baselines
// shared by both results. Output is identical to RunDelta followed by
// RunPairwiseFrom(…, graph.Alone); only the wall-clock differs.
func (r Runner) RunDeltaPairwise(spec DeltaSpec) (*DeltaGraph, *IFMatrix) {
	spec.validate()
	spec.Shards = r.shardsFor(spec)
	n := len(spec.Apps)
	g := &DeltaGraph{
		Alone:  make([]sim.Time, n),
		Points: make([]DeltaPoint, len(spec.Deltas)),
	}
	m := newIFMatrix(spec.Apps)
	pairs := appPairs(n)
	elapsed := make([][2]sim.Time, len(pairs))
	r.ForEach(n+len(spec.Deltas)+len(pairs), func(t int) {
		switch {
		case t < n:
			g.Alone[t] = runAlone(spec, t)
		case t < n+len(spec.Deltas):
			g.Points[t-n] = runPoint(spec, spec.Deltas[t-n])
		default:
			k := t - n - len(spec.Deltas)
			elapsed[k] = runPair(spec.Cfg, spec.Apps, pairs[k], spec.Shards)
		}
	})
	for i := range g.Points {
		g.Points[i].applyAlone(g.Alone)
	}
	copy(m.Alone, g.Alone)
	m.fill(pairs, elapsed)
	return g, m
}

// appPair indexes one unordered application pair.
type appPair struct{ i, j int }

// appPairs enumerates the n*(n-1)/2 unordered pairs in row order.
func appPairs(n int) []appPair {
	var out []appPair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = append(out, appPair{i, j})
		}
	}
	return out
}

// newIFMatrix allocates a matrix with names resolved and a unit diagonal.
func newIFMatrix(apps []AppSpec) *IFMatrix {
	n := len(apps)
	m := &IFMatrix{
		Names: make([]string, n),
		Alone: make([]sim.Time, n),
		Cell:  make([][]float64, n),
	}
	for i, a := range apps {
		m.Names[i] = a.Name
		if m.Names[i] == "" {
			m.Names[i] = AppName(i)
		}
		m.Cell[i] = make([]float64, n)
		m.Cell[i][i] = 1
	}
	return m
}

// runPair co-runs one application pair at δ=0 and returns both elapsed times.
func runPair(cfg cluster.Config, apps []AppSpec, p appPair, shards int) [2]sim.Time {
	a, b := apps[p.i], apps[p.j]
	a.Start, b.Start = 0, 0
	res := PrepareSharded(cfg, []AppSpec{a, b}, shards).Run()
	return [2]sim.Time{res.Apps[0].Elapsed, res.Apps[1].Elapsed}
}

// fill derives the off-diagonal cells from the pair co-runs and baselines.
func (m *IFMatrix) fill(pairs []appPair, elapsed [][2]sim.Time) {
	for k, p := range pairs {
		if m.Alone[p.i] > 0 {
			m.Cell[p.i][p.j] = float64(elapsed[k][0]) / float64(m.Alone[p.i])
		}
		if m.Alone[p.j] > 0 {
			m.Cell[p.j][p.i] = float64(elapsed[k][1]) / float64(m.Alone[p.j])
		}
	}
}

// String renders the matrix compactly for logs and tests.
func (m *IFMatrix) String() string {
	s := "IF matrix:"
	for i := range m.Cell {
		s += fmt.Sprintf(" %s=%v", m.Names[i], m.Cell[i])
	}
	return s
}
