package core

import (
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// deltaSpecForTest is a small but non-trivial δ-graph: overlapping and
// non-overlapping points, both signs, on a platform with real contention.
func deltaSpecForTest() DeltaSpec {
	cfg := tinyConfig(cluster.RAM, pfs.SyncOn)
	apps := TwoAppSpecs(cfg, 8, 4, tinyWorkload())
	return DeltaSpec{Cfg: cfg, Apps: apps, Deltas: Deltas(2, 5, 30)}
}

func TestRunnerMatchesSerial(t *testing.T) {
	spec := deltaSpecForTest()
	want := RunDelta(spec)
	for _, par := range []int{0, 1, 2, 4, 16} {
		got := Runner{Parallelism: par}.RunDelta(spec)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("Parallelism=%d diverged from serial path:\nserial   %+v\nparallel %+v",
				par, want, got)
		}
	}
}

func TestRunDeltasMatchesSerial(t *testing.T) {
	// Two different specs through one flattened pool, against serial runs.
	a := deltaSpecForTest()
	b := deltaSpecForTest()
	b.Cfg.Backend = cluster.HDD
	b.Deltas = Deltas(10)
	want := []*DeltaGraph{RunDelta(a), RunDelta(b)}
	got := Runner{Parallelism: 4}.RunDeltas([]DeltaSpec{a, b})
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("RunDeltas diverged from serial path")
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	const n = 1000
	var counts [n]int32
	Runner{Parallelism: 8}.ForEach(n, func(i int) {
		atomic.AddInt32(&counts[i], 1)
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const par = 3
	var inFlight, peak int32
	Runner{Parallelism: par}.ForEach(200, func(int) {
		cur := atomic.AddInt32(&inFlight, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if cur <= p || atomic.CompareAndSwapInt32(&peak, p, cur) {
				break
			}
		}
		atomic.AddInt32(&inFlight, -1)
	})
	if peak > par {
		t.Fatalf("observed %d concurrent tasks, pool bound is %d", peak, par)
	}
}

func TestForEachSerialRunsInOrder(t *testing.T) {
	var got []int
	Runner{Parallelism: 1}.ForEach(5, func(i int) { got = append(got, i) })
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("serial pool order = %v", got)
	}
}

func TestForEachEdgeCases(t *testing.T) {
	ran := false
	Runner{}.ForEach(0, func(int) { ran = true })
	Runner{}.ForEach(-3, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n <= 0")
	}
	n := 0
	Runner{Parallelism: 64}.ForEach(1, func(int) { n++ })
	if n != 1 {
		t.Fatalf("single task ran %d times", n)
	}
}

// TestRunnerDiagIdentical pins down that even the diagnostic counters —
// the most scheduling-sensitive outputs — match the serial path exactly.
func TestRunnerDiagIdentical(t *testing.T) {
	cfg := tinyConfig(cluster.HDD, pfs.SyncOn)
	apps := TwoAppSpecs(cfg, 8, 4, tinyWorkload())
	spec := DeltaSpec{Cfg: cfg, Apps: apps, Deltas: []sim.Time{0}}
	want := RunDelta(spec).Points[0].Diag
	got := Runner{Parallelism: 4}.RunDelta(spec).Points[0].Diag
	if want != got {
		t.Fatalf("diagnostics diverged: serial %+v parallel %+v", want, got)
	}
}
