package core

// Tests for the N-application generalization of the δ-graph core: the
// degenerate sizes (N=1, N=2) must reduce exactly to the paper's
// two-application semantics, and larger sets must stay deterministic
// through the worker pool.

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// TestSingleAppReducesToAlone: a one-app δ-graph is the alone run at every
// δ — IF exactly 1, elapsed exactly the baseline (δ shifts only trailing
// apps, and there are none).
func TestSingleAppReducesToAlone(t *testing.T) {
	cfg := tinyConfig(cluster.RAM, pfs.SyncOn)
	apps := TwoAppSpecs(cfg, 8, 4, tinyWorkload())[:1]
	g := RunDelta(DeltaSpec{Cfg: cfg, Apps: apps, Deltas: Deltas(5)})
	if len(g.Alone) != 1 {
		t.Fatalf("alone vector has %d entries", len(g.Alone))
	}
	for _, p := range g.Points {
		if p.Elapsed[0] != g.Alone[0] {
			t.Fatalf("δ=%v: elapsed %v != alone %v", p.Delta, p.Elapsed[0], g.Alone[0])
		}
		if p.IF[0] != 1 {
			t.Fatalf("δ=%v: IF %v, want exactly 1", p.Delta, p.IF[0])
		}
	}
}

// TestTwoAppPointMatchesLegacy pins the N-app start rule to the paper's
// original two-app semantics: positive δ delays B, negative δ delays A,
// the earliest app starting at 0.
func TestTwoAppPointMatchesLegacy(t *testing.T) {
	cfg := tinyConfig(cluster.RAM, pfs.SyncOn)
	apps := TwoAppSpecs(cfg, 8, 4, tinyWorkload())
	for _, d := range []sim.Time{0, 5 * sim.Second, -5 * sim.Second} {
		g := RunDelta(DeltaSpec{Cfg: cfg, Apps: apps, Deltas: []sim.Time{d}})

		// The legacy rule, inlined.
		a, b := apps[0], apps[1]
		if d >= 0 {
			a.Start, b.Start = 0, d
		} else {
			a.Start, b.Start = -d, 0
		}
		res := Prepare(cfg, []AppSpec{a, b}).Run()

		p := g.Points[0]
		for i := 0; i < 2; i++ {
			if p.Elapsed[i] != res.Apps[i].Elapsed {
				t.Fatalf("δ=%v app %d: N-app core %v != legacy %v",
					d, i, p.Elapsed[i], res.Apps[i].Elapsed)
			}
		}
		if p.Diag != res.Diag {
			t.Fatalf("δ=%v: diagnostics diverged from legacy semantics", d)
		}
	}
}

// threeAppSpecForTest builds a 3-app spec with staggered offsets on a
// contended platform.
func threeAppSpecForTest() DeltaSpec {
	cfg := tinyConfig(cluster.RAM, pfs.SyncOn)
	cfg.ComputeNodes = 6
	apps := AppSpecs(cfg, 3, 8, 4, tinyWorkload())
	return DeltaSpec{
		Cfg:          cfg,
		Apps:         apps,
		StartOffsets: []sim.Time{0, sim.Second, 2 * sim.Second},
		Deltas:       Deltas(2, 30),
	}
}

// TestThreeAppRunnerMatchesSerial: the worker pool must reproduce the
// serial reference bit-for-bit for N=3 with start offsets, at every
// parallelism level.
func TestThreeAppRunnerMatchesSerial(t *testing.T) {
	spec := threeAppSpecForTest()
	want := RunDelta(spec)
	if len(want.Alone) != 3 {
		t.Fatalf("alone vector has %d entries", len(want.Alone))
	}
	for _, par := range []int{0, 1, 2, 4, 16} {
		got := Runner{Parallelism: par}.RunDelta(spec)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("Parallelism=%d diverged from serial path", par)
		}
	}
}

// TestThreeAppInterferenceExceedsPairwise: at δ=0 three identical apps must
// each see at least as much interference as two do — the pile-up an N-app
// engine exists to measure.
func TestThreeAppInterferenceExceedsPairwise(t *testing.T) {
	cfg := tinyConfig(cluster.RAM, pfs.SyncOn)
	cfg.ComputeNodes = 6
	wl := tinyWorkload()
	wl.BlockBytes = 16 << 20
	three := AppSpecs(cfg, 3, 8, 4, wl)
	gTwo := RunDelta(DeltaSpec{Cfg: cfg, Apps: three[:2], Deltas: []sim.Time{0}})
	gThree := RunDelta(DeltaSpec{Cfg: cfg, Apps: three, Deltas: []sim.Time{0}})
	if two, threeIF := gTwo.Points[0].IF[0], gThree.Points[0].IF[0]; threeIF < two*1.1 {
		t.Fatalf("three-way IF %.2f not clearly above two-way %.2f", threeIF, two)
	}
}

// TestStartOffsetsShiftStarts verifies the offset rule through observable
// results: a spec whose only difference is a fixed offset on the leading
// app must equal a δ shift of the same magnitude on the trailing app.
func TestStartOffsetsShiftStarts(t *testing.T) {
	cfg := tinyConfig(cluster.RAM, pfs.SyncOn)
	apps := TwoAppSpecs(cfg, 8, 4, tinyWorkload())
	// Offset A by +3s with δ=0 ≡ legacy δ=-3s (B first, A 3s later).
	gOff := RunDelta(DeltaSpec{
		Cfg: cfg, Apps: apps,
		StartOffsets: []sim.Time{3 * sim.Second, 0},
		Deltas:       []sim.Time{0},
	})
	gDelta := RunDelta(DeltaSpec{Cfg: cfg, Apps: apps, Deltas: []sim.Time{-3 * sim.Second}})
	if !reflect.DeepEqual(gOff.Points[0].Elapsed, gDelta.Points[0].Elapsed) {
		t.Fatalf("offset run %v != equivalent δ run %v",
			gOff.Points[0].Elapsed, gDelta.Points[0].Elapsed)
	}
}

// TestPointRecordsStarts: every δ point carries the normalized start
// vector it actually ran with, and Unfairness orders roles by it — at a
// negative δ an offset-staggered trailing app can still start after app 0.
func TestPointRecordsStarts(t *testing.T) {
	spec := threeAppSpecForTest() // offsets 0s, 1s, 2s
	d := -1500 * sim.Millisecond
	g := RunDelta(DeltaSpec{Cfg: spec.Cfg, Apps: spec.Apps,
		StartOffsets: spec.StartOffsets, Deltas: []sim.Time{d}})
	p := g.Points[0]
	// Raw starts: [0, -0.5s, 0.5s] → normalized [0.5s, 0, 1s].
	want := []sim.Time{500 * sim.Millisecond, 0, sim.Second}
	if !reflect.DeepEqual(p.Start, want) {
		t.Fatalf("recorded starts %v, want %v", p.Start, want)
	}
	// App 2 starts after app 0 even though δ < 0: the (0,2) pair must
	// order app 0 first.
	if first, second, ok := p.order(0, 2); !ok || first != 0 || second != 2 {
		t.Fatalf("order(0,2) = (%d,%d,%v), want app 0 first", first, second, ok)
	}
	// And app 1 before app 0.
	if first, _, ok := p.order(0, 1); !ok || first != 1 {
		t.Fatalf("order(0,1): app 1 started earliest")
	}
}

// TestDeltaSpecValidatePanics: structurally broken specs fail loudly, like
// Prepare does on bad AppSpecs.
func TestDeltaSpecValidatePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	cfg := tinyConfig(cluster.RAM, pfs.SyncOn)
	apps := TwoAppSpecs(cfg, 8, 4, tinyWorkload())
	expectPanic("no apps", func() {
		RunDelta(DeltaSpec{Cfg: cfg, Deltas: []sim.Time{0}})
	})
	expectPanic("offset length mismatch", func() {
		RunDelta(DeltaSpec{Cfg: cfg, Apps: apps,
			StartOffsets: []sim.Time{0}, Deltas: []sim.Time{0}})
	})
}

// TestRunPairwiseMatrix checks the matrix contract on three apps: unit
// diagonal, off-diagonal cells match an independent two-app co-run, and
// pool parallelism does not change a single bit.
func TestRunPairwiseMatrix(t *testing.T) {
	cfg := tinyConfig(cluster.RAM, pfs.SyncOn)
	cfg.ComputeNodes = 6
	wl := tinyWorkload()
	wl.BlockBytes = 16 << 20
	apps := AppSpecs(cfg, 3, 8, 4, wl)

	m := Runner{Parallelism: 1}.RunPairwise(cfg, apps)
	if m.Dim() != 3 {
		t.Fatalf("dim = %d", m.Dim())
	}
	for i := 0; i < 3; i++ {
		if m.Cell[i][i] != 1 {
			t.Fatalf("diagonal [%d] = %v", i, m.Cell[i][i])
		}
		if m.Alone[i] <= 0 {
			t.Fatalf("alone[%d] missing", i)
		}
	}
	// Independent check of one cell: IF of app 0 next to app 1.
	a, b := apps[0], apps[1]
	a.Start, b.Start = 0, 0
	res := Prepare(cfg, []AppSpec{a, b}).Run()
	want := float64(res.Apps[0].Elapsed) / float64(m.Alone[0])
	if m.Cell[0][1] != want {
		t.Fatalf("Cell[0][1] = %v, want %v from the independent co-run", m.Cell[0][1], want)
	}
	if m.Cell[0][1] < 1.2 {
		t.Fatalf("equal apps at δ=0 should interfere, IF = %v", m.Cell[0][1])
	}

	par := Runner{Parallelism: 8}.RunPairwise(cfg, apps)
	if !reflect.DeepEqual(m, par) {
		t.Fatalf("pairwise matrix diverged across pool sizes")
	}

	// Reusing precomputed baselines must change nothing but the run count.
	from := Runner{Parallelism: 4}.RunPairwiseFrom(cfg, apps, m.Alone)
	if !reflect.DeepEqual(m, from) {
		t.Fatalf("RunPairwiseFrom with precomputed baselines diverged")
	}

	// The fused δ-graph+matrix task set must equal the two-call path.
	spec := DeltaSpec{Cfg: cfg, Apps: apps, Deltas: Deltas(2)}
	wantG := RunDelta(spec)
	g, fused := Runner{Parallelism: 8}.RunDeltaPairwise(spec)
	if !reflect.DeepEqual(wantG, g) {
		t.Fatalf("fused run's δ-graph diverged from RunDelta")
	}
	if !reflect.DeepEqual(m, fused) {
		t.Fatalf("fused run's matrix diverged from RunPairwise")
	}

	v, ag, f := m.Peak()
	if f < 1.2 || v == ag {
		t.Fatalf("peak = (%d, %d, %v)", v, ag, f)
	}
}
