package core

import (
	"fmt"

	"repro/internal/qos"
)

// Scheme is one arm of a mitigation sweep: a display label plus the QoS
// parameters every storage server runs with.
type Scheme struct {
	Name string
	QoS  qos.Params
}

// StandardSchemes returns the canonical sweep arms — the un-mitigated
// baseline plus every built-in scheduler at its calibrated defaults:
// {off, fairshare, tokenbucket, controller}. The baseline is first by
// convention; Sweep.Pareto measures every arm against arm 0.
func StandardSchemes() []Scheme {
	kinds := []qos.Kind{qos.Off, qos.FairShare, qos.TokenBucket, qos.Controller}
	out := make([]Scheme, len(kinds))
	for i, k := range kinds {
		out[i] = Scheme{Name: k.String(), QoS: qos.Params{Kind: k}}
	}
	return out
}

// Sweep is the result of one mitigation sweep: the same δ-graph experiment
// repeated under each scheme, Graphs parallel to Schemes. Each arm is fully
// self-consistent — its alone baselines run under the same QoS
// configuration, so an arm's interference factors isolate *interference*
// (co-running cost) from the scheme's standalone overhead; the overhead
// shows up in Pareto's aggregate-throughput column instead.
type Sweep struct {
	Schemes []Scheme
	Graphs  []*DeltaGraph
}

// RunMitigationSweep executes spec once per scheme, all arms' baselines
// and δ points flattened onto one worker pool. Results are deterministic
// and byte-identical at any parallelism (see Runner).
func (r Runner) RunMitigationSweep(spec DeltaSpec, schemes []Scheme) *Sweep {
	if len(schemes) == 0 {
		panic("core: RunMitigationSweep needs at least one scheme")
	}
	specs := make([]DeltaSpec, len(schemes))
	for i, sc := range schemes {
		if err := sc.QoS.Validate(); err != nil {
			panic(fmt.Sprintf("core: scheme %q: %v", sc.Name, err))
		}
		s := spec
		s.Cfg.Srv.QoS = sc.QoS
		specs[i] = s
	}
	return &Sweep{
		Schemes: append([]Scheme(nil), schemes...),
		Graphs:  r.RunDeltas(specs),
	}
}

// ParetoRow summarizes one sweep arm against the baseline arm (index 0):
// how much interference the scheme removes and what it costs in aggregate
// throughput — the two axes of the mitigation trade-off.
type ParetoRow struct {
	Name string
	// PeakIF is the arm's peak interference factor over all δ points and
	// applications; IFReductionPct is its reduction relative to the
	// baseline arm (positive = less interference).
	PeakIF         float64
	IFReductionPct float64
	// Unfairness is the arm's first-mover advantage (DeltaGraph.Unfairness).
	Unfairness float64
	// AggBps is the mean over δ points of the applications' summed
	// throughput (bytes/second); TPCostPct is the aggregate throughput
	// given up relative to the baseline arm (positive = slower overall).
	AggBps    float64
	TPCostPct float64
}

// aggBps returns the mean over points of the per-point aggregate
// throughput (sum of the applications' bytes/second).
func aggBps(g *DeltaGraph) float64 {
	if len(g.Points) == 0 {
		return 0
	}
	var total float64
	for _, p := range g.Points {
		for _, tp := range p.Throughput {
			total += tp
		}
	}
	return total / float64(len(g.Points))
}

// Pareto derives the per-scheme summary rows, each measured against the
// sweep's first arm (conventionally "off").
func (s *Sweep) Pareto() []ParetoRow {
	rows := make([]ParetoRow, len(s.Schemes))
	basePeak := s.Graphs[0].PeakIF()
	baseAgg := aggBps(s.Graphs[0])
	for i, g := range s.Graphs {
		r := ParetoRow{
			Name:       s.Schemes[i].Name,
			PeakIF:     g.PeakIF(),
			Unfairness: g.Unfairness(),
			AggBps:     aggBps(g),
		}
		if basePeak > 0 {
			r.IFReductionPct = (basePeak - r.PeakIF) / basePeak * 100
		}
		if baseAgg > 0 {
			r.TPCostPct = (baseAgg - r.AggBps) / baseAgg * 100
		}
		rows[i] = r
	}
	return rows
}
