package core

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// DeltaSpec describes a δ-graph experiment over N applications. The burst
// start time of application i at a point with offset δ is
//
//	StartOffsets[i] + δ   for i > 0
//	StartOffsets[0]       for i == 0
//
// normalized so the earliest application starts at 0. With two applications
// and zero offsets this is exactly the paper's methodology (§III-B):
// positive δ means application A starts first and B δ later; negative means
// B first. StartOffsets (nil = all zero) express fixed staggering between
// the trailing applications — e.g. a 4-app staggered-arrival scenario — on
// top of which δ still sweeps the whole trailing set against app 0. Each δ
// is an independent run on a fresh platform.
type DeltaSpec struct {
	Cfg  cluster.Config
	Apps []AppSpec // Start fields are overwritten per point
	// StartOffsets[i] is a fixed start offset for application i, added
	// before the δ shift. nil means all zero; otherwise the length must
	// equal len(Apps).
	StartOffsets []sim.Time
	Deltas       []sim.Time
	// Shards selects the event-kernel parallelism of each simulation:
	// 0 or 1 runs the serial determinism oracle, K >= 2 runs K
	// independently-clocked shards (see cluster.BuildSharded). Results are
	// bit-identical at every value; only wall-clock time changes.
	Shards int
}

// validate panics on structurally broken specs (the same contract as
// Prepare, which panics on bad AppSpecs).
func (s DeltaSpec) validate() {
	if len(s.Apps) == 0 {
		panic("core: DeltaSpec needs at least one application")
	}
	if s.StartOffsets != nil && len(s.StartOffsets) != len(s.Apps) {
		panic(fmt.Sprintf("core: DeltaSpec has %d apps but %d start offsets",
			len(s.Apps), len(s.StartOffsets)))
	}
}

// offset returns the fixed start offset of application i.
func (s DeltaSpec) offset(i int) sim.Time {
	if s.StartOffsets == nil {
		return 0
	}
	return s.StartOffsets[i]
}

// DeltaPoint is one δ-graph sample. The slices are indexed by application,
// in DeltaSpec.Apps order.
type DeltaPoint struct {
	Delta      sim.Time
	Start      []sim.Time // normalized burst start times actually used
	Elapsed    []sim.Time
	IF         []float64 // interference factor: Elapsed / alone baseline
	Throughput []float64 // bytes per second
	Diag       Diag
}

// DeltaGraph is the full result: per-app alone baselines (the completion
// vector of each application running by itself) plus one point per δ.
type DeltaGraph struct {
	Alone  []sim.Time
	Points []DeltaPoint
}

// RunDelta executes the alone baselines and every δ point serially, in
// submission order. It is the reference implementation; Runner.RunDelta
// executes the same independent simulations on a worker pool and produces
// an identical DeltaGraph.
func RunDelta(spec DeltaSpec) *DeltaGraph {
	spec.validate()
	g := &DeltaGraph{Alone: make([]sim.Time, len(spec.Apps))}
	for i := range spec.Apps {
		g.Alone[i] = runAlone(spec, i)
	}
	for _, d := range spec.Deltas {
		pt := runPoint(spec, d)
		pt.applyAlone(g.Alone)
		g.Points = append(g.Points, pt)
	}
	return g
}

// runAlone measures application i running by itself (start offsets do not
// apply: a baseline is the application alone on an idle platform).
func runAlone(spec DeltaSpec, i int) sim.Time {
	app := spec.Apps[i]
	app.Start = 0
	x := PrepareSharded(spec.Cfg, []AppSpec{app}, spec.Shards)
	res := x.Run()
	return res.Apps[0].Elapsed
}

// AppsAt returns the spec's application list with burst start times set for
// the point at offset d — every trailing application (i > 0) shifted by d on
// top of its fixed offset, normalized so the earliest start is 0. It is the
// app list runPoint simulates; the trace layer uses it to record the same
// co-run a δ point would execute.
func (s DeltaSpec) AppsAt(d sim.Time) []AppSpec {
	s.validate()
	apps := make([]AppSpec, len(s.Apps))
	copy(apps, s.Apps)
	min := s.offset(0)
	for i := range apps {
		start := s.offset(i)
		if i > 0 {
			start += d
		}
		apps[i].Start = start
		if start < min {
			min = start
		}
	}
	for i := range apps {
		apps[i].Start -= min
	}
	return apps
}

// runPoint measures all applications together with every trailing
// application (i > 0) shifted by d relative to application 0, on top of the
// spec's fixed per-app offsets, normalized so the earliest start is 0.
// IF is left zero: it is the one quantity that needs the alone baselines,
// so applyAlone fills it in once those are known — which lets a Runner
// execute points and baselines concurrently.
func runPoint(spec DeltaSpec, d sim.Time) DeltaPoint {
	n := len(spec.Apps)
	apps := spec.AppsAt(d)
	x := PrepareSharded(spec.Cfg, apps, spec.Shards)
	res := x.Run()
	pt := DeltaPoint{
		Delta:      d,
		Start:      make([]sim.Time, n),
		Elapsed:    make([]sim.Time, n),
		IF:         make([]float64, n),
		Throughput: make([]float64, n),
		Diag:       res.Diag,
	}
	for i := 0; i < n; i++ {
		pt.Start[i] = apps[i].Start
		pt.Elapsed[i] = res.Apps[i].Elapsed
		pt.Throughput[i] = res.Apps[i].Throughput
	}
	return pt
}

// applyAlone derives the interference factors from the alone baselines.
func (p *DeltaPoint) applyAlone(alone []sim.Time) {
	for i := range alone {
		if alone[i] > 0 {
			p.IF[i] = float64(p.Elapsed[i]) / float64(alone[i])
		}
	}
}

// PeakIF returns the largest interference factor any application sees.
func (g *DeltaGraph) PeakIF() float64 {
	peak := 0.0
	for _, p := range g.Points {
		for _, f := range p.IF {
			if f > peak {
				peak = f
			}
		}
	}
	return peak
}

// PeakIFOf returns the largest interference factor of one application.
func (g *DeltaGraph) PeakIFOf(i int) float64 {
	peak := 0.0
	for _, p := range g.Points {
		if p.IF[i] > peak {
			peak = p.IF[i]
		}
	}
	return peak
}

// At returns the point with the given δ (nil if absent).
func (g *DeltaGraph) At(d sim.Time) *DeltaPoint {
	for i := range g.Points {
		if g.Points[i].Delta == d {
			return &g.Points[i]
		}
	}
	return nil
}

// Unfairness quantifies the first-mover advantage: the mean, over all
// overlapping points and all application pairs with distinct burst starts,
// of IF(later starter) / IF(earlier starter). Normalizing by each
// application's own alone baseline makes the ratio meaningful for
// heterogeneous sets (a mouse's raw elapsed is always far below an
// elephant's, interference or not); for the paper's equal-application
// figures the alone times coincide and the ratio reduces to
// T(second)/T(first), the paper's quantity. A fair (symmetric) δ-graph
// yields ≈ 1; values well above 1 mean the application entering its I/O
// phase first wins — the paper's incast signature. Roles come from the
// start times the point actually ran with (so fixed StartOffsets are
// honored); simultaneous starters have no first mover and are skipped.
func (g *DeltaGraph) Unfairness() float64 {
	var sum float64
	var n int
	for _, p := range g.Points {
		// Only count points where the bursts actually overlapped: some
		// app must have seen interference.
		overlap := false
		for _, f := range p.IF {
			if f >= 1.02 {
				overlap = true
				break
			}
		}
		if !overlap {
			continue
		}
		for i := 0; i < len(p.IF); i++ {
			for j := i + 1; j < len(p.IF); j++ {
				first, second, ok := p.order(i, j)
				if !ok || p.IF[first] <= 0 {
					continue
				}
				sum += p.IF[second] / p.IF[first]
				n++
			}
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// order reports which of applications i and j entered its I/O phase first
// at this point; ok is false for simultaneous starts (no first mover).
// Points built by runPoint carry their normalized start vector; hand-built
// points without one fall back to the paper's rule — the δ sign orders
// application 0 against the trailing set, and trailing apps are mutually
// simultaneous.
func (p *DeltaPoint) order(i, j int) (first, second int, ok bool) {
	if len(p.Start) > 0 && len(p.Start) == len(p.IF) {
		switch {
		case p.Start[i] < p.Start[j]:
			return i, j, true
		case p.Start[j] < p.Start[i]:
			return j, i, true
		}
		return 0, 0, false
	}
	if p.Delta == 0 || i != 0 {
		return 0, 0, false
	}
	if p.Delta > 0 {
		return 0, j, true
	}
	return j, 0, true
}

// FlatnessIF reports the peak IF minus 1 — 0 means a perfectly flat
// (interference-free) δ-graph, the paper's criterion for "interference
// eliminated".
func (g *DeltaGraph) FlatnessIF() float64 { return g.PeakIF() - 1 }

// Deltas builds a symmetric δ grid: ±each given second value plus zero.
func Deltas(secs ...float64) []sim.Time {
	out := []sim.Time{0}
	for _, s := range secs {
		out = append(out, sim.Seconds(s), sim.Seconds(-s))
	}
	sortTimes(out)
	return out
}

func sortTimes(ts []sim.Time) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func (p DeltaPoint) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "δ=%v", p.Delta)
	for i := range p.Elapsed {
		fmt.Fprintf(&b, " app%d=%v(IF %.2f)", i, p.Elapsed[i], p.IF[i])
	}
	return b.String()
}
