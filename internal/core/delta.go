package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// DeltaSpec describes a δ-graph experiment: two applications whose burst
// start times are offset by each δ in Deltas (positive δ: application A
// starts first and B δ later; negative: B first). Each δ is an independent
// run on a fresh platform, exactly like the paper's methodology (§III-B).
type DeltaSpec struct {
	Cfg    cluster.Config
	Apps   [2]AppSpec // Start fields are overwritten per point
	Deltas []sim.Time
}

// DeltaPoint is one δ-graph sample.
type DeltaPoint struct {
	Delta      sim.Time
	Elapsed    [2]sim.Time
	IF         [2]float64 // interference factor: Elapsed / alone baseline
	Throughput [2]float64 // bytes per second
	Diag       Diag
}

// DeltaGraph is the full result: alone baselines plus one point per δ.
type DeltaGraph struct {
	Alone  [2]sim.Time
	Points []DeltaPoint
}

// RunDelta executes the alone baselines and every δ point serially, in
// submission order. It is the reference implementation; Runner.RunDelta
// executes the same independent simulations on a worker pool and produces
// an identical DeltaGraph.
func RunDelta(spec DeltaSpec) *DeltaGraph {
	g := &DeltaGraph{}
	for i := 0; i < 2; i++ {
		g.Alone[i] = runAlone(spec, i)
	}
	for _, d := range spec.Deltas {
		pt := runPoint(spec, d)
		pt.applyAlone(g.Alone)
		g.Points = append(g.Points, pt)
	}
	return g
}

// runAlone measures application i running by itself.
func runAlone(spec DeltaSpec, i int) sim.Time {
	app := spec.Apps[i]
	app.Start = 0
	x := Prepare(spec.Cfg, []AppSpec{app})
	res := x.Run()
	return res.Apps[0].Elapsed
}

// runPoint measures both applications with B delayed by d relative to A.
// IF is left zero: it is the one quantity that needs the alone baselines,
// so applyAlone fills it in once those are known — which lets a Runner
// execute points and baselines concurrently.
func runPoint(spec DeltaSpec, d sim.Time) DeltaPoint {
	a, b := spec.Apps[0], spec.Apps[1]
	if d >= 0 {
		a.Start, b.Start = 0, d
	} else {
		a.Start, b.Start = -d, 0
	}
	x := Prepare(spec.Cfg, []AppSpec{a, b})
	res := x.Run()
	pt := DeltaPoint{Delta: d, Diag: res.Diag}
	for i := 0; i < 2; i++ {
		pt.Elapsed[i] = res.Apps[i].Elapsed
		pt.Throughput[i] = res.Apps[i].Throughput
	}
	return pt
}

// applyAlone derives the interference factors from the alone baselines.
func (p *DeltaPoint) applyAlone(alone [2]sim.Time) {
	for i := 0; i < 2; i++ {
		if alone[i] > 0 {
			p.IF[i] = float64(p.Elapsed[i]) / float64(alone[i])
		}
	}
}

// PeakIF returns the largest interference factor either application sees.
func (g *DeltaGraph) PeakIF() float64 {
	peak := 0.0
	for _, p := range g.Points {
		for i := 0; i < 2; i++ {
			if p.IF[i] > peak {
				peak = p.IF[i]
			}
		}
	}
	return peak
}

// PeakIFOf returns the largest interference factor of one application.
func (g *DeltaGraph) PeakIFOf(i int) float64 {
	peak := 0.0
	for _, p := range g.Points {
		if p.IF[i] > peak {
			peak = p.IF[i]
		}
	}
	return peak
}

// At returns the point with the given δ (nil if absent).
func (g *DeltaGraph) At(d sim.Time) *DeltaPoint {
	for i := range g.Points {
		if g.Points[i].Delta == d {
			return &g.Points[i]
		}
	}
	return nil
}

// Unfairness quantifies the first-mover advantage: the mean, over all
// overlapping points with δ != 0, of T(second app) / T(first app). A fair
// (symmetric) δ-graph yields ≈ 1; values well above 1 mean the application
// entering its I/O phase first wins — the paper's incast signature.
func (g *DeltaGraph) Unfairness() float64 {
	var sum float64
	var n int
	for _, p := range g.Points {
		if p.Delta == 0 {
			continue
		}
		first, second := 0, 1
		if p.Delta < 0 {
			first, second = 1, 0
		}
		// Only count points where the bursts actually overlapped: the
		// second app must have seen some interference.
		if p.IF[second] < 1.02 && p.IF[first] < 1.02 {
			continue
		}
		sum += float64(p.Elapsed[second]) / float64(p.Elapsed[first])
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// FlatnessIF reports the peak IF minus 1 — 0 means a perfectly flat
// (interference-free) δ-graph, the paper's criterion for "interference
// eliminated".
func (g *DeltaGraph) FlatnessIF() float64 { return g.PeakIF() - 1 }

// Deltas builds a symmetric δ grid: ±each given second value plus zero.
func Deltas(secs ...float64) []sim.Time {
	out := []sim.Time{0}
	for _, s := range secs {
		out = append(out, sim.Seconds(s), sim.Seconds(-s))
	}
	sortTimes(out)
	return out
}

func sortTimes(ts []sim.Time) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func (p DeltaPoint) String() string {
	return fmt.Sprintf("δ=%v A=%v(IF %.2f) B=%v(IF %.2f)",
		p.Delta, p.Elapsed[0], p.IF[0], p.Elapsed[1], p.IF[1])
}
