package core

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// testRetry is a fast-timescale policy so deadlines actually fire within
// tiny-platform runs.
func testRetry() fault.RetryPolicy {
	return fault.RetryPolicy{
		Deadline:   50 * sim.Millisecond,
		Backoff:    10 * sim.Millisecond,
		BackoffMax: 80 * sim.Millisecond,
		MaxRetries: 40,
		Budget:     -1, // unlimited
		Resume:     20 * sim.Millisecond,
	}
}

func faultCfg(events ...fault.Event) cluster.Config {
	cfg := tinyConfig(cluster.RAM, pfs.SyncOn)
	cfg.Faults = &fault.Plan{Events: events, Retry: testRetry()}
	return cfg
}

// TestCrashRestartLiveness is the liveness contract: an application whose
// server crashes mid-burst stalls, retries, and completes after the
// restart — the simulation terminates and the work all lands.
func TestCrashRestartLiveness(t *testing.T) {
	cfg := faultCfg(
		fault.Event{At: 10 * sim.Millisecond, Kind: fault.ServerCrash, Server: 0},
		fault.Event{At: 150 * sim.Millisecond, Kind: fault.ServerRestart, Server: 0},
	)
	apps := TwoAppSpecs(cfg, 8, 4, tinyWorkload())
	res := Prepare(cfg, apps).Run() // collect panics on deadlock
	av := res.Diag.Avail
	if av.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", av.Crashes)
	}
	if av.Downtime < 100*sim.Millisecond {
		t.Fatalf("downtime = %v, want >= 100ms", av.Downtime)
	}
	if av.RPCTimeouts == 0 || av.Retries == 0 {
		t.Fatalf("timeouts = %d retries = %d, want both > 0", av.RPCTimeouts, av.Retries)
	}
	for _, a := range res.Apps {
		if a.End < 150*sim.Millisecond {
			t.Fatalf("app %s finished at %v, before the restart", a.Name, a.End)
		}
	}
}

// TestFaultComparisonIF: a mid-burst crash must cost elapsed time against
// the healthy baseline, and the goodput ratio must drop below 1 (discarded
// bytes were offered but not stored).
func TestFaultComparisonIF(t *testing.T) {
	cfg := faultCfg(
		fault.Event{At: 10 * sim.Millisecond, Kind: fault.ServerCrash, Server: 1},
		fault.Event{At: 200 * sim.Millisecond, Kind: fault.ServerRestart, Server: 1},
	)
	apps := TwoAppSpecs(cfg, 8, 4, tinyWorkload())
	fc := RunFaultComparison(cfg, apps, 1)
	for i := range fc.Faulted.Apps {
		if ifv := fc.IF(i); ifv <= 1.0 {
			t.Fatalf("app %d IF under faults = %.3f, want > 1", i, ifv)
		}
	}
	if fc.Faulted.Diag.Avail.DiscardedBytes > 0 && fc.GoodputRatio() >= 1 {
		t.Fatalf("goodput ratio = %.3f with %d discarded bytes, want < 1",
			fc.GoodputRatio(), fc.Faulted.Diag.Avail.DiscardedBytes)
	}
	if fc.Healthy.Diag.Avail.Crashes != 0 || fc.Healthy.Diag.Avail.Retries != 0 {
		t.Fatalf("healthy arm saw faults: %+v", fc.Healthy.Diag.Avail)
	}
}

// TestDegradedDeviceSlowsRun: a degraded device must stretch its victim's
// elapsed time while leaving an app on a healthy server comparatively
// unharmed. The apps are pinned to disjoint servers so the degraded device
// sits squarely on the victim's critical path (on a shared-stripe platform
// an incast RTO can hide a modest degrade).
func TestDegradedDeviceSlowsRun(t *testing.T) {
	cfg := faultCfg(
		fault.Event{At: 2 * sim.Millisecond, Kind: fault.DeviceDegrade, Server: 0, Factor: 8},
		fault.Event{At: 2 * sim.Second, Kind: fault.DeviceRestore, Server: 0},
	)
	apps := TwoAppSpecs(cfg, 8, 4, tinyWorkload())
	apps[0].TargetServers = []int{0} // victim
	apps[1].TargetServers = []int{1} // bystander
	fc := RunFaultComparison(cfg, apps, 1)
	if fc.IF(0) <= 1.05 {
		t.Fatalf("victim IF = %.3f, want > 1.05 under a factor-8 degrade", fc.IF(0))
	}
	if fc.IF(1) > fc.IF(0) {
		t.Fatalf("bystander IF %.3f exceeds victim IF %.3f", fc.IF(1), fc.IF(0))
	}
}

// TestLinkFlapRecovers: an admin-down link drops traffic; senders back off
// through RTO, the retry layer rides it out, and the run completes after
// the link returns.
func TestLinkFlapRecovers(t *testing.T) {
	cfg := faultCfg(
		fault.Event{At: 10 * sim.Millisecond, Kind: fault.LinkDown, Server: 0},
		fault.Event{At: 250 * sim.Millisecond, Kind: fault.LinkUp, Server: 0},
	)
	apps := TwoAppSpecs(cfg, 8, 4, tinyWorkload())
	res := Prepare(cfg, apps).Run()
	if res.Diag.Avail.LinkDrops == 0 {
		t.Fatal("no link drops recorded across a 240ms outage")
	}
	for _, a := range res.Apps {
		if a.End < 250*sim.Millisecond {
			t.Fatalf("app %s finished at %v, before the link came back", a.Name, a.End)
		}
	}
}

// TestFaultShardConformance: a faulted run must reproduce the serial
// oracle bit-for-bit at every shard count — the determinism contract of
// the injection design (events scheduled at setup time on the owning
// shard).
func TestFaultShardConformance(t *testing.T) {
	cfg := faultCfg(
		fault.Event{At: 10 * sim.Millisecond, Kind: fault.ServerCrash, Server: 1},
		fault.Event{At: 40 * sim.Millisecond, Kind: fault.LossBurst, Server: 2, Duration: 30 * sim.Millisecond},
		fault.Event{At: 160 * sim.Millisecond, Kind: fault.ServerRestart, Server: 1},
		fault.Event{At: 60 * sim.Millisecond, Kind: fault.DeviceDegrade, Server: 3, Factor: 4},
		fault.Event{At: 220 * sim.Millisecond, Kind: fault.DeviceRestore, Server: 3},
	)
	apps := TwoAppSpecs(cfg, 8, 4, tinyWorkload())
	oracle := PrepareSharded(cfg, apps, 1).Run()
	for _, shards := range []int{2, 4} {
		got := PrepareSharded(cfg, apps, shards).Run()
		if !reflect.DeepEqual(oracle, got) {
			t.Fatalf("shards=%d diverged from serial oracle:\nserial:  %+v\nsharded: %+v",
				shards, oracle, got)
		}
	}
}

// TestNoFaultNilPlanIdentical: a nil fault plan must leave the platform
// bit-identical to one built before the fault subsystem existed — the
// golden-safety invariant, checked directly here (the figure goldens check
// it at scale).
func TestNoFaultNilPlanIdentical(t *testing.T) {
	cfg := tinyConfig(cluster.RAM, pfs.SyncOn)
	apps := TwoAppSpecs(cfg, 8, 4, tinyWorkload())
	base := Prepare(cfg, apps).Run()
	again := Prepare(cfg, apps).Run()
	if !reflect.DeepEqual(base, again) {
		t.Fatal("fault-free runs are not reproducible")
	}
	if base.Diag.Avail.Crashes != 0 || base.Diag.Avail.Retries != 0 ||
		base.Diag.Avail.DiscardedBytes != 0 || base.Diag.Avail.LinkDrops != 0 {
		t.Fatalf("fault counters nonzero on a fault-free run: %+v", base.Diag.Avail)
	}
}
