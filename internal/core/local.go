package core

import (
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/storage"
)

// The Table I experiment: the microbenchmark and a single-server file
// system colocated on one node, removing the network entirely. Each
// application is one client writing totalBytes contiguously to its own
// file. What remains is the interplay between client-side request
// processing and the device — slow devices amplify interference through
// head seeks, while fast ones hide part of it behind client overhead.

// LocalParams configures the network-free local I/O path.
type LocalParams struct {
	// ClientBW is the client-side request processing rate (request
	// preparation, kernel crossing, PVFS servicing on the same node).
	ClientBW float64
	// ClientPerOp is a fixed per-request client cost.
	ClientPerOp sim.Time
	// ReqSize is the request size the client streams with.
	ReqSize int64
	// QD is the number of requests in flight per client.
	QD int
}

// DefaultLocalParams is calibrated so the Table I baselines land near the
// paper's: HDD 13.4 s, SSD 2.27 s, RAM 1.32 s for 2 GB.
func DefaultLocalParams() LocalParams {
	return LocalParams{
		ClientBW:    1520e6,
		ClientPerOp: 60 * sim.Microsecond,
		ReqSize:     4 << 20,
		QD:          2,
	}
}

// LocalResult is one Table I row.
type LocalResult struct {
	Backend  cluster.BackendKind
	Alone    sim.Time
	Together sim.Time
	Slowdown float64
}

// RunLocal measures, for each backend, one client writing totalBytes alone
// and two clients writing totalBytes each to distinct files concurrently.
func RunLocal(cfg cluster.Config, lp LocalParams, backends []cluster.BackendKind, totalBytes int64) []LocalResult {
	var out []LocalResult
	for _, b := range backends {
		alone := runLocalClients(cfg, lp, b, totalBytes, 1)
		both := runLocalClients(cfg, lp, b, totalBytes, 2)
		out = append(out, LocalResult{
			Backend:  b,
			Alone:    alone,
			Together: both,
			Slowdown: float64(both) / float64(alone),
		})
	}
	return out
}

// runLocalClients runs n colocated clients, each writing totalBytes
// contiguously to its own file, and returns the slowest completion time.
func runLocalClients(cfg cluster.Config, lp LocalParams, b cluster.BackendKind, totalBytes int64, n int) sim.Time {
	e := sim.NewEngine()
	c := cfg
	c.Backend = b
	dev := cluster.NewDevice(e, c)
	var finish sim.Time
	for i := 0; i < n; i++ {
		file := storage.FileID(i + 1)
		prep := &sim.Line{E: e, Rate: lp.ClientBW, PerOp: lp.ClientPerOp}
		e.Spawn("local-client", func(p *sim.Proc) {
			qd := lp.QD
			if qd < 1 {
				qd = 1
			}
			sem := sim.NewSemaphore(qd)
			nReq := int((totalBytes + lp.ReqSize - 1) / lp.ReqSize)
			gate := sim.NewGate(nReq)
			for off := int64(0); off < totalBytes; off += lp.ReqSize {
				size := lp.ReqSize
				if rem := totalBytes - off; rem < size {
					size = rem
				}
				sem.Acquire(p)
				off := off
				prep.Send(size, func() {
					dev.Submit(&storage.Request{
						File: file, Offset: off, Size: size,
						Stream: storage.StreamID(file),
						Done: func() {
							sem.Release()
							gate.Done(e)
						},
					})
				})
			}
			gate.Wait(p)
			if t := p.Now(); t > finish {
				finish = t
			}
		})
	}
	e.Run()
	return finish
}
