package core

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// The fleet path is the population-scale counterpart of RunDeltaPairwise.
// A pairwise IF matrix costs n(n-1)/2 co-runs — fine for the paper's
// hand-named application sets, hopeless for a 1000-tenant population
// (~500k simulations). RunFleet instead measures:
//
//   - ONE full co-run of the whole population (everyone at their arrival
//     offset) — the fleet headline,
//   - one alone baseline per distinct application *shape* rather than per
//     application (a generated population has thousands of tenants but only
//     a few dozen shapes once volumes quantize), and
//   - a small seeded sample of pairwise co-runs, biased toward the volume
//     head, to estimate the top aggressor/victim pairs the full matrix
//     would rank.
//
// Interference factors are therefore defined against the canonical alone
// run of each tenant's shape: two tenants that differ only in name,
// placement or jitter seed share a baseline. Placement is immaterial to an
// alone run on an idle platform (guarded by TestAloneIgnoresPlacement);
// jitter seeds perturb an alone run by at most the jitter the seed draws,
// which is the resolution fleet statistics are read at.

// FleetOpts tunes the fleet summarizer.
type FleetOpts struct {
	// SamplePairs is the number of sampled pairwise co-runs (0 = none).
	SamplePairs int
	// SampleSeed seeds pair selection; the same seed always picks the same
	// pairs.
	SampleSeed uint64
	// HeadApps is the size of the "volume head" half the sample is biased
	// toward (apps 0..HeadApps-1 in spec order; generated populations are
	// in descending volume rank). 0 picks ceil(sqrt(n)).
	HeadApps int
}

// PairSample is one sampled pairwise co-run: applications I and J (spec
// indices) at δ=0 on an otherwise idle platform, with the interference
// factor of each against its shape baseline.
type PairSample struct {
	I, J    int
	Elapsed [2]sim.Time
	IF      [2]float64
}

// FleetResult is the outcome of a fleet run.
type FleetResult struct {
	// CoRun is the full-population co-run, apps in spec order.
	CoRun RunResult
	// Alone holds the canonical alone elapsed time per shape; ShapeOf maps
	// each application to its shape index. Shapes == len(Alone).
	Alone   []sim.Time
	ShapeOf []int
	Shapes  int
	// IF is each application's co-run interference factor: co-run elapsed
	// over its shape's alone baseline.
	IF []float64
	// Pairs are the sampled pairwise co-runs.
	Pairs []PairSample
}

// AloneOf returns the shape baseline of application i.
func (f *FleetResult) AloneOf(i int) sim.Time { return f.Alone[f.ShapeOf[i]] }

// RunFleet executes the fleet summary of spec's application list: the full
// co-run at δ=0 (arrival offsets applied via AppsAt, like a δ point), the
// deduplicated shape baselines, and opts.SamplePairs sampled pair co-runs —
// all independent simulations flattened onto the pool, so the result is
// bit-identical at every Parallelism and every shard count.
func (r Runner) RunFleet(spec DeltaSpec, opts FleetOpts) *FleetResult {
	spec.validate()
	spec.Shards = r.shardsFor(spec)
	n := len(spec.Apps)
	coApps := spec.AppsAt(0)

	// Deduplicate alone baselines by shape. The canonical representative of
	// a shape is its first-seen application normalized to node 0, start 0,
	// keeping its own program seed.
	shapeOf := make([]int, n)
	var reps []AppSpec
	shapeIdx := make(map[string]int)
	for i, a := range spec.Apps {
		k := shapeKey(a)
		u, ok := shapeIdx[k]
		if !ok {
			u = len(reps)
			shapeIdx[k] = u
			rep := a
			rep.FirstNode = 0
			rep.Start = 0
			reps = append(reps, rep)
		}
		shapeOf[i] = u
	}

	pairs := fleetPairs(n, opts)
	f := &FleetResult{
		Alone:   make([]sim.Time, len(reps)),
		ShapeOf: shapeOf,
		Shapes:  len(reps),
		IF:      make([]float64, n),
		Pairs:   make([]PairSample, len(pairs)),
	}
	// Task 0 is the co-run, tasks 1..len(reps) the shape baselines, the
	// rest the pair co-runs. Results land in index-addressed slots and the
	// IFs are derived after the pool drains (the Runner determinism
	// contract).
	r.ForEach(1+len(reps)+len(pairs), func(t int) {
		switch {
		case t == 0:
			f.CoRun = PrepareSharded(spec.Cfg, coApps, spec.Shards).Run()
		case t <= len(reps):
			u := t - 1
			x := PrepareSharded(spec.Cfg, []AppSpec{reps[u]}, spec.Shards)
			f.Alone[u] = x.Run().Apps[0].Elapsed
		default:
			k := t - 1 - len(reps)
			f.Pairs[k] = PairSample{
				I:       pairs[k].i,
				J:       pairs[k].j,
				Elapsed: runPair(spec.Cfg, spec.Apps, pairs[k], spec.Shards),
			}
		}
	})
	for i := range f.IF {
		if a := f.Alone[shapeOf[i]]; a > 0 {
			f.IF[i] = float64(f.CoRun.Apps[i].Elapsed) / float64(a)
		}
	}
	for k := range f.Pairs {
		p := &f.Pairs[k]
		if a := f.Alone[shapeOf[p.I]]; a > 0 {
			p.IF[0] = float64(p.Elapsed[0]) / float64(a)
		}
		if a := f.Alone[shapeOf[p.J]]; a > 0 {
			p.IF[1] = float64(p.Elapsed[1]) / float64(a)
		}
	}
	return f
}

// shapeKey canonicalizes the baseline-relevant part of an AppSpec: name,
// placement, start time and the program's jitter seed are excluded, every
// knob that changes an alone run's workload is included.
func shapeKey(a AppSpec) string {
	prog := "-"
	if a.Program != nil {
		p := *a.Program
		p.Seed = 0
		prog = fmt.Sprintf("%+v", p)
	}
	return fmt.Sprintf("p%d/%d|%+v|%v|%d|%s",
		a.Procs, a.ProcsPerNode, a.Workload, a.TargetServers, a.Stripe, prog)
}

// fleetPairs picks opts.SamplePairs distinct unordered pairs: even draws
// anchor one endpoint in the volume head (spec order is rank order for
// generated populations), odd draws are uniform — so the sample covers both
// elephant-on-anything aggression and background mouse-on-mouse contention.
// Selection is deterministic in opts.SampleSeed; a bounded attempt count
// keeps the draw loop total even when the pair space is nearly exhausted.
func fleetPairs(n int, opts FleetOpts) []appPair {
	k := opts.SamplePairs
	if k <= 0 || n < 2 {
		return nil
	}
	if total := n * (n - 1) / 2; k > total {
		k = total
	}
	head := opts.HeadApps
	if head <= 0 {
		head = int(math.Ceil(math.Sqrt(float64(n))))
	}
	if head > n {
		head = n
	}
	r := sim.NewRand(opts.SampleSeed ^ 0x5EEDFA12F9)
	seen := make(map[appPair]bool)
	out := make([]appPair, 0, k)
	for attempts := 0; len(out) < k && attempts < 64*k; attempts++ {
		var i, j int
		if len(out)%2 == 0 {
			i, j = r.Intn(head), r.Intn(n)
		} else {
			i, j = r.Intn(n), r.Intn(n)
		}
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		p := appPair{i, j}
		if seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}
