package core

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestShardEquivalence is the metamorphic core of the sharded kernel's
// contract: the full RunResult of an experiment — completion windows,
// per-app elapsed times, transport and device diagnostics, event counts —
// must be byte-for-byte identical at every shard count, because the shard
// knob is only allowed to change wall-clock time. It sweeps both storage
// backends, contiguous and strided patterns, and queue-depth pipelining,
// comparing shards ∈ {1, 2, 3, 4, 1+Servers} against the serial oracle
// (shards=1). The scenario-level conformance suite in internal/scenario
// covers the builtin scenarios; this test covers the raw core API at
// scales and patterns the builtins don't reach.
func TestShardEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		scale   int
		backend cluster.BackendKind
		strided bool
		qd      int
	}{
		{"hdd-contig", 8, cluster.HDD, false, 0},
		{"ssd-contig", 8, cluster.SSD, false, 0},
		{"hdd-strided", 8, cluster.HDD, true, 0},
		{"ssd-strided", 4, cluster.SSD, true, 0},
		{"hdd-qd4", 4, cluster.HDD, false, 4},
		{"ssd-big", 2, cluster.SSD, true, 0},
	}
	if testing.Short() {
		// Keep one case per backend so the -race smoke still crosses the
		// shard boundary in both device models.
		cases = cases[:2]
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := cluster.Default().Scale(tc.scale)
			cfg.Backend = tc.backend
			wl := workload.Spec{BlockBytes: 4 << 20, TransferSize: 256 << 10}
			if tc.strided {
				wl.Pattern = workload.Strided
			}
			wl.QD = tc.qd
			apps := TwoAppSpecs(cfg, 8, 4, wl)
			want := ""
			for _, k := range []int{1, 2, 3, 4, 1 + cfg.Servers} {
				res := PrepareSharded(cfg, apps, k).Run()
				got := fmt.Sprintf("%+v", res)
				if k == 1 {
					want = got
					continue
				}
				if got != want {
					t.Errorf("shards=%d diverges from serial oracle:\n got %s\nwant %s", k, got, want)
				}
			}
		})
	}
}

// TestRunnerShardsOverride checks the Runner.Shards override semantics: 0
// defers to the spec's knob, any other value wins — and either way the
// δ-graph is bit-identical to the serial run.
func TestRunnerShardsOverride(t *testing.T) {
	cfg := cluster.Default().Scale(8)
	spec := DeltaSpec{
		Cfg:    cfg,
		Apps:   TwoAppSpecs(cfg, 8, 4, workload.Spec{BlockBytes: 2 << 20, TransferSize: 256 << 10}),
		Deltas: []sim.Time{0, 5 * sim.Millisecond},
	}
	serial := Runner{Parallelism: 1}.RunDelta(spec)

	specSharded := spec
	specSharded.Shards = 3
	viaSpec := Runner{Parallelism: 1}.RunDelta(specSharded)
	viaOverride := Runner{Parallelism: 1, Shards: 3}.RunDelta(spec)

	ws := fmt.Sprintf("%+v", serial)
	if g := fmt.Sprintf("%+v", viaSpec); g != ws {
		t.Errorf("spec.Shards=3 diverges from serial:\n got %s\nwant %s", g, ws)
	}
	if g := fmt.Sprintf("%+v", viaOverride); g != ws {
		t.Errorf("Runner.Shards=3 diverges from serial:\n got %s\nwant %s", g, ws)
	}
}
