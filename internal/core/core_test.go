package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// tinyConfig is a scaled-down platform for fast tests: 4 nodes x 4 cores,
// 4 servers.
func tinyConfig(backend cluster.BackendKind, mode pfs.SyncMode) cluster.Config {
	cfg := cluster.Default()
	cfg.ComputeNodes = 4
	cfg.CoresPerNode = 4
	cfg.Servers = 4
	cfg.Backend = backend
	cfg.Sync = mode
	return cfg
}

func tinyWorkload() workload.Spec {
	return workload.Spec{Pattern: workload.Contiguous, BlockBytes: 4 << 20}
}

func TestSingleAppRun(t *testing.T) {
	cfg := tinyConfig(cluster.RAM, pfs.SyncOn)
	apps := TwoAppSpecs(cfg, 8, 4, tinyWorkload())
	x := Prepare(cfg, []AppSpec{apps[0]})
	res := x.Run()
	if len(res.Apps) != 1 {
		t.Fatalf("apps = %d", len(res.Apps))
	}
	a := res.Apps[0]
	if a.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	if a.Bytes != 8*(4<<20) {
		t.Fatalf("bytes = %d", a.Bytes)
	}
	if res.Diag.DeviceBytes != a.Bytes {
		t.Fatalf("device bytes %d != app bytes %d", res.Diag.DeviceBytes, a.Bytes)
	}
	if a.Throughput <= 0 {
		t.Fatal("no throughput")
	}
}

func TestTwoAppsOverlapInterfere(t *testing.T) {
	cfg := tinyConfig(cluster.RAM, pfs.SyncOn)
	// Large enough per-process volume that steady-state sharing (not the
	// initial slow-start collision) dominates the phase.
	wl := workload.Spec{Pattern: workload.Contiguous, BlockBytes: 32 << 20}
	apps := TwoAppSpecs(cfg, 8, 4, wl)
	spec := DeltaSpec{Cfg: cfg, Apps: apps, Deltas: []sim.Time{0}}
	g := RunDelta(spec)
	if g.Alone[0] <= 0 || g.Alone[1] <= 0 {
		t.Fatal("alone baselines missing")
	}
	p := g.At(0)
	if p == nil {
		t.Fatal("no δ=0 point")
	}
	// Simultaneous bursts must interfere: both apps slower than alone.
	for i := 0; i < 2; i++ {
		if p.IF[i] < 1.2 {
			t.Fatalf("app %d IF at δ=0 = %.2f, expected clear interference", i, p.IF[i])
		}
		if p.IF[i] > 3.0 {
			t.Fatalf("app %d IF at δ=0 = %.2f, implausibly high", i, p.IF[i])
		}
	}
}

func TestLargeDeltaNoInterference(t *testing.T) {
	cfg := tinyConfig(cluster.RAM, pfs.SyncOn)
	apps := TwoAppSpecs(cfg, 8, 4, tinyWorkload())
	// Large positive delay: A finishes long before B starts.
	spec := DeltaSpec{Cfg: cfg, Apps: apps, Deltas: []sim.Time{30 * sim.Second}}
	g := RunDelta(spec)
	p := g.Points[0]
	for i := 0; i < 2; i++ {
		if p.IF[i] > 1.05 {
			t.Fatalf("app %d IF = %.3f at non-overlapping δ, want ~1", i, p.IF[i])
		}
	}
}

func TestNegativeDeltaMirrors(t *testing.T) {
	cfg := tinyConfig(cluster.RAM, pfs.SyncOn)
	apps := TwoAppSpecs(cfg, 8, 4, tinyWorkload())
	spec := DeltaSpec{Cfg: cfg, Apps: apps, Deltas: []sim.Time{-20 * sim.Second}}
	g := RunDelta(spec)
	p := g.Points[0]
	// B ran first, alone: its IF must be ~1; A started 20s later, also
	// after B finished (tiny workload): ~1 too.
	if p.IF[1] > 1.05 || p.IF[0] > 1.05 {
		t.Fatalf("IFs = %v, want ~1", p.IF)
	}
}

func TestSplitServersRemoveInterference(t *testing.T) {
	cfg := tinyConfig(cluster.RAM, pfs.SyncOn)
	wl := tinyWorkload()
	shared := TwoAppSpecs(cfg, 8, 4, wl)
	split := TwoAppSpecs(cfg, 8, 4, wl)
	split[0].TargetServers = []int{0, 1}
	split[1].TargetServers = []int{2, 3}
	gShared := RunDelta(DeltaSpec{Cfg: cfg, Apps: shared, Deltas: []sim.Time{0}})
	gSplit := RunDelta(DeltaSpec{Cfg: cfg, Apps: split, Deltas: []sim.Time{0}})
	if gSplit.PeakIF() > 1.15 {
		t.Fatalf("split-server IF = %.2f, want ~1 (no shared component but the switch)", gSplit.PeakIF())
	}
	if gShared.PeakIF() < 1.3 {
		t.Fatalf("shared-server IF = %.2f, want clear interference", gShared.PeakIF())
	}
}

func TestTableOneLocalInterference(t *testing.T) {
	cfg := cluster.Default()
	lp := DefaultLocalParams()
	rows := RunLocal(cfg, lp, []cluster.BackendKind{cluster.HDD, cluster.SSD, cluster.RAM}, 2<<30)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	type band struct{ aloneLo, aloneHi, slowLo, slowHi float64 }
	bands := map[cluster.BackendKind]band{
		cluster.HDD: {11, 17, 2.2, 2.8},    // paper: 13.4 s, 2.49x
		cluster.SSD: {1.8, 2.9, 1.75, 2.2}, // paper: 2.27 s, 1.96x
		cluster.RAM: {1.1, 1.7, 1.35, 1.8}, // paper: 1.32 s, 1.58x
	}
	for _, r := range rows {
		b := bands[r.Backend]
		sec := r.Alone.Seconds()
		if sec < b.aloneLo || sec > b.aloneHi {
			t.Errorf("%v alone = %.2fs, want in [%.1f, %.1f]", r.Backend, sec, b.aloneLo, b.aloneHi)
		}
		if r.Slowdown < b.slowLo || r.Slowdown > b.slowHi {
			t.Errorf("%v slowdown = %.2fx, want in [%.2f, %.2f]", r.Backend, r.Slowdown, b.slowLo, b.slowHi)
		}
	}
	// Relative ordering of Table I: HDD suffers most, RAM least.
	if !(rows[0].Slowdown > rows[1].Slowdown && rows[1].Slowdown > rows[2].Slowdown) {
		t.Errorf("slowdown ordering violated: %v", rows)
	}
}

func TestDeltasGridSorted(t *testing.T) {
	ds := Deltas(10, 40, 20)
	if len(ds) != 7 {
		t.Fatalf("len = %d", len(ds))
	}
	for i := 1; i < len(ds); i++ {
		if ds[i] < ds[i-1] {
			t.Fatalf("unsorted grid: %v", ds)
		}
	}
	if ds[3] != 0 {
		t.Fatalf("middle of grid should be 0: %v", ds)
	}
}

func TestUnfairnessMetric(t *testing.T) {
	g := &DeltaGraph{Alone: []sim.Time{10 * sim.Second, 10 * sim.Second}}
	// Symmetric graph: second app suffers same as first.
	g.Points = []DeltaPoint{
		{Delta: sim.Seconds(5), Elapsed: []sim.Time{12 * sim.Second, 12 * sim.Second}, IF: []float64{1.2, 1.2}},
		{Delta: sim.Seconds(-5), Elapsed: []sim.Time{12 * sim.Second, 12 * sim.Second}, IF: []float64{1.2, 1.2}},
	}
	if u := g.Unfairness(); u < 0.95 || u > 1.05 {
		t.Fatalf("symmetric unfairness = %v, want ~1", u)
	}
	// First-mover advantage: second app 1.5x slower.
	g.Points = []DeltaPoint{
		{Delta: sim.Seconds(5), Elapsed: []sim.Time{10 * sim.Second, 15 * sim.Second}, IF: []float64{1.0, 1.5}},
		{Delta: sim.Seconds(-5), Elapsed: []sim.Time{15 * sim.Second, 10 * sim.Second}, IF: []float64{1.5, 1.0}},
	}
	if u := g.Unfairness(); u < 1.4 {
		t.Fatalf("unfair graph metric = %v, want ~1.5", u)
	}
	// With a recorded start vector, roles come from actual starts, not the
	// δ sign: here δ>0 but the offset made app 0 start later, so the ratio
	// flips to T(app0)/T(app1).
	g.Points = []DeltaPoint{{
		Delta:   sim.Seconds(5),
		Start:   []sim.Time{8 * sim.Second, 0},
		Elapsed: []sim.Time{15 * sim.Second, 10 * sim.Second},
		IF:      []float64{1.5, 1.0},
	}}
	if u := g.Unfairness(); u < 1.4 {
		t.Fatalf("start-ordered unfairness = %v, want ~1.5 (app 1 was first)", u)
	}
	// Simultaneous starts carry no first-mover information.
	g.Points = []DeltaPoint{{
		Delta:   sim.Seconds(5),
		Start:   []sim.Time{0, 0},
		Elapsed: []sim.Time{15 * sim.Second, 10 * sim.Second},
		IF:      []float64{1.5, 1.5},
	}}
	if u := g.Unfairness(); u != 1 {
		t.Fatalf("simultaneous-start unfairness = %v, want neutral 1", u)
	}
	// A hand-built point with only IF populated takes the δ-sign fallback
	// instead of panicking on the absent start vector.
	g.Points = []DeltaPoint{{Delta: sim.Seconds(5), IF: []float64{1.0, 1.5}}}
	if u := g.Unfairness(); u != 1.5 {
		t.Fatalf("IF-only point unfairness = %v, want 1.5 via the fallback", u)
	}
}

func TestAppSpecValidate(t *testing.T) {
	cfg := tinyConfig(cluster.RAM, pfs.SyncOn)
	good := AppSpec{Name: "A", Procs: 4, FirstNode: 0, ProcsPerNode: 2, Workload: tinyWorkload()}
	if err := good.Validate(cfg); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	bad := good
	bad.FirstNode = 3 // 4 procs at 2 ppn from node 3 -> node 4, beyond 4-node platform
	if err := bad.Validate(cfg); err == nil {
		t.Fatal("out-of-range spec accepted")
	}
	bad2 := good
	bad2.Procs = 0
	if err := bad2.Validate(cfg); err == nil {
		t.Fatal("zero procs accepted")
	}
}

func TestWindowTraceProbe(t *testing.T) {
	cfg := tinyConfig(cluster.HDD, pfs.SyncOn)
	apps := TwoAppSpecs(cfg, 8, 4, tinyWorkload())
	x := Prepare(cfg, []AppSpec{apps[0], apps[1]})
	tr := x.AttachWindowTrace(0, 0, 0)
	res := x.Run()
	if tr.Len() == 0 {
		t.Fatal("probe recorded nothing")
	}
	if res.Apps[0].Elapsed <= 0 {
		t.Fatal("run broken")
	}
}

func TestStridedWorkloadRuns(t *testing.T) {
	cfg := tinyConfig(cluster.RAM, pfs.SyncOn)
	wl := workload.Spec{Pattern: workload.Strided, BlockBytes: 2 << 20, TransferSize: 256 << 10, QD: 2}
	apps := TwoAppSpecs(cfg, 8, 4, wl)
	x := Prepare(cfg, []AppSpec{apps[0], apps[1]})
	res := x.Run()
	for _, a := range res.Apps {
		if a.Elapsed <= 0 {
			t.Fatalf("app %s did not run", a.Name)
		}
	}
	if res.Diag.DeviceBytes != 2*8*(2<<20) {
		t.Fatalf("device bytes = %d", res.Diag.DeviceBytes)
	}
}

func TestReadWorkloadRuns(t *testing.T) {
	cfg := tinyConfig(cluster.RAM, pfs.SyncOn)
	wl := tinyWorkload()
	wl.Read = true
	apps := TwoAppSpecs(cfg, 4, 4, wl)
	x := Prepare(cfg, []AppSpec{apps[0]})
	res := x.Run()
	if res.Apps[0].Elapsed <= 0 {
		t.Fatal("read app did not run")
	}
}
