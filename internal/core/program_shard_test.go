package core

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

// jitterPrograms builds two co-running multi-phase programs with distinct
// jitter seeds: compute pauses with exponential jitter, a barrier, and an
// I/O burst, iterated twice. Every random draw in the resulting runs comes
// from one of the streams under test — the per-rank program generators
// (seeded only by Program.Seed) and the platform's forked FS.Rand issue
// jitter.
func jitterPrograms(cfg cluster.Config) []AppSpec {
	io := workload.Spec{BlockBytes: 1 << 20, TransferSize: 256 << 10}
	mk := func(seed uint64) *workload.Program {
		return &workload.Program{
			Phases: []workload.Phase{
				{Kind: workload.PhaseCompute, Compute: 2e6, JitterMean: 1e6},
				{Kind: workload.PhaseBarrier},
				{Kind: workload.PhaseIO, IO: io},
			},
			Iterations: 2,
			Seed:       seed,
		}
	}
	apps := TwoAppSpecs(cfg, 8, 4, io)
	apps[0].Program = mk(11)
	apps[1].Program = mk(47)
	return apps
}

// TestProgramJitterShardIndependence pins the random-stream ownership rule
// of the sharded kernel: every generator that feeds a simulation — the
// rank-local program jitter streams (seeded only by Program.Seed) and the
// platform's FS.Rand issue-jitter fork — lives on shard 0 with the clients
// that draw from it, so the draw sequences cannot depend on how servers
// are spread over shards. The observable consequence tested here: runs of
// seeded multi-phase programs with issue jitter active are bit-identical
// at every shard count.
func TestProgramJitterShardIndependence(t *testing.T) {
	cfg := cluster.Default().Scale(8)
	if cfg.IssueJitter <= 0 {
		t.Fatal("test needs issue jitter active to exercise FS.Rand")
	}
	apps := jitterPrograms(cfg)
	want := ""
	for _, k := range []int{1, 2, 3, 1 + cfg.Servers} {
		res := PrepareSharded(cfg, apps, k).Run()
		got := fmt.Sprintf("%+v", res)
		if k == 1 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("shards=%d: program jitter draws depend on shard placement:\n got %s\nwant %s", k, got, want)
		}
	}
}

// TestProgramJitterSeedOnly checks the other half of the stream contract:
// a program's jitter sequence is a function of its Seed alone. Swapping
// the co-runner's seed must not change the leading application's draw
// sequence — its compute-phase schedule shifts only through contention,
// which a solo run removes entirely. So two solo runs of the same seeded
// program, embedded in differently-seeded experiments, must match exactly.
func TestProgramJitterSeedOnly(t *testing.T) {
	cfg := cluster.Default().Scale(8)
	run := func(seed uint64, shards int) sim.Time {
		apps := jitterPrograms(cfg)[:1]
		apps[0].Program.Seed = seed
		res := PrepareSharded(cfg, apps, shards).Run()
		return res.Apps[0].Elapsed
	}
	serial := run(11, 1)
	if got := run(11, 3); got != serial {
		t.Errorf("same seed, shards=3: elapsed %v != serial %v", got, serial)
	}
	if got := run(47, 1); got == serial {
		t.Errorf("different seeds produced identical elapsed %v — jitter stream not seed-driven", got)
	}
}
