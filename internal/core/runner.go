package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Runner executes independent simulations on a bounded worker pool. The
// δ-graph methodology makes every run independent by construction — each
// alone baseline and each δ point builds its own cluster.Platform with its
// own sim engine, so runs share no state — and Runner exploits that
// embarrassing parallelism.
//
// Parallelism bounds the number of concurrent simulations; zero or negative
// means runtime.GOMAXPROCS(0). Parallelism 1 degenerates to a serial loop
// in submission order.
//
// Determinism: results are written to slots fixed by submission order and
// derived quantities (interference factors) are computed after the pool
// drains, so a Runner produces byte-identical results to the serial path at
// any parallelism level — only wall-clock time changes. Nested use (a
// figure fanning out series whose δ-graphs fan out points) is safe: each
// level runs its own pool, which briefly oversubscribes the CPU but never
// deadlocks and never changes results.
type Runner struct {
	// Parallelism is the maximum number of concurrent simulations.
	// <= 0 selects runtime.GOMAXPROCS(0).
	Parallelism int

	// Shards overrides the event-kernel parallelism of every simulation the
	// runner executes: 0 defers to each spec's own Shards knob, 1 forces the
	// serial determinism oracle, K >= 2 forces K shards. Results are
	// bit-identical at every setting (cluster.BuildSharded's contract).
	// Shard-level and run-level parallelism multiply; sweeps with many
	// independent runs usually want Parallelism, single big scenarios want
	// Shards.
	Shards int
}

// shardsFor resolves the effective shard count for one spec.
func (r Runner) shardsFor(spec DeltaSpec) int {
	if r.Shards != 0 {
		return r.Shards
	}
	return spec.Shards
}

// workers resolves the effective pool size for n tasks.
func (r Runner) workers(n int) int {
	p := r.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// ForEach runs fn(0) .. fn(n-1) on the pool and returns once all calls have
// finished. Execution order is unspecified beyond the pool bound; callers
// keep determinism by writing results into index-addressed slots. A serial
// pool (effective size 1) runs fn in index order.
func (r Runner) ForEach(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	w := r.workers(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 // next task index to claim, accessed atomically
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// RunDelta executes every alone baseline (one per application) and every δ
// point of spec concurrently on the pool. The result is identical to
// core.RunDelta(spec); see the Runner type comment for why.
func (r Runner) RunDelta(spec DeltaSpec) *DeltaGraph {
	spec.validate()
	spec.Shards = r.shardsFor(spec)
	n := len(spec.Apps)
	g := &DeltaGraph{
		Alone:  make([]sim.Time, n),
		Points: make([]DeltaPoint, len(spec.Deltas)),
	}
	// Tasks 0..n-1 are the alone baselines; task n+i is δ point i. All
	// n+len(Deltas) simulations are independent: IF values, the only
	// cross-run quantity, are filled in afterwards.
	r.ForEach(n+len(spec.Deltas), func(t int) {
		if t < n {
			g.Alone[t] = runAlone(spec, t)
			return
		}
		g.Points[t-n] = runPoint(spec, spec.Deltas[t-n])
	})
	for i := range g.Points {
		g.Points[i].applyAlone(g.Alone)
	}
	return g
}

// RunDeltas runs many independent δ-graph specs on one pool, flattening
// every spec's baselines and points into a single task set so a figure with
// few series still fills all workers. Results preserve spec order.
func (r Runner) RunDeltas(specs []DeltaSpec) []*DeltaGraph {
	graphs := make([]*DeltaGraph, len(specs))
	// Flatten: per spec, one alone task per application plus one per δ.
	type task struct{ spec, slot int } // slot < len(Apps) = alone; rest = points
	var tasks []task
	for si, sp := range specs {
		sp.validate()
		graphs[si] = &DeltaGraph{
			Alone:  make([]sim.Time, len(sp.Apps)),
			Points: make([]DeltaPoint, len(sp.Deltas)),
		}
		for t := 0; t < len(sp.Apps)+len(sp.Deltas); t++ {
			tasks = append(tasks, task{si, t})
		}
	}
	r.ForEach(len(tasks), func(i int) {
		tk := tasks[i]
		sp := specs[tk.spec]
		sp.Shards = r.shardsFor(sp)
		g := graphs[tk.spec]
		if tk.slot < len(sp.Apps) {
			g.Alone[tk.slot] = runAlone(sp, tk.slot)
			return
		}
		g.Points[tk.slot-len(sp.Apps)] = runPoint(sp, sp.Deltas[tk.slot-len(sp.Apps)])
	})
	for _, g := range graphs {
		for i := range g.Points {
			g.Points[i].applyAlone(g.Alone)
		}
	}
	return graphs
}
