package core

// Tests for the fleet summarizer: shape-deduplicated baselines are only
// sound if an alone run ignores placement, the whole result must be
// bit-identical across Runner parallelism and shard counts, and the IFs
// must agree with the exhaustive δ-graph path on sets small enough to
// afford both.

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// fleetSpecForTest builds a 6-app heterogeneous spec with two workload
// shapes and staggered arrivals on a contended platform.
func fleetSpecForTest() DeltaSpec {
	cfg := tinyConfig(cluster.HDD, pfs.SyncOn)
	cfg.ComputeNodes = 12
	big := tinyWorkload()
	small := workload.Spec{Pattern: workload.Strided, BlockBytes: 1 << 20, TransferSize: 64 << 10}
	apps := make([]AppSpec, 6)
	offsets := make([]sim.Time, 6)
	for i := range apps {
		wl := big
		if i%2 == 1 {
			wl = small
		}
		apps[i] = AppSpec{
			Name:         fmt.Sprintf("t%d", i),
			Procs:        4,
			FirstNode:    i * 2,
			ProcsPerNode: 2,
			Workload:     wl,
		}
		offsets[i] = sim.Time(i) * sim.Second / 2
	}
	return DeltaSpec{Cfg: cfg, Apps: apps, StartOffsets: offsets}
}

// TestAloneIgnoresPlacement guards the assumption shape dedup rests on: an
// application running alone on an idle platform finishes in the same time
// wherever its node block sits.
func TestAloneIgnoresPlacement(t *testing.T) {
	cfg := tinyConfig(cluster.HDD, pfs.SyncOn)
	cfg.ComputeNodes = 64
	for _, first := range []int{0, 17, 62} {
		app := AppSpec{Name: "A", Procs: 4, FirstNode: first, ProcsPerNode: 2, Workload: tinyWorkload()}
		res := Prepare(cfg, []AppSpec{app}).Run()
		ref := app
		ref.FirstNode = 0
		want := Prepare(cfg, []AppSpec{ref}).Run()
		if res.Apps[0].Elapsed != want.Apps[0].Elapsed {
			t.Fatalf("node %d: alone elapsed %v != node 0's %v",
				first, res.Apps[0].Elapsed, want.Apps[0].Elapsed)
		}
	}
}

// TestFleetDedupsShapes: 6 apps of 2 workload shapes collapse to 2 alone
// baselines, with every app mapped to the right one.
func TestFleetDedupsShapes(t *testing.T) {
	spec := fleetSpecForTest()
	f := Runner{Parallelism: 1}.RunFleet(spec, FleetOpts{})
	if f.Shapes != 2 || len(f.Alone) != 2 {
		t.Fatalf("6 apps of 2 shapes produced %d baselines", f.Shapes)
	}
	for i := range spec.Apps {
		if f.ShapeOf[i] != i%2 {
			t.Fatalf("app %d mapped to shape %d", i, f.ShapeOf[i])
		}
		if f.AloneOf(i) <= 0 {
			t.Fatalf("app %d has no baseline", i)
		}
	}
}

// TestFleetMatchesDeltaGraph: on a set small enough to afford the
// exhaustive path, the fleet co-run IFs must equal the δ=0 point of the
// same spec (alone baselines computed per app, at the app's own placement —
// equality also re-checks placement immateriality end to end).
func TestFleetMatchesDeltaGraph(t *testing.T) {
	spec := fleetSpecForTest()
	spec.Deltas = []sim.Time{0}
	f := Runner{Parallelism: 1}.RunFleet(spec, FleetOpts{})
	g := RunDelta(spec)
	p := g.Points[0]
	for i := range spec.Apps {
		if f.CoRun.Apps[i].Elapsed != p.Elapsed[i] {
			t.Fatalf("app %d: fleet co-run %v != δ=0 point %v", i, f.CoRun.Apps[i].Elapsed, p.Elapsed[i])
		}
		if f.AloneOf(i) != g.Alone[i] {
			t.Fatalf("app %d: shape baseline %v != per-app baseline %v", i, f.AloneOf(i), g.Alone[i])
		}
		if f.IF[i] != p.IF[i] {
			t.Fatalf("app %d: fleet IF %v != δ-graph IF %v", i, f.IF[i], p.IF[i])
		}
	}
}

// TestFleetPairSamplesMatchPairwise: each sampled pair's IFs must equal the
// corresponding cells of the exhaustive pairwise matrix.
func TestFleetPairSamplesMatchPairwise(t *testing.T) {
	spec := fleetSpecForTest()
	f := Runner{Parallelism: 1}.RunFleet(spec, FleetOpts{SamplePairs: 6, SampleSeed: 9})
	if len(f.Pairs) == 0 {
		t.Fatal("no pairs sampled")
	}
	m := Runner{Parallelism: 1}.RunPairwise(spec.Cfg, spec.Apps)
	for _, p := range f.Pairs {
		if p.I >= p.J || p.J >= len(spec.Apps) {
			t.Fatalf("bad pair (%d,%d)", p.I, p.J)
		}
		if p.IF[0] != m.Cell[p.I][p.J] || p.IF[1] != m.Cell[p.J][p.I] {
			t.Fatalf("pair (%d,%d): fleet IFs (%v,%v) != matrix (%v,%v)",
				p.I, p.J, p.IF[0], p.IF[1], m.Cell[p.I][p.J], m.Cell[p.J][p.I])
		}
	}
}

// TestFleetDeterministicAcrossPoolAndShards: the metamorphic core property —
// one fleet result, bit-identical at every Runner.Parallelism and every
// shard count.
func TestFleetDeterministicAcrossPoolAndShards(t *testing.T) {
	spec := fleetSpecForTest()
	opts := FleetOpts{SamplePairs: 4, SampleSeed: 3}
	ref := Runner{Parallelism: 1, Shards: 1}.RunFleet(spec, opts)
	for _, par := range []int{1, runtime.GOMAXPROCS(0)} {
		for _, shards := range []int{1, 2, 4} {
			got := Runner{Parallelism: par, Shards: shards}.RunFleet(spec, opts)
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("parallelism %d shards %d diverged from the serial oracle", par, shards)
			}
		}
	}
}

// TestFleetPairSelection: deterministic in the seed, distinct pairs, budget
// respected, exhaustion capped at the full pair space.
func TestFleetPairSelection(t *testing.T) {
	a := fleetPairs(100, FleetOpts{SamplePairs: 32, SampleSeed: 5})
	b := fleetPairs(100, FleetOpts{SamplePairs: 32, SampleSeed: 5})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed picked different pairs")
	}
	if len(a) != 32 {
		t.Fatalf("budget 32 yielded %d pairs", len(a))
	}
	seen := map[appPair]bool{}
	for _, p := range a {
		if p.i < 0 || p.j >= 100 || p.i >= p.j {
			t.Fatalf("bad pair %+v", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair %+v", p)
		}
		seen[p] = true
	}
	c := fleetPairs(100, FleetOpts{SamplePairs: 32, SampleSeed: 6})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds picked identical pairs")
	}
	// Budget beyond the pair space caps at n(n-1)/2.
	if got := fleetPairs(4, FleetOpts{SamplePairs: 100, SampleSeed: 1}); len(got) > 6 {
		t.Fatalf("4 apps yielded %d pairs, max is 6", len(got))
	}
	if got := fleetPairs(1, FleetOpts{SamplePairs: 8}); got != nil {
		t.Fatalf("1 app yielded pairs: %v", got)
	}
}
