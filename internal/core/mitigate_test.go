package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/pfs"
	"repro/internal/qos"
	"repro/internal/sim"
)

func TestStandardSchemes(t *testing.T) {
	schemes := StandardSchemes()
	want := []string{"off", "fairshare", "tokenbucket", "controller"}
	if len(schemes) != len(want) {
		t.Fatalf("got %d schemes", len(schemes))
	}
	for i, s := range schemes {
		if s.Name != want[i] {
			t.Fatalf("scheme %d = %q, want %q", i, s.Name, want[i])
		}
		if err := s.QoS.Validate(); err != nil {
			t.Fatalf("scheme %q invalid: %v", s.Name, err)
		}
	}
	if schemes[0].QoS.Kind != qos.Off {
		t.Fatal("baseline arm must be first by convention")
	}
}

// sweepSpecForTest is a small contended spec on the HDD backend (QoS
// levers are device-facing; a RAM backend would make every arm identical).
func sweepSpecForTest() DeltaSpec {
	cfg := tinyConfig(cluster.HDD, pfs.SyncOn)
	wl := tinyWorkload()
	wl.BlockBytes = 8 << 20
	apps := TwoAppSpecs(cfg, 8, 4, wl)
	return DeltaSpec{Cfg: cfg, Apps: apps, Deltas: Deltas(0.05)}
}

// TestRunMitigationSweepDeterminism: the sweep must be byte-identical at
// any pool parallelism — serial reference against GOMAXPROCS, with the
// intermediate sizes sampled too. Runs under -race in CI (satellite of
// issue 4).
func TestRunMitigationSweepDeterminism(t *testing.T) {
	spec := sweepSpecForTest()
	schemes := StandardSchemes()
	want := Runner{Parallelism: 1}.RunMitigationSweep(spec, schemes)
	for _, par := range []int{0, 2, 8} {
		got := Runner{Parallelism: par}.RunMitigationSweep(spec, schemes)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("Parallelism=%d diverged from the serial sweep", par)
		}
	}
	if len(want.Graphs) != len(schemes) {
		t.Fatalf("%d graphs for %d schemes", len(want.Graphs), len(schemes))
	}
}

// TestSweepParetoBaseline: the Pareto rows measure against arm 0 — its own
// deltas are exactly zero — and every arm reports positive throughput.
func TestSweepParetoBaseline(t *testing.T) {
	sweep := Runner{}.RunMitigationSweep(sweepSpecForTest(), StandardSchemes())
	rows := sweep.Pareto()
	if rows[0].Name != "off" || rows[0].IFReductionPct != 0 || rows[0].TPCostPct != 0 {
		t.Fatalf("baseline row not neutral: %+v", rows[0])
	}
	base := rows[0]
	for _, r := range rows {
		if r.AggBps <= 0 || r.PeakIF <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		// The two summary columns must be consistent with the raw ones.
		wantIF := (base.PeakIF - r.PeakIF) / base.PeakIF * 100
		if math.Abs(wantIF-r.IFReductionPct) > 1e-9 {
			t.Fatalf("row %q: dIF %v inconsistent with peaks", r.Name, r.IFReductionPct)
		}
	}
}

func TestRunMitigationSweepPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	spec := sweepSpecForTest()
	expectPanic("no schemes", func() {
		Runner{}.RunMitigationSweep(spec, nil)
	})
	expectPanic("invalid scheme", func() {
		Runner{}.RunMitigationSweep(spec, []Scheme{{Name: "bad", QoS: qos.Params{QuantumBytes: -1}}})
	})
}

// TestUnfairnessHeterogeneousStaggered pins the Unfairness arithmetic on a
// hand-built heterogeneous N=3 graph with staggered starts: roles (leader
// versus trailer) must come from each point's actual burst start vector,
// pairs with simultaneous starts must be skipped, and non-overlapping
// points must not contribute (satellite of issue 4).
func TestUnfairnessHeterogeneousStaggered(t *testing.T) {
	g := &DeltaGraph{
		// Heterogeneous alone vector (an elephant and two mice) — only the
		// IF ratios below enter Unfairness, normalization already happened.
		Alone: []sim.Time{10 * sim.Second, sim.Second, sim.Second},
		Points: []DeltaPoint{
			// Overlapping point: starts [0.5s, 0s, 1s] mean app 1 leads,
			// then app 0, then app 2.
			{
				Delta: 0,
				Start: []sim.Time{500 * sim.Millisecond, 0, sim.Second},
				IF:    []float64{2, 1.5, 3},
			},
			// Two apps start together: the (0,1) pair has no first mover
			// and must be skipped; (0,2) and (1,2) still count.
			{
				Delta: sim.Second,
				Start: []sim.Time{0, 0, 2 * sim.Second},
				IF:    []float64{2, 4, 2},
			},
			// No overlap (all IF below the 1.02 threshold): ignored
			// entirely, even though its ratios would be extreme.
			{
				Delta: 30 * sim.Second,
				Start: []sim.Time{0, sim.Second, 2 * sim.Second},
				IF:    []float64{1, 1.01, 1},
			},
		},
	}
	// Point 0 pairs (first, second): (1,0): 2/1.5, (0,2): 3/2, (1,2): 3/1.5.
	// Point 1 pairs: (0,2): 2/2, (1,2): 2/4. Point 2 contributes nothing.
	want := (2/1.5 + 3.0/2 + 3/1.5 + 1 + 0.5) / 5
	if got := g.Unfairness(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Unfairness = %v, want %v", got, want)
	}
}

// TestUnfairnessStaggeredRealRun: on a real heterogeneous staggered N=3
// co-run the leader should beat the trailers — Unfairness strictly above
// parity — and the roles must follow the recorded start vector.
func TestUnfairnessStaggeredRealRun(t *testing.T) {
	cfg := tinyConfig(cluster.RAM, pfs.SyncOn)
	cfg.ComputeNodes = 6
	wl := tinyWorkload()
	wl.BlockBytes = 16 << 20
	apps := AppSpecs(cfg, 3, 8, 4, wl)
	apps[1].Workload.BlockBytes = 4 << 20 // heterogeneous: a smaller app
	g := RunDelta(DeltaSpec{
		Cfg:          cfg,
		Apps:         apps,
		StartOffsets: []sim.Time{0, 20 * sim.Millisecond, 40 * sim.Millisecond},
		Deltas:       []sim.Time{0},
	})
	p := g.Points[0]
	if !(p.Start[0] < p.Start[1] && p.Start[1] < p.Start[2]) {
		t.Fatalf("staggered starts not recorded: %v", p.Start)
	}
	if u := g.Unfairness(); u <= 1 {
		t.Fatalf("Unfairness = %v, want > 1 for a staggered overlapping pile-up", u)
	}
}
