// Package core is the experiment harness reproducing — and generalizing —
// the paper's methodology: N applications (groups of processes on disjoint
// compute nodes) perform collective I/O phases against a shared parallel
// file system while one parameter of the I/O path is varied. The package
// provides single runs, δ-graphs (the paper's reporting device: the time to
// complete an I/O phase as a function of the delay δ between the leading
// application's burst and the rest, each point an independent experiment),
// per-app completion vectors, pairwise interference-factor matrices
// (RunPairwise), interference and fairness metrics, the local disk-level
// interference experiment of Table I, and tcpdump-like probes for TCP
// window and progress traces.
//
// The paper itself only ever co-runs two applications; TwoAppSpecs builds
// that canonical pair, and a two-app DeltaSpec reproduces the paper's
// figures bit-for-bit. Everything else — DeltaSpec, RunDelta, Runner,
// RunPairwise — takes an arbitrary application list, which is what the
// scenario layer (internal/scenario) drives.
//
// Every simulation is deterministic and self-contained: Prepare builds a
// fresh cluster.Platform with its own event engine, so distinct runs share
// no state. Runner exploits that to execute a δ-graph's baselines and
// points — or many δ-graphs at once — on a bounded worker pool while
// producing byte-identical results to the serial RunDelta path.
package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mpisim"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// AppSpec describes one application of an experiment.
type AppSpec struct {
	// Name labels the application in results ("A", "B").
	Name string
	// Procs is the number of processes.
	Procs int
	// FirstNode and ProcsPerNode place processes: process i runs on
	// compute node FirstNode + i/ProcsPerNode. Applications in the paper
	// occupy disjoint 30-node sets with 16 processes per node.
	FirstNode    int
	ProcsPerNode int
	// Workload is the I/O phase each process performs.
	Workload workload.Spec
	// Program, when non-nil, replaces Workload with a multi-phase workload
	// program (compute think time, barriers, repeated bursts — see
	// workload.Program). The single-burst Workload path is untouched when
	// Program is nil, so legacy experiments stay bit-identical.
	Program *workload.Program
	// TargetServers stripes the application's file over a subset of
	// servers (nil = all servers) — the paper's "targeted servers" knob.
	TargetServers []int
	// Stripe overrides the platform stripe size when positive.
	Stripe int64
	// Start is the absolute burst start time.
	Start sim.Time
}

// Validate checks the spec against a platform configuration.
func (a AppSpec) Validate(cfg cluster.Config) error {
	if a.Procs <= 0 {
		return fmt.Errorf("core: app %q needs procs > 0", a.Name)
	}
	if a.ProcsPerNode <= 0 {
		return fmt.Errorf("core: app %q needs ProcsPerNode > 0", a.Name)
	}
	lastNode := a.FirstNode + (a.Procs-1)/a.ProcsPerNode
	if a.FirstNode < 0 || lastNode >= cfg.ComputeNodes {
		return fmt.Errorf("core: app %q spans nodes %d..%d beyond the %d-node platform",
			a.Name, a.FirstNode, lastNode, cfg.ComputeNodes)
	}
	if a.Program != nil {
		return a.Program.Validate()
	}
	return a.Workload.Validate()
}

// TotalBytes returns the bytes the application moves over its whole phase
// (all processes; for programs, all iterations).
func (a AppSpec) TotalBytes() int64 {
	if a.Program != nil {
		return a.Program.TotalBytes(a.Procs)
	}
	return a.Workload.TotalBytes(a.Procs)
}

// App is an instantiated application within an experiment.
type App struct {
	Spec    AppSpec
	File    *pfs.File
	Clients []*pfs.Client
	Timer   *mpisim.PhaseTimer
	// Barrier is the application-wide rendezvous of program barrier phases
	// (nil for single-burst apps).
	Barrier *mpisim.Barrier
}

// Experiment is a prepared (but not yet run) simulation. Probes may be
// attached between Prepare and Run.
type Experiment struct {
	Platform *cluster.Platform
	Apps     []*App

	obs *obs.Collector
}

// Prepare builds the platform and applications on the serial engine.
func Prepare(cfg cluster.Config, specs []AppSpec) *Experiment {
	return PrepareSharded(cfg, specs, 1)
}

// PrepareSharded is Prepare on a sharded platform: `shards` event engines
// (clients on shard 0, servers spread over the rest — see
// cluster.BuildSharded). shards <= 1 is the bit-identical serial path;
// every shard count produces bit-identical results by the sharded kernel's
// determinism contract, just faster.
func PrepareSharded(cfg cluster.Config, specs []AppSpec, shards int) *Experiment {
	pl := cluster.BuildSharded(cfg, shards)
	x := &Experiment{Platform: pl}
	for ai, spec := range specs {
		if err := spec.Validate(cfg); err != nil {
			panic(err)
		}
		stripe := spec.Stripe
		if stripe <= 0 {
			stripe = cfg.StripeSize
		}
		app := &App{
			Spec:  spec,
			File:  pl.FS.CreateFile(spec.Name, spec.TargetServers, stripe),
			Timer: mpisim.NewPhaseTimer(pl.E, spec.Procs),
		}
		if spec.Program != nil {
			app.Barrier = mpisim.NewBarrier(spec.Procs)
		}
		for i := 0; i < spec.Procs; i++ {
			node := spec.FirstNode + i/spec.ProcsPerNode
			cl := pl.FS.NewClient(pl.Nodes[node], ai)
			cl.Rank = i
			app.Clients = append(app.Clients, cl)
		}
		x.Apps = append(x.Apps, app)
	}
	return x
}

// Observe attaches the deterministic sim-time observability layer (see
// internal/obs) to a prepared experiment: periodic per-app × per-server
// samples plus request spans, all collected on the engines that own the
// probed state. Call between Prepare and Run; the run's RunResult then
// carries the Timeline. Sampling is read-only — results are byte-identical
// to an unobserved run.
func (x *Experiment) Observe(cfg obs.Config) *obs.Collector {
	x.obs = obs.Attach(x.Platform, len(x.Apps), cfg)
	return x.obs
}

// AttachWindowTrace pre-dials the connection from the given client of the
// given app to the given server of that app's file and attaches a trace —
// the simulator's tcpdump (Figures 10 and 11).
func (x *Experiment) AttachWindowTrace(app, clientIdx, serverPos int) *netsim.Trace {
	a := x.Apps[app]
	srv := a.File.Servers()[serverPos]
	c := a.Clients[clientIdx].ConnTo(srv)
	c.Trace = netsim.NewTrace()
	return c.Trace
}

// launch spawns every process of every application.
func (x *Experiment) launch() {
	e := x.Platform.E
	for _, app := range x.Apps {
		app := app
		for rank := 0; rank < app.Spec.Procs; rank++ {
			rank := rank
			cl := app.Clients[rank]
			e.Spawn(fmt.Sprintf("%s/%d", app.Spec.Name, rank), func(p *sim.Proc) {
				if app.Spec.Start > 0 {
					p.Sleep(app.Spec.Start)
				}
				app.Timer.Enter(p)
				if app.Spec.Program != nil {
					runProgram(p, x.Platform.FS, cl, app, rank)
				} else {
					runBurst(p, cl, app, app.Spec.Workload, rank)
				}
				app.Timer.Done()
			})
		}
	}
}

// runBurst executes one I/O burst — the rank's request plan for wl — with
// the spec's queue depth. It is the whole phase of a single-burst app and
// one PhaseIO step of a program. On a platform with a fault plan the
// client's retrying RPC path is used, and an ErrUnavailable (retries
// exhausted against a crashed or partitioned server) stalls the process
// for the policy's Resume pause before re-issuing the same request —
// stall-and-resume, the way a real MPI job rides out a PFS failover.
func runBurst(p *sim.Proc, cl *pfs.Client, app *App, wl workload.Spec, rank int) {
	plan := wl.Plan(rank, app.Spec.Procs)
	qd := wl.QD
	think := sim.Time(wl.ThinkTime)
	retrying := cl.Retrying()
	if qd <= 1 {
		for _, ext := range plan {
			if think > 0 {
				p.Sleep(think)
			}
			switch {
			case retrying:
				retryBlocking(p, cl, app.File, ext.Off, ext.Size, wl.Read)
			case wl.Read:
				cl.Read(p, app.File, ext.Off, ext.Size)
			default:
				cl.Write(p, app.File, ext.Off, ext.Size)
			}
		}
		return
	}
	e := cl.Host.Egress.E
	sem := sim.NewSemaphore(qd)
	gate := sim.NewGate(len(plan))
	for _, ext := range plan {
		sem.Acquire(p)
		if think > 0 {
			p.Sleep(think)
		}
		if retrying {
			// The pipelined twin of stall-and-resume: hold the queue-depth
			// slot across the stall and re-issue until the request lands.
			ext := ext
			resume := cl.RetryPolicy().Resume
			var issue func()
			onErr := func(err error) {
				if err == nil {
					sem.Release()
					gate.Done(e)
					return
				}
				e.Schedule(resume, issue)
			}
			issue = func() {
				if wl.Read {
					cl.ReadAsyncRetry(app.File, ext.Off, ext.Size, onErr)
				} else {
					cl.WriteAsyncRetry(app.File, ext.Off, ext.Size, onErr)
				}
			}
			issue()
			continue
		}
		done := func() {
			sem.Release()
			gate.Done(e)
		}
		if wl.Read {
			cl.ReadAsync(app.File, ext.Off, ext.Size, done)
		} else {
			cl.WriteAsync(app.File, ext.Off, ext.Size, done)
		}
	}
	gate.Wait(p)
}

// retryBlocking performs one blocking transfer on the retrying path,
// stalling Resume and re-issuing on ErrUnavailable until it succeeds (the
// fault plan's validation guarantees crashed servers restart, so this
// terminates).
func retryBlocking(p *sim.Proc, cl *pfs.Client, f *pfs.File, off, size int64, read bool) {
	resume := cl.RetryPolicy().Resume
	for {
		var err error
		if read {
			err = cl.ReadRetry(p, f, off, size)
		} else {
			err = cl.WriteRetry(p, f, off, size)
		}
		if err == nil {
			return
		}
		p.Sleep(resume)
	}
}

// AppResult is the outcome of one application's I/O phase.
type AppResult struct {
	Name       string
	Start      sim.Time
	End        sim.Time
	Elapsed    sim.Time
	Bytes      int64
	Throughput float64 // bytes per second
}

// Diag aggregates platform-wide diagnostics of a run — the quantities the
// paper uses to explain its results.
type Diag struct {
	PortDrops   int64 // segments tail-dropped at server ports (incast)
	Timeouts    int64 // TCP retransmission timeouts
	RetransSegs int64
	DeviceSeeks int64
	DeviceBytes int64
	CacheBlocks int64 // writes stalled on the dirty limit
	Events      uint64
	Avail       AvailDiag // availability counters (all zero without faults)
}

// AvailDiag aggregates the platform's availability telemetry: server-side
// outage accounting and the client retry layer's counters. Everything is
// zero on a fault-free platform.
type AvailDiag struct {
	Crashes        int64    // fail-stop events across all servers
	Downtime       sim.Time // summed server downtime
	DiscardedBytes int64    // wire bytes servers read and threw away
	LinkDrops      int64    // segments dropped by down links / loss bursts
	RPCTimeouts    int64    // client sub-request deadline expirations
	Retries        int64    // client resends
	Failures       int64    // sub-requests that surfaced ErrUnavailable
	GoodputBytes   int64    // chunk bytes actually stored or returned
	OfferedBytes   int64    // chunk bytes clients pushed at servers
}

// RunResult is the outcome of a single experiment run. Timeline is only
// set when the experiment was Observed (see internal/obs).
type RunResult struct {
	Apps     []AppResult
	Diag     Diag
	Timeline *obs.Timeline `json:",omitempty"`
}

// Run launches all applications, drives the simulation to completion and
// collects results.
func (x *Experiment) Run() RunResult {
	x.launch()
	x.Platform.Run()
	return x.collect()
}

func (x *Experiment) collect() RunResult {
	var res RunResult
	for _, app := range x.Apps {
		if !app.Timer.Finished() {
			panic(fmt.Sprintf("core: app %q did not finish (deadlock?)", app.Spec.Name))
		}
		bytes := app.Spec.TotalBytes()
		elapsed := app.Timer.Elapsed()
		res.Apps = append(res.Apps, AppResult{
			Name:       app.Spec.Name,
			Start:      app.Timer.Start(),
			End:        app.Timer.End(),
			Elapsed:    elapsed,
			Bytes:      bytes,
			Throughput: sim.Rate(bytes, elapsed),
		})
	}
	pl := x.Platform
	for _, h := range pl.Fabric.Hosts() {
		res.Diag.PortDrops += h.Stats().PortDrops
	}
	for _, c := range pl.Fabric.Conns() {
		st := c.Stats()
		res.Diag.Timeouts += st.Timeouts
		res.Diag.RetransSegs += st.RetransSegs
	}
	for _, d := range pl.Devices {
		res.Diag.DeviceSeeks += d.Stats().Seeks
		res.Diag.DeviceBytes += d.Stats().Bytes
	}
	for _, c := range pl.Caches {
		if c != nil {
			res.Diag.CacheBlocks += c.BlockedWrites()
		}
	}
	av := &res.Diag.Avail
	for _, s := range pl.Servers {
		a := s.Tel.Avail(s.E.Now())
		av.Crashes += a.Crashes
		av.Downtime += a.Downtime
		av.DiscardedBytes += a.DiscardedBytes
		av.GoodputBytes += s.Tel.GoodputBytes()
		av.OfferedBytes += s.Tel.OfferedBytes()
	}
	av.LinkDrops = pl.Fabric.TotalLinkDrops()
	ca := pl.FS.TotalClientAvail()
	av.RPCTimeouts, av.Retries, av.Failures = ca.Timeouts, ca.Retries, ca.Failures
	res.Diag.Events = pl.EventsExecuted()
	if x.obs != nil {
		names := make([]string, len(x.Apps))
		for i, app := range x.Apps {
			names[i] = app.Spec.Name
		}
		res.Timeline = x.obs.Timeline(names)
	}
	return res
}

// TwoAppSpecs builds the paper's canonical pair of equal applications: each
// with procs processes at ppn per node, application A on the first half of
// the node range, B on the second half. It is AppSpecs(cfg, 2, ...).
func TwoAppSpecs(cfg cluster.Config, procs, ppn int, wl workload.Spec) []AppSpec {
	return AppSpecs(cfg, 2, procs, ppn, wl)
}

// AppSpecs builds n equal applications of procs processes at ppn per node,
// packed onto consecutive disjoint node ranges and named "A", "B", "C", …
// (then "app26", "app27", … beyond the alphabet). It is the N-app analogue
// of the paper's canonical A/B pair.
func AppSpecs(cfg cluster.Config, n, procs, ppn int, wl workload.Spec) []AppSpec {
	nodesPer := (procs + ppn - 1) / ppn
	out := make([]AppSpec, n)
	for i := 0; i < n; i++ {
		out[i] = AppSpec{
			Name:         AppName(i),
			Procs:        procs,
			FirstNode:    i * nodesPer,
			ProcsPerNode: ppn,
			Workload:     wl,
		}
	}
	return out
}

// AppName returns the conventional name of application i: "A".."Z", then
// "app26", "app27", …
func AppName(i int) string {
	if i >= 0 && i < 26 {
		return string(rune('A' + i))
	}
	return fmt.Sprintf("app%d", i)
}
