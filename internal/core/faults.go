package core

import (
	"repro/internal/cluster"
	"repro/internal/sim"
)

// FaultComparison pairs a run under a fault plan with its healthy twin —
// the same platform and applications with the plan stripped — so the cost
// of the faults is an interference-factor-style ratio against a controlled
// baseline, exactly the paper's reporting device applied to availability.
type FaultComparison struct {
	Healthy RunResult
	Faulted RunResult
}

// IF returns application i's interference factor under faults: faulted
// elapsed time over healthy elapsed time (1 = the faults cost nothing).
func (fc FaultComparison) IF(i int) float64 {
	h := fc.Healthy.Apps[i].Elapsed
	if h <= 0 {
		return 0
	}
	return float64(fc.Faulted.Apps[i].Elapsed) / float64(h)
}

// GoodputRatio returns goodput over offered bytes of the faulted run (1 =
// nothing was discarded; degrades as outages eat pushed bytes).
func (fc FaultComparison) GoodputRatio() float64 {
	off := fc.Faulted.Diag.Avail.OfferedBytes
	if off <= 0 {
		return 0
	}
	return float64(fc.Faulted.Diag.Avail.GoodputBytes) / float64(off)
}

// Downtime returns the faulted run's summed server downtime.
func (fc FaultComparison) Downtime() sim.Time { return fc.Faulted.Diag.Avail.Downtime }

// RunFaultComparison runs cfg's applications twice on `shards` engines:
// once with cfg.Faults stripped (the healthy baseline) and once as given.
// cfg must carry a fault plan for the comparison to mean anything, but a
// nil plan is legal (both arms are then identical by determinism).
func RunFaultComparison(cfg cluster.Config, specs []AppSpec, shards int) FaultComparison {
	healthy := cfg
	healthy.Faults = nil
	return FaultComparison{
		Healthy: PrepareSharded(healthy, specs, shards).Run(),
		Faulted: PrepareSharded(cfg, specs, shards).Run(),
	}
}
