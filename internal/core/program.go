package core

import (
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// runProgram executes a multi-phase workload program on one rank: Iterations
// passes over the phase list, each pass running compute pauses (fixed think
// time plus deterministic exponential jitter), application-wide barriers and
// I/O bursts in order.
//
// Jitter draws come from a rank-local generator seeded only by the program's
// Seed: every rank draws the identical sequence (a collective pause that
// keeps the burst coherent), so the schedule is independent of rank count,
// of the application's position in the run, and of event interleaving — the
// determinism the trace replayer and the δ-graph runner both rely on.
//
// Each compute phase issues at most one Sleep, and barrier entries happen
// directly at the previous phase's completion time. That discipline is the
// replay determinism contract (see internal/trace): a replayer that sleeps
// to each record's absolute timestamp from the same wake-up points
// reproduces this event structure exactly.
func runProgram(p *sim.Proc, fs *pfs.FileSystem, cl *pfs.Client, app *App, rank int) {
	prog := app.Spec.Program
	rng := sim.NewRand(prog.Seed)
	e := cl.Host.Egress.E
	for it := 0; it < prog.Iters(); it++ {
		for _, ph := range prog.Phases {
			switch ph.Kind {
			case workload.PhaseCompute:
				pause := sim.Time(ph.Compute)
				if ph.JitterMean > 0 {
					pause += sim.Time(rng.ExpFloat64() * float64(ph.JitterMean))
				}
				if pause > 0 {
					p.Sleep(pause)
				}
			case workload.PhaseBarrier:
				idx := -1
				sink := fs.Sink
				if sink != nil {
					idx = sink.BeginRequest(pfs.IORecord{
						Time: p.Now(), App: int32(cl.App), Rank: int32(rank),
						Server: -1, Op: pfs.OpBarrier,
					})
				}
				app.Barrier.Wait(p, e)
				if sink != nil {
					sink.EndRequest(idx)
				}
			case workload.PhaseIO:
				runBurst(p, cl, app, ph.IO, rank)
			}
		}
	}
}
