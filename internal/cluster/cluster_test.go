package cluster

import (
	"testing"

	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/storage"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateRejectsBrokenConfigs(t *testing.T) {
	mods := []func(*Config){
		func(c *Config) { c.ComputeNodes = 0 },
		func(c *Config) { c.CoresPerNode = 0 },
		func(c *Config) { c.Servers = 0 },
		func(c *Config) { c.ClientNIC = 0 },
		func(c *Config) { c.StripeSize = 0 },
	}
	for i, m := range mods {
		c := Default()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mod %d: invalid config accepted", i)
		}
	}
}

func TestBuildWiresEverything(t *testing.T) {
	cfg := Default()
	cfg.ComputeNodes = 4
	cfg.Servers = 3
	pl := Build(cfg)
	if len(pl.Nodes) != 4 || len(pl.Servers) != 3 || len(pl.Devices) != 3 {
		t.Fatalf("nodes=%d servers=%d devices=%d", len(pl.Nodes), len(pl.Servers), len(pl.Devices))
	}
	for i, s := range pl.Servers {
		if s.ID != i {
			t.Fatalf("server %d has ID %d", i, s.ID)
		}
		if s.P.Sync != cfg.Sync {
			t.Fatalf("server sync mode not propagated")
		}
	}
	// Sync ON: no caches.
	for _, c := range pl.Caches {
		if c != nil {
			t.Fatal("cache built for sync-on config")
		}
	}
	if pl.FS == nil || pl.FS.Rand == nil {
		t.Fatal("file system or jitter source missing")
	}
}

func TestBuildSyncOffHasCaches(t *testing.T) {
	cfg := Default()
	cfg.ComputeNodes = 2
	cfg.Servers = 2
	cfg.Sync = pfs.SyncOff
	pl := Build(cfg)
	for i, c := range pl.Caches {
		if c == nil {
			t.Fatalf("server %d missing write cache", i)
		}
	}
}

func TestNewDeviceKinds(t *testing.T) {
	e := sim.NewEngine()
	for _, b := range []BackendKind{HDD, SSD, RAM, Null} {
		cfg := Default()
		cfg.Backend = b
		d := NewDevice(e, cfg)
		if d == nil {
			t.Fatalf("no device for %v", b)
		}
		if b != Null && d.Name() != b.String() {
			t.Fatalf("device name %q for backend %v", d.Name(), b)
		}
	}
}

func TestParseBackend(t *testing.T) {
	cases := map[string]BackendKind{
		"hdd": HDD, "disk": HDD, "SSD": SSD, "ram": RAM,
		"tmpfs": RAM, "null-aio": Null, "null": Null,
	}
	for s, want := range cases {
		got, err := ParseBackend(s)
		if err != nil || got != want {
			t.Errorf("ParseBackend(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseBackend("tape"); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestBackendString(t *testing.T) {
	if HDD.String() != "hdd" || SSD.String() != "ssd" || RAM.String() != "ram" || Null.String() != "null" {
		t.Fatal("backend names")
	}
	if BackendKind(42).String() != "unknown" {
		t.Fatal("unknown backend name")
	}
}

func TestScaleKeepsMinimums(t *testing.T) {
	c := Default().Scale(100)
	if c.ComputeNodes < 2 || c.Servers < 2 || c.CoresPerNode < 1 {
		t.Fatalf("scaled below minimums: %+v", c)
	}
	d := Default()
	if d.Scale(1).ComputeNodes != d.ComputeNodes {
		t.Fatal("scale 1 should be identity")
	}
}

func TestPlatformCounters(t *testing.T) {
	cfg := Default()
	cfg.ComputeNodes = 2
	cfg.Servers = 2
	pl := Build(cfg)
	// Write directly to a device and check the aggregate counter.
	pl.Devices[0].Submit(&storage.Request{File: 1, Offset: 0, Size: 4096})
	pl.E.Run()
	if pl.DeviceBytes() != 4096 {
		t.Fatalf("DeviceBytes = %d", pl.DeviceBytes())
	}
	if pl.TotalTimeouts() != 0 {
		t.Fatalf("TotalTimeouts = %d with no traffic", pl.TotalTimeouts())
	}
}
