// Package cluster assembles simulated platforms: compute nodes with shared
// NICs, storage servers with devices (and write caches when synchronization
// is off), the network fabric, and the parallel file system. Default() is
// calibrated against the paper's testbed — the Grid'5000 parasilo/paravance
// clusters (60 compute nodes with two 8-core CPUs, 12 OrangeFS servers,
// 10 GbE) — so that single-application baselines land in the paper's range.
package cluster

import (
	"fmt"
	"strings"

	"repro/internal/fault"
	"repro/internal/netsim"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/storage"
)

// BackendKind selects the storage device model behind each server.
type BackendKind int

// Backends from the paper's experiments.
const (
	HDD BackendKind = iota
	SSD
	RAM
	Null // PVFS null-aio: no storage at all
)

func (b BackendKind) String() string {
	switch b {
	case HDD:
		return "hdd"
	case SSD:
		return "ssd"
	case RAM:
		return "ram"
	case Null:
		return "null"
	}
	return "unknown"
}

// BackendNames lists the canonical backend names ParseBackend accepts, in
// declaration order — the valid set shown by CLI error messages.
func BackendNames() []string {
	return []string{HDD.String(), SSD.String(), RAM.String(), Null.String()}
}

// ParseBackend converts a name ("hdd", "ssd", "ram", "null"; a few aliases
// like "disk" and "tmpfs" are accepted) to a kind. Unknown names yield an
// error listing the valid set.
func ParseBackend(s string) (BackendKind, error) {
	switch strings.ToLower(s) {
	case "hdd", "disk":
		return HDD, nil
	case "ssd":
		return SSD, nil
	case "ram", "memory", "tmpfs":
		return RAM, nil
	case "null", "null-aio", "nullaio":
		return Null, nil
	}
	return 0, fmt.Errorf("cluster: unknown backend %q (valid: %s)",
		s, strings.Join(BackendNames(), ", "))
}

// Config describes a platform to build.
type Config struct {
	// ComputeNodes is the number of client machines; CoresPerNode is how
	// many application processes share each machine's NIC.
	ComputeNodes int
	CoresPerNode int

	// ClientNIC and ServerNIC are NIC rates in bytes/second. The paper's
	// bandwidth experiment lowers ClientNIC from 10 GbE to 1 GbE.
	ClientNIC float64
	ServerNIC float64

	// Servers is the number of storage servers.
	Servers int
	// Backend selects the device model; Sync the persistence mode.
	Backend BackendKind
	Sync    pfs.SyncMode
	// StripeSize is the file system's default stripe size.
	StripeSize int64

	// Subsystem tunables (calibrated defaults from Default()).
	Net   netsim.Params
	Srv   pfs.ServerParams
	HDD   storage.HDDParams
	SSD   storage.SSDParams
	RAM   storage.RAMParams
	Cache storage.CacheParams

	// PerSeg is the fixed per-segment NIC processing overhead.
	PerSeg sim.Time

	// IssueJitter perturbs each request's per-server queue position,
	// modeling network and scheduling noise that decorrelates service
	// order across servers.
	IssueJitter sim.Time

	// Seed drives all randomized choices (none in the core model, but
	// probes and failure injection fork from it).
	Seed uint64

	// Faults, when non-nil, is the deterministic fault timeline injected
	// into the platform. It activates the whole fault surface: every
	// server's device is wrapped in a storage.Degraded, the client RPC
	// layer switches to deadline/retry (Faults.Retry), and the plan's
	// events are scheduled at build time on each target server's shard.
	// nil builds a platform bit-identical to a fault-free one.
	Faults *fault.Plan
}

// GbE10 and GbE1 are NIC rates in bytes/second.
const (
	GbE10 = 1.25e9
	GbE1  = 1.25e8
)

// Default returns the paper-calibrated platform: 60 nodes x 16 cores
// against 12 OrangeFS servers over 10 GbE, HDDs with sync enabled, 64 KiB
// stripes.
func Default() Config {
	srv := pfs.DefaultServerParams()
	// Per-server ingest ceiling: the paper's sync-OFF runs move ~30 GB in
	// ~5.5 s over 12 servers (~460 MB/s per server) — request processing,
	// not the 10 GbE NIC, is the server bottleneck.
	srv.CPUBytesPerSec = 700e6
	srv.CPUPerChunk = 120 * sim.Microsecond
	return Config{
		ComputeNodes: 60,
		CoresPerNode: 16,
		ClientNIC:    GbE10,
		ServerNIC:    GbE10,
		Servers:      12,
		Backend:      HDD,
		Sync:         pfs.SyncOn,
		StripeSize:   64 << 10,
		Net:          netsim.DefaultParams(),
		Srv:          srv,
		HDD:          storage.DefaultHDD(),
		SSD:          storage.DefaultSSD(),
		RAM:          storage.DefaultRAM(),
		Cache:        storage.DefaultCache(),
		PerSeg:       5 * sim.Microsecond,
		IssueJitter:  4 * sim.Millisecond,
		Seed:         1,
	}
}

// Scale shrinks the experiment while preserving per-node and per-server
// ratios: it divides node, core and server counts by f (minimum 1 each,
// keeping at least 2 nodes and 2 servers for two-application runs).
// Workload bytes are the caller's concern.
func (c Config) Scale(f int) Config {
	if f <= 1 {
		return c
	}
	div := func(n, min int) int {
		n /= f
		if n < min {
			n = min
		}
		return n
	}
	c.ComputeNodes = div(c.ComputeNodes, 2)
	c.CoresPerNode = div(c.CoresPerNode, 1)
	c.Servers = div(c.Servers, 2)
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.ComputeNodes <= 0:
		return fmt.Errorf("cluster: ComputeNodes must be positive")
	case c.CoresPerNode <= 0:
		return fmt.Errorf("cluster: CoresPerNode must be positive")
	case c.Servers <= 0:
		return fmt.Errorf("cluster: Servers must be positive")
	case c.ClientNIC <= 0 || c.ServerNIC <= 0:
		return fmt.Errorf("cluster: NIC rates must be positive")
	case c.StripeSize <= 0:
		return fmt.Errorf("cluster: StripeSize must be positive")
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(c.Servers); err != nil {
			return err
		}
	}
	return nil
}

// Platform is a built simulation: engine, fabric, file system, nodes.
type Platform struct {
	Cfg    Config
	E      *sim.Engine
	Rand   *sim.Rand
	Fabric *netsim.Fabric
	FS     *pfs.FileSystem

	// Set is the shard synchronizer of a sharded build (nil for the serial
	// oracle). E is then shard 0's engine — the shard owning clients, file
	// system and coordination state.
	Set *sim.ShardSet

	// Nodes are the compute hosts; process i of an application placed on
	// nodes [a..b] shares the NIC of node a + i/CoresPerNode.
	Nodes []*netsim.Host
	// Servers, Devices and Caches are indexed by server id. Caches[i] is
	// nil unless Sync is SyncOff. Devices are the raw backend devices;
	// Degraded[i] is the fault wrapper the server actually talks to, nil
	// unless a fault plan was configured.
	Servers  []*pfs.Server
	Devices  []storage.Device
	Caches   []*storage.WriteCache
	Degraded []*storage.Degraded
}

// NominalBW returns the backend's nominal sequential bandwidth — the
// baseline a DeviceDegrade throughput factor is relative to.
func NominalBW(c Config) float64 {
	switch c.Backend {
	case HDD:
		return c.HDD.SeqBW
	case SSD:
		return c.SSD.BW
	case RAM:
		return c.RAM.BW
	}
	return 0 // Null: Degraded falls back to its internal default
}

// NewDevice builds one backend device according to the config (exported so
// the local, network-free Table I experiment can use the same calibration).
func NewDevice(e *sim.Engine, c Config) storage.Device {
	switch c.Backend {
	case HDD:
		return storage.NewHDD(e, c.HDD)
	case SSD:
		return storage.NewSSD(e, c.SSD)
	case RAM:
		return storage.NewRAM(e, c.RAM)
	case Null:
		return storage.NewNull(e)
	}
	panic("cluster: unknown backend")
}

// Build assembles the platform.
func Build(c Config) *Platform {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	e := sim.NewEngine()
	fab := netsim.NewFabric(e, c.Net)
	pl := &Platform{
		Cfg:    c,
		E:      e,
		Rand:   sim.NewRand(c.Seed),
		Fabric: fab,
	}
	sp := c.Srv
	sp.Sync = c.Sync
	for i := 0; i < c.Servers; i++ {
		host := fab.NewHost(fmt.Sprintf("srv%d", i), c.ServerNIC, c.PerSeg)
		dev, sdev, deg := newBackend(e, c)
		var cache *storage.WriteCache
		if c.Sync == pfs.SyncOff {
			cache = storage.NewWriteCache(e, c.Cache, sdev)
		}
		pl.Servers = append(pl.Servers, pfs.NewServer(e, i, host, sdev, cache, sp))
		pl.Devices = append(pl.Devices, dev)
		pl.Caches = append(pl.Caches, cache)
		pl.Degraded = append(pl.Degraded, deg)
	}
	for i := 0; i < c.ComputeNodes; i++ {
		pl.Nodes = append(pl.Nodes, fab.NewHost(fmt.Sprintf("node%d", i), c.ClientNIC, c.PerSeg))
	}
	pl.FS = pfs.NewFileSystem(e, fab, pl.Servers)
	pl.FS.Rand = pl.Rand.Fork()
	pl.FS.IssueJitter = c.IssueJitter
	pl.installFaults()
	return pl
}

// newBackend builds one backend device, wrapped in a Degraded fault shim
// when a fault plan is configured. Returns the raw device, the device the
// server stack should talk to, and the shim (nil without faults).
func newBackend(e *sim.Engine, c Config) (raw, use storage.Device, deg *storage.Degraded) {
	dev := NewDevice(e, c)
	if c.Faults == nil {
		return dev, dev, nil
	}
	d := storage.NewDegraded(e, dev, NominalBW(c))
	return dev, d, d
}

// installFaults activates the fault surface of a freshly built platform:
// the client retry policy and the plan's events, each scheduled at setup
// time on the engine owning its target server. No-op without a fault plan.
func (pl *Platform) installFaults() {
	p := pl.Cfg.Faults
	if p == nil {
		return
	}
	pl.FS.EnableRetry(p.Retry)
	hooks := make([]fault.Hooks, len(pl.Servers))
	for i, srv := range pl.Servers {
		deg := pl.Degraded[i]
		host := srv.Host
		hooks[i] = fault.Hooks{
			E:         srv.E,
			Crash:     srv.Crash,
			Restart:   srv.Restart,
			Degrade:   deg.Degrade,
			Restore:   deg.Restore,
			SetLink:   host.SetLinkDown,
			LossBurst: host.StartLossBurst,
		}
	}
	fault.Schedule(p, hooks)
}

// BuildSharded assembles the platform across `shards` independently-clocked
// engines of one sim.ShardSet: shard 0 owns the clients, compute-node NICs,
// file system and coordination state; shards 1..K-1 own the storage servers
// (host NIC, device, cache, server logic) in contiguous blocks. The shard
// count is clamped to 1+Servers (no point in more shards than servers);
// shards <= 1 — or a transport with no safe lookahead — falls back to the
// serial Build, bit-identical to always.
//
// Construction order (host IDs, engine wiring aside, random-stream forks)
// matches Build exactly, which is what makes sharded runs reproduce serial
// results bit for bit.
func BuildSharded(c Config, shards int) *Platform {
	if shards > 1+c.Servers {
		shards = 1 + c.Servers
	}
	la := c.Net.Lookahead()
	if shards <= 1 || la <= 0 {
		return Build(c)
	}
	if err := c.Validate(); err != nil {
		panic(err)
	}
	set := sim.NewShardSet(shards, la)
	e := set.Engine(0)
	fab := netsim.NewFabric(e, c.Net)
	pl := &Platform{
		Cfg:    c,
		E:      e,
		Rand:   sim.NewRand(c.Seed),
		Fabric: fab,
		Set:    set,
	}
	sp := c.Srv
	sp.Sync = c.Sync
	srvShards := shards - 1
	for i := 0; i < c.Servers; i++ {
		se := set.Engine(1 + i*srvShards/c.Servers)
		host := fab.NewHostOn(se, fmt.Sprintf("srv%d", i), c.ServerNIC, c.PerSeg)
		dev, sdev, deg := newBackend(se, c)
		var cache *storage.WriteCache
		if c.Sync == pfs.SyncOff {
			cache = storage.NewWriteCache(se, c.Cache, sdev)
		}
		pl.Servers = append(pl.Servers, pfs.NewServer(se, i, host, sdev, cache, sp))
		pl.Devices = append(pl.Devices, dev)
		pl.Caches = append(pl.Caches, cache)
		pl.Degraded = append(pl.Degraded, deg)
	}
	for i := 0; i < c.ComputeNodes; i++ {
		pl.Nodes = append(pl.Nodes, fab.NewHost(fmt.Sprintf("node%d", i), c.ClientNIC, c.PerSeg))
	}
	pl.FS = pfs.NewFileSystem(e, fab, pl.Servers)
	pl.FS.Rand = pl.Rand.Fork()
	pl.FS.IssueJitter = c.IssueJitter
	pl.installFaults()
	return pl
}

// Run executes the simulation to completion — across all shards for a
// sharded build, on the single engine otherwise — and returns the end time.
func (pl *Platform) Run() sim.Time {
	if pl.Set != nil {
		return pl.Set.Run()
	}
	return pl.E.Run()
}

// EventsExecuted returns the total executed event count (summed over shards
// for a sharded build; equal to the serial count by construction).
func (pl *Platform) EventsExecuted() uint64 {
	if pl.Set != nil {
		return pl.Set.Executed()
	}
	return pl.E.Executed()
}

// DeviceBytes sums bytes written to all devices.
func (pl *Platform) DeviceBytes() int64 {
	var n int64
	for _, d := range pl.Devices {
		n += d.Stats().Bytes
	}
	return n
}

// TotalTimeouts sums TCP retransmission timeouts across all connections.
func (pl *Platform) TotalTimeouts() int64 {
	var n int64
	for _, c := range pl.Fabric.Conns() {
		n += c.Stats().Timeouts
	}
	return n
}
