package whatif

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/qos"
	qosreport "repro/internal/qos/report"
	basereport "repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Query is one validated what-if session: an inline scenario spec OR an
// uploaded IOTRACE1 recording, plus the mitigation arms to sweep against
// the always-present un-mitigated baseline (arm 0, scheduler "off").
type Query struct {
	// Spec is the inline scenario (scenario kind); nil for trace queries.
	// The spec must not carry qos/trace/faults/population blocks — the
	// arms define the schemes, and the other subsystems have their own
	// render paths.
	Spec *scenario.Spec
	// Trace is the raw IOTRACE1 recording (trace kind); nil for scenario
	// queries. The replay platform comes from the trace header.
	Trace []byte
	// Label is the display title of a trace query — the CLI's trace file
	// path — so responses stay byte-identical to `scenarios -replay`.
	Label string
	// Backend selects the single backend a scenario query runs on
	// (trace queries replay the recorded platform).
	Backend cluster.BackendKind
	// Smoke shrinks the scenario to the CI smoke grid before running.
	Smoke bool
	// Shards is the event-kernel shard override (0 = the spec's own knob).
	// Results are bit-identical at any value.
	Shards int
	// Arms are the mitigation schemes to sweep; never contains Off.
	Arms []qos.Kind
}

// Report is the deterministic JSON document one session produces. Every
// embedded Text field is byte-identical to the stdout of the equivalent
// `cmd/scenarios -tsv` invocation, cold and cache-hit alike — the
// determinism contract the serve smoke test pins bit-for-bit. The body
// deliberately carries no cache or timing metadata (that would break the
// cold-vs-hit byte identity); cache status travels in the X-Whatif-Cache
// response header instead.
type Report struct {
	Kind    string `json:"kind"` // "scenario" or "trace"
	Name    string `json:"name"`
	Backend string `json:"backend,omitempty"` // scenario kind
	// Apps are the application display names, indexing every per-app slice.
	Apps []string `json:"apps"`
	// Arms[0] is the un-mitigated baseline ("off"); the rest follow the
	// query's arm order.
	Arms []Arm `json:"arms"`
	// Pareto summarizes every arm against the baseline arm.
	Pareto     []ParetoRow `json:"pareto"`
	ParetoText string      `json:"pareto_text"`
}

// Arm is one sweep arm: the rendered CLI-equivalent tables plus the
// structured numbers behind them.
type Arm struct {
	Scheme string `json:"scheme"`
	// Text is byte-identical to the stdout of the equivalent CLI run:
	// `scenarios -tsv -qos <scheme> …` for scenario arms,
	// `scenarios -tsv -replay <label> [-qos <scheme>]` for trace arms.
	Text string `json:"text"`

	// Scenario kind: alone baselines (seconds), δ-graph points and the
	// pairwise IF matrix.
	AloneS []float64   `json:"alone_s,omitempty"`
	Points []Point     `json:"points,omitempty"`
	Matrix [][]float64 `json:"matrix,omitempty"`

	// Trace kind: per-app recorded vs replayed windows; Identical reports
	// the bit-for-bit round trip (always true for the baseline arm,
	// meaningless for counterfactual arms where divergence is the result).
	TraceApps []TraceApp `json:"trace_apps,omitempty"`
	Identical *bool      `json:"identical,omitempty"`
}

// Point is one δ-graph sample of a scenario arm.
type Point struct {
	DeltaS   float64   `json:"delta_s"`
	ElapsedS []float64 `json:"elapsed_s"`
	IF       []float64 `json:"if"`
	Drops    int64     `json:"drops"`
	Timeouts int64     `json:"timeouts"`
	Seeks    int64     `json:"seeks"`
}

// TraceApp is one application of a trace arm: the recorded phase window
// against the arm's replayed one, and the arm's interference factor
// relative to the baseline replay (1 for the baseline itself).
type TraceApp struct {
	Name      string  `json:"name"`
	RecordedS float64 `json:"recorded_s"`
	ReplayedS float64 `json:"replayed_s"`
	IF        float64 `json:"if"`
}

// ParetoRow summarizes one arm against the baseline arm: interference
// removed versus aggregate throughput paid — the qos/report view.
// Unfairness applies to scenario arms only (δ-graph first-mover advantage)
// and is omitted for trace arms.
type ParetoRow struct {
	Scheme     string  `json:"scheme"`
	PeakIF     float64 `json:"peak_if"`
	DIFPct     float64 `json:"dif_pct"`
	Unfairness float64 `json:"unfairness,omitempty"`
	AggMBps    float64 `json:"agg_mbps"`
	TPCostPct  float64 `json:"tp_cost_pct"`
}

// BadRequestError marks errors caused by the request itself (a malformed
// spec or trace) rather than the service; handlers map it to HTTP 400.
type BadRequestError struct{ Err error }

func (e *BadRequestError) Error() string { return e.Err.Error() }
func (e *BadRequestError) Unwrap() error { return e.Err }

// badRequest wraps err as a client error.
func badRequest(err error) error { return &BadRequestError{Err: err} }

// IsBadRequest reports whether err is (or wraps) a client error.
func IsBadRequest(err error) bool {
	var b *BadRequestError
	return errors.As(err, &b)
}

// ParseArms resolves arm names to schedulers: empty selects every built-in
// mitigation ({fairshare, tokenbucket, controller}); "off" and duplicates
// are rejected — the un-mitigated baseline always runs as arm 0.
func ParseArms(names []string) ([]qos.Kind, error) {
	if len(names) == 0 {
		return []qos.Kind{qos.FairShare, qos.TokenBucket, qos.Controller}, nil
	}
	out := make([]qos.Kind, 0, len(names))
	seen := make(map[qos.Kind]bool, len(names))
	for _, n := range names {
		k, err := qos.ParseKind(n)
		if err != nil {
			return nil, err
		}
		if k == qos.Off {
			return nil, fmt.Errorf("arm %q: the un-mitigated baseline always runs as arm 0", n)
		}
		if seen[k] {
			return nil, fmt.Errorf("duplicate arm %q", n)
		}
		seen[k] = true
		out = append(out, k)
	}
	return out, nil
}

// cacheKey derives the content address of a baseline: a sha256 over the
// query kind, the effective shard count and the length-prefixed identity
// parts (trace bytes or canonical spec JSON, the built cluster.Config, the
// display label). Length prefixes keep distinct part lists from colliding
// by concatenation.
func cacheKey(kind string, shards int, parts ...[]byte) string {
	h := sha256.New()
	io.WriteString(h, kind)
	fmt.Fprintf(h, "|%d", shards)
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// mustJSON marshals plain exported data; the structs involved cannot fail.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("whatif: marshal: %v", err))
	}
	return b
}

// renderText renders tables to the CLI's TSV byte stream.
func renderText(tables ...*basereport.Table) (string, error) {
	var b strings.Builder
	err := EmitTables(&b, true, tables...)
	return b.String(), err
}

// Compute executes one validated query synchronously, outside the session
// queue — the path the HTTP workers, benchmarks and embedding callers all
// share. The bool result reports whether the baseline came from the cache.
func (s *Server) Compute(q *Query) (*Report, bool, error) {
	if (q.Spec == nil) == (len(q.Trace) == 0) {
		return nil, false, badRequest(fmt.Errorf("whatif: a query needs exactly one of an inline scenario or an uploaded trace"))
	}
	if q.Spec != nil {
		return s.computeScenario(q)
	}
	return s.computeTrace(q)
}

// scenarioBaseline is the cached unit of a scenario query: the fully
// rendered baseline arm plus the δ-graph the Pareto rows measure against.
type scenarioBaseline struct {
	arm   Arm
	graph *core.DeltaGraph
	names []string
	size  int64
}

// computeScenario runs baseline + arms for an inline scenario. The
// baseline resolves through the cache (slot 0) while the mitigation arms
// run as full scenario sweeps; all slots share one Runner pool.
func (s *Server) computeScenario(q *Query) (*Report, bool, error) {
	spec := *q.Spec
	if q.Smoke {
		spec = spec.Smoke()
	}
	base := spec
	base.QoS = &scenario.QoS{Scheduler: qos.Off.String()}
	cfg, _, err := base.Build(q.Backend)
	if err != nil {
		return nil, false, badRequest(err)
	}
	key := cacheKey("scenario", q.Shards, mustJSON(base), mustJSON(cfg))
	pool := core.Runner{Parallelism: s.cfg.Jobs, Shards: q.Shards}

	armSpecs := make([]scenario.Spec, len(q.Arms))
	for i, k := range q.Arms {
		as := spec
		as.QoS = &scenario.QoS{Scheduler: k.String()}
		armSpecs[i] = as
	}
	results := make([]*scenario.Result, len(q.Arms))
	errs := make([]error, len(q.Arms)+1)
	var bl *scenarioBaseline
	var hit bool
	// Slot 0 resolves the baseline (cache or compute); slots 1.. run the
	// mitigation arms. Each slot writes its own index, so results are
	// byte-identical at any parallelism.
	outer := core.Runner{Parallelism: s.cfg.Jobs}
	outer.ForEach(len(q.Arms)+1, func(i int) {
		if i == 0 {
			v, h, err := s.cache.Do(key, func() (any, int64, error) {
				res, err := scenario.Run(base, q.Backend, pool)
				if err != nil {
					return nil, 0, badRequest(err)
				}
				b, err := newScenarioBaseline(res)
				if err != nil {
					return nil, 0, err
				}
				return b, b.size, nil
			})
			if err == nil {
				bl, hit = v.(*scenarioBaseline), h
			}
			errs[0] = err
			return
		}
		results[i-1], errs[i] = scenario.Run(armSpecs[i-1], q.Backend, pool)
	})
	for _, e := range errs {
		if e != nil {
			return nil, false, e
		}
	}

	schemes := []core.Scheme{{Name: qos.Off.String(), QoS: qos.Params{Kind: qos.Off}}}
	graphs := []*core.DeltaGraph{bl.graph}
	arms := []Arm{bl.arm}
	for i, k := range q.Arms {
		a, err := scenarioArm(k.String(), results[i])
		if err != nil {
			return nil, false, err
		}
		arms = append(arms, a)
		schemes = append(schemes, core.Scheme{Name: k.String(), QoS: qos.Params{Kind: k}})
		graphs = append(graphs, results[i].Graph)
	}
	sweep := &core.Sweep{Schemes: schemes, Graphs: graphs}
	rows := make([]ParetoRow, 0, len(schemes))
	for _, r := range sweep.Pareto() {
		rows = append(rows, ParetoRow{
			Scheme: r.Name, PeakIF: r.PeakIF, DIFPct: r.IFReductionPct,
			Unfairness: r.Unfairness, AggMBps: r.AggBps / 1e6, TPCostPct: r.TPCostPct,
		})
	}
	ptext, err := renderText(qosreport.RenderPareto(
		fmt.Sprintf("what-if Pareto: %s on %s", spec.Name, q.Backend), sweep))
	if err != nil {
		return nil, false, err
	}
	return &Report{
		Kind: "scenario", Name: spec.Name, Backend: q.Backend.String(),
		Apps: bl.names, Arms: arms, Pareto: rows, ParetoText: ptext,
	}, hit, nil
}

// newScenarioBaseline renders the baseline arm and sizes the cached unit
// (JSON encoding length — a faithful proxy for retained heap, since both
// the arm and the graph are plain data).
func newScenarioBaseline(res *scenario.Result) (*scenarioBaseline, error) {
	arm, err := scenarioArm(qos.Off.String(), res)
	if err != nil {
		return nil, err
	}
	return &scenarioBaseline{
		arm:   arm,
		graph: res.Graph,
		names: append([]string(nil), res.Matrix.Names...),
		size:  int64(len(mustJSON(arm)) + len(mustJSON(res.Graph))),
	}, nil
}

// scenarioArm builds one scenario arm: the CLI byte stream (per-run tables
// plus the invocation-level summary) and the structured numbers.
func scenarioArm(scheme string, res *scenario.Result) (Arm, error) {
	runText, err := ScenarioRunText(res, true)
	if err != nil {
		return Arm{}, err
	}
	sumText, err := ScenarioSummaryText([]*scenario.Result{res}, true)
	if err != nil {
		return Arm{}, err
	}
	a := Arm{
		Scheme: scheme,
		Text:   runText + sumText,
		AloneS: make([]float64, len(res.Graph.Alone)),
		Matrix: res.Matrix.Cell,
	}
	for i, t := range res.Graph.Alone {
		a.AloneS[i] = t.Seconds()
	}
	for _, p := range res.Graph.Points {
		pt := Point{
			DeltaS:   p.Delta.Seconds(),
			ElapsedS: make([]float64, len(p.Elapsed)),
			IF:       p.IF,
			Drops:    p.Diag.PortDrops,
			Timeouts: p.Diag.Timeouts,
			Seeks:    p.Diag.DeviceSeeks,
		}
		for i, e := range p.Elapsed {
			pt.ElapsedS[i] = e.Seconds()
		}
		a.Points = append(a.Points, pt)
	}
	return a, nil
}

// traceBaseline is the cached unit of a trace query: the rendered baseline
// arm plus the replayed elapsed vector and aggregate throughput the
// counterfactual arms measure against.
type traceBaseline struct {
	arm     Arm
	elapsed []sim.Time
	agg     float64
	names   []string
	size    int64
}

// computeTrace runs baseline + counterfactual arms for an uploaded
// recording: the baseline replays the recorded platform (and must
// round-trip bit-for-bit, per the trace package's determinism contract);
// each arm replays under one QoS scheduler.
func (s *Server) computeTrace(q *Query) (*Report, bool, error) {
	t, err := trace.Read(bytes.NewReader(q.Trace))
	if err != nil {
		return nil, false, badRequest(err)
	}
	label := q.Label
	if label == "" {
		label = "uploaded.trace"
	}
	cfg := t.Header.Cfg
	// The label lands in rendered table titles, so it is part of the
	// baseline's identity: same bytes under a different name recompute.
	key := cacheKey("trace", q.Shards, []byte(label), q.Trace, mustJSON(cfg))

	reps := make([]*trace.ReplayResult, len(q.Arms))
	errs := make([]error, len(q.Arms)+1)
	var bl *traceBaseline
	var hit bool
	outer := core.Runner{Parallelism: s.cfg.Jobs}
	outer.ForEach(len(q.Arms)+1, func(i int) {
		if i == 0 {
			v, h, err := s.cache.Do(key, func() (any, int64, error) {
				rep, err := trace.ReplayOn(t, cfg)
				if err != nil {
					return nil, 0, badRequest(err)
				}
				if !rep.Identical() {
					return nil, 0, fmt.Errorf("whatif: baseline replay of %s diverged from the recording", label)
				}
				return newTraceBaseline(label, rep, t)
			})
			if err == nil {
				bl, hit = v.(*traceBaseline), h
			}
			errs[0] = err
			return
		}
		c := cfg
		c.Srv.QoS = qos.Params{Kind: q.Arms[i-1]}
		reps[i-1], errs[i] = trace.ReplayOn(t, c)
	})
	for _, e := range errs {
		if e != nil {
			return nil, false, e
		}
	}

	arms := []Arm{bl.arm}
	rows := []ParetoRow{{Scheme: qos.Off.String(), PeakIF: 1, AggMBps: bl.agg / 1e6}}
	for i, k := range q.Arms {
		a, peak, agg, err := traceArm(label, k.String(), reps[i], t, bl)
		if err != nil {
			return nil, false, err
		}
		arms = append(arms, a)
		row := ParetoRow{Scheme: k.String(), PeakIF: peak, DIFPct: (1 - peak) * 100, AggMBps: agg / 1e6}
		if bl.agg > 0 {
			row.TPCostPct = (bl.agg - agg) / bl.agg * 100
		}
		rows = append(rows, row)
	}
	pt := basereport.New(fmt.Sprintf("what-if Pareto: %s (counterfactual replay)", label),
		"scheduler", "peak_IF", "dIF_pct", "agg_MBps", "tp_cost_pct")
	for _, r := range rows {
		pt.Add(r.Scheme, r.PeakIF, r.DIFPct, r.AggMBps, r.TPCostPct)
	}
	ptext, err := renderText(pt)
	if err != nil {
		return nil, false, err
	}
	return &Report{
		Kind: "trace", Name: label,
		Apps: bl.names, Arms: arms, Pareto: rows, ParetoText: ptext,
	}, hit, nil
}

// newTraceBaseline renders the verification-replay arm and captures the
// per-app elapsed vector the counterfactual arms divide by.
func newTraceBaseline(label string, rep *trace.ReplayResult, t *trace.Trace) (*traceBaseline, int64, error) {
	text, err := ReplayText(label, "", rep, t, true)
	if err != nil {
		return nil, 0, err
	}
	identical := true
	bl := &traceBaseline{
		arm:     Arm{Scheme: qos.Off.String(), Text: text, Identical: &identical},
		elapsed: make([]sim.Time, len(rep.Apps)),
		names:   make([]string, len(rep.Apps)),
	}
	for i, a := range rep.Apps {
		bl.elapsed[i] = a.Elapsed
		bl.agg += a.Throughput
		bl.names[i] = a.Name
		bl.arm.TraceApps = append(bl.arm.TraceApps, TraceApp{
			Name:      a.Name,
			RecordedS: rep.Recorded[i].Elapsed().Seconds(),
			ReplayedS: a.Elapsed.Seconds(),
			IF:        1,
		})
	}
	bl.size = int64(len(mustJSON(bl.arm))) + int64(16*len(bl.elapsed)) + 64
	return bl, bl.size, nil
}

// traceArm builds one counterfactual arm and its Pareto inputs (peak IF
// against the baseline replay, summed throughput).
func traceArm(label, scheme string, rep *trace.ReplayResult, t *trace.Trace, bl *traceBaseline) (Arm, float64, float64, error) {
	text, err := ReplayText(label, scheme, rep, t, true)
	if err != nil {
		return Arm{}, 0, 0, err
	}
	a := Arm{Scheme: scheme, Text: text}
	var peak, agg float64
	for i, app := range rep.Apps {
		ta := TraceApp{
			Name:      app.Name,
			RecordedS: rep.Recorded[i].Elapsed().Seconds(),
			ReplayedS: app.Elapsed.Seconds(),
		}
		if bl.elapsed[i] > 0 {
			ta.IF = float64(app.Elapsed) / float64(bl.elapsed[i])
		}
		if ta.IF > peak {
			peak = ta.IF
		}
		agg += app.Throughput
		a.TraceApps = append(a.TraceApps, ta)
	}
	return a, peak, agg, nil
}
