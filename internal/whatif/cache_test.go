package whatif

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fill computes-and-caches one entry, failing the test on error.
func fill(t *testing.T, c *Cache, key string, size int64, computes *atomic.Int32) (any, bool) {
	t.Helper()
	v, hit, err := c.Do(key, func() (any, int64, error) {
		if computes != nil {
			computes.Add(1)
		}
		return "val:" + key, size, nil
	})
	if err != nil {
		t.Fatalf("Do(%q): %v", key, err)
	}
	return v, hit
}

func TestCacheLRUEvictionRespectsBudget(t *testing.T) {
	c := NewCache(100)
	var computes atomic.Int32

	fill(t, c, "a", 40, &computes)
	fill(t, c, "b", 40, &computes)
	fill(t, c, "c", 40, &computes) // 120 > 100: evicts a (LRU)

	st := c.Stats()
	if st.UsedBytes > st.BudgetBytes {
		t.Fatalf("used %d exceeds budget %d", st.UsedBytes, st.BudgetBytes)
	}
	if st.Entries != 2 || st.Evictions != 1 || st.UsedBytes != 80 {
		t.Fatalf("after 3 inserts: entries=%d evictions=%d used=%d, want 2/1/80", st.Entries, st.Evictions, st.UsedBytes)
	}

	// a was evicted: recomputes. b and c are resident: hits.
	if _, hit := fill(t, c, "a", 40, &computes); hit {
		t.Fatal("evicted entry served as a hit")
	}
	// Inserting a evicted b (LRU after c touched nothing... order: b,c,a front).
	// Touch c (hit), then insert d: evicts the current LRU, never the fresh entry.
	if _, hit := fill(t, c, "c", 40, &computes); !hit {
		t.Fatal("resident entry missed")
	}
	fill(t, c, "d", 40, &computes)
	st = c.Stats()
	if st.UsedBytes > 100 {
		t.Fatalf("used %d exceeds budget after churn", st.UsedBytes)
	}
	if _, hit := fill(t, c, "c", 40, &computes); !hit {
		t.Fatal("most-recently-used entry was evicted instead of the LRU one")
	}
	if got := computes.Load(); got != 5 {
		t.Fatalf("computes = %d, want 5 (a,b,c cold, a recomputed, d cold)", got)
	}
}

func TestCacheOversizeEntryNotRetained(t *testing.T) {
	c := NewCache(100)
	fill(t, c, "small", 40, nil)
	v, hit := fill(t, c, "huge", 150, nil)
	if v != "val:huge" || hit {
		t.Fatalf("oversize entry: got (%v, hit=%v), want computed value, no hit", v, hit)
	}
	st := c.Stats()
	if st.Entries != 1 || st.UsedBytes != 40 || st.Evictions != 0 {
		t.Fatalf("oversize entry disturbed the cache: %+v", st)
	}
	if _, hit := fill(t, c, "huge", 150, nil); hit {
		t.Fatal("oversize entry was retained")
	}
}

func TestCacheDisabled(t *testing.T) {
	for _, budget := range []int64{0, -1} {
		c := NewCache(budget)
		var computes atomic.Int32
		fill(t, c, "k", 10, &computes)
		if _, hit := fill(t, c, "k", 10, &computes); hit {
			t.Fatalf("budget %d: disabled cache served a hit", budget)
		}
		if computes.Load() != 2 {
			t.Fatalf("budget %d: computes = %d, want 2", budget, computes.Load())
		}
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(100)
	boom := errors.New("boom")
	if _, _, err := c.Do("k", func() (any, int64, error) { return nil, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("Do error = %v, want boom", err)
	}
	var computes atomic.Int32
	if _, hit := fill(t, c, "k", 10, &computes); hit || computes.Load() != 1 {
		t.Fatal("failed computation was cached")
	}
}

// TestCacheCoalesce pins the singleflight contract: N concurrent Do calls
// for one key pay for exactly one computation and count N-1 hits.
func TestCacheCoalesce(t *testing.T) {
	c := NewCache(1 << 20)
	const N = 8
	var computes atomic.Int32
	entered := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan any, 1)
	go func() {
		v, _, _ := c.Do("k", func() (any, int64, error) {
			computes.Add(1)
			close(entered)
			<-release
			return "shared", 8, nil
		})
		leaderDone <- v
	}()
	<-entered // the leader owns the in-flight slot before any follower starts

	var wg sync.WaitGroup
	vals := make([]any, N-1)
	hits := make([]bool, N-1)
	for i := 0; i < N-1; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := c.Do("k", func() (any, int64, error) {
				computes.Add(1)
				return "follower", 8, nil
			})
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
			}
			vals[i], hits[i] = v, hit
		}(i)
	}
	close(release)
	wg.Wait()
	if v := <-leaderDone; v != "shared" {
		t.Fatalf("leader value = %v", v)
	}
	for i := range vals {
		if vals[i] != "shared" || !hits[i] {
			t.Fatalf("follower %d: (%v, hit=%v), want coalesced hit on \"shared\"", i, vals[i], hits[i])
		}
	}
	if computes.Load() != 1 {
		t.Fatalf("computes = %d, want 1 for %d concurrent callers", computes.Load(), N)
	}
	if st := c.Stats(); st.Hits != N-1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want %d hits / 1 miss", st, N-1)
	}
}

// TestCachePanicReleasesWaiters pins the cleanup path: a panicking
// computation must not strand coalesced waiters or wedge the key.
func TestCachePanicReleasesWaiters(t *testing.T) {
	c := NewCache(1 << 20)
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate")
			}
		}()
		c.Do("k", func() (any, int64, error) {
			close(entered)
			<-release
			panic("boom")
		})
	}()
	<-entered

	follower := make(chan error, 1)
	go func() {
		_, _, err := c.Do("k", func() (any, int64, error) { return "fresh", 1, nil })
		follower <- err
	}()
	time.Sleep(10 * time.Millisecond) // give the follower time to join the flight
	close(release)

	// Either outcome is sound: the follower was coalesced and got the
	// panic error, or it arrived after cleanup and computed fresh. What it
	// must never do is block forever.
	select {
	case <-follower:
	case <-time.After(5 * time.Second):
		t.Fatal("follower stranded after leader panic")
	}

	// The key must be usable again.
	v, _, err := c.Do("k", func() (any, int64, error) { return "after", 1, nil })
	if err != nil || (v != "after" && v != "fresh") {
		t.Fatalf("key wedged after panic: v=%v err=%v", v, err)
	}
}

func TestCacheKeyDistinct(t *testing.T) {
	// Length-prefixed parts: ("ab","c") and ("a","bc") must not collide.
	a := cacheKey("k", 1, []byte("ab"), []byte("c"))
	b := cacheKey("k", 1, []byte("a"), []byte("bc"))
	if a == b {
		t.Fatal("part boundaries not encoded: concatenation collision")
	}
	if cacheKey("k", 1, []byte("x")) == cacheKey("k", 2, []byte("x")) {
		t.Fatal("shard count not part of the key")
	}
	if cacheKey("scenario", 1, []byte("x")) == cacheKey("trace", 1, []byte("x")) {
		t.Fatal("query kind not part of the key")
	}
	for i, k := range []string{a, b} {
		if len(k) != 64 {
			t.Fatalf("key %d: %q is not a hex sha256", i, k)
		}
	}
}
