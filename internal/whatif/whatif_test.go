package whatif

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/cluster"
	"repro/internal/qos"
	"repro/internal/scenario"
)

// tinySpec is a deliberately small two-application scenario: one δ point,
// a few MB of I/O, fast enough to run several arms per test.
func tinySpec() scenario.Spec {
	return scenario.Spec{
		Name:    "unit-tiny",
		Servers: 2,
		DeltaS:  []float64{0},
		Apps: []scenario.App{
			{Name: "bulk", Procs: 4, BlockMB: 4},
			{Name: "strided", Procs: 2, Pattern: "strided", BlockMB: 2, TransferKB: 256},
		},
	}
}

// recordTinyTrace records tinySpec's δ=0 co-run and returns the IOTRACE1
// bytes.
func recordTinyTrace(t *testing.T) []byte {
	t.Helper()
	tr, _, err := scenario.Record(tinySpec(), cluster.HDD)
	if err != nil {
		t.Fatalf("recording trace: %v", err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatalf("encoding trace: %v", err)
	}
	return buf.Bytes()
}

func mustReportJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return b
}

func TestComputeScenario(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	spec := tinySpec()
	q := &Query{Spec: &spec, Backend: cluster.HDD, Arms: []qos.Kind{qos.FairShare, qos.TokenBucket}}

	rep, hit, err := s.Compute(q)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if hit {
		t.Fatal("cold compute reported a cache hit")
	}
	if rep.Kind != "scenario" || rep.Name != "unit-tiny" || rep.Backend != "hdd" {
		t.Fatalf("report header = %s/%s/%s", rep.Kind, rep.Name, rep.Backend)
	}
	if want := []string{"bulk", "strided"}; len(rep.Apps) != 2 || rep.Apps[0] != want[0] || rep.Apps[1] != want[1] {
		t.Fatalf("apps = %v, want %v", rep.Apps, want)
	}
	if len(rep.Arms) != 3 || rep.Arms[0].Scheme != "off" || rep.Arms[1].Scheme != "fairshare" || rep.Arms[2].Scheme != "tokenbucket" {
		t.Fatalf("arm order wrong: %v", []string{rep.Arms[0].Scheme, rep.Arms[1].Scheme, rep.Arms[2].Scheme})
	}
	for i, a := range rep.Arms {
		if a.Text == "" || len(a.Points) != 1 || len(a.AloneS) != 2 {
			t.Fatalf("arm %d (%s) incomplete: text=%d bytes, %d points, %d alone", i, a.Scheme, len(a.Text), len(a.Points), len(a.AloneS))
		}
	}
	if len(rep.Pareto) != 3 || rep.Pareto[0].Scheme != "off" || rep.ParetoText == "" {
		t.Fatalf("pareto incomplete: %+v", rep.Pareto)
	}

	// Second identical query: baseline from the cache, bytes unchanged.
	rep2, hit2, err := s.Compute(q)
	if err != nil {
		t.Fatalf("Compute (warm): %v", err)
	}
	if !hit2 {
		t.Fatal("second identical query missed the cache")
	}
	if !bytes.Equal(mustReportJSON(t, rep), mustReportJSON(t, rep2)) {
		t.Fatal("cache-hit report differs from the cold one")
	}
}

// TestComputeScenarioShardInvariance pins the determinism contract the
// service inherits from the kernel: the shard override changes the cache
// key but never a byte of the report.
func TestComputeScenarioShardInvariance(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	spec := tinySpec()
	arms := []qos.Kind{qos.FairShare}

	serial, _, err := s.Compute(&Query{Spec: &spec, Backend: cluster.HDD, Arms: arms})
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	sharded, hit, err := s.Compute(&Query{Spec: &spec, Backend: cluster.HDD, Arms: arms, Shards: 2})
	if err != nil {
		t.Fatalf("sharded: %v", err)
	}
	if hit {
		t.Fatal("different shard count must be a different cache key")
	}
	if !bytes.Equal(mustReportJSON(t, serial), mustReportJSON(t, sharded)) {
		t.Fatal("sharded report differs from serial — determinism contract broken")
	}
}

func TestComputeTrace(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	raw := recordTinyTrace(t)
	q := &Query{Trace: raw, Label: "tiny.trace", Arms: []qos.Kind{qos.FairShare}}

	rep, hit, err := s.Compute(q)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if hit {
		t.Fatal("cold trace compute reported a hit")
	}
	if rep.Kind != "trace" || rep.Name != "tiny.trace" {
		t.Fatalf("report header = %s/%s", rep.Kind, rep.Name)
	}
	if len(rep.Arms) != 2 {
		t.Fatalf("arms = %d, want baseline + fairshare", len(rep.Arms))
	}
	base := rep.Arms[0]
	if base.Scheme != "off" || base.Identical == nil || !*base.Identical {
		t.Fatalf("baseline arm not a verified round trip: %+v", base)
	}
	for _, ta := range base.TraceApps {
		if ta.IF != 1 {
			t.Fatalf("baseline IF %v for %s, want 1", ta.IF, ta.Name)
		}
	}
	if rep.Pareto[0].PeakIF != 1 || rep.Pareto[0].Unfairness != 0 {
		t.Fatalf("trace pareto baseline row: %+v", rep.Pareto[0])
	}

	rep2, hit2, err := s.Compute(q)
	if err != nil || !hit2 {
		t.Fatalf("warm trace compute: hit=%v err=%v", hit2, err)
	}
	if !bytes.Equal(mustReportJSON(t, rep), mustReportJSON(t, rep2)) {
		t.Fatal("cache-hit trace report differs from the cold one")
	}

	// A different display label renders different table titles, so it must
	// be a different baseline identity.
	_, hit3, err := s.Compute(&Query{Trace: raw, Label: "other.trace", Arms: []qos.Kind{qos.FairShare}})
	if err != nil {
		t.Fatalf("relabeled compute: %v", err)
	}
	if hit3 {
		t.Fatal("same bytes under a different label served from the cache")
	}
}

func TestComputeRejects(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	spec := tinySpec()
	cases := []struct {
		name string
		q    *Query
	}{
		{"neither spec nor trace", &Query{}},
		{"both spec and trace", &Query{Spec: &spec, Trace: []byte("IOTRACE1")}},
		{"garbage trace", &Query{Trace: []byte("not a trace")}},
	}
	for _, tc := range cases {
		if _, _, err := s.Compute(tc.q); err == nil || !IsBadRequest(err) {
			t.Fatalf("%s: err = %v, want bad request", tc.name, err)
		}
	}
}

func TestParseArms(t *testing.T) {
	def, err := ParseArms(nil)
	if err != nil || len(def) != 3 {
		t.Fatalf("default arms = %v, %v", def, err)
	}
	if _, err := ParseArms([]string{"off"}); err == nil {
		t.Fatal("arm \"off\" accepted")
	}
	if _, err := ParseArms([]string{"fairshare", "fairshare"}); err == nil {
		t.Fatal("duplicate arm accepted")
	}
	if _, err := ParseArms([]string{"nope"}); err == nil {
		t.Fatal("unknown arm accepted")
	}
	one, err := ParseArms([]string{"controller"})
	if err != nil || len(one) != 1 || one[0] != qos.Controller {
		t.Fatalf("single arm = %v, %v", one, err)
	}
}
