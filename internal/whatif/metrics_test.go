package whatif

import (
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

// scrapeMetrics fetches /metrics and validates the transport envelope.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading metrics: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	return string(body)
}

// Exposition-format line shapes: HELP/TYPE comments and sample lines
// (metric name, optional label set, float value).
var (
	promComment = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	promSample  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? -?[0-9.eE+-]+$`)
)

// checkExposition line-parses a scrape: every line must be a well-formed
// comment or sample, and every sample's family must be declared first.
func checkExposition(t *testing.T, page string) {
	t.Helper()
	declared := map[string]bool{}
	for i, line := range strings.Split(strings.TrimRight(page, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "#"):
			if !promComment.MatchString(line) {
				t.Fatalf("line %d: malformed comment %q", i+1, line)
			}
			declared[strings.Fields(line)[2]] = true
		case promSample.MatchString(line):
			name := line
			if j := strings.IndexAny(line, "{ "); j >= 0 {
				name = line[:j]
			}
			if !declared[name] {
				t.Fatalf("line %d: sample %q before its HELP/TYPE", i+1, line)
			}
		default:
			t.Fatalf("line %d: malformed sample %q", i+1, line)
		}
	}
}

// TestMetricsExposition pins the cold scrape: parseable text exposition
// carrying every serving counter and no last-run series yet.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	page := scrapeMetrics(t, ts.URL)
	checkExposition(t, page)
	for _, want := range []string{
		"whatifd_uptime_seconds ",
		"whatifd_sessions_total 0",
		"whatifd_active_sessions 0",
		"whatifd_queue_depth 0",
		"whatifd_queue_capacity 64",
		"whatifd_rejected_total 0",
		"whatifd_cache_hits_total 0",
		"whatifd_cache_misses_total 0",
		"whatifd_cache_evictions_total 0",
		"whatifd_cache_entries 0",
		"whatifd_cache_used_bytes 0",
		"whatifd_cache_budget_bytes ",
	} {
		if !strings.Contains(page, "\n"+want) {
			t.Errorf("scrape is missing %q", want)
		}
	}
	if strings.Contains(page, "whatif_last_run_info") {
		t.Error("cold scrape already carries last-run metrics")
	}
}

// TestMetricsAfterSession pins the last-run series: after one successful
// scenario session the scrape carries the run identity, a per-app IF and
// elapsed sample for every app, and a Pareto row per arm.
func TestMetricsAfterSession(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, out := postJSON(t, ts.URL+"/v1/whatif", scenarioEnvelope(t, []string{"fairshare"}, true))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session failed: status %d: %s", resp.StatusCode, out)
	}
	page := scrapeMetrics(t, ts.URL)
	checkExposition(t, page)
	for _, want := range []string{
		`whatif_last_run_info{kind="scenario",name="unit-tiny",backend="hdd"} 1`,
		`whatif_last_run_app_interference_factor{app="bulk"} `,
		`whatif_last_run_app_interference_factor{app="strided"} `,
		`whatif_last_run_app_elapsed_seconds{app="bulk"} `,
		`whatif_last_run_app_elapsed_seconds{app="strided"} `,
		`whatif_last_run_arm_peak_if{scheme="off"} `,
		`whatif_last_run_arm_peak_if{scheme="fairshare"} `,
		`whatif_last_run_arm_agg_mbps{scheme="off"} `,
		`whatif_last_run_arm_agg_mbps{scheme="fairshare"} `,
	} {
		if !strings.Contains(page, "\n"+want) {
			t.Errorf("scrape is missing %q", want)
		}
	}
	if !strings.Contains(page, "whatifd_sessions_total 1") {
		t.Error("session counter did not advance")
	}
}

// TestPromEscape pins label-value escaping for the three special bytes.
func TestPromEscape(t *testing.T) {
	var p promBuf
	p.family("m", "gauge", "h")
	p.sample("m", [][2]string{{"l", "a\\b\"c\nd"}}, 1)
	want := "# HELP m h\n# TYPE m gauge\nm{l=\"a\\\\b\\\"c\\nd\"} 1\n"
	if got := p.b.String(); got != want {
		t.Fatalf("escaped sample = %q, want %q", got, want)
	}
}

// TestHealthzUptime pins the healthz extension: started_at parses as
// RFC 3339 and uptime_s advances monotonically, with the pre-existing
// fields intact (getHealth decodes them).
func TestHealthzUptime(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	h := getHealth(t, ts.URL)
	if h.Status != "ok" || h.QueueCap != 64 {
		t.Fatalf("pre-existing health fields regressed: %+v", h)
	}
	started, err := time.Parse(time.RFC3339Nano, h.StartedAt)
	if err != nil {
		t.Fatalf("started_at %q: %v", h.StartedAt, err)
	}
	if d := time.Since(started); d < 0 || d > time.Hour {
		t.Fatalf("started_at %v is not recent", started)
	}
	if h.UptimeS <= 0 {
		t.Fatalf("uptime_s = %v, want > 0", h.UptimeS)
	}
	h2 := getHealth(t, ts.URL)
	if h2.UptimeS < h.UptimeS {
		t.Fatalf("uptime went backwards: %v then %v", h.UptimeS, h2.UptimeS)
	}
	if h2.StartedAt != h.StartedAt {
		t.Fatalf("started_at drifted: %q then %q", h.StartedAt, h2.StartedAt)
	}
}
