package whatif

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/scenario"
)

// Config sizes one what-if server. Zero values select serving defaults.
type Config struct {
	// CacheBytes is the baseline cache budget (default 256 MiB; <= -1
	// disables caching; 0 selects the default).
	CacheBytes int64
	// QueueLen bounds the session queue; a full queue answers HTTP 429
	// with Retry-After instead of buffering without limit (default 64).
	QueueLen int
	// Workers is the number of sessions executing concurrently (default 2).
	Workers int
	// Jobs is the core.Runner parallelism inside one session
	// (0 = GOMAXPROCS).
	Jobs int
	// Shards is the default event-kernel shard override for queries that
	// do not set their own (0 = each spec's knob). Results are
	// bit-identical at any value.
	Shards int
	// MaxBody caps request bodies — trace uploads and scenario specs —
	// before any decoding (default 64 MiB).
	MaxBody int64

	// gate, when non-nil, blocks every session start until the channel is
	// closed — a deterministic brake for queue/backpressure tests.
	gate <-chan struct{}
}

// Server is the what-if service: HTTP handlers in front of a bounded
// session queue, a worker pool executing sessions, and the baseline cache.
// Create with New, expose via Handler, stop with Close (which drains every
// queued session before returning — the graceful-shutdown half of
// cmd/whatifd's SIGTERM handling).
type Server struct {
	cfg   Config
	cache *Cache
	mux   *http.ServeMux
	queue chan *job
	wg    sync.WaitGroup

	drainMu  sync.RWMutex // guards draining against submit
	draining bool
	closed   sync.Once

	mu        sync.Mutex // guards jobs and per-job state transitions
	jobs      map[string]*job
	doneOrder []string

	nextID   atomic.Uint64
	sessions atomic.Uint64
	rejected atomic.Uint64
	active   atomic.Int64

	started time.Time              // process-local; UptimeS is monotonic via time.Since
	last    atomic.Pointer[Report] // most recent successful session, for /metrics
}

// job is one queued session.
type job struct {
	id   string
	q    *Query
	wait bool
	done chan struct{}

	// Guarded by Server.mu until done is closed, immutable after.
	status   string // "queued", "running", "done", "failed"
	result   []byte
	cacheHit bool
	err      error
}

// maxDoneJobs bounds the finished-job table; the oldest results fall off.
const maxDoneJobs = 4096

// New creates a server and starts its session workers. Callers own the
// lifecycle: serve Handler() somewhere, then Close() to drain.
func New(cfg Config) *Server {
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 256 << 20
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 64 << 20
	}
	s := &Server{
		cfg:     cfg,
		cache:   NewCache(cfg.CacheBytes),
		mux:     http.NewServeMux(),
		queue:   make(chan *job, cfg.QueueLen),
		jobs:    make(map[string]*job),
		started: time.Now(),
	}
	s.mux.HandleFunc("POST /v1/whatif", s.handleScenario)
	s.mux.HandleFunc("POST /v1/whatif/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the baseline cache (stats for health checks and tests).
func (s *Server) Cache() *Cache { return s.cache }

// Close drains the server: no new sessions are accepted (submit answers
// 503), every already-queued session runs to completion, and the workers
// exit. Safe to call more than once. Callers fronting the server with an
// http.Server should Shutdown that first so no handler is mid-submit.
func (s *Server) Close() {
	s.closed.Do(func() {
		s.drainMu.Lock()
		s.draining = true
		s.drainMu.Unlock()
		close(s.queue)
		s.wg.Wait()
	})
}

// submit offers a job to the bounded queue without blocking. The RLock
// pairs with Close's exclusive section so a submit can never race the
// queue close.
func (s *Server) submit(j *job) (accepted, draining bool) {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return false, true
	}
	select {
	case s.queue <- j:
		return true, false
	default:
		return false, false
	}
}

// worker drains the session queue until Close.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one session. Panics (impossible for validated queries,
// but sims panic on contract violations) fail the job instead of killing
// the daemon.
func (s *Server) runJob(j *job) {
	s.active.Add(1)
	defer s.active.Add(-1)
	s.mu.Lock()
	j.status = "running"
	s.mu.Unlock()
	if s.cfg.gate != nil {
		<-s.cfg.gate
	}
	defer func() {
		if r := recover(); r != nil {
			s.finish(j, nil, false, fmt.Errorf("whatif: session failed: %v", r))
		}
	}()
	rep, hit, err := s.Compute(j.q)
	if err != nil {
		s.finish(j, nil, false, err)
		return
	}
	s.last.Store(rep) // reports are immutable once computed; /metrics reads this
	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		s.finish(j, nil, false, err)
		return
	}
	s.finish(j, append(body, '\n'), hit, nil)
}

// finish publishes a job's outcome and prunes the oldest finished jobs.
func (s *Server) finish(j *job, result []byte, hit bool, err error) {
	s.mu.Lock()
	j.result, j.cacheHit, j.err = result, hit, err
	if err != nil {
		j.status = "failed"
	} else {
		j.status = "done"
	}
	s.doneOrder = append(s.doneOrder, j.id)
	for len(s.doneOrder) > maxDoneJobs {
		delete(s.jobs, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
	s.mu.Unlock()
	close(j.done)
}

// scenarioRequest is the POST /v1/whatif envelope.
type scenarioRequest struct {
	// Scenario is a scenario spec (SCENARIOS.md format, strict).
	Scenario json.RawMessage `json:"scenario"`
	// Backend picks the single backend to run on (default: the spec's
	// pinned backend, else hdd).
	Backend string `json:"backend,omitempty"`
	// Smoke shrinks the scenario to the CI smoke grid.
	Smoke bool `json:"smoke,omitempty"`
	// Shards overrides the event-kernel shard count (0 = server default,
	// then the spec's own knob). Results are bit-identical at any value.
	Shards int `json:"shards,omitempty"`
	// Arms names the mitigation schemes to sweep (default: fairshare,
	// tokenbucket, controller). "off" always runs as the baseline.
	Arms []string `json:"arms,omitempty"`
	// Wait selects the synchronous fast path (response = the report).
	// Default: true for smoke-sized requests, false otherwise (202 + job
	// ID to poll).
	Wait *bool `json:"wait,omitempty"`
}

// handleScenario serves POST /v1/whatif: an inline scenario spec plus
// sweep options.
func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	var env scenarioRequest
	if err := dec.Decode(&env); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(env.Scenario) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing \"scenario\" (an inline scenario spec; POST traces to /v1/whatif/trace)"))
		return
	}
	spec, err := scenario.Parse(env.Scenario)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	switch {
	case spec.QoS != nil:
		err = fmt.Errorf("scenario %q: the arms list defines the schemes; drop the qos block", spec.Name)
	case spec.Trace != nil:
		err = fmt.Errorf("scenario %q: POST recorded traces to /v1/whatif/trace", spec.Name)
	case spec.Faults != nil, spec.Population != nil:
		err = fmt.Errorf("scenario %q: fault and population scenarios are not served yet", spec.Name)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	bname := env.Backend
	if bname == "" {
		bname = spec.Backend
	}
	if bname == "" {
		bname = "hdd"
	}
	backend, err := cluster.ParseBackend(bname)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	arms, err := ParseArms(env.Arms)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if env.Shards < 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("shards must be >= 0, got %d", env.Shards))
		return
	}
	shards := env.Shards
	if shards == 0 {
		shards = s.cfg.Shards
	}
	wait := env.Smoke
	if env.Wait != nil {
		wait = *env.Wait
	}
	q := &Query{Spec: &spec, Backend: backend, Smoke: env.Smoke, Shards: shards, Arms: arms}
	s.dispatch(w, q, wait)
}

// handleTrace serves POST /v1/whatif/trace: a raw IOTRACE1 body with
// options in the query string (?name=label&arms=a,b&wait=0).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	name := r.URL.Query().Get("name")
	if len(name) > 256 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("name longer than 256 bytes"))
		return
	}
	var names []string
	if raw := r.URL.Query().Get("arms"); raw != "" {
		for _, n := range strings.Split(raw, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	arms, err := ParseArms(names)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	wait := true // replays are single simulations: the synchronous fast path
	if raw := r.URL.Query().Get("wait"); raw != "" {
		if wait, err = strconv.ParseBool(raw); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("wait: %w", err))
			return
		}
	}
	q := &Query{Trace: body, Label: name, Arms: arms}
	s.dispatch(w, q, wait)
}

// readBody enforces the request-body cap twice over: the declared
// Content-Length is rejected before a single byte is read (an
// attacker-controlled length cannot reserve memory — the service-side
// mirror of the trace reader's preallocation fix), and MaxBytesReader
// backstops chunked or lying encodings while reading.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.ContentLength > s.cfg.MaxBody {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body %d bytes exceeds the %d byte cap", r.ContentLength, s.cfg.MaxBody))
		return nil, false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errAs(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d byte cap", s.cfg.MaxBody))
		} else {
			httpError(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		}
		return nil, false
	}
	return body, true
}

// dispatch queues one session, then either waits for its result (the
// synchronous fast path) or answers 202 with a poll URL. A full queue is
// explicit backpressure: 429 plus Retry-After, nothing buffered.
func (s *Server) dispatch(w http.ResponseWriter, q *Query, wait bool) {
	j := &job{
		id:     fmt.Sprintf("job-%d", s.nextID.Add(1)),
		q:      q,
		wait:   wait,
		done:   make(chan struct{}),
		status: "queued",
	}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.mu.Unlock()
	accepted, draining := s.submit(j)
	if !accepted {
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
		if draining {
			httpError(w, http.StatusServiceUnavailable, fmt.Errorf("server is draining"))
			return
		}
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, fmt.Errorf("session queue full (%d queued), retry later", cap(s.queue)))
		return
	}
	s.sessions.Add(1)
	if !wait {
		writeJSON(w, http.StatusAccepted, map[string]string{
			"job":    j.id,
			"status": "queued",
			"poll":   "/v1/jobs/" + j.id,
		})
		return
	}
	<-j.done
	s.writeJobResult(w, j)
}

// handleJob serves GET /v1/jobs/{id}: the report once done, a status
// document while queued or running.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var status string
	if ok {
		status = j.status
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	if status != "done" && status != "failed" {
		writeJSON(w, http.StatusOK, map[string]string{"job": id, "status": status})
		return
	}
	s.writeJobResult(w, j)
}

// writeJobResult emits a finished job: the report bytes verbatim (so the
// synchronous and polled paths serve identical documents) with the cache
// disposition in a header, or the error.
func (s *Server) writeJobResult(w http.ResponseWriter, j *job) {
	if j.err != nil {
		code := http.StatusInternalServerError
		if IsBadRequest(j.err) {
			code = http.StatusBadRequest
		}
		httpError(w, code, j.err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if j.cacheHit {
		w.Header().Set("X-Whatif-Cache", "hit")
	} else {
		w.Header().Set("X-Whatif-Cache", "miss")
	}
	w.Write(j.result)
}

// Health is the /healthz document: liveness plus the serving counters.
// StartedAt and UptimeS extend the original document; every pre-existing
// field keeps its name, type and order, so old scrapers parse unchanged.
type Health struct {
	Status     string     `json:"status"`
	Sessions   uint64     `json:"sessions"`
	Active     int64      `json:"active"`
	QueueDepth int        `json:"queue_depth"`
	QueueCap   int        `json:"queue_cap"`
	Rejected   uint64     `json:"rejected"`
	Cache      CacheStats `json:"cache"`
	// StartedAt is the process start in RFC 3339 UTC (wall clock).
	StartedAt string `json:"started_at"`
	// UptimeS is seconds since StartedAt measured on the monotonic clock
	// (time.Since), so it keeps advancing through wall-clock steps.
	UptimeS float64 `json:"uptime_s"`
}

// Health snapshots the serving counters — the /healthz document, also
// published through expvar by cmd/whatifd.
func (s *Server) Health() Health {
	return Health{
		Status:     "ok",
		Sessions:   s.sessions.Load(),
		Active:     s.active.Load(),
		QueueDepth: len(s.queue),
		QueueCap:   cap(s.queue),
		Rejected:   s.rejected.Load(),
		Cache:      s.cache.Stats(),
		StartedAt:  s.started.UTC().Format(time.RFC3339Nano),
		UptimeS:    time.Since(s.started).Seconds(),
	}
}

// handleHealth serves GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Health())
}

// httpError answers with a JSON error envelope.
func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// writeJSON marshals v with the response indentation the report uses.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(w, "{\"error\": %q}\n", err.Error())
		return
	}
	w.Write(append(b, '\n'))
}

// errAs is errors.As without importing errors twice across files.
func errAs(err error, target any) bool {
	type unwrapper interface{ Unwrap() error }
	for err != nil {
		if mbe, ok := target.(**http.MaxBytesError); ok {
			if e, ok := err.(*http.MaxBytesError); ok {
				*mbe = e
				return true
			}
		}
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
