package whatif

import (
	"container/list"
	"fmt"
	"sync"
)

// Cache is the content-addressed baseline cache: key = sha256 over the
// workload identity (trace bytes or canonical spec JSON), the built
// cluster.Config and the shard count (see cacheKey), value = the fully
// computed baseline arm. Eviction is LRU under a byte budget — entry sizes
// are the JSON encoding of the stored baseline, a faithful proxy for the
// retained heap since the stored structs are plain data.
//
// Concurrent requests for the same key coalesce: the first caller computes
// while the rest wait for its result, so N simultaneous identical sessions
// pay for one baseline and count N-1 cache hits. An entry larger than the
// whole budget is returned but not retained (caching it would evict
// everything else for a single entry).
type Cache struct {
	mu       sync.Mutex
	budget   int64
	used     int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*flight

	hits, misses, evictions uint64
}

// flight is one in-progress baseline computation; followers wait on done.
type flight struct {
	done chan struct{}
	val  any
	size int64
	err  error
}

// centry is one resident cache entry.
type centry struct {
	key  string
	val  any
	size int64
}

// NewCache creates a cache with the given byte budget. A budget <= 0
// disables caching entirely: every Do computes, nothing is retained.
func NewCache(budget int64) *Cache {
	return &Cache{
		budget:   budget,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// CacheStats is a point-in-time counter snapshot, served by /healthz.
type CacheStats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Evictions   uint64 `json:"evictions"`
	Entries     int    `json:"entries"`
	UsedBytes   int64  `json:"used_bytes"`
	BudgetBytes int64  `json:"budget_bytes"`
}

// Stats returns a consistent snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		Entries:     c.ll.Len(),
		UsedBytes:   c.used,
		BudgetBytes: c.budget,
	}
}

// Do returns the value cached under key, computing and inserting it on a
// miss. compute returns the value, its retained size in bytes and an
// error; errors are returned to every coalesced waiter and nothing is
// cached. The second result reports whether the value came from the cache
// (a resident entry or a coalesced in-flight computation).
func (c *Cache) Do(key string, compute func() (any, int64, error)) (any, bool, error) {
	if c == nil || c.budget <= 0 {
		v, _, err := compute()
		return v, false, err
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		v := el.Value.(*centry).val
		c.mu.Unlock()
		return v, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return f.val, true, nil
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()

	// A panicking compute must not strand coalesced waiters: release them
	// with an error, then rethrow for the caller's recover.
	finished := false
	defer func() {
		if !finished {
			c.mu.Lock()
			delete(c.inflight, key)
			c.mu.Unlock()
			f.err = fmt.Errorf("whatif: baseline computation panicked")
			close(f.done)
		}
	}()
	f.val, f.size, f.err = compute()
	finished = true

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.insert(key, f.val, f.size)
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}

// insert adds one entry at the MRU position and evicts from the LRU end
// until the budget holds again. Called with c.mu held.
func (c *Cache) insert(key string, val any, size int64) {
	if size > c.budget {
		return // larger than the whole cache: serve it, don't retain it
	}
	c.items[key] = c.ll.PushFront(&centry{key: key, val: val, size: size})
	c.used += size
	for c.used > c.budget {
		back := c.ll.Back()
		if back == nil || back == c.ll.Front() {
			break
		}
		e := back.Value.(*centry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.used -= e.size
		c.evictions++
	}
}
