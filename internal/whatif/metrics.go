package whatif

// GET /metrics: Prometheus text exposition (format version 0.0.4),
// hand-rolled on the standard library — the service deliberately takes no
// client dependency. Two metric groups share the page:
//
//   - whatifd_*: serving counters (sessions, queue, rejections, cache),
//     the same numbers /healthz reports as JSON.
//   - whatif_last_run_*: simulation results of the most recent successful
//     session — per-app interference factors and elapsed times from the
//     baseline arm, per-arm Pareto summaries — so a scrape-based dashboard
//     can watch a sweep converge without parsing report JSON. Absent until
//     a session completes.
//
// Sample values are deterministic re-renderings of stored report data;
// only whatifd_uptime_seconds and the queue/cache gauges move on their own.

import (
	"io"
	"net/http"
	"strconv"
	"strings"
)

// promBuf accumulates one exposition page.
type promBuf struct {
	b strings.Builder
}

// family opens a metric family with its HELP and TYPE comments. Families
// must be written exactly once, before their samples.
func (p *promBuf) family(name, typ, help string) {
	p.b.WriteString("# HELP ")
	p.b.WriteString(name)
	p.b.WriteByte(' ')
	p.b.WriteString(help)
	p.b.WriteString("\n# TYPE ")
	p.b.WriteString(name)
	p.b.WriteByte(' ')
	p.b.WriteString(typ)
	p.b.WriteByte('\n')
}

// sample appends one sample line. labels are name/value pairs; values are
// escaped per the exposition format (backslash, quote, newline).
func (p *promBuf) sample(name string, labels [][2]string, v float64) {
	p.b.WriteString(name)
	if len(labels) > 0 {
		p.b.WriteByte('{')
		for i, kv := range labels {
			if i > 0 {
				p.b.WriteByte(',')
			}
			p.b.WriteString(kv[0])
			p.b.WriteString(`="`)
			p.b.WriteString(promEscaper.Replace(kv[1]))
			p.b.WriteByte('"')
		}
		p.b.WriteByte('}')
	}
	p.b.WriteByte(' ')
	p.b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	p.b.WriteByte('\n')
}

// promEscaper escapes label values per the text exposition format.
var promEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// handleMetrics serves GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	var p promBuf

	p.family("whatifd_uptime_seconds", "gauge", "Seconds since process start, measured on the monotonic clock.")
	p.sample("whatifd_uptime_seconds", nil, h.UptimeS)
	p.family("whatifd_sessions_total", "counter", "Sessions accepted into the queue since start.")
	p.sample("whatifd_sessions_total", nil, float64(h.Sessions))
	p.family("whatifd_active_sessions", "gauge", "Sessions executing right now.")
	p.sample("whatifd_active_sessions", nil, float64(h.Active))
	p.family("whatifd_queue_depth", "gauge", "Sessions waiting in the bounded queue.")
	p.sample("whatifd_queue_depth", nil, float64(h.QueueDepth))
	p.family("whatifd_queue_capacity", "gauge", "Session queue bound (a full queue answers 429).")
	p.sample("whatifd_queue_capacity", nil, float64(h.QueueCap))
	p.family("whatifd_rejected_total", "counter", "Sessions rejected with 429 because the queue was full.")
	p.sample("whatifd_rejected_total", nil, float64(h.Rejected))

	p.family("whatifd_cache_hits_total", "counter", "Baseline cache hits (resident or coalesced in-flight).")
	p.sample("whatifd_cache_hits_total", nil, float64(h.Cache.Hits))
	p.family("whatifd_cache_misses_total", "counter", "Baseline cache misses (baseline computed).")
	p.sample("whatifd_cache_misses_total", nil, float64(h.Cache.Misses))
	p.family("whatifd_cache_evictions_total", "counter", "Baseline cache LRU evictions.")
	p.sample("whatifd_cache_evictions_total", nil, float64(h.Cache.Evictions))
	p.family("whatifd_cache_entries", "gauge", "Resident baseline cache entries.")
	p.sample("whatifd_cache_entries", nil, float64(h.Cache.Entries))
	p.family("whatifd_cache_used_bytes", "gauge", "Bytes retained by the baseline cache.")
	p.sample("whatifd_cache_used_bytes", nil, float64(h.Cache.UsedBytes))
	p.family("whatifd_cache_budget_bytes", "gauge", "Baseline cache byte budget.")
	p.sample("whatifd_cache_budget_bytes", nil, float64(h.Cache.BudgetBytes))

	if rep := s.last.Load(); rep != nil {
		writeRunMetrics(&p, rep)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, p.b.String())
}

// writeRunMetrics renders the last successful session. The per-app series
// come from the baseline arm: the δ=0 co-run point for scenario reports,
// the verification replay for trace reports.
func writeRunMetrics(p *promBuf, rep *Report) {
	info := [][2]string{{"kind", rep.Kind}, {"name", rep.Name}}
	if rep.Backend != "" {
		info = append(info, [2]string{"backend", rep.Backend})
	}
	p.family("whatif_last_run_info", "gauge", "Identity of the most recent successful session (value is always 1).")
	p.sample("whatif_last_run_info", info, 1)

	if elapsed, ifs, ok := baselineAppSeries(rep); ok {
		p.family("whatif_last_run_app_interference_factor", "gauge",
			"Per-app interference factor of the baseline arm (co-run elapsed over alone at delta=0, or replay over baseline replay).")
		for i, name := range rep.Apps {
			p.sample("whatif_last_run_app_interference_factor", [][2]string{{"app", name}}, ifs[i])
		}
		p.family("whatif_last_run_app_elapsed_seconds", "gauge",
			"Per-app elapsed seconds of the baseline arm.")
		for i, name := range rep.Apps {
			p.sample("whatif_last_run_app_elapsed_seconds", [][2]string{{"app", name}}, elapsed[i])
		}
	}

	p.family("whatif_last_run_arm_peak_if", "gauge", "Peak interference factor per mitigation arm (Pareto row).")
	for _, row := range rep.Pareto {
		p.sample("whatif_last_run_arm_peak_if", [][2]string{{"scheme", row.Scheme}}, row.PeakIF)
	}
	p.family("whatif_last_run_arm_agg_mbps", "gauge", "Aggregate throughput per mitigation arm, MB/s (Pareto row).")
	for _, row := range rep.Pareto {
		p.sample("whatif_last_run_arm_agg_mbps", [][2]string{{"scheme", row.Scheme}}, row.AggMBps)
	}
}

// baselineAppSeries extracts the per-app (elapsed_s, IF) vectors of the
// baseline arm, false when the report carries none in the expected shape.
func baselineAppSeries(rep *Report) (elapsed, ifs []float64, ok bool) {
	if len(rep.Arms) == 0 {
		return nil, nil, false
	}
	base := rep.Arms[0]
	switch {
	case len(base.Points) > 0: // scenario kind: the δ=0 co-run point
		for _, pt := range base.Points {
			if pt.DeltaS == 0 {
				elapsed, ifs = pt.ElapsedS, pt.IF
				break
			}
		}
	case len(base.TraceApps) > 0: // trace kind: the verification replay
		for _, ta := range base.TraceApps {
			elapsed = append(elapsed, ta.ReplayedS)
			ifs = append(ifs, ta.IF)
		}
	}
	return elapsed, ifs, len(elapsed) == len(rep.Apps) && len(ifs) == len(rep.Apps)
}
