package whatif

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestServer starts a service plus an httptest front end; both are torn
// down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// scenarioEnvelope builds the POST /v1/whatif body for tinySpec.
func scenarioEnvelope(t *testing.T, arms []string, wait bool) []byte {
	t.Helper()
	spec, err := json.Marshal(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]any{"scenario": json.RawMessage(spec), "backend": "hdd", "arms": arms, "wait": wait}
	b, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postJSON(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, out
}

func getHealth(t *testing.T, base string) Health {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decoding health: %v", err)
	}
	return h
}

// TestServerConcurrentIdentical pins the headline contract: N concurrent
// identical sessions return byte-identical JSON and share one baseline
// (≥ N−1 cache hits, via coalescing or residency).
func TestServerConcurrentIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	body := scenarioEnvelope(t, []string{"fairshare"}, true)

	const N = 4
	bodies := make([][]byte, N)
	caches := make([]string, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, out := postJSON(t, ts.URL+"/v1/whatif", body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, out)
				return
			}
			bodies[i], caches[i] = out, resp.Header.Get("X-Whatif-Cache")
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 1; i < N; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
	hits := 0
	for _, c := range caches {
		if c == "hit" {
			hits++
		}
	}
	h := getHealth(t, ts.URL)
	if h.Cache.Hits < N-1 || hits < N-1 {
		t.Fatalf("cache hits = %d (headers: %d), want >= %d", h.Cache.Hits, hits, N-1)
	}
	if h.Sessions != N {
		t.Fatalf("sessions = %d, want %d", h.Sessions, N)
	}

	// The response document itself is valid JSON carrying the arm texts.
	var rep Report
	if err := json.Unmarshal(bodies[0], &rep); err != nil {
		t.Fatalf("response is not a report: %v", err)
	}
	if len(rep.Arms) != 2 || rep.Arms[1].Scheme != "fairshare" {
		t.Fatalf("unexpected arms: %+v", rep.Arms)
	}
}

// TestServerQueueFull pins the backpressure contract: a saturated session
// queue answers 429 + Retry-After immediately and recovers once drained.
func TestServerQueueFull(t *testing.T) {
	gate := make(chan struct{})
	_, ts := newTestServer(t, Config{Workers: 1, QueueLen: 1, gate: gate})
	async := scenarioEnvelope(t, []string{"fairshare"}, false)

	// First session: accepted, picked up by the worker, parked on the gate.
	resp, out := postJSON(t, ts.URL+"/v1/whatif", async)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first session: status %d: %s", resp.StatusCode, out)
	}
	var acc struct{ Job, Status, Poll string }
	if err := json.Unmarshal(out, &acc); err != nil || acc.Poll == "" {
		t.Fatalf("bad 202 body %s: %v", out, err)
	}
	waitStatus(t, ts.URL+acc.Poll, "running")

	// Second session fills the one queue slot; third must bounce.
	resp2, out2 := postJSON(t, ts.URL+"/v1/whatif", async)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("second session: status %d: %s", resp2.StatusCode, out2)
	}
	resp3, out3 := postJSON(t, ts.URL+"/v1/whatif", async)
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third session: status %d, want 429: %s", resp3.StatusCode, out3)
	}
	if ra := resp3.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if h := getHealth(t, ts.URL); h.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", h.Rejected)
	}

	// Release the workers; both queued sessions finish and the server
	// accepts again — backpressure recovers, nothing is lost.
	close(gate)
	waitStatus(t, ts.URL+acc.Poll, "done")
	resp4, out4 := postJSON(t, ts.URL+"/v1/whatif", async)
	if resp4.StatusCode != http.StatusAccepted {
		t.Fatalf("post-recovery session: status %d: %s", resp4.StatusCode, out4)
	}
}

// waitStatus polls a job URL until it reports the wanted status (or, for
// "done", until the report document arrives).
func waitStatus(t *testing.T, jobURL, want string) []byte {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(jobURL)
		if err != nil {
			t.Fatalf("GET %s: %v", jobURL, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if want == "done" && resp.Header.Get("X-Whatif-Cache") != "" {
			return body
		}
		var st struct{ Status string }
		if err := json.Unmarshal(body, &st); err == nil && st.Status == want {
			return body
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", jobURL, want)
	return nil
}

// TestServerJobPoll pins the async path: 202 + poll URL, and the polled
// document is byte-identical to the synchronous one.
func TestServerJobPoll(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, out := postJSON(t, ts.URL+"/v1/whatif", scenarioEnvelope(t, []string{"fairshare"}, true))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync session: %d: %s", resp.StatusCode, out)
	}
	syncBody := out

	resp2, out2 := postJSON(t, ts.URL+"/v1/whatif", scenarioEnvelope(t, []string{"fairshare"}, false))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("async session: %d: %s", resp2.StatusCode, out2)
	}
	var acc struct{ Poll string }
	if err := json.Unmarshal(out2, &acc); err != nil {
		t.Fatal(err)
	}
	polled := waitStatus(t, ts.URL+acc.Poll, "done")
	if !bytes.Equal(syncBody, polled) {
		t.Fatal("polled report differs from the synchronous one")
	}

	if resp, _ := http.Get(ts.URL + "/v1/jobs/job-999999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

func TestServerBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	spec, _ := json.Marshal(tinySpec())
	qosSpec, _ := json.Marshal(map[string]any{
		"name": "x", "qos": map[string]any{"scheduler": "fairshare"},
		"apps": []map[string]any{{"procs": 1, "block_mb": 1}},
	})
	cases := []struct {
		name, path, body string
	}{
		{"not json", "/v1/whatif", "nope"},
		{"unknown envelope field", "/v1/whatif", `{"scenario":{"name":"x"},"bogus":1}`},
		{"missing scenario", "/v1/whatif", `{"backend":"hdd"}`},
		{"unknown spec field", "/v1/whatif", `{"scenario":{"name":"x","nope":1}}`},
		{"qos block in spec", "/v1/whatif", fmt.Sprintf(`{"scenario":%s}`, qosSpec)},
		{"bad backend", "/v1/whatif", fmt.Sprintf(`{"scenario":%s,"backend":"tape"}`, spec)},
		{"bad arm", "/v1/whatif", fmt.Sprintf(`{"scenario":%s,"arms":["nope"]}`, spec)},
		{"off arm", "/v1/whatif", fmt.Sprintf(`{"scenario":%s,"arms":["off"]}`, spec)},
		{"negative shards", "/v1/whatif", fmt.Sprintf(`{"scenario":%s,"shards":-1}`, spec)},
		{"garbage trace", "/v1/whatif/trace", "not a trace"},
		{"bad trace arm", "/v1/whatif/trace?arms=nope", "IOTRACE1"},
		{"bad wait", "/v1/whatif/trace?wait=maybe", "IOTRACE1"},
	}
	for _, tc := range cases {
		resp, out := postJSON(t, ts.URL+tc.path, []byte(tc.body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, out)
			continue
		}
		var e struct{ Error string }
		if err := json.Unmarshal(out, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error envelope missing: %s", tc.name, out)
		}
	}
}

// TestServerContentLengthCap proves an attacker-controlled Content-Length
// cannot preallocate memory: a 1 TiB declaration is rejected up front —
// before a single body byte is read — with no matching heap growth. The
// service-side mirror of the trace reader's preallocation fix.
func TestServerContentLengthCap(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBody: 1 << 20})
	u, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/whatif/trace HTTP/1.1\r\nHost: %s\r\nContent-Length: %d\r\n\r\n",
		u.Host, int64(1)<<40)
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, body)
	}

	runtime.GC()
	runtime.ReadMemStats(&after)
	if grown := int64(after.HeapAlloc) - int64(before.HeapAlloc); grown > 8<<20 {
		t.Fatalf("heap grew %d bytes handling a 1 TiB Content-Length", grown)
	}
}

// TestServerChunkedBodyCap pins the decoder-side backstop: a chunked
// upload with no Content-Length is cut off at the cap by MaxBytesReader.
func TestServerChunkedBodyCap(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBody: 4096})

	// Hide the length from the client so it sends chunked encoding.
	over := struct{ io.Reader }{bytes.NewReader(make([]byte, 8192))}
	req, err := http.NewRequest("POST", ts.URL+"/v1/whatif/trace", over)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "cap") {
		t.Fatalf("unexpected error body: %s", body)
	}
}

// TestServerTraceEndpoint runs a recorded trace through the HTTP path.
func TestServerTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	raw := recordTinyTrace(t)

	post := func() (*http.Response, []byte) {
		return postJSON(t, ts.URL+"/v1/whatif/trace?name=tiny.trace&arms=fairshare", raw)
	}
	resp, out := post()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if got := resp.Header.Get("X-Whatif-Cache"); got != "miss" {
		t.Fatalf("cold upload: X-Whatif-Cache = %q", got)
	}
	var rep Report
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Kind != "trace" || rep.Name != "tiny.trace" || len(rep.Arms) != 2 {
		t.Fatalf("unexpected report: kind=%s name=%s arms=%d", rep.Kind, rep.Name, len(rep.Arms))
	}

	resp2, out2 := post()
	if resp2.Header.Get("X-Whatif-Cache") != "hit" {
		t.Fatal("second upload of the same bytes missed the cache")
	}
	if !bytes.Equal(out, out2) {
		t.Fatal("cache-hit response differs from the cold one")
	}
}

// TestServerDraining pins the shutdown half: a closed server refuses new
// sessions with 503 instead of racing the queue.
func TestServerDraining(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Close()
	resp, out := postJSON(t, ts.URL+"/v1/whatif", scenarioEnvelope(t, []string{"fairshare"}, true))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, out)
	}
}

func TestServerHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueLen: 7, CacheBytes: 123})
	h := getHealth(t, ts.URL)
	if h.Status != "ok" || h.QueueCap != 7 || h.Cache.BudgetBytes != 123 {
		t.Fatalf("health = %+v", h)
	}
}
