// Package whatif wraps the trace replayer and the QoS mitigation sweeps
// in a long-running what-if service: an HTTP/JSON API (see Server) accepts
// an uploaded IOTRACE1 recording or an inline scenario spec, runs the
// un-mitigated baseline plus a requested set of QoS mitigation arms
// concurrently through the existing core.Runner worker pool, and returns
// per-app summaries, IF vectors and a Pareto report.
//
// Determinism is the product: a session's numbers — and the rendered
// tables embedded in its JSON — are byte-identical to the equivalent
// `cmd/scenarios -qos/-replay -tsv` CLI runs, whether the baseline was
// computed cold or served from the cache. The service therefore reuses
// the exact composition the CLI prints (this file), a content-addressed
// baseline cache (Cache) so repeated what-ifs over the same recording
// only pay for the mitigation arms, and a bounded session queue with
// explicit backpressure (HTTP 429) so load cannot exhaust memory.
package whatif

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/trace"
)

// EmitTables writes each table (TSV or aligned ASCII) followed by a blank
// line — the byte stream cmd/scenarios prints per run. The CLI and the
// service both compose their output through here, so the two can never
// drift apart.
func EmitTables(w io.Writer, tsv bool, tables ...*report.Table) error {
	for _, t := range tables {
		var err error
		if tsv {
			err = t.WriteTSV(w)
		} else {
			err = t.WriteASCII(w)
		}
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// ScenarioRunText renders one scenario result the way cmd/scenarios prints
// it: alone baselines, δ-graph and pairwise IF matrix.
func ScenarioRunText(res *scenario.Result, tsv bool) (string, error) {
	var b strings.Builder
	err := EmitTables(&b, tsv,
		scenario.RenderBaselines(res),
		scenario.RenderGraph(res),
		scenario.RenderMatrix(res))
	return b.String(), err
}

// ScenarioSummaryText renders the one-line-per-result summary table
// cmd/scenarios ends every invocation with.
func ScenarioSummaryText(all []*scenario.Result, tsv bool) (string, error) {
	var b strings.Builder
	err := EmitTables(&b, tsv, scenario.RenderSummary(all))
	return b.String(), err
}

// ReplayText renders a trace replay the way cmd/scenarios -replay prints
// it: the Darshan-style summary of the recording, the recorded-vs-replayed
// round-trip table, then the verdict line. label is the display title (the
// CLI's trace file path). counterfactualQoS names the scheduler of a
// counterfactual replay ("" = a verification replay on the recorded
// platform). On a diverged verification replay no verdict line is printed
// — the caller reports the divergence as an error, as the CLI does.
func ReplayText(label, counterfactualQoS string, rep *trace.ReplayResult, t *trace.Trace, tsv bool) (string, error) {
	var b strings.Builder
	if err := EmitTables(&b, tsv,
		trace.RenderSummary(fmt.Sprintf("%s: Darshan-style per-app summary", label), trace.Summarize(t)),
		trace.RenderRoundTrip(fmt.Sprintf("%s: recorded vs replayed completions", label), rep)); err != nil {
		return "", err
	}
	switch {
	case counterfactualQoS != "":
		fmt.Fprintf(&b, "counterfactual replay under qos=%s: divergence from the recording is the result\n",
			counterfactualQoS)
	case rep.Identical():
		fmt.Fprintf(&b, "replay of %s reproduced every app's completion window bit-for-bit\n", label)
	}
	return b.String(), nil
}
