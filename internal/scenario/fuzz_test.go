package scenario

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzScenarioSpec feeds arbitrary bytes to the scenario JSON parser. The
// invariants: Parse never panics (notably, oversized size knobs must fail
// validation instead of overflowing the KiB/MiB shifts into a zero divisor
// in the strided divisibility check), errors are stable (the same input
// fails the same way twice), and an accepted spec round-trips — its JSON
// marshaling parses and validates again to an equal spec.
func FuzzScenarioSpec(f *testing.F) {
	for _, s := range Builtin() {
		data, err := json.Marshal(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name":"t","trace":{"path":"x"}}`))
	f.Add([]byte(`{"name":"t","shards":4,"apps":[{"procs":8,"block_mb":16}]}`))
	f.Add([]byte(`{"name":"t","apps":[{"procs":8,"pattern":"strided","block_mb":16,"transfer_kb":1048576}]}`))
	f.Add([]byte(`{"name":"t","apps":[{"procs":1,"block_mb":9007199254740992}]}`))
	f.Add([]byte(`{"name":"overflow","apps":[{"procs":1,"pattern":"strided",` +
		`"block_mb":1125899906842624,"transfer_kb":18014398509481984}]}`))
	f.Add([]byte(`{"name":"t","apps":[{"procs":2,"phases":[{"kind":"io","block_mb":4},{"kind":"barrier"}],"iterations":2,"seed":7}]}`))
	f.Add([]byte(`{`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			if _, err2 := Parse(data); err2 == nil || err2.Error() != err.Error() {
				t.Fatalf("unstable error: %q then %v", err, err2)
			}
			return
		}
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshaling an accepted spec failed: %v", err)
		}
		s2, err := Parse(out)
		if err != nil {
			t.Fatalf("re-parsing a marshaled accepted spec failed: %v\njson: %s", err, out)
		}
		out2, err := json.Marshal(s2)
		if err != nil || string(out) != string(out2) {
			t.Fatalf("marshal round-trip drift:\n got %s\nwant %s (err %v)", out2, out, err)
		}
	})
}

// FuzzPopulationSpec feeds arbitrary bytes to the population-scenario path.
// The invariants: Parse never panics (a zero/negative/huge Zipf exponent
// and a volume × count product past the population cap must fail validation
// instead of overflowing the MiB arithmetic or hanging the generator),
// errors are stable, and an accepted population spec expands — the
// expansion never fails, yields exactly count tenants, passes the strict
// validator, and is byte-deterministic.
func FuzzPopulationSpec(f *testing.F) {
	for _, s := range FleetBuiltin() {
		data, err := json.Marshal(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name":"p","backend":"hdd","population":{"count":16,"base_mb":8,"zipf_exp":1.1}}`))
	f.Add([]byte(`{"name":"p","population":{"count":16,"base_mb":8,"zipf_exp":0}}`))
	f.Add([]byte(`{"name":"p","population":{"count":16,"base_mb":8,"zipf_exp":-1.5}}`))
	f.Add([]byte(`{"name":"p","population":{"count":16,"base_mb":8,"zipf_exp":1e308}}`))
	f.Add([]byte(`{"name":"p","population":{"count":16384,"base_mb":1048576,"zipf_exp":0.01}}`))
	f.Add([]byte(`{"name":"p","population":{"count":16,"base_mb":8,"zipf_exp":1.1,` +
		`"mix":[{"class":"mouse","weight":1},{"class":"elephant","weight":3}],` +
		`"arrival":"staggered","window_s":30,"bursts":4,"think_s":1,"jitter_s":0.5,"procs_div":2,"sample_pairs":8}}`))
	f.Add([]byte(`{"name":"p","population":{"count":16,"base_mb":8,"zipf_exp":1.1,"arrival":"lunar"}}`))
	f.Add([]byte(`{"name":"p","population":{"count":16,"base_mb":8,"zipf_exp":1.1},"apps":[{"procs":1,"block_mb":1}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			if _, err2 := Parse(data); err2 == nil || err2.Error() != err.Error() {
				t.Fatalf("unstable error: %q then %v", err, err2)
			}
			return
		}
		if s.Population == nil {
			return
		}
		es, tenants, err := ExpandPopulation(s)
		if err != nil {
			t.Fatalf("accepted population spec failed to expand: %v\njson: %s", err, data)
		}
		if len(tenants) != s.Population.Count || len(es.Apps) != s.Population.Count {
			t.Fatalf("expansion yielded %d tenants / %d apps, want %d",
				len(tenants), len(es.Apps), s.Population.Count)
		}
		if err := es.Validate(); err != nil {
			t.Fatalf("expanded spec fails the strict validator: %v\njson: %s", err, data)
		}
		es2, _, err := ExpandPopulation(s)
		if err != nil {
			t.Fatal(err)
		}
		a, err := json.Marshal(es)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(es2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("expansion is not deterministic:\n%s\nvs\n%s", a, b)
		}
	})
}
