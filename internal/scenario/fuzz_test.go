package scenario

import (
	"encoding/json"
	"testing"
)

// FuzzScenarioSpec feeds arbitrary bytes to the scenario JSON parser. The
// invariants: Parse never panics (notably, oversized size knobs must fail
// validation instead of overflowing the KiB/MiB shifts into a zero divisor
// in the strided divisibility check), errors are stable (the same input
// fails the same way twice), and an accepted spec round-trips — its JSON
// marshaling parses and validates again to an equal spec.
func FuzzScenarioSpec(f *testing.F) {
	for _, s := range Builtin() {
		data, err := json.Marshal(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name":"t","trace":{"path":"x"}}`))
	f.Add([]byte(`{"name":"t","shards":4,"apps":[{"procs":8,"block_mb":16}]}`))
	f.Add([]byte(`{"name":"t","apps":[{"procs":8,"pattern":"strided","block_mb":16,"transfer_kb":1048576}]}`))
	f.Add([]byte(`{"name":"t","apps":[{"procs":1,"block_mb":9007199254740992}]}`))
	f.Add([]byte(`{"name":"overflow","apps":[{"procs":1,"pattern":"strided",` +
		`"block_mb":1125899906842624,"transfer_kb":18014398509481984}]}`))
	f.Add([]byte(`{"name":"t","apps":[{"procs":2,"phases":[{"kind":"io","block_mb":4},{"kind":"barrier"}],"iterations":2,"seed":7}]}`))
	f.Add([]byte(`{`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			if _, err2 := Parse(data); err2 == nil || err2.Error() != err.Error() {
				t.Fatalf("unstable error: %q then %v", err, err2)
			}
			return
		}
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshaling an accepted spec failed: %v", err)
		}
		s2, err := Parse(out)
		if err != nil {
			t.Fatalf("re-parsing a marshaled accepted spec failed: %v\njson: %s", err, out)
		}
		out2, err := json.Marshal(s2)
		if err != nil || string(out) != string(out2) {
			t.Fatalf("marshal round-trip drift:\n got %s\nwant %s (err %v)", out2, out, err)
		}
	})
}
