package scenario

// Golden-determinism guard for the scenario layer, the sibling of
// internal/paper's figure checksums: every built-in scenario is run at
// smoke scale on both HDD and SSD and its complete numeric result — the
// per-app completion vector, every δ point (elapsed, IF, throughput,
// diagnostics) and the full pairwise IF matrix — is serialized canonically
// and hashed into testdata/golden_scenarios.txt.
//
// A change to the N-app core, the scenario compiler, the device models or
// the event kernel that perturbs any of these numbers flips a hash here.
// Regenerate (after an *intentional* model change only) with:
//
//	go test ./internal/scenario -run TestGoldenScenarios -update
//
// (-update-golden is the long spelling of the same flag.)

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

var (
	updateGoldenLong  = flag.Bool("update-golden", false, "rewrite the testdata golden files from the current kernel")
	updateGoldenShort = flag.Bool("update", false, "alias for -update-golden")
)

// updateGolden reports whether this run should rewrite the golden files
// instead of checking them (either spelling of the flag).
func updateGolden() bool { return *updateGoldenLong || *updateGoldenShort }

const goldenFile = "testdata/golden_scenarios.txt"

// goldenResult serializes one Result exactly. Times are integer
// nanoseconds; floats use %.17g, which round-trips float64 bit-for-bit.
func goldenResult(r *Result) string {
	var b strings.Builder
	g := r.Graph
	fmt.Fprintf(&b, "scenario %s backend %s apps %d\n", r.Spec.Name, r.Backend, len(r.Spec.Apps))
	for i, a := range g.Alone {
		fmt.Fprintf(&b, "alone %d %s=%d\n", i, r.Matrix.Names[i], a)
	}
	for j, p := range g.Points {
		fmt.Fprintf(&b, "point %d delta=%d", j, p.Delta)
		// The normalized start vector guards the offset/δ arithmetic even
		// at smoke scales where the bursts no longer overlap.
		for i := range p.Start {
			fmt.Fprintf(&b, " s%d=%d", i, p.Start[i])
		}
		for i := range p.Elapsed {
			fmt.Fprintf(&b, " e%d=%d if%d=%.17g tp%d=%.17g", i, p.Elapsed[i], i, p.IF[i], i, p.Throughput[i])
		}
		d := p.Diag
		fmt.Fprintf(&b, " drops=%d timeouts=%d retrans=%d seeks=%d devbytes=%d cacheblk=%d events=%d\n",
			d.PortDrops, d.Timeouts, d.RetransSegs, d.DeviceSeeks, d.DeviceBytes, d.CacheBlocks, d.Events)
	}
	for i := range r.Matrix.Cell {
		fmt.Fprintf(&b, "matrix %d", i)
		for j := range r.Matrix.Cell[i] {
			fmt.Fprintf(&b, " %.17g", r.Matrix.Cell[i][j])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// goldenKeys enumerates (builtin scenario, backend) pairs; the scenario
// acceptance axis is HDD and SSD regardless of any pinned spec backend.
func goldenKeys() (keys []string, gen map[string]func() string) {
	gen = make(map[string]func() string)
	pool := core.Runner{Parallelism: 0}
	for _, s := range Builtin() {
		for _, backend := range []cluster.BackendKind{cluster.HDD, cluster.SSD} {
			s, backend := s, backend
			key := s.Name + "@" + backend.String()
			keys = append(keys, key)
			gen[key] = func() string {
				r, err := Run(s.Smoke(), backend, pool)
				if err != nil {
					panic(err)
				}
				return goldenResult(r)
			}
		}
	}
	return keys, gen
}

func TestGoldenScenarios(t *testing.T) {
	keys, gen := goldenKeys()

	if updateGolden() {
		sorted := append([]string(nil), keys...)
		sort.Strings(sorted)
		var b strings.Builder
		b.WriteString("# sha256 of each built-in scenario's canonical result at smoke scale, per backend.\n")
		b.WriteString("# Regenerate: go test ./internal/scenario -run TestGoldenScenarios -update-golden\n")
		for _, k := range sorted {
			fmt.Fprintf(&b, "%s %x\n", k, sha256.Sum256([]byte(gen[k]())))
		}
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d results)", goldenFile, len(keys))
		return
	}

	data, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("reading %s (regenerate with -update-golden): %v", goldenFile, err)
	}
	want := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed golden line %q", line)
		}
		want[fields[0]] = fields[1]
	}
	for _, key := range keys {
		key := key
		f := gen[key]
		t.Run(key, func(t *testing.T) {
			t.Parallel() // scenarios are independent; the pool bounds real work
			wantSum, ok := want[key]
			if !ok {
				t.Fatalf("no golden checksum for %q (regenerate with -update-golden)", key)
			}
			text := f()
			got := fmt.Sprintf("%x", sha256.Sum256([]byte(text)))
			if got != wantSum {
				t.Errorf("checksum drift: got %s want %s\ncanonical result was:\n%s", got, wantSum, text)
			}
		})
	}
}
