// Package scenario is the declarative layer over the N-application
// experiment core: a JSON-serializable Spec names a platform (node/server
// counts, backend, sync mode, stripe size), an arbitrary list of
// applications (pattern, transfer size, queue depth, fixed start offset,
// targeted servers) and a δ grid, and Run turns it into a δ-graph plus a
// pairwise interference-factor matrix on a worker pool.
//
// The package also carries a registry of built-in scenarios beyond the
// paper's two-application campaigns — multi-app pile-ups, mixed
// read/write modes, elephant-and-mice asymmetry, staggered arrivals, and
// partitioned-versus-shared server placements — each exercising one
// interference mechanism of the paper on both HDD and SSD backends. A
// Spec may additionally carry a faults block (a deterministic fault
// timeline plus the client retry policy, internal/fault); CompareFaults
// runs such a scenario against a healthy twin and reports per-app
// IF-under-faults plus the availability ledger. See SCENARIOS.md at the
// repository root for the file format and a guided tour of every
// built-in.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/pfs"
	"repro/internal/population"
	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/workload"
)

// App describes one application of a scenario. Sizes use friendly units
// (MiB blocks, KiB transfers, seconds/milliseconds) so that hand-written
// JSON stays readable; Build converts to the core's bytes and sim.Time.
type App struct {
	// Name labels the application ("A", "checkpoint", …). Empty picks the
	// positional default ("A", "B", "C", …).
	Name string `json:"name,omitempty"`
	// Procs is the number of processes (required, > 0).
	Procs int `json:"procs"`
	// PPN is processes per node; 0 uses the platform's cores per node.
	PPN int `json:"ppn,omitempty"`
	// Pattern is "contiguous" (default) or "strided".
	Pattern string `json:"pattern,omitempty"`
	// BlockMB is the per-process I/O volume in MiB (required, > 0).
	BlockMB int64 `json:"block_mb"`
	// TransferKB is the strided request size in KiB (required for strided).
	TransferKB int64 `json:"transfer_kb,omitempty"`
	// QD is the per-process queue depth (0/1 = blocking requests).
	QD int `json:"qd,omitempty"`
	// ThinkMS is a fixed client-side cost per request, in milliseconds.
	ThinkMS float64 `json:"think_ms,omitempty"`
	// Read makes the phase read instead of write.
	Read bool `json:"read,omitempty"`
	// TargetServers stripes this app's file over a server subset
	// (empty = all servers) — the paper's partitioning knob.
	TargetServers []int `json:"target_servers,omitempty"`
	// StripeKB overrides the platform stripe size for this app, in KiB.
	StripeKB int64 `json:"stripe_kb,omitempty"`
	// StartS is the app's fixed start offset in seconds, on top of which
	// the δ shift moves every application but the first (see core.DeltaSpec).
	StartS float64 `json:"start_s,omitempty"`

	// Phases turns the app into a multi-phase workload program (compute
	// think time, barriers, repeated I/O bursts — see workload.Program).
	// Mutually exclusive with the single-burst knobs above (pattern,
	// block_mb, transfer_kb, qd, think_ms, read), which then move into the
	// individual "io" phases.
	Phases []Phase `json:"phases,omitempty"`
	// Iterations repeats the phase list (0 = once). Only valid with phases.
	Iterations int `json:"iterations,omitempty"`
	// Seed seeds the app's deterministic jitter stream; 0 derives a
	// distinct per-app default. Only valid with phases.
	Seed uint64 `json:"seed,omitempty"`
}

// Phase is the declarative form of one workload-program step. Kind selects
// which knobs apply: "io" takes the single-burst knobs (pattern, block_mb,
// transfer_kb, qd, think_ms, read), "compute" takes compute_s and jitter_s
// (a fixed pause plus an exponential extra with that mean — a Poisson
// burst-arrival process), "barrier" takes none.
type Phase struct {
	Kind string `json:"kind"`

	// io phase knobs (see App for units and semantics).
	Pattern    string  `json:"pattern,omitempty"`
	BlockMB    int64   `json:"block_mb,omitempty"`
	TransferKB int64   `json:"transfer_kb,omitempty"`
	QD         int     `json:"qd,omitempty"`
	ThinkMS    float64 `json:"think_ms,omitempty"`
	Read       bool    `json:"read,omitempty"`

	// compute phase knobs, in seconds.
	ComputeS float64 `json:"compute_s,omitempty"`
	JitterS  float64 `json:"jitter_s,omitempty"`
}

// phaseKindNames are the valid Phase.Kind values.
var phaseKindNames = []string{"io", "compute", "barrier"}

// parsePhaseKind maps a Phase.Kind string to the workload kind.
func parsePhaseKind(s string) (workload.PhaseKind, error) {
	switch strings.ToLower(s) {
	case "io":
		return workload.PhaseIO, nil
	case "compute", "think":
		return workload.PhaseCompute, nil
	case "barrier":
		return workload.PhaseBarrier, nil
	}
	return 0, fmt.Errorf("unknown phase kind %q (valid: %s)", s, strings.Join(phaseKindNames, ", "))
}

// appName resolves app i's display name: its Name field, or the
// conventional core.AppName letter when unset. Validate, Build, and
// AppNames all label through here so renderers can never drift from the
// names the engine ran with.
func appName(a App, i int) string {
	if a.Name != "" {
		return a.Name
	}
	return core.AppName(i)
}

// AppNames returns the resolved display name of every app in s, in app
// order — the labels Build gives the engine.
func AppNames(s Spec) []string {
	names := make([]string, len(s.Apps))
	for i, a := range s.Apps {
		names[i] = appName(a, i)
	}
	return names
}

// Spec is one declarative scenario. The zero value of every platform field
// means "use the paper default" (cluster.Default), so a minimal scenario is
// just a name and an application list.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// Nodes, CoresPerNode and Servers size the platform (0 = paper default).
	Nodes        int `json:"nodes,omitempty"`
	CoresPerNode int `json:"cores_per_node,omitempty"`
	Servers      int `json:"servers,omitempty"`

	// Backend pins the scenario to one backend ("hdd", "ssd", "ram",
	// "null"); empty runs the scenario on the standard axis (HDD and SSD).
	Backend string `json:"backend,omitempty"`
	// Sync is "on" (default), "off" or "null-aio".
	Sync string `json:"sync,omitempty"`
	// StripeKB is the file system stripe size in KiB (0 = default 64).
	StripeKB int64 `json:"stripe_kb,omitempty"`
	// SSDChannels > 1 selects the channel-parallel flash model when the
	// scenario runs on the SSD backend (see storage.SSDParams).
	SSDChannels int `json:"ssd_channels,omitempty"`

	// DeltaS is the δ grid in seconds (empty = {0}): at each point every
	// application but the first is shifted by δ on top of its start_s.
	DeltaS []float64 `json:"delta_s,omitempty"`

	// Shards selects the event-kernel parallelism of every simulation the
	// scenario runs: 0 or 1 is the serial determinism oracle, K >= 2 runs K
	// independently-clocked shards (clients on shard 0, servers spread over
	// the rest — see cluster.BuildSharded). Results are bit-identical at
	// every value; only wall-clock time changes. A Runner.Shards override
	// (the CLIs' -shards flag) wins over this knob.
	Shards int `json:"shards,omitempty"`

	// QoS enables a server-side QoS scheduler on every storage server
	// (nil = off, the un-mitigated PVFS baseline). For a trace scenario it
	// configures the replay platform (counterfactual what-if replay).
	QoS *QoS `json:"qos,omitempty"`

	// Trace turns the scenario into a trace replay: the workload comes
	// from a recorded trace file instead of an app list (see Replay).
	// Mutually exclusive with Apps and every platform/δ knob — the trace
	// header carries the recorded platform.
	Trace *TraceBlock `json:"trace,omitempty"`

	// Faults injects a deterministic fault timeline (server crashes,
	// degraded devices, link flaps) and switches the clients onto the
	// retrying RPC path (nil = the fault-free platform, bit-identical to a
	// build without the fault subsystem). Mutually exclusive with Trace — a
	// replay reproduces a recorded healthy run.
	Faults *FaultBlock `json:"faults,omitempty"`

	// Population stamps out a generated tenant population (seeded class
	// mix, Zipf volumes, arrival offsets — internal/population) instead of
	// a hand-written app list. Mutually exclusive with Apps, Trace, Faults
	// and the δ grid: a fleet is summarized by its single co-run plus
	// sampled pairs (RunFleet), not a δ sweep. Platform knobs and QoS still
	// apply.
	Population *population.Params `json:"population,omitempty"`

	Apps []App `json:"apps,omitempty"`
}

// TraceBlock configures a trace-replay scenario.
type TraceBlock struct {
	// Path is the trace file to replay (written by `scenarios -trace` or
	// trace.WriteFile).
	Path string `json:"path"`
}

// QoS is the declarative form of a server-side scheduler configuration
// (internal/qos). Scheduler is required; every other knob is optional and
// zero selects the scheduler's calibrated default.
type QoS struct {
	// Scheduler names the discipline: "fairshare", "tokenbucket",
	// "controller" (or "off").
	Scheduler string `json:"scheduler"`
	// FlowSlots overrides the server's concurrent-flow count while the
	// scheduler is active; InflightChunks is the per-application in-flight
	// chunk budget of the depth-advising schedulers.
	FlowSlots      int `json:"flow_slots,omitempty"`
	InflightChunks int `json:"inflight_chunks,omitempty"`
	// QuantumKB is the fairshare deficit-round-robin quantum, in KiB.
	QuantumKB int64 `json:"quantum_kb,omitempty"`
	// RateMBps / BurstMB configure the token buckets (tokenbucket: the hard
	// per-application cap; controller: the initial/maximum rate).
	RateMBps float64 `json:"rate_mbps,omitempty"`
	BurstMB  int64   `json:"burst_mb,omitempty"`
	// TickMS is the controller's feedback sampling interval, in ms.
	TickMS float64 `json:"tick_ms,omitempty"`
}

// Params compiles the block into scheduler parameters (zero knobs keep the
// kind's defaults; see qos.Defaults).
func (q *QoS) Params() (qos.Params, error) {
	if q == nil {
		return qos.Params{}, nil
	}
	// ParseKind maps "" to Off; requiring the field here keeps a forgotten
	// "scheduler" key from silently running the experiment unmitigated.
	if q.Scheduler == "" {
		return qos.Params{}, fmt.Errorf("scheduler is required (valid: %s)",
			strings.Join(qos.KindNames(), ", "))
	}
	kind, err := qos.ParseKind(q.Scheduler)
	if err != nil {
		return qos.Params{}, err
	}
	p := qos.Params{
		Kind:            kind,
		FlowSlots:       q.FlowSlots,
		InflightChunks:  q.InflightChunks,
		QuantumBytes:    q.QuantumKB << 10,
		RateBytesPerSec: q.RateMBps * 1e6,
		BurstBytes:      q.BurstMB << 20,
		Tick:            sim.Time(q.TickMS * float64(sim.Millisecond)),
	}
	if err := p.Validate(); err != nil {
		return qos.Params{}, err
	}
	return p, nil
}

// Size caps keep the friendly-unit knobs inside int64 byte arithmetic: a
// value past the cap would overflow the <<10 / <<20 conversion — a corrupt
// or adversarial file could even shift block or transfer sizes to exactly
// zero and crash the divisibility check with a division by zero — so
// Validate rejects it with a stable error instead. The limits are far
// beyond any meaningful scenario.
const (
	maxBlockMB    = 1 << 20 // 1 TiB per process
	maxTransferKB = 1 << 21 // 2 GiB per request
	maxStripeKB   = 1 << 21 // 2 GiB stripe
)

// patternNames are the valid App.Pattern values.
var patternNames = []string{"contiguous", "strided"}

// syncNames are the valid Spec.Sync values.
var syncNames = []string{"on", "off", "null-aio"}

// parsePattern maps an App.Pattern string to the workload kind.
func parsePattern(s string) (workload.Pattern, error) {
	switch strings.ToLower(s) {
	case "", "contiguous", "contig":
		return workload.Contiguous, nil
	case "strided":
		return workload.Strided, nil
	}
	return 0, fmt.Errorf("unknown pattern %q (valid: %s)", s, strings.Join(patternNames, ", "))
}

// parseSync maps a Spec.Sync string to the pfs mode.
func parseSync(s string) (pfs.SyncMode, error) {
	switch strings.ToLower(s) {
	case "", "on":
		return pfs.SyncOn, nil
	case "off":
		return pfs.SyncOff, nil
	case "null-aio", "nullaio":
		return pfs.NullAIO, nil
	}
	return 0, fmt.Errorf("unknown sync mode %q (valid: %s)", s, strings.Join(syncNames, ", "))
}

// Validate checks the scenario for structural errors. Every error names the
// scenario and, where relevant, the offending application, so a bad file in
// a batch points straight at its line.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if s.Trace != nil {
		if s.Trace.Path == "" {
			return fmt.Errorf("scenario %q: trace: missing path", s.Name)
		}
		if len(s.Apps) > 0 || len(s.DeltaS) > 0 || s.Backend != "" || s.Sync != "" ||
			s.Nodes != 0 || s.CoresPerNode != 0 || s.Servers != 0 ||
			s.StripeKB != 0 || s.SSDChannels != 0 || s.Shards != 0 || s.Faults != nil ||
			s.Population != nil {
			return fmt.Errorf("scenario %q: a trace scenario replays the recorded platform; "+
				"apps, faults, population and platform/δ knobs must be absent (qos is the one allowed override)", s.Name)
		}
		if s.QoS != nil {
			if _, err := s.QoS.Params(); err != nil {
				return fmt.Errorf("scenario %q: qos: %w", s.Name, err)
			}
		}
		return nil
	}
	if s.Population != nil {
		// A fleet is summarized by its single co-run plus sampled pairs;
		// hand-written apps, fault timelines and δ sweeps do not compose
		// with a generated population (platform knobs and qos do).
		if len(s.Apps) > 0 || s.Faults != nil || len(s.DeltaS) > 0 {
			return fmt.Errorf("scenario %q: a population scenario generates its apps; "+
				"apps, faults and delta_s must be absent (platform knobs and qos still apply)", s.Name)
		}
		if err := s.Population.Validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	} else if len(s.Apps) == 0 {
		return fmt.Errorf("scenario %q: needs at least one app", s.Name)
	}
	if s.Backend != "" {
		if _, err := cluster.ParseBackend(s.Backend); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	if _, err := parseSync(s.Sync); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if s.Nodes < 0 || s.CoresPerNode < 0 || s.Servers < 0 || s.StripeKB < 0 ||
		s.SSDChannels < 0 || s.Shards < 0 {
		return fmt.Errorf("scenario %q: negative platform parameter", s.Name)
	}
	if s.StripeKB > maxStripeKB {
		return fmt.Errorf("scenario %q: stripe_kb %d exceeds the %d KiB cap", s.Name, s.StripeKB, maxStripeKB)
	}
	if s.QoS != nil {
		if _, err := s.QoS.Params(); err != nil {
			return fmt.Errorf("scenario %q: qos: %w", s.Name, err)
		}
	}
	servers := s.Servers
	if servers == 0 {
		servers = cluster.Default().Servers
	}
	if s.Faults != nil {
		if err := s.Faults.validate(servers); err != nil {
			return fmt.Errorf("scenario %q: faults: %w", s.Name, err)
		}
	}
	for i, a := range s.Apps {
		label := appName(a, i)
		if a.Procs <= 0 {
			return fmt.Errorf("scenario %q app %q: procs must be > 0, got %d", s.Name, label, a.Procs)
		}
		if len(a.Phases) > 0 {
			if a.Pattern != "" || a.BlockMB != 0 || a.TransferKB != 0 ||
				a.QD != 0 || a.ThinkMS != 0 || a.Read {
				return fmt.Errorf("scenario %q app %q: phases and the single-burst knobs "+
					"(pattern, block_mb, transfer_kb, qd, think_ms, read) are mutually exclusive; "+
					"move them into the io phases", s.Name, label)
			}
			if a.Iterations < 0 {
				return fmt.Errorf("scenario %q app %q: iterations must be >= 0, got %d",
					s.Name, label, a.Iterations)
			}
			for pi, ph := range a.Phases {
				if err := ph.validate(); err != nil {
					return fmt.Errorf("scenario %q app %q phase %d: %w", s.Name, label, pi, err)
				}
			}
		} else {
			if a.Iterations != 0 || a.Seed != 0 {
				return fmt.Errorf("scenario %q app %q: iterations/seed apply only to phases", s.Name, label)
			}
			if a.BlockMB <= 0 {
				return fmt.Errorf("scenario %q app %q: block_mb must be > 0, got %d", s.Name, label, a.BlockMB)
			}
			if a.BlockMB > maxBlockMB || a.TransferKB > maxTransferKB {
				return fmt.Errorf("scenario %q app %q: block_mb/transfer_kb exceed the %d MiB / %d KiB caps",
					s.Name, label, maxBlockMB, maxTransferKB)
			}
			pat, err := parsePattern(a.Pattern)
			if err != nil {
				return fmt.Errorf("scenario %q app %q: %w", s.Name, label, err)
			}
			if pat == workload.Strided {
				if a.TransferKB <= 0 {
					return fmt.Errorf("scenario %q app %q: strided pattern needs transfer_kb > 0", s.Name, label)
				}
				if (a.BlockMB<<20)%(a.TransferKB<<10) != 0 {
					return fmt.Errorf("scenario %q app %q: block_mb %d not divisible by transfer_kb %d",
						s.Name, label, a.BlockMB, a.TransferKB)
				}
			}
		}
		if a.PPN < 0 || a.QD < 0 || a.ThinkMS < 0 || a.StripeKB < 0 || a.StartS < 0 {
			return fmt.Errorf("scenario %q app %q: negative parameter", s.Name, label)
		}
		if a.StripeKB > maxStripeKB {
			return fmt.Errorf("scenario %q app %q: stripe_kb %d exceeds the %d KiB cap",
				s.Name, label, a.StripeKB, maxStripeKB)
		}
		for _, t := range a.TargetServers {
			if t < 0 || t >= servers {
				return fmt.Errorf("scenario %q app %q: target server %d outside the %d-server platform",
					s.Name, label, t, servers)
			}
		}
	}
	// A full placement check (apps fitting the node range) needs the built
	// config; Build performs it via core's AppSpec.Validate.
	return nil
}

// validate checks one phase: its kind must be known and exactly the knobs
// of that kind may be set.
func (ph Phase) validate() error {
	if ph.Kind == "" {
		return fmt.Errorf("phase needs a kind (valid: %s)", strings.Join(phaseKindNames, ", "))
	}
	kind, err := parsePhaseKind(ph.Kind)
	if err != nil {
		return err
	}
	ioKnobs := ph.Pattern != "" || ph.BlockMB != 0 || ph.TransferKB != 0 ||
		ph.QD != 0 || ph.ThinkMS != 0 || ph.Read
	switch kind {
	case workload.PhaseIO:
		if ph.ComputeS != 0 || ph.JitterS != 0 {
			return fmt.Errorf("io phase with compute_s/jitter_s")
		}
		if ph.BlockMB <= 0 {
			return fmt.Errorf("io phase needs block_mb > 0, got %d", ph.BlockMB)
		}
		if ph.BlockMB > maxBlockMB || ph.TransferKB > maxTransferKB {
			return fmt.Errorf("io phase block_mb/transfer_kb exceed the %d MiB / %d KiB caps",
				maxBlockMB, maxTransferKB)
		}
		pat, err := parsePattern(ph.Pattern)
		if err != nil {
			return err
		}
		if pat == workload.Strided {
			if ph.TransferKB <= 0 {
				return fmt.Errorf("strided io phase needs transfer_kb > 0")
			}
			if (ph.BlockMB<<20)%(ph.TransferKB<<10) != 0 {
				return fmt.Errorf("block_mb %d not divisible by transfer_kb %d", ph.BlockMB, ph.TransferKB)
			}
		}
		if ph.QD < 0 || ph.ThinkMS < 0 {
			return fmt.Errorf("negative parameter")
		}
	case workload.PhaseCompute:
		if ioKnobs {
			return fmt.Errorf("compute phase with io knobs")
		}
		if ph.ComputeS < 0 || ph.JitterS < 0 {
			return fmt.Errorf("negative compute_s/jitter_s")
		}
	case workload.PhaseBarrier:
		if ioKnobs || ph.ComputeS != 0 || ph.JitterS != 0 {
			return fmt.Errorf("barrier phase carries no knobs")
		}
	}
	return nil
}

// compile turns one validated phase into its workload form.
func (ph Phase) compile() workload.Phase {
	kind, _ := parsePhaseKind(ph.Kind) // validated
	switch kind {
	case workload.PhaseIO:
		pat, _ := parsePattern(ph.Pattern) // validated
		return workload.Phase{Kind: workload.PhaseIO, IO: workload.Spec{
			Pattern:      pat,
			BlockBytes:   ph.BlockMB << 20,
			TransferSize: ph.TransferKB << 10,
			QD:           ph.QD,
			ThinkTime:    int64(ph.ThinkMS * float64(sim.Millisecond)),
			Read:         ph.Read,
		}}
	case workload.PhaseCompute:
		return workload.Phase{Kind: workload.PhaseCompute,
			Compute:    int64(ph.ComputeS * float64(sim.Second)),
			JitterMean: int64(ph.JitterS * float64(sim.Second))}
	}
	return workload.Phase{Kind: workload.PhaseBarrier}
}

// program compiles an app's phase list into a workload.Program. The default
// seed is a distinct per-position splitmix64 increment multiple, so unseeded
// co-running apps decorrelate and the choice is stable across runs (the seed
// must not depend on which subset of apps a pairwise co-run selects).
func (a App) program(i int) *workload.Program {
	seed := a.Seed
	if seed == 0 {
		seed = uint64(i+1) * 0x9E3779B97F4A7C15
	}
	prog := &workload.Program{Iterations: a.Iterations, Seed: seed}
	for _, ph := range a.Phases {
		prog.Phases = append(prog.Phases, ph.compile())
	}
	return prog
}

// Backends returns the backend axis this scenario runs on: the pinned one
// if Backend is set, otherwise HDD and SSD.
func (s Spec) Backends() ([]cluster.BackendKind, error) {
	if s.Backend == "" {
		return []cluster.BackendKind{cluster.HDD, cluster.SSD}, nil
	}
	b, err := cluster.ParseBackend(s.Backend)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	return []cluster.BackendKind{b}, nil
}

// Build compiles the scenario for one backend into a platform config and a
// core.DeltaSpec. Applications are packed onto consecutive disjoint node
// ranges in list order; when Nodes is 0 the platform is sized to exactly
// fit them.
func (s Spec) Build(backend cluster.BackendKind) (cluster.Config, core.DeltaSpec, error) {
	if err := s.Validate(); err != nil {
		return cluster.Config{}, core.DeltaSpec{}, err
	}
	if s.Trace != nil {
		return cluster.Config{}, core.DeltaSpec{},
			fmt.Errorf("scenario %q: a trace scenario replays a recording; use Replay", s.Name)
	}
	if s.Population != nil {
		// Stamp out the generated tenants and compile the expanded spec;
		// the expansion is deterministic, so building twice is free of
		// surprises (RunFleet keeps the tenant list alongside).
		es, _, err := ExpandPopulation(s)
		if err != nil {
			return cluster.Config{}, core.DeltaSpec{}, err
		}
		return es.Build(backend)
	}
	cfg := cluster.Default()
	cfg.Backend = backend
	if s.Nodes > 0 {
		cfg.ComputeNodes = s.Nodes
	}
	if s.CoresPerNode > 0 {
		cfg.CoresPerNode = s.CoresPerNode
	}
	if s.Servers > 0 {
		cfg.Servers = s.Servers
	}
	if s.StripeKB > 0 {
		cfg.StripeSize = s.StripeKB << 10
	}
	if s.SSDChannels > 0 {
		cfg.SSD.Channels = s.SSDChannels
	}
	mode, err := parseSync(s.Sync)
	if err != nil {
		return cluster.Config{}, core.DeltaSpec{}, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	cfg.Sync = mode
	if s.QoS != nil {
		qp, err := s.QoS.Params()
		if err != nil {
			return cluster.Config{}, core.DeltaSpec{}, fmt.Errorf("scenario %q: qos: %w", s.Name, err)
		}
		cfg.Srv.QoS = qp
	}
	if s.Faults != nil {
		cfg.Faults = s.Faults.plan()
	}

	spec := core.DeltaSpec{Cfg: cfg, Shards: s.Shards}
	node := 0
	for i, a := range s.Apps {
		ppn := a.PPN
		if ppn == 0 {
			ppn = cfg.CoresPerNode
		}
		app := core.AppSpec{
			Name:          appName(a, i),
			Procs:         a.Procs,
			FirstNode:     node,
			ProcsPerNode:  ppn,
			TargetServers: a.TargetServers,
			Stripe:        a.StripeKB << 10,
		}
		if len(a.Phases) > 0 {
			app.Program = a.program(i)
		} else {
			pat, _ := parsePattern(a.Pattern) // validated above
			app.Workload = workload.Spec{
				Pattern:      pat,
				BlockBytes:   a.BlockMB << 20,
				TransferSize: a.TransferKB << 10,
				QD:           a.QD,
				ThinkTime:    int64(a.ThinkMS * float64(sim.Millisecond)),
				Read:         a.Read,
			}
		}
		node += (a.Procs + ppn - 1) / ppn
		spec.Apps = append(spec.Apps, app)
		spec.StartOffsets = append(spec.StartOffsets, sim.Seconds(a.StartS))
	}
	if s.Nodes == 0 {
		cfg.ComputeNodes = node
		spec.Cfg = cfg
	}
	for _, a := range spec.Apps {
		if err := a.Validate(spec.Cfg); err != nil {
			return cluster.Config{}, core.DeltaSpec{}, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	if len(s.DeltaS) == 0 {
		spec.Deltas = []sim.Time{0}
	} else {
		for _, d := range s.DeltaS {
			spec.Deltas = append(spec.Deltas, sim.Seconds(d))
		}
	}
	return spec.Cfg, spec, nil
}

// Smoke returns a shrunken copy for CI smoke runs and golden tests:
// process counts divided by 8, per-process volume by 16, the δ grid
// reduced to at most three points (the two extremes plus zero), and the
// time axes — δ values and fixed start offsets — divided by the combined
// load shrink (8×16). Completion times scale roughly with per-server load,
// so scaling the time axes by the same factor preserves the arrival
// geometry: bursts that overlap at full size still overlap at smoke size,
// and every interference mechanism exercises the same code path, only
// smaller.
func (s Spec) Smoke() Spec {
	// procs/8 × volume/16 shrinks per-server load — and with it burst
	// durations — by ~128, so δ and start_s shrink by the same factor.
	const timeDiv = 8 * 16
	out := s
	// A population scenario shrinks through its generator parameters: same
	// tenant count and class mix (a smoke fleet IS the fleet, only
	// smaller), volumes /16, per-class procs /8 (min 1), time axes /128.
	if s.Population != nil {
		p := s.Population.Shrink(16, 8, timeDiv)
		out.Population = &p
		return out
	}
	out.Apps = make([]App, len(s.Apps))
	for i, a := range s.Apps {
		a.Procs = max(2, a.Procs/8)
		a.StartS /= timeDiv
		if len(a.Phases) > 0 {
			// Programs shrink phase by phase: burst volumes like the
			// single-burst path, compute pauses and jitter means with the
			// time axes.
			phases := make([]Phase, len(a.Phases))
			for pi, ph := range a.Phases {
				ph.BlockMB = shrinkBlock(ph.BlockMB)
				ph.TransferKB = fixTransfer(ph.Pattern, ph.BlockMB, ph.TransferKB)
				ph.ComputeS /= timeDiv
				ph.JitterS /= timeDiv
				phases[pi] = ph
			}
			a.Phases = phases
		} else {
			a.BlockMB = max(1, a.BlockMB/16)
			a.TransferKB = fixTransfer(a.Pattern, a.BlockMB, a.TransferKB)
		}
		out.Apps[i] = a
	}
	ds := s.DeltaS
	if n := len(ds); n > 3 {
		cut := []float64{ds[0]}
		for _, d := range ds {
			if d == 0 && ds[0] != 0 {
				cut = append(cut, 0)
				break
			}
		}
		if last := ds[n-1]; last != cut[len(cut)-1] {
			cut = append(cut, last)
		}
		ds = cut
	}
	out.DeltaS = make([]float64, len(ds))
	for i, d := range ds {
		out.DeltaS[i] = d / timeDiv
	}
	// The fault timeline rides the same time axis as δ and start_s — an
	// event that lands mid-burst at full scale lands at the same fraction
	// of the shrunken burst — while the RPC-scale retry knobs shrink only
	// with the per-process volume (the 16 above): per-request latency does
	// not shrink with the process count, and a deadline scaled below it
	// would turn the smoke run into a divergent retry storm.
	if s.Faults != nil {
		out.Faults = s.Faults.smoke(timeDiv, 16)
	}
	// Nodes: re-derive from the shrunken apps when the original pinned a
	// node count (auto-sized scenarios re-fit in Build anyway).
	if s.Nodes > 0 {
		out.Nodes = 0
	}
	return out
}

// shrinkBlock divides an io volume by the smoke factor; zero (a non-io
// phase) stays zero.
func shrinkBlock(mb int64) int64 {
	if mb <= 0 {
		return mb
	}
	return max(1, mb/16)
}

// fixTransfer keeps strided divisibility after shrinking: when the shrunken
// block no longer divides by the transfer size, fall back to one request
// per block.
func fixTransfer(pattern string, blockMB, transferKB int64) int64 {
	if pat, err := parsePattern(pattern); err == nil && pat == workload.Strided &&
		transferKB > 0 && (blockMB<<20)%(transferKB<<10) != 0 {
		return blockMB << 10
	}
	return transferKB
}

// Parse decodes one scenario from JSON, rejecting unknown fields (a typo'd
// knob should fail loudly, not silently run the default).
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Load reads and parses one scenario file.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
