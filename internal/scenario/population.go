package scenario

import (
	"fmt"

	"repro/internal/population"
)

// tenantApp converts one generated tenant into a declarative App. The
// population layer emits phases in scenario units (MiB/KiB/seconds) with
// the same field meanings, so the conversion is mechanical; the tenant's
// private seed rides along so the expansion stays independent of the
// tenant's position in the list.
func tenantApp(t population.Tenant) App {
	a := App{
		Name:       t.Name,
		Procs:      t.Procs,
		StartS:     t.StartS,
		Iterations: t.Iterations,
		Seed:       t.Seed,
	}
	a.Phases = make([]Phase, len(t.Phases))
	for i, ph := range t.Phases {
		a.Phases[i] = Phase{
			Kind:       ph.Kind,
			Pattern:    ph.Pattern,
			BlockMB:    ph.BlockMB,
			TransferKB: ph.TransferKB,
			Read:       ph.Read,
			ComputeS:   ph.ComputeS,
			JitterS:    ph.JitterS,
		}
	}
	return a
}

// ExpandPopulation stamps the generated tenants of a population scenario
// into a plain app-list Spec (Population cleared, Apps filled, everything
// else carried over) and returns the tenant list alongside. The expansion
// is deterministic in the population seed, and the expanded spec passes
// Validate — the generator only emits knob combinations the scenario layer
// accepts (guarded by TestExpandedPopulationValidates).
func ExpandPopulation(s Spec) (Spec, []population.Tenant, error) {
	if s.Population == nil {
		return Spec{}, nil, fmt.Errorf("scenario %q: no population block", s.Name)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, nil, err
	}
	tenants, err := population.Generate(*s.Population)
	if err != nil {
		return Spec{}, nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	out := s
	out.Population = nil
	out.Apps = make([]App, len(tenants))
	for i, t := range tenants {
		out.Apps[i] = tenantApp(t)
	}
	return out, tenants, nil
}
