package scenario

// Serial-oracle conformance suite for the sharded event kernel: every
// built-in scenario, on both storage backends, must produce a canonical
// result (goldenResult — completion vectors, δ points with diagnostics and
// event counts, pairwise IF matrices) that is byte-for-byte identical at
// every shard count. The serial engine (shards=1) is the oracle; the
// sharded kernel is only allowed to change wall-clock time, never a single
// output byte. Because sharded results equal serial results by
// construction, the golden files never need regeneration for a shard-count
// change — `-update` exists for intentional *model* changes only.

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

// conformanceShardCounts returns the shard counts to check against the
// serial oracle for a spec with the given server count: a minimal split, a
// mid split, and the maximum useful count (clients + one shard per server).
func conformanceShardCounts(servers int) []int {
	return []int{2, 4, 1 + servers}
}

func TestShardConformance(t *testing.T) {
	backends := []cluster.BackendKind{cluster.HDD, cluster.SSD}
	builtins := Builtin()
	if testing.Short() {
		// -race CI smoke: one backend, every scenario, the max shard count
		// (the config that crosses the most shard boundaries).
		backends = backends[:1]
	}
	for _, s := range builtins {
		for _, backend := range backends {
			s, backend := s, backend
			t.Run(s.Name+"@"+backend.String(), func(t *testing.T) {
				t.Parallel()
				smoke := s.Smoke()
				servers := smoke.Servers
				if servers == 0 {
					servers = cluster.Default().Servers
				}
				serial, err := Run(smoke, backend, core.Runner{Parallelism: 1, Shards: 1})
				if err != nil {
					t.Fatal(err)
				}
				want := goldenResult(serial)
				counts := conformanceShardCounts(servers)
				if testing.Short() {
					counts = counts[len(counts)-1:]
				}
				for _, k := range counts {
					r, err := Run(smoke, backend, core.Runner{Parallelism: 1, Shards: k})
					if err != nil {
						t.Fatal(err)
					}
					if got := goldenResult(r); got != want {
						t.Errorf("shards=%d diverges from serial oracle (sha256 %x vs %x):\n got:\n%s\nwant:\n%s",
							k, sha256.Sum256([]byte(got)), sha256.Sum256([]byte(want)), got, want)
					}
				}
			})
		}
	}
}

// TestShardKnobInSpec checks the declarative path: a scenario carrying the
// "shards" knob runs sharded through the default Runner and still matches
// the serial oracle bit-for-bit.
func TestShardKnobInSpec(t *testing.T) {
	s := Builtin()[0].Smoke()
	serial, err := Run(s, cluster.HDD, core.Runner{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Shards = 3
	sharded, err := Run(s, cluster.HDD, core.Runner{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := goldenResult(sharded), goldenResult(serial); got != want {
		t.Errorf("spec shards=3 diverges from serial oracle:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestShardKnobValidation pins the knob's error surface.
func TestShardKnobValidation(t *testing.T) {
	s := Builtin()[0]
	s.Shards = -1
	if err := s.Validate(); err == nil {
		t.Error("negative shards passed validation")
	}
	if _, err := Parse([]byte(fmt.Sprintf(
		`{"name":"t","trace":{"path":"x"},"shards":2}`))); err == nil {
		t.Error("trace scenario with shards knob passed validation")
	}
}
