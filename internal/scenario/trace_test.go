package scenario

import (
	"path/filepath"
	"testing"

	"repro/internal/cluster"
	"repro/internal/trace"
)

// TestRecordReplayBuiltins is the acceptance pin for the record→replay
// round trip: replaying a recorded builtin scenario reproduces identical
// per-application completion times, on both backends, for the program-based
// builtins and a legacy single-burst one.
func TestRecordReplayBuiltins(t *testing.T) {
	names := []string{"periodic-checkpoint-4", "bursty-poisson-mix", "checkpoint-vs-read"}
	for _, name := range names {
		s, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		s = s.Smoke()
		for _, backend := range []cluster.BackendKind{cluster.HDD, cluster.SSD} {
			t.Run(name+"@"+backend.String(), func(t *testing.T) {
				tr, res, err := Record(s, backend)
				if err != nil {
					t.Fatal(err)
				}
				if len(tr.Records) == 0 {
					t.Fatal("recorded no records")
				}
				rep, err := trace.Replay(tr)
				if err != nil {
					t.Fatal(err)
				}
				for i, a := range rep.Apps {
					if a.Start != res.Apps[i].Start || a.End != res.Apps[i].End {
						t.Errorf("app %s: recorded [%v..%v], replayed [%v..%v]",
							a.Name, res.Apps[i].Start, res.Apps[i].End, a.Start, a.End)
					}
				}
				if !rep.Identical() {
					t.Fatal("replay diverged from recording")
				}
			})
		}
	}
}

// TestTraceBlockReplay drives the declarative path end to end: record a
// builtin to a file, replay it through a spec with a "trace" block, then
// replay it again under a qos block (the counterfactual arm).
func TestTraceBlockReplay(t *testing.T) {
	s, err := Lookup("periodic-checkpoint-4")
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := Record(s.Smoke(), cluster.HDD)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ckpt.trace")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	spec := Spec{Name: "replay-ckpt", Trace: &TraceBlock{Path: path}}
	rep, loaded, err := Replay(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Records) != len(tr.Records) {
		t.Fatalf("loaded %d records, recorded %d", len(loaded.Records), len(tr.Records))
	}
	if !rep.Identical() {
		t.Fatal("file round trip broke replay bit-identity")
	}

	qspec := Spec{Name: "replay-ckpt-fairshare", Trace: &TraceBlock{Path: path},
		QoS: &QoS{Scheduler: "fairshare"}}
	qrep, _, err := Replay(qspec)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range qrep.Apps {
		if a.Elapsed <= 0 {
			t.Fatalf("app %s: non-positive counterfactual elapsed", a.Name)
		}
	}
}

// TestTraceSpecValidation pins the strictness of the trace block.
func TestTraceSpecValidation(t *testing.T) {
	ok := Spec{Name: "r", Trace: &TraceBlock{Path: "x.trace"}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{Name: "r", Trace: &TraceBlock{}},
		{Name: "r", Trace: &TraceBlock{Path: "x"}, Apps: []App{{Procs: 1, BlockMB: 1}}},
		{Name: "r", Trace: &TraceBlock{Path: "x"}, DeltaS: []float64{0}},
		{Name: "r", Trace: &TraceBlock{Path: "x"}, Backend: "hdd"},
		{Name: "r", Trace: &TraceBlock{Path: "x"}, Servers: 4},
		{Name: "r", Trace: &TraceBlock{Path: "x"}, QoS: &QoS{}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	// A trace spec cannot Build — it replays.
	if _, _, err := ok.Build(cluster.HDD); err == nil {
		t.Fatal("expected Build to reject a trace scenario")
	}
	// Replay of a non-trace spec errors.
	if _, _, err := Replay(Spec{Name: "x", Apps: []App{{Procs: 1, BlockMB: 1}}}); err == nil {
		t.Fatal("expected Replay to reject a non-trace scenario")
	}
}

// TestPhaseValidation pins the strictness of the phases block.
func TestPhaseValidation(t *testing.T) {
	prog := func(apps ...App) Spec { return Spec{Name: "p", Apps: apps} }
	good := []Spec{
		prog(App{Procs: 4, Iterations: 2, Phases: []Phase{
			{Kind: "barrier"},
			{Kind: "io", BlockMB: 1},
			{Kind: "compute", ComputeS: 0.1, JitterS: 0.2},
		}}),
		prog(App{Procs: 4, Phases: []Phase{
			{Kind: "io", Pattern: "strided", BlockMB: 1, TransferKB: 256, QD: 4},
		}}),
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("good case %d: %v", i, err)
		}
	}
	bad := []Spec{
		// phases + single-burst knobs
		prog(App{Procs: 4, BlockMB: 1, Phases: []Phase{{Kind: "io", BlockMB: 1}}}),
		// iterations without phases
		prog(App{Procs: 4, BlockMB: 1, Iterations: 2}),
		// seed without phases
		prog(App{Procs: 4, BlockMB: 1, Seed: 3}),
		// missing kind
		prog(App{Procs: 4, Phases: []Phase{{BlockMB: 1}}}),
		// unknown kind
		prog(App{Procs: 4, Phases: []Phase{{Kind: "wait"}}}),
		// io phase without block_mb
		prog(App{Procs: 4, Phases: []Phase{{Kind: "io"}}}),
		// io phase with compute knobs
		prog(App{Procs: 4, Phases: []Phase{{Kind: "io", BlockMB: 1, ComputeS: 1}}}),
		// strided io phase without transfer
		prog(App{Procs: 4, Phases: []Phase{{Kind: "io", Pattern: "strided", BlockMB: 1}}}),
		// indivisible strided io phase
		prog(App{Procs: 4, Phases: []Phase{{Kind: "io", Pattern: "strided", BlockMB: 1, TransferKB: 300}}}),
		// compute phase with io knobs
		prog(App{Procs: 4, Phases: []Phase{{Kind: "compute", BlockMB: 1}}}),
		// negative compute
		prog(App{Procs: 4, Phases: []Phase{{Kind: "compute", ComputeS: -1}}}),
		// barrier phase with knobs
		prog(App{Procs: 4, Phases: []Phase{{Kind: "barrier", ComputeS: 1}}}),
		// negative iterations
		prog(App{Procs: 4, Iterations: -1, Phases: []Phase{{Kind: "io", BlockMB: 1}}}),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad case %d: expected validation error", i)
		}
	}
}

// TestSmokeShrinksPhases: smoke scaling reaches into program phases.
func TestSmokeShrinksPhases(t *testing.T) {
	s, err := Lookup("periodic-checkpoint-4")
	if err != nil {
		t.Fatal(err)
	}
	sm := s.Smoke()
	ck := sm.Apps[0]
	if ck.Procs != 4 {
		t.Fatalf("procs = %d, want 4", ck.Procs)
	}
	if got := ck.Phases[1].BlockMB; got != 1 {
		t.Fatalf("io phase block_mb = %d, want 1", got)
	}
	if got := ck.Phases[2].ComputeS; got != 2.0/128 {
		t.Fatalf("compute_s = %v, want %v", got, 2.0/128)
	}
	if err := sm.Validate(); err != nil {
		t.Fatal(err)
	}
	// The smoke spec still records and replays bit-identically.
	tr, _, err := Record(sm, cluster.HDD)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := trace.Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical() {
		t.Fatal("smoke replay diverged")
	}
}
