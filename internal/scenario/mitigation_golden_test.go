package scenario

// Golden guard for the mitigation axis: every built-in scenario is swept
// at smoke scale on HDD under the standard scheme set — {off, fairshare,
// tokenbucket, controller} — and each arm's headline numbers (peak IF,
// unfairness, aggregate throughput) are committed VERBATIM alongside a
// checksum of the arm's full canonical δ-graph. The readable columns make
// the acceptance property reviewable in the diff (a ≥20% fairshare peak-IF
// cut on the showcase scenario); the hash makes any numeric drift loud.
//
// Regenerate (after an *intentional* model change only) with:
//
//	go test ./internal/scenario -run TestGoldenMitigation -update-golden

import (
	"crypto/sha256"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

const mitigationGoldenFile = "testdata/golden_mitigation.txt"

// mitigationShowcase names the built-in scenario whose committed golden
// must demonstrate the headline mitigation win, and the minimum peak-IF
// reduction FairShare must deliver on it.
const (
	mitigationShowcase      = "aggressor-victim"
	showcaseMinFairSharePct = 20.0
)

// goldenSweepArm serializes one arm's full δ-graph canonically (integer
// nanoseconds; %.17g floats round-trip float64 bit-for-bit).
func goldenSweepArm(name string, g *core.DeltaGraph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scheme %s\n", name)
	for i, a := range g.Alone {
		fmt.Fprintf(&b, "alone %d %d\n", i, a)
	}
	for j, p := range g.Points {
		fmt.Fprintf(&b, "point %d delta=%d", j, p.Delta)
		for i := range p.Elapsed {
			fmt.Fprintf(&b, " e%d=%d if%d=%.17g tp%d=%.17g", i, p.Elapsed[i], i, p.IF[i], i, p.Throughput[i])
		}
		d := p.Diag
		fmt.Fprintf(&b, " drops=%d timeouts=%d seeks=%d devbytes=%d events=%d\n",
			d.PortDrops, d.Timeouts, d.DeviceSeeks, d.DeviceBytes, d.Events)
	}
	return b.String()
}

// mitigationRows runs every built-in scenario's smoke-scale sweep on HDD
// and renders one golden line per (scenario, scheme), in registry order.
func mitigationRows(t *testing.T) []string {
	t.Helper()
	pool := core.Runner{Parallelism: 0}
	schemes := core.StandardSchemes()
	var rows []string
	for _, s := range Builtin() {
		sw, err := Sweep(s.Smoke(), cluster.HDD, schemes, pool)
		if err != nil {
			t.Fatalf("sweeping %s: %v", s.Name, err)
		}
		pareto := sw.Pareto()
		for i, r := range pareto {
			sum := sha256.Sum256([]byte(goldenSweepArm(r.Name, sw.Graphs[i])))
			rows = append(rows, fmt.Sprintf(
				"%s@hdd %s peak_if=%.17g dIF_pct=%.17g unfair=%.17g agg_bps=%.17g sha=%x",
				s.Name, r.Name, r.PeakIF, r.IFReductionPct, r.Unfairness, r.AggBps, sum))
		}
		// The acceptance property, checked live on every run (not only
		// against the committed file): the showcase scenario's fairshare
		// arm cuts peak IF by at least the advertised margin.
		if s.Name == mitigationShowcase {
			off, fs := -1.0, -1.0
			for _, r := range pareto {
				switch r.Name {
				case "off":
					off = r.PeakIF
				case "fairshare":
					fs = r.PeakIF
				}
			}
			if off <= 0 || fs < 0 {
				t.Errorf("%s: off/fairshare arms missing or degenerate (off %.3f, fairshare %.3f)",
					s.Name, off, fs)
			} else if got := (off - fs) / off * 100; got < showcaseMinFairSharePct {
				t.Errorf("%s: fairshare cuts peak IF by %.1f%%, want >= %.0f%% (off %.3f, fairshare %.3f)",
					s.Name, got, showcaseMinFairSharePct, off, fs)
			}
		}
	}
	return rows
}

func TestGoldenMitigation(t *testing.T) {
	rows := mitigationRows(t)

	if updateGolden() {
		var b strings.Builder
		b.WriteString("# Mitigation sweep of every built-in scenario at smoke scale on HDD:\n")
		b.WriteString("# per scheme, the Pareto headline numbers verbatim plus a sha256 of the\n")
		b.WriteString("# arm's full canonical delta-graph.\n")
		b.WriteString("# Regenerate: go test ./internal/scenario -run TestGoldenMitigation -update-golden\n")
		for _, r := range rows {
			b.WriteString(r)
			b.WriteByte('\n')
		}
		if err := os.WriteFile(mitigationGoldenFile, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d rows)", mitigationGoldenFile, len(rows))
		return
	}

	data, err := os.ReadFile(mitigationGoldenFile)
	if err != nil {
		t.Fatalf("reading %s (regenerate with -update-golden): %v", mitigationGoldenFile, err)
	}
	var want []string
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		want = append(want, line)
	}
	if len(want) != len(rows) {
		t.Fatalf("golden has %d rows, sweep produced %d (regenerate with -update-golden)", len(want), len(rows))
	}
	for i := range rows {
		if rows[i] != want[i] {
			t.Errorf("row %d drifted:\n got %s\nwant %s", i, rows[i], want[i])
		}
	}
}
