package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
)

// RenderBaselines tabulates the per-app alone completion vector of a result.
func RenderBaselines(r *Result) *report.Table {
	t := report.New(fmt.Sprintf("%s on %s: alone baselines", r.Spec.Name, r.Backend),
		"app", "procs", "pattern", "alone_s", "start_s")
	for i, a := range r.Spec.Apps {
		name := a.Name
		if name == "" {
			name = r.Matrix.Names[i]
		}
		pattern := a.Pattern
		if pattern == "" {
			pattern = "contiguous"
		}
		t.Add(name, a.Procs, pattern, r.Graph.Alone[i].Seconds(), a.StartS)
	}
	return t
}

// RenderGraph tabulates the δ-graph: one row per δ, per-app elapsed and IF
// columns, plus the incast diagnostics.
func RenderGraph(r *Result) *report.Table {
	cols := []string{"delta_s"}
	for _, name := range r.Matrix.Names {
		cols = append(cols, name+"_s", "IF_"+name)
	}
	cols = append(cols, "drops", "timeouts", "seeks")
	t := report.New(fmt.Sprintf("%s on %s: delta-graph", r.Spec.Name, r.Backend), cols...)
	for _, p := range r.Graph.Points {
		row := []interface{}{p.Delta.Seconds()}
		for i := range p.Elapsed {
			row = append(row, p.Elapsed[i].Seconds(), p.IF[i])
		}
		row = append(row, p.Diag.PortDrops, p.Diag.Timeouts, p.Diag.DeviceSeeks)
		t.Add(row...)
	}
	return t
}

// RenderMatrix tabulates the pairwise IF matrix: row i, column j holds the
// interference factor of app i (the victim) co-running with app j (the
// aggressor) at δ=0; the diagonal is 1 by definition.
func RenderMatrix(r *Result) *report.Table {
	m := r.Matrix
	cols := append([]string{"victim \\ with"}, m.Names...)
	t := report.New(fmt.Sprintf("%s on %s: pairwise IF matrix", r.Spec.Name, r.Backend), cols...)
	for i, name := range m.Names {
		row := []interface{}{name}
		for j := range m.Names {
			row = append(row, m.Cell[i][j])
		}
		t.Add(row...)
	}
	return t
}

// RenderFaults tabulates a healthy-vs-faulted comparison: per-app elapsed
// under both arms with the IF-under-faults ratio, then one availability
// row summing the faulted run's ledger.
func RenderFaults(s Spec, backend fmt.Stringer, fc core.FaultComparison) *report.Table {
	t := report.New(fmt.Sprintf("%s on %s: healthy vs faulted (delta=0 co-run)", s.Name, backend),
		"app", "healthy_s", "faulted_s", "IF_faults")
	names := AppNames(s)
	for i := range fc.Faulted.Apps {
		t.Add(names[i], fc.Healthy.Apps[i].Elapsed.Seconds(),
			fc.Faulted.Apps[i].Elapsed.Seconds(), fc.IF(i))
	}
	return t
}

// RenderAvailability tabulates the faulted run's availability ledger.
func RenderAvailability(s Spec, backend fmt.Stringer, fc core.FaultComparison) *report.Table {
	av := fc.Faulted.Diag.Avail
	t := report.New(fmt.Sprintf("%s on %s: availability", s.Name, backend),
		"crashes", "downtime_s", "discarded_mb", "link_drops",
		"rpc_timeouts", "retries", "failures", "goodput_ratio")
	t.Add(av.Crashes, av.Downtime.Seconds(), float64(av.DiscardedBytes)/(1<<20),
		av.LinkDrops, av.RPCTimeouts, av.Retries, av.Failures, fc.GoodputRatio())
	return t
}

// RenderSummary tabulates one line per (scenario, backend) result: peak IF
// in the δ-graph, the worst pairwise victim/aggressor, and matrix asymmetry.
func RenderSummary(results []*Result) *report.Table {
	t := report.New("scenario summary",
		"scenario", "backend", "apps", "peak_IF", "unfairness", "worst_pair", "pair_IF", "asymmetry")
	for _, r := range results {
		vi, ai, f := r.Matrix.Peak()
		pair := "-"
		if r.Matrix.Dim() > 1 {
			pair = r.Matrix.Names[vi] + "<-" + r.Matrix.Names[ai]
		}
		t.Add(r.Spec.Name, r.Backend.String(), len(r.Spec.Apps),
			r.Graph.PeakIF(), r.Graph.Unfairness(), pair, f, r.Matrix.Asymmetry())
	}
	return t
}
