package scenario

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/qos"
	"repro/internal/sim"
)

// TestQoSBlockCompilesAndValidates: the declarative qos block compiles
// into scheduler params with unit conversion, strict scheduler-name
// validation, and rejection of negative knobs.
func TestQoSBlockCompilesAndValidates(t *testing.T) {
	spec := Spec{
		Name: "q", Servers: 2,
		QoS:  &QoS{Scheduler: "tokenbucket", RateMBps: 32, BurstMB: 2, FlowSlots: 4},
		Apps: []App{{Procs: 4, BlockMB: 8}},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg, _, err := spec.Build(cluster.HDD)
	if err != nil {
		t.Fatal(err)
	}
	qp := cfg.Srv.QoS
	if qp.Kind != qos.TokenBucket || qp.RateBytesPerSec != 32e6 || qp.BurstBytes != 2<<20 || qp.FlowSlots != 4 {
		t.Fatalf("qos params not compiled: %+v", qp)
	}

	spec.QoS = &QoS{Scheduler: "fairshare", QuantumKB: 512, InflightChunks: 2, TickMS: 1.5}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	qp2, err := spec.QoS.Params()
	if err != nil {
		t.Fatal(err)
	}
	if qp2.QuantumBytes != 512<<10 || qp2.InflightChunks != 2 || qp2.Tick != 1500*sim.Microsecond {
		t.Fatalf("unit conversion wrong: %+v", qp2)
	}

	bad := []*QoS{
		{Scheduler: "bogus"},
		{InflightChunks: 2}, // forgotten "scheduler" must not silently run Off
		{Scheduler: "fairshare", QuantumKB: -1},
		{Scheduler: "tokenbucket", RateMBps: -5},
		{Scheduler: "controller", TickMS: -1},
	}
	for i, q := range bad {
		spec.QoS = q
		if err := spec.Validate(); err == nil {
			t.Errorf("bad qos block %d passed validation", i)
		}
	}
	// A typo'd field name fails loudly, like everywhere else in the format.
	if _, err := Parse([]byte(`{"name":"x","apps":[{"procs":1,"block_mb":1}],` +
		`"qos":{"scheduler":"fairshare","quantumkb":1}}`)); err == nil {
		t.Error("unknown qos field accepted")
	}
	// The error of an unknown scheduler lists the valid set.
	spec.QoS = &QoS{Scheduler: "bogus"}
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "fairshare") {
		t.Errorf("unknown scheduler error should list the valid set, got %v", err)
	}
}

// TestQoSBlockChangesResults: a scenario run under a qos block must
// produce a different δ-graph than the unmitigated run on HDD (the knob is
// actually wired through Build into the platform).
func TestQoSBlockChangesResults(t *testing.T) {
	s, err := Lookup("aggressor-victim")
	if err != nil {
		t.Fatal(err)
	}
	s = s.Smoke()
	pool := core.Runner{Parallelism: 0}
	off, err := Run(s, cluster.HDD, pool)
	if err != nil {
		t.Fatal(err)
	}
	s.QoS = &QoS{Scheduler: "fairshare"}
	fair, err := Run(s, cluster.HDD, pool)
	if err != nil {
		t.Fatal(err)
	}
	if off.Graph.PeakIF() <= fair.Graph.PeakIF() {
		t.Fatalf("fairshare did not reduce peak IF: off %v fair %v",
			off.Graph.PeakIF(), fair.Graph.PeakIF())
	}
}

func TestBuiltinsValidateAndBuild(t *testing.T) {
	bs := Builtin()
	if len(bs) < 6 {
		t.Fatalf("registry has %d scenarios, want >= 6", len(bs))
	}
	seen := map[string]bool{}
	for _, s := range bs {
		if seen[s.Name] {
			t.Fatalf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Description == "" {
			t.Errorf("%s: missing description", s.Name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		backends, err := s.Backends()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		for _, b := range backends {
			if _, _, err := s.Build(b); err != nil {
				t.Errorf("%s on %s: %v", s.Name, b, err)
			}
			if _, _, err := s.Smoke().Build(b); err != nil {
				t.Errorf("%s (smoke) on %s: %v", s.Name, b, err)
			}
		}
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("elephant-mice"); err != nil {
		t.Fatalf("known scenario rejected: %v", err)
	}
	_, err := Lookup("no-such-scenario")
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if !strings.Contains(err.Error(), "elephant-mice") {
		t.Fatalf("lookup error should list the valid set, got: %v", err)
	}
}

// TestValidationErrors covers every rejection path with a message check:
// a bad spec in a batch must say which scenario, which app and which knob.
func TestValidationErrors(t *testing.T) {
	base := func() Spec {
		return Spec{
			Name:    "t",
			Servers: 4,
			Apps:    []App{{Name: "A", Procs: 4, BlockMB: 8}},
		}
	}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"missing name", func(s *Spec) { s.Name = "" }, "missing name"},
		{"no apps", func(s *Spec) { s.Apps = nil }, "at least one app"},
		{"bad backend", func(s *Spec) { s.Backend = "floppy" }, "valid: hdd, ssd, ram, null"},
		{"bad sync", func(s *Spec) { s.Sync = "maybe" }, "valid: on, off, null-aio"},
		{"bad pattern", func(s *Spec) { s.Apps[0].Pattern = "zigzag" }, "valid: contiguous, strided"},
		{"zero procs", func(s *Spec) { s.Apps[0].Procs = 0 }, "procs must be > 0"},
		{"zero block", func(s *Spec) { s.Apps[0].BlockMB = 0 }, "block_mb must be > 0"},
		{"strided without transfer", func(s *Spec) {
			s.Apps[0].Pattern = "strided"
		}, "transfer_kb > 0"},
		{"indivisible transfer", func(s *Spec) {
			s.Apps[0].Pattern = "strided"
			s.Apps[0].BlockMB = 1
			s.Apps[0].TransferKB = 768
		}, "not divisible"},
		{"target out of range", func(s *Spec) {
			s.Apps[0].TargetServers = []int{4}
		}, "outside the 4-server platform"},
		{"negative start", func(s *Spec) { s.Apps[0].StartS = -1 }, "negative parameter"},
		{"negative servers", func(s *Spec) { s.Servers = -1 }, "negative platform parameter"},
	}
	for _, tc := range cases {
		s := base()
		tc.mut(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"name":"x","apps":[{"procs":2,"block_mb":4}],"block_gb":1}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `{
		"name": "pair",
		"servers": 2,
		"delta_s": [0, 5],
		"apps": [
			{"name": "w", "procs": 4, "block_mb": 8},
			{"name": "r", "procs": 4, "block_mb": 8, "read": true, "start_s": 1.5}
		]
	}`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Apps[1].StartS != 1.5 || !s.Apps[1].Read {
		t.Fatalf("parsed spec lost fields: %+v", s.Apps[1])
	}
	cfg, ds, err := s.Build(cluster.SSD)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Servers != 2 || cfg.Backend != cluster.SSD {
		t.Fatalf("cfg = %+v", cfg)
	}
	if len(ds.Apps) != 2 || len(ds.Deltas) != 2 || len(ds.StartOffsets) != 2 {
		t.Fatalf("delta spec = %+v", ds)
	}
	// Auto-sized platform: 4 procs at 16 ppn per app = 1 node each.
	if cfg.ComputeNodes != 2 {
		t.Fatalf("auto-sized nodes = %d, want 2", cfg.ComputeNodes)
	}
	// Apps are packed onto disjoint node ranges.
	if ds.Apps[0].FirstNode == ds.Apps[1].FirstNode {
		t.Fatal("apps share a node range")
	}
}

func TestBuildPinnedBackend(t *testing.T) {
	s := Spec{Name: "pinned", Backend: "ram", Apps: []App{{Procs: 2, BlockMB: 4}}}
	backends, err := s.Backends()
	if err != nil {
		t.Fatal(err)
	}
	if len(backends) != 1 || backends[0] != cluster.RAM {
		t.Fatalf("backends = %v, want just ram", backends)
	}
}

func TestSmokeShrinks(t *testing.T) {
	s, err := Lookup("strided-pileup-3")
	if err != nil {
		t.Fatal(err)
	}
	sm := s.Smoke()
	if sm.Apps[0].Procs >= s.Apps[0].Procs {
		t.Fatalf("smoke procs %d not smaller than %d", sm.Apps[0].Procs, s.Apps[0].Procs)
	}
	if sm.Apps[0].BlockMB >= s.Apps[0].BlockMB {
		t.Fatalf("smoke block %d not smaller than %d", sm.Apps[0].BlockMB, s.Apps[0].BlockMB)
	}
	if len(sm.DeltaS) > 3 {
		t.Fatalf("smoke grid %v has more than 3 points", sm.DeltaS)
	}
	if sm.Servers != s.Servers {
		t.Fatalf("smoke changed server count: %d vs %d", sm.Servers, s.Servers)
	}
	// Time axes shrink with the load so arrival geometry is preserved.
	if sm.DeltaS[0] != s.DeltaS[0]/128 {
		t.Fatalf("smoke δ %v not scaled from %v", sm.DeltaS[0], s.DeltaS[0])
	}
	stag, err := Lookup("staggered-arrivals-4")
	if err != nil {
		t.Fatal(err)
	}
	if got := stag.Smoke().Apps[1].StartS; got != stag.Apps[1].StartS/128 {
		t.Fatalf("smoke start_s = %v, want offsets scaled with the load", got)
	}
	if err := sm.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSmokeGridAndPatternEdgeCases: the δ-grid reduction must not
// duplicate points, and the strided-divisibility fallback must honor
// case-insensitive patterns (Validate accepts "Strided" too).
func TestSmokeGridAndPatternEdgeCases(t *testing.T) {
	s := Spec{
		Name:    "edge",
		Servers: 2,
		DeltaS:  []float64{0, 2, 5, 10},
		Apps:    []App{{Procs: 16, Pattern: "Strided", BlockMB: 20, TransferKB: 4096}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	sm := s.Smoke()
	if want := []float64{0, 10.0 / 128}; len(sm.DeltaS) != 2 || sm.DeltaS[0] != want[0] || sm.DeltaS[1] != want[1] {
		t.Fatalf("smoke grid = %v, want %v (no duplicate zero, time axis scaled)", sm.DeltaS, want)
	}
	// 20 MiB / 16 = 1 MiB is no longer divisible by 4 MiB transfers: the
	// fallback must fire despite the capitalized pattern name.
	if err := sm.Validate(); err != nil {
		t.Fatalf("smoke of a valid spec became invalid: %v", err)
	}
	if _, _, err := sm.Build(cluster.HDD); err != nil {
		t.Fatalf("smoke build: %v", err)
	}
}

// TestRunSmokeScenario drives one full Run end to end on both backends and
// sanity-checks result shapes: completion vector length, IF matrix diagonal
// and every point's per-app slices.
func TestRunSmokeScenario(t *testing.T) {
	s, err := Lookup("elephant-mice")
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunAll(s.Smoke(), core.Runner{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want hdd+ssd", len(results))
	}
	for _, r := range results {
		n := len(s.Apps)
		if len(r.Graph.Alone) != n {
			t.Fatalf("%s: completion vector has %d entries, want %d", r.Backend, len(r.Graph.Alone), n)
		}
		for _, p := range r.Graph.Points {
			if len(p.Elapsed) != n || len(p.IF) != n {
				t.Fatalf("%s: point slices sized %d/%d, want %d", r.Backend, len(p.Elapsed), len(p.IF), n)
			}
		}
		if r.Matrix.Dim() != n {
			t.Fatalf("%s: matrix dim %d, want %d", r.Backend, r.Matrix.Dim(), n)
		}
		for i := 0; i < n; i++ {
			if r.Matrix.Cell[i][i] != 1 {
				t.Fatalf("%s: diagonal [%d][%d] = %v, want 1", r.Backend, i, i, r.Matrix.Cell[i][i])
			}
			for j := 0; j < n; j++ {
				if r.Matrix.Cell[i][j] < 0.99 {
					t.Fatalf("%s: IF[%d][%d] = %v < 1", r.Backend, i, j, r.Matrix.Cell[i][j])
				}
			}
		}
		// The elephant must hurt the mice more than they hurt it.
		mouseIF := r.Matrix.Cell[1][0]
		elephantIF := r.Matrix.Cell[0][1]
		if mouseIF <= elephantIF {
			t.Errorf("%s: mouse IF %.2f <= elephant IF %.2f, expected asymmetry", r.Backend, mouseIF, elephantIF)
		}
	}
}

// TestRunDeterministicAcrossPools pins scenario results to be identical on
// a serial and a parallel pool (the scenario layer inherits core.Runner's
// guarantee).
func TestRunDeterministicAcrossPools(t *testing.T) {
	s, err := Lookup("staggered-arrivals-4")
	if err != nil {
		t.Fatal(err)
	}
	sm := s.Smoke()
	a, err := Run(sm, cluster.SSD, core.Runner{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sm, cluster.SSD, core.Runner{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.PeakIF() != b.Graph.PeakIF() {
		t.Fatalf("peak IF diverged across pools: %v vs %v", a.Graph.PeakIF(), b.Graph.PeakIF())
	}
	for i := range a.Graph.Points {
		for j := range a.Graph.Points[i].Elapsed {
			if a.Graph.Points[i].Elapsed[j] != b.Graph.Points[i].Elapsed[j] {
				t.Fatalf("point %d app %d diverged", i, j)
			}
		}
	}
	for i := range a.Matrix.Cell {
		for j := range a.Matrix.Cell[i] {
			if a.Matrix.Cell[i][j] != b.Matrix.Cell[i][j] {
				t.Fatalf("matrix [%d][%d] diverged", i, j)
			}
		}
	}
}
