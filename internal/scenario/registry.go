package scenario

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/population"
)

// Builtin returns the registry of named scenarios that ship with the
// repository, in a fixed order. Each one isolates an interference mechanism
// the paper's two-application campaigns cannot express — more than two
// co-running applications, mixed read/write modes, asymmetric workload
// sizes, staggered arrivals, and partitioned server placements. All of them
// run on the standard backend axis (HDD and SSD) unless pinned.
//
// SCENARIOS.md documents every entry: what it models, which mechanism it
// exercises and what to look for in its δ-graph and IF matrix.
func Builtin() []Spec {
	return []Spec{
		{
			Name: "strided-pileup-3",
			Description: "Three strided writers interleave at every server: per-request " +
				"seek amplification on HDD, absorbed by channel parallelism on flash (SSDChannels=4).",
			Servers:     4,
			SSDChannels: 4,
			DeltaS:      []float64{-15, -5, 0, 5, 15},
			Apps: []App{
				{Procs: 32, Pattern: "strided", BlockMB: 16, TransferKB: 256},
				{Procs: 32, Pattern: "strided", BlockMB: 16, TransferKB: 256},
				{Procs: 32, Pattern: "strided", BlockMB: 16, TransferKB: 256},
			},
		},
		{
			Name: "checkpoint-vs-read",
			Description: "A checkpointing writer against a restart-style reader (mixed mode): " +
				"write and read streams collide in the server queue and at the device.",
			Servers: 4,
			DeltaS:  []float64{-10, 0, 10},
			Apps: []App{
				{Name: "checkpoint", Procs: 32, BlockMB: 64},
				{Name: "restart", Procs: 32, BlockMB: 32, Read: true},
			},
		},
		{
			Name: "elephant-mice",
			Description: "One bulk writer (elephant) against two small latency-bound apps (mice): " +
				"the elephant barely notices, the mice see severe IF — the asymmetry a pairwise matrix exposes.",
			Servers: 4,
			DeltaS:  []float64{-10, 0, 10},
			Apps: []App{
				{Name: "elephant", Procs: 32, BlockMB: 128},
				{Name: "mouse1", Procs: 8, Pattern: "strided", BlockMB: 4, TransferKB: 64},
				{Name: "mouse2", Procs: 8, Pattern: "strided", BlockMB: 4, TransferKB: 64},
			},
		},
		{
			Name: "staggered-arrivals-4",
			Description: "Four identical writers entering their I/O phase 2 s apart: how a burst " +
				"pile-up builds and drains, and how far δ must stretch before the train decouples.",
			Servers: 4,
			DeltaS:  []float64{-20, -5, 0, 5, 20},
			Apps: []App{
				{Procs: 16, BlockMB: 16},
				{Procs: 16, BlockMB: 16, StartS: 2},
				{Procs: 16, BlockMB: 16, StartS: 4},
				{Procs: 16, BlockMB: 16, StartS: 6},
			},
		},
		{
			Name: "shared-servers-4",
			Description: "Four writers striping over all four servers — the N-app pile-up baseline " +
				"for partitioned-servers-4.",
			Servers: 4,
			DeltaS:  []float64{-10, 0, 10},
			Apps: []App{
				{Procs: 16, BlockMB: 16},
				{Procs: 16, BlockMB: 16},
				{Procs: 16, BlockMB: 16},
				{Procs: 16, BlockMB: 16},
			},
		},
		{
			Name: "partitioned-servers-4",
			Description: "The same four writers, each targeting a private server (the paper's §IV-A6 " +
				"knob at N=4): interference collapses to the shared network switch.",
			Servers: 4,
			DeltaS:  []float64{-10, 0, 10},
			Apps: []App{
				{Procs: 16, BlockMB: 16, TargetServers: []int{0}},
				{Procs: 16, BlockMB: 16, TargetServers: []int{1}},
				{Procs: 16, BlockMB: 16, TargetServers: []int{2}},
				{Procs: 16, BlockMB: 16, TargetServers: []int{3}},
			},
		},
		{
			Name: "aggressor-victim",
			Description: "One bulk writer against a latency-bound strided writer — the mitigation " +
				"showcase: the victim's small requests queue behind the aggressor's deep chunk pipelines " +
				"at every server, exactly the backlog a QoS scheduler removes (paperrepro -exp mitigate).",
			Servers: 4,
			DeltaS:  []float64{-10, 0, 10},
			Apps: []App{
				{Name: "aggressor", Procs: 32, BlockMB: 128},
				{Name: "victim", Procs: 8, Pattern: "strided", BlockMB: 8, TransferKB: 256},
			},
		},
		{
			Name: "periodic-checkpoint-4",
			Description: "A periodic checkpointer (4 barrier-synchronized bursts, 2 s compute between) " +
				"against a steady restart reader: burst *timing*, not just overlap, decides which " +
				"checkpoints collide — record it with -trace, replay it with -replay.",
			Servers: 4,
			DeltaS:  []float64{-5, 0, 5},
			Apps: []App{
				{Name: "checkpoint", Procs: 32, Iterations: 4, Phases: []Phase{
					{Kind: "barrier"},
					{Kind: "io", BlockMB: 16},
					{Kind: "compute", ComputeS: 2},
				}},
				{Name: "reader", Procs: 8, Iterations: 4, Phases: []Phase{
					{Kind: "io", Pattern: "strided", BlockMB: 8, TransferKB: 256, Read: true},
					{Kind: "compute", ComputeS: 0.5},
				}},
			},
		},
		{
			Name: "bursty-poisson-mix",
			Description: "Three tenants emitting Poisson-jittered bursts (deterministic per-app seeds): " +
				"inter-arrival structure makes some bursts collide and others slip past each other — " +
				"the spread between mean and peak IF that one-shot synchronized bursts cannot show.",
			Servers: 4,
			DeltaS:  []float64{-5, 0, 5},
			Apps: []App{
				{Name: "tenant1", Procs: 16, Seed: 11, Iterations: 3, Phases: []Phase{
					{Kind: "compute", ComputeS: 0.5, JitterS: 1.5},
					{Kind: "io", BlockMB: 12},
				}},
				{Name: "tenant2", Procs: 16, Seed: 23, Iterations: 3, Phases: []Phase{
					{Kind: "compute", ComputeS: 0.5, JitterS: 1.5},
					{Kind: "io", BlockMB: 12},
				}},
				{Name: "tenant3", Procs: 16, Seed: 37, Iterations: 3, Phases: []Phase{
					{Kind: "compute", ComputeS: 0.5, JitterS: 1.5},
					{Kind: "io", Pattern: "strided", BlockMB: 8, TransferKB: 256},
				}},
			},
		},
		{
			Name: "mixed-transfer",
			Description: "Two strided writers with 16x different request sizes (1 MiB vs 64 KiB) " +
				"sharing the stripe: the small-request app pays the per-request costs, the large one wins.",
			Servers: 4,
			DeltaS:  []float64{-10, 0, 10},
			Apps: []App{
				{Name: "large-req", Procs: 16, Pattern: "strided", BlockMB: 16, TransferKB: 1024},
				{Name: "small-req", Procs: 16, Pattern: "strided", BlockMB: 16, TransferKB: 64},
			},
		},
		// The fault builtins live at the end of the registry: golden
		// mitigation rows are pinned by registry order, so new entries
		// append rows without moving existing ones.
		{
			Name: "server-crash-checkpoint",
			Description: "A checkpointing writer and a restart reader ride out a storage-server " +
				"crash mid-burst: in-flight requests die with the server, the clients' deadlines " +
				"fire, and capped-backoff retries land the lost work after the restart — the " +
				"availability cost shows up as IF against the healthy twin (paperrepro -exp faults).",
			Servers: 4,
			DeltaS:  []float64{-5, 0, 5},
			Faults: &FaultBlock{
				Events: []FaultEvent{
					{Kind: "server-crash", Server: 1, AtS: 1},
					{Kind: "server-restart", Server: 1, AtS: 2.2},
				},
				DeadlineMS: 1000, BackoffMS: 100, BackoffMaxMS: 800,
				Retries: 12, RetryBudget: -1, ResumeMS: 250,
			},
			Apps: []App{
				{Name: "checkpoint", Procs: 32, Pattern: "strided", BlockMB: 64, TransferKB: 1024},
				{Name: "restart", Procs: 8, Pattern: "strided", BlockMB: 8, TransferKB: 256, Read: true},
			},
		},
		{
			Name: "degraded-ost-victim",
			Description: "One OST drops to a fraction of its nominal throughput (a rebuilding " +
				"RAID set) under an app pinned to it, while a striped bulk writer shares the " +
				"platform: the victim's requests stretch and time out against the slow device, " +
				"the bystander mostly rides on the healthy servers.",
			Servers: 4,
			DeltaS:  []float64{-5, 0, 5},
			Faults: &FaultBlock{
				Events: []FaultEvent{
					{Kind: "device-degrade", Server: 0, AtS: 0.5, Factor: 6, LatencyMS: 2},
					{Kind: "device-restore", Server: 0, AtS: 3},
				},
				DeadlineMS: 1500, BackoffMS: 100, BackoffMaxMS: 800,
				Retries: 10, RetryBudget: -1, ResumeMS: 250,
			},
			Apps: []App{
				{Name: "victim", Procs: 16, Pattern: "strided", BlockMB: 16, TransferKB: 512,
					TargetServers: []int{0}},
				{Name: "bulk", Procs: 16, BlockMB: 32},
			},
		},
	}
}

// FleetBuiltin returns the built-in population scenarios. They live in
// their own registry: Builtin() feeds the δ-graph + pairwise path (golden,
// conformance and mitigation suites iterate it), which is infeasible at
// fleet tenant counts — population scenarios run through RunFleet instead.
// Lookup searches both registries.
func FleetBuiltin() []Spec {
	return []Spec{
		{
			Name: "fleet",
			Description: "A generated 1024-tenant population (Zipf volumes, Poisson arrivals, " +
				"default class mix) over 24 servers, sharded: per-class IF distributions, " +
				"slowdown percentiles and sampled aggressor/victim pairs replace the " +
				"infeasible 1024x1024 matrix — the paper's methodology at fleet scale.",
			Backend: "hdd",
			Servers: 24,
			Shards:  4,
			Population: &population.Params{
				Count:       1024,
				Seed:        42,
				BaseMB:      256,
				ZipfExp:     1.1,
				Arrival:     "poisson",
				WindowS:     64,
				Bursts:      2,
				ThinkS:      2,
				JitterS:     1,
				SamplePairs: 48,
			},
		},
	}
}

// FleetNames returns the built-in population scenario names, sorted.
func FleetNames() []string {
	fs := FleetBuiltin()
	names := make([]string, len(fs))
	for i, s := range fs {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}

// FaultNames returns the names of the built-in scenarios that carry a
// faults block, sorted.
func FaultNames() []string {
	var names []string
	for _, s := range Builtin() {
		if s.Faults != nil {
			names = append(names, s.Name)
		}
	}
	sort.Strings(names)
	return names
}

// Names returns the built-in scenario names, sorted.
func Names() []string {
	bs := Builtin()
	names := make([]string, len(bs))
	for i, s := range bs {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}

// Lookup finds a built-in scenario by name, searching the δ-graph registry
// and the fleet registry. The error of a miss lists the valid set,
// mirroring cluster.ParseBackend.
func Lookup(name string) (Spec, error) {
	for _, s := range append(Builtin(), FleetBuiltin()...) {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("scenario: unknown scenario %q (valid: %s)",
		name, strings.Join(append(Names(), FleetNames()...), ", "))
}
