package scenario

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/report"
)

// FleetResult is one population scenario executed on one backend: the
// full-population co-run, the shape-deduplicated alone baselines and the
// sampled pairwise co-runs (core.FleetResult), with the generated tenant
// list kept alongside for class-level aggregation.
type FleetResult struct {
	// Spec is the population scenario as given; Expanded the stamped-out
	// app-list twin the engine actually ran.
	Spec     Spec
	Expanded Spec
	Backend  cluster.BackendKind
	Cfg      cluster.Config
	Tenants  []population.Tenant
	Core     *core.FleetResult
}

// defaultSamplePairs is the pairwise sampling budget when the population
// block leaves sample_pairs at 0.
const defaultSamplePairs = 64

// RunFleet executes a population scenario on one backend through the fleet
// summarizer: one co-run of all tenants at their arrival offsets, one alone
// baseline per distinct tenant shape, and a seeded sample of pairwise
// co-runs — every simulation independent and fanned out on the pool, so the
// result is bit-identical at any pool parallelism and shard count.
func RunFleet(s Spec, backend cluster.BackendKind, pool core.Runner) (*FleetResult, error) {
	if s.Population == nil {
		return nil, fmt.Errorf("scenario %q: not a population scenario (use Run)", s.Name)
	}
	es, tenants, err := ExpandPopulation(s)
	if err != nil {
		return nil, err
	}
	cfg, spec, err := es.Build(backend)
	if err != nil {
		return nil, err
	}
	pairs := s.Population.SamplePairs
	if pairs == 0 {
		pairs = defaultSamplePairs
	}
	f := pool.RunFleet(spec, core.FleetOpts{
		SamplePairs: pairs,
		SampleSeed:  s.Population.Seed,
	})
	return &FleetResult{
		Spec:     s,
		Expanded: es,
		Backend:  backend,
		Cfg:      cfg,
		Tenants:  tenants,
		Core:     f,
	}, nil
}

// RunFleetAll executes the population scenario on its whole backend axis.
func RunFleetAll(s Spec, pool core.Runner) ([]*FleetResult, error) {
	backends, err := s.Backends()
	if err != nil {
		return nil, err
	}
	out := make([]*FleetResult, 0, len(backends))
	for _, b := range backends {
		r, err := RunFleet(s, b, pool)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Makespan is the fleet co-run's total span: the latest tenant completion.
func (f *FleetResult) Makespan() float64 {
	var end float64
	for _, a := range f.Core.CoRun.Apps {
		if s := a.End.Seconds(); s > end {
			end = s
		}
	}
	return end
}

// ClassStat aggregates the co-run interference factors of one application
// class — the LASSi-style per-class view that replaces the N×N matrix at
// fleet scale.
type ClassStat struct {
	Class    string
	Count    int
	Procs    int
	VolumeMB int64 // procs × per-process volume, summed
	MeanIF   float64
	P50IF    float64
	P95IF    float64
	MaxIF    float64
}

// ClassStats aggregates per class, in the generator's class-name order.
func (f *FleetResult) ClassStats() []ClassStat {
	byClass := make(map[string]*ClassStat)
	ifs := make(map[string][]float64)
	for i, t := range f.Tenants {
		cs := byClass[t.Class]
		if cs == nil {
			cs = &ClassStat{Class: t.Class}
			byClass[t.Class] = cs
		}
		cs.Count++
		cs.Procs += t.Procs
		cs.VolumeMB += int64(t.Procs) * t.VolumeMB
		ifs[t.Class] = append(ifs[t.Class], f.Core.IF[i])
	}
	var out []ClassStat
	for _, name := range population.Classes() {
		cs := byClass[name]
		if cs == nil {
			continue
		}
		v := ifs[name]
		sort.Float64s(v)
		var sum float64
		for _, x := range v {
			sum += x
		}
		cs.MeanIF = sum / float64(len(v))
		cs.P50IF = percentile(v, 50)
		cs.P95IF = percentile(v, 95)
		cs.MaxIF = v[len(v)-1]
		out = append(out, *cs)
	}
	return out
}

// IFPercentiles returns the population's co-run slowdown-vs-alone
// distribution at the given percentiles (nearest-rank on the sorted IFs).
func (f *FleetResult) IFPercentiles(ps ...float64) []float64 {
	v := append([]float64(nil), f.Core.IF...)
	sort.Float64s(v)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = percentile(v, p)
	}
	return out
}

// percentile is the nearest-rank percentile of an ascending-sorted slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TopPair is one sampled aggressor/victim pair: the victim is whichever
// side of the pair co-run saw the larger interference factor.
type TopPair struct {
	Victim, Aggressor     string
	VictimIF, AggressorIF float64
}

// TopPairs ranks the sampled pairwise co-runs by victim IF, worst first
// (ties keep sample order, so the ranking is deterministic), and returns
// the top k.
func (f *FleetResult) TopPairs(k int) []TopPair {
	out := make([]TopPair, 0, len(f.Core.Pairs))
	for _, p := range f.Core.Pairs {
		vi, ai, vIF, aIF := p.I, p.J, p.IF[0], p.IF[1]
		if p.IF[1] > p.IF[0] {
			vi, ai, vIF, aIF = p.J, p.I, p.IF[1], p.IF[0]
		}
		out = append(out, TopPair{
			Victim:      f.Tenants[vi].Name,
			Aggressor:   f.Tenants[ai].Name,
			VictimIF:    vIF,
			AggressorIF: aIF,
		})
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].VictimIF > out[b].VictimIF })
	if k >= 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// RenderFleetClasses tabulates the per-class IF distributions.
func RenderFleetClasses(f *FleetResult) *report.Table {
	t := report.New(fmt.Sprintf("%s on %s: per-class interference", f.Spec.Name, f.Backend),
		"class", "tenants", "procs", "vol_mb", "mean_IF", "p50_IF", "p95_IF", "max_IF")
	for _, cs := range f.ClassStats() {
		t.Add(cs.Class, cs.Count, cs.Procs, cs.VolumeMB, cs.MeanIF, cs.P50IF, cs.P95IF, cs.MaxIF)
	}
	return t
}

// RenderFleetSlowdown tabulates the population slowdown-vs-alone percentiles.
func RenderFleetSlowdown(f *FleetResult) *report.Table {
	t := report.New(fmt.Sprintf("%s on %s: slowdown vs alone (IF percentiles)", f.Spec.Name, f.Backend),
		"p10", "p25", "p50", "p75", "p90", "p95", "p99", "max")
	v := f.IFPercentiles(10, 25, 50, 75, 90, 95, 99, 100)
	t.Add(v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7])
	return t
}

// RenderFleetPairs tabulates the top-k sampled aggressor/victim pairs.
func RenderFleetPairs(f *FleetResult, k int) *report.Table {
	t := report.New(fmt.Sprintf("%s on %s: top sampled aggressor/victim pairs (of %d)",
		f.Spec.Name, f.Backend, len(f.Core.Pairs)),
		"victim", "aggressor", "victim_IF", "aggressor_IF")
	for _, p := range f.TopPairs(k) {
		t.Add(p.Victim, p.Aggressor, p.VictimIF, p.AggressorIF)
	}
	return t
}

// RenderFleetSummary tabulates the fleet headline: one row per result.
func RenderFleetSummary(results []*FleetResult) *report.Table {
	t := report.New("fleet summary",
		"scenario", "backend", "tenants", "procs", "total_mb", "shapes", "pairs",
		"makespan_s", "p50_IF", "p95_IF", "max_IF", "events")
	for _, f := range results {
		v := f.IFPercentiles(50, 95, 100)
		t.Add(f.Spec.Name, f.Backend.String(), len(f.Tenants),
			population.TotalProcs(f.Tenants), population.TotalMB(f.Tenants),
			f.Core.Shapes, len(f.Core.Pairs),
			f.Makespan(), v[0], v[1], v[2], f.Core.CoRun.Diag.Events)
	}
	return t
}
