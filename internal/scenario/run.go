package scenario

import (
	"repro/internal/cluster"
	"repro/internal/core"
)

// Result is one scenario executed on one backend: the δ-graph over the
// scenario's grid (with per-app completion vectors and interference
// factors at every point) plus the pairwise interference-factor matrix of
// its application set at δ=0.
type Result struct {
	Spec    Spec
	Backend cluster.BackendKind
	Cfg     cluster.Config
	Graph   *core.DeltaGraph
	Matrix  *core.IFMatrix
}

// Run executes the scenario on one backend: every alone baseline, δ point
// and pairwise co-run is an independent simulation fanned out on the pool,
// so results are identical at any pool parallelism.
func Run(s Spec, backend cluster.BackendKind, pool core.Runner) (*Result, error) {
	cfg, spec, err := s.Build(backend)
	if err != nil {
		return nil, err
	}
	// One flattened task set: baselines (shared by graph and matrix), δ
	// points and pair co-runs all claim pool slots concurrently.
	graph, matrix := pool.RunDeltaPairwise(spec)
	return &Result{
		Spec:    s,
		Backend: backend,
		Cfg:     cfg,
		Graph:   graph,
		Matrix:  matrix,
	}, nil
}

// Sweep executes the scenario's δ-graph once per mitigation scheme on one
// backend — the before/after-mitigation view of a scenario. The schemes
// override any qos block in the spec; every arm's simulations share the
// pool, and results are identical at any parallelism.
func Sweep(s Spec, backend cluster.BackendKind, schemes []core.Scheme, pool core.Runner) (*core.Sweep, error) {
	_, spec, err := s.Build(backend)
	if err != nil {
		return nil, err
	}
	return pool.RunMitigationSweep(spec, schemes), nil
}

// RunAll executes the scenario on its whole backend axis (HDD and SSD
// unless the spec pins one), in axis order.
func RunAll(s Spec, pool core.Runner) ([]*Result, error) {
	backends, err := s.Backends()
	if err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(backends))
	for _, b := range backends {
		r, err := Run(s, b, pool)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
