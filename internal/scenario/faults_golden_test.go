// Fault goldens pin the availability story end to end: for every built-in
// fault scenario, on both backends, the healthy-vs-faulted comparison —
// per-app elapsed times and IF-under-faults, plus the full availability
// ledger (downtime, discarded bytes, link drops, RPC timeouts, retries,
// failures, goodput vs offered). A kernel change that moves any of it
// fails loudly here; regenerate with
//
//	go test ./internal/scenario -run TestGoldenFaults -update-golden
//
// after convincing yourself the movement is intended.
package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
)

const faultsGoldenFile = "testdata/golden_faults.txt"

// faultBuiltins returns the built-in scenarios that carry a faults block,
// in registry order.
func faultBuiltins() []Spec {
	var out []Spec
	for _, s := range Builtin() {
		if s.Faults != nil {
			out = append(out, s)
		}
	}
	return out
}

// faultGoldenBlock renders one comparison in the canonical form: integer
// nanoseconds for times, exact integers for counters, %.17g for ratios.
func faultGoldenBlock(s Spec, backend cluster.BackendKind, fc core.FaultComparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s@%s\n", s.Name, backend.String())
	names := AppNames(s)
	for i := range fc.Faulted.Apps {
		fmt.Fprintf(&b, "  app %s healthy_elapsed=%d faulted_elapsed=%d if=%.17g\n",
			names[i], int64(fc.Healthy.Apps[i].Elapsed), int64(fc.Faulted.Apps[i].Elapsed), fc.IF(i))
	}
	av := fc.Faulted.Diag.Avail
	fmt.Fprintf(&b, "  avail crashes=%d downtime=%d discarded_bytes=%d link_drops=%d\n",
		av.Crashes, int64(av.Downtime), av.DiscardedBytes, av.LinkDrops)
	fmt.Fprintf(&b, "  client timeouts=%d retries=%d failures=%d goodput=%d offered=%d goodput_ratio=%.17g\n",
		av.RPCTimeouts, av.Retries, av.Failures, av.GoodputBytes, av.OfferedBytes, fc.GoodputRatio())
	return b.String()
}

// TestGoldenFaults pins the fault builtins' healthy-vs-faulted comparison
// (smoke scale) on both backends, and asserts the availability story is
// actually told: the faults must cost somebody elapsed time, and the
// injected outages must leave nonzero fingerprints in the ledger.
func TestGoldenFaults(t *testing.T) {
	specs := faultBuiltins()
	if len(specs) == 0 {
		t.Fatal("no built-in fault scenarios in the registry")
	}
	var blocks []string
	for _, s := range specs {
		sm := s.Smoke()
		for _, backend := range []cluster.BackendKind{cluster.HDD, cluster.SSD} {
			fc, err := CompareFaults(sm, backend, 1)
			if err != nil {
				t.Fatalf("%s@%s: %v", s.Name, backend.String(), err)
			}
			key := fmt.Sprintf("%s@%s", s.Name, backend.String())
			maxIF := 0.0
			for i := range fc.Faulted.Apps {
				if v := fc.IF(i); v > maxIF {
					maxIF = v
				}
			}
			if maxIF <= 1.01 {
				t.Errorf("%s: no app pays for the faults (max IF %.4f)", key, maxIF)
			}
			av := fc.Faulted.Diag.Avail
			if av.Crashes == 0 && av.Downtime == 0 && fc.Faulted.Diag.Avail.RPCTimeouts == 0 &&
				!degradePlanned(s) {
				t.Errorf("%s: availability ledger is empty under a fault plan: %+v", key, av)
			}
			if h := fc.Healthy.Diag.Avail; h.Crashes != 0 || h.Retries != 0 || h.DiscardedBytes != 0 {
				t.Errorf("%s: healthy twin saw faults: %+v", key, h)
			}
			blocks = append(blocks, faultGoldenBlock(s, backend, fc))
		}
	}
	got := "# Fault-injection goldens: healthy-vs-faulted comparison of every built-in\n" +
		"# fault scenario at smoke scale. Times are integer nanoseconds.\n" +
		"# Regenerate: go test ./internal/scenario -run TestGoldenFaults -update-golden\n" +
		strings.Join(blocks, "")
	if updateGolden() {
		if err := os.MkdirAll(filepath.Dir(faultsGoldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(faultsGoldenFile, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", faultsGoldenFile)
		return
	}
	want, err := os.ReadFile(faultsGoldenFile)
	if err != nil {
		t.Fatalf("reading %s (regenerate with -update-golden): %v", faultsGoldenFile, err)
	}
	if string(want) != got {
		t.Fatalf("fault goldens moved (regenerate with -update-golden if intended)\n--- want ---\n%s--- got ---\n%s",
			want, got)
	}
}

// degradePlanned reports whether the scenario's plan is degrade-only (a
// degrade can slow the run without tripping a single deadline, so the
// ledger check above does not demand timeouts of it).
func degradePlanned(s Spec) bool {
	for _, ev := range s.Faults.Events {
		switch ev.Kind {
		case "server-crash", "link-down", "loss-burst":
			return false
		}
	}
	return true
}

// TestFaultScenarioShardConformance re-runs every fault builtin's
// comparison at shard counts {1, 2, 4} and demands bit-identical results —
// the injection-is-deterministic-under-sharding contract at the scenario
// level, on both backends.
func TestFaultScenarioShardConformance(t *testing.T) {
	for _, s := range faultBuiltins() {
		sm := s.Smoke()
		for _, backend := range []cluster.BackendKind{cluster.HDD, cluster.SSD} {
			oracle, err := CompareFaults(sm, backend, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 4} {
				got, err := CompareFaults(sm, backend, shards)
				if err != nil {
					t.Fatal(err)
				}
				if faultGoldenBlock(s, backend, got) != faultGoldenBlock(s, backend, oracle) ||
					got.Faulted.Diag != oracle.Faulted.Diag {
					t.Errorf("%s@%s shards=%d diverged from the serial oracle",
						s.Name, backend.String(), shards)
				}
			}
		}
	}
}

// TestFaultBuiltinLiveness: at full (non-smoke) scale the crash builtin
// still terminates with every byte landed — the retry layer's liveness
// contract at realistic parameters. sim.Time keeps this cheap: only event
// count matters, not simulated seconds.
func TestFaultBuiltinLiveness(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale fault run")
	}
	s, err := Lookup("server-crash-checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	fc, err := CompareFaults(s, cluster.HDD, 1)
	if err != nil {
		t.Fatal(err)
	}
	av := fc.Faulted.Diag.Avail
	if av.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", av.Crashes)
	}
	restart := sim.Seconds(2.2)
	for i, a := range fc.Faulted.Apps {
		if a.End < restart {
			t.Fatalf("app %d finished at %v, before the restart at %v", i, a.End, restart)
		}
	}
	if av.Failures > 0 && av.Retries == 0 {
		t.Fatalf("failures without retries: %+v", av)
	}
}
