package scenario

// Scenario-layer tests for the population block: generated specs must pass
// the strict validator, the population block must parse and reject like
// every other block, and Smoke() must shrink a fleet without changing its
// tenant count or class mix — under a wall-clock budget in -short mode.

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/population"
)

// popSpec returns a small population scenario for tests.
func popSpec(count int) Spec {
	return Spec{
		Name:    "pop-test",
		Backend: "hdd",
		Servers: 4,
		Population: &population.Params{
			Count:   count,
			Seed:    7,
			BaseMB:  32,
			ZipfExp: 1.1,
			Arrival: "poisson",
			WindowS: 4,
			Bursts:  2,
			ThinkS:  0.05,
			JitterS: 0.02,
		},
	}
}

// TestExpandedPopulationValidates is the generator/validator contract: for
// a grid of counts, seeds and arrival modes, the expanded spec passes the
// strict Spec.Validate and builds.
func TestExpandedPopulationValidates(t *testing.T) {
	for _, count := range []int{1, 7, 64, 500} {
		for _, arrival := range []string{"staggered", "poisson"} {
			for seed := uint64(0); seed < 3; seed++ {
				s := popSpec(count)
				s.Population.Arrival = arrival
				s.Population.Seed = seed
				es, tenants, err := ExpandPopulation(s)
				if err != nil {
					t.Fatalf("count=%d %s seed=%d: %v", count, arrival, seed, err)
				}
				if len(es.Apps) != count || len(tenants) != count {
					t.Fatalf("count=%d: expanded to %d apps, %d tenants", count, len(es.Apps), len(tenants))
				}
				if es.Population != nil {
					t.Fatal("expanded spec still carries a population block")
				}
				if err := es.Validate(); err != nil {
					t.Fatalf("count=%d %s seed=%d: expanded spec fails validation: %v",
						count, arrival, seed, err)
				}
				if _, _, err := es.Build(cluster.HDD); err != nil {
					t.Fatalf("count=%d %s seed=%d: expanded spec fails build: %v",
						count, arrival, seed, err)
				}
			}
		}
	}
}

// TestPopulationSpecJSON: the population block parses from JSON, unknown
// fields and invalid parameters are rejected with the scenario named.
func TestPopulationSpecJSON(t *testing.T) {
	good := `{"name":"p","backend":"hdd","population":{"count":16,"base_mb":8,"zipf_exp":1.1}}`
	s, err := Parse([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if s.Population == nil || s.Population.Count != 16 {
		t.Fatalf("population block lost in parsing: %+v", s.Population)
	}
	bad := []struct{ name, js, want string }{
		{"unknown field", `{"name":"p","population":{"count":16,"base_mb":8,"zipf_exp":1.1,"zebra":1}}`, "zebra"},
		{"zero zipf", `{"name":"p","population":{"count":16,"base_mb":8,"zipf_exp":0}}`, "zipf_exp"},
		{"with apps", `{"name":"p","population":{"count":16,"base_mb":8,"zipf_exp":1.1},"apps":[{"procs":1,"block_mb":1}]}`, "generates its apps"},
		{"with delta", `{"name":"p","population":{"count":16,"base_mb":8,"zipf_exp":1.1},"delta_s":[0,5]}`, "generates its apps"},
		{"with trace", `{"name":"p","population":{"count":16,"base_mb":8,"zipf_exp":1.1},"trace":{"path":"x"}}`, "trace scenario"},
	}
	for _, tc := range bad {
		_, err := Parse([]byte(tc.js))
		if err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestFleetBuiltinShape pins the acceptance-criteria shape of the fleet
// builtin: at least 1000 generated tenants, a pinned backend, and
// registry/Lookup integration without leaking into the pairwise registry.
func TestFleetBuiltinShape(t *testing.T) {
	fs := FleetBuiltin()
	if len(fs) == 0 {
		t.Fatal("no fleet builtins")
	}
	for _, s := range fs {
		if s.Population == nil {
			t.Fatalf("fleet builtin %q has no population block", s.Name)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		got, err := Lookup(s.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != s.Name {
			t.Fatalf("Lookup(%q) returned %q", s.Name, got.Name)
		}
		for _, b := range Builtin() {
			if b.Name == s.Name {
				t.Fatalf("fleet builtin %q also in the pairwise registry", s.Name)
			}
		}
	}
	if fs[0].Population.Count < 1000 {
		t.Fatalf("fleet builtin has %d tenants, acceptance floor is 1000", fs[0].Population.Count)
	}
	if fs[0].Backend == "" {
		t.Fatal("fleet builtin must pin a backend")
	}
}

// TestFleetSmokeScaling: Smoke() keeps the tenant count and the exact
// class mix of the fleet builtin while shrinking volume and procs, and a
// smoke fleet run finishes under a wall-clock budget in -short mode.
func TestFleetSmokeScaling(t *testing.T) {
	s := FleetBuiltin()[0]
	smoke := s.Smoke()
	if smoke.Population == nil {
		t.Fatal("smoke dropped the population block")
	}
	if smoke.Population.Count != s.Population.Count {
		t.Fatalf("smoke changed the tenant count: %d vs %d",
			smoke.Population.Count, s.Population.Count)
	}
	full, err := population.Generate(*s.Population)
	if err != nil {
		t.Fatal(err)
	}
	small, err := population.Generate(*smoke.Population)
	if err != nil {
		t.Fatal(err)
	}
	fullMix, smallMix := map[string]int{}, map[string]int{}
	for i := range full {
		fullMix[full[i].Class]++
		smallMix[small[i].Class]++
	}
	for c, n := range fullMix {
		if smallMix[c] != n {
			t.Fatalf("smoke changed class %s count: %d vs %d", c, smallMix[c], n)
		}
	}
	if population.TotalMB(small) >= population.TotalMB(full) {
		t.Fatal("smoke did not shrink the population volume")
	}
	if population.TotalProcs(small) >= population.TotalProcs(full) {
		t.Fatal("smoke did not shrink the population procs")
	}

	// Wall-clock budget: the CI smoke fleet must stay cheap. The budget is
	// generous against slow shared runners; the point is catching a scaling
	// regression that turns the smoke fleet back into the full fleet.
	if testing.Short() {
		start := time.Now()
		f, err := RunFleet(smoke, cluster.HDD, core.Runner{})
		if err != nil {
			t.Fatal(err)
		}
		if elapsed := time.Since(start); elapsed > 60*time.Second {
			t.Fatalf("smoke fleet took %v, budget is 60s", elapsed)
		}
		if len(f.Core.IF) != s.Population.Count {
			t.Fatalf("smoke fleet ran %d tenants, want %d", len(f.Core.IF), s.Population.Count)
		}
	}
}

// TestFleetStats sanity-checks the aggregation layer on a small population:
// class stats cover every tenant exactly once, percentiles are ordered, and
// top pairs come from the sampled set.
func TestFleetStats(t *testing.T) {
	s := popSpec(48)
	s.Population.SamplePairs = 12
	f, err := RunFleet(s, cluster.HDD, core.Runner{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, cs := range f.ClassStats() {
		total += cs.Count
		if cs.MaxIF < cs.P95IF || cs.P95IF < cs.P50IF {
			t.Fatalf("class %s: disordered percentiles %+v", cs.Class, cs)
		}
		// Jitter seeds differ between a tenant and its shape-canonical
		// baseline, so individual IFs may dip slightly below 1; a mean far
		// below 1 would mean the baselines are broken.
		if cs.MeanIF < 0.5 {
			t.Fatalf("class %s: mean IF %v far below 1 (broken baselines?)", cs.Class, cs.MeanIF)
		}
	}
	if total != 48 {
		t.Fatalf("class stats cover %d tenants, want 48", total)
	}
	pct := f.IFPercentiles(10, 50, 95, 100)
	for i := 1; i < len(pct); i++ {
		if pct[i] < pct[i-1] {
			t.Fatalf("disordered IF percentiles: %v", pct)
		}
	}
	if len(f.Core.Pairs) != 12 {
		t.Fatalf("sampled %d pairs, want 12", len(f.Core.Pairs))
	}
	pairs := f.TopPairs(5)
	if len(pairs) != 5 {
		t.Fatalf("top 5 returned %d pairs", len(pairs))
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i].VictimIF > pairs[i-1].VictimIF {
			t.Fatalf("top pairs disordered: %+v", pairs)
		}
	}
}
