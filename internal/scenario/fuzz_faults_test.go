package scenario

import (
	"encoding/json"
	"testing"

	"repro/internal/cluster"
)

// FuzzFaultSpec hammers the faults block of the scenario parser. The
// invariants: Parse never panics on any byte string (per-kind knob
// validation must reject, not crash — notably unpaired crash/restart and
// link-down/up timelines, out-of-range servers, and non-finite or negative
// times), errors are stable, an accepted spec round-trips through JSON to
// an equal spec, and an accepted fault spec survives the downstream
// pipeline without panicking: Smoke scaling and Build (plan compilation
// plus cluster validation) either succeed or fail with an error.
func FuzzFaultSpec(f *testing.F) {
	for _, s := range Builtin() {
		if s.Faults == nil {
			continue
		}
		data, err := json.Marshal(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Hand-written seeds cover the rejection surface: each one trips a
	// distinct validation rule, giving the mutator a foothold per rule.
	seeds := []string{
		// Minimal accepted fault spec (retry defaults, empty timeline).
		`{"name":"t","faults":{},"apps":[{"procs":2,"block_mb":4}]}`,
		// Crash without restart: pairing violation.
		`{"name":"t","faults":{"events":[{"kind":"server-crash","server":0,"at_s":1}]},"apps":[{"procs":2,"block_mb":4}]}`,
		// Restart before crash: ordering violation.
		`{"name":"t","faults":{"events":[{"kind":"server-restart","server":0,"at_s":1},{"kind":"server-crash","server":0,"at_s":2}]},"apps":[{"procs":2,"block_mb":4}]}`,
		// Link flap pair, valid.
		`{"name":"t","faults":{"events":[{"kind":"link-down","server":1,"at_s":0.5},{"kind":"link-up","server":1,"at_s":1.5}]},"apps":[{"procs":2,"block_mb":4}]}`,
		// Degrade with factor below 1.
		`{"name":"t","faults":{"events":[{"kind":"device-degrade","server":0,"at_s":1,"throughput_factor":0.5}]},"apps":[{"procs":2,"block_mb":4}]}`,
		// Loss burst without a duration.
		`{"name":"t","faults":{"events":[{"kind":"loss-burst","server":0,"at_s":1}]},"apps":[{"procs":2,"block_mb":4}]}`,
		// Duration on a kind that takes none.
		`{"name":"t","faults":{"events":[{"kind":"server-crash","server":0,"at_s":1,"duration_s":2},{"kind":"server-restart","server":0,"at_s":3}]},"apps":[{"procs":2,"block_mb":4}]}`,
		// Server beyond the platform.
		`{"name":"t","servers":2,"faults":{"events":[{"kind":"device-degrade","server":7,"at_s":1,"throughput_factor":2},{"kind":"device-restore","server":7,"at_s":2}]},"apps":[{"procs":2,"block_mb":4}]}`,
		// Unknown kind.
		`{"name":"t","faults":{"events":[{"kind":"meteor-strike","server":0,"at_s":1}]},"apps":[{"procs":2,"block_mb":4}]}`,
		// Faults on a trace scenario: mutual exclusion.
		`{"name":"t","trace":{"path":"x"},"faults":{}}`,
		// Unlimited retry budget and explicit knobs.
		`{"name":"t","faults":{"deadline_ms":500,"backoff_ms":50,"backoff_max_ms":400,"retries":8,"retry_budget":-1,"resume_ms":100},"apps":[{"procs":2,"block_mb":4}]}`,
		// Negative retry knob.
		`{"name":"t","faults":{"deadline_ms":-1},"apps":[{"procs":2,"block_mb":4}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			if _, err2 := Parse(data); err2 == nil || err2.Error() != err.Error() {
				t.Fatalf("unstable error: %q then %v", err, err2)
			}
			return
		}
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshaling an accepted spec failed: %v", err)
		}
		s2, err := Parse(out)
		if err != nil {
			t.Fatalf("re-parsing a marshaled accepted spec failed: %v\njson: %s", err, out)
		}
		out2, err := json.Marshal(s2)
		if err != nil || string(out) != string(out2) {
			t.Fatalf("marshal round-trip drift:\n got %s\nwant %s (err %v)", out2, out, err)
		}
		if s.Faults == nil || s.Trace != nil {
			return
		}
		// The downstream pipeline must not panic on any accepted fault
		// spec. Build may still reject cleanly (per-app placement checks
		// run against the concrete cluster, and Smoke can underflow a
		// denormal duration below the validator's floor) — the invariant
		// is an error, never a crash, and plan compilation in particular
		// must hold for every timeline the validator lets through.
		if _, _, err := s.Smoke().Build(cluster.HDD); err != nil {
			_ = err
		}
		if _, _, err := s.Build(cluster.HDD); err != nil {
			_ = err
		}
	})
}
