package scenario

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
)

// FaultBlock is the declarative form of a fault plan (internal/fault): a
// timeline of injected events plus the client retry policy that rides out
// the outages. Its presence — even with an empty event list — switches the
// platform onto the retrying RPC path; absence keeps the fault subsystem
// entirely out of the build, bit-identical to a pre-fault platform.
//
// Times use the same friendly units as the rest of the spec (seconds for
// the timeline, milliseconds for the RPC-scale retry knobs). Smoke divides
// every one of them by the load shrink so faults land at the same phase of
// a shrunken burst as they do at full scale.
type FaultBlock struct {
	// Events is the injection timeline, in any order (the engine orders by
	// time; crash→restart and down→up pairing is validated).
	Events []FaultEvent `json:"events,omitempty"`

	// DeadlineMS is the per-attempt RPC deadline in milliseconds; 0 keeps
	// the calibrated default (see fault.DefaultRetryPolicy).
	DeadlineMS float64 `json:"deadline_ms,omitempty"`
	// BackoffMS and BackoffMaxMS bound the capped exponential resend
	// backoff, in milliseconds; 0 keeps the defaults.
	BackoffMS    float64 `json:"backoff_ms,omitempty"`
	BackoffMaxMS float64 `json:"backoff_max_ms,omitempty"`
	// Retries is the per-request resend cap; 0 keeps the default.
	Retries int `json:"retries,omitempty"`
	// RetryBudget is the per-application retry budget: 0 keeps the default,
	// negative is unlimited.
	RetryBudget int64 `json:"retry_budget,omitempty"`
	// ResumeMS is the stall before a request that exhausted its retries is
	// re-issued, in milliseconds; 0 keeps the default.
	ResumeMS float64 `json:"resume_ms,omitempty"`
}

// FaultEvent is one timeline entry. Kind selects which knobs apply:
// "device-degrade" takes throughput_factor (required, >= 1) and latency_ms;
// "loss-burst" takes duration_s (required, > 0); every other kind
// ("server-crash", "server-restart", "device-restore", "link-down",
// "link-up") takes only at_s and server.
type FaultEvent struct {
	Kind   string  `json:"kind"`
	Server int     `json:"server"`
	AtS    float64 `json:"at_s"`

	// Factor multiplies per-byte service time while degraded (>= 1;
	// device-degrade only).
	Factor float64 `json:"throughput_factor,omitempty"`
	// LatencyMS adds fixed per-operation latency while degraded
	// (device-degrade only).
	LatencyMS float64 `json:"latency_ms,omitempty"`
	// DurationS is the loss window length (loss-burst only).
	DurationS float64 `json:"duration_s,omitempty"`
}

// validate checks one event's knob discipline: the kind must parse and
// exactly the knobs of that kind may be set. Range and pairing checks are
// delegated to the compiled fault.Plan.
func (ev FaultEvent) validate() error {
	if ev.Kind == "" {
		return fmt.Errorf("event needs a kind (valid: %s)", strings.Join(fault.KindNames(), ", "))
	}
	k, err := fault.ParseKind(ev.Kind)
	if err != nil {
		return err
	}
	if ev.AtS < 0 {
		return fmt.Errorf("at_s must be >= 0, got %g", ev.AtS)
	}
	switch k {
	case fault.DeviceDegrade:
		if ev.Factor < 1 {
			return fmt.Errorf("device-degrade needs throughput_factor >= 1, got %g", ev.Factor)
		}
		if ev.LatencyMS < 0 {
			return fmt.Errorf("negative latency_ms")
		}
		if ev.DurationS != 0 {
			return fmt.Errorf("duration_s applies only to loss-burst")
		}
	case fault.LossBurst:
		if ev.DurationS <= 0 {
			return fmt.Errorf("loss-burst needs duration_s > 0, got %g", ev.DurationS)
		}
		if ev.Factor != 0 || ev.LatencyMS != 0 {
			return fmt.Errorf("throughput_factor/latency_ms apply only to device-degrade")
		}
	default:
		if ev.Factor != 0 || ev.LatencyMS != 0 || ev.DurationS != 0 {
			return fmt.Errorf("%s takes only at_s and server", ev.Kind)
		}
	}
	return nil
}

// compile turns one validated event into its fault form.
func (ev FaultEvent) compile() fault.Event {
	k, _ := fault.ParseKind(ev.Kind) // validated
	return fault.Event{
		At:       sim.Seconds(ev.AtS),
		Kind:     k,
		Server:   ev.Server,
		Factor:   ev.Factor,
		Latency:  sim.Time(ev.LatencyMS * float64(sim.Millisecond)),
		Duration: sim.Seconds(ev.DurationS),
	}
}

// plan compiles the block into a fault.Plan (zero retry knobs keep the
// calibrated defaults — see fault.RetryPolicy.WithDefaults, applied when
// the platform installs the plan).
func (fb *FaultBlock) plan() *fault.Plan {
	p := &fault.Plan{Retry: fault.RetryPolicy{
		Deadline:   sim.Time(fb.DeadlineMS * float64(sim.Millisecond)),
		Backoff:    sim.Time(fb.BackoffMS * float64(sim.Millisecond)),
		BackoffMax: sim.Time(fb.BackoffMaxMS * float64(sim.Millisecond)),
		MaxRetries: fb.Retries,
		Budget:     fb.RetryBudget,
		Resume:     sim.Time(fb.ResumeMS * float64(sim.Millisecond)),
	}}
	for _, ev := range fb.Events {
		p.Events = append(p.Events, ev.compile())
	}
	return p
}

// validate checks the block against a platform of `servers` storage
// servers: per-event knob discipline here, then pairing, ordering and
// range checks through the compiled plan.
func (fb *FaultBlock) validate(servers int) error {
	if fb.DeadlineMS < 0 || fb.BackoffMS < 0 || fb.BackoffMaxMS < 0 ||
		fb.Retries < 0 || fb.ResumeMS < 0 {
		return fmt.Errorf("negative retry parameter")
	}
	for i, ev := range fb.Events {
		if err := ev.validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return fb.plan().Validate(servers)
}

// CompareFaults runs a fault scenario's δ=0 co-run twice on one backend —
// once with the fault plan stripped (the healthy twin) and once as given —
// and returns the pair (see core.RunFaultComparison). The scenario must
// carry a faults block. shards 0 uses the spec's own parallelism knob;
// results are bit-identical at every shard count.
func CompareFaults(s Spec, backend cluster.BackendKind, shards int) (core.FaultComparison, error) {
	cfg, spec, err := s.Build(backend)
	if err != nil {
		return core.FaultComparison{}, err
	}
	if cfg.Faults == nil {
		return core.FaultComparison{}, fmt.Errorf("scenario %q: no faults block to compare", s.Name)
	}
	apps := make([]core.AppSpec, len(spec.Apps))
	copy(apps, spec.Apps)
	for i := range apps {
		if spec.StartOffsets != nil {
			apps[i].Start = spec.StartOffsets[i]
		}
	}
	if shards == 0 {
		shards = spec.Shards
	}
	if shards < 1 {
		shards = 1
	}
	return core.RunFaultComparison(cfg, apps, shards), nil
}

// smoke returns a copy scaled for a shrunken run. The injection timeline
// (at_s, duration_s) tracks aggregate load — burst durations shrink by
// timelineDiv, so the events shrink with them to land at the same phase of
// the burst. The RPC-scale knobs (deadline, backoff, resume, per-op
// latency) track PER-REQUEST latency, which shrinks only with the request
// volume (requestDiv), not with the process count — fixed costs like seeks
// and RTOs do not shrink at all. Scaling the deadline by the full load
// shrink would push it below a single request's service time and every
// attempt would time out: resends amplify queue load, which stretches
// service latency, which times out the resends — a retry storm that never
// converges. requestDiv keeps the deadline comfortably above per-request
// latency at smoke scale.
func (fb *FaultBlock) smoke(timelineDiv, requestDiv float64) *FaultBlock {
	out := *fb
	out.Events = make([]FaultEvent, len(fb.Events))
	for i, ev := range fb.Events {
		ev.AtS /= timelineDiv
		ev.DurationS /= timelineDiv
		ev.LatencyMS /= requestDiv
		out.Events[i] = ev
	}
	out.DeadlineMS /= requestDiv
	out.BackoffMS /= requestDiv
	out.BackoffMaxMS /= requestDiv
	out.ResumeMS /= requestDiv
	return &out
}
