package scenario

// Golden + conformance guard for the observability layer (internal/obs):
// the aggressor-victim builtin is run at smoke scale on HDD with sampling
// and spans attached, and the complete rendered timeline — every series
// row and the span breakdown — is pinned byte-for-byte in
// testdata/golden_timeline.tsv. The sampler can therefore never silently
// drift. The conformance test re-renders the same timeline at shard
// counts {2,4} and across GOMAXPROCS concurrent runs: all byte-identical
// to the serial oracle (run under -race by `make obs`).
//
// Regenerate after an intentional model change with:
//
//	go test ./internal/scenario -run TestGoldenTimeline -update

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/sim"
)

const timelineGoldenFile = "testdata/golden_timeline.tsv"

// timelineObsConfig is the pinned sampling setup of the golden: 20 ms
// ticks over a 5.12 s horizon (the smoke co-run finishes well inside it).
func timelineObsConfig() obs.Config {
	return obs.Config{Interval: 20 * sim.Millisecond, Samples: 256, SpanCap: 4096}
}

// timelineSmokeText renders the pinned timeline at the given shard count.
func timelineSmokeText(t testing.TB, shards int) string {
	t.Helper()
	s, err := Lookup("aggressor-victim")
	if err != nil {
		t.Fatal(err)
	}
	s = s.Smoke()
	res, err := RunTimeline(s, cluster.HDD, shards, timelineObsConfig())
	if err != nil {
		t.Fatal(err)
	}
	text, err := TimelineText(s.Name, cluster.HDD, res, true)
	if err != nil {
		t.Fatal(err)
	}
	return text
}

func TestGoldenTimeline(t *testing.T) {
	got := timelineSmokeText(t, 1)
	if updateGolden() {
		if err := os.WriteFile(timelineGoldenFile, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", timelineGoldenFile, len(got))
		return
	}
	want, err := os.ReadFile(timelineGoldenFile)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Fatalf("timeline drifted from %s (regenerate with -update if intentional):\n%s",
			timelineGoldenFile, firstDiff(string(want), got))
	}
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(want, got string) string {
	wl, gl := splitLines(want), splitLines(got)
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  want: %q\n  got:  %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d, got %d", len(wl), len(gl))
}

func splitLines(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		out = append(out, s[:i])
		if i < len(s) {
			i++
		}
		s = s[i:]
	}
	return out
}

// TestTimelineShardConformance pins the determinism contract of the
// sampler and span collector: the rendered timeline is byte-identical
// across shard counts {1,2,4} and across GOMAXPROCS concurrent runs.
func TestTimelineShardConformance(t *testing.T) {
	want := timelineSmokeText(t, 1)
	for _, shards := range []int{2, 4} {
		if got := timelineSmokeText(t, shards); got != want {
			t.Fatalf("timeline at shards=%d diverged from the serial oracle:\n%s",
				shards, firstDiff(want, got))
		}
	}
	par := runtime.GOMAXPROCS(0)
	got := make([]string, par)
	var wg sync.WaitGroup
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = timelineSmokeText(t, 1+i%4)
		}(i)
	}
	wg.Wait()
	for i, g := range got {
		if g != want {
			t.Fatalf("concurrent timeline run %d diverged:\n%s", i, firstDiff(want, g))
		}
	}
}

// TestRunTimelineRejectsTrace pins the error path: trace scenarios have
// no co-run to observe.
func TestRunTimelineRejectsTrace(t *testing.T) {
	s := Spec{Name: "r", Trace: &TraceBlock{Path: "x.trace"}}
	if _, err := RunTimeline(s, cluster.HDD, 1, timelineObsConfig()); err == nil {
		t.Fatal("RunTimeline accepted a trace scenario")
	}
}
