package scenario

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/trace"
)

// Record executes the scenario's δ=0 co-run — the canonical point every
// δ-graph contains — on one backend with the request-level trace recorder
// attached, and returns the trace alongside the run's results.
func Record(s Spec, backend cluster.BackendKind) (*trace.Trace, core.RunResult, error) {
	_, spec, err := s.Build(backend)
	if err != nil {
		return nil, core.RunResult{}, err
	}
	t, res := trace.RecordRun(spec.Cfg, spec.AppsAt(0))
	return t, res, nil
}

// Replay executes a trace scenario: load the recording named by the spec's
// trace block and replay it — on the recorded platform (bit-identical per
// the trace package's determinism contract), or, when the spec carries a
// qos block, on the recorded platform with that scheduler enabled (the
// counterfactual "what if this recorded workload had run mitigated" view).
func Replay(s Spec) (*trace.ReplayResult, *trace.Trace, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	if s.Trace == nil {
		return nil, nil, fmt.Errorf("scenario %q: not a trace scenario (no trace block)", s.Name)
	}
	t, err := trace.ReadFile(s.Trace.Path)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	cfg := t.Header.Cfg
	if s.QoS != nil {
		qp, err := s.QoS.Params()
		if err != nil {
			return nil, nil, fmt.Errorf("scenario %q: qos: %w", s.Name, err)
		}
		cfg.Srv.QoS = qp
	}
	rep, err := trace.ReplayOn(t, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	return rep, t, nil
}
