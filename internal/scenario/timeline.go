package scenario

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
)

// RunTimeline executes the scenario's δ=0 co-run — the same canonical
// point Record traces — with the observability layer attached: periodic
// per-app × per-server samples plus request spans (internal/obs). shards
// overrides the spec's shard count when positive; any shard count yields
// a byte-identical Timeline by the sampler's determinism contract. Trace
// scenarios replay a recording and have no co-run to observe.
func RunTimeline(s Spec, backend cluster.BackendKind, shards int, ocfg obs.Config) (core.RunResult, error) {
	if s.Trace != nil {
		return core.RunResult{}, fmt.Errorf("scenario %q: a trace scenario replays a recording; -timeline needs a co-run", s.Name)
	}
	_, spec, err := s.Build(backend)
	if err != nil {
		return core.RunResult{}, err
	}
	if shards <= 0 {
		shards = spec.Shards
	}
	x := core.PrepareSharded(spec.Cfg, spec.AppsAt(0), shards)
	x.Observe(ocfg)
	return x.Run(), nil
}

// RenderTimelineRun renders an observed co-run: the per-app completion
// table followed by every timeline table (series and span breakdown).
func RenderTimelineRun(name string, backend cluster.BackendKind, res core.RunResult) []*report.Table {
	title := fmt.Sprintf("%s on %s", name, backend)
	t := report.New(title+" — co-run completions (δ=0)",
		"app", "start_s", "elapsed_s", "MB", "MBps")
	for _, a := range res.Apps {
		t.Add(a.Name, a.Start.Seconds(), a.Elapsed.Seconds(),
			float64(a.Bytes)/1e6, a.Throughput/1e6)
	}
	tables := []*report.Table{t}
	if res.Timeline != nil {
		tables = append(tables, obs.RenderTimeline(title, res.Timeline)...)
	}
	return tables
}

// TimelineText renders an observed co-run to the byte stream the CLI
// prints (each table followed by a blank line, TSV or aligned ASCII) —
// the string the timeline golden pins.
func TimelineText(name string, backend cluster.BackendKind, res core.RunResult, tsv bool) (string, error) {
	var b strings.Builder
	for _, t := range RenderTimelineRun(name, backend, res) {
		var err error
		if tsv {
			err = t.WriteTSV(&b)
		} else {
			err = t.WriteASCII(&b)
		}
		if err != nil {
			return "", err
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}
