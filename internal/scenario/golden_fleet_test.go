package scenario

// Golden + serial-oracle conformance guard for the fleet path: the smoke
// fleet builtin's complete result — every generated tenant, every shape
// baseline, the full co-run completion vector, every sampled pair, the
// diagnostics and the class/percentile aggregates — is serialized
// canonically and hashed into testdata/golden_fleet.txt, and must be
// byte-identical across shard counts and pool parallelism.
//
// Regenerate (after an intentional model change only) with:
//
//	go test ./internal/scenario -run TestGoldenFleet -update

import (
	"crypto/sha256"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
)

const goldenFleetFile = "testdata/golden_fleet.txt"

// goldenFleet serializes one FleetResult exactly: times are integer
// nanoseconds, floats use %.17g (bit-for-bit round-trip).
func goldenFleet(f *FleetResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet %s backend %s tenants %d shapes %d\n",
		f.Spec.Name, f.Backend, len(f.Tenants), f.Core.Shapes)
	for i, t := range f.Tenants {
		fmt.Fprintf(&b, "tenant %d %s class=%s rank=%d procs=%d vol=%d start=%.17g seed=%d iter=%d\n",
			i, t.Name, t.Class, t.Rank, t.Procs, t.VolumeMB, t.StartS, t.Seed, t.Iterations)
	}
	for u, a := range f.Core.Alone {
		fmt.Fprintf(&b, "alone %d %d\n", u, a)
	}
	for i := range f.Core.IF {
		a := f.Core.CoRun.Apps[i]
		fmt.Fprintf(&b, "co %d shape=%d start=%d end=%d e=%d if=%.17g\n",
			i, f.Core.ShapeOf[i], a.Start, a.End, a.Elapsed, f.Core.IF[i])
	}
	for k, p := range f.Core.Pairs {
		fmt.Fprintf(&b, "pair %d %d-%d e0=%d e1=%d if0=%.17g if1=%.17g\n",
			k, p.I, p.J, p.Elapsed[0], p.Elapsed[1], p.IF[0], p.IF[1])
	}
	d := f.Core.CoRun.Diag
	fmt.Fprintf(&b, "diag drops=%d timeouts=%d retrans=%d seeks=%d devbytes=%d cacheblk=%d events=%d\n",
		d.PortDrops, d.Timeouts, d.RetransSegs, d.DeviceSeeks, d.DeviceBytes, d.CacheBlocks, d.Events)
	for _, cs := range f.ClassStats() {
		fmt.Fprintf(&b, "class %s n=%d procs=%d vol=%d mean=%.17g p50=%.17g p95=%.17g max=%.17g\n",
			cs.Class, cs.Count, cs.Procs, cs.VolumeMB, cs.MeanIF, cs.P50IF, cs.P95IF, cs.MaxIF)
	}
	fmt.Fprint(&b, "pct")
	for _, v := range f.IFPercentiles(10, 25, 50, 75, 90, 95, 99, 100) {
		fmt.Fprintf(&b, " %.17g", v)
	}
	fmt.Fprintln(&b)
	return b.String()
}

// fleetGoldenKeys enumerates the fleet builtins on their pinned backend (a
// fleet spec pins one; an unpinned one would golden both axis entries).
func fleetGoldenKeys() (keys []string, gen map[string]func() string) {
	gen = make(map[string]func() string)
	pool := core.Runner{Parallelism: 0}
	for _, s := range FleetBuiltin() {
		s := s
		backends, err := s.Backends()
		if err != nil {
			panic(err)
		}
		for _, backend := range backends {
			backend := backend
			key := s.Name + "@" + backend.String()
			keys = append(keys, key)
			gen[key] = func() string {
				f, err := RunFleet(s.Smoke(), backend, pool)
				if err != nil {
					panic(err)
				}
				return goldenFleet(f)
			}
		}
	}
	return keys, gen
}

func TestGoldenFleet(t *testing.T) {
	keys, gen := fleetGoldenKeys()

	if updateGolden() {
		sorted := append([]string(nil), keys...)
		sort.Strings(sorted)
		var b strings.Builder
		b.WriteString("# sha256 of each fleet builtin's canonical result at smoke scale.\n")
		b.WriteString("# Regenerate: go test ./internal/scenario -run TestGoldenFleet -update-golden\n")
		for _, k := range sorted {
			fmt.Fprintf(&b, "%s %x\n", k, sha256.Sum256([]byte(gen[k]())))
		}
		if err := os.WriteFile(goldenFleetFile, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d results)", goldenFleetFile, len(keys))
		return
	}

	data, err := os.ReadFile(goldenFleetFile)
	if err != nil {
		t.Fatalf("reading %s (regenerate with -update-golden): %v", goldenFleetFile, err)
	}
	want := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed golden line %q", line)
		}
		want[fields[0]] = fields[1]
	}
	for _, key := range keys {
		key := key
		f := gen[key]
		t.Run(key, func(t *testing.T) {
			t.Parallel()
			wantSum, ok := want[key]
			if !ok {
				t.Fatalf("no golden checksum for %q (regenerate with -update-golden)", key)
			}
			text := f()
			got := fmt.Sprintf("%x", sha256.Sum256([]byte(text)))
			if got != wantSum {
				t.Errorf("checksum drift: got %s want %s", got, wantSum)
			}
		})
	}
}

// TestFleetConformance is the metamorphic satellite: the smoke fleet
// builtin's canonical result must be byte-identical across shard counts
// {1, 2, 4} and pool parallelism {1, GOMAXPROCS}. -short keeps one
// representative off-serial combination (max shards, parallel pool).
func TestFleetConformance(t *testing.T) {
	s := FleetBuiltin()[0].Smoke()
	backends, err := s.Backends()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunFleet(s, backends[0], core.Runner{Parallelism: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := goldenFleet(serial)
	type combo struct{ par, shards int }
	combos := []combo{
		{1, 2}, {1, 4},
		{runtime.GOMAXPROCS(0), 1}, {runtime.GOMAXPROCS(0), 4},
	}
	if testing.Short() {
		combos = combos[len(combos)-1:]
	}
	for _, c := range combos {
		got, err := RunFleet(s, backends[0], core.Runner{Parallelism: c.par, Shards: c.shards})
		if err != nil {
			t.Fatal(err)
		}
		if g := goldenFleet(got); g != want {
			t.Errorf("parallelism=%d shards=%d diverges from the serial oracle (sha256 %x vs %x)",
				c.par, c.shards, sha256.Sum256([]byte(g)), sha256.Sum256([]byte(want)))
		}
	}
}
