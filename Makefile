# Developer entry points. CI runs the same targets.

GO      ?= go
# BENCH_OUT is the perf snapshot consumed by CI artifacts and by future
# perf PRs; the _N suffix tracks the PR number that produced it.
BENCH_OUT ?= BENCH_10.json
# BENCH_PREV is the previous PR's committed snapshot; bench-check fails when
# a serial-path benchmark regressed beyond the benchguard tolerance.
BENCH_PREV ?= BENCH_9.json

.PHONY: test race bench bench-check fuzz-short scenarios mitigate trace faults fleet serve obs

# Tier-1: everything, full grids.
test:
	$(GO) build ./...
	$(GO) test ./...

# The CI-sized suite.
race:
	$(GO) vet ./...
	$(GO) test -race -short ./...

# scenarios executes every built-in N-application scenario (SCENARIOS.md)
# on HDD and SSD at the smoke scale — the same tiny grid the scenario
# golden test pins — so a broken scenario fails fast on every push.
scenarios:
	$(GO) run ./cmd/scenarios -smoke -run all

# mitigate sweeps every built-in scenario on HDD under each server-side QoS
# scheduler ({off, fairshare, tokenbucket, controller}, internal/qos) at the
# smoke scale and prints the per-scenario Pareto view — the same grid the
# mitigation golden test pins, so a broken scheduler fails fast on every
# push.
mitigate:
	$(GO) run ./cmd/paperrepro -exp mitigate -scale 8

# trace smoke: record the periodic-checkpoint builtin at smoke scale,
# summarize it (Darshan-style), replay it — the -replay step exits nonzero
# unless every app's completion window reproduces bit-for-bit — and replay
# it once more under fair-share QoS (the counterfactual arm).
trace:
	$(GO) run ./cmd/scenarios -smoke -backend hdd -run periodic-checkpoint-4 -trace ckpt_smoke.trace
	$(GO) run ./cmd/scenarios -replay ckpt_smoke.trace
	$(GO) run ./cmd/scenarios -replay ckpt_smoke.trace -qos fairshare
	rm -f ckpt_smoke.trace

# bench runs the simulator microbenchmarks plus one figure-level campaign
# bench and writes the combined `go test -json` stream to $(BENCH_OUT).
# The stream embeds standard benchmark lines, so it stays
# benchstat-comparable:
#
#	jq -r 'select(.Action=="output") | .Output' BENCH_4.json | benchstat -
#
# Compare two snapshots by extracting each to text first:
#
#	jq -r 'select(.Action=="output") | .Output' OLD.json > old.txt
#	jq -r 'select(.Action=="output") | .Output' BENCH_4.json > new.txt
#	benchstat old.txt new.txt
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineEventThroughput|BenchmarkTransportThroughput|BenchmarkHDDElevator|BenchmarkFairShareScheduler|BenchmarkTraceRecord' \
		-benchmem -benchtime 0.5s -count 5 -json . > $(BENCH_OUT)
	$(GO) test -run '^$$' -bench 'BenchmarkFigure2SyncOn$$' \
		-benchmem -benchtime 1x -count 3 -json . >> $(BENCH_OUT)
	$(GO) test -run '^$$' -bench 'BenchmarkSharded(Figure2|Scenario)' \
		-benchtime 1x -count 3 -json . >> $(BENCH_OUT)
	$(GO) test -run '^$$' -bench 'BenchmarkFleetScenario$$' \
		-benchtime 1x -count 3 -json . >> $(BENCH_OUT)
	$(GO) test -run '^$$' -bench 'BenchmarkWhatIfCache(Hit|Miss)' \
		-benchmem -benchtime 0.5s -count 5 -json . >> $(BENCH_OUT)
	$(GO) test -run '^$$' -bench 'BenchmarkSamplerTick|BenchmarkSpanRecord' \
		-benchmem -benchtime 0.5s -count 5 -json . >> $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT)"

# bench-check guards the serial-path perf trajectory: the previous PR's
# committed snapshot against the fresh one, with a generous cross-machine
# tolerance (see cmd/benchguard). Sharded benches are excluded — their
# wall-clock depends on the runner's core count, not on code quality.
bench-check:
	$(GO) run ./cmd/benchguard -old $(BENCH_PREV) -new $(BENCH_OUT) \
		-match '^Benchmark(EngineEventThroughput|TransportThroughput|HDDElevator|FairShareScheduler|TraceRecord|Figure2SyncOn|FleetScenario|WhatIfCacheHit|WhatIfCacheMiss|SamplerTick|SpanRecord)'

# fuzz-short gives each native fuzz target a brief coverage-guided run on
# top of its committed seed corpus — long enough to catch a fresh parser
# or codec panic, short enough for every CI push.
fuzz-short:
	$(GO) test -run '^$$' -fuzz 'FuzzScenarioSpec' -fuzztime 20s ./internal/scenario/
	$(GO) test -run '^$$' -fuzz 'FuzzFaultSpec' -fuzztime 20s ./internal/scenario/
	$(GO) test -run '^$$' -fuzz 'FuzzPopulationSpec' -fuzztime 20s ./internal/scenario/
	$(GO) test -run '^$$' -fuzz 'FuzzTraceFormat' -fuzztime 20s ./internal/trace/

# fleet smoke: run the generated 1024-tenant population builtin (sharded,
# under the race detector — the fleet fan-out is the widest concurrent
# surface) at smoke scale. Smoke keeps the tenant count and class mix and
# shrinks per-tenant weight, so this still exercises a ≥1000-app launch.
fleet:
	$(GO) run -race ./cmd/scenarios -smoke -run fleet -shards 4

# faults smoke: run every fault-injection builtin on HDD at smoke scale
# (faulted vs healthy-twin comparison plus availability telemetry), then
# re-check the sharded fault kernel against the serial oracle under the
# race detector — the crash/retry path is the newest concurrency surface.
faults:
	$(GO) run ./cmd/scenarios -faults -smoke -backend hdd -run all
	$(GO) test -race -run 'FaultShardConformance|FaultScenarioShardConformance' \
		./internal/core/ ./internal/scenario/

# obs smoke: the observability layer end to end. Runs the aggressor-victim
# builtin with -timeline attached (sampled per-app/per-server series plus
# the span breakdown on stdout), then re-checks the timeline golden and the
# shard/concurrency conformance under the race detector, and finally the
# /metrics + /healthz exposition contract of the what-if service (scrape
# must be non-empty, line-parseable 0.0.4 text carrying the serving
# counters and, after a session, the last-run simulation series).
obs:
	$(GO) run ./cmd/scenarios -smoke -backend hdd -run aggressor-victim -timeline
	$(GO) test -race -count=1 -run 'TestGoldenTimeline|TestTimelineShardConformance' ./internal/scenario/
	$(GO) test -race -count=1 -run 'TestMetrics|TestHealthzUptime' ./internal/whatif/

# serve smoke: the end-to-end what-if service contract, under the race
# detector. Builds whatifd (with -race) and the scenarios CLI, records a
# trace, starts the daemon, POSTs the smoke aggressor-victim scenario and
# the recording, and asserts every arm text in the JSON responses matches
# the equivalent CLI stdout bit-for-bit — cold and cache-hit alike — then
# SIGTERMs the daemon and requires a drained exit 0.
serve:
	$(GO) test -race -count=1 -run 'TestServeSmoke' ./cmd/whatifd/
