package repro

// Observability-layer benchmarks: the two hot paths the sampler adds to an
// observed run. Both are contractually allocation-free (pinned at 0
// allocs/op by internal/obs tests); the ns/op here tracks their raw cost
// so sampling stays negligible against the event kernel's own work — a
// probe tick snapshots every per-app counter on one server, a span record
// is one bounds check plus a struct store.

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// benchCollector attaches a collector to a small idle platform; the hot
// paths are driven directly, no simulation runs.
func benchCollector() *obs.Collector {
	cfg := cluster.Default()
	cfg.ComputeNodes = 2
	cfg.CoresPerNode = 2
	cfg.Servers = 2
	return obs.Attach(cluster.Build(cfg), 2, obs.Config{
		Interval: 10 * sim.Millisecond, Samples: 64, SpanCap: 1 << 12,
	})
}

// BenchmarkSamplerTick measures one probe event: snapshotting every
// per-app telemetry row plus the device and availability counters of one
// server into the fixed-capacity series.
func BenchmarkSamplerTick(b *testing.B) {
	col := benchCollector()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.ServerTick(0, i%64)
	}
}

// BenchmarkSpanRecord measures one request-span record on the
// fixed-capacity buffer (steady state: the buffer is full, so this is the
// overflow/drop regime every long run settles into).
func BenchmarkSpanRecord(b *testing.B) {
	col := benchCollector()
	sink := col.Sink(0)
	sp := pfs.Span{Issue: 1, Arrive: 2, Grant: 3, Reply: 4, Bytes: 1 << 20, App: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.RecordSpan(sp)
	}
}
