package repro

// What-if service benchmarks: the price of a baseline cache miss (one full
// scenario simulation plus render and insert) against a hit (the same
// session served from the resident entry). The spread between the two is
// the interactivity the service buys — repeated what-ifs over one
// recording pay only for their mitigation arms.

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/whatif"
)

// whatifBenchSpec is a deliberately small two-application scenario so the
// benches measure the service path, not a campaign.
func whatifBenchSpec(name string) scenario.Spec {
	return scenario.Spec{
		Name:    name,
		Servers: 2,
		DeltaS:  []float64{0},
		Apps: []scenario.App{
			{Name: "bulk", Procs: 4, BlockMB: 4},
			{Name: "strided", Procs: 2, Pattern: "strided", BlockMB: 2, TransferKB: 256},
		},
	}
}

func BenchmarkWhatIfCacheMiss(b *testing.B) {
	srv := whatif.New(whatif.Config{Workers: 1})
	defer srv.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh name is a fresh content address: every iteration is a
		// cold baseline.
		spec := whatifBenchSpec(fmt.Sprintf("bench-miss-%d", i))
		if _, hit, err := srv.Compute(&whatif.Query{Spec: &spec, Backend: cluster.HDD}); err != nil || hit {
			b.Fatalf("hit=%v err=%v", hit, err)
		}
	}
}

func BenchmarkWhatIfCacheHit(b *testing.B) {
	srv := whatif.New(whatif.Config{Workers: 1})
	defer srv.Close()
	spec := whatifBenchSpec("bench-hit")
	q := &whatif.Query{Spec: &spec, Backend: cluster.HDD}
	if _, _, err := srv.Compute(q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, hit, err := srv.Compute(q); err != nil || !hit {
			b.Fatalf("hit=%v err=%v", hit, err)
		}
	}
}
